// Regenerates paper figure 7(b): overlay connectivity after catastrophic
// failure.
//
// Setup: 1000 nodes, 80% private, warmed up for 60 s; at one instant a
// fraction (40%..90%) of all nodes crashes. We then measure the biggest
// cluster among survivors on the *usable-edge* graph: an edge to a
// private node only counts if the holder's traversal machinery for it
// still works (Gozar: some cached relay parent alive; Nylon: RVP chain
// head alive; Croupier: nothing to break — initiative lies with the
// private node itself).
//
// Expected shape: Croupier (and all-public Cyclon) retain a dominant
// cluster even at 90% failure (paper: >85% of survivors with 80% private
// nodes), while Gozar and Nylon degrade to ~50-60%.
#include <iterator>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace croupier;

double cluster_fraction(const run::ExperimentSpec& spec, std::uint64_t seed,
                        std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  // The spec crashes the nodes at t=60 s and the horizon stops 1 ms
  // later: the largest usable cluster is measured right after the crash,
  // before any healing rounds.
  experiment.run();
  return experiment.world()
      .snapshot_overlay(/*usable_only=*/true)
      .largest_component_fraction();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;  // 80% private, as the paper
  const int fail_levels[] = {40, 50, 60, 70, 80, 90};

  struct Row {
    const char* name;
    const char* protocol;
    bool all_public = false;
  };
  const Row rows[] = {
      // Like-for-like with the single-view systems: Croupier's two views
      // share the 10-slot budget (see DESIGN.md "View-size policy").
      {"croupier", "croupier:alpha=25,gamma=50,sizing=proportional"},
      {"gozar", "gozar"},
      {"nylon", "nylon"},
      {"cyclon", "cyclon", true},
  };

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig7b: biggest cluster (%% of survivors) after catastrophic "
      "failure; %zu nodes, 80%% private, %zu run(s)",
      n, args.runs));
  std::string header = exp::strf("%-10s", "failure%");
  for (const auto& row : rows) header += exp::strf(" %10s", row.name);
  sink.raw(header);

  // The sweep is (failure level x system); flatten it into one grid so
  // every cell is its own parallel trial.
  const std::size_t points = std::size(fail_levels) * std::size(rows);
  const auto grid = bench::run_trial_grid(
      pool, args, points, [&](std::size_t p, std::uint64_t seed) {
        const int level = fail_levels[p / std::size(rows)];
        const Row& row = rows[p % std::size(rows)];
        return cluster_fraction(
            bench::paper_spec(n, 60.001)
                .protocol(row.protocol)
                .ratio(row.all_public ? 1.0 : 0.2)
                .catastrophe(static_cast<double>(level) / 100.0, 60)
                .record_nothing()
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t li = 0; li < std::size(fail_levels); ++li) {
    std::string line = exp::strf("%-10d", fail_levels[li]);
    for (std::size_t ri = 0; ri < std::size(rows); ++ri) {
      exp::Accum pct;
      for (double frac : grid[li * std::size(rows) + ri]) {
        pct.add(100.0 * frac);
      }
      line += exp::strf(" %10.1f", pct.mean());
      const std::string block =
          exp::strf("fig7b failure=%d", fail_levels[li]);
      sink.value(block, rows[ri].name, pct.mean());
      if (args.runs > 1) sink.spread(block, rows[ri].name, pct.stddev());
    }
    sink.raw(line);
  }
  return 0;
}
