// Regenerates paper figure 7(b): overlay connectivity after catastrophic
// failure.
//
// Setup: 1000 nodes, 80% private, warmed up for 60 s; at one instant a
// fraction (40%..90%) of all nodes crashes. We then measure the biggest
// cluster among survivors on the *usable-edge* graph: an edge to a
// private node only counts if the holder's traversal machinery for it
// still works (Gozar: some cached relay parent alive; Nylon: RVP chain
// head alive; Croupier: nothing to break — initiative lies with the
// private node itself).
//
// Expected shape: Croupier (and all-public Cyclon) retain a dominant
// cluster even at 90% failure (paper: >85% of survivors with 80% private
// nodes), while Gozar and Nylon degrade to ~50-60%.
#include <iterator>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace croupier;

double cluster_fraction(const run::ProtocolFactory& factory,
                        std::size_t publics, std::size_t privates,
                        double fail_fraction, std::uint64_t seed) {
  run::World world(bench::paper_world_config(seed), factory);
  bench::paper_joins(world, publics, privates);
  world.simulator().run_until(sim::sec(60));
  run::schedule_catastrophe(world, sim::sec(60), fail_fraction);
  // Measure right after the crash (before any healing rounds).
  world.simulator().run_until(sim::sec(60) + sim::msec(1));
  return world.snapshot_overlay(/*usable_only=*/true)
      .largest_component_fraction();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const std::size_t publics = n / 5;  // 80% private, as in the paper's text
  const int fail_levels[] = {40, 50, 60, 70, 80, 90};

  // Like-for-like with the single-view systems: Croupier's two views
  // share the 10-slot budget (see DESIGN.md "View-size policy").
  auto croupier_cfg = bench::paper_croupier_config(25, 50);
  croupier_cfg.sizing = core::ViewSizing::RatioProportional;

  struct Row {
    const char* name;
    run::ProtocolFactory factory;
    bool all_public = false;
  };
  std::vector<Row> rows;
  rows.push_back({"croupier", run::make_croupier_factory(croupier_cfg)});
  rows.push_back(
      {"gozar", run::make_gozar_factory(bench::paper_gozar_config())});
  rows.push_back(
      {"nylon", run::make_nylon_factory(bench::paper_nylon_config())});
  rows.push_back(
      {"cyclon", run::make_cyclon_factory(bench::paper_pss_config()), true});

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig7b: biggest cluster (%% of survivors) after catastrophic "
      "failure; %zu nodes, 80%% private, %zu run(s)",
      n, args.runs));
  std::string header = exp::strf("%-10s", "failure%");
  for (const auto& row : rows) header += exp::strf(" %10s", row.name);
  sink.raw(header);

  // The sweep is (failure level x system); flatten it into one grid so
  // every cell is its own parallel trial.
  const std::size_t points = std::size(fail_levels) * rows.size();
  const auto grid = bench::run_trial_grid(
      pool, args, points, [&](std::size_t p, std::uint64_t seed) {
        const int level = fail_levels[p / rows.size()];
        const Row& row = rows[p % rows.size()];
        return cluster_fraction(row.factory, row.all_public ? n : publics,
                                row.all_public ? 0 : n - publics,
                                static_cast<double>(level) / 100.0, seed);
      });

  for (std::size_t li = 0; li < std::size(fail_levels); ++li) {
    std::string line = exp::strf("%-10d", fail_levels[li]);
    for (std::size_t ri = 0; ri < rows.size(); ++ri) {
      double sum = 0;
      for (double frac : grid[li * rows.size() + ri]) sum += frac;
      const double pct = 100.0 * sum / static_cast<double>(args.runs);
      line += exp::strf(" %10.1f", pct);
      sink.value(exp::strf("fig7b failure=%d", fail_levels[li]),
                 rows[ri].name, pct);
    }
    sink.raw(line);
  }
  return 0;
}
