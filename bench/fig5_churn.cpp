// Regenerates paper figure 5(a)/(b): estimation accuracy under continuous
// churn (1000 nodes, ω = 0.2, α=25, γ=50; churn starts at t=61 s).
//
// Churn model (paper §VII-B): each round a fixed fraction of randomly
// selected public and private nodes is replaced with fresh nodes, keeping
// the ratio stable. Rates: 0.1, 1.0, 2.5, 5.0 %/round — 0.1% matches
// measured P2P session times; 5% is 50x harsher.
//
// Expected shape: churn up to 5 %/round has no significant effect.
#include <iterator>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 120 : 250;
  const double churn_rates[] = {0.001, 0.01, 0.025, 0.05};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig5: estimation error under churn (%zu nodes, omega=0.2, churn "
      "from t=61s), %zu run(s)",
      n, args.runs));
  sink.blank();

  const auto grid = bench::run_series_grid(
      pool, args, std::size(churn_rates),
      [&](std::size_t p, std::uint64_t seed) {
        // The Experiment owns the ChurnProcess, so its lifetime spans
        // the whole run without any per-bench bookkeeping.
        return bench::run_spec_series(
            bench::paper_spec(n, duration)
                .protocol(bench::croupier_proto(25, 50))
                .churn(churn_rates[p], 61)
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < std::size(churn_rates); ++p) {
    const double rate = churn_rates[p];
    const auto& agg = grid[p];

    bench::emit_series(sink,
                       exp::strf("fig5a avg-error churn=%.1f%%", rate * 100),
                       agg.t, agg.avg_err, agg.avg_err_sd, args.runs);
    bench::emit_series(sink,
                       exp::strf("fig5b max-error churn=%.1f%%", rate * 100),
                       agg.t, agg.max_err, agg.max_err_sd, args.runs);

    const std::string block = exp::strf("summary churn=%.1f%%", rate * 100);
    const double steady_avg = bench::steady_state(agg.avg_err);
    const double steady_max = bench::steady_state(agg.max_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                           block.c_str(), steady_avg, steady_max));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "steady max-err", steady_max);
  }
  return 0;
}
