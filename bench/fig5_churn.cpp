// Regenerates paper figure 5(a)/(b): estimation accuracy under continuous
// churn (1000 nodes, ω = 0.2, α=25, γ=50; churn starts at t=61 s).
//
// Churn model (paper §VII-B): each round a fixed fraction of randomly
// selected public and private nodes is replaced with fresh nodes, keeping
// the ratio stable. Rates: 0.1, 1.0, 2.5, 5.0 %/round — 0.1% matches
// measured P2P session times; 5% is 50x harsher.
//
// Expected shape: churn up to 5 %/round has no significant effect.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 120 : 250);
  const double churn_rates[] = {0.001, 0.01, 0.025, 0.05};

  const auto cfg = bench::paper_croupier_config(25, 50);
  std::printf(
      "# fig5: estimation error under churn (%zu nodes, omega=0.2, churn "
      "from t=61s), %zu run(s)\n\n",
      n, args.runs);

  for (double rate : churn_rates) {
    std::vector<bench::EstimationSeries> runs;
    // Keep the churn processes alive for the duration of each run.
    std::vector<std::unique_ptr<run::ChurnProcess>> churns;
    for (std::size_t r = 0; r < args.runs; ++r) {
      runs.push_back(bench::run_estimation_experiment(
          cfg, args.seed + r * 1000, duration, [&](run::World& w) {
            bench::paper_joins(w, n / 5, n - n / 5);
            churns.push_back(std::make_unique<run::ChurnProcess>(
                w, rate, net::NatConfig::open(), net::NatConfig::natted()));
            churns.back()->start(sim::sec(61));
          }));
      churns.clear();  // world is gone after the run; drop the process
    }
    const auto avg = bench::average_runs(runs);

    std::printf("# fig5a avg-error churn=%.1f%%\n", rate * 100);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.avg_err[i]);
    }
    std::printf("\n# fig5b max-error churn=%.1f%%\n", rate * 100);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.max_err[i]);
    }
    std::printf(
        "\n# summary churn=%.1f%%: steady avg-err=%.5f steady "
        "max-err=%.5f\n\n",
        rate * 100, bench::steady_state(avg.avg_err),
        bench::steady_state(avg.max_err));
  }
  return 0;
}
