// Micro-benchmarks (google-benchmark) for the hot components: simulator
// event throughput, RNG, wire codec, view operations, estimator rounds,
// NAT table lookups, graph metrics at experiment scale, and end-to-end
// gossip-round throughput per protocol (the BENCH_micro.json baseline).
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/croupier.hpp"
#include "core/estimator.hpp"
#include "metrics/graph.hpp"
#include "net/nat.hpp"
#include "net/packet.hpp"
#include "pss/view.hpp"
#include "runtime/registry.hpp"
#include "runtime/world.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace croupier;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    for (int i = 0; i < 1000; ++i) {
      simulator.schedule_after(static_cast<sim::Duration>(i), [] {});
    }
    simulator.run();
    benchmark::DoNotOptimize(simulator.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_RngUniform(benchmark::State& state) {
  sim::RngStream rng(1);
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += rng.uniform(1000);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngUniform);

void BM_RngSample(benchmark::State& state) {
  sim::RngStream rng(1);
  std::vector<int> pool(static_cast<std::size_t>(state.range(0)));
  std::iota(pool.begin(), pool.end(), 0);
  for (auto _ : state) {
    auto s = rng.sample(std::span<const int>(pool), 5);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_RngSample)->Arg(10)->Arg(100);

void BM_ShuffleMessageEncode(benchmark::State& state) {
  core::CroupierShuffleReq req;
  req.sender = pss::NodeDescriptor{1, net::NatType::Public, 0};
  for (net::NodeId i = 0; i < 3; ++i) {
    req.pub.push_back({10 + i, net::NatType::Public, 1});
  }
  for (net::NodeId i = 0; i < 2; ++i) {
    req.pri.push_back({20 + i, net::NatType::Private, 1});
  }
  for (net::NodeId i = 0; i < 10; ++i) {
    req.estimates.push_back({i, 10, 40, 1});
  }
  for (auto _ : state) {
    wire::Writer w;
    req.encode(w);
    benchmark::DoNotOptimize(w.size());
  }
}
BENCHMARK(BM_ShuffleMessageEncode);

void BM_FragmentRoundTrip(benchmark::State& state) {
  // Split + reassemble a message of `range` bytes over a small MTU,
  // with two FEC repair fragments (the ablation_loss packet shape);
  // feeding the repairs first forces the GF(256) decode path.
  net::PacketConfig cfg;
  cfg.mtu = 64;
  cfg.fec_repair = 2;
  const net::Fragmenter fragmenter(cfg);
  std::vector<std::byte> message(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::byte>(i * 31 + 7);
  }
  for (auto _ : state) {
    const auto frags = fragmenter.split(1, message);
    net::FragmentAssembly assembly(frags.back().header);
    for (auto it = frags.rbegin(); it != frags.rend(); ++it) {
      if (assembly.add(it->header, it->payload)) break;
    }
    auto bytes = assembly.bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(message.size()));
}
BENCHMARK(BM_FragmentRoundTrip)->Arg(200)->Arg(1400);

void BM_ShuffleMessageDecode(benchmark::State& state) {
  core::CroupierShuffleReq req;
  req.sender = pss::NodeDescriptor{1, net::NatType::Public, 0};
  for (net::NodeId i = 0; i < 5; ++i) {
    req.pub.push_back({10 + i, net::NatType::Public, 1});
    req.estimates.push_back({i, 10, 40, 1});
  }
  wire::Writer w;
  req.encode(w);
  for (auto _ : state) {
    wire::Reader r(w.data());
    auto m = core::CroupierShuffleReq::decode(r);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ShuffleMessageDecode);

void BM_ViewMergeSwapper(benchmark::State& state) {
  sim::RngStream rng(1);
  for (auto _ : state) {
    pss::PartialView<pss::NodeDescriptor> view(10);
    for (net::NodeId i = 0; i < 10; ++i) {
      view.add_if_room({i, net::NatType::Public, static_cast<std::uint16_t>(i)});
    }
    const auto sent = view.random_subset(5, rng);
    std::vector<pss::NodeDescriptor> recv;
    for (net::NodeId i = 100; i < 105; ++i) {
      recv.push_back({i, net::NatType::Public, 0});
    }
    view.merge_swapper(sent, recv, 999);
    benchmark::DoNotOptimize(view.size());
  }
}
BENCHMARK(BM_ViewMergeSwapper);

void BM_EstimatorRound(benchmark::State& state) {
  core::RatioEstimator est(1, net::NatType::Public, {25, 50, 10});
  sim::RngStream rng(1);
  std::vector<core::EstimateEntry> incoming;
  for (net::NodeId i = 2; i < 12; ++i) incoming.push_back({i, 10, 40, 1});
  for (auto _ : state) {
    est.count_request(net::NatType::Private);
    est.count_request(net::NatType::Public);
    est.begin_round();
    est.merge(incoming);
    benchmark::DoNotOptimize(est.estimate());
  }
}
BENCHMARK(BM_EstimatorRound);

void BM_NatBoxLookup(benchmark::State& state) {
  net::NatBox nat(net::NatConfig::natted());
  for (net::NodeId i = 0; i < 64; ++i) nat.on_outbound(sim::sec(i), i);
  std::size_t hits = 0;
  net::NodeId peer = 0;
  for (auto _ : state) {
    hits += nat.allows_inbound(sim::sec(70), peer++ % 128) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_NatBoxLookup);

metrics::OverlayGraph random_overlay(std::size_t n, std::size_t degree) {
  sim::RngStream rng(7);
  std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>> adj;
  for (net::NodeId i = 0; i < n; ++i) {
    std::vector<net::NodeId> nbrs;
    for (std::size_t d = 0; d < degree; ++d) {
      nbrs.push_back(static_cast<net::NodeId>(rng.uniform(n)));
    }
    adj.emplace_back(i, std::move(nbrs));
  }
  return metrics::OverlayGraph::build(adj);
}

void BM_GraphPathLengthSampled(benchmark::State& state) {
  const auto g = random_overlay(1000, 10);
  sim::RngStream rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.avg_path_length(rng, 128));
  }
}
BENCHMARK(BM_GraphPathLengthSampled);

void BM_GraphClustering(benchmark::State& state) {
  const auto g = random_overlay(1000, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.avg_clustering_coefficient());
  }
}
BENCHMARK(BM_GraphClustering);

void BM_GraphLargestComponent(benchmark::State& state) {
  const auto g = random_overlay(1000, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.largest_component());
  }
}
BENCHMARK(BM_GraphLargestComponent);

std::uint64_t total_rounds(const run::World& world) {
  std::uint64_t total = 0;
  for (const auto id : world.alive_ids()) total += world.rounds_of(id);
  return total;
}

// End-to-end protocol throughput: a 128-node world (paper's 80% private
// ratio) advanced one simulated second per iteration. items/sec is node
// gossip rounds executed per wall-clock second — the cross-protocol
// "ops/sec" number scripts/run_benches.sh extracts into BENCH_micro.json.
void BM_ProtocolRounds(benchmark::State& state, run::ProtocolFactory factory) {
  run::World::Config cfg;
  cfg.seed = 1;
  cfg.latency = run::World::LatencyKind::Constant;
  cfg.constant_latency = sim::msec(20);
  run::World world(cfg, std::move(factory));
  for (int i = 0; i < 26; ++i) world.spawn(net::NatConfig::open());
  for (int i = 0; i < 102; ++i) world.spawn(net::NatConfig::natted());
  auto t = sim::sec(5);  // warm-up past the join transient
  world.simulator().run_until(t);
  const auto before = total_rounds(world);
  for (auto _ : state) {
    t += sim::sec(1);
    world.simulator().run_until(t);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(total_rounds(world) - before));
}

// Paper-default configurations come straight from the registry names.
BENCHMARK_CAPTURE(BM_ProtocolRounds, Croupier,
                  run::ProtocolRegistry::instance().make("croupier"));
BENCHMARK_CAPTURE(BM_ProtocolRounds, Cyclon,
                  run::ProtocolRegistry::instance().make("cyclon"));
BENCHMARK_CAPTURE(BM_ProtocolRounds, Gozar,
                  run::ProtocolRegistry::instance().make("gozar"));
BENCHMARK_CAPTURE(BM_ProtocolRounds, Nylon,
                  run::ProtocolRegistry::instance().make("nylon"));
BENCHMARK_CAPTURE(BM_ProtocolRounds, Arrg,
                  run::ProtocolRegistry::instance().make("arrg"));

}  // namespace

BENCHMARK_MAIN();
