// Regenerates paper figure 2(a)/(b): estimator behaviour when the
// public/private ratio *changes* mid-run.
//
// Paper setup: the fig. 1 join pattern, then from t=58 s one extra public
// node joins every 42 ms for 14 s. (The paper's prose quotes ratio
// 0.30->0.33 for this phase, which is inconsistent with its own
// 1000/4000 population — with the stated populations the step is
// 0.20->0.25; see EXPERIMENTS.md. The *shape* claim is unaffected.)
//
// Expected shape: small windows re-converge to the new ratio first;
// large windows lag but win on final accuracy once the ratio stabilizes.
#include <iterator>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t nodes = args.fast ? 500 : 5000;  // ω = 0.2
  const std::size_t extra_publics = args.fast ? 33 : 333;
  const double step_at = 58;
  const double duration = args.fast ? 150 : 300;

  const std::pair<std::size_t, std::size_t> windows[] = {
      {10, 25}, {25, 50}, {100, 250}};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig2: dynamic-ratio estimation error; %zu+%zu nodes, +%zu publics "
      "from t=58s at 42ms, %zu run(s)",
      nodes / 5, nodes - nodes / 5, extra_publics, args.runs));
  sink.blank();

  const auto grid = bench::run_series_grid(
      pool, args, std::size(windows), [&](std::size_t p, std::uint64_t seed) {
        const auto& [alpha, gamma] = windows[p];
        return bench::run_spec_series(
            bench::paper_spec(nodes, duration)
                .protocol(bench::croupier_proto(alpha, gamma))
                .join_step(extra_publics, 0, step_at, 42)
                .build(),
            seed, args.world_jobs);
      });

  bool truth_printed = false;
  for (std::size_t p = 0; p < std::size(windows); ++p) {
    const auto& [alpha, gamma] = windows[p];
    const auto& agg = grid[p];

    if (!truth_printed) {
      truth_printed = true;
      sink.series("fig2 true-ratio", agg.t, agg.truth);
    }

    bench::emit_series(
        sink, exp::strf("fig2a avg-error alpha=%zu gamma=%zu", alpha, gamma),
        agg.t, agg.avg_err, agg.avg_err_sd, args.runs);
    bench::emit_series(
        sink, exp::strf("fig2b max-error alpha=%zu gamma=%zu", alpha, gamma),
        agg.t, agg.max_err, agg.max_err_sd, args.runs);

    // Re-convergence diagnostic: first time after the step that the
    // average error returns below 1%.
    double reconverged = -1;
    for (std::size_t i = 0; i < agg.t.size(); ++i) {
      if (agg.t[i] > step_at + 14.0 && agg.avg_err[i] < 0.01) {
        reconverged = agg.t[i];
        break;
      }
    }
    const std::string block =
        exp::strf("summary alpha=%zu gamma=%zu", alpha, gamma);
    const double steady_avg = bench::steady_state(agg.avg_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f reconverged(<1%%)@t=%.0fs",
                           block.c_str(), steady_avg, reconverged));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "reconverged-at-s", reconverged);
  }
  return 0;
}
