// Ablation: Gozar's relay redundancy (1 = default single relay with
// failover; >1 = the redundant-relaying variant). Trades duplicated relay
// traffic for exchange reliability and post-failure reachability.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/overhead.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto warmup = sim::sec(60);
  const auto window = sim::sec(60);
  const std::size_t redundancies[] = {1, 2, 3};

  std::printf(
      "# ablation: Gozar relay redundancy; %zu nodes, 80%%%% private, "
      "%zu run(s)\n",
      n, args.runs);
  std::printf("%-12s %14s %15s %18s\n", "redundancy", "pub-load(B/s)",
              "priv-load(B/s)", "cluster@80%fail");

  for (std::size_t red : redundancies) {
    double pub_load = 0;
    double priv_load = 0;
    double cluster = 0;
    for (std::size_t r = 0; r < args.runs; ++r) {
      auto cfg = bench::paper_gozar_config();
      cfg.relay_redundancy = red;

      run::World world(bench::paper_world_config(args.seed + r * 1000),
                       run::make_gozar_factory(cfg));
      bench::paper_joins(world, n / 5, n - n / 5);
      world.simulator().run_until(warmup);
      world.network().meter().reset();
      world.simulator().run_until(warmup + window);
      const auto load = metrics::summarize_load(world.network().meter(),
                                                world.class_map(), window);
      pub_load += load.public_bytes_per_sec;
      priv_load += load.private_bytes_per_sec;

      run::schedule_catastrophe(world, warmup + window, 0.8);
      world.simulator().run_until(warmup + window + sim::msec(1));
      cluster += world.snapshot_overlay(true).largest_component_fraction();
    }
    const auto k = static_cast<double>(args.runs);
    std::printf("%-12zu %14.1f %15.1f %18.3f\n", red, pub_load / k,
                priv_load / k, cluster / k);
  }
  return 0;
}
