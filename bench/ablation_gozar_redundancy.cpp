// Ablation: Gozar's relay redundancy (1 = default single relay with
// failover; >1 = the redundant-relaying variant). Trades duplicated relay
// traffic for exchange reliability and post-failure reachability.
#include <iterator>

#include "bench_common.hpp"
#include "metrics/overhead.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double pub_load = 0;
  double priv_load = 0;
  double cluster = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto warmup = sim::sec(60);
  const auto window = sim::sec(60);
  const std::size_t redundancies[] = {1, 2, 3};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: Gozar relay redundancy; %zu nodes, 80%% private, "
      "%zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-12s %14s %15s %18s", "redundancy", "pub-load(B/s)",
                     "priv-load(B/s)", "cluster@80%fail"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(redundancies),
      [&](std::size_t p, std::uint64_t seed) {
        run::Experiment experiment(
            bench::paper_spec(n, sim::to_seconds(warmup + window) + 0.001)
                .protocol(exp::strf("gozar:redundancy=%zu", redundancies[p]))
                .record_nothing()
                .build(),
            seed, args.world_jobs);
        experiment.run_until(warmup);
        experiment.world().network().meter().reset();
        experiment.run_until(warmup + window);
        const auto load = metrics::summarize_load(
            experiment.world().network().meter(),
            experiment.world().class_map(), window);

        TrialResult res;
        res.pub_load = load.public_bytes_per_sec;
        res.priv_load = load.private_bytes_per_sec;

        // The crash is scheduled only after the load window has been
        // summarized: the overhead numbers must describe the healthy
        // overlay, not a half-dead one.
        run::schedule_catastrophe(experiment.world(), warmup + window, 0.8);
        experiment.run_until(warmup + window + sim::msec(1));
        res.cluster = experiment.world()
                          .snapshot_overlay(true)
                          .largest_component_fraction();
        return res;
      });

  for (std::size_t p = 0; p < std::size(redundancies); ++p) {
    exp::Accum pub_load;
    exp::Accum priv_load;
    exp::Accum cluster;
    for (const auto& res : grid[p]) {
      pub_load.add(res.pub_load);
      priv_load.add(res.priv_load);
      cluster.add(res.cluster);
    }
    sink.raw(exp::strf("%-12zu %14.1f %15.1f %18.3f", redundancies[p],
                       pub_load.mean(), priv_load.mean(), cluster.mean()));
    const std::string block = exp::strf("redundancy=%zu", redundancies[p]);
    bench::emit_value(sink, block, "pub-load B/s", pub_load);
    bench::emit_value(sink, block, "priv-load B/s", priv_load);
    bench::emit_value(sink, block, "cluster@80%fail", cluster);
  }
  return 0;
}
