// Ablation: Gozar's relay redundancy (1 = default single relay with
// failover; >1 = the redundant-relaying variant). Trades duplicated relay
// traffic for exchange reliability and post-failure reachability.
#include <iterator>

#include "bench_common.hpp"
#include "metrics/overhead.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double pub_load = 0;
  double priv_load = 0;
  double cluster = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto warmup = sim::sec(60);
  const auto window = sim::sec(60);
  const std::size_t redundancies[] = {1, 2, 3};

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: Gozar relay redundancy; %zu nodes, 80%% private, "
      "%zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-12s %14s %15s %18s", "redundancy", "pub-load(B/s)",
                     "priv-load(B/s)", "cluster@80%fail"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(redundancies),
      [&](std::size_t p, std::uint64_t seed) {
        auto cfg = bench::paper_gozar_config();
        cfg.relay_redundancy = redundancies[p];

        run::World world(bench::paper_world_config(seed),
                         run::make_gozar_factory(cfg));
        bench::paper_joins(world, n / 5, n - n / 5);
        world.simulator().run_until(warmup);
        world.network().meter().reset();
        world.simulator().run_until(warmup + window);
        const auto load = metrics::summarize_load(world.network().meter(),
                                                  world.class_map(), window);

        TrialResult res;
        res.pub_load = load.public_bytes_per_sec;
        res.priv_load = load.private_bytes_per_sec;

        run::schedule_catastrophe(world, warmup + window, 0.8);
        world.simulator().run_until(warmup + window + sim::msec(1));
        res.cluster = world.snapshot_overlay(true).largest_component_fraction();
        return res;
      });

  for (std::size_t p = 0; p < std::size(redundancies); ++p) {
    TrialResult sum;
    for (const auto& res : grid[p]) {
      sum.pub_load += res.pub_load;
      sum.priv_load += res.priv_load;
      sum.cluster += res.cluster;
    }
    const auto k = static_cast<double>(args.runs);
    sink.raw(exp::strf("%-12zu %14.1f %15.1f %18.3f", redundancies[p],
                       sum.pub_load / k, sum.priv_load / k, sum.cluster / k));
    const std::string block = exp::strf("redundancy=%zu", redundancies[p]);
    sink.value(block, "pub-load B/s", sum.pub_load / k);
    sink.value(block, "priv-load B/s", sum.priv_load / k);
    sink.value(block, "cluster@80%fail", sum.cluster / k);
  }
  return 0;
}
