// Ablation: message loss and the estimator's third assumption ("no bias
// in message loss between public and private nodes").
//
// Uniform loss keeps the estimate unbiased (both hit counters shrink
// proportionally); this sweep verifies that and also checks overlay
// connectivity under loss. The paper assumes this property; here it is
// measured.
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double avg_err = 0;
  double max_err = 0;
  double cluster = 0;
  double apl = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 200;
  const double losses[] = {0.0, 0.01, 0.05, 0.10, 0.20};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: uniform message loss vs estimation/connectivity; "
      "%zu nodes, %zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-8s %12s %12s %14s %12s", "loss", "avg-err",
                     "max-err", "biggest-cluster", "apl"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(losses), [&](std::size_t p, std::uint64_t seed) {
        run::Experiment experiment(
            bench::paper_spec(n, duration)
                .protocol(bench::croupier_proto(25, 50))
                .loss(losses[p])
                .build(),
            seed, args.world_jobs);
        experiment.run();

        TrialResult res;
        res.avg_err = experiment.estimation()->latest().sample.avg_error;
        res.max_err = experiment.estimation()->latest().sample.max_error;
        const auto graph = experiment.world().snapshot_overlay();
        res.cluster = graph.largest_component_fraction();
        // Forked off the trial seed so the APL sampling stream cannot
        // alias the world's own forks.
        sim::RngStream rng = sim::RngStream(seed).fork(0x0A91);
        res.apl = graph.avg_path_length(rng, 128);
        return res;
      });

  for (std::size_t p = 0; p < std::size(losses); ++p) {
    exp::Accum avg_err;
    exp::Accum max_err;
    exp::Accum cluster;
    exp::Accum apl;
    for (const auto& res : grid[p]) {
      avg_err.add(res.avg_err);
      max_err.add(res.max_err);
      cluster.add(res.cluster);
      apl.add(res.apl);
    }
    sink.raw(exp::strf("%-8.2f %12.5f %12.5f %14.3f %12.3f", losses[p],
                       avg_err.mean(), max_err.mean(), cluster.mean(),
                       apl.mean()));
    const std::string block = exp::strf("loss=%.2f", losses[p]);
    bench::emit_value(sink, block, "avg-err", avg_err);
    bench::emit_value(sink, block, "max-err", max_err);
    bench::emit_value(sink, block, "biggest-cluster", cluster);
    bench::emit_value(sink, block, "apl", apl);
  }
  return 0;
}
