// Ablation: message loss and the estimator's third assumption ("no bias
// in message loss between public and private nodes").
//
// Uniform loss keeps the estimate unbiased (both hit counters shrink
// proportionally); this sweep verifies that and also checks overlay
// connectivity under loss. The paper assumes this property; here it is
// measured.
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double avg_err = 0;
  double max_err = 0;
  double cluster = 0;
  double apl = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const double losses[] = {0.0, 0.01, 0.05, 0.10, 0.20};

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: uniform message loss vs estimation/connectivity; "
      "%zu nodes, %zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-8s %12s %12s %14s %12s", "loss", "avg-err",
                     "max-err", "biggest-cluster", "apl"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(losses), [&](std::size_t p, std::uint64_t seed) {
        auto wcfg = bench::paper_world_config(seed);
        wcfg.loss_probability = losses[p];
        run::World world(wcfg, run::make_croupier_factory(
                                   bench::paper_croupier_config(25, 50)));
        bench::paper_joins(world, n / 5, n - n / 5);
        run::EstimationRecorder rec(world, {sim::sec(1), 2});
        rec.start(sim::sec(1));
        world.simulator().run_until(duration);

        TrialResult res;
        res.avg_err = rec.latest().sample.avg_error;
        res.max_err = rec.latest().sample.max_error;
        const auto graph = world.snapshot_overlay();
        res.cluster = graph.largest_component_fraction();
        // Forked off the trial seed so the APL sampling stream cannot
        // alias the world's own forks.
        sim::RngStream rng = sim::RngStream(seed).fork(0x0A91);
        res.apl = graph.avg_path_length(rng, 128);
        return res;
      });

  for (std::size_t p = 0; p < std::size(losses); ++p) {
    TrialResult sum;
    for (const auto& res : grid[p]) {
      sum.avg_err += res.avg_err;
      sum.max_err += res.max_err;
      sum.cluster += res.cluster;
      sum.apl += res.apl;
    }
    const auto k = static_cast<double>(args.runs);
    sink.raw(exp::strf("%-8.2f %12.5f %12.5f %14.3f %12.3f", losses[p],
                       sum.avg_err / k, sum.max_err / k, sum.cluster / k,
                       sum.apl / k));
    const std::string block = exp::strf("loss=%.2f", losses[p]);
    sink.value(block, "avg-err", sum.avg_err / k);
    sink.value(block, "max-err", sum.max_err / k);
    sink.value(block, "biggest-cluster", sum.cluster / k);
    sink.value(block, "apl", sum.apl / k);
  }
  return 0;
}
