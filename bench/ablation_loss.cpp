// Ablation: message loss and the estimator's third assumption ("no bias
// in message loss between public and private nodes").
//
// Uniform loss keeps the estimate unbiased (both hit counters shrink
// proportionally); this sweep verifies that and also checks overlay
// connectivity under loss. The paper assumes this property; here it is
// measured.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const double losses[] = {0.0, 0.01, 0.05, 0.10, 0.20};

  std::printf(
      "# ablation: uniform message loss vs estimation/connectivity; "
      "%zu nodes, %zu run(s)\n",
      n, args.runs);
  std::printf("%-8s %12s %12s %14s %12s\n", "loss", "avg-err", "max-err",
              "biggest-cluster", "apl");

  for (double loss : losses) {
    double avg_err = 0;
    double max_err = 0;
    double cluster = 0;
    double apl = 0;
    for (std::size_t r = 0; r < args.runs; ++r) {
      auto wcfg = bench::paper_world_config(args.seed + r * 1000);
      wcfg.loss_probability = loss;
      run::World world(wcfg, run::make_croupier_factory(
                                 bench::paper_croupier_config(25, 50)));
      bench::paper_joins(world, n / 5, n - n / 5);
      run::EstimationRecorder rec(world, {sim::sec(1), 2});
      rec.start(sim::sec(1));
      world.simulator().run_until(duration);

      avg_err += rec.latest().sample.avg_error;
      max_err += rec.latest().sample.max_error;
      const auto graph = world.snapshot_overlay();
      cluster += graph.largest_component_fraction();
      sim::RngStream rng(args.seed + r);
      apl += graph.avg_path_length(rng, 128);
    }
    const auto k = static_cast<double>(args.runs);
    std::printf("%-8.2f %12.5f %12.5f %14.3f %12.3f\n", loss, avg_err / k,
                max_err / k, cluster / k, apl / k);
  }
  return 0;
}
