// Ablation: message loss and the estimator's third assumption ("no bias
// in message loss between public and private nodes").
//
// Uniform loss keeps the estimate unbiased (both hit counters shrink
// proportionally); this sweep verifies that and also checks overlay
// connectivity under loss. The paper assumes this property; here it is
// measured.
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double avg_err = 0;
  double max_err = 0;
  double cluster = 0;
  double apl = 0;
};

/// One trial of the packet section: estimation quality plus the
/// packet layer's own fragment accounting.
struct PacketTrialResult {
  double avg_err = 0;
  double max_err = 0;
  double cluster = 0;
  double frag_sent = 0;
  double frag_lost = 0;
  double frag_expired = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 200;
  const double losses[] = {0.0, 0.01, 0.05, 0.10, 0.20};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: uniform message loss vs estimation/connectivity; "
      "%zu nodes, %zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-8s %12s %12s %14s %12s", "loss", "avg-err",
                     "max-err", "biggest-cluster", "apl"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(losses), [&](std::size_t p, std::uint64_t seed) {
        run::Experiment experiment(
            bench::paper_spec(n, duration)
                .protocol(bench::croupier_proto(25, 50))
                .loss(losses[p])
                .build(),
            seed, args.world_jobs);
        experiment.run();

        TrialResult res;
        res.avg_err = experiment.estimation()->latest().sample.avg_error;
        res.max_err = experiment.estimation()->latest().sample.max_error;
        const auto graph = experiment.world().snapshot_overlay();
        res.cluster = graph.largest_component_fraction();
        // Forked off the trial seed so the APL sampling stream cannot
        // alias the world's own forks.
        sim::RngStream rng = sim::RngStream(seed).fork(0x0A91);
        res.apl = graph.avg_path_length(rng, 128);
        return res;
      });

  for (std::size_t p = 0; p < std::size(losses); ++p) {
    exp::Accum avg_err;
    exp::Accum max_err;
    exp::Accum cluster;
    exp::Accum apl;
    for (const auto& res : grid[p]) {
      avg_err.add(res.avg_err);
      max_err.add(res.max_err);
      cluster.add(res.cluster);
      apl.add(res.apl);
    }
    sink.raw(exp::strf("%-8.2f %12.5f %12.5f %14.3f %12.3f", losses[p],
                       avg_err.mean(), max_err.mean(), cluster.mean(),
                       apl.mean()));
    const std::string block = exp::strf("loss=%.2f", losses[p]);
    bench::emit_value(sink, block, "avg-err", avg_err);
    bench::emit_value(sink, block, "max-err", max_err);
    bench::emit_value(sink, block, "biggest-cluster", cluster);
    bench::emit_value(sink, block, "apl", apl);
  }

  // Packet section: the same loss sweep with the packet layer on and an
  // MTU small enough that every shuffle fragments (k >= 2 datagrams per
  // message, each with its own loss die). A plain fragmented message
  // dies with any of its k fragments — effective message loss
  // 1 - (1-p)^k — where the FEC variant survives any k of k+2, so
  // convergence should hold at rates where plain degrades.
  constexpr std::size_t kMtu = 64;
  constexpr std::uint32_t kRepair = 2;
  const double packet_losses[] = {0.05, 0.10, 0.20};
  const std::uint32_t repairs[] = {0, kRepair};  // plain, fec
  const char* variant_name[] = {"plain", "fec"};
  const std::size_t packet_points =
      std::size(packet_losses) * std::size(repairs);

  sink.blank();
  sink.comment(exp::strf(
      "packet ablation: plain vs FEC fragmentation (mtu=%zu, fec "
      "repair=%u) under per-datagram loss",
      kMtu, kRepair));
  sink.raw(exp::strf("%-8s %-8s %12s %12s %14s %12s %12s %12s", "variant",
                     "loss", "avg-err", "max-err", "biggest-cluster",
                     "frag-sent", "frag-lost", "frag-expired"));

  const auto packet_grid = bench::run_trial_grid(
      pool, args, packet_points, [&](std::size_t p, std::uint64_t seed) {
        const std::size_t v = p / std::size(packet_losses);
        const double loss = packet_losses[p % std::size(packet_losses)];
        run::Experiment experiment(
            bench::paper_spec(n, duration)
                .protocol(bench::croupier_proto(25, 50))
                .loss(loss)
                .mtu(kMtu)
                .fec(repairs[v])
                .build(),
            seed, args.world_jobs);
        experiment.run();

        PacketTrialResult res;
        res.avg_err = experiment.estimation()->latest().sample.avg_error;
        res.max_err = experiment.estimation()->latest().sample.max_error;
        res.cluster =
            experiment.world().snapshot_overlay().largest_component_fraction();
        const auto& drops = experiment.world().network().drops();
        res.frag_sent = static_cast<double>(drops.fragments_sent);
        res.frag_lost = static_cast<double>(drops.fragments_lost);
        res.frag_expired = static_cast<double>(drops.fragments_expired);
        return res;
      });

  for (std::size_t p = 0; p < packet_points; ++p) {
    const std::size_t v = p / std::size(packet_losses);
    const double loss = packet_losses[p % std::size(packet_losses)];
    exp::Accum avg_err;
    exp::Accum max_err;
    exp::Accum cluster;
    exp::Accum frag_sent;
    exp::Accum frag_lost;
    exp::Accum frag_expired;
    for (const auto& res : packet_grid[p]) {
      avg_err.add(res.avg_err);
      max_err.add(res.max_err);
      cluster.add(res.cluster);
      frag_sent.add(res.frag_sent);
      frag_lost.add(res.frag_lost);
      frag_expired.add(res.frag_expired);
    }
    sink.raw(exp::strf("%-8s %-8.2f %12.5f %12.5f %14.3f %12.0f %12.0f "
                       "%12.0f",
                       variant_name[v], loss, avg_err.mean(), max_err.mean(),
                       cluster.mean(), frag_sent.mean(), frag_lost.mean(),
                       frag_expired.mean()));
    const std::string block =
        exp::strf("packet %s loss=%.2f", variant_name[v], loss);
    bench::emit_value(sink, block, "avg-err", avg_err);
    bench::emit_value(sink, block, "max-err", max_err);
    bench::emit_value(sink, block, "biggest-cluster", cluster);
    bench::emit_value(sink, block, "frag-sent", frag_sent);
    bench::emit_value(sink, block, "frag-lost", frag_lost);
    bench::emit_value(sink, block, "frag-expired", frag_expired);
  }
  return 0;
}
