// Ablation: Croupier's view-sizing policy (a design choice DESIGN.md
// calls out — the paper fixes "view size 10" but leaves the two-view
// split open).
//
// Compares Fixed{10,10} (20 tracked descriptors) against
// RatioProportional{10} and RatioProportional{20} on: estimation error,
// in-degree balance (public vs private nodes), and overlay connectivity.
// The estimator must be insensitive to the policy; degree balance is
// where the policies differ.
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double steady_avg_err = 0;
  double mean_indeg_public = 0;
  double mean_indeg_private = 0;
  double apl = 0;
};

TrialResult measure(const core::CroupierConfig& cfg, std::size_t n,
                    std::uint64_t seed, sim::Duration duration) {
  run::World world(bench::paper_world_config(seed),
                   run::make_croupier_factory(cfg));
  bench::paper_joins(world, n / 5, n - n / 5);
  run::EstimationRecorder rec(world, {sim::sec(1), 2});
  rec.start(sim::sec(1));
  world.simulator().run_until(duration);

  TrialResult res;
  res.steady_avg_err = rec.latest().sample.avg_error;

  const auto graph = world.snapshot_overlay();
  const auto degrees = graph.in_degrees();
  double pub_sum = 0;
  double priv_sum = 0;
  std::size_t pubs = 0;
  std::size_t privs = 0;
  for (std::size_t i = 0; i < graph.ids().size(); ++i) {
    const auto id = graph.ids()[i];
    if (!world.alive(id)) continue;
    if (world.type_of(id) == net::NatType::Public) {
      pub_sum += static_cast<double>(degrees[i]);
      ++pubs;
    } else {
      priv_sum += static_cast<double>(degrees[i]);
      ++privs;
    }
  }
  res.mean_indeg_public = pubs > 0 ? pub_sum / static_cast<double>(pubs) : 0;
  res.mean_indeg_private =
      privs > 0 ? priv_sum / static_cast<double>(privs) : 0;
  sim::RngStream rng = sim::RngStream(seed).fork(0x0A91);
  res.apl = graph.avg_path_length(rng, 128);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);

  struct Variant {
    const char* name;
    core::ViewSizing sizing;
    std::size_t view_size;
  };
  const Variant variants[] = {
      {"fixed-10+10", core::ViewSizing::FixedPerView, 10},
      {"proportional-10", core::ViewSizing::RatioProportional, 10},
      {"proportional-20", core::ViewSizing::RatioProportional, 20},
  };

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: Croupier view-sizing policy; %zu nodes, %zu run(s)", n,
      args.runs));
  sink.raw(exp::strf("%-16s %10s %12s %13s %8s", "policy", "avg-err",
                     "indeg(pub)", "indeg(priv)", "apl"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(variants), [&](std::size_t p, std::uint64_t seed) {
        auto cfg = bench::paper_croupier_config(25, 50);
        cfg.sizing = variants[p].sizing;
        cfg.base.view_size = variants[p].view_size;
        return measure(cfg, n, seed, duration);
      });

  for (std::size_t p = 0; p < std::size(variants); ++p) {
    TrialResult sum;
    for (const auto& res : grid[p]) {
      sum.steady_avg_err += res.steady_avg_err;
      sum.mean_indeg_public += res.mean_indeg_public;
      sum.mean_indeg_private += res.mean_indeg_private;
      sum.apl += res.apl;
    }
    const auto k = static_cast<double>(args.runs);
    sink.raw(exp::strf("%-16s %10.5f %12.2f %13.2f %8.3f", variants[p].name,
                       sum.steady_avg_err / k, sum.mean_indeg_public / k,
                       sum.mean_indeg_private / k, sum.apl / k));
    const std::string block = exp::strf("sizing=%s", variants[p].name);
    sink.value(block, "avg-err", sum.steady_avg_err / k);
    sink.value(block, "indeg-pub", sum.mean_indeg_public / k);
    sink.value(block, "indeg-priv", sum.mean_indeg_private / k);
    sink.value(block, "apl", sum.apl / k);
  }
  return 0;
}
