// Ablation: Croupier's view-sizing policy (a design choice DESIGN.md
// calls out — the paper fixes "view size 10" but leaves the two-view
// split open).
//
// Compares Fixed{10,10} (20 tracked descriptors) against
// RatioProportional{10} and RatioProportional{20} on: estimation error,
// in-degree balance (public vs private nodes), and overlay connectivity.
// The estimator must be insensitive to the policy; degree balance is
// where the policies differ.
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double steady_avg_err = 0;
  double mean_indeg_public = 0;
  double mean_indeg_private = 0;
  double apl = 0;
};

TrialResult measure(const run::ExperimentSpec& spec, std::uint64_t seed,
                    std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();
  auto& world = experiment.world();

  TrialResult res;
  res.steady_avg_err = experiment.estimation()->latest().sample.avg_error;

  const auto graph = world.snapshot_overlay();
  const auto degrees = graph.in_degrees();
  double pub_sum = 0;
  double priv_sum = 0;
  std::size_t pubs = 0;
  std::size_t privs = 0;
  for (std::size_t i = 0; i < graph.ids().size(); ++i) {
    const auto id = graph.ids()[i];
    if (!world.alive(id)) continue;
    if (world.type_of(id) == net::NatType::Public) {
      pub_sum += static_cast<double>(degrees[i]);
      ++pubs;
    } else {
      priv_sum += static_cast<double>(degrees[i]);
      ++privs;
    }
  }
  res.mean_indeg_public = pubs > 0 ? pub_sum / static_cast<double>(pubs) : 0;
  res.mean_indeg_private =
      privs > 0 ? priv_sum / static_cast<double>(privs) : 0;
  sim::RngStream rng = sim::RngStream(seed).fork(0x0A91);
  res.apl = graph.avg_path_length(rng, 128);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 200;

  struct Variant {
    const char* name;
    const char* protocol;
  };
  const Variant variants[] = {
      {"fixed-10+10",
       "croupier:alpha=25,gamma=50,sizing=fixed,view=10"},
      {"proportional-10",
       "croupier:alpha=25,gamma=50,sizing=proportional,view=10"},
      {"proportional-20",
       "croupier:alpha=25,gamma=50,sizing=proportional,view=20"},
  };

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: Croupier view-sizing policy; %zu nodes, %zu run(s)", n,
      args.runs));
  sink.raw(exp::strf("%-16s %10s %12s %13s %8s", "policy", "avg-err",
                     "indeg(pub)", "indeg(priv)", "apl"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(variants), [&](std::size_t p, std::uint64_t seed) {
        return measure(bench::paper_spec(n, duration)
                           .protocol(variants[p].protocol)
                           .build(),
                       seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < std::size(variants); ++p) {
    exp::Accum avg_err;
    exp::Accum indeg_pub;
    exp::Accum indeg_priv;
    exp::Accum apl;
    for (const auto& res : grid[p]) {
      avg_err.add(res.steady_avg_err);
      indeg_pub.add(res.mean_indeg_public);
      indeg_priv.add(res.mean_indeg_private);
      apl.add(res.apl);
    }
    sink.raw(exp::strf("%-16s %10.5f %12.2f %13.2f %8.3f", variants[p].name,
                       avg_err.mean(), indeg_pub.mean(), indeg_priv.mean(),
                       apl.mean()));
    const std::string block = exp::strf("sizing=%s", variants[p].name);
    bench::emit_value(sink, block, "avg-err", avg_err);
    bench::emit_value(sink, block, "indeg-pub", indeg_pub);
    bench::emit_value(sink, block, "indeg-priv", indeg_priv);
    bench::emit_value(sink, block, "apl", apl);
  }
  return 0;
}
