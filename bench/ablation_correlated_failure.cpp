// Ablation: correlated failure vs the paper's uniform catastrophe.
//
// Fig. 7b kills a uniformly random fraction of all nodes at one instant.
// Real outages are rarely uniform: a datacenter region goes dark (a
// contiguous latency neighbourhood), or the population behind one kind
// of middlebox drops (a NAT-class cohort — e.g. a carrier-grade NAT
// operator failing takes out private nodes only). PeerSwap
// (arXiv:2408.03829) argues peer-sampler randomness claims are most
// fragile exactly under such correlated membership dynamics.
//
// This sweep crashes 30..70% of a warmed-up overlay as four cohort
// shapes (uniform / latency region / public-biased / private-biased),
// for Croupier and for relay-dependent Gozar, and reports right after
// the crash:
//   - the biggest usable cluster among survivors (fig. 7b's notion), and
//   - the surviving public ratio ω (how badly the cohort shape skews the
//     public/private mix the estimator must re-learn).
//
// Expected shape: Croupier holds a dominant cluster under every cohort
// (initiative lies with the private nodes themselves, so even a
// public-biased kill only shocks ω — visible in the second table —
// without partitioning survivors). Gozar's private nodes are reachable
// only through cached relay parents, so a public-biased kill (which
// wipes the relay pool) collapses its usable connectivity outright,
// while region and private-biased kills stay close to the uniform
// baseline.
#include <iterator>
#include <string>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double cluster = 0.0;
  double survivor_ratio = 0.0;
};

TrialResult run_failure(const run::ExperimentSpec& spec, std::uint64_t seed,
                        std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  // The spec crashes the cohort at t=60 s and the horizon stops 1 ms
  // later: survivors are measured before any healing rounds.
  experiment.run();
  TrialResult res;
  res.cluster = experiment.world()
                    .snapshot_overlay(/*usable_only=*/true)
                    .largest_component_fraction();
  res.survivor_ratio = experiment.world().true_ratio();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;  // 80% private, as fig7b
  const int fail_levels[] = {30, 50, 70};

  struct Mode {
    const char* name;
    run::ExperimentSpec::FailureCorr corr;
  };
  const Mode modes[] = {
      {"uniform", run::ExperimentSpec::FailureCorr::Uniform},
      {"region", run::ExperimentSpec::FailureCorr::Region},
      {"public", run::ExperimentSpec::FailureCorr::Public},
      {"private", run::ExperimentSpec::FailureCorr::Private},
  };
  struct System {
    const char* name;
    const char* protocol;
  };
  const System systems[] = {
      // Like-for-like with the single-view baseline (see fig7b).
      {"croupier", "croupier:alpha=25,gamma=50,sizing=proportional"},
      {"gozar", "gozar"},
  };

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: correlated failure cohorts vs uniform; %zu nodes, "
      "80%% private, %zu run(s); biggest usable cluster and surviving "
      "ratio right after the crash",
      n, args.runs));

  // Grid: (failure level x system x mode), flattened so every cell is
  // its own parallel trial.
  const std::size_t points =
      std::size(fail_levels) * std::size(systems) * std::size(modes);
  const auto grid = bench::run_trial_grid(
      pool, args, points, [&](std::size_t p, std::uint64_t seed) {
        const int level =
            fail_levels[p / (std::size(systems) * std::size(modes))];
        const System& system =
            systems[(p / std::size(modes)) % std::size(systems)];
        const Mode& mode = modes[p % std::size(modes)];
        return run_failure(
            bench::paper_spec(n, 60.001)
                .protocol(system.protocol)
                .correlated_failure(static_cast<double>(level) / 100.0, 60,
                                    mode.corr)
                .record_nothing()
                .build(),
            seed, args.world_jobs);
      });

  const auto cell = [&](std::size_t li, std::size_t si, std::size_t mi)
      -> const std::vector<TrialResult>& {
    return grid[(li * std::size(systems) + si) * std::size(modes) + mi];
  };

  const auto print_table = [&](const char* what, auto pick) {
    sink.raw(exp::strf("%s:", what));
    std::string header = exp::strf("%-10s %-10s", "system", "failure%");
    for (const auto& mode : modes) header += exp::strf(" %10s", mode.name);
    sink.raw(header);
    for (std::size_t si = 0; si < std::size(systems); ++si) {
      for (std::size_t li = 0; li < std::size(fail_levels); ++li) {
        std::string line = exp::strf("%-10s %-10d", systems[si].name,
                                     fail_levels[li]);
        for (std::size_t mi = 0; mi < std::size(modes); ++mi) {
          exp::Accum acc;
          for (const auto& res : cell(li, si, mi)) acc.add(pick(res));
          line += exp::strf(" %10.3f", acc.mean());
          const std::string block = exp::strf(
              "corr-failure=%d %s %s", fail_levels[li], systems[si].name,
              what);
          sink.value(block, modes[mi].name, acc.mean());
          if (args.runs > 1) {
            sink.spread(block, modes[mi].name, acc.stddev());
          }
        }
        sink.raw(line);
      }
    }
    sink.blank();
  };

  print_table("biggest-cluster",
              [](const TrialResult& r) { return r.cluster; });
  print_table("survivor-ratio",
              [](const TrialResult& r) { return r.survivor_ratio; });
  return 0;
}
