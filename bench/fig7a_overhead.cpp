// Regenerates paper figure 7(a): steady-state protocol overhead (average
// load per node, bytes/second, split into public and private nodes) for
// Croupier, Gozar and Nylon, with Cyclon (all-public) as the no-NAT
// reference point.
//
// Paper setup: 1000 nodes, 20% public, α=25, γ=100, 10 estimates per
// shuffle message at 5 B each. Load is measured over a steady-state
// window after warm-up. Expected shape: Croupier cheapest in both
// classes; private nodes in Croupier pay less than half of Gozar's and
// less than a quarter of Nylon's load.
#include <iterator>

#include "bench_common.hpp"
#include "metrics/overhead.hpp"

namespace {

using namespace croupier;

struct Load {
  double pub = 0;
  double priv = 0;
};

Load measure(const run::ExperimentSpec& spec, std::uint64_t seed,
             sim::Duration warmup, sim::Duration window,
             std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run_until(warmup);
  experiment.world().network().meter().reset();
  experiment.run_until(warmup + window);
  const auto load = metrics::summarize_load(
      experiment.world().network().meter(), experiment.world().class_map(),
      window);
  return Load{load.public_bytes_per_sec, load.private_bytes_per_sec};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 200 : 1000;
  const auto warmup = sim::sec(args.fast ? 30 : 60);
  const auto window = sim::sec(args.fast ? 30 : 60);

  struct Row {
    const char* name;
    const char* protocol;
    bool all_public = false;
  };
  const Row rows[] = {
      // Paper fig. 7a uses γ=100 for this experiment.
      {"croupier", "croupier:alpha=25,gamma=100"},
      {"gozar", "gozar"},
      {"nylon", "nylon"},
      {"cyclon", "cyclon", true},
  };

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig7a: protocol overhead, avg load per node (B/s), %zu nodes, "
      "20%% public, %zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-10s %14s %15s", "protocol", "public(B/s)",
                     "private(B/s)"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(rows), [&](std::size_t p, std::uint64_t seed) {
        const Row& row = rows[p];
        // Joins compressed to 10 ms inter-arrival for both classes so the
        // population is complete well before the measurement window.
        return measure(
            bench::paper_spec(n, sim::to_seconds(warmup + window))
                .protocol(row.protocol)
                .ratio(row.all_public ? 1.0 : 0.2)
                .poisson_joins(10, 10)
                .record_nothing()
                .build(),
            seed, warmup, window, args.world_jobs);
      });

  for (std::size_t p = 0; p < std::size(rows); ++p) {
    exp::Accum pub;
    exp::Accum priv;
    for (const auto& load : grid[p]) {
      pub.add(load.pub);
      priv.add(load.priv);
    }
    sink.raw(exp::strf("%-10s %14.1f %15.1f", rows[p].name, pub.mean(),
                       priv.mean()));
    const std::string block = exp::strf("fig7a %s", rows[p].name);
    bench::emit_value(sink, block, "public B/s", pub);
    bench::emit_value(sink, block, "private B/s", priv);
  }
  return 0;
}
