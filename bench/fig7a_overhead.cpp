// Regenerates paper figure 7(a): steady-state protocol overhead (average
// load per node, bytes/second, split into public and private nodes) for
// Croupier, Gozar and Nylon, with Cyclon (all-public) as the no-NAT
// reference point.
//
// Paper setup: 1000 nodes, 20% public, α=25, γ=100, 10 estimates per
// shuffle message at 5 B each. Load is measured over a steady-state
// window after warm-up. Expected shape: Croupier cheapest in both
// classes; private nodes in Croupier pay less than half of Gozar's and
// less than a quarter of Nylon's load.
#include "bench_common.hpp"
#include "metrics/overhead.hpp"

namespace {

using namespace croupier;
using bench::BenchArgs;

struct Load {
  double pub = 0;
  double priv = 0;
};

Load measure(const run::ProtocolFactory& factory, std::size_t publics,
             std::size_t privates, std::uint64_t seed,
             sim::Duration warmup, sim::Duration window) {
  run::World world(bench::paper_world_config(seed), factory);
  run::schedule_poisson_joins(world, publics, net::NatConfig::open(),
                              sim::msec(10));
  run::schedule_poisson_joins(world, privates, net::NatConfig::natted(),
                              sim::msec(10));
  world.simulator().run_until(warmup);
  world.network().meter().reset();
  world.simulator().run_until(warmup + window);
  const auto load = metrics::summarize_load(world.network().meter(),
                                            world.class_map(), window);
  return Load{load.public_bytes_per_sec, load.private_bytes_per_sec};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 200 : 1000;
  const std::size_t publics = n / 5;  // ω = 0.2
  const std::size_t privates = n - publics;
  const auto warmup = sim::sec(args.fast ? 30 : 60);
  const auto window = sim::sec(args.fast ? 30 : 60);

  // Paper fig. 7a uses γ=100 for this experiment.
  auto croupier_cfg = bench::paper_croupier_config(25, 100);

  struct Row {
    const char* name;
    run::ProtocolFactory factory;
    bool all_public = false;
  };
  std::vector<Row> rows;
  rows.push_back({"croupier", run::make_croupier_factory(croupier_cfg)});
  rows.push_back({"gozar", run::make_gozar_factory(bench::paper_gozar_config())});
  rows.push_back({"nylon", run::make_nylon_factory(bench::paper_nylon_config())});
  rows.push_back(
      {"cyclon", run::make_cyclon_factory(bench::paper_pss_config()), true});

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig7a: protocol overhead, avg load per node (B/s), %zu nodes, "
      "20%% public, %zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-10s %14s %15s", "protocol", "public(B/s)",
                     "private(B/s)"));

  const auto grid = bench::run_trial_grid(
      pool, args, rows.size(), [&](std::size_t p, std::uint64_t seed) {
        const Row& row = rows[p];
        return measure(row.factory, row.all_public ? n : publics,
                       row.all_public ? 0 : privates, seed, warmup, window);
      });

  for (std::size_t p = 0; p < rows.size(); ++p) {
    double pub = 0;
    double priv = 0;
    for (const auto& load : grid[p]) {
      pub += load.pub;
      priv += load.priv;
    }
    pub /= static_cast<double>(args.runs);
    priv /= static_cast<double>(args.runs);
    sink.raw(exp::strf("%-10s %14.1f %15.1f", rows[p].name, pub, priv));
    const std::string block = exp::strf("fig7a %s", rows[p].name);
    sink.value(block, "public B/s", pub);
    sink.value(block, "private B/s", priv);
  }
  return 0;
}
