// Ablation: what goes wrong *without* NAT-awareness — the paper's
// motivation (§I-II, citing [9] and [15]).
//
// Runs NAT-oblivious Cyclon and ARRG on populations with a growing
// private fraction and reports: overlay connectivity, the in-degree
// imbalance between public and private nodes (sampling bias), and the
// fraction of failed exchanges. Croupier at 80% private is printed as
// the reference row.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct Result {
  double cluster = 0;
  double indeg_pub = 0;
  double indeg_priv = 0;
  double nat_drop_share = 0;  // NAT-filtered / delivered+filtered
};

Result measure(run::ProtocolFactory factory, std::size_t publics,
               std::size_t privates, std::uint64_t seed,
               sim::Duration duration) {
  run::World world(bench::paper_world_config(seed), std::move(factory));
  bench::paper_joins(world, publics, privates);
  world.simulator().run_until(duration);

  Result res;
  const auto graph = world.snapshot_overlay();
  res.cluster = graph.largest_component_fraction();
  const auto degrees = graph.in_degrees();
  double pub_sum = 0;
  double priv_sum = 0;
  std::size_t pubs = 0;
  std::size_t privs = 0;
  for (std::size_t i = 0; i < graph.ids().size(); ++i) {
    const auto id = graph.ids()[i];
    if (world.type_of(id) == net::NatType::Public) {
      pub_sum += static_cast<double>(degrees[i]);
      ++pubs;
    } else {
      priv_sum += static_cast<double>(degrees[i]);
      ++privs;
    }
  }
  res.indeg_pub = pubs > 0 ? pub_sum / static_cast<double>(pubs) : 0;
  res.indeg_priv = privs > 0 ? priv_sum / static_cast<double>(privs) : 0;
  const auto& drops = world.network().drops();
  const double total =
      static_cast<double>(drops.delivered + drops.nat_filtered);
  res.nat_drop_share =
      total > 0 ? static_cast<double>(drops.nat_filtered) / total : 0;
  return res;
}

void print_row(const char* name, int private_pct, const Result& r) {
  std::printf("%-10s %9d%% %10.3f %11.2f %12.2f %12.3f\n", name, private_pct,
              r.cluster, r.indeg_pub, r.indeg_priv, r.nat_drop_share);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const int private_pcts[] = {0, 20, 40, 60, 80};

  std::printf(
      "# ablation: NAT-oblivious PSS on NATted populations; %zu nodes, "
      "%zu run(s)\n",
      n, args.runs);
  std::printf("%-10s %10s %10s %11s %12s %12s\n", "system", "private",
              "cluster", "indeg(pub)", "indeg(priv)", "nat-drops");

  for (int pct : private_pcts) {
    const auto privates =
        static_cast<std::size_t>(n * static_cast<std::size_t>(pct) / 100);
    const std::size_t publics = n - privates;

    Result cy{};
    Result ar{};
    for (std::size_t r = 0; r < args.runs; ++r) {
      const auto a =
          measure(run::make_cyclon_factory(bench::paper_pss_config()),
                  publics, privates, args.seed + r * 1000, duration);
      cy.cluster += a.cluster;
      cy.indeg_pub += a.indeg_pub;
      cy.indeg_priv += a.indeg_priv;
      cy.nat_drop_share += a.nat_drop_share;

      const auto b =
          measure(run::make_arrg_factory(bench::paper_arrg_config()), publics,
                  privates, args.seed + r * 1000, duration);
      ar.cluster += b.cluster;
      ar.indeg_pub += b.indeg_pub;
      ar.indeg_priv += b.indeg_priv;
      ar.nat_drop_share += b.nat_drop_share;
    }
    const auto k = static_cast<double>(args.runs);
    print_row("cyclon", pct,
              {cy.cluster / k, cy.indeg_pub / k, cy.indeg_priv / k,
               cy.nat_drop_share / k});
    print_row("arrg", pct,
              {ar.cluster / k, ar.indeg_pub / k, ar.indeg_priv / k,
               ar.nat_drop_share / k});
  }

  // Reference: Croupier at the hardest setting.
  Result cr{};
  for (std::size_t r = 0; r < args.runs; ++r) {
    const auto a = measure(
        run::make_croupier_factory(bench::paper_croupier_config(25, 50)),
        n / 5, n - n / 5, args.seed + r * 1000, duration);
    cr.cluster += a.cluster;
    cr.indeg_pub += a.indeg_pub;
    cr.indeg_priv += a.indeg_priv;
    cr.nat_drop_share += a.nat_drop_share;
  }
  const auto k = static_cast<double>(args.runs);
  print_row("croupier", 80,
            {cr.cluster / k, cr.indeg_pub / k, cr.indeg_priv / k,
             cr.nat_drop_share / k});
  return 0;
}
