// Ablation: what goes wrong *without* NAT-awareness — the paper's
// motivation (§I-II, citing [9] and [15]).
//
// Runs NAT-oblivious Cyclon and ARRG on populations with a growing
// private fraction and reports: overlay connectivity, the in-degree
// imbalance between public and private nodes (sampling bias), and the
// fraction of failed exchanges. Croupier at 80% private is printed as
// the reference row.
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double cluster = 0;
  double indeg_pub = 0;
  double indeg_priv = 0;
  double nat_drop_share = 0;  // NAT-filtered / delivered+filtered
};

TrialResult measure(const run::ExperimentSpec& spec, std::uint64_t seed,
                    std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();
  auto& world = experiment.world();

  TrialResult res;
  const auto graph = world.snapshot_overlay();
  res.cluster = graph.largest_component_fraction();
  const auto degrees = graph.in_degrees();
  double pub_sum = 0;
  double priv_sum = 0;
  std::size_t pubs = 0;
  std::size_t privs = 0;
  for (std::size_t i = 0; i < graph.ids().size(); ++i) {
    const auto id = graph.ids()[i];
    if (world.type_of(id) == net::NatType::Public) {
      pub_sum += static_cast<double>(degrees[i]);
      ++pubs;
    } else {
      priv_sum += static_cast<double>(degrees[i]);
      ++privs;
    }
  }
  res.indeg_pub = pubs > 0 ? pub_sum / static_cast<double>(pubs) : 0;
  res.indeg_priv = privs > 0 ? priv_sum / static_cast<double>(privs) : 0;
  const auto& drops = world.network().drops();
  const double total =
      static_cast<double>(drops.delivered + drops.nat_filtered);
  res.nat_drop_share =
      total > 0 ? static_cast<double>(drops.nat_filtered) / total : 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 200;
  const int private_pcts[] = {0, 20, 40, 60, 80};

  // The sweep is (private% x {cyclon, arrg}) plus one Croupier reference
  // point at the hardest setting, flattened into a single trial grid.
  struct Point {
    const char* name;
    int private_pct;
    std::string protocol;
  };
  std::vector<Point> sweep;
  for (int pct : private_pcts) {
    sweep.push_back({"cyclon", pct, "cyclon"});
    sweep.push_back({"arrg", pct, "arrg"});
  }
  sweep.push_back({"croupier", 80, bench::croupier_proto(25, 50)});

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: NAT-oblivious PSS on NATted populations; %zu nodes, "
      "%zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-10s %10s %10s %11s %12s %12s", "system", "private",
                     "cluster", "indeg(pub)", "indeg(priv)", "nat-drops"));

  const auto grid = bench::run_trial_grid(
      pool, args, sweep.size(), [&](std::size_t p, std::uint64_t seed) {
        const Point& pt = sweep[p];
        return measure(
            bench::paper_spec(n, duration)
                .protocol(pt.protocol)
                .ratio(1.0 - static_cast<double>(pt.private_pct) / 100.0)
                .record_nothing()
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < sweep.size(); ++p) {
    const Point& pt = sweep[p];
    exp::Accum cluster;
    exp::Accum indeg_pub;
    exp::Accum indeg_priv;
    exp::Accum nat_drops;
    for (const auto& res : grid[p]) {
      cluster.add(res.cluster);
      indeg_pub.add(res.indeg_pub);
      indeg_priv.add(res.indeg_priv);
      nat_drops.add(res.nat_drop_share);
    }
    sink.raw(exp::strf("%-10s %9d%% %10.3f %11.2f %12.2f %12.3f", pt.name,
                       pt.private_pct, cluster.mean(), indeg_pub.mean(),
                       indeg_priv.mean(), nat_drops.mean()));
    const std::string block =
        exp::strf("%s private=%d%%", pt.name, pt.private_pct);
    bench::emit_value(sink, block, "cluster", cluster);
    bench::emit_value(sink, block, "indeg-pub", indeg_pub);
    bench::emit_value(sink, block, "indeg-priv", indeg_priv);
    bench::emit_value(sink, block, "nat-drops", nat_drops);
  }
  return 0;
}
