// Ablation: what goes wrong *without* NAT-awareness — the paper's
// motivation (§I-II, citing [9] and [15]).
//
// Runs NAT-oblivious Cyclon and ARRG on populations with a growing
// private fraction and reports: overlay connectivity, the in-degree
// imbalance between public and private nodes (sampling bias), and the
// fraction of failed exchanges. Croupier at 80% private is printed as
// the reference row.
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double cluster = 0;
  double indeg_pub = 0;
  double indeg_priv = 0;
  double nat_drop_share = 0;  // NAT-filtered / delivered+filtered
};

TrialResult measure(const run::ProtocolFactory& factory, std::size_t publics,
                    std::size_t privates, std::uint64_t seed,
                    sim::Duration duration) {
  run::World world(bench::paper_world_config(seed), factory);
  bench::paper_joins(world, publics, privates);
  world.simulator().run_until(duration);

  TrialResult res;
  const auto graph = world.snapshot_overlay();
  res.cluster = graph.largest_component_fraction();
  const auto degrees = graph.in_degrees();
  double pub_sum = 0;
  double priv_sum = 0;
  std::size_t pubs = 0;
  std::size_t privs = 0;
  for (std::size_t i = 0; i < graph.ids().size(); ++i) {
    const auto id = graph.ids()[i];
    if (world.type_of(id) == net::NatType::Public) {
      pub_sum += static_cast<double>(degrees[i]);
      ++pubs;
    } else {
      priv_sum += static_cast<double>(degrees[i]);
      ++privs;
    }
  }
  res.indeg_pub = pubs > 0 ? pub_sum / static_cast<double>(pubs) : 0;
  res.indeg_priv = privs > 0 ? priv_sum / static_cast<double>(privs) : 0;
  const auto& drops = world.network().drops();
  const double total =
      static_cast<double>(drops.delivered + drops.nat_filtered);
  res.nat_drop_share =
      total > 0 ? static_cast<double>(drops.nat_filtered) / total : 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const int private_pcts[] = {0, 20, 40, 60, 80};

  // The sweep is (private% x {cyclon, arrg}) plus one Croupier reference
  // point at the hardest setting, flattened into a single trial grid.
  struct Point {
    const char* name;
    int private_pct;
    run::ProtocolFactory factory;
    std::size_t publics;
    std::size_t privates;
  };
  std::vector<Point> sweep;
  for (int pct : private_pcts) {
    const auto privates =
        static_cast<std::size_t>(n * static_cast<std::size_t>(pct) / 100);
    const std::size_t publics = n - privates;
    sweep.push_back({"cyclon", pct,
                     run::make_cyclon_factory(bench::paper_pss_config()),
                     publics, privates});
    sweep.push_back({"arrg", pct,
                     run::make_arrg_factory(bench::paper_arrg_config()),
                     publics, privates});
  }
  sweep.push_back(
      {"croupier", 80,
       run::make_croupier_factory(bench::paper_croupier_config(25, 50)),
       n / 5, n - n / 5});

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: NAT-oblivious PSS on NATted populations; %zu nodes, "
      "%zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-10s %10s %10s %11s %12s %12s", "system", "private",
                     "cluster", "indeg(pub)", "indeg(priv)", "nat-drops"));

  const auto grid = bench::run_trial_grid(
      pool, args, sweep.size(), [&](std::size_t p, std::uint64_t seed) {
        const Point& pt = sweep[p];
        return measure(pt.factory, pt.publics, pt.privates, seed, duration);
      });

  for (std::size_t p = 0; p < sweep.size(); ++p) {
    const Point& pt = sweep[p];
    TrialResult sum;
    for (const auto& res : grid[p]) {
      sum.cluster += res.cluster;
      sum.indeg_pub += res.indeg_pub;
      sum.indeg_priv += res.indeg_priv;
      sum.nat_drop_share += res.nat_drop_share;
    }
    const auto k = static_cast<double>(args.runs);
    sink.raw(exp::strf("%-10s %9d%% %10.3f %11.2f %12.2f %12.3f", pt.name,
                       pt.private_pct, sum.cluster / k, sum.indeg_pub / k,
                       sum.indeg_priv / k, sum.nat_drop_share / k));
    const std::string block =
        exp::strf("%s private=%d%%", pt.name, pt.private_pct);
    sink.value(block, "cluster", sum.cluster / k);
    sink.value(block, "indeg-pub", sum.indeg_pub / k);
    sink.value(block, "indeg-priv", sum.indeg_priv / k);
    sink.value(block, "nat-drops", sum.nat_drop_share / k);
  }
  return 0;
}
