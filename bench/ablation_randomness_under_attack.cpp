// Ablation: sampler randomness under adversarial membership dynamics.
//
// Fig. 6 certifies randomness in the honest case; this ablation re-runs
// the audit (in-degree chi-square z, lag-1 repeat ratio, public-selection
// bias) with each of the three adversarial processes switched on, for all
// five protocols:
//
//  - eclipse=target:0     every node the target points at is crashed and
//                         replaced each period — a sampler whose links
//                         are uniformly re-drawn shrugs this off, one
//                         that relies on sticky neighbours starves;
//  - natflap=frac:0.2     a fifth of the population flips NAT class each
//                         period and flips back the next. Gozar parents
//                         and Nylon rendezvous chains are bound to the
//                         flapped nodes' old class; Croupier privates
//                         depend only on whichever publics are live;
//  - adversary=hubs:3     three public joiners run the self-promoting
//                         hub shim: answer every shuffle with
//                         {self}, inject promotion requests, hijack
//                         Gozar relays. Chi-square z explodes for
//                         samplers that merge unsolicited entries into
//                         long-lived views.
//
// Expected shape: all five near the honest baseline when honest;
// gozar/nylon audit statistics separate sharply under at least one
// adversary (relay/RVP state is the attack surface), croupier stays
// within honest bounds (privates never accept requests, and the hub has
// no relay position to hijack).
#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  std::vector<metrics::RandomnessPoint> series;
  run::ScenarioProcess::Stats stats;
};

TrialResult measure(const run::ExperimentSpec& spec, std::uint64_t seed,
                    std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();
  return {experiment.randomness()->series(), experiment.scenario_stats()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 200 : 500;
  const double duration = args.fast ? 80 : 150;
  const double attack_at = duration * 0.3;

  const char* protocols[] = {
      "croupier:alpha=25,gamma=50,sizing=proportional", "cyclon", "gozar",
      "nylon", "arrg"};
  const char* proto_names[] = {"croupier", "cyclon", "gozar", "nylon",
                               "arrg"};
  enum Scenario { kHonest, kEclipse, kNatFlap, kHubs, kScenarios };
  const char* scenario_names[] = {"honest", "eclipse", "natflap", "hubs"};

  const std::size_t n_protocols = std::size(protocols);
  const std::size_t points = n_protocols * kScenarios;

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation randomness-under-attack: %zu nodes, 20%% public, attack "
      "at %.0fs, %zu run(s)",
      n, attack_at, args.runs));
  sink.blank();

  const auto grid = bench::run_trial_grid(
      pool, args, points, [&](std::size_t p, std::uint64_t seed) {
        const std::size_t proto = p / kScenarios;
        const auto scenario = static_cast<Scenario>(p % kScenarios);
        auto builder = bench::paper_spec(n, duration)
                           .protocol(protocols[proto])
                           .record_randomness(10);
        switch (scenario) {
          case kHonest:
            break;
          case kEclipse:
            // Node 1 is the first joiner — public under every join
            // process, so each protocol's strongest position.
            builder.eclipse(1, attack_at, 2.0);
            break;
          case kNatFlap:
            builder.natflap(0.2, attack_at, 10.0);
            break;
          case kHubs:
          case kScenarios:
            builder.adversary_hubs(3);
            break;
        }
        return measure(builder.build(), seed, args.world_jobs);
      });

  // Final audit statistics averaged over runs, honest column kept for
  // the differential section below.
  std::vector<double> final_z(points, 0.0);
  std::vector<double> final_repeat(points, 0.0);
  std::vector<double> final_bias(points, 0.0);
  for (std::size_t p = 0; p < points; ++p) {
    exp::Accum z;
    exp::Accum rep;
    exp::Accum bias;
    for (const auto& trial : grid[p]) {
      if (trial.series.empty()) continue;
      const auto& last = trial.series.back();
      z.add(last.chi2_z);
      rep.add(last.repeat_ratio);
      bias.add(last.bias_ratio);
    }
    final_z[p] = z.mean();
    final_repeat[p] = rep.mean();
    final_bias[p] = bias.mean();

    const std::size_t proto = p / kScenarios;
    const char* scenario = scenario_names[p % kScenarios];
    const std::string label =
        exp::strf("%s %s", proto_names[proto], scenario);

    // Time series from the last run (one representative trajectory).
    const auto& series = grid[p].back().series;
    std::vector<double> t;
    std::vector<double> zs;
    for (const auto& pt : series) {
      t.push_back(pt.t_seconds);
      zs.push_back(pt.chi2_z);
    }
    sink.series(exp::strf("chi2-z %s", label.c_str()), t, zs, "%.0f",
                "%.4f");

    const auto& stats = grid[p].back().stats;
    const std::string block = exp::strf("summary %s", label.c_str());
    sink.comment(exp::strf(
        "%s: final chi2-z=%.3f repeat-ratio=%.4f bias-ratio=%.4f "
        "replaced=%llu reclassified=%llu",
        block.c_str(), final_z[p], final_repeat[p], final_bias[p],
        static_cast<unsigned long long>(stats.replaced),
        static_cast<unsigned long long>(stats.reclassified)));
    sink.blank();
    sink.value(block, "final chi2-z", final_z[p]);
    sink.value(block, "final repeat-ratio", final_repeat[p]);
    sink.value(block, "final bias-ratio", final_bias[p]);
  }

  // The differential the ablation exists for: attacked minus honest,
  // per protocol per adversary. A sampler whose randomness survives the
  // attack shows deltas near zero; a captured one shows chi2-z blowing
  // up (hub amplification) or repeat-ratio rising (frozen views).
  for (std::size_t proto = 0; proto < n_protocols; ++proto) {
    const std::size_t honest = proto * kScenarios + kHonest;
    const std::string block =
        exp::strf("differential %s", proto_names[proto]);
    for (std::size_t s = kEclipse; s < kScenarios; ++s) {
      const std::size_t p = proto * kScenarios + s;
      sink.value(block, exp::strf("%s chi2-z delta", scenario_names[s]),
                 final_z[p] - final_z[honest]);
      sink.value(block,
                 exp::strf("%s repeat-ratio delta", scenario_names[s]),
                 final_repeat[p] - final_repeat[honest]);
    }
    sink.comment(exp::strf(
        "%s: eclipse dz=%.3f natflap dz=%.3f hubs dz=%.3f", block.c_str(),
        final_z[proto * kScenarios + kEclipse] - final_z[honest],
        final_z[proto * kScenarios + kNatFlap] - final_z[honest],
        final_z[proto * kScenarios + kHubs] - final_z[honest]));
  }
  sink.blank();
  return 0;
}
