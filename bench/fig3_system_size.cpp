// Regenerates paper figure 3(a)/(b): estimation accuracy versus system
// size (50, 100, 500, 1000, 5000 nodes; ω = 0.2; α=25, γ=50).
//
// Expected shape: error shrinks with system size; large improvements up
// to a few hundred nodes, marginal beyond 1000 (paper: ~5% avg error at
// 50 nodes, ~2.5% at 100, ~0.2-0.4% at 1000-5000).
#include <span>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const std::size_t sizes_full[] = {50, 100, 500, 1000, 5000};
  const std::size_t sizes_fast[] = {50, 100, 500};
  const auto sizes = args.fast ? std::span<const std::size_t>(sizes_fast)
                               : std::span<const std::size_t>(sizes_full);

  const auto cfg = bench::paper_croupier_config(25, 50);

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig3: estimation error vs system size (omega=0.2, alpha=25, "
      "gamma=50), %zu run(s)",
      args.runs));
  sink.blank();

  const auto grid = bench::run_trial_grid(
      pool, args, sizes.size(), [&](std::size_t p, std::uint64_t seed) {
        const std::size_t n = sizes[p];
        const std::size_t publics = n / 5;
        return bench::run_estimation_experiment(
            cfg, seed, duration, [&](run::World& w) {
              bench::paper_joins(w, publics, n - publics);
            });
      });

  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const std::size_t n = sizes[p];
    const auto avg = bench::average_runs(grid[p]);

    sink.series(exp::strf("fig3a avg-error n=%zu", n), avg.t, avg.avg_err);
    sink.series(exp::strf("fig3b max-error n=%zu", n), avg.t, avg.max_err);

    const std::string block = exp::strf("summary n=%zu", n);
    const double steady_avg = bench::steady_state(avg.avg_err);
    const double steady_max = bench::steady_state(avg.max_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                           block.c_str(), steady_avg, steady_max));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "steady max-err", steady_max);
  }
  return 0;
}
