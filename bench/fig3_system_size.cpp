// Regenerates paper figure 3(a)/(b): estimation accuracy versus system
// size (50, 100, 500, 1000, 5000 nodes; ω = 0.2; α=25, γ=50).
//
// Expected shape: error shrinks with system size; large improvements up
// to a few hundred nodes, marginal beyond 1000 (paper: ~5% avg error at
// 50 nodes, ~2.5% at 100, ~0.2-0.4% at 1000-5000).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const std::size_t sizes_full[] = {50, 100, 500, 1000, 5000};
  const std::size_t sizes_fast[] = {50, 100, 500};
  const auto sizes = args.fast ? std::span<const std::size_t>(sizes_fast)
                               : std::span<const std::size_t>(sizes_full);

  const auto cfg = bench::paper_croupier_config(25, 50);
  std::printf(
      "# fig3: estimation error vs system size (omega=0.2, alpha=25, "
      "gamma=50), %zu run(s)\n\n",
      args.runs);

  for (std::size_t n : sizes) {
    const std::size_t publics = n / 5;
    const std::size_t privates = n - publics;
    std::vector<bench::EstimationSeries> runs;
    for (std::size_t r = 0; r < args.runs; ++r) {
      runs.push_back(bench::run_estimation_experiment(
          cfg, args.seed + r * 1000, duration, [&](run::World& w) {
            bench::paper_joins(w, publics, privates);
          }));
    }
    const auto avg = bench::average_runs(runs);

    std::printf("# fig3a avg-error n=%zu\n", n);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.avg_err[i]);
    }
    std::printf("\n# fig3b max-error n=%zu\n", n);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.max_err[i]);
    }
    std::printf("\n# summary n=%zu: steady avg-err=%.5f steady max-err=%.5f\n\n",
                n, bench::steady_state(avg.avg_err),
                bench::steady_state(avg.max_err));
  }
  return 0;
}
