// Regenerates paper figure 3(a)/(b): estimation accuracy versus system
// size (50, 100, 500, 1000, 5000 nodes; ω = 0.2; α=25, γ=50).
//
// Expected shape: error shrinks with system size; large improvements up
// to a few hundred nodes, marginal beyond 1000 (paper: ~5% avg error at
// 50 nodes, ~2.5% at 100, ~0.2-0.4% at 1000-5000).
//
// --mega[=N1,N2,...] switches to the scale extension: a sweep over much
// larger worlds (default 10^5 and 10^6 nodes) recording the O(sample)
// streaming overlay metrics (record=graph-sampled) instead of
// estimation error, with per-point wall-clock and resident-memory
// reported on stderr. Instant joins and constant latency keep the
// simulated horizon short; the point is the memory/throughput envelope
// of the SoA membership store, not another accuracy figure. Without
// --mega the bench's output is byte-identical to before the extension.
#include <chrono>
#include <span>

#include "bench_common.hpp"
#include "exp/memory.hpp"

namespace {

struct MegaFlags {
  bool enabled = false;
  std::vector<std::size_t> sizes = {100'000, 1'000'000};

  bool consume(const std::string& arg) {
    if (arg == "--mega") {
      enabled = true;
      return true;
    }
    if (arg.rfind("--mega=", 0) != 0) return false;
    enabled = true;
    sizes.clear();
    std::string list = arg.substr(7);
    for (std::size_t pos = 0; pos < list.size();) {
      const std::size_t comma = std::min(list.find(',', pos), list.size());
      std::uint64_t n = 0;
      croupier::bench::BenchArgs::parse_u64(
          "--mega", list.substr(pos, comma - pos), n);
      if (n > 0) sizes.push_back(static_cast<std::size_t>(n));
      pos = comma + 1;
    }
    if (sizes.empty()) sizes = {100'000, 1'000'000};
    return true;
  }
};

int run_mega(const croupier::bench::BenchArgs& args,
             std::span<const std::size_t> sizes) {
  using namespace croupier;
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig3-mega: sampled overlay randomness vs system size (omega=0.2, "
      "alpha=25, gamma=50), %zu run(s)",
      args.runs));
  sink.blank();

  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const std::size_t n = sizes[p];
    exp::SeriesAccum apl;
    exp::SeriesAccum cc;
    exp::SeriesAccum comp;
    std::vector<double> t;
    // Trials run serially on this thread: a 10^6-node World is the
    // footprint being measured, and concurrent trials would both blur
    // the attribution and double the peak.
    for (std::size_t r = 0; r < args.runs; ++r) {
      const auto spec = run::SpecBuilder()
                            .protocol(bench::croupier_proto(25, 50))
                            .nodes(n)
                            .ratio(0.2)
                            .instant_joins()
                            .constant_latency(50)
                            .duration(args.fast ? 12 : 30)
                            .record_graph_sampled(10)
                            .build();
      // detlint:allow(wallclock) per-point wall-clock for the stderr
      // progress line only; never written to the CSV/JSON output.
      const auto start = std::chrono::steady_clock::now();
      run::Experiment experiment(spec, exp::trial_seed(args.seed, p, r),
                                 args.world_jobs);
      experiment.run();
      // detlint:allow(wallclock) stderr-only progress timing, as above.
      const auto wall_end = std::chrono::steady_clock::now();
      const std::chrono::duration<double> wall = wall_end - start;

      std::vector<double> run_apl;
      std::vector<double> run_cc;
      std::vector<double> run_comp;
      std::vector<double> run_t;
      for (const auto& point : experiment.graph_sampled()->series()) {
        run_t.push_back(point.t_seconds);
        run_apl.push_back(point.avg_path_length);
        run_cc.push_back(point.clustering_coefficient);
        run_comp.push_back(point.largest_component_fraction);
      }
      if (t.empty()) t = run_t;
      apl.add(run_apl);
      cc.add(run_cc);
      comp.add(run_comp);

      std::fprintf(stderr,
                   "# mega n=%zu run=%zu: wall=%.2fs rss-now=%.1fMiB "
                   "peak-rss=%.1fMiB\n",
                   n, r, wall.count(),
                   static_cast<double>(exp::current_rss_bytes()) /
                       (1024.0 * 1024.0),
                   static_cast<double>(exp::peak_rss_bytes()) /
                       (1024.0 * 1024.0));
    }

    bench::emit_series(sink, exp::strf("fig3m avg-path-length n=%zu", n), t,
                       apl.means(), apl.stddevs(), args.runs, "%.0f",
                       "%.4f");
    bench::emit_series(sink, exp::strf("fig3m clustering n=%zu", n), t,
                       cc.means(), cc.stddevs(), args.runs, "%.0f", "%.5f");
    bench::emit_series(sink, exp::strf("fig3m largest-component n=%zu", n),
                       t, comp.means(), comp.stddevs(), args.runs, "%.0f",
                       "%.4f");
    const std::string block = exp::strf("summary mega n=%zu", n);
    const auto means = apl.means();
    const auto comp_means = comp.means();
    const double final_apl = means.empty() ? 0.0 : means.back();
    const double final_comp = comp_means.empty() ? 0.0 : comp_means.back();
    sink.comment(exp::strf("%s: final apl=%.3f final largest-component=%.4f",
                           block.c_str(), final_apl, final_comp));
    sink.blank();
    sink.value(block, "final apl", final_apl);
    sink.value(block, "final largest-component", final_comp);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace croupier;
  MegaFlags mega;
  const auto args = bench::BenchArgs::parse(
      argc, argv, [&mega](const std::string& a) { return mega.consume(a); });
  if (mega.enabled) {
    return run_mega(args, std::span<const std::size_t>(mega.sizes));
  }
  const double duration = args.fast ? 100 : 200;
  const std::size_t sizes_full[] = {50, 100, 500, 1000, 5000};
  const std::size_t sizes_fast[] = {50, 100, 500};
  const auto sizes = args.fast ? std::span<const std::size_t>(sizes_fast)
                               : std::span<const std::size_t>(sizes_full);

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig3: estimation error vs system size (omega=0.2, alpha=25, "
      "gamma=50), %zu run(s)",
      args.runs));
  sink.blank();

  const auto grid = bench::run_series_grid(
      pool, args, sizes.size(), [&](std::size_t p, std::uint64_t seed) {
        return bench::run_spec_series(
            bench::paper_spec(sizes[p], duration)
                .protocol(bench::croupier_proto(25, 50))
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const std::size_t n = sizes[p];
    const auto& agg = grid[p];

    bench::emit_series(sink, exp::strf("fig3a avg-error n=%zu", n), agg.t,
                       agg.avg_err, agg.avg_err_sd, args.runs);
    bench::emit_series(sink, exp::strf("fig3b max-error n=%zu", n), agg.t,
                       agg.max_err, agg.max_err_sd, args.runs);

    const std::string block = exp::strf("summary n=%zu", n);
    const double steady_avg = bench::steady_state(agg.avg_err);
    const double steady_max = bench::steady_state(agg.max_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                           block.c_str(), steady_avg, steady_max));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "steady max-err", steady_max);
  }
  return 0;
}
