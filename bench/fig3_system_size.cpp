// Regenerates paper figure 3(a)/(b): estimation accuracy versus system
// size (50, 100, 500, 1000, 5000 nodes; ω = 0.2; α=25, γ=50).
//
// Expected shape: error shrinks with system size; large improvements up
// to a few hundred nodes, marginal beyond 1000 (paper: ~5% avg error at
// 50 nodes, ~2.5% at 100, ~0.2-0.4% at 1000-5000).
#include <span>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const double duration = args.fast ? 100 : 200;
  const std::size_t sizes_full[] = {50, 100, 500, 1000, 5000};
  const std::size_t sizes_fast[] = {50, 100, 500};
  const auto sizes = args.fast ? std::span<const std::size_t>(sizes_fast)
                               : std::span<const std::size_t>(sizes_full);

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig3: estimation error vs system size (omega=0.2, alpha=25, "
      "gamma=50), %zu run(s)",
      args.runs));
  sink.blank();

  const auto grid = bench::run_series_grid(
      pool, args, sizes.size(), [&](std::size_t p, std::uint64_t seed) {
        return bench::run_spec_series(
            bench::paper_spec(sizes[p], duration)
                .protocol(bench::croupier_proto(25, 50))
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const std::size_t n = sizes[p];
    const auto& agg = grid[p];

    bench::emit_series(sink, exp::strf("fig3a avg-error n=%zu", n), agg.t,
                       agg.avg_err, agg.avg_err_sd, args.runs);
    bench::emit_series(sink, exp::strf("fig3b max-error n=%zu", n), agg.t,
                       agg.max_err, agg.max_err_sd, args.runs);

    const std::string block = exp::strf("summary n=%zu", n);
    const double steady_avg = bench::steady_state(agg.avg_err);
    const double steady_max = bench::steady_state(agg.max_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                           block.c_str(), steady_avg, steady_max));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "steady max-err", steady_max);
  }
  return 0;
}
