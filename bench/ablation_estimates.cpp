// Ablation: how many estimate entries to piggy-back per shuffle message
// (the paper bounds this at 10, i.e. 50 B per message).
//
// Sweeps the share limit and reports steady-state estimation error and
// the measured per-node load — the accuracy/overhead trade-off behind the
// paper's choice.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/overhead.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto warmup = sim::sec(args.fast ? 60 : 120);
  const auto window = sim::sec(60);
  const std::size_t limits[] = {1, 2, 5, 10, 20};

  std::printf(
      "# ablation: estimate share limit (paper: 10); %zu nodes, %zu run(s)\n",
      n, args.runs);
  std::printf("%-8s %12s %12s %14s %15s\n", "limit", "avg-err", "max-err",
              "pub-load(B/s)", "priv-load(B/s)");

  for (std::size_t limit : limits) {
    double avg_err = 0;
    double max_err = 0;
    double pub_load = 0;
    double priv_load = 0;
    for (std::size_t r = 0; r < args.runs; ++r) {
      auto cfg = bench::paper_croupier_config(25, 50);
      cfg.estimator.share_limit = limit;
      run::World world(bench::paper_world_config(args.seed + r * 1000),
                       run::make_croupier_factory(cfg));
      bench::paper_joins(world, n / 5, n - n / 5);
      run::EstimationRecorder rec(world, {sim::sec(1), 2});
      rec.start(sim::sec(1));
      world.simulator().run_until(warmup);
      world.network().meter().reset();
      world.simulator().run_until(warmup + window);

      avg_err += rec.latest().sample.avg_error;
      max_err += rec.latest().sample.max_error;
      const auto load = metrics::summarize_load(world.network().meter(),
                                                world.class_map(), window);
      pub_load += load.public_bytes_per_sec;
      priv_load += load.private_bytes_per_sec;
    }
    const auto k = static_cast<double>(args.runs);
    std::printf("%-8zu %12.5f %12.5f %14.1f %15.1f\n", limit, avg_err / k,
                max_err / k, pub_load / k, priv_load / k);
  }
  return 0;
}
