// Ablation: how many estimate entries to piggy-back per shuffle message
// (the paper bounds this at 10, i.e. 50 B per message).
//
// Sweeps the share limit and reports steady-state estimation error and
// the measured per-node load — the accuracy/overhead trade-off behind the
// paper's choice.
#include <iterator>

#include "bench_common.hpp"
#include "metrics/overhead.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double avg_err = 0;
  double max_err = 0;
  double pub_load = 0;
  double priv_load = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto warmup = sim::sec(args.fast ? 60 : 120);
  const auto window = sim::sec(60);
  const std::size_t limits[] = {1, 2, 5, 10, 20};

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: estimate share limit (paper: 10); %zu nodes, %zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-8s %12s %12s %14s %15s", "limit", "avg-err",
                     "max-err", "pub-load(B/s)", "priv-load(B/s)"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(limits), [&](std::size_t p, std::uint64_t seed) {
        auto cfg = bench::paper_croupier_config(25, 50);
        cfg.estimator.share_limit = limits[p];
        run::World world(bench::paper_world_config(seed),
                         run::make_croupier_factory(cfg));
        bench::paper_joins(world, n / 5, n - n / 5);
        run::EstimationRecorder rec(world, {sim::sec(1), 2});
        rec.start(sim::sec(1));
        world.simulator().run_until(warmup);
        world.network().meter().reset();
        world.simulator().run_until(warmup + window);

        TrialResult res;
        res.avg_err = rec.latest().sample.avg_error;
        res.max_err = rec.latest().sample.max_error;
        const auto load = metrics::summarize_load(world.network().meter(),
                                                  world.class_map(), window);
        res.pub_load = load.public_bytes_per_sec;
        res.priv_load = load.private_bytes_per_sec;
        return res;
      });

  for (std::size_t p = 0; p < std::size(limits); ++p) {
    TrialResult sum;
    for (const auto& res : grid[p]) {
      sum.avg_err += res.avg_err;
      sum.max_err += res.max_err;
      sum.pub_load += res.pub_load;
      sum.priv_load += res.priv_load;
    }
    const auto k = static_cast<double>(args.runs);
    sink.raw(exp::strf("%-8zu %12.5f %12.5f %14.1f %15.1f", limits[p],
                       sum.avg_err / k, sum.max_err / k, sum.pub_load / k,
                       sum.priv_load / k));
    const std::string block = exp::strf("share-limit=%zu", limits[p]);
    sink.value(block, "avg-err", sum.avg_err / k);
    sink.value(block, "max-err", sum.max_err / k);
    sink.value(block, "pub-load B/s", sum.pub_load / k);
    sink.value(block, "priv-load B/s", sum.priv_load / k);
  }
  return 0;
}
