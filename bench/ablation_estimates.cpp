// Ablation: how many estimate entries to piggy-back per shuffle message
// (the paper bounds this at 10, i.e. 50 B per message).
//
// Sweeps the share limit and reports steady-state estimation error and
// the measured per-node load — the accuracy/overhead trade-off behind the
// paper's choice.
#include <iterator>

#include "bench_common.hpp"
#include "metrics/overhead.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double avg_err = 0;
  double max_err = 0;
  double pub_load = 0;
  double priv_load = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto warmup = sim::sec(args.fast ? 60 : 120);
  const auto window = sim::sec(60);
  const std::size_t limits[] = {1, 2, 5, 10, 20};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: estimate share limit (paper: 10); %zu nodes, %zu run(s)",
      n, args.runs));
  sink.raw(exp::strf("%-8s %12s %12s %14s %15s", "limit", "avg-err",
                     "max-err", "pub-load(B/s)", "priv-load(B/s)"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(limits), [&](std::size_t p, std::uint64_t seed) {
        run::Experiment experiment(
            bench::paper_spec(n, sim::to_seconds(warmup + window))
                .protocol(exp::strf("croupier:alpha=25,gamma=50,"
                                    "share_limit=%zu",
                                    limits[p]))
                .build(),
            seed, args.world_jobs);
        experiment.run_until(warmup);
        experiment.world().network().meter().reset();
        experiment.run_until(warmup + window);

        TrialResult res;
        res.avg_err = experiment.estimation()->latest().sample.avg_error;
        res.max_err = experiment.estimation()->latest().sample.max_error;
        const auto load = metrics::summarize_load(
            experiment.world().network().meter(),
            experiment.world().class_map(), window);
        res.pub_load = load.public_bytes_per_sec;
        res.priv_load = load.private_bytes_per_sec;
        return res;
      });

  for (std::size_t p = 0; p < std::size(limits); ++p) {
    exp::Accum avg_err;
    exp::Accum max_err;
    exp::Accum pub_load;
    exp::Accum priv_load;
    for (const auto& res : grid[p]) {
      avg_err.add(res.avg_err);
      max_err.add(res.max_err);
      pub_load.add(res.pub_load);
      priv_load.add(res.priv_load);
    }
    sink.raw(exp::strf("%-8zu %12.5f %12.5f %14.1f %15.1f", limits[p],
                       avg_err.mean(), max_err.mean(), pub_load.mean(),
                       priv_load.mean()));
    const std::string block = exp::strf("share-limit=%zu", limits[p]);
    bench::emit_value(sink, block, "avg-err", avg_err);
    bench::emit_value(sink, block, "max-err", max_err);
    bench::emit_value(sink, block, "pub-load B/s", pub_load);
    bench::emit_value(sink, block, "priv-load B/s", priv_load);
  }
  return 0;
}
