// Regenerates paper figure 4(a)/(b): estimation accuracy for different
// stable public/private ratios (1000 nodes).
//
// Paper sweeps ω ∈ {0.05, 0.1, 0.2, 0.33, 0.5, 0.8} (the figure legend
// prints 0.9 where the text says 80%; we follow the text).
//
// Expected shape: the average error is insensitive to ω; at ω = 0.05 the
// maximum error is markedly worse (an outlier private node receives too
// few distinct estimates).
#include <iterator>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const double ratios[] = {0.05, 0.1, 0.2, 0.33, 0.5, 0.8};

  const auto cfg = bench::paper_croupier_config(25, 50);

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig4: estimation error vs public/private ratio (%zu nodes), "
      "%zu run(s)",
      n, args.runs));
  sink.blank();

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(ratios), [&](std::size_t p, std::uint64_t seed) {
        const auto publics = static_cast<std::size_t>(
            ratios[p] * static_cast<double>(n) + 0.5);
        return bench::run_estimation_experiment(
            cfg, seed, duration, [&](run::World& w) {
              bench::paper_joins(w, publics, n - publics);
            });
      });

  for (std::size_t p = 0; p < std::size(ratios); ++p) {
    const double ratio = ratios[p];
    const auto avg = bench::average_runs(grid[p]);

    sink.series(exp::strf("fig4a avg-error ratio=%.2f", ratio), avg.t,
                avg.avg_err);
    sink.series(exp::strf("fig4b max-error ratio=%.2f", ratio), avg.t,
                avg.max_err);

    const std::string block = exp::strf("summary ratio=%.2f", ratio);
    const double steady_avg = bench::steady_state(avg.avg_err);
    const double steady_max = bench::steady_state(avg.max_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                           block.c_str(), steady_avg, steady_max));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "steady max-err", steady_max);
  }
  return 0;
}
