// Regenerates paper figure 4(a)/(b): estimation accuracy for different
// stable public/private ratios (1000 nodes).
//
// Paper sweeps ω ∈ {0.05, 0.1, 0.2, 0.33, 0.5, 0.8} (the figure legend
// prints 0.9 where the text says 80%; we follow the text).
//
// Expected shape: the average error is insensitive to ω; at ω = 0.05 the
// maximum error is markedly worse (an outlier private node receives too
// few distinct estimates).
#include <iterator>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 200;
  const double ratios[] = {0.05, 0.1, 0.2, 0.33, 0.5, 0.8};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig4: estimation error vs public/private ratio (%zu nodes), "
      "%zu run(s)",
      n, args.runs));
  sink.blank();

  const auto grid = bench::run_series_grid(
      pool, args, std::size(ratios), [&](std::size_t p, std::uint64_t seed) {
        return bench::run_spec_series(
            bench::paper_spec(n, duration)
                .protocol(bench::croupier_proto(25, 50))
                .ratio(ratios[p])
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < std::size(ratios); ++p) {
    const double ratio = ratios[p];
    const auto& agg = grid[p];

    bench::emit_series(sink, exp::strf("fig4a avg-error ratio=%.2f", ratio),
                       agg.t, agg.avg_err, agg.avg_err_sd, args.runs);
    bench::emit_series(sink, exp::strf("fig4b max-error ratio=%.2f", ratio),
                       agg.t, agg.max_err, agg.max_err_sd, args.runs);

    const std::string block = exp::strf("summary ratio=%.2f", ratio);
    const double steady_avg = bench::steady_state(agg.avg_err);
    const double steady_max = bench::steady_state(agg.max_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                           block.c_str(), steady_avg, steady_max));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "steady max-err", steady_max);
  }
  return 0;
}
