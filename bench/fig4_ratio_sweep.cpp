// Regenerates paper figure 4(a)/(b): estimation accuracy for different
// stable public/private ratios (1000 nodes).
//
// Paper sweeps ω ∈ {0.05, 0.1, 0.2, 0.33, 0.5, 0.8} (the figure legend
// prints 0.9 where the text says 80%; we follow the text).
//
// Expected shape: the average error is insensitive to ω; at ω = 0.05 the
// maximum error is markedly worse (an outlier private node receives too
// few distinct estimates).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const double ratios[] = {0.05, 0.1, 0.2, 0.33, 0.5, 0.8};

  const auto cfg = bench::paper_croupier_config(25, 50);
  std::printf(
      "# fig4: estimation error vs public/private ratio (%zu nodes), "
      "%zu run(s)\n\n",
      n, args.runs);

  for (double ratio : ratios) {
    const auto publics =
        static_cast<std::size_t>(ratio * static_cast<double>(n) + 0.5);
    const std::size_t privates = n - publics;
    std::vector<bench::EstimationSeries> runs;
    for (std::size_t r = 0; r < args.runs; ++r) {
      runs.push_back(bench::run_estimation_experiment(
          cfg, args.seed + r * 1000, duration, [&](run::World& w) {
            bench::paper_joins(w, publics, privates);
          }));
    }
    const auto avg = bench::average_runs(runs);

    std::printf("# fig4a avg-error ratio=%.2f\n", ratio);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.avg_err[i]);
    }
    std::printf("\n# fig4b max-error ratio=%.2f\n", ratio);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.max_err[i]);
    }
    std::printf(
        "\n# summary ratio=%.2f: steady avg-err=%.5f steady max-err=%.5f\n\n",
        ratio, bench::steady_state(avg.avg_err),
        bench::steady_state(avg.max_err));
  }
  return 0;
}
