// Ablation: view-merge policy — swapper (the paper's choice, minimal
// information loss) vs healer (fastest purge of stale descriptors).
//
// Compares the two policies for Croupier under churn on: estimation
// error, mean age of view entries, and the fraction of view entries that
// point at dead nodes (the quantity healer is designed to minimize).
#include <iterator>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double avg_err = 0;
  double mean_age = 0;
  double dead_entry_share = 0;
};

TrialResult measure(pss::MergePolicy policy, std::size_t n,
                    std::uint64_t seed, sim::Duration duration,
                    double churn_rate) {
  auto cfg = bench::paper_croupier_config(25, 50);
  cfg.base.merge = policy;
  run::World world(bench::paper_world_config(seed),
                   run::make_croupier_factory(cfg));
  bench::paper_joins(world, n / 5, n - n / 5);
  run::ChurnProcess churn(world, churn_rate, net::NatConfig::open(),
                          net::NatConfig::natted());
  churn.start(sim::sec(30));
  run::EstimationRecorder rec(world, {sim::sec(1), 2});
  rec.start(sim::sec(1));
  world.simulator().run_until(duration);

  TrialResult res;
  res.avg_err = rec.latest().sample.avg_error;
  double age_sum = 0;
  std::size_t entries = 0;
  std::size_t dead = 0;
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const core::Croupier&>(p);
    for (const auto* view : {&c.public_view(), &c.private_view()}) {
      for (const auto& d : view->entries()) {
        age_sum += static_cast<double>(d.age);
        ++entries;
        if (!world.alive(d.id)) ++dead;
      }
    }
  });
  res.mean_age = entries > 0 ? age_sum / static_cast<double>(entries) : 0;
  res.dead_entry_share =
      entries > 0 ? static_cast<double>(dead) / static_cast<double>(entries)
                  : 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const double churn = 0.01;  // 1%/round

  const std::pair<const char*, pss::MergePolicy> policies[] = {
      {"swapper", pss::MergePolicy::Swapper},
      {"healer", pss::MergePolicy::Healer}};

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: merge policy under %.0f%%/round churn; %zu nodes, "
      "%zu run(s)",
      churn * 100, n, args.runs));
  sink.raw(exp::strf("%-10s %10s %10s %14s", "policy", "avg-err", "mean-age",
                     "dead-entries"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(policies), [&](std::size_t p, std::uint64_t seed) {
        return measure(policies[p].second, n, seed, duration, churn);
      });

  for (std::size_t p = 0; p < std::size(policies); ++p) {
    TrialResult sum;
    for (const auto& res : grid[p]) {
      sum.avg_err += res.avg_err;
      sum.mean_age += res.mean_age;
      sum.dead_entry_share += res.dead_entry_share;
    }
    const auto k = static_cast<double>(args.runs);
    sink.raw(exp::strf("%-10s %10.5f %10.2f %13.1f%%", policies[p].first,
                       sum.avg_err / k, sum.mean_age / k,
                       100.0 * sum.dead_entry_share / k));
    const std::string block = exp::strf("merge=%s", policies[p].first);
    sink.value(block, "avg-err", sum.avg_err / k);
    sink.value(block, "mean-age", sum.mean_age / k);
    sink.value(block, "dead-entries %", 100.0 * sum.dead_entry_share / k);
  }
  return 0;
}
