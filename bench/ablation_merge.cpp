// Ablation: view-merge policy — swapper (the paper's choice, minimal
// information loss) vs healer (fastest purge of stale descriptors).
//
// Compares the two policies for Croupier under churn on: estimation
// error, mean age of view entries, and the fraction of view entries that
// point at dead nodes (the quantity healer is designed to minimize).
#include <iterator>

#include "bench_common.hpp"
#include "core/croupier.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  double avg_err = 0;
  double mean_age = 0;
  double dead_entry_share = 0;
};

TrialResult measure(const run::ExperimentSpec& spec, std::uint64_t seed,
                    std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();
  auto& world = experiment.world();

  TrialResult res;
  res.avg_err = experiment.estimation()->latest().sample.avg_error;
  double age_sum = 0;
  std::size_t entries = 0;
  std::size_t dead = 0;
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const core::Croupier&>(p);
    for (const auto* view : {&c.public_view(), &c.private_view()}) {
      for (const auto& d : view->entries()) {
        age_sum += static_cast<double>(d.age);
        ++entries;
        if (!world.alive(d.id)) ++dead;
      }
    }
  });
  res.mean_age = entries > 0 ? age_sum / static_cast<double>(entries) : 0;
  res.dead_entry_share =
      entries > 0 ? static_cast<double>(dead) / static_cast<double>(entries)
                  : 0;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 200;
  const double churn = 0.01;  // 1%/round

  const char* policies[] = {"swapper", "healer"};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: merge policy under %.0f%%/round churn; %zu nodes, "
      "%zu run(s)",
      churn * 100, n, args.runs));
  sink.raw(exp::strf("%-10s %10s %10s %14s", "policy", "avg-err", "mean-age",
                     "dead-entries"));

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(policies), [&](std::size_t p, std::uint64_t seed) {
        return measure(
            bench::paper_spec(n, duration)
                .protocol(exp::strf("croupier:alpha=25,gamma=50,merge=%s",
                                    policies[p]))
                .churn(churn, 30)
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < std::size(policies); ++p) {
    exp::Accum avg_err;
    exp::Accum mean_age;
    exp::Accum dead_share;
    for (const auto& res : grid[p]) {
      avg_err.add(res.avg_err);
      mean_age.add(res.mean_age);
      dead_share.add(100.0 * res.dead_entry_share);
    }
    sink.raw(exp::strf("%-10s %10.5f %10.2f %13.1f%%", policies[p],
                       avg_err.mean(), mean_age.mean(), dead_share.mean()));
    const std::string block = exp::strf("merge=%s", policies[p]);
    bench::emit_value(sink, block, "avg-err", avg_err);
    bench::emit_value(sink, block, "mean-age", mean_age);
    bench::emit_value(sink, block, "dead-entries %", dead_share);
  }
  return 0;
}
