// Shared plumbing for the figure-regeneration benches: flag parsing,
// paper-default protocol configurations, parallel trial fan-out, and
// series/table printing.
//
// Every bench binary regenerates one figure of the paper and prints the
// same rows/series the figure plots. Flags:
//   --runs=N   independent seeds averaged per data point (default 2 to
//              keep the full-suite wall clock modest; the paper averaged
//              5 — pass --runs=5 for publication-grade smoothing)
//   --seed=S   base seed (default 1)
//   --jobs=N   worker threads for trial execution (default: hardware
//              concurrency). Output is byte-identical for every N.
//   --csv=PATH mirror every emitted data point into a CSV file
//   --fast     shrink scale for smoke-testing (CI-friendly)
//
// All trials (runs x parameter points) run through exp::TrialPool; the
// per-trial seed is derived with exp::trial_seed, never by ad-hoc
// seed arithmetic, so growing --runs or reordering sweep points cannot
// make trials share a seed lineage.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "baselines/arrg.hpp"
#include "baselines/cyclon.hpp"
#include "baselines/gozar.hpp"
#include "baselines/nylon.hpp"
#include "core/croupier.hpp"
#include "exp/seeds.hpp"
#include "exp/sink.hpp"
#include "exp/trial_pool.hpp"
#include "runtime/factories.hpp"
#include "runtime/recorder.hpp"
#include "runtime/scenario.hpp"
#include "runtime/world.hpp"

namespace croupier::bench {

struct BenchArgs {
  std::size_t runs = 2;
  std::uint64_t seed = 1;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string csv;       // empty = no CSV mirror
  bool fast = false;

  /// Parses a full decimal number; on malformed or empty input warns on
  /// stderr and leaves `out` untouched, so a typo degrades to the
  /// documented default instead of aborting the bench run.
  static void parse_u64(const std::string& flag, const std::string& text,
                        std::uint64_t& out) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    // strtoull skips leading whitespace and wraps "-1" to UINT64_MAX, so
    // additionally insist the text starts with a digit.
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
        end != text.c_str() + text.size() || errno == ERANGE) {
      std::fprintf(stderr, "warning: ignoring malformed %s=%s\n",
                   flag.c_str(), text.c_str());
      return;
    }
    out = v;
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a.rfind("--runs=", 0) == 0) {
        std::uint64_t v = args.runs;
        parse_u64("--runs", a.substr(7), v);
        args.runs = static_cast<std::size_t>(v);
      } else if (a.rfind("--seed=", 0) == 0) {
        parse_u64("--seed", a.substr(7), args.seed);
      } else if (a.rfind("--jobs=", 0) == 0) {
        std::uint64_t v = args.jobs;
        parse_u64("--jobs", a.substr(7), v);
        args.jobs = static_cast<std::size_t>(v);
      } else if (a.rfind("--csv=", 0) == 0) {
        args.csv = a.substr(6);
      } else if (a == "--fast") {
        args.fast = true;
      } else if (a == "--help") {
        std::printf("flags: --runs=N --seed=S --jobs=N --csv=PATH --fast\n");
        std::exit(0);  // usage requested — don't launch the full run
      }
    }
    if (args.runs == 0) {
      // --runs=0 would feed empty run sets into every aggregate
      // (division by zero in the averages); the least surprising repair
      // is the smallest valid trial count.
      std::fprintf(stderr, "warning: --runs=0 is invalid; clamping to 1\n");
      args.runs = 1;
    }
    return args;
  }
};

/// Fans the full runs x points trial grid of an experiment out on the
/// pool and returns `results[point][run]`, always in grid order
/// regardless of execution order or thread count. `fn(point, seed)` runs
/// one trial; it executes concurrently on pool workers, so it must only
/// read its captures and build its own World.
template <typename Fn>
auto run_trial_grid(exp::TrialPool& pool, const BenchArgs& args,
                    std::size_t points, Fn&& fn)
    -> std::vector<
        std::vector<std::decay_t<decltype(fn(std::size_t{}, std::uint64_t{}))>>> {
  using R = std::decay_t<decltype(fn(std::size_t{}, std::uint64_t{}))>;
  auto flat = pool.map(points * args.runs, [&fn, &args](std::size_t i) {
    const std::size_t p = i / args.runs;
    const std::size_t r = i % args.runs;
    return fn(p, exp::trial_seed(args.seed, p, r));
  });
  std::vector<std::vector<R>> out(points);
  for (std::size_t p = 0; p < points; ++p) {
    out[p].assign(std::make_move_iterator(flat.begin() +
                                          static_cast<std::ptrdiff_t>(p * args.runs)),
                  std::make_move_iterator(flat.begin() +
                                          static_cast<std::ptrdiff_t>((p + 1) * args.runs)));
  }
  return out;
}

/// Paper §VII-A defaults: view 10, shuffle subset 5, 1 s rounds.
inline pss::PssConfig paper_pss_config() {
  pss::PssConfig cfg;
  cfg.view_size = 10;
  cfg.shuffle_size = 5;
  cfg.round_period = sim::sec(1);
  return cfg;
}

inline core::CroupierConfig paper_croupier_config(std::size_t alpha = 25,
                                                  std::size_t gamma = 50) {
  core::CroupierConfig cfg;
  cfg.base = paper_pss_config();
  cfg.estimator.local_history = alpha;
  cfg.estimator.neighbour_history = gamma;
  cfg.estimator.share_limit = 10;
  return cfg;
}

inline baselines::GozarConfig paper_gozar_config() {
  baselines::GozarConfig cfg;
  cfg.base = paper_pss_config();
  return cfg;
}

inline baselines::NylonConfig paper_nylon_config() {
  baselines::NylonConfig cfg;
  cfg.base = paper_pss_config();
  return cfg;
}

inline baselines::ArrgConfig paper_arrg_config() {
  baselines::ArrgConfig cfg;
  cfg.base = paper_pss_config();
  return cfg;
}

inline run::World::Config paper_world_config(std::uint64_t seed) {
  run::World::Config cfg;
  cfg.seed = seed;
  cfg.latency = run::World::LatencyKind::King;
  cfg.clock_skew = 0.01;
  return cfg;
}

/// One run of a Croupier estimation experiment (figures 1-5 all share
/// this skeleton): build a world, apply a scenario, record the error
/// series once per second.
struct EstimationSeries {
  std::vector<double> t;
  std::vector<double> avg_err;
  std::vector<double> max_err;
  std::vector<double> truth;
};

/// Scenario hook: configure joins/churn/ratio changes on the fresh world.
using ScenarioFn = std::function<void(run::World&)>;

inline EstimationSeries to_series(const run::EstimationRecorder& recorder) {
  EstimationSeries out;
  for (const auto& p : recorder.series()) {
    out.t.push_back(p.t_seconds);
    out.avg_err.push_back(p.sample.avg_error);
    out.max_err.push_back(p.sample.max_error);
    out.truth.push_back(p.sample.truth);
  }
  return out;
}

inline EstimationSeries run_estimation_experiment(
    const core::CroupierConfig& cfg, std::uint64_t seed,
    sim::Duration duration, const ScenarioFn& scenario) {
  run::World world(paper_world_config(seed),
                   run::make_croupier_factory(cfg));
  scenario(world);
  run::EstimationRecorder recorder(world, {sim::sec(1), 2});
  recorder.start(sim::sec(1));
  world.simulator().run_until(duration);
  return to_series(recorder);
}

/// Pointwise average of several runs of the same experiment (series are
/// sampled on the same 1 s grid).
inline EstimationSeries average_runs(
    const std::vector<EstimationSeries>& runs) {
  EstimationSeries avg;
  if (runs.empty()) return avg;
  std::size_t len = runs[0].t.size();
  for (const auto& r : runs) len = std::min(len, r.t.size());
  for (std::size_t i = 0; i < len; ++i) {
    double a = 0;
    double m = 0;
    double tr = 0;
    for (const auto& r : runs) {
      a += r.avg_err[i];
      m += r.max_err[i];
      tr += r.truth[i];
    }
    const auto n = static_cast<double>(runs.size());
    avg.t.push_back(runs[0].t[i]);
    avg.avg_err.push_back(a / n);
    avg.max_err.push_back(m / n);
    avg.truth.push_back(tr / n);
  }
  return avg;
}

/// Mean of the tail (steady state) of a series.
inline double steady_state(const std::vector<double>& v,
                           std::size_t tail = 50) {
  if (v.empty()) return 0.0;
  const std::size_t n = std::min(tail, v.size());
  double sum = 0;
  for (std::size_t i = v.size() - n; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(n);
}

/// The paper's standard join process: public and private nodes arrive by
/// Poisson processes with 50 ms / 12.5 ms mean inter-arrival times.
inline void paper_joins(run::World& world, std::size_t publics,
                        std::size_t privates) {
  run::schedule_poisson_joins(world, publics, net::NatConfig::open(),
                              sim::msec(50));
  run::schedule_poisson_joins(world, privates, net::NatConfig::natted(),
                              sim::msec(13));
}

}  // namespace croupier::bench
