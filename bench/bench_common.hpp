// Shared plumbing for the figure-regeneration benches: flag parsing,
// paper-default experiment specs, parallel trial fan-out, and
// series/table printing.
//
// Every bench binary regenerates one figure of the paper and prints the
// same rows/series the figure plots. Flags:
//   --runs=N   independent seeds averaged per data point (default 2 to
//              keep the full-suite wall clock modest; the paper averaged
//              5 — pass --runs=5 for publication-grade smoothing). With
//              --runs>1 every series row carries a third column: the
//              across-runs standard deviation (gnuplot errorbars).
//   --seed=S   base seed (default 1)
//   --jobs=N   total worker-thread budget (default: hardware
//              concurrency). Output is byte-identical for every N.
//   --world-jobs=N  workers *inside* each trial World (the
//              round-synchronous parallel engine; default 1). The trial
//              pool divides --jobs by this so trial-level and
//              world-level parallelism share one core budget. Output is
//              byte-identical for every N.
//   --csv=PATH mirror every emitted data point into a CSV file
//   --fast     shrink scale for smoke-testing (CI-friendly)
// Unknown flags warn on stderr (a typo like --run=5 must be visible, not
// silently revert to the default).
//
// Experiments are declarative: a bench builds run::ExperimentSpec values
// (protocol chosen by ProtocolRegistry name, e.g.
// "croupier:alpha=25,gamma=50") and fans the runs x points trial grid
// out on exp::TrialPool; the per-trial seed is derived with
// exp::trial_seed, never by ad-hoc seed arithmetic, so growing --runs or
// reordering sweep points cannot make trials share a seed lineage.
#pragma once

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exp/seeds.hpp"
#include "exp/sink.hpp"
#include "exp/trial_pool.hpp"
#include "runtime/recorder.hpp"
#include "runtime/registry.hpp"
#include "runtime/spec.hpp"
#include "runtime/world.hpp"

namespace croupier::bench {

/// True when this binary was compiled under any sanitizer. Detection is
/// belt-and-braces: the build system defines CROUPIER_SANITIZED whenever
/// -fsanitize appears in the flags (gcc has no UBSan macro), gcc defines
/// __SANITIZE_ADDRESS__/__SANITIZE_THREAD__ itself, and clang exposes
/// __has_feature. Sanitized timings are 2-20x off; they must never be
/// mistaken for a performance baseline.
[[nodiscard]] constexpr bool built_with_sanitizer() {
#if defined(CROUPIER_SANITIZED) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer) ||                                     \
    __has_feature(undefined_behavior_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

struct BenchArgs {
  std::size_t runs = 2;
  std::uint64_t seed = 1;
  std::size_t jobs = 0;        // 0 = hardware concurrency
  std::size_t world_jobs = 1;  // workers inside each trial World
  std::string csv;             // empty = no CSV mirror
  bool fast = false;

  /// The trial pool's worker count: --jobs is the *total* core budget,
  /// and every trial World consumes world_jobs of it, so trial-level and
  /// world-level parallelism compose instead of oversubscribing.
  [[nodiscard]] std::size_t trial_jobs() const {
    const std::size_t total =
        jobs != 0 ? jobs
                  : std::max<std::size_t>(
                        1, std::thread::hardware_concurrency());
    return std::max<std::size_t>(1,
                                 total / std::max<std::size_t>(1, world_jobs));
  }

  /// Hook for binaries with extra flags (croupier-lab): called first for
  /// every argument; return true to consume it.
  using ExtraFlagFn = std::function<bool(const std::string&)>;

  /// Parses a full decimal number; on malformed or empty input warns on
  /// stderr and leaves `out` untouched, so a typo degrades to the
  /// documented default instead of aborting the bench run.
  static void parse_u64(const std::string& flag, const std::string& text,
                        std::uint64_t& out) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    // strtoull skips leading whitespace and wraps "-1" to UINT64_MAX, so
    // additionally insist the text starts with a digit.
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
        end != text.c_str() + text.size() || errno == ERANGE) {
      std::fprintf(stderr, "warning: ignoring malformed %s=%s\n",
                   flag.c_str(), text.c_str());
      return;
    }
    out = v;
  }

  static BenchArgs parse(int argc, char** argv,
                         const ExtraFlagFn& extra = {}) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (extra && extra(a)) {
        // consumed by the caller
      } else if (a.rfind("--runs=", 0) == 0) {
        std::uint64_t v = args.runs;
        parse_u64("--runs", a.substr(7), v);
        args.runs = static_cast<std::size_t>(v);
      } else if (a.rfind("--seed=", 0) == 0) {
        parse_u64("--seed", a.substr(7), args.seed);
      } else if (a.rfind("--jobs=", 0) == 0) {
        std::uint64_t v = args.jobs;
        parse_u64("--jobs", a.substr(7), v);
        args.jobs = static_cast<std::size_t>(v);
      } else if (a.rfind("--world-jobs=", 0) == 0) {
        std::uint64_t v = args.world_jobs;
        parse_u64("--world-jobs", a.substr(13), v);
        args.world_jobs = static_cast<std::size_t>(v);
      } else if (a.rfind("--csv=", 0) == 0) {
        if (built_with_sanitizer()) {
          // A sanitized binary must never mirror data points to disk:
          // that CSV is one copy-paste away from becoming the regression
          // baseline, and instrumented timings poison every later
          // comparison. scripts/run_benches.sh checks --build-info for
          // the same reason before writing BENCH_micro.json.
          std::fprintf(stderr,
                       "error: refusing %s: this binary was built with a "
                       "sanitizer (timings are instrumented, not "
                       "baseline-grade); rebuild without -fsanitize\n",
                       a.c_str());
          std::exit(2);
        }
        args.csv = a.substr(6);
      } else if (a == "--fast") {
        args.fast = true;
      } else if (a == "--build-info") {
        // Machine-readable build provenance for scripts/run_benches.sh.
        std::printf("sanitized=%s\n", built_with_sanitizer() ? "yes" : "no");
        std::exit(0);
      } else if (a == "--help") {
        std::printf(
            "flags: --runs=N --seed=S --jobs=N --world-jobs=N --csv=PATH "
            "--fast --build-info\n");
        std::exit(0);  // usage requested — don't launch the full run
      } else {
        // A typo like --run=5 silently reverting to the default cost
        // real debugging time; make every unrecognized argument loud.
        std::fprintf(stderr, "warning: unknown flag %s (ignored)\n",
                     a.c_str());
      }
    }
    if (args.runs == 0) {
      // --runs=0 would feed empty run sets into every aggregate
      // (division by zero in the averages); the least surprising repair
      // is the smallest valid trial count.
      std::fprintf(stderr, "warning: --runs=0 is invalid; clamping to 1\n");
      args.runs = 1;
    }
    if (args.world_jobs == 0) {
      std::fprintf(stderr,
                   "warning: --world-jobs=0 is invalid; clamping to 1\n");
      args.world_jobs = 1;
    }
    const std::size_t budget =
        args.jobs != 0 ? args.jobs
                       : std::max<std::size_t>(
                             1, std::thread::hardware_concurrency());
    if (args.world_jobs > budget) {
      // --jobs is the *total* core budget the two axes share; shards
      // beyond it would silently oversubscribe (output is identical
      // either way, so clamping is safe).
      std::fprintf(stderr,
                   "warning: --world-jobs=%zu exceeds the --jobs budget "
                   "(%zu); clamping\n",
                   args.world_jobs, budget);
      args.world_jobs = budget;
    }
    return args;
  }
};

/// Fans the full runs x points trial grid of an experiment out on the
/// pool and returns `results[point][run]`, always in grid order
/// regardless of execution order or thread count. `fn(point, seed)` runs
/// one trial; it executes concurrently on pool workers, so it must only
/// read its captures and build its own World.
template <typename Fn>
auto run_trial_grid(exp::TrialPool& pool, const BenchArgs& args,
                    std::size_t points, Fn&& fn)
    -> std::vector<
        std::vector<std::decay_t<decltype(fn(std::size_t{}, std::uint64_t{}))>>> {
  using R = std::decay_t<decltype(fn(std::size_t{}, std::uint64_t{}))>;
  auto flat = pool.map(points * args.runs, [&fn, &args](std::size_t i) {
    const std::size_t p = i / args.runs;
    const std::size_t r = i % args.runs;
    return fn(p, exp::trial_seed(args.seed, p, r));
  });
  std::vector<std::vector<R>> out(points);
  for (std::size_t p = 0; p < points; ++p) {
    out[p].assign(std::make_move_iterator(flat.begin() +
                                          static_cast<std::ptrdiff_t>(p * args.runs)),
                  std::make_move_iterator(flat.begin() +
                                          static_cast<std::ptrdiff_t>((p + 1) * args.runs)));
  }
  return out;
}

/// Registry spec for Croupier with explicit history windows (the
/// (α, γ) pairs the paper sweeps).
inline std::string croupier_proto(std::size_t alpha, std::size_t gamma) {
  return exp::strf("croupier:alpha=%zu,gamma=%zu", alpha, gamma);
}

/// Paper §VII-A setup as a spec builder: ω = 0.2, Poisson joins with
/// 50 ms / 13 ms inter-arrival, King latencies, 1 % clock skew. Chain
/// further builder calls for the figure-specific workload.
inline run::SpecBuilder paper_spec(std::size_t nodes, double duration_s) {
  return run::SpecBuilder().nodes(nodes).ratio(0.2).duration(duration_s);
}

/// One run of a Croupier estimation experiment (figures 1-5 all share
/// this skeleton): build a world from the spec, record the error series
/// once per second.
struct EstimationSeries {
  std::vector<double> t;
  std::vector<double> avg_err;
  std::vector<double> max_err;
  std::vector<double> truth;
};

inline EstimationSeries to_series(const run::EstimationRecorder& recorder) {
  EstimationSeries out;
  for (const auto& p : recorder.series()) {
    out.t.push_back(p.t_seconds);
    out.avg_err.push_back(p.sample.avg_error);
    out.max_err.push_back(p.sample.max_error);
    out.truth.push_back(p.sample.truth);
  }
  return out;
}

/// Runs a spec (which must record estimation) to its horizon and returns
/// the error series — the standard trial body of figures 1-5.
/// `world_jobs` picks the engine inside the trial's World (byte-identical
/// output for every value).
inline EstimationSeries run_spec_series(const run::ExperimentSpec& spec,
                                        std::uint64_t seed,
                                        std::size_t world_jobs = 1) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();
  return to_series(*experiment.estimation());
}

/// Pointwise mean and across-runs standard deviation of several runs of
/// the same experiment (series are sampled on the same 1 s grid).
struct AggregatedSeries {
  std::vector<double> t;
  std::vector<double> avg_err;
  std::vector<double> avg_err_sd;
  std::vector<double> max_err;
  std::vector<double> max_err_sd;
  std::vector<double> truth;
};

/// Streaming accumulator for one sweep point: folds each finished trial's
/// EstimationSeries into pointwise Welford accumulators (exp::SeriesAccum)
/// and frees it, instead of materialising all --runs series. Runs must be
/// folded in run order (TrialPool::map_fold guarantees it), which keeps
/// the aggregate byte-identical for every --jobs value.
struct SeriesFold {
  std::vector<double> t;  // grid of the first run; truncated in finish()
  exp::SeriesAccum avg_err;
  exp::SeriesAccum max_err;
  exp::SeriesAccum truth;

  void add(const EstimationSeries& run) {
    if (t.empty()) t = run.t;
    avg_err.add(run.avg_err);
    max_err.add(run.max_err);
    truth.add(run.truth);
  }

  [[nodiscard]] AggregatedSeries finish() const {
    AggregatedSeries agg;
    const std::size_t len = avg_err.size();
    agg.t.assign(t.begin(), t.begin() + static_cast<std::ptrdiff_t>(len));
    agg.avg_err = avg_err.means();
    agg.avg_err_sd = avg_err.stddevs();
    agg.max_err = max_err.means();
    agg.max_err_sd = max_err.stddevs();
    agg.truth = truth.means();
    return agg;
  }
};

/// Fans the runs x points grid of a series experiment out on the pool and
/// streams each finished trial into its point's SeriesFold — the
/// cross-trial streaming aggregation path: peak memory holds ~--jobs
/// series instead of all points x runs. Results come back in grid order
/// whatever the worker count.
template <typename Fn>
std::vector<AggregatedSeries> run_series_grid(exp::TrialPool& pool,
                                              const BenchArgs& args,
                                              std::size_t points, Fn&& fn) {
  std::vector<SeriesFold> folds(points);
  pool.map_fold(
      points * args.runs,
      [&fn, &args](std::size_t i) {
        const std::size_t p = i / args.runs;
        const std::size_t r = i % args.runs;
        return fn(p, exp::trial_seed(args.seed, p, r));
      },
      [&folds, &args](std::size_t i, EstimationSeries&& series) {
        folds[i / args.runs].add(series);
      });
  std::vector<AggregatedSeries> out;
  out.reserve(points);
  for (const auto& fold : folds) out.push_back(fold.finish());
  return out;
}

/// Emits a series block, with the across-runs stddev column whenever more
/// than one run backs each point.
inline void emit_series(exp::ResultSink& sink, const std::string& name,
                        const std::vector<double>& x,
                        const std::vector<double>& y,
                        const std::vector<double>& sd, std::size_t runs,
                        const char* x_fmt = "%.0f",
                        const char* y_fmt = "%.6f") {
  if (runs > 1) {
    sink.series(name, x, y, sd, x_fmt, y_fmt);
  } else {
    sink.series(name, x, y, x_fmt, y_fmt);
  }
}

/// Emits a summary scalar plus its across-runs spread (CSV only).
inline void emit_value(exp::ResultSink& sink, const std::string& block,
                       const std::string& key, const exp::Accum& acc) {
  sink.value(block, key, acc.mean());
  if (acc.n() > 1) sink.spread(block, key, acc.stddev());
}

/// Mean of the tail (steady state) of a series.
inline double steady_state(const std::vector<double>& v,
                           std::size_t tail = 50) {
  if (v.empty()) return 0.0;
  const std::size_t n = std::min(tail, v.size());
  double sum = 0;
  for (std::size_t i = v.size() - n; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(n);
}

}  // namespace croupier::bench
