// Ablation: clock skew and the estimator's first assumption ("no bias
// between the average gossip round-time of public and private nodes").
//
// Two sweeps:
//  1. symmetric skew — every node's period is scaled by 1±s uniformly:
//     the assumption holds and the estimate should stay unbiased;
//  2. adversarial bias — private nodes gossip `b` slower than public
//     nodes: privates send fewer requests per unit time, croupiers
//     over-count publics, and Ê(ω) acquires a predictable upward bias of
//     ω(1+b)/(ω(1+b)+(1-ω)) − ω. This quantifies how much the paper's
//     assumption actually matters and validates the estimator's physics.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace croupier;

double measure_bias(double clock_skew, double private_slowdown,
                    std::size_t n, std::uint64_t seed,
                    sim::Duration duration) {
  auto wcfg = bench::paper_world_config(seed);
  wcfg.clock_skew = clock_skew;
  wcfg.private_round_scale = 1.0 + private_slowdown;
  run::World world(wcfg, run::make_croupier_factory(
                             bench::paper_croupier_config(25, 50)));
  bench::paper_joins(world, n / 5, n - n / 5);
  world.simulator().run_until(duration);

  double sum = 0;
  const auto estimates = world.ratio_estimates();
  if (estimates.empty()) return 0;
  for (double e : estimates) sum += e - world.true_ratio();
  return sum / static_cast<double>(estimates.size());  // signed bias
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const auto duration = sim::sec(args.fast ? 100 : 200);
  const double omega = 0.2;

  std::printf(
      "# ablation: round-time skew vs estimation bias; %zu nodes, "
      "omega=0.2, %zu run(s)\n",
      n, args.runs);
  std::printf("# signed bias = mean(estimate - omega); ~0 is unbiased\n");
  std::printf("%-26s %12s %12s\n", "scenario", "measured", "predicted");

  for (double skew : {0.0, 0.01, 0.05, 0.10, 0.20}) {
    double bias = 0;
    for (std::size_t r = 0; r < args.runs; ++r) {
      bias += measure_bias(skew, 0.0, n, args.seed + r * 1000, duration);
    }
    std::printf("symmetric skew %4.0f%%      %+12.5f %+12.5f\n", skew * 100,
                bias / static_cast<double>(args.runs), 0.0);
  }

  for (double slow : {0.05, 0.10, 0.20, 0.50}) {
    double bias = 0;
    for (std::size_t r = 0; r < args.runs; ++r) {
      bias += measure_bias(0.01, slow, n, args.seed + r * 1000, duration);
    }
    const double predicted =
        omega * (1.0 + slow) / (omega * (1.0 + slow) + (1.0 - omega)) -
        omega;
    std::printf("privates %3.0f%% slower      %+12.5f %+12.5f\n", slow * 100,
                bias / static_cast<double>(args.runs), predicted);
  }
  return 0;
}
