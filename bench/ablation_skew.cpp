// Ablation: clock skew and the estimator's first assumption ("no bias
// between the average gossip round-time of public and private nodes").
//
// Two sweeps:
//  1. symmetric skew — every node's period is scaled by 1±s uniformly:
//     the assumption holds and the estimate should stay unbiased;
//  2. adversarial bias — private nodes gossip `b` slower than public
//     nodes: privates send fewer requests per unit time, croupiers
//     over-count publics, and Ê(ω) acquires a predictable upward bias of
//     ω(1+b)/(ω(1+b)+(1-ω)) − ω. This quantifies how much the paper's
//     assumption actually matters and validates the estimator's physics.
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace croupier;

double measure_bias(const run::ExperimentSpec& spec, std::uint64_t seed,
                    std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();
  auto& world = experiment.world();

  double sum = 0;
  const auto estimates = world.ratio_estimates();
  if (estimates.empty()) return 0;
  for (double e : estimates) sum += e - world.true_ratio();
  return sum / static_cast<double>(estimates.size());  // signed bias
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 200;
  const double omega = 0.2;

  // Both sweeps flattened into one trial grid: symmetric-skew points
  // first, then the adversarial private-slowdown points.
  struct Point {
    double skew;
    double slowdown;
  };
  std::vector<Point> sweep;
  const double skews[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  const double slowdowns[] = {0.05, 0.10, 0.20, 0.50};
  for (double skew : skews) sweep.push_back({skew, 0.0});
  for (double slow : slowdowns) sweep.push_back({0.01, slow});

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "ablation: round-time skew vs estimation bias; %zu nodes, "
      "omega=0.2, %zu run(s)",
      n, args.runs));
  sink.comment("signed bias = mean(estimate - omega); ~0 is unbiased");
  sink.raw(exp::strf("%-26s %12s %12s", "scenario", "measured", "predicted"));

  const auto grid = bench::run_trial_grid(
      pool, args, sweep.size(), [&](std::size_t p, std::uint64_t seed) {
        return measure_bias(
            bench::paper_spec(n, duration)
                .protocol(bench::croupier_proto(25, 50))
                .skew(sweep[p].skew)
                .private_round_scale(1.0 + sweep[p].slowdown)
                .record_nothing()
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < sweep.size(); ++p) {
    const Point& pt = sweep[p];
    exp::Accum bias;
    for (double b : grid[p]) bias.add(b);

    if (pt.slowdown == 0.0) {
      sink.raw(exp::strf("symmetric skew %4.0f%%      %+12.5f %+12.5f",
                         pt.skew * 100, bias.mean(), 0.0));
      const std::string block = exp::strf("symmetric-skew=%.0f%%",
                                          pt.skew * 100);
      bench::emit_value(sink, block, "measured", bias);
      sink.value(block, "predicted", 0.0);
    } else {
      const double predicted =
          omega * (1.0 + pt.slowdown) /
              (omega * (1.0 + pt.slowdown) + (1.0 - omega)) -
          omega;
      sink.raw(exp::strf("privates %3.0f%% slower      %+12.5f %+12.5f",
                         pt.slowdown * 100, bias.mean(), predicted));
      const std::string block = exp::strf("private-slowdown=%.0f%%",
                                          pt.slowdown * 100);
      bench::emit_value(sink, block, "measured", bias);
      sink.value(block, "predicted", predicted);
    }
  }
  return 0;
}
