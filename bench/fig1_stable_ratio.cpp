// Regenerates paper figure 1(a)/(b): convergence of the public/private
// ratio estimator to a *stable* ratio, for three history-window pairs.
//
// Paper setup: 1000 public + 4000 private nodes join by Poisson processes
// (50 ms / 12.5 ms inter-arrival), ω = 0.2, 250 rounds;
// (α, γ) ∈ {(10,25), (25,50), (100,250)}.
//
// Expected shape: larger windows converge more slowly but to lower
// steady-state error, on both the average (a) and maximum (b) metrics.
#include <iterator>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t nodes = args.fast ? 500 : 5000;  // ω = 0.2
  // 350 s rather than the paper's 250: the largest history window is
  // still converging at t=250 (the paper notes it converges ~100 rounds
  // later); the longer horizon makes the accuracy crossover visible.
  const double duration = args.fast ? 120 : 350;

  const std::pair<std::size_t, std::size_t> windows[] = {
      {10, 25}, {25, 50}, {100, 250}};

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig1: stable-ratio estimation error; %zu public + %zu private "
      "nodes (omega=0.2), %zu run(s)",
      nodes / 5, nodes - nodes / 5, args.runs));
  sink.blank();

  const auto grid = bench::run_series_grid(
      pool, args, std::size(windows), [&](std::size_t p, std::uint64_t seed) {
        const auto& [alpha, gamma] = windows[p];
        return bench::run_spec_series(
            bench::paper_spec(nodes, duration)
                .protocol(bench::croupier_proto(alpha, gamma))
                .build(),
            seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < std::size(windows); ++p) {
    const auto& [alpha, gamma] = windows[p];
    const auto& agg = grid[p];

    bench::emit_series(
        sink, exp::strf("fig1a avg-error alpha=%zu gamma=%zu", alpha, gamma),
        agg.t, agg.avg_err, agg.avg_err_sd, args.runs);
    bench::emit_series(
        sink, exp::strf("fig1b max-error alpha=%zu gamma=%zu", alpha, gamma),
        agg.t, agg.max_err, agg.max_err_sd, args.runs);

    const std::string block =
        exp::strf("summary alpha=%zu gamma=%zu", alpha, gamma);
    const double steady_avg = bench::steady_state(agg.avg_err);
    const double steady_max = bench::steady_state(agg.max_err);
    sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                           block.c_str(), steady_avg, steady_max));
    sink.blank();
    sink.value(block, "steady avg-err", steady_avg);
    sink.value(block, "steady max-err", steady_max);
  }
  return 0;
}
