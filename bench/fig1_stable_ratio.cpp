// Regenerates paper figure 1(a)/(b): convergence of the public/private
// ratio estimator to a *stable* ratio, for three history-window pairs.
//
// Paper setup: 1000 public + 4000 private nodes join by Poisson processes
// (50 ms / 12.5 ms inter-arrival), ω = 0.2, 250 rounds;
// (α, γ) ∈ {(10,25), (25,50), (100,250)}.
//
// Expected shape: larger windows converge more slowly but to lower
// steady-state error, on both the average (a) and maximum (b) metrics.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace croupier;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t publics = args.fast ? 100 : 1000;
  const std::size_t privates = args.fast ? 400 : 4000;
  // 350 s rather than the paper's 250: the largest history window is
  // still converging at t=250 (the paper notes it converges ~100 rounds
  // later); the longer horizon makes the accuracy crossover visible.
  const auto duration = sim::sec(args.fast ? 120 : 350);

  const std::pair<std::size_t, std::size_t> windows[] = {
      {10, 25}, {25, 50}, {100, 250}};

  std::printf(
      "# fig1: stable-ratio estimation error; %zu public + %zu private "
      "nodes (omega=0.2), %zu run(s)\n\n",
      publics, privates, args.runs);

  for (const auto& [alpha, gamma] : windows) {
    const auto cfg = bench::paper_croupier_config(alpha, gamma);
    std::vector<bench::EstimationSeries> runs;
    for (std::size_t r = 0; r < args.runs; ++r) {
      runs.push_back(bench::run_estimation_experiment(
          cfg, args.seed + r * 1000, duration, [&](run::World& w) {
            bench::paper_joins(w, publics, privates);
          }));
    }
    const auto avg = bench::average_runs(runs);

    std::printf("# fig1a avg-error alpha=%zu gamma=%zu\n", alpha, gamma);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.avg_err[i]);
    }
    std::printf("\n# fig1b max-error alpha=%zu gamma=%zu\n", alpha, gamma);
    for (std::size_t i = 0; i < avg.t.size(); ++i) {
      std::printf("%.0f %.6f\n", avg.t[i], avg.max_err[i]);
    }
    std::printf(
        "\n# summary alpha=%zu gamma=%zu: steady avg-err=%.5f "
        "steady max-err=%.5f\n\n",
        alpha, gamma, bench::steady_state(avg.avg_err),
        bench::steady_state(avg.max_err));
  }
  return 0;
}
