// Regenerates paper figure 6(a)/(b)/(c): randomness properties of the
// overlay built by Croupier, Gozar, Nylon and Cyclon.
//
// Setup (paper §VII-A/C): 1000 nodes, 20% public (Cyclon runs on an
// all-public population of the same size), view size 10, shuffle subset
// 5, 250 rounds.
//  (a) in-degree distribution after 250 rounds (out-degree 10: Croupier
//      uses the ratio-proportional view split so its total degree matches
//      the single-view systems);
//  (b) average path length over time;
//  (c) average clustering coefficient over time.
//
// Expected shape: all four systems close to Cyclon on (a) and (b);
// Croupier's clustering coefficient slightly *lower* than the rest (two
// private nodes never exchange views directly); Gozar's path length
// starts high while private nodes find relay parents.
#include <map>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  std::map<std::size_t, std::size_t> indegree_hist;
  std::vector<run::GraphStatsPoint> series;
};

TrialResult measure(const run::ProtocolFactory& factory, std::size_t publics,
                    std::size_t privates, std::uint64_t seed,
                    sim::Duration duration) {
  run::World world(bench::paper_world_config(seed), factory);
  bench::paper_joins(world, publics, privates);
  run::GraphStatsRecorder recorder(world, {sim::sec(10), 128});
  recorder.start(sim::sec(10));
  world.simulator().run_until(duration);

  TrialResult result;
  result.indegree_hist = world.snapshot_overlay().in_degree_histogram();
  result.series = recorder.series();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const std::size_t publics = n / 5;
  const auto duration = sim::sec(args.fast ? 100 : 250);

  auto croupier_cfg = bench::paper_croupier_config(25, 50);
  croupier_cfg.sizing = core::ViewSizing::RatioProportional;

  struct Row {
    const char* name;
    run::ProtocolFactory factory;
    bool all_public = false;
  };
  std::vector<Row> rows;
  rows.push_back({"croupier", run::make_croupier_factory(croupier_cfg)});
  rows.push_back(
      {"gozar", run::make_gozar_factory(bench::paper_gozar_config())});
  rows.push_back(
      {"nylon", run::make_nylon_factory(bench::paper_nylon_config())});
  rows.push_back(
      {"cyclon", run::make_cyclon_factory(bench::paper_pss_config()), true});

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig6: randomness properties; %zu nodes, 20%% public, view 10, "
      "%zu run(s)",
      n, args.runs));
  sink.blank();

  const auto grid = bench::run_trial_grid(
      pool, args, rows.size(), [&](std::size_t p, std::uint64_t seed) {
        const Row& row = rows[p];
        return measure(row.factory, row.all_public ? n : publics,
                       row.all_public ? 0 : n - publics, seed, duration);
      });

  for (std::size_t p = 0; p < rows.size(); ++p) {
    const Row& row = rows[p];
    // Histogram averaged over runs; the time series from the last run
    // (one representative trajectory, as the paper plots).
    std::map<std::size_t, double> hist;
    for (const auto& trial : grid[p]) {
      for (const auto& [deg, count] : trial.indegree_hist) {
        hist[deg] +=
            static_cast<double>(count) / static_cast<double>(args.runs);
      }
    }
    const auto& series = grid[p].back().series;

    const std::string hist_name = exp::strf(
        "fig6a indegree-histogram %s (after %.0fs)", row.name,
        sim::to_seconds(duration));
    std::vector<double> degs;
    std::vector<double> counts;
    for (const auto& [deg, count] : hist) {
      degs.push_back(static_cast<double>(deg));
      counts.push_back(count);
    }
    sink.series(hist_name, degs, counts, "%.0f", "%.1f");

    std::vector<double> t;
    std::vector<double> apl;
    std::vector<double> cc;
    for (const auto& pt : series) {
      t.push_back(pt.t_seconds);
      apl.push_back(pt.avg_path_length);
      cc.push_back(pt.clustering_coefficient);
    }
    sink.series(exp::strf("fig6b avg-path-length %s", row.name), t, apl,
                "%.0f", "%.4f");
    sink.series(exp::strf("fig6c clustering-coefficient %s", row.name), t, cc,
                "%.0f", "%.5f");

    const auto& last =
        series.empty() ? run::GraphStatsPoint{} : series.back();
    const std::string block = exp::strf("summary %s", row.name);
    sink.comment(exp::strf(
        "%s: final apl=%.3f final cc=%.4f unreachable=%.4f", block.c_str(),
        last.avg_path_length, last.clustering_coefficient,
        last.unreachable_fraction));
    sink.blank();
    sink.value(block, "final apl", last.avg_path_length);
    sink.value(block, "final cc", last.clustering_coefficient);
    sink.value(block, "unreachable", last.unreachable_fraction);
  }
  return 0;
}
