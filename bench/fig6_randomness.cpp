// Regenerates paper figure 6(a)/(b)/(c): randomness properties of the
// overlay built by Croupier, Gozar, Nylon and Cyclon.
//
// Setup (paper §VII-A/C): 1000 nodes, 20% public (Cyclon runs on an
// all-public population of the same size), view size 10, shuffle subset
// 5, 250 rounds.
//  (a) in-degree distribution after 250 rounds (out-degree 10: Croupier
//      uses the ratio-proportional view split so its total degree matches
//      the single-view systems);
//  (b) average path length over time;
//  (c) average clustering coefficient over time.
//
// Expected shape: all four systems close to Cyclon on (a) and (b);
// Croupier's clustering coefficient slightly *lower* than the rest (two
// private nodes never exchange views directly); Gozar's path length
// starts high while private nodes find relay parents.
#include <map>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct TrialResult {
  std::map<std::size_t, std::size_t> indegree_hist;
  std::vector<run::GraphStatsPoint> series;
};

TrialResult measure(const run::ExperimentSpec& spec, std::uint64_t seed,
                    std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();

  TrialResult result;
  result.indegree_hist =
      experiment.world().snapshot_overlay().in_degree_histogram();
  result.series = experiment.graph_stats()->series();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const double duration = args.fast ? 100 : 250;

  struct Row {
    const char* name;
    const char* protocol;
    bool all_public = false;
  };
  const Row rows[] = {
      {"croupier", "croupier:alpha=25,gamma=50,sizing=proportional"},
      {"gozar", "gozar"},
      {"nylon", "nylon"},
      {"cyclon", "cyclon", true},
  };

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf(
      "fig6: randomness properties; %zu nodes, 20%% public, view 10, "
      "%zu run(s)",
      n, args.runs));
  sink.blank();

  const auto grid = bench::run_trial_grid(
      pool, args, std::size(rows), [&](std::size_t p, std::uint64_t seed) {
        const Row& row = rows[p];
        return measure(bench::paper_spec(n, duration)
                           .protocol(row.protocol)
                           .ratio(row.all_public ? 1.0 : 0.2)
                           .record_graph(10)
                           .build(),
                       seed, args.world_jobs);
      });

  for (std::size_t p = 0; p < std::size(rows); ++p) {
    const Row& row = rows[p];
    // Histogram averaged over runs; the time series from the last run
    // (one representative trajectory, as the paper plots).
    std::map<std::size_t, double> hist;
    for (const auto& trial : grid[p]) {
      for (const auto& [deg, count] : trial.indegree_hist) {
        hist[deg] +=
            static_cast<double>(count) / static_cast<double>(args.runs);
      }
    }
    const auto& series = grid[p].back().series;

    const std::string hist_name = exp::strf(
        "fig6a indegree-histogram %s (after %.0fs)", row.name, duration);
    std::vector<double> degs;
    std::vector<double> counts;
    for (const auto& [deg, count] : hist) {
      degs.push_back(static_cast<double>(deg));
      counts.push_back(count);
    }
    sink.series(hist_name, degs, counts, "%.0f", "%.1f");

    std::vector<double> t;
    std::vector<double> apl;
    std::vector<double> cc;
    for (const auto& pt : series) {
      t.push_back(pt.t_seconds);
      apl.push_back(pt.avg_path_length);
      cc.push_back(pt.clustering_coefficient);
    }
    sink.series(exp::strf("fig6b avg-path-length %s", row.name), t, apl,
                "%.0f", "%.4f");
    sink.series(exp::strf("fig6c clustering-coefficient %s", row.name), t, cc,
                "%.0f", "%.5f");

    const auto& last =
        series.empty() ? run::GraphStatsPoint{} : series.back();
    const std::string block = exp::strf("summary %s", row.name);
    sink.comment(exp::strf(
        "%s: final apl=%.3f final cc=%.4f unreachable=%.4f", block.c_str(),
        last.avg_path_length, last.clustering_coefficient,
        last.unreachable_fraction));
    sink.blank();
    sink.value(block, "final apl", last.avg_path_length);
    sink.value(block, "final cc", last.clustering_coefficient);
    sink.value(block, "unreachable", last.unreachable_fraction);
  }
  return 0;
}
