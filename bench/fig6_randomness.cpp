// Regenerates paper figure 6(a)/(b)/(c): randomness properties of the
// overlay built by Croupier, Gozar, Nylon and Cyclon.
//
// Setup (paper §VII-A/C): 1000 nodes, 20% public (Cyclon runs on an
// all-public population of the same size), view size 10, shuffle subset
// 5, 250 rounds.
//  (a) in-degree distribution after 250 rounds (out-degree 10: Croupier
//      uses the ratio-proportional view split so its total degree matches
//      the single-view systems);
//  (b) average path length over time;
//  (c) average clustering coefficient over time.
//
// Expected shape: all four systems close to Cyclon on (a) and (b);
// Croupier's clustering coefficient slightly *lower* than the rest (two
// private nodes never exchange views directly); Gozar's path length
// starts high while private nodes find relay parents.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

namespace {

using namespace croupier;

struct SystemResult {
  std::map<std::size_t, double> indegree_hist;  // averaged over runs
  std::vector<run::GraphStatsPoint> series;     // from the last run
};

SystemResult measure(run::ProtocolFactory factory, std::size_t publics,
                     std::size_t privates, std::uint64_t seed,
                     std::size_t runs, sim::Duration duration) {
  SystemResult result;
  for (std::size_t r = 0; r < runs; ++r) {
    run::World world(bench::paper_world_config(seed + r * 1000), factory);
    bench::paper_joins(world, publics, privates);
    run::GraphStatsRecorder recorder(world, {sim::sec(10), 128});
    recorder.start(sim::sec(10));
    world.simulator().run_until(duration);

    const auto graph = world.snapshot_overlay();
    for (const auto& [deg, count] : graph.in_degree_histogram()) {
      result.indegree_hist[deg] +=
          static_cast<double>(count) / static_cast<double>(runs);
    }
    if (r == runs - 1) result.series = recorder.series();
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t n = args.fast ? 300 : 1000;
  const std::size_t publics = n / 5;
  const auto duration = sim::sec(args.fast ? 100 : 250);

  auto croupier_cfg = bench::paper_croupier_config(25, 50);
  croupier_cfg.sizing = core::ViewSizing::RatioProportional;

  struct Row {
    const char* name;
    run::ProtocolFactory factory;
    bool all_public = false;
  };
  std::vector<Row> rows;
  rows.push_back({"croupier", run::make_croupier_factory(croupier_cfg)});
  rows.push_back(
      {"gozar", run::make_gozar_factory(bench::paper_gozar_config())});
  rows.push_back(
      {"nylon", run::make_nylon_factory(bench::paper_nylon_config())});
  rows.push_back(
      {"cyclon", run::make_cyclon_factory(bench::paper_pss_config()), true});

  std::printf(
      "# fig6: randomness properties; %zu nodes, 20%%%% public, view 10, "
      "%zu run(s)\n\n",
      n, args.runs);

  for (auto& row : rows) {
    const auto res =
        measure(row.factory, row.all_public ? n : publics,
                row.all_public ? 0 : n - publics, args.seed, args.runs,
                duration);

    std::printf("# fig6a indegree-histogram %s (after %.0fs)\n", row.name,
                sim::to_seconds(duration));
    for (const auto& [deg, count] : res.indegree_hist) {
      std::printf("%zu %.1f\n", deg, count);
    }
    std::printf("\n# fig6b avg-path-length %s\n", row.name);
    for (const auto& p : res.series) {
      std::printf("%.0f %.4f\n", p.t_seconds, p.avg_path_length);
    }
    std::printf("\n# fig6c clustering-coefficient %s\n", row.name);
    for (const auto& p : res.series) {
      std::printf("%.0f %.5f\n", p.t_seconds, p.clustering_coefficient);
    }
    const auto& last = res.series.empty() ? run::GraphStatsPoint{}
                                          : res.series.back();
    std::printf(
        "\n# summary %s: final apl=%.3f final cc=%.4f unreachable=%.4f\n\n",
        row.name, last.avg_path_length, last.clustering_coefficient,
        last.unreachable_fraction);
  }
  return 0;
}
