// Tests for the discrete-event simulation kernel: event ordering,
// cancellation, clock semantics, and the RNG streams everything else
// depends on for determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace croupier::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(10, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> fired;
  const EventId first = q.schedule(1, [&] { fired.push_back(1); });
  q.schedule(2, [&] { fired.push_back(2); });
  q.cancel(first);
  EXPECT_EQ(q.next_time(), 2u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, std::vector<int>{2});
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule_after(msec(250), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, msec(250));
  EXPECT_EQ(sim.now(), msec(250));
}

TEST(Simulator, RunUntilExecutesBoundaryEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(101, [&] { ++fired; });
  sim.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 100u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(sec(5));
  EXPECT_EQ(sim.now(), sec(5));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<SimTime> fire_times;
  sim.schedule_after(10, [&] {
    fire_times.push_back(sim.now());
    sim.schedule_after(10, [&] { fire_times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 20}));
}

TEST(Simulator, ZeroDelayFiresAtSameTime) {
  Simulator sim;
  SimTime seen = 999;
  sim.schedule_after(50, [&] {
    sim.schedule_after(0, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 50u);
}

TEST(Simulator, StepReturnsFalseWhenIdle) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_after(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_after(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, CancelledEventNotProcessed) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_after(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(Simulator, RecurringEventPattern) {
  // The runtime's round loop uses self-rescheduling closures; verify the
  // pattern ticks at the right cadence.
  Simulator sim;
  int ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    if (ticks < 5) sim.schedule_after(sec(1), tick);
  };
  sim.schedule_after(sec(1), tick);
  sim.run_until(sec(10));
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(sim.now(), sec(10));
}

TEST(Rng, Deterministic) {
  RngStream a(42);
  RngStream b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  RngStream a(1);
  RngStream b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  RngStream a(7);
  RngStream fork_before = a.fork(1);
  a.next_u64();
  a.next_u64();
  // detlint:allow(rng-lineage) duplicate tag is the subject: fork must be pure
  RngStream fork_after = a.fork(1);
  // fork() must not depend on how much the parent has been consumed.
  EXPECT_EQ(fork_before.next_u64(), fork_after.next_u64());
}

TEST(Rng, ForksWithDifferentTagsDiffer) {
  RngStream a(7);
  // detlint:allow(rng-lineage) same tag as the purity test above, by design
  RngStream f1 = a.fork(1);
  RngStream f2 = a.fork(2);
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForkLinearCancellationDoesNotCollide) {
  // Regression: the old premix was `lineage ^ gamma*(tag+1)`, so two
  // streams whose lineages differ by exactly gamma*(t1+1) ^ gamma*(t2+1)
  // produced *identical* children from tags t1 and t2. These lineages
  // are constructed to collide under that scheme; the two-round
  // splitmix64 fork must keep them apart.
  constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  const std::uint64_t l1 = 0x0123456789abcdefULL;
  const std::uint64_t l2 = l1 ^ (kGamma * 2) ^ (kGamma * 3);
  RngStream f1 = RngStream(l1).fork(1);  // old premix: l1 ^ gamma*2
  RngStream f2 = RngStream(l2).fork(2);  // old premix: l2 ^ gamma*3 == l1 ^ gamma*2
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NestedForkGridIsCollisionFree) {
  // Per-trial seed derivation nests forks: base.fork(point).fork(run).
  // The first draw of every cell in a seeds x points x runs grid must be
  // distinct (a birthday collision over 8k draws from 2^64 is ~2e-12,
  // so any collision means the fork premix is degenerate, not bad luck).
  std::set<std::uint64_t> seen;
  std::size_t cells = 0;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const RngStream base(seed);
    for (std::uint64_t point = 0; point < 16; ++point) {
      const RngStream mid = base.fork(point);
      for (std::uint64_t run = 0; run < 16; ++run) {
        seen.insert(mid.fork(run).next_u64());
        ++cells;
      }
    }
  }
  EXPECT_EQ(seen.size(), cells);
}

TEST(Rng, NextDoubleInUnitInterval) {
  RngStream r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBound) {
  RngStream r(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
  }
}

TEST(Rng, UniformInInclusiveRange) {
  RngStream r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIsRoughlyUniform) {
  RngStream r(11);
  std::vector<int> buckets(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++buckets[r.uniform(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, draws / 10, draws / 10 * 0.1);
  }
}

TEST(Rng, ChanceEdgeCases) {
  RngStream r(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  RngStream r(17);
  int hits = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 30000, 1000);
}

TEST(Rng, ExponentialHasRequestedMean) {
  RngStream r(19);
  double sum = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / draws, 50.0, 1.0);
}

TEST(Rng, NormalMoments) {
  RngStream r(23);
  double sum = 0;
  double sq = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / draws;
  const double var = sq / draws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  RngStream r(29);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  r.shuffle(std::span<int>(v));
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  RngStream r(31);
  std::vector<int> pool(100);
  std::iota(pool.begin(), pool.end(), 0);
  const auto picked = r.sample(std::span<const int>(pool), 20);
  ASSERT_EQ(picked.size(), 20u);
  std::vector<int> sorted = picked;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Rng, SampleMoreThanPoolReturnsAll) {
  RngStream r(37);
  std::vector<int> pool{1, 2, 3};
  const auto picked = r.sample(std::span<const int>(pool), 10);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(Rng, SampleFromEmptyPool) {
  RngStream r(41);
  std::vector<int> pool;
  EXPECT_TRUE(r.sample(std::span<const int>(pool), 5).empty());
}

// Property sweep: sample() hits every element eventually (uniformity
// smoke test across pool sizes).
class RngSampleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RngSampleSweep, EveryElementReachable) {
  const std::size_t pool_size = GetParam();
  RngStream r(pool_size * 7919 + 1);
  std::vector<int> pool(pool_size);
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<bool> seen(pool_size, false);
  for (int round = 0; round < 400; ++round) {
    for (int x : r.sample(std::span<const int>(pool), 2)) seen[static_cast<std::size_t>(x)] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, RngSampleSweep,
                         ::testing::Values(1, 2, 5, 10, 25));

}  // namespace
}  // namespace croupier::sim
