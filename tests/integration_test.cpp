// Whole-system integration tests: the paper's qualitative claims at small
// scale — estimator convergence under joins/churn/dynamic ratios, overlay
// randomness, overhead ordering, and failure resilience.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/overhead.hpp"
#include "runtime/recorder.hpp"
#include "runtime/scenario.hpp"
#include "test_util.hpp"

namespace croupier {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

core::CroupierConfig croupier_cfg(std::size_t alpha = 25,
                                  std::size_t gamma = 50) {
  core::CroupierConfig cfg;
  cfg.base.view_size = 10;
  cfg.base.shuffle_size = 5;
  cfg.estimator.local_history = alpha;
  cfg.estimator.neighbour_history = gamma;
  return cfg;
}

run::World::Config king_config(std::uint64_t seed) {
  run::World::Config cfg;
  cfg.seed = seed;
  cfg.latency = run::World::LatencyKind::King;
  return cfg;
}

TEST(Integration, EstimationConvergesUnderPoissonJoins) {
  run::World world(king_config(1),
                   run::make_croupier_factory(croupier_cfg()));
  // Scaled-down fig. 1 workload: 40 public + 160 private, ω = 0.2.
  run::schedule_poisson_joins(world, 40, net::NatConfig::open(),
                              sim::msec(50));
  run::schedule_poisson_joins(world, 160, net::NatConfig::natted(),
                              sim::msec(13));
  run::EstimationRecorder rec(world, {sim::sec(1), 2});
  rec.start(sim::sec(1));
  world.simulator().run_until(sim::sec(120));

  EXPECT_EQ(world.alive_count(), 200u);
  EXPECT_NEAR(world.true_ratio(), 0.2, 1e-9);
  const auto last = rec.latest();
  EXPECT_LT(last.sample.avg_error, 0.03);
  EXPECT_LT(last.sample.max_error, 0.12);
}

TEST(Integration, EstimationTracksDynamicRatio) {
  run::World world(king_config(3),
                   run::make_croupier_factory(croupier_cfg(10, 25)));
  populate(world, 40, 160);
  world.simulator().run_until(sim::sec(40));
  // Ratio steps up: 40 more publics join quickly.
  run::schedule_fixed_joins(world, 40, net::NatConfig::open(), sim::msec(100),
                            world.simulator().now());
  world.simulator().run_until(sim::sec(150));
  const double truth = world.true_ratio();
  EXPECT_NEAR(truth, 80.0 / 240.0, 1e-9);
  const auto estimates = world.ratio_estimates();
  double sum = 0;
  for (double e : estimates) sum += e;
  EXPECT_NEAR(sum / static_cast<double>(estimates.size()), truth, 0.05);
}

TEST(Integration, EstimationSurvivesChurn) {
  run::World world(king_config(5),
                   run::make_croupier_factory(croupier_cfg()));
  populate(world, 40, 160);
  run::ChurnProcess churn(world, 0.01, net::NatConfig::open(),
                          net::NatConfig::natted());
  churn.start(sim::sec(30));
  run::EstimationRecorder rec(world, {sim::sec(1), 2});
  rec.start(sim::sec(1));
  world.simulator().run_until(sim::sec(150));

  EXPECT_GT(churn.replaced(), 100u);
  EXPECT_LT(rec.latest().sample.avg_error, 0.04);
}

TEST(Integration, CroupierOverlayLooksRandom) {
  run::World world(king_config(7),
                   run::make_croupier_factory(croupier_cfg()));
  populate(world, 40, 160);
  world.simulator().run_until(sim::sec(60));

  const auto g = world.snapshot_overlay();
  EXPECT_EQ(g.largest_component(), 200u);  // connected

  sim::RngStream rng(1);
  const double apl = g.avg_path_length(rng, 0);
  // Random graph with out-degree ~20 on 200 nodes: diameter ~2.
  EXPECT_GT(apl, 1.2);
  EXPECT_LT(apl, 3.5);
  EXPECT_LT(g.avg_clustering_coefficient(), 0.35);
}

TEST(Integration, OverheadOrderingCroupierGozarNylon) {
  // Scaled-down fig. 7a: same population, one world per protocol,
  // measured over a steady-state window.
  auto measure = [](run::ProtocolFactory factory) {
    run::World world(king_config(11), std::move(factory));
    populate(world, 20, 80);
    world.simulator().run_until(sim::sec(30));
    world.network().meter().reset();
    world.simulator().run_until(sim::sec(60));
    return metrics::summarize_load(world.network().meter(),
                                   world.class_map(), sim::sec(30));
  };

  const auto croupier_load =
      measure(run::make_croupier_factory(croupier_cfg()));
  baselines::GozarConfig gz;
  gz.base.view_size = 10;
  gz.base.shuffle_size = 5;
  const auto gozar_load = measure(run::make_gozar_factory(gz));
  baselines::NylonConfig ny;
  ny.base.view_size = 10;
  ny.base.shuffle_size = 5;
  const auto nylon_load = measure(run::make_nylon_factory(ny));

  // The paper's qualitative result: Croupier cheapest for private nodes,
  // Nylon most expensive everywhere.
  EXPECT_LT(croupier_load.private_bytes_per_sec,
            gozar_load.private_bytes_per_sec);
  EXPECT_LT(gozar_load.private_bytes_per_sec,
            nylon_load.private_bytes_per_sec);
  EXPECT_LT(croupier_load.public_bytes_per_sec,
            nylon_load.public_bytes_per_sec);
}

TEST(Integration, CatastrophicFailureCroupierKeepsBigCluster) {
  run::World world(king_config(13),
                   run::make_croupier_factory(croupier_cfg()));
  populate(world, 40, 160);  // 80% private
  world.simulator().run_until(sim::sec(60));
  run::schedule_catastrophe(world, sim::sec(60), 0.7);
  world.simulator().run_until(sim::sec(61));

  ASSERT_EQ(world.alive_count(), 60u);
  const auto g = world.snapshot_overlay(/*usable_only=*/true);
  // Survivors overwhelmingly stay in one cluster via the croupiers.
  EXPECT_GT(g.largest_component_fraction(), 0.8);
}

TEST(Integration, CatastrophicFailureHurtsGozarMore) {
  auto cluster_after_failure = [](run::ProtocolFactory factory) {
    run::World world(king_config(17), std::move(factory));
    populate(world, 40, 160);
    world.simulator().run_until(sim::sec(60));
    run::schedule_catastrophe(world, sim::sec(60), 0.8);
    world.simulator().run_until(sim::sec(61));
    return world.snapshot_overlay(true).largest_component_fraction();
  };

  const double croupier_cluster =
      cluster_after_failure(run::make_croupier_factory(croupier_cfg()));
  baselines::GozarConfig gz;
  gz.base.view_size = 10;
  gz.base.shuffle_size = 5;
  const double gozar_cluster =
      cluster_after_failure(run::make_gozar_factory(gz));

  EXPECT_GT(croupier_cluster, gozar_cluster);
}

TEST(Integration, LossDoesNotPartitionCroupier) {
  auto cfg = king_config(19);
  cfg.loss = net::LossConfig::uniform(0.05);
  run::World world(cfg, run::make_croupier_factory(croupier_cfg()));
  populate(world, 20, 80);
  world.simulator().run_until(sim::sec(60));
  EXPECT_EQ(world.snapshot_overlay().largest_component(), 100u);
  EXPECT_LT(world.ratio_estimates().empty() ? 1.0 : 0.0, 0.5);
  for (double e : world.ratio_estimates()) {
    EXPECT_NEAR(e, 0.2, 0.15);
  }
}

TEST(Integration, InDegreeDistributionComparableToCyclon) {
  // Fig. 6a in miniature: Croupier (proportional views, total 10) vs
  // Cyclon all-public, same out-degree; spreads should be comparable.
  auto spread = [](run::ProtocolFactory factory, std::size_t publics,
                   std::size_t privates) {
    run::World world(king_config(23), std::move(factory));
    populate(world, publics, privates);
    world.simulator().run_until(sim::sec(80));
    const auto g = world.snapshot_overlay();
    const auto deg = g.in_degrees();
    double mean = 0;
    for (auto d : deg) mean += static_cast<double>(d);
    mean /= static_cast<double>(deg.size());
    double var = 0;
    for (auto d : deg) {
      var += (static_cast<double>(d) - mean) * (static_cast<double>(d) - mean);
    }
    var /= static_cast<double>(deg.size());
    return std::make_pair(mean, std::sqrt(var));
  };

  auto ccfg = croupier_cfg();
  ccfg.sizing = core::ViewSizing::RatioProportional;
  const auto [cr_mean, cr_sd] =
      spread(run::make_croupier_factory(ccfg), 40, 160);
  pss::PssConfig cy;
  cy.view_size = 10;
  cy.shuffle_size = 5;
  const auto [cy_mean, cy_sd] = spread(run::make_cyclon_factory(cy), 200, 0);

  EXPECT_NEAR(cr_mean, cy_mean, 2.0);   // both ~view size
  EXPECT_LT(cr_sd, cy_sd * 2.5 + 2.0);  // no heavy skew
}

TEST(Integration, NatIdPathKeepsEstimatorCorrect) {
  // Full pipeline: nodes identify themselves with the real protocol, then
  // gossip; the estimate still converges to the true ratio.
  auto cfg = king_config(29);
  cfg.use_natid_protocol = true;
  run::World world(cfg, run::make_croupier_factory(croupier_cfg()));
  for (int i = 0; i < 5; ++i) world.spawn_seeded(net::NatConfig::open());
  world.simulator().run_until(sim::sec(5));
  for (int i = 0; i < 15; ++i) world.spawn(net::NatConfig::open());
  for (int i = 0; i < 60; ++i) world.spawn(net::NatConfig::natted());
  for (int i = 0; i < 20; ++i) world.spawn(net::NatConfig::upnp());
  world.simulator().run_until(sim::sec(90));

  // ω: 40 public-behaving (5+15+20) of 100.
  EXPECT_NEAR(world.true_ratio(), 0.4, 1e-9);
  for (double e : world.ratio_estimates()) {
    EXPECT_NEAR(e, 0.4, 0.12);
  }
}

}  // namespace
}  // namespace croupier
