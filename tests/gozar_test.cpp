// Gozar baseline tests: parent management, one-hop relaying, usable-edge
// semantics.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/gozar.hpp"
#include "test_util.hpp"

namespace croupier::baselines {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

GozarConfig small_cfg() {
  GozarConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  cfg.num_parents = 2;
  return cfg;
}

run::World make_world(std::uint64_t seed = 1, GozarConfig cfg = small_cfg()) {
  return run::World(fast_world_config(seed), run::make_gozar_factory(cfg));
}

TEST(Gozar, PrivateNodesAcquireParents) {
  auto world = make_world();
  populate(world, 6, 12);
  world.simulator().run_until(sim::sec(10));
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    if (world.type_of(id) != net::NatType::Private) return;
    const auto& g = dynamic_cast<const Gozar&>(p);
    EXPECT_GE(g.parents().size(), 1u);
    for (net::NodeId parent : g.parents()) {
      EXPECT_EQ(world.type_of(parent), net::NatType::Public);
    }
  });
}

TEST(Gozar, PublicNodesHaveNoParents) {
  auto world = make_world(3);
  populate(world, 6, 6);
  world.simulator().run_until(sim::sec(10));
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    if (world.type_of(id) != net::NatType::Public) return;
    EXPECT_TRUE(dynamic_cast<const Gozar&>(p).parents().empty());
  });
}

TEST(Gozar, PrivateDescriptorsCarryParents) {
  auto world = make_world(5);
  populate(world, 6, 12);
  world.simulator().run_until(sim::sec(25));
  std::size_t private_descs = 0;
  std::size_t with_parents = 0;
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& g = dynamic_cast<const Gozar&>(p);
    for (const auto& d : g.view().entries()) {
      if (d.nat_type != net::NatType::Private) continue;
      ++private_descs;
      if (!d.parents.empty()) ++with_parents;
    }
  });
  ASSERT_GT(private_descs, 0u);
  // Nearly all circulating private descriptors advertise relay parents.
  EXPECT_GE(with_parents * 10, private_descs * 9);
}

TEST(Gozar, ExchangesReachPrivateNodes) {
  // Private nodes must participate in gossip as full targets via relays:
  // their views fill and carry mixed descriptors.
  auto world = make_world(7);
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(30));
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    if (world.type_of(id) != net::NatType::Private) return;
    const auto& g = dynamic_cast<const Gozar&>(p);
    EXPECT_GE(g.view().size(), 3u);
  });
}

TEST(Gozar, ParentFailureTriggersReselection) {
  GozarConfig cfg = small_cfg();
  cfg.keepalive_rounds = 2;
  cfg.parent_timeout_rounds = 6;
  auto world = make_world(9, cfg);
  populate(world, 6, 6);
  world.simulator().run_until(sim::sec(10));

  // Find one private node and kill all its parents.
  net::NodeId victim = net::kNilNode;
  std::vector<net::NodeId> parents;
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    if (victim != net::kNilNode) return;
    if (world.type_of(id) != net::NatType::Private) return;
    const auto& g = dynamic_cast<const Gozar&>(p);
    if (!g.parents().empty()) {
      victim = id;
      parents = g.parents();
    }
  });
  ASSERT_NE(victim, net::kNilNode);
  for (net::NodeId parent : parents) {
    if (world.alive(parent)) world.kill(parent);
  }

  world.simulator().run_until(world.simulator().now() + sim::sec(30));
  ASSERT_TRUE(world.alive(victim));
  const auto& g = dynamic_cast<const Gozar&>(*world.sampler(victim));
  EXPECT_FALSE(g.parents().empty());
  for (net::NodeId parent : g.parents()) {
    EXPECT_TRUE(world.alive(parent));
  }
}

TEST(Gozar, UsableEdgeNeedsLiveRelay) {
  auto world = make_world(11);
  populate(world, 5, 10);
  world.simulator().run_until(sim::sec(20));

  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& g = dynamic_cast<const Gozar&>(p);
    // Liveness oracle that declares all public nodes dead: private
    // targets become unusable (their relays are gone), so only nothing or
    // public targets remain — and those are "dead" too => empty.
    const auto no_publics = [&world](net::NodeId id) {
      return world.alive(id) && world.type_of(id) == net::NatType::Private;
    };
    for (net::NodeId n : g.usable_neighbors(no_publics)) {
      // Only private targets can appear, and each must have a live parent
      // under this oracle — impossible since parents are public.
      ADD_FAILURE() << "edge to " << n << " should be unusable";
    }
  });
}

TEST(Gozar, MessageRoundTrips) {
  GozarShuffleReq req;
  req.sender = GozarDescriptor{1, net::NatType::Private, 0, {7, 8}};
  req.entries = {GozarDescriptor{2, net::NatType::Public, 3, {}}};
  wire::Writer w;
  req.encode(w);
  wire::Reader r(w.data());
  const auto back = GozarShuffleReq::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.sender, req.sender);
  EXPECT_EQ(back.entries, req.entries);

  GozarRelayedReq rel;
  rel.final_target = 9;
  rel.inner = req;
  wire::Writer w2;
  rel.encode(w2);
  wire::Reader r2(w2.data());
  const auto back2 = GozarRelayedReq::decode(r2);
  EXPECT_TRUE(r2.exhausted());
  EXPECT_EQ(back2.final_target, 9u);
  EXPECT_EQ(back2.inner.sender, req.sender);
}

TEST(Gozar, ConnectedOverlayOnMixedNetwork) {
  auto world = make_world(13);
  populate(world, 5, 20);
  world.simulator().run_until(sim::sec(30));
  const auto graph = world.snapshot_overlay();
  EXPECT_EQ(graph.largest_component(), 25u);
}

}  // namespace
}  // namespace croupier::baselines
