// ProtocolRegistry: the string-keyed protocol construction surface.
// Covers name lookup and error reporting, option parsing per protocol
// (typed config builders), spec-string syntax, and end-to-end factory
// construction through a World.
#include <gtest/gtest.h>

#include <stdexcept>

#include "runtime/registry.hpp"
#include "runtime/world.hpp"

namespace croupier::run {
namespace {

const ProtocolRegistry& reg() { return ProtocolRegistry::instance(); }

TEST(ProtocolRegistry, KnowsAllFiveProtocols) {
  const auto names = reg().names();
  EXPECT_EQ(names, (std::vector<std::string>{"arrg", "croupier", "cyclon",
                                             "gozar", "nylon"}));
  for (const auto& name : names) EXPECT_TRUE(reg().contains(name));
  EXPECT_FALSE(reg().contains("chord"));
}

TEST(ProtocolRegistry, UnknownProtocolThrowsWithKnownNames) {
  try {
    (void)reg().make("chord");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown protocol \"chord\""), std::string::npos)
        << msg;
    // The error must teach the fix: every registered name is listed.
    EXPECT_NE(msg.find("croupier"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cyclon"), std::string::npos) << msg;
  }
}

TEST(ProtocolRegistry, UnknownOptionKeyThrows) {
  try {
    (void)reg().make("croupier", {{"aplha", "25"}});  // typo
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("croupier"), std::string::npos) << msg;
    EXPECT_NE(msg.find("aplha"), std::string::npos) << msg;
  }
}

TEST(ProtocolRegistry, MalformedOptionValueThrows) {
  EXPECT_THROW((void)reg().make("croupier", {{"alpha", "many"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg().make("croupier", {{"alpha", "-3"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg().make("croupier", {{"alpha", ""}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg().make("croupier", {{"sizing", "diagonal"}}),
               std::invalid_argument);
  EXPECT_THROW((void)reg().make("cyclon", {{"view", "0"}}),
               std::invalid_argument);
}

TEST(ProtocolRegistry, CroupierOptionsApplyOverPaperDefaults) {
  const auto dflt = make_croupier_config({});
  EXPECT_EQ(dflt.estimator.local_history, 25u);     // paper alpha
  EXPECT_EQ(dflt.estimator.neighbour_history, 50u); // paper gamma
  EXPECT_EQ(dflt.estimator.share_limit, 10u);
  EXPECT_EQ(dflt.base.view_size, 10u);
  EXPECT_EQ(dflt.base.shuffle_size, 5u);
  EXPECT_EQ(dflt.sizing, core::ViewSizing::FixedPerView);

  const auto cfg = make_croupier_config({{"alpha", "100"},
                                         {"gamma", "250"},
                                         {"share_limit", "5"},
                                         {"sizing", "proportional"},
                                         {"view", "20"},
                                         {"merge", "healer"}});
  EXPECT_EQ(cfg.estimator.local_history, 100u);
  EXPECT_EQ(cfg.estimator.neighbour_history, 250u);
  EXPECT_EQ(cfg.estimator.share_limit, 5u);
  EXPECT_EQ(cfg.sizing, core::ViewSizing::RatioProportional);
  EXPECT_EQ(cfg.base.view_size, 20u);
  EXPECT_EQ(cfg.base.merge, pss::MergePolicy::Healer);
}

TEST(ProtocolRegistry, BaselineOptionsApply) {
  const auto gozar = make_gozar_config({{"redundancy", "3"},
                                        {"parents", "5"},
                                        {"keepalive", "7"}});
  EXPECT_EQ(gozar.relay_redundancy, 3u);
  EXPECT_EQ(gozar.num_parents, 5u);
  EXPECT_EQ(gozar.keepalive_rounds, 7u);

  const auto nylon = make_nylon_config({{"punch_hops", "8"},
                                        {"rvp_links", "40"}});
  EXPECT_EQ(nylon.max_punch_hops, 8u);
  EXPECT_EQ(nylon.max_rvp_links, 40u);
  EXPECT_THROW((void)make_nylon_config({{"punch_hops", "300"}}),
               std::invalid_argument);  // > uint8

  const auto arrg = make_arrg_config({{"open_list", "11"}});
  EXPECT_EQ(arrg.open_list_size, 11u);

  const auto cyclon = make_cyclon_config({{"shuffle", "4"}});
  EXPECT_EQ(cyclon.shuffle_size, 4u);
}

TEST(ProtocolRegistry, ParseSpecSplitsNameAndOptions) {
  const auto [name, opts] =
      ProtocolRegistry::parse_spec("croupier:alpha=25,gamma=50");
  EXPECT_EQ(name, "croupier");
  ASSERT_EQ(opts.size(), 2u);
  EXPECT_EQ(opts.at("alpha"), "25");
  EXPECT_EQ(opts.at("gamma"), "50");

  const auto [bare, none] = ProtocolRegistry::parse_spec("nylon");
  EXPECT_EQ(bare, "nylon");
  EXPECT_TRUE(none.empty());
}

TEST(ProtocolRegistry, ParseSpecRejectsBadSyntax) {
  EXPECT_THROW((void)ProtocolRegistry::parse_spec(""),
               std::invalid_argument);
  EXPECT_THROW((void)ProtocolRegistry::parse_spec(":alpha=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ProtocolRegistry::parse_spec("croupier:"),
               std::invalid_argument);
  EXPECT_THROW((void)ProtocolRegistry::parse_spec("croupier:alpha"),
               std::invalid_argument);
  EXPECT_THROW((void)ProtocolRegistry::parse_spec("croupier:alpha=1,"),
               std::invalid_argument);
  EXPECT_THROW((void)ProtocolRegistry::parse_spec("croupier:=1"),
               std::invalid_argument);
}

TEST(ProtocolRegistry, OptionsHelpNamesEveryKey) {
  EXPECT_NE(reg().options_help("croupier").find("alpha"), std::string::npos);
  EXPECT_NE(reg().options_help("gozar").find("redundancy"),
            std::string::npos);
  EXPECT_THROW((void)reg().options_help("chord"), std::invalid_argument);
}

// End to end: every registry name yields a factory that builds a working
// sampler inside a World.
TEST(ProtocolRegistry, FactoriesBuildWorkingWorlds) {
  for (const auto& name : reg().names()) {
    World::Config cfg;
    cfg.seed = 9;
    cfg.latency = World::LatencyKind::Constant;
    cfg.constant_latency = sim::msec(20);
    World world(cfg, reg().make_from_spec(name));
    for (int i = 0; i < 8; ++i) world.spawn(net::NatConfig::open());
    world.simulator().run_until(sim::sec(10));
    EXPECT_EQ(world.alive_count(), 8u) << name;
    const auto* sampler = world.sampler(world.alive_ids().front());
    ASSERT_NE(sampler, nullptr) << name;
    EXPECT_FALSE(sampler->out_neighbors().empty()) << name;
  }
}

}  // namespace
}  // namespace croupier::run
