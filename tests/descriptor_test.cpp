// Descriptor wire-format tests (base, Gozar, Nylon variants).
#include <gtest/gtest.h>

#include "baselines/gozar.hpp"
#include "baselines/nylon.hpp"
#include "core/croupier.hpp"
#include "pss/descriptor.hpp"

namespace croupier {
namespace {

TEST(Descriptor, RoundTrip) {
  pss::NodeDescriptor d{42, net::NatType::Private, 17};
  wire::Writer w;
  pss::encode(w, d);
  wire::Reader r(w.data());
  const auto back = pss::decode_descriptor(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.nat_type, net::NatType::Private);
  EXPECT_EQ(back.age, 17u);
}

TEST(Descriptor, WireSizeMatchesConstant) {
  wire::Writer w;
  pss::encode(w, pss::NodeDescriptor{1, net::NatType::Public, 0});
  EXPECT_EQ(w.size(), pss::kDescriptorWireBytes);
}

TEST(Descriptor, AgeSaturatesOnWire) {
  pss::NodeDescriptor d{1, net::NatType::Public, 1000};
  wire::Writer w;
  pss::encode(w, d);
  wire::Reader r(w.data());
  EXPECT_EQ(pss::decode_descriptor(r).age, 255u);
}

TEST(Descriptor, ListRoundTrip) {
  std::vector<pss::NodeDescriptor> v{
      {1, net::NatType::Public, 0},
      {2, net::NatType::Private, 5},
      {3, net::NatType::Public, 250},
  };
  wire::Writer w;
  pss::encode(w, v);
  wire::Reader r(w.data());
  const auto back = pss::decode_descriptors(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back, v);
}

TEST(Descriptor, EmptyListRoundTrip) {
  wire::Writer w;
  pss::encode(w, std::vector<pss::NodeDescriptor>{});
  wire::Reader r(w.data());
  EXPECT_TRUE(pss::decode_descriptors(r).empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Descriptor, SelfIsFresh) {
  const auto d = pss::NodeDescriptor::self(9, net::NatType::Private);
  EXPECT_EQ(d.id, 9u);
  EXPECT_EQ(d.age, 0u);
  EXPECT_EQ(d.nat_type, net::NatType::Private);
}

TEST(GozarDescriptor, RoundTripWithParents) {
  baselines::GozarDescriptor d;
  d.id = 7;
  d.nat_type = net::NatType::Private;
  d.age = 3;
  d.parents = {10, 11, 12};
  wire::Writer w;
  baselines::encode(w, d);
  wire::Reader r(w.data());
  const auto back = baselines::decode_gozar_descriptor(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back, d);
}

TEST(GozarDescriptor, PublicDescriptorIsSmaller) {
  baselines::GozarDescriptor pub{7, net::NatType::Public, 0, {}};
  baselines::GozarDescriptor priv{8, net::NatType::Private, 0, {1, 2, 3}};
  wire::Writer wp;
  baselines::encode(wp, pub);
  wire::Writer wv;
  baselines::encode(wv, priv);
  // 3 parents x 6 B: the per-descriptor premium Gozar pays.
  EXPECT_EQ(wv.size() - wp.size(), 18u);
}

TEST(NylonDescriptor, LearnedFromIsLocalOnly) {
  baselines::NylonDescriptor d{5, net::NatType::Private, 2, 77};
  wire::Writer w;
  baselines::encode(w, d);
  EXPECT_EQ(w.size(), pss::kDescriptorWireBytes);  // same as base layout
  wire::Reader r(w.data());
  const auto back = baselines::decode_nylon_descriptor(r);
  EXPECT_EQ(back.id, 5u);
  EXPECT_EQ(back.learned_from, net::kNilNode);  // not on the wire
}

TEST(Messages, CroupierShuffleWireSize) {
  // 10 descriptors + 11 estimates: the configuration the paper quotes as
  // ~50 B of estimation payload per shuffle message.
  core::CroupierShuffleReq req;
  req.sender = pss::NodeDescriptor::self(1, net::NatType::Public);
  for (net::NodeId i = 0; i < 5; ++i) {
    req.pub.push_back({i + 10, net::NatType::Public, 1});
    req.pri.push_back({i + 20, net::NatType::Private, 1});
  }
  for (net::NodeId i = 0; i < 10; ++i) {
    req.estimates.push_back({i, 10, 40, 1});
  }
  // 1 type + 8 sender + (1+40) pub + (1+40) pri + (1+50) estimates = 142.
  EXPECT_EQ(req.wire_size(), 142u);
}

}  // namespace
}  // namespace croupier
