// Shared helpers for protocol and integration tests: compact world
// construction and population.
#pragma once

#include <cstddef>

#include "net/nat.hpp"
#include "runtime/factories.hpp"
#include "runtime/world.hpp"

namespace croupier::testing {

inline run::World::Config fast_world_config(std::uint64_t seed = 1) {
  run::World::Config cfg;
  cfg.seed = seed;
  // Constant small latency keeps unit-style protocol tests exact.
  cfg.latency = run::World::LatencyKind::Constant;
  cfg.constant_latency = sim::msec(20);
  cfg.clock_skew = 0.0;
  return cfg;
}

/// Spawns `publics` open-Internet nodes followed by `privates` NATted
/// nodes, all at t=now (they phase-stagger themselves within one round).
inline void populate(run::World& world, std::size_t publics,
                     std::size_t privates) {
  for (std::size_t i = 0; i < publics; ++i) {
    world.spawn(net::NatConfig::open());
  }
  for (std::size_t i = 0; i < privates; ++i) {
    world.spawn(net::NatConfig::natted());
  }
}

}  // namespace croupier::testing
