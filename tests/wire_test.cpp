// Wire codec tests: round-trips, byte layout, bounds checking.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "sim/rng.hpp"
#include "wire/wire.hpp"

namespace croupier::wire {
namespace {

TEST(Writer, SizesAccumulate) {
  Writer w;
  w.u8(1);
  EXPECT_EQ(w.size(), 1u);
  w.u16(2);
  EXPECT_EQ(w.size(), 3u);
  w.u32(3);
  EXPECT_EQ(w.size(), 7u);
  w.u64(4);
  EXPECT_EQ(w.size(), 15u);
}

TEST(Writer, BigEndianLayout) {
  Writer w;
  w.u32(0x01020304u);
  const auto data = w.data();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(std::to_integer<int>(data[0]), 0x01);
  EXPECT_EQ(std::to_integer<int>(data[1]), 0x02);
  EXPECT_EQ(std::to_integer<int>(data[2]), 0x03);
  EXPECT_EQ(std::to_integer<int>(data[3]), 0x04);
}

TEST(RoundTrip, AllWidths) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(RoundTrip, ExtremeValues) {
  Writer w;
  w.u8(0);
  w.u8(0xFF);
  w.u16(0);
  w.u16(0xFFFF);
  w.u32(0);
  w.u32(std::numeric_limits<std::uint32_t>::max());
  w.u64(0);
  w.u64(std::numeric_limits<std::uint64_t>::max());
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_EQ(r.u8(), 0xFFu);
  EXPECT_EQ(r.u16(), 0u);
  EXPECT_EQ(r.u16(), 0xFFFFu);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u32(), std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(r.exhausted());
}

TEST(Reader, OverrunLatchesError) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  EXPECT_EQ(r.u32(), 0u);  // needs 4 bytes, only 2 available
  EXPECT_FALSE(r.ok());
}

TEST(Reader, ErrorStaysLatched) {
  Writer w;
  w.u8(7);
  Reader r(w.data());
  (void)r.u32();
  EXPECT_FALSE(r.ok());
  // Even reads that would fit keep failing once the error latched.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Reader, EmptyBufferFailsImmediately) {
  Reader r({});
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Reader, RemainingCountsDown) {
  Writer w;
  w.u64(1);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u16();
  EXPECT_EQ(r.remaining(), 6u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(Reader, ExhaustedRequiresFullConsumption) {
  Writer w;
  w.u16(5);
  Reader r(w.data());
  (void)r.u8();
  EXPECT_FALSE(r.exhausted());
  (void)r.u8();
  EXPECT_TRUE(r.exhausted());
}

TEST(Writer, BytesAppends) {
  Writer inner;
  inner.u32(42);
  Writer outer;
  outer.u8(1);
  outer.bytes(inner.data());
  EXPECT_EQ(outer.size(), 5u);
  Reader r(outer.data());
  EXPECT_EQ(r.u8(), 1u);
  EXPECT_EQ(r.u32(), 42u);
}

TEST(Writer, TakeMovesBuffer) {
  Writer w;
  w.u16(0x0102);
  const auto buf = std::move(w).take();
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 1);
  EXPECT_EQ(std::to_integer<int>(buf[1]), 2);
}

// Property sweep: random mixed-width sequences round-trip exactly.
class WireFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzRoundTrip, RandomSequences) {
  sim::RngStream rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    Writer w;
    std::vector<std::pair<int, std::uint64_t>> expected;
    const int ops = static_cast<int>(rng.uniform(40)) + 1;
    for (int i = 0; i < ops; ++i) {
      const int width = static_cast<int>(rng.uniform(4));
      const std::uint64_t value = rng.next_u64();
      switch (width) {
        case 0:
          w.u8(static_cast<std::uint8_t>(value));
          expected.emplace_back(0, value & 0xff);
          break;
        case 1:
          w.u16(static_cast<std::uint16_t>(value));
          expected.emplace_back(1, value & 0xffff);
          break;
        case 2:
          w.u32(static_cast<std::uint32_t>(value));
          expected.emplace_back(2, value & 0xffffffffull);
          break;
        default:
          w.u64(value);
          expected.emplace_back(3, value);
          break;
      }
    }
    Reader r(w.data());
    for (const auto& [width, value] : expected) {
      switch (width) {
        case 0:
          EXPECT_EQ(r.u8(), value);
          break;
        case 1:
          EXPECT_EQ(r.u16(), value);
          break;
        case 2:
          EXPECT_EQ(r.u32(), value);
          break;
        default:
          EXPECT_EQ(r.u64(), value);
          break;
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace croupier::wire
