// Ratio estimator tests: the maths of paper equations (1)-(9) on
// hand-computed cases, window semantics for α and γ, wire quantization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/estimator.hpp"

namespace croupier::core {
namespace {

EstimatorConfig cfg(std::size_t alpha = 25, std::size_t gamma = 50,
                    std::size_t share = 10) {
  return EstimatorConfig{alpha, gamma, share};
}

TEST(EstimateEntry, RatioDefinition) {
  EXPECT_DOUBLE_EQ((EstimateEntry{1, 1, 4, 0}).ratio(), 0.2);
  EXPECT_DOUBLE_EQ((EstimateEntry{1, 5, 0, 0}).ratio(), 1.0);
  EXPECT_DOUBLE_EQ((EstimateEntry{1, 0, 0, 0}).ratio(), 0.0);
}

TEST(EstimateEntry, WireSizeIsFiveBytes) {
  wire::Writer w;
  encode(w, EstimateEntry{7, 10, 40, 3});
  EXPECT_EQ(w.size(), kEstimateWireBytes);
}

TEST(EstimateEntry, RoundTripSmallCounts) {
  wire::Writer w;
  encode(w, EstimateEntry{7, 10, 40, 3});
  wire::Reader r(w.data());
  const auto back = decode_estimate(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back, (EstimateEntry{7, 10, 40, 3}));
}

TEST(EstimateEntry, QuantizationPreservesRatio) {
  // 100 / 400 exceeds the byte range on the private side; encoding must
  // scale both counts, keeping the ratio at 0.2 within 1/255.
  wire::Writer w;
  encode(w, EstimateEntry{7, 100, 400, 0});
  wire::Reader r(w.data());
  const auto back = decode_estimate(r);
  EXPECT_LE(back.pub_hits, 255u);
  EXPECT_LE(back.priv_hits, 255u);
  EXPECT_NEAR(back.ratio(), 0.2, 1.0 / 255.0);
}

TEST(EstimateEntry, QuantizationNeverErasesMinority) {
  wire::Writer w;
  encode(w, EstimateEntry{7, 1, 10000, 0});
  wire::Reader r(w.data());
  const auto back = decode_estimate(r);
  EXPECT_GE(back.pub_hits, 1u);  // minority class must survive
}

TEST(EstimateEntry, WideOriginEscapesWithoutPerturbingNarrowOnes) {
  // Origins past 16 bits (million-node worlds) escape through the
  // 0xffff sentinel to a 4 B id; anything below the sentinel must keep
  // the paper's fixed 5-byte layout bit-for-bit.
  wire::Writer narrow;
  encode(narrow, EstimateEntry{0xfffe, 10, 40, 3});
  EXPECT_EQ(narrow.size(), kEstimateWireBytes);

  for (const net::NodeId origin : {0xffffu, 0x10000u, 1'000'000u}) {
    wire::Writer w;
    encode(w, EstimateEntry{origin, 10, 40, 3});
    EXPECT_EQ(w.size(), kEstimateWireBytes + 4) << origin;
    wire::Reader r(w.data());
    const auto back = decode_estimate(r);
    EXPECT_TRUE(r.exhausted()) << origin;
    EXPECT_EQ(back, (EstimateEntry{origin, 10, 40, 3})) << origin;
  }
}

TEST(EstimateEntry, ListRoundTrip) {
  std::vector<EstimateEntry> v{{1, 2, 8, 0}, {2, 5, 5, 3}};
  wire::Writer w;
  encode(w, v);
  wire::Reader r(w.data());
  EXPECT_EQ(decode_estimates(r), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(RatioEstimator, NoInformationFallsBackToHalf) {
  RatioEstimator e(1, net::NatType::Private, cfg());
  EXPECT_DOUBLE_EQ(e.estimate(), 0.5);
}

TEST(RatioEstimator, LocalEstimateFromHits) {
  RatioEstimator e(1, net::NatType::Public, cfg());
  // Round 1: one public, four private requests -> E = 0.2 (eq. 6).
  e.count_request(net::NatType::Public);
  for (int i = 0; i < 4; ++i) e.count_request(net::NatType::Private);
  e.begin_round();
  ASSERT_TRUE(e.local_estimate().has_value());
  EXPECT_DOUBLE_EQ(*e.local_estimate(), 0.2);
  EXPECT_DOUBLE_EQ(e.estimate(), 0.2);  // eq. 8 with empty M
}

TEST(RatioEstimator, PrivateNodeHasNoLocalEstimate) {
  RatioEstimator e(1, net::NatType::Private, cfg());
  e.count_request(net::NatType::Public);  // shouldn't happen, but tolerate
  e.begin_round();
  EXPECT_FALSE(e.local_estimate().has_value());
}

TEST(RatioEstimator, WindowSumsAcrossRounds) {
  RatioEstimator e(1, net::NatType::Public, cfg(/*alpha=*/3));
  // Rounds with (pub, priv): (1,1), (0,2), (3,1) -> window 4/9... sums:
  // pub=4, priv=4 -> wait: 1+0+3=4 pub, 1+2+1=4 priv -> E = 0.5.
  e.count_request(net::NatType::Public);
  e.count_request(net::NatType::Private);
  e.begin_round();
  e.count_request(net::NatType::Private);
  e.count_request(net::NatType::Private);
  e.begin_round();
  for (int i = 0; i < 3; ++i) e.count_request(net::NatType::Public);
  e.count_request(net::NatType::Private);
  e.begin_round();
  EXPECT_DOUBLE_EQ(*e.local_estimate(), 0.5);
}

TEST(RatioEstimator, AlphaWindowEvictsOldRounds) {
  RatioEstimator e(1, net::NatType::Public, cfg(/*alpha=*/2));
  // Round 1: all public. Rounds 2,3: all private. With α=2 only the last
  // two rounds count -> E = 0.
  e.count_request(net::NatType::Public);
  e.begin_round();
  e.count_request(net::NatType::Private);
  e.begin_round();
  e.count_request(net::NatType::Private);
  e.begin_round();
  EXPECT_DOUBLE_EQ(*e.local_estimate(), 0.0);
}

TEST(RatioEstimator, MergeCachesForeignEntries) {
  RatioEstimator e(1, net::NatType::Private, cfg());
  const std::vector<EstimateEntry> in{{2, 1, 4, 0}, {3, 1, 3, 0}};
  e.merge(in);
  EXPECT_EQ(e.cached_count(), 2u);
  // eq. 9: mean of 0.2 and 0.25.
  EXPECT_DOUBLE_EQ(e.estimate(), (0.2 + 0.25) / 2.0);
}

TEST(RatioEstimator, MergeSkipsOwnOrigin) {
  RatioEstimator e(1, net::NatType::Public, cfg());
  const std::vector<EstimateEntry> in{{1, 9, 1, 0}};
  e.merge(in);
  EXPECT_EQ(e.cached_count(), 0u);
}

TEST(RatioEstimator, MergeSkipsEmptyEntries) {
  RatioEstimator e(1, net::NatType::Private, cfg());
  const std::vector<EstimateEntry> in{{2, 0, 0, 0}};
  e.merge(in);
  EXPECT_EQ(e.cached_count(), 0u);
}

TEST(RatioEstimator, MergeKeepsNewerPerOrigin) {
  RatioEstimator e(1, net::NatType::Private, cfg());
  e.merge(std::vector<EstimateEntry>{{2, 1, 1, 5}});
  e.merge(std::vector<EstimateEntry>{{2, 3, 1, 2}});  // newer
  ASSERT_EQ(e.cached_count(), 1u);
  EXPECT_EQ(e.cached()[0].pub_hits, 3u);
  e.merge(std::vector<EstimateEntry>{{2, 9, 9, 7}});  // older: ignored
  EXPECT_EQ(e.cached()[0].pub_hits, 3u);
}

TEST(RatioEstimator, GammaExpiresCachedEntries) {
  RatioEstimator e(1, net::NatType::Private, cfg(/*alpha=*/5, /*gamma=*/3));
  e.merge(std::vector<EstimateEntry>{{2, 1, 4, 0}});
  for (int i = 0; i < 3; ++i) e.begin_round();
  EXPECT_EQ(e.cached_count(), 1u);  // age 3 == γ: still valid
  e.begin_round();
  EXPECT_EQ(e.cached_count(), 0u);  // age 4 > γ: dropped
}

TEST(RatioEstimator, MergeRejectsEntriesBeyondGamma) {
  RatioEstimator e(1, net::NatType::Private, cfg(/*alpha=*/5, /*gamma=*/3));
  e.merge(std::vector<EstimateEntry>{{2, 1, 4, 9}});
  EXPECT_EQ(e.cached_count(), 0u);
}

TEST(RatioEstimator, PublicAveragesOwnPlusCache) {
  RatioEstimator e(1, net::NatType::Public, cfg());
  e.count_request(net::NatType::Public);  // own E = 1.0
  e.begin_round();
  e.merge(std::vector<EstimateEntry>{{2, 0, 1, 0}});  // foreign E = 0.0
  // eq. 8: (0.0 + 1.0) / (1 + 1) = 0.5.
  EXPECT_DOUBLE_EQ(e.estimate(), 0.5);
}

TEST(RatioEstimator, ShareIncludesOwnEntryForPublic) {
  RatioEstimator e(1, net::NatType::Public, cfg());
  e.count_request(net::NatType::Private);
  e.begin_round();
  sim::RngStream rng(1);
  const auto shared = e.share(rng);
  ASSERT_EQ(shared.size(), 1u);
  EXPECT_EQ(shared[0].origin, 1u);
  EXPECT_EQ(shared[0].age, 0u);
}

TEST(RatioEstimator, ShareOmitsOwnEntryForPrivate) {
  RatioEstimator e(1, net::NatType::Private, cfg());
  e.begin_round();
  sim::RngStream rng(1);
  EXPECT_TRUE(e.share(rng).empty());
}

TEST(RatioEstimator, ShareRespectsLimit) {
  RatioEstimator e(1, net::NatType::Public, cfg(25, 50, /*share=*/5));
  e.count_request(net::NatType::Public);
  e.begin_round();
  std::vector<EstimateEntry> many;
  for (net::NodeId i = 2; i < 30; ++i) many.push_back({i, 1, 4, 0});
  e.merge(many);
  sim::RngStream rng(1);
  const auto shared = e.share(rng);
  EXPECT_EQ(shared.size(), 5u);
  // Own entry always rides along for public nodes.
  const bool has_own = std::any_of(shared.begin(), shared.end(),
                                   [](const auto& s) { return s.origin == 1; });
  EXPECT_TRUE(has_own);
}

TEST(RatioEstimator, CacheAgesWithRounds) {
  RatioEstimator e(1, net::NatType::Private, cfg());
  e.merge(std::vector<EstimateEntry>{{2, 1, 4, 0}});
  e.begin_round();
  e.begin_round();
  ASSERT_EQ(e.cached_count(), 1u);
  EXPECT_EQ(e.cached()[0].age, 2u);
}

TEST(RatioEstimator, TwoNodeGossipConverges) {
  // A public node's local estimate propagates to a private node and both
  // agree on ω.
  RatioEstimator pub(1, net::NatType::Public, cfg());
  RatioEstimator priv(2, net::NatType::Private, cfg());
  sim::RngStream rng(1);
  for (int round = 0; round < 10; ++round) {
    pub.count_request(net::NatType::Public);
    for (int i = 0; i < 4; ++i) pub.count_request(net::NatType::Private);
    pub.begin_round();
    priv.begin_round();
    priv.merge(pub.share(rng));
  }
  EXPECT_NEAR(pub.estimate(), 0.2, 1e-9);
  EXPECT_NEAR(priv.estimate(), 0.2, 1e-9);
}

// Property sweep: the estimator's local window estimate equals the exact
// ratio of injected hits for arbitrary (pub, priv) patterns.
class EstimatorRatioSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EstimatorRatioSweep, WindowRatioExact) {
  const auto [pub_per_round, priv_per_round] = GetParam();
  RatioEstimator e(1, net::NatType::Public, cfg(/*alpha=*/10));
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < pub_per_round; ++i) {
      e.count_request(net::NatType::Public);
    }
    for (int i = 0; i < priv_per_round; ++i) {
      e.count_request(net::NatType::Private);
    }
    e.begin_round();
  }
  const double expected =
      static_cast<double>(pub_per_round) /
      static_cast<double>(pub_per_round + priv_per_round);
  ASSERT_TRUE(e.local_estimate().has_value());
  EXPECT_NEAR(*e.local_estimate(), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    HitPatterns, EstimatorRatioSweep,
    ::testing::Values(std::pair{1, 4}, std::pair{1, 1}, std::pair{3, 1},
                      std::pair{1, 9}, std::pair{7, 3}));

}  // namespace
}  // namespace croupier::core
