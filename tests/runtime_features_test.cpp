// Tests for runtime extensions: application-layer message routing,
// per-class round scaling, coordinate latency wiring, and merge-policy
// configuration plumbed through the protocols.
#include <gtest/gtest.h>

#include <memory>

#include "test_util.hpp"

namespace croupier::run {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

struct AppProbe final : net::MessageHandler {
  std::vector<std::pair<net::NodeId, std::uint8_t>> seen;
  void on_message(net::NodeId from, const net::Message& msg) override {
    seen.emplace_back(from, msg.type());
  }
};

struct AppMsg final : net::Message {
  std::uint8_t tag = 0x80;
  [[nodiscard]] std::uint8_t type() const override { return tag; }
  [[nodiscard]] const char* name() const override { return "test.app"; }
  void encode(wire::Writer& w) const override { w.u8(tag); }
};

TEST(AppLayer, MessagesAbove0x80RouteToAppHandler) {
  World world(fast_world_config(1), make_croupier_factory({}));
  const auto a = world.spawn(net::NatConfig::open());
  const auto b = world.spawn(net::NatConfig::open());
  AppProbe probe;
  world.set_app_handler(b, &probe);

  world.network().send(a, b, std::make_shared<AppMsg>());
  world.simulator().run_until(sim::sec(1));
  ASSERT_EQ(probe.seen.size(), 1u);
  EXPECT_EQ(probe.seen[0].first, a);
  EXPECT_EQ(probe.seen[0].second, 0x80);
}

TEST(AppLayer, AppMessagesWithoutHandlerAreDropped) {
  World world(fast_world_config(2), make_croupier_factory({}));
  const auto a = world.spawn(net::NatConfig::open());
  const auto b = world.spawn(net::NatConfig::open());
  world.network().send(a, b, std::make_shared<AppMsg>());
  // No crash, no protocol confusion: the PSS never sees tag 0x80.
  world.simulator().run_until(sim::sec(5));
  EXPECT_TRUE(world.alive(b));
}

TEST(AppLayer, ProtocolTrafficNotDeliveredToApp) {
  World world(fast_world_config(3), make_croupier_factory({}));
  populate(world, 4, 4);
  AppProbe probe;
  for (net::NodeId id : world.alive_ids()) {
    world.set_app_handler(id, &probe);
  }
  world.simulator().run_until(sim::sec(10));
  EXPECT_TRUE(probe.seen.empty());  // shuffles kept to the PSS layer
}

TEST(AppLayer, HandlerRemovable) {
  World world(fast_world_config(4), make_croupier_factory({}));
  const auto a = world.spawn(net::NatConfig::open());
  const auto b = world.spawn(net::NatConfig::open());
  AppProbe probe;
  world.set_app_handler(b, &probe);
  world.set_app_handler(b, nullptr);
  world.network().send(a, b, std::make_shared<AppMsg>());
  world.simulator().run_until(sim::sec(1));
  EXPECT_TRUE(probe.seen.empty());
}

TEST(RoundScaling, PrivateRoundScaleSlowsPrivatesOnly) {
  auto cfg = fast_world_config(5);
  cfg.private_round_scale = 2.0;  // privates gossip at half rate
  World world(cfg, make_croupier_factory({}));
  const auto pub = world.spawn(net::NatConfig::open());
  const auto priv = world.spawn(net::NatConfig::natted());
  world.simulator().run_until(sim::sec(60));
  EXPECT_NEAR(static_cast<double>(world.rounds_of(pub)), 60.0, 2.0);
  EXPECT_NEAR(static_cast<double>(world.rounds_of(priv)), 30.0, 2.0);
}

TEST(RoundScaling, BiasedRoundsBiasTheEstimate) {
  // The quantitative version is bench/ablation_skew; here just the sign:
  // slower privates => estimate above the true ratio.
  auto cfg = fast_world_config(6);
  cfg.private_round_scale = 1.5;
  World world(cfg, make_croupier_factory({}));
  populate(world, 10, 40);
  world.simulator().run_until(sim::sec(90));
  double sum = 0;
  const auto est = world.ratio_estimates();
  ASSERT_FALSE(est.empty());
  for (double e : est) sum += e;
  EXPECT_GT(sum / static_cast<double>(est.size()), world.true_ratio() + 0.02);
}

TEST(Latency, CoordinateModelWorksEndToEnd) {
  auto cfg = fast_world_config(7);
  cfg.latency = World::LatencyKind::Coordinate;
  World world(cfg, make_croupier_factory({}));
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(30));
  EXPECT_FALSE(world.ratio_estimates().empty());
  EXPECT_EQ(world.snapshot_overlay().largest_component(), 20u);
}

TEST(MergePolicy, HealerCroupierStillConverges) {
  core::CroupierConfig ccfg;
  ccfg.base.view_size = 5;
  ccfg.base.shuffle_size = 3;
  ccfg.base.merge = pss::MergePolicy::Healer;
  World world(fast_world_config(8), make_croupier_factory(ccfg));
  populate(world, 8, 32);
  world.simulator().run_until(sim::sec(60));
  for (double e : world.ratio_estimates()) {
    EXPECT_NEAR(e, 0.2, 0.12);
  }
}

TEST(MergePolicy, HealerCyclonKeepsViewsFresh) {
  pss::PssConfig cfg;
  cfg.view_size = 5;
  cfg.shuffle_size = 3;
  cfg.merge = pss::MergePolicy::Healer;
  World world(fast_world_config(9), make_cyclon_factory(cfg));
  populate(world, 20, 0);
  world.simulator().run_until(sim::sec(30));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const baselines::Cyclon&>(p);
    for (const auto& d : c.view().entries()) {
      EXPECT_LT(d.age, 15u);  // healer keeps entries notably fresh
    }
  });
}

}  // namespace
}  // namespace croupier::run
