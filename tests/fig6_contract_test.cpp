// Statistical regression contract for fig. 6: at the paper's 1000-node
// operating point, Croupier's overlay randomness must stay within a
// pinned distance of Cyclon's — the NAT-oblivious sampler running on an
// all-public population, i.e. the best case any gossip sampler achieves.
//
// The pins are calibrated against the measured distribution at this
// exact (spec, seed) point and are deterministic by the byte-identity
// contract: they fail only when a code change moves the distribution,
// never from run-to-run noise. Measured values (seed 1, 120 s horizon,
// audit every 10 s) and the tolerance granted around each:
//
//  - in-degree chi-square z: cyclon 58.3, croupier 64.9. Absolute z
//    grows with audit length for any real sampler (structural
//    overdispersion: fixed out-degree views are not multinomial
//    sampling, and the poisson join stagger skews cumulative counts),
//    so the contract is relative: croupier within 1.25x cyclon, both
//    inside a loose [10, 100] gross-regression band. A hub-captured
//    overlay measures in the thousands.
//  - lag-1 repeat ratio: cyclon 1.11 (a fresh-enough re-sample each
//    10 s snapshot), pinned to 1 +/- 0.5. Croupier 18.3 — structurally
//    elevated, not a defect: private nodes re-draw from the ~200-node
//    public pool while the expectation is computed against all n-1
//    candidates, and the (alpha, gamma) history windows hold entries
//    across snapshots. Pinned to [5, 30]; a frozen overlay would sit
//    at (n-1)/view ~ 100.
//  - public-selection bias: cyclon exactly 1 (all-public population);
//    croupier 0.927, pinned to 1 +/- 0.3 (near-unbiased class mixing).
//  - clustering (fig 6c): croupier 0.0253 vs cyclon 0.0236 — same
//    order, pinned to < 1.5x (a merge policy herding privates onto few
//    publics would multiply it).
#include <gtest/gtest.h>

#include <cstdint>

#include "metrics/randomness.hpp"
#include "runtime/spec.hpp"

namespace croupier::run {
namespace {

struct Fig6Stats {
  double chi2_z = 0.0;
  double repeat_ratio = 0.0;
  double bias_ratio = 0.0;
  double clustering = 0.0;
};

Fig6Stats measure(const char* protocol, double ratio, std::uint64_t seed) {
  Experiment experiment(SpecBuilder()
                            .protocol(protocol)
                            .nodes(1000)
                            .ratio(ratio)
                            .record_randomness(10.0)
                            .duration(120)
                            .build(),
                        seed);
  experiment.run();
  Fig6Stats stats;
  const auto& series = experiment.randomness()->series();
  if (!series.empty()) {
    stats.chi2_z = series.back().chi2_z;
    stats.repeat_ratio = series.back().repeat_ratio;
    stats.bias_ratio = series.back().bias_ratio;
  }
  stats.clustering =
      experiment.world().snapshot_overlay().avg_clustering_coefficient();
  return stats;
}

TEST(Fig6Contract, CroupierMatchesCyclonRandomnessAtPaperScale) {
  const auto croupier =
      measure("croupier:alpha=25,gamma=50,sizing=proportional", 0.2, 1);
  const auto cyclon = measure("cyclon", 1.0, 1);

  // Chi-square distance (see file header for the calibration).
  EXPECT_GT(cyclon.chi2_z, 10.0);
  EXPECT_LT(cyclon.chi2_z, 100.0);
  EXPECT_GT(croupier.chi2_z, 10.0);
  EXPECT_LT(croupier.chi2_z, 100.0);
  EXPECT_LT(croupier.chi2_z, cyclon.chi2_z * 1.25)
      << "croupier z " << croupier.chi2_z << " vs cyclon z "
      << cyclon.chi2_z;

  // Temporal independence: cyclon re-draws, croupier's class-structured
  // persistence stays far from the frozen-overlay ceiling (~100).
  EXPECT_NEAR(cyclon.repeat_ratio, 1.0, 0.5);
  EXPECT_GT(croupier.repeat_ratio, 5.0);
  EXPECT_LT(croupier.repeat_ratio, 30.0);

  // Class bias: cyclon's all-public population pins its ratio at
  // exactly 1; croupier's mixed views must stay near-unbiased.
  EXPECT_DOUBLE_EQ(cyclon.bias_ratio, 1.0);
  EXPECT_NEAR(croupier.bias_ratio, 1.0, 0.3);

  // Clustering ordering (fig 6c).
  EXPECT_GT(croupier.clustering, 0.0);
  EXPECT_LT(croupier.clustering, cyclon.clustering * 1.5);
}

}  // namespace
}  // namespace croupier::run
