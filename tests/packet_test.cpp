// Packet layer tests: fragment framing, Reader truncation latching,
// fragmentation geometry, reassembly under reorder/duplication/expiry,
// token-bucket conservation, and the Network-level fragmented path.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/token_bucket.hpp"
#include "sim/simulator.hpp"

namespace croupier::net {
namespace {

using sim::msec;
using sim::sec;

std::vector<std::byte> make_payload(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(i * 13 + 5);
  }
  return out;
}

TEST(FragmentHeader, RoundTripsThroughWire) {
  FragmentHeader h;
  h.msg_id = 0x0123456789ABCDEFull;
  h.index = 7;
  h.count = 12;
  h.source = 10;
  h.payload_len = 44;
  h.total_len = 437;

  wire::Writer w;
  h.encode(w);
  EXPECT_EQ(w.size(), kFragmentHeaderBytes);

  wire::Reader r(w.data());
  const FragmentHeader back = FragmentHeader::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back, h);
}

TEST(FragmentHeader, TruncatedDecodeLatchesReader) {
  FragmentHeader h;
  h.msg_id = 42;
  h.payload_len = 16;
  wire::Writer w;
  h.encode(w);
  // Cut mid-header: decode yields zeros and a latched reader.
  wire::Reader r(w.data().subspan(0, kFragmentHeaderBytes - 3));
  const FragmentHeader back = FragmentHeader::decode(r);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(back.total_len, 0u);
}

TEST(Reader, CutFragmentPayloadLatches) {
  // A frame whose header promises more payload than the datagram holds:
  // the bytes() read must latch, not return a short span.
  FragmentHeader h;
  h.msg_id = 1;
  h.index = 0;
  h.count = 2;
  h.source = 2;
  h.payload_len = 32;
  h.total_len = 64;
  wire::Writer w;
  h.encode(w);
  w.bytes(make_payload(20));  // 12 bytes short of payload_len

  wire::Reader r(w.data());
  const FragmentHeader back = FragmentHeader::decode(r);
  ASSERT_TRUE(r.ok());
  const auto payload = r.bytes(back.payload_len);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(payload.empty());
  // Latched: every later read keeps failing, returns zeros.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_FALSE(r.exhausted());
}

TEST(Fragmenter, GeometryAtSmallMtu) {
  PacketConfig cfg;
  cfg.mtu = 64;  // 44-byte chunks
  const Fragmenter frag(cfg);
  EXPECT_FALSE(frag.needs_fragmentation(64));
  EXPECT_TRUE(frag.needs_fragmentation(65));
  EXPECT_EQ(frag.source_count(100), 3u);  // ceil(100 / 44)
  EXPECT_EQ(frag.repair_count(3), 0u);    // fec off

  const auto msg = make_payload(100);
  const auto frags = frag.split(9, msg);
  ASSERT_EQ(frags.size(), 3u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    EXPECT_EQ(frags[i].header.msg_id, 9u);
    EXPECT_EQ(frags[i].header.index, i);
    EXPECT_EQ(frags[i].header.count, 3u);
    EXPECT_EQ(frags[i].header.source, 3u);
    EXPECT_EQ(frags[i].header.total_len, 100u);
    EXPECT_LE(frags[i].wire_size(), cfg.mtu);
    total += frags[i].payload.size();
  }
  EXPECT_EQ(total, 100u);  // source fragments carry exactly the message
}

TEST(Fragmenter, FecAppendsRepairFragments) {
  PacketConfig cfg;
  cfg.mtu = 64;
  cfg.fec_repair = 2;
  cfg.fec_rate = 0.5;  // + ceil(0.5 * k)
  const Fragmenter frag(cfg);
  EXPECT_EQ(frag.repair_count(3), 2u + 2u);

  const auto msg = make_payload(100);  // k = 3
  const auto frags = frag.split(1, msg);
  ASSERT_EQ(frags.size(), 7u);
  for (const auto& f : frags) {
    EXPECT_EQ(f.header.count, 7u);
    EXPECT_EQ(f.header.source, 3u);
    EXPECT_LE(f.wire_size(), cfg.mtu);
  }
  // Repair payloads are full chunks.
  EXPECT_EQ(frags[3].payload.size(), frags[0].payload.size());
}

TEST(FragmentAssembly, ReassemblesUnderReorderAndDuplication) {
  PacketConfig cfg;
  cfg.mtu = 64;
  const auto msg = make_payload(150);  // k = 4
  const auto frags = Fragmenter(cfg).split(5, msg);
  ASSERT_EQ(frags.size(), 4u);

  FragmentAssembly assembly(frags[2].header);
  EXPECT_FALSE(assembly.add(frags[2].header, frags[2].payload));
  EXPECT_FALSE(assembly.add(frags[2].header, frags[2].payload));  // dup
  EXPECT_FALSE(assembly.add(frags[0].header, frags[0].payload));
  EXPECT_FALSE(assembly.add(frags[3].header, frags[3].payload));
  EXPECT_EQ(assembly.fragments_held(), 3u);
  EXPECT_FALSE(assembly.bytes().has_value());  // incomplete
  EXPECT_TRUE(assembly.add(frags[1].header, frags[1].payload));
  ASSERT_TRUE(assembly.complete());
  const auto out = assembly.bytes();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(FragmentAssembly, FecDecodeAtExactlyKofN) {
  PacketConfig cfg;
  cfg.mtu = 64;
  cfg.fec_repair = 2;
  const auto msg = make_payload(150);  // k = 4, n = 6
  const auto frags = Fragmenter(cfg).split(5, msg);
  ASSERT_EQ(frags.size(), 6u);

  // Drop sources 1 and 3; the two repairs substitute.
  FragmentAssembly assembly(frags[4].header);
  assembly.add(frags[4].header, frags[4].payload);
  assembly.add(frags[0].header, frags[0].payload);
  assembly.add(frags[5].header, frags[5].payload);
  EXPECT_FALSE(assembly.complete());  // k-1 held: must not complete
  EXPECT_FALSE(assembly.bytes().has_value());
  EXPECT_TRUE(assembly.add(frags[2].header, frags[2].payload));
  const auto out = assembly.bytes();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST(FragmentAssembly, IgnoresGeometryMismatches) {
  PacketConfig cfg;
  cfg.mtu = 64;
  const auto msg = make_payload(100);
  const auto frags = Fragmenter(cfg).split(5, msg);
  FragmentAssembly assembly(frags[0].header);
  EXPECT_FALSE(assembly.add(frags[0].header, frags[0].payload));

  FragmentHeader bad = frags[1].header;
  bad.total_len = 999;  // mismatched geometry
  EXPECT_FALSE(assembly.add(bad, frags[1].payload));
  bad = frags[1].header;
  bad.index = bad.count;  // out-of-range index
  EXPECT_FALSE(assembly.add(bad, frags[1].payload));
  // Payload length disagreeing with the header is ignored too.
  EXPECT_FALSE(assembly.add(
      frags[1].header,
      std::span<const std::byte>(frags[1].payload.data(), 1)));
  EXPECT_EQ(assembly.fragments_held(), 1u);
}

TEST(TokenBucket, BurstPassesFreeThenDelaysExactly) {
  // 1000 B/s, 500 B burst: the first 500 bytes are free; each byte
  // beyond owes exactly 1 ms.
  TokenBucket bucket(1000, 500);
  EXPECT_EQ(bucket.charge(0, 500), 0u);
  EXPECT_EQ(bucket.balance_bytes(), 0);
  // 250 B with an empty bucket: last token arrives after 250 ms.
  EXPECT_EQ(bucket.charge(0, 250), msec(250));
  EXPECT_EQ(bucket.balance_bytes(), -250);
}

TEST(TokenBucket, ConservationAcrossChargePatterns) {
  // However N bytes are sliced into datagrams at t=0, the LAST datagram's
  // delay is the same: (N - burst) / rate.
  const std::uint64_t rate = 2000, burst = 100;
  const std::size_t total = 1100;
  const sim::Duration expect = msec(500);  // (1100 - 100) B at 2000 B/s
  for (const std::size_t slice : {std::size_t{1100}, std::size_t{100},
                                  std::size_t{20}}) {
    TokenBucket bucket(rate, burst);
    sim::Duration last = 0;
    for (std::size_t sent = 0; sent < total; sent += slice) {
      last = bucket.charge(0, slice);
    }
    EXPECT_EQ(last, expect) << "slice=" << slice;
    EXPECT_EQ(bucket.balance_bytes(), -static_cast<std::int64_t>(total -
                                                                 burst));
  }
}

TEST(TokenBucket, RefillsAtRateAndCapsAtBurst) {
  TokenBucket bucket(1000, 500);
  EXPECT_EQ(bucket.charge(0, 500), 0u);
  // 100 ms later 100 tokens accrued.
  EXPECT_EQ(bucket.charge(msec(100), 100), 0u);
  EXPECT_EQ(bucket.balance_bytes(), 0);
  // A long idle refills to burst, never beyond.
  EXPECT_EQ(bucket.charge(sec(100), 500), 0u);
  EXPECT_EQ(bucket.balance_bytes(), 0);
}

// ---------------------------------------------------------------------
// Network-level packet path.

struct BigMsg final : Message {
  std::vector<std::byte> blob;
  explicit BigMsg(std::size_t n) : blob(make_payload(n)) {}
  [[nodiscard]] std::uint8_t type() const override { return 0x7E; }
  [[nodiscard]] const char* name() const override { return "big"; }
  void encode(wire::Writer& w) const override {
    w.u8(type());
    w.u32(static_cast<std::uint32_t>(blob.size()));
    w.bytes(blob);
  }
};

struct Inbox final : MessageHandler {
  std::vector<NodeId> received_from;
  void on_message(NodeId from, const Message&) override {
    received_from.push_back(from);
  }
};

struct Fixture {
  sim::Simulator sim;
  std::unique_ptr<Network> net;
  Inbox inbox_a, inbox_b;

  explicit Fixture(const PacketConfig& cfg, double loss = 0.0) {
    net = std::make_unique<Network>(
        sim, std::make_unique<ConstantLatency>(msec(10)), sim::RngStream(7),
        loss);
    net->set_packet_config(cfg);
    net->attach(1, NatConfig::open(), inbox_a);
    net->attach(2, NatConfig::open(), inbox_b);
  }
};

TEST(NetworkPacket, SmallMessagesRideClassicDatagrams) {
  PacketConfig cfg;
  cfg.mtu = 256;
  Fixture f(cfg);
  f.net->send(1, 2, std::make_shared<BigMsg>(100));  // 105 B wire < mtu
  f.sim.run();
  EXPECT_EQ(f.inbox_b.received_from.size(), 1u);
  EXPECT_EQ(f.net->drops().fragments_sent, 0u);
}

TEST(NetworkPacket, LargeMessageFragmentsAndReassembles) {
  PacketConfig cfg;
  cfg.mtu = 128;  // 108-byte chunks
  Fixture f(cfg);
  f.net->send(1, 2, std::make_shared<BigMsg>(300));  // 305 B -> k = 3
  f.sim.run_until(msec(11));
  ASSERT_EQ(f.inbox_b.received_from.size(), 1u);
  EXPECT_EQ(f.inbox_b.received_from[0], 1u);
  const auto& d = f.net->drops();
  EXPECT_EQ(d.fragments_sent, 3u);
  EXPECT_EQ(d.fragments_reassembled, 3u);
  EXPECT_EQ(d.delivered, 1u);
  // The completed entry lingers (suppressing late duplicates) until the
  // deterministic GC sweeps it.
  EXPECT_EQ(f.net->pending_reassemblies(2), 1u);
  f.sim.run();
  EXPECT_EQ(f.net->pending_reassemblies(2), 0u);
  EXPECT_EQ(d.fragments_expired, 0u);  // complete entries never expire
}

TEST(NetworkPacket, LossyFragmentsExpireAndFecRecovers) {
  PacketConfig cfg;
  cfg.mtu = 128;
  Fixture plain(cfg, 0.3);
  cfg.fec_repair = 3;
  Fixture fec(cfg, 0.3);

  for (int i = 0; i < 50; ++i) {
    plain.net->send(1, 2, std::make_shared<BigMsg>(300));  // k = 3
    fec.net->send(1, 2, std::make_shared<BigMsg>(300));    // k=3 (+3 repair)
  }
  plain.sim.run();
  fec.sim.run();

  // Same per-fragment loss, but plain needs all 3 of 3 where FEC needs
  // any 3 of 6; with p=0.3 that's ~34% vs ~93% message survival.
  EXPECT_LT(plain.inbox_b.received_from.size(),
            fec.inbox_b.received_from.size());
  EXPECT_GT(plain.net->drops().fragments_expired, 0u);
  EXPECT_EQ(plain.net->pending_reassemblies(2), 0u);  // GC swept them all
  EXPECT_EQ(fec.net->pending_reassemblies(2), 0u);
  // Byte accounting covers every datagram outcome.
  const auto& d = plain.net->drops();
  EXPECT_GT(d.loss_bytes, 0u);
  EXPECT_GT(d.delivered_bytes, 0u);
}

TEST(NetworkPacket, BandwidthCapInflatesDelivery) {
  PacketConfig cfg;
  cfg.bandwidth_bps = 1000;   // 1000 B/s
  cfg.bandwidth_burst = 200;  // one datagram's worth
  Fixture f(cfg);
  // 100-byte blob = 105 wire + 28 UDP/IP = 133 B per datagram.
  f.net->send(1, 2, std::make_shared<BigMsg>(100));
  f.net->send(1, 2, std::make_shared<BigMsg>(100));
  f.sim.run();
  // First datagram fits the burst (delivered at 10 ms); the second owes
  // 66 of its 133 bytes = 66 ms of queueing on top of the 10 ms latency.
  ASSERT_EQ(f.inbox_b.received_from.size(), 2u);
  EXPECT_EQ(f.sim.now(), msec(10) + msec(66));
}

TEST(NetworkPacket, DetachDropsBucketAndAssemblies) {
  PacketConfig cfg;
  cfg.mtu = 128;
  cfg.bandwidth_bps = 500;
  Fixture f(cfg);
  f.net->send(1, 2, std::make_shared<BigMsg>(300));
  f.sim.run_until(msec(11));
  EXPECT_EQ(f.inbox_b.received_from.size(), 1u);
  f.net->detach(2);
  EXPECT_EQ(f.net->pending_reassemblies(2), 0u);
  // Sending to the dead receiver counts dead fragments, crashes nothing.
  f.net->send(1, 2, std::make_shared<BigMsg>(300));
  f.sim.run();
  EXPECT_EQ(f.net->drops().dead_receiver, 3u);
  EXPECT_GT(f.net->drops().dead_receiver_bytes, 0u);
}

}  // namespace
}  // namespace croupier::net
