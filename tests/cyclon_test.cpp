// Cyclon baseline tests: classic shuffle mechanics on all-public
// networks, and its documented failure mode on NATted networks.
#include <gtest/gtest.h>

#include "baselines/cyclon.hpp"
#include "test_util.hpp"

namespace croupier::baselines {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

pss::PssConfig small_cfg() {
  pss::PssConfig cfg;
  cfg.view_size = 5;
  cfg.shuffle_size = 3;
  return cfg;
}

run::World make_world(std::uint64_t seed = 1) {
  return run::World(fast_world_config(seed),
                    run::make_cyclon_factory(small_cfg()));
}

TEST(Cyclon, ViewsFillOnAllPublicNetwork) {
  auto world = make_world();
  populate(world, 20, 0);
  world.simulator().run_until(sim::sec(20));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const Cyclon&>(p);
    // A node mid-exchange has removed its shuffle target and not yet
    // merged the response, so capacity-1 is the steady-state floor.
    EXPECT_GE(c.view().size(), 4u);
  });
}

TEST(Cyclon, ViewNeverContainsSelf) {
  auto world = make_world(3);
  populate(world, 15, 0);
  world.simulator().run_until(sim::sec(15));
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const Cyclon&>(p);
    EXPECT_FALSE(c.view().contains(id));
  });
}

TEST(Cyclon, DescriptorsStayFresh) {
  auto world = make_world(5);
  populate(world, 20, 0);
  world.simulator().run_until(sim::sec(30));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const Cyclon&>(p);
    for (const auto& d : c.view().entries()) {
      // With view 5 / shuffle 3 on 20 nodes, descriptors churn quickly;
      // nothing should grow ancient.
      EXPECT_LT(d.age, 25u);
    }
  });
}

TEST(Cyclon, SamplesAreLiveNodes) {
  auto world = make_world(7);
  populate(world, 12, 0);
  world.simulator().run_until(sim::sec(10));
  auto* s = world.sampler(world.alive_ids().front());
  for (int i = 0; i < 30; ++i) {
    const auto d = s->sample();
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(world.alive(d->id));
  }
}

TEST(Cyclon, ShufflesFailAgainstPrivateNodes) {
  // NAT-oblivious Cyclon on a mixed network: requests at private nodes
  // are filtered — the motivation for the whole paper.
  auto world = make_world(9);
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(20));
  EXPECT_GT(world.network().drops().nat_filtered, 0u);
}

TEST(Cyclon, MessageRoundTrip) {
  CyclonShuffleReq req;
  req.sender = pss::NodeDescriptor{1, net::NatType::Public, 0};
  req.entries = {{2, net::NatType::Public, 3}, {4, net::NatType::Public, 1}};
  wire::Writer w;
  req.encode(w);
  wire::Reader r(w.data());
  const auto back = CyclonShuffleReq::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.sender, req.sender);
  EXPECT_EQ(back.entries, req.entries);
}

TEST(Cyclon, InDegreeStaysBalanced) {
  auto world = make_world(11);
  populate(world, 30, 0);
  world.simulator().run_until(sim::sec(40));
  const auto graph = world.snapshot_overlay();
  const auto degrees = graph.in_degrees();
  std::size_t max_deg = 0;
  for (std::size_t d : degrees) max_deg = std::max(max_deg, d);
  // Mean in-degree is 5 (== out-degree); no node should hoard edges.
  EXPECT_LE(max_deg, 15u);
}

TEST(Cyclon, ConnectedAfterWarmup) {
  auto world = make_world(13);
  populate(world, 25, 0);
  world.simulator().run_until(sim::sec(30));
  const auto graph = world.snapshot_overlay();
  EXPECT_EQ(graph.largest_component(), 25u);
}

}  // namespace
}  // namespace croupier::baselines
