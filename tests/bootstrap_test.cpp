// Bootstrap oracle tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/bootstrap.hpp"

namespace croupier::net {
namespace {

TEST(Bootstrap, CountsByClass) {
  BootstrapServer b;
  b.add(1, NatType::Public);
  b.add(2, NatType::Private);
  b.add(3, NatType::Public);
  EXPECT_EQ(b.public_count(), 2u);
  EXPECT_EQ(b.total_count(), 3u);
}

TEST(Bootstrap, RemoveUpdatesBothRegistries) {
  BootstrapServer b;
  b.add(1, NatType::Public);
  b.add(2, NatType::Private);
  b.remove(1);
  EXPECT_EQ(b.public_count(), 0u);
  EXPECT_EQ(b.total_count(), 1u);
  EXPECT_FALSE(b.known(1));
  EXPECT_TRUE(b.known(2));
}

TEST(Bootstrap, RemoveUnknownIsNoop) {
  BootstrapServer b;
  b.add(1, NatType::Public);
  b.remove(99);
  EXPECT_EQ(b.total_count(), 1u);
}

TEST(Bootstrap, SamplePublicOnlyReturnsPublics) {
  BootstrapServer b;
  for (NodeId i = 1; i <= 20; ++i) {
    b.add(i, i % 4 == 0 ? NatType::Public : NatType::Private);
  }
  sim::RngStream rng(1);
  const auto picked = b.sample_public(10, kNilNode, rng);
  EXPECT_EQ(picked.size(), 5u);  // only 5 publics exist
  for (NodeId id : picked) EXPECT_EQ(id % 4, 0u);
}

TEST(Bootstrap, SampleExcludesSelf) {
  BootstrapServer b;
  b.add(1, NatType::Public);
  b.add(2, NatType::Public);
  sim::RngStream rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto picked = b.sample_public(2, 1, rng);
    EXPECT_EQ(std::count(picked.begin(), picked.end(), 1u), 0);
  }
}

TEST(Bootstrap, SampleReturnsDistinctNodes) {
  BootstrapServer b;
  for (NodeId i = 1; i <= 50; ++i) b.add(i, NatType::Public);
  sim::RngStream rng(3);
  auto picked = b.sample_public(20, kNilNode, rng);
  std::sort(picked.begin(), picked.end());
  EXPECT_EQ(std::unique(picked.begin(), picked.end()), picked.end());
  EXPECT_EQ(picked.size(), 20u);
}

TEST(Bootstrap, SampleFromEmptyRegistry) {
  BootstrapServer b;
  sim::RngStream rng(1);
  EXPECT_TRUE(b.sample_public(5, kNilNode, rng).empty());
  EXPECT_TRUE(b.sample_any(5, kNilNode, rng).empty());
}

TEST(Bootstrap, SampleAnyMixesClasses) {
  BootstrapServer b;
  b.add(1, NatType::Public);
  b.add(2, NatType::Private);
  sim::RngStream rng(5);
  bool saw_private = false;
  for (int i = 0; i < 50 && !saw_private; ++i) {
    for (NodeId id : b.sample_any(1, kNilNode, rng)) {
      if (id == 2) saw_private = true;
    }
  }
  EXPECT_TRUE(saw_private);
}

TEST(Bootstrap, SamplingIsRoughlyUniform) {
  BootstrapServer b;
  for (NodeId i = 0; i < 10; ++i) b.add(i, NatType::Public);
  sim::RngStream rng(11);
  std::vector<int> hits(10, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    for (NodeId id : b.sample_public(1, kNilNode, rng)) ++hits[id];
  }
  for (int h : hits) EXPECT_NEAR(h, draws / 10, draws / 10 * 0.15);
}

}  // namespace
}  // namespace croupier::net
