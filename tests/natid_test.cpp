// NAT-type identification protocol tests (paper §V, Algorithm 1): every
// connectivity class must classify correctly, including the subtle
// endpoint-independent-filtering case.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "natid/natid.hpp"
#include "net/latency.hpp"
#include "test_util.hpp"

namespace croupier::natid {
namespace {

// Standalone harness: a few public responder nodes plus one client under
// test, without the full World runtime.
struct Harness {
  sim::Simulator sim;
  net::BootstrapServer bootstrap;
  std::unique_ptr<net::Network> network;

  struct ResponderNode final : net::MessageHandler {
    std::unique_ptr<NatIdResponder> responder;
    void on_message(net::NodeId from, const net::Message& msg) override {
      responder->on_message(from, msg);
    }
  };
  struct ClientNode final : net::MessageHandler {
    std::unique_ptr<NatIdClient> client;
    void on_message(net::NodeId from, const net::Message& msg) override {
      client->on_message(from, msg);
    }
  };

  std::vector<std::unique_ptr<ResponderNode>> responders;
  ClientNode client_node;
  std::optional<net::NatType> outcome;

  explicit Harness(std::size_t publics = 4) {
    network = std::make_unique<net::Network>(
        sim, std::make_unique<net::ConstantLatency>(sim::msec(30)),
        sim::RngStream(5), 0.0);
    for (net::NodeId id = 1; id <= publics; ++id) {
      auto node = std::make_unique<ResponderNode>();
      network->attach(id, net::NatConfig::open(), *node);
      node->responder = std::make_unique<NatIdResponder>(
          id, *network, bootstrap, sim::RngStream(100 + id));
      bootstrap.add(id, net::NatType::Public);
      responders.push_back(std::move(node));
    }
  }

  sim::SimTime decided_at = 0;

  net::NatType classify(const net::NatConfig& cfg,
                        NatIdClient::Config client_cfg = {}) {
    const net::NodeId id = 1000;
    network->attach(id, cfg, client_node);
    client_cfg.upnp_available = cfg.cls == net::ConnectivityClass::UpnpIgd;
    client_node.client = std::make_unique<NatIdClient>(
        id, *network, bootstrap, sim::RngStream(77), client_cfg,
        [this](net::NatType t) {
          outcome = t;
          decided_at = sim.now();
        });
    client_node.client->start();
    sim.run_until(sim.now() + sim::sec(10));
    EXPECT_TRUE(outcome.has_value());
    return outcome.value_or(net::NatType::Private);
  }
};

TEST(NatId, OpenInternetIsPublic) {
  Harness h;
  EXPECT_EQ(h.classify(net::NatConfig::open()), net::NatType::Public);
}

TEST(NatId, UpnpIsPublicWithoutNetworkTraffic) {
  Harness h;
  EXPECT_EQ(h.classify(net::NatConfig::upnp()), net::NatType::Public);
  // The UPnP shortcut must not have sent a single packet.
  EXPECT_EQ(h.network->meter().totals(1000).msgs_sent, 0u);
}

TEST(NatId, RestrictiveNatIsPrivateViaTimeout) {
  Harness h;
  EXPECT_EQ(h.classify(net::NatConfig::natted(
                net::FilteringPolicy::AddressAndPortDependent)),
            net::NatType::Private);
}

TEST(NatId, EndpointIndependentNatIsPrivateViaIpMismatch) {
  // The ForwardResp *does* arrive (EI filtering lets it through), but the
  // observed address is the NAT's, not the host's.
  Harness h;
  EXPECT_EQ(h.classify(net::NatConfig::natted(
                net::FilteringPolicy::EndpointIndependent)),
            net::NatType::Private);
  // Decided well before the timeout: the response path completed and the
  // verdict came from the IP mismatch, not the timer.
  EXPECT_LT(h.decided_at, sim::sec(2));
}

TEST(NatId, FirewalledIsPrivateDespiteMatchingIp) {
  Harness h;
  EXPECT_EQ(h.classify(net::NatConfig::firewalled()), net::NatType::Private);
}

TEST(NatId, AddressDependentNatIsPrivate) {
  Harness h;
  EXPECT_EQ(
      h.classify(net::NatConfig::natted(net::FilteringPolicy::AddressDependent)),
      net::NatType::Private);
}

TEST(NatId, NoPublicNodesYieldsPrivateConservatively) {
  Harness h(0);
  EXPECT_EQ(h.classify(net::NatConfig::open()), net::NatType::Private);
}

TEST(NatId, UsesThreeMessagesOnHappyPath) {
  Harness h(4);
  NatIdClient::Config cfg;
  cfg.parallel_probes = 1;  // single probe chain: exactly 3 messages
  h.classify(net::NatConfig::open(), cfg);
  std::uint64_t total_msgs = 0;
  // detlint:allow(unordered-iter) order-insensitive sum over the meter map
  for (const auto& [id, t] : h.network->meter().per_node()) {
    total_msgs += t.msgs_sent;
  }
  EXPECT_EQ(total_msgs, 3u);  // MatchingIpTest + ForwardTest + ForwardResp
}

TEST(NatId, ParallelProbesStillDecideOnce) {
  Harness h(5);
  NatIdClient::Config cfg;
  cfg.parallel_probes = 3;
  EXPECT_EQ(h.classify(net::NatConfig::open(), cfg), net::NatType::Public);
  // Extra ForwardResps after the first are ignored; the client reports
  // finished and retains its first result.
  EXPECT_TRUE(h.client_node.client->finished());
  EXPECT_EQ(h.client_node.client->result(), net::NatType::Public);
}

TEST(NatId, MessageRoundTrips) {
  MatchingIpTest t;
  t.probed = {1, 2, 3};
  wire::Writer w;
  t.encode(w);
  wire::Reader r(w.data());
  EXPECT_EQ(MatchingIpTest::decode(r).probed, t.probed);
  EXPECT_TRUE(r.exhausted());

  ForwardTest f;
  f.client = 9;
  f.observed_ip = net::IpAddr{0x52000009};
  wire::Writer w2;
  f.encode(w2);
  wire::Reader r2(w2.data());
  const auto fb = ForwardTest::decode(r2);
  EXPECT_EQ(fb.client, 9u);
  EXPECT_EQ(fb.observed_ip, f.observed_ip);

  ForwardResp resp;
  resp.observed_ip = net::IpAddr{0x0a000001};
  wire::Writer w3;
  resp.encode(w3);
  wire::Reader r3(w3.data());
  EXPECT_EQ(ForwardResp::decode(r3).observed_ip, resp.observed_ip);
}

// Integration: the full runtime identifies a mixed population correctly.
TEST(NatId, WorldIntegrationIdentifiesAllClassesCorrectly) {
  auto cfg = croupier::testing::fast_world_config(21);
  cfg.use_natid_protocol = true;
  core::CroupierConfig ccfg;
  ccfg.base.view_size = 5;
  ccfg.base.shuffle_size = 3;
  run::World world(cfg, run::make_croupier_factory(ccfg));

  // Operator-seeded publics join first; later joiners identify themselves
  // against them with the real protocol.
  std::vector<net::NodeId> opens, upnps, nats, firewalls;
  for (int i = 0; i < 4; ++i) {
    opens.push_back(world.spawn_seeded(net::NatConfig::open()));
  }
  world.simulator().run_until(sim::sec(5));
  for (int i = 0; i < 3; ++i) upnps.push_back(world.spawn(net::NatConfig::upnp()));
  for (int i = 0; i < 6; ++i) nats.push_back(world.spawn(net::NatConfig::natted()));
  for (int i = 0; i < 2; ++i) {
    firewalls.push_back(world.spawn(net::NatConfig::firewalled()));
  }
  world.simulator().run_until(sim::sec(30));

  for (net::NodeId id : opens) {
    EXPECT_EQ(world.identified_type_of(id), net::NatType::Public) << id;
  }
  for (net::NodeId id : upnps) {
    EXPECT_EQ(world.identified_type_of(id), net::NatType::Public) << id;
  }
  for (net::NodeId id : nats) {
    EXPECT_EQ(world.identified_type_of(id), net::NatType::Private) << id;
  }
  for (net::NodeId id : firewalls) {
    EXPECT_EQ(world.identified_type_of(id), net::NatType::Private) << id;
  }
}

}  // namespace
}  // namespace croupier::natid
