// Network substrate tests: delivery, NAT enforcement, loss, traffic
// accounting, and lifecycle.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace croupier::net {
namespace {

using sim::msec;
using sim::sec;

struct TestMsg final : Message {
  std::uint32_t payload = 0;
  explicit TestMsg(std::uint32_t v = 0) : payload(v) {}
  [[nodiscard]] std::uint8_t type() const override { return 0x7F; }
  [[nodiscard]] const char* name() const override { return "test"; }
  void encode(wire::Writer& w) const override {
    w.u8(type());
    w.u32(payload);
  }
};

struct Inbox final : MessageHandler {
  std::vector<std::pair<NodeId, std::uint32_t>> received;
  void on_message(NodeId from, const Message& msg) override {
    received.emplace_back(from,
                          static_cast<const TestMsg&>(msg).payload);
  }
};

struct Fixture {
  sim::Simulator sim;
  std::unique_ptr<Network> net;
  Inbox inbox_a, inbox_b, inbox_c;

  explicit Fixture(double loss = 0.0) {
    net = std::make_unique<Network>(
        sim, std::make_unique<ConstantLatency>(msec(10)),
        sim::RngStream(7), loss);
  }
};

TEST(Network, DeliversBetweenPublicNodes) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::open(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>(99));
  f.sim.run();
  ASSERT_EQ(f.inbox_b.received.size(), 1u);
  EXPECT_EQ(f.inbox_b.received[0], std::make_pair(NodeId{1}, 99u));
}

TEST(Network, DeliveryTakesLatency) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::open(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run_until(msec(9));
  EXPECT_TRUE(f.inbox_b.received.empty());
  f.sim.run_until(msec(10));
  EXPECT_EQ(f.inbox_b.received.size(), 1u);
}

TEST(Network, UnsolicitedToPrivateIsFiltered) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::natted(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run();
  EXPECT_TRUE(f.inbox_b.received.empty());
  EXPECT_EQ(f.net->drops().nat_filtered, 1u);
}

TEST(Network, PrivateReachableAfterItInitiates) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::natted(), f.inbox_b);
  f.net->send(2, 1, std::make_shared<TestMsg>(1));  // opens 2's mapping
  f.sim.run();
  ASSERT_EQ(f.inbox_a.received.size(), 1u);
  f.net->send(1, 2, std::make_shared<TestMsg>(2));  // reply passes NAT
  f.sim.run();
  ASSERT_EQ(f.inbox_b.received.size(), 1u);
}

TEST(Network, PrivateToPrivateNeedsMutualMappings) {
  Fixture f;
  f.net->attach(1, NatConfig::natted(), f.inbox_a);
  f.net->attach(2, NatConfig::natted(), f.inbox_b);
  // 1 -> 2 blocked (2 never sent to 1)...
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run();
  EXPECT_TRUE(f.inbox_b.received.empty());
  // ...but the attempt opened 1's own mapping toward 2, so 2 -> 1 passes
  // (the hole-punching primitive Nylon exploits).
  f.net->send(2, 1, std::make_shared<TestMsg>(5));
  f.sim.run();
  ASSERT_EQ(f.inbox_a.received.size(), 1u);
}

TEST(Network, MappingExpiryBlocksLateReply) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::natted(FilteringPolicy::AddressAndPortDependent,
                                     sec(30)),
                f.inbox_b);
  f.net->send(2, 1, std::make_shared<TestMsg>());
  f.sim.run();
  // 31 s later the mapping is gone.
  f.sim.run_until(sec(31));
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run();
  EXPECT_TRUE(f.inbox_b.received.empty());
}

TEST(Network, SendToDeadNodeDropsQuietly) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->send(1, 99, std::make_shared<TestMsg>());
  f.sim.run();
  EXPECT_EQ(f.net->drops().dead_receiver, 1u);
}

TEST(Network, DetachDropsInFlight) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::open(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run_until(msec(5));  // packet in flight
  f.net->detach(2);
  f.sim.run();
  EXPECT_TRUE(f.inbox_b.received.empty());
  EXPECT_EQ(f.net->drops().dead_receiver, 1u);
}

TEST(Network, LossDropsRoughlyExpectedFraction) {
  Fixture f(0.2);
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::open(), f.inbox_b);
  const int sends = 5000;
  for (int i = 0; i < sends; ++i) {
    f.net->send(1, 2, std::make_shared<TestMsg>());
  }
  f.sim.run();
  EXPECT_NEAR(static_cast<double>(f.inbox_b.received.size()),
              sends * 0.8, sends * 0.05);
  EXPECT_NEAR(static_cast<double>(f.net->drops().loss), sends * 0.2,
              sends * 0.05);
}

TEST(LossModel, FactoryPicksTheCheapestModel) {
  EXPECT_EQ(make_loss_model(LossConfig{}), nullptr);
  EXPECT_EQ(make_loss_model(LossConfig::uniform(0.0)), nullptr);

  const auto uniform = make_loss_model(LossConfig::uniform(0.25));
  ASSERT_NE(uniform, nullptr);
  EXPECT_NE(dynamic_cast<UniformLoss*>(uniform.get()), nullptr);
  EXPECT_EQ(uniform->probability(0, NatType::Public, NatType::Private),
            0.25);

  LossConfig structured;
  structured.rate = {{{0.0, 0.0}, {0.4, 0.4}}};  // private senders only
  const auto model = make_loss_model(structured);
  ASSERT_NE(model, nullptr);
  EXPECT_NE(dynamic_cast<ClassPairLoss*>(model.get()), nullptr);
}

TEST(LossModel, ClassPairRatesAndActivationTime) {
  LossConfig cfg;
  cfg.rate = {{{0.1, 0.0}, {0.4, 0.3}}};
  cfg.after = sec(90);
  const ClassPairLoss model(cfg);
  // Loss-free before the activation instant, per-pair rates from it on.
  EXPECT_EQ(model.probability(sec(89), NatType::Private, NatType::Public),
            0.0);
  EXPECT_EQ(model.probability(sec(90), NatType::Private, NatType::Public),
            0.4);
  EXPECT_EQ(model.probability(sec(90), NatType::Public, NatType::Public),
            0.1);
  EXPECT_EQ(model.probability(sec(90), NatType::Public, NatType::Private),
            0.0);
  EXPECT_EQ(model.probability(sec(90), NatType::Private, NatType::Private),
            0.3);
}

TEST(Network, ClassPairLossDropsOnlyTheConfiguredDirection) {
  // Private->public packets drop at 50%; public->private replies are
  // untouched (asymmetric loss, the estimator's third-assumption
  // violation the bench sweeps measure).
  sim::Simulator sim;
  LossConfig cfg;
  cfg.rate = {{{0.0, 0.0}, {0.5, 0.5}}};
  Network net(sim, std::make_unique<ConstantLatency>(msec(10)),
              sim::RngStream(7), make_loss_model(cfg));
  Inbox pub_inbox, priv_inbox;
  net.attach(1, NatConfig::open(), pub_inbox);
  net.attach(2, NatConfig::natted(), priv_inbox);

  const int sends = 2000;
  for (int i = 0; i < sends; ++i) {
    net.send(2, 1, std::make_shared<TestMsg>());  // lossy direction
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(net.drops().loss), sends * 0.5,
              sends * 0.05);
  const auto survived = pub_inbox.received.size();
  EXPECT_NEAR(static_cast<double>(survived), sends * 0.5, sends * 0.05);

  // Reverse direction (2's NAT mapping toward 1 is open): loss-free.
  const auto dropped_before = net.drops().loss;
  for (int i = 0; i < 100; ++i) {
    net.send(1, 2, std::make_shared<TestMsg>());
  }
  sim.run();
  EXPECT_EQ(net.drops().loss, dropped_before);
  EXPECT_EQ(priv_inbox.received.size(), 100u);
}

TEST(Network, TimeVaryingLossActivatesMidRun) {
  sim::Simulator sim;
  LossConfig cfg;
  cfg.rate = {{{0.5, 0.5}, {0.5, 0.5}}};
  cfg.after = sec(10);
  Network net(sim, std::make_unique<ConstantLatency>(msec(10)),
              sim::RngStream(11), make_loss_model(cfg));
  Inbox a, b;
  net.attach(1, NatConfig::open(), a);
  net.attach(2, NatConfig::open(), b);

  for (int i = 0; i < 500; ++i) {
    net.send(1, 2, std::make_shared<TestMsg>());
  }
  sim.run();
  EXPECT_EQ(net.drops().loss, 0u);  // before activation: loss-free

  sim.run_until(sec(10));
  for (int i = 0; i < 500; ++i) {
    net.send(1, 2, std::make_shared<TestMsg>());
  }
  sim.run();
  EXPECT_NEAR(static_cast<double>(net.drops().loss), 250.0, 40.0);
}

TEST(Network, TrafficChargedWithHeaders) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::open(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run();
  const auto sent = f.net->meter().totals(1);
  const auto rcvd = f.net->meter().totals(2);
  // TestMsg encodes 5 bytes; plus 28 header bytes.
  EXPECT_EQ(sent.bytes_sent, 33u);
  EXPECT_EQ(sent.msgs_sent, 1u);
  EXPECT_EQ(rcvd.bytes_received, 33u);
  EXPECT_EQ(rcvd.msgs_received, 1u);
}

TEST(Network, LostPacketStillChargesSender) {
  Fixture f(1e-9);  // loss enabled but negligible
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::natted(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>());  // will be NAT-filtered
  f.sim.run();
  EXPECT_EQ(f.net->meter().totals(1).msgs_sent, 1u);
  EXPECT_EQ(f.net->meter().totals(2).msgs_received, 0u);
}

TEST(Network, MeterResetClearsWindow) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::open(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run();
  f.net->meter().reset();
  EXPECT_EQ(f.net->meter().totals(1).bytes_sent, 0u);
}

TEST(Network, LocalAndPublicIpsDifferOnlyBehindNat) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::natted(), f.inbox_b);
  f.net->attach(3, NatConfig::firewalled(), f.inbox_c);
  EXPECT_EQ(f.net->local_ip(1), f.net->public_ip(1));
  EXPECT_NE(f.net->local_ip(2), f.net->public_ip(2));
  // Firewalled host: public address, no translation.
  EXPECT_EQ(f.net->local_ip(3), f.net->public_ip(3));
}

TEST(Network, TypeOfReportsGroundTruth) {
  Fixture f;
  f.net->attach(1, NatConfig::upnp(), f.inbox_a);
  f.net->attach(2, NatConfig::natted(), f.inbox_b);
  EXPECT_EQ(f.net->type_of(1), NatType::Public);
  EXPECT_EQ(f.net->type_of(2), NatType::Private);
}

TEST(Network, UpnpNodeReceivesUnsolicited) {
  Fixture f;
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::upnp(), f.inbox_b);
  f.net->send(1, 2, std::make_shared<TestMsg>());
  f.sim.run();
  EXPECT_EQ(f.inbox_b.received.size(), 1u);
}

TEST(Network, AttachedCountTracksLifecycle) {
  Fixture f;
  EXPECT_EQ(f.net->attached_count(), 0u);
  f.net->attach(1, NatConfig::open(), f.inbox_a);
  f.net->attach(2, NatConfig::open(), f.inbox_b);
  EXPECT_EQ(f.net->attached_count(), 2u);
  f.net->detach(1);
  EXPECT_EQ(f.net->attached_count(), 1u);
  EXPECT_FALSE(f.net->attached(1));
  EXPECT_TRUE(f.net->attached(2));
}

TEST(Network, IpToStringFormats) {
  EXPECT_EQ(to_string(IpAddr{0x0a000001u}), "10.0.0.1");
  EXPECT_EQ(to_string(IpAddr{0xffffffffu}), "255.255.255.255");
}

}  // namespace
}  // namespace croupier::net
