// Tests for the exp/ trial-execution subsystem: TrialPool scheduling and
// exception behaviour, deterministic per-trial seed derivation, ResultSink
// CSV emission, and the cornerstone guarantee of the whole harness — a
// parallel run aggregates to byte-identical output as a serial run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exp/seeds.hpp"
#include "exp/sink.hpp"
#include "exp/trial_pool.hpp"

namespace croupier::exp {
namespace {

TEST(TrialPool, DefaultsToHardwareConcurrency) {
  TrialPool pool;
  EXPECT_GE(pool.jobs(), 1u);
}

TEST(TrialPool, RunsEverySubmittedTask) {
  TrialPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(TrialPool, MapKeepsSubmissionOrder) {
  TrialPool pool(4);
  const auto out =
      pool.map(64, [](std::size_t i) { return static_cast<int>(i) * 3; });
  ASSERT_EQ(out.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 3);
}

TEST(TrialPool, WaitIsReusable) {
  TrialPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(TrialPool, WaitRethrowsFirstTaskException) {
  TrialPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] { throw std::runtime_error("trial failed"); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool survives a failed batch.
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(TrialSeed, IsDeterministic) {
  EXPECT_EQ(trial_seed(1, 2, 3), trial_seed(1, 2, 3));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(1, 2, 4));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(1, 3, 3));
  EXPECT_NE(trial_seed(1, 2, 3), trial_seed(2, 2, 3));
}

TEST(TrialSeed, GridCellsAreDistinct) {
  std::set<std::uint64_t> seen;
  std::size_t cells = 0;
  for (std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    for (std::uint64_t point = 0; point < 20; ++point) {
      for (std::uint64_t run = 0; run < 20; ++run) {
        seen.insert(trial_seed(seed, point, run));
        ++cells;
      }
    }
  }
  EXPECT_EQ(seen.size(), cells);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ResultSink, WritesSeriesToCsvAndText) {
  const std::string csv_path = ::testing::TempDir() + "sink_series.csv";
  const std::string txt_path = ::testing::TempDir() + "sink_series.txt";
  {
    std::FILE* out = std::fopen(txt_path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    ResultSink sink(csv_path, out);
    EXPECT_TRUE(sink.csv_enabled());
    const std::vector<double> x{0.0, 1.0};
    const std::vector<double> y{0.25, 0.5};
    sink.series("figX avg-error", x, y);
    sink.value("summary", "steady avg-err", 0.125);
    std::fclose(out);
  }
  EXPECT_EQ(slurp(txt_path),
            "# figX avg-error\n"
            "0 0.250000\n"
            "1 0.500000\n"
            "\n");
  EXPECT_EQ(slurp(csv_path),
            "kind,block,x,y\n"
            "series,\"figX avg-error\",0,0.250000\n"
            "series,\"figX avg-error\",1,0.500000\n"
            "value,\"summary\",\"steady avg-err\",0.125\n");
  std::remove(csv_path.c_str());
  std::remove(txt_path.c_str());
}

TEST(ResultSink, SeriesWithSpreadEmitsThirdColumnAndSpreadRows) {
  const std::string csv_path = ::testing::TempDir() + "sink_spread.csv";
  const std::string txt_path = ::testing::TempDir() + "sink_spread.txt";
  {
    std::FILE* out = std::fopen(txt_path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    ResultSink sink(csv_path, out);
    const std::vector<double> x{0.0, 1.0};
    const std::vector<double> y{0.25, 0.5};
    const std::vector<double> sd{0.01, 0.02};
    sink.series("figX avg-error", x, y, sd);
    sink.value("summary", "steady avg-err", 0.125);
    sink.spread("summary", "steady avg-err", 0.004);
    std::fclose(out);
  }
  EXPECT_EQ(slurp(txt_path),
            "# figX avg-error\n"
            "0 0.250000 0.010000\n"
            "1 0.500000 0.020000\n"
            "\n");
  EXPECT_EQ(slurp(csv_path),
            "kind,block,x,y\n"
            "series,\"figX avg-error\",0,0.250000\n"
            "spread,\"figX avg-error\",0,0.010000\n"
            "series,\"figX avg-error\",1,0.500000\n"
            "spread,\"figX avg-error\",1,0.020000\n"
            "value,\"summary\",\"steady avg-err\",0.125\n"
            "spread,\"summary\",\"steady avg-err\",0.004\n");
  std::remove(csv_path.c_str());
  std::remove(txt_path.c_str());
}

TEST(Accum, WelfordMeanAndSampleStddev) {
  Accum acc;
  EXPECT_EQ(acc.n(), 0u);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
  acc.add(2.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);  // one sample: no spread yet
  acc.add(4.0);
  acc.add(4.0);
  acc.add(4.0);
  acc.add(5.0);
  acc.add(5.0);
  acc.add(7.0);
  acc.add(9.0);
  EXPECT_EQ(acc.n(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(ResultSink, QuotesEmbeddedQuotesAndCommas) {
  const std::string csv_path = ::testing::TempDir() + "sink_quote.csv";
  {
    ResultSink sink(csv_path, nullptr);
    sink.value("a \"b\", c", "k", 1.0);
  }
  EXPECT_EQ(slurp(csv_path),
            "kind,block,x,y\n"
            "value,\"a \"\"b\"\", c\",\"k\",1\n");
  std::remove(csv_path.c_str());
}

TEST(ResultSink, UnwritableCsvPathDegradesToTextOnly) {
  ResultSink sink("/nonexistent-dir/x.csv", nullptr);
  EXPECT_FALSE(sink.csv_enabled());
  sink.value("block", "key", 1.0);  // must not crash
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("n=%zu r=%.2f", std::size_t{5}, 0.5), "n=5 r=0.50");
  EXPECT_EQ(strf("%s", ""), "");
}

TEST(TrialPoolMapFold, FoldsInIndexOrderWhateverTheJobCount) {
  for (std::size_t jobs : {1u, 4u}) {
    TrialPool pool(jobs);
    std::vector<std::size_t> folded;
    pool.map_fold(
        64, [](std::size_t i) { return i * 3; },
        [&folded](std::size_t i, std::size_t&& v) {
          EXPECT_EQ(v, i * 3);
          folded.push_back(i);
        });
    ASSERT_EQ(folded.size(), 64u);
    for (std::size_t i = 0; i < folded.size(); ++i) EXPECT_EQ(folded[i], i);
  }
}

TEST(TrialPoolMapFold, BoundsReorderBufferUnderSkewedCompletion) {
  // Trial 0 is the slow one; the backpressure window must keep workers
  // from racing through the whole grid while it gates the fold cursor.
  TrialPool pool(3);
  std::atomic<std::size_t> started{0};
  std::atomic<std::size_t> max_started_before_fold{0};
  std::atomic<bool> first_folded{false};
  std::vector<std::size_t> folded;
  pool.map_fold(
      100,
      [&](std::size_t i) {
        const std::size_t s = ++started;
        if (!first_folded.load()) {
          std::size_t seen = max_started_before_fold.load();
          while (s > seen &&
                 !max_started_before_fold.compare_exchange_weak(seen, s)) {
          }
        }
        if (i == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
        }
        return i;
      },
      [&](std::size_t i, std::size_t&& v) {
        EXPECT_EQ(v, i);
        if (i == 0) first_folded = true;
        folded.push_back(i);
      });
  ASSERT_EQ(folded.size(), 100u);
  for (std::size_t i = 0; i < folded.size(); ++i) EXPECT_EQ(folded[i], i);
  // Window is 2*jobs = 6: while trial 0 blocked the cursor at 0, no
  // trial with index >= 6 may have started.
  EXPECT_LE(max_started_before_fold.load(), 6u);
}

TEST(TrialPoolMapFold, ThrowingTrialReleasesWaitersAndRethrows) {
  TrialPool pool(2);
  EXPECT_THROW(
      pool.map_fold(
          50,
          [](std::size_t i) -> std::size_t {
            if (i == 0) throw std::runtime_error("trial 0 failed");
            return i;
          },
          [](std::size_t, std::size_t&&) {}),
      std::runtime_error);
}

TEST(SeriesAccum, TruncatesToShortestRunAndMatchesAccum) {
  SeriesAccum acc;
  acc.add(std::vector<double>{1.0, 2.0, 3.0});
  acc.add(std::vector<double>{5.0, 6.0});  // shorter run drops index 2
  EXPECT_EQ(acc.size(), 2u);
  EXPECT_EQ(acc.runs(), 2u);
  Accum ref;
  ref.add(1.0);
  ref.add(5.0);
  EXPECT_EQ(acc.mean(0), ref.mean());
  EXPECT_EQ(acc.stddev(0), ref.stddev());
  EXPECT_EQ(acc.means(), (std::vector<double>{ref.mean(), 4.0}));
}

// The streaming aggregation (SeriesFold over Welford accumulators) must
// emit the same bytes as the buffered path it replaced: materialise every
// run, average with plain sum/n, take the two-pass standard deviation.
// The reference implementation lives only here now — this test is the
// byte-equality assertion that allowed deleting it from bench_common.
bench::AggregatedSeries buffered_reference(
    const std::vector<bench::EstimationSeries>& runs) {
  bench::AggregatedSeries agg;
  std::size_t len = runs[0].t.size();
  for (const auto& r : runs) len = std::min(len, r.t.size());
  const auto n = static_cast<double>(runs.size());
  for (std::size_t i = 0; i < len; ++i) {
    double a = 0;
    double m = 0;
    double tr = 0;
    for (const auto& r : runs) {
      a += r.avg_err[i];
      m += r.max_err[i];
      tr += r.truth[i];
    }
    const double a_mean = a / n;
    const double m_mean = m / n;
    double a_var = 0;
    double m_var = 0;
    for (const auto& r : runs) {
      a_var += (r.avg_err[i] - a_mean) * (r.avg_err[i] - a_mean);
      m_var += (r.max_err[i] - m_mean) * (r.max_err[i] - m_mean);
    }
    const double denom = runs.size() > 1 ? n - 1 : 1;
    agg.t.push_back(runs[0].t[i]);
    agg.avg_err.push_back(a_mean);
    agg.avg_err_sd.push_back(std::sqrt(a_var / denom));
    agg.max_err.push_back(m_mean);
    agg.max_err_sd.push_back(std::sqrt(m_var / denom));
    agg.truth.push_back(tr / n);
  }
  return agg;
}

std::string printed_bytes(const bench::AggregatedSeries& agg) {
  std::string out;
  for (std::size_t i = 0; i < agg.t.size(); ++i) {
    out += strf("%.0f %.6f %.6f | %.0f %.6f %.6f\n", agg.t[i], agg.avg_err[i],
                agg.avg_err_sd[i], agg.t[i], agg.max_err[i],
                agg.max_err_sd[i]);
  }
  return out;
}

TEST(StreamingAggregation, MatchesBufferedPathBytes) {
  bench::BenchArgs args;
  args.runs = 4;
  args.seed = 13;
  const auto spec = bench::paper_spec(48, 20)
                        .protocol(bench::croupier_proto(10, 25))
                        .ratio(0.25)
                        .build();
  TrialPool pool(2);

  // Buffered reference: every run materialised, then aggregated.
  std::vector<bench::EstimationSeries> runs;
  for (std::size_t r = 0; r < args.runs; ++r) {
    runs.push_back(bench::run_spec_series(spec, trial_seed(args.seed, 0, r)));
  }
  const auto buffered = buffered_reference(runs);

  // Streaming path: the run_series_grid benches actually use.
  const auto streamed = bench::run_series_grid(
      pool, args, 1,
      [&](std::size_t, std::uint64_t seed) {
        return bench::run_spec_series(spec, seed);
      });
  ASSERT_EQ(streamed.size(), 1u);
  ASSERT_FALSE(streamed[0].t.empty());
  EXPECT_EQ(printed_bytes(buffered), printed_bytes(streamed[0]));
}

// The cornerstone guarantee: a fig1-style experiment fanned out over 4
// workers aggregates to *byte-identical* series as the same experiment on
// 1 worker. Uses the real bench plumbing (run_series_grid + specs +
// ResultSink) on a miniature world so it stays fast.
TEST(TrialGridDeterminism, FourJobsMatchSerialByteForByte) {
  bench::BenchArgs args;
  args.runs = 3;
  args.seed = 7;
  const std::pair<std::size_t, std::size_t> windows[] = {{10, 25}, {25, 50}};

  const auto run_experiment = [&](std::size_t jobs) {
    TrialPool pool(jobs);
    return bench::run_series_grid(
        pool, args, 2, [&](std::size_t p, std::uint64_t seed) {
          return bench::run_spec_series(
              bench::paper_spec(32, 15)
                  .protocol(bench::croupier_proto(windows[p].first,
                                                  windows[p].second))
                  .ratio(0.25)
                  .build(),
              seed);
        });
  };

  const auto serial = run_experiment(1);
  const auto parallel = run_experiment(4);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t p = 0; p < serial.size(); ++p) {
    // Bitwise equality on the aggregated doubles — not near-equality:
    // identical trials summed in a fixed order must give identical bits.
    EXPECT_EQ(serial[p].t, parallel[p].t);
    EXPECT_EQ(serial[p].avg_err, parallel[p].avg_err);
    EXPECT_EQ(serial[p].avg_err_sd, parallel[p].avg_err_sd);
    EXPECT_EQ(serial[p].max_err, parallel[p].max_err);
    EXPECT_EQ(serial[p].max_err_sd, parallel[p].max_err_sd);
    EXPECT_EQ(serial[p].truth, parallel[p].truth);
    EXPECT_FALSE(serial[p].t.empty());
  }

  // And the emitted artifacts match byte for byte, spread column included.
  const auto emit = [&](const std::vector<bench::AggregatedSeries>& aggs,
                        const std::string& csv_path) {
    ResultSink sink(csv_path, nullptr);
    for (std::size_t p = 0; p < aggs.size(); ++p) {
      sink.series(strf("fig1a avg-error w=%zu", p), aggs[p].t,
                  aggs[p].avg_err, aggs[p].avg_err_sd);
    }
  };
  const std::string csv1 = ::testing::TempDir() + "det_jobs1.csv";
  const std::string csv4 = ::testing::TempDir() + "det_jobs4.csv";
  emit(serial, csv1);
  emit(parallel, csv4);
  const std::string contents1 = slurp(csv1);
  EXPECT_EQ(contents1, slurp(csv4));
  EXPECT_NE(contents1.find("series,"), std::string::npos);
  EXPECT_NE(contents1.find("spread,"), std::string::npos);
  std::remove(csv1.c_str());
  std::remove(csv4.c_str());
}

}  // namespace
}  // namespace croupier::exp
