// Robustness of every message decoder against truncated or garbage
// buffers: decoding must never crash or read out of bounds, and the
// reader must flag the error. (A deployed UDP service decodes hostile
// bytes; the simulator skips decoding on the hot path, but the decoders
// are part of the public wire contract and fuzz targets.)
#include <gtest/gtest.h>

#include <vector>

#include "baselines/arrg.hpp"
#include "baselines/cyclon.hpp"
#include "baselines/gozar.hpp"
#include "baselines/nylon.hpp"
#include "core/croupier.hpp"
#include "natid/natid.hpp"
#include "sim/rng.hpp"

namespace croupier {
namespace {

// Encodes a representative instance of each message type.
std::vector<std::vector<std::byte>> representative_messages() {
  std::vector<std::vector<std::byte>> out;
  auto add = [&out](const net::Message& m) {
    wire::Writer w;
    m.encode(w);
    out.push_back(std::move(w).take());
  };

  core::CroupierShuffleReq creq;
  creq.sender = pss::NodeDescriptor{1, net::NatType::Private, 0};
  creq.pub = {{2, net::NatType::Public, 1}, {3, net::NatType::Public, 9}};
  creq.pri = {{4, net::NatType::Private, 2}};
  creq.estimates = {{5, 10, 40, 1}, {6, 1, 3, 0}};
  add(creq);
  core::CroupierShuffleRes cres;
  cres.pub = creq.pub;
  cres.estimates = creq.estimates;
  add(cres);

  baselines::CyclonShuffleReq cyreq;
  cyreq.sender = pss::NodeDescriptor{1, net::NatType::Public, 0};
  cyreq.entries = creq.pub;
  add(cyreq);
  baselines::CyclonShuffleRes cyres;
  cyres.entries = creq.pub;
  add(cyres);

  baselines::GozarShuffleReq greq;
  greq.sender = baselines::GozarDescriptor{1, net::NatType::Private, 0, {7, 8}};
  greq.nonce = 3;
  greq.entries = {baselines::GozarDescriptor{2, net::NatType::Public, 1, {}}};
  add(greq);
  baselines::GozarRelayedReq grel;
  grel.final_target = 9;
  grel.inner = greq;
  add(grel);

  baselines::NylonShuffleReq nreq;
  nreq.sender = baselines::NylonDescriptor{1, net::NatType::Public, 0, 1};
  nreq.entries = {baselines::NylonDescriptor{2, net::NatType::Private, 3, 0}};
  add(nreq);
  baselines::NylonPunchReq npunch;
  npunch.initiator = 1;
  npunch.target = 2;
  npunch.hops = 5;
  add(npunch);

  baselines::ArrgShuffleReq areq;
  areq.sender = pss::NodeDescriptor{1, net::NatType::Public, 0};
  areq.entries = creq.pub;
  add(areq);

  natid::MatchingIpTest mt;
  mt.probed = {1, 2, 3};
  add(mt);
  natid::ForwardTest ft;
  ft.client = 7;
  ft.observed_ip = net::IpAddr{0x52000007};
  add(ft);
  natid::ForwardResp fr;
  fr.observed_ip = net::IpAddr{0x0a000001};
  add(fr);

  return out;
}

// Decodes buffer `data` as message kind `kind` (mirrors the encoder list
// above); returns the reader so the test can inspect error state.
void decode_kind(std::size_t kind, std::span<const std::byte> data,
                 bool expect_ok) {
  wire::Reader r(data);
  switch (kind) {
    case 0: (void)core::CroupierShuffleReq::decode(r); break;
    case 1: (void)core::CroupierShuffleRes::decode(r); break;
    case 2: (void)baselines::CyclonShuffleReq::decode(r); break;
    case 3: (void)baselines::CyclonShuffleRes::decode(r); break;
    case 4: (void)baselines::GozarShuffleReq::decode(r); break;
    case 5: (void)baselines::GozarRelayedReq::decode(r); break;
    case 6: (void)baselines::NylonShuffleReq::decode(r); break;
    case 7: (void)baselines::NylonPunchReq::decode(r); break;
    case 8: (void)baselines::ArrgShuffleReq::decode(r); break;
    case 9: (void)natid::MatchingIpTest::decode(r); break;
    case 10: (void)natid::ForwardTest::decode(r); break;
    case 11: (void)natid::ForwardResp::decode(r); break;
    default: FAIL() << "unknown kind";
  }
  if (expect_ok) {
    EXPECT_TRUE(r.ok()) << "kind " << kind;
  }
}

TEST(WireRobustness, FullBuffersDecodeCleanly) {
  const auto msgs = representative_messages();
  for (std::size_t kind = 0; kind < msgs.size(); ++kind) {
    decode_kind(kind, msgs[kind], /*expect_ok=*/true);
  }
}

TEST(WireRobustness, EveryTruncationIsSafe) {
  const auto msgs = representative_messages();
  for (std::size_t kind = 0; kind < msgs.size(); ++kind) {
    const auto& full = msgs[kind];
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      // Must not crash; error state is acceptable (and expected for cuts
      // that bite into required fields).
      decode_kind(kind, std::span<const std::byte>(full.data(), cut),
                  /*expect_ok=*/false);
    }
  }
}

TEST(WireRobustness, RandomGarbageIsSafe) {
  sim::RngStream rng(1234);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::byte> garbage(rng.uniform(64));
    for (auto& b : garbage) {
      b = static_cast<std::byte>(rng.uniform(256));
    }
    for (std::size_t kind = 0; kind < 12; ++kind) {
      decode_kind(kind, garbage, /*expect_ok=*/false);
    }
  }
}

TEST(WireRobustness, LengthPrefixLyingLargeIsSafe) {
  // A descriptor list claiming 255 entries with only one present: the
  // decoder must stop at the buffer end with the error latched.
  wire::Writer w;
  w.u8(0xff);  // claimed count
  pss::encode(w, pss::NodeDescriptor{1, net::NatType::Public, 0});
  wire::Reader r(w.data());
  const auto decoded = pss::decode_descriptors(r);
  EXPECT_LE(decoded.size(), 2u);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace croupier
