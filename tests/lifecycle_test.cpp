// Lifecycle stress: nodes dying at awkward protocol moments must never
// crash the simulation or corrupt survivors' state.
#include <gtest/gtest.h>

#include "runtime/scenario.hpp"
#include "test_util.hpp"

namespace croupier::run {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

TEST(Lifecycle, KillDuringNatIdentificationIsSafe) {
  auto cfg = fast_world_config(1);
  cfg.use_natid_protocol = true;
  cfg.natid_timeout = sim::sec(3);
  World world(cfg, make_croupier_factory({}));
  for (int i = 0; i < 3; ++i) world.spawn_seeded(net::NatConfig::open());
  world.simulator().run_until(sim::sec(1));

  // Spawn a private node and kill it while its NAT-ID run (and its armed
  // timeout) is still pending; the dangling timeout must fire into void.
  const auto victim = world.spawn(net::NatConfig::natted());
  world.simulator().run_until(world.simulator().now() + sim::msec(10));
  world.kill(victim);
  world.simulator().run_until(world.simulator().now() + sim::sec(10));
  EXPECT_FALSE(world.alive(victim));
  EXPECT_EQ(world.alive_count(), 3u);
}

TEST(Lifecycle, KillDuringNatIdNeverStartsGossip) {
  auto cfg = fast_world_config(2);
  cfg.use_natid_protocol = true;
  World world(cfg, make_croupier_factory({}));
  for (int i = 0; i < 3; ++i) world.spawn_seeded(net::NatConfig::open());
  world.simulator().run_until(sim::sec(1));

  const auto victim = world.spawn(net::NatConfig::natted());
  EXPECT_EQ(world.sampler(victim), nullptr);  // still identifying
  world.kill(victim);
  world.simulator().run_until(sim::sec(20));
  // No round events for the dead node ever fired (would crash on lookup
  // if the runtime kept stale pointers).
  EXPECT_EQ(world.rounds_of(victim), 0u);
}

TEST(Lifecycle, MassChurnDuringJoinWaveIsSafe) {
  // Joins, churn and deaths all interleaving: the stress case for the
  // runtime's event/ownership discipline.
  World world(fast_world_config(3), make_croupier_factory({}));
  schedule_poisson_joins(world, 60, net::NatConfig::natted(), sim::msec(100));
  schedule_poisson_joins(world, 15, net::NatConfig::open(), sim::msec(400));
  ChurnProcess churn(world, 0.05, net::NatConfig::open(),
                     net::NatConfig::natted());
  churn.start(sim::sec(2));
  schedule_catastrophe(world, sim::sec(15), 0.5);
  world.simulator().run_until(sim::sec(60));
  EXPECT_GT(world.alive_count(), 10u);
  // Survivors keep gossiping and the overlay reconnects.
  const auto g = world.snapshot_overlay(/*usable_only=*/true);
  EXPECT_GE(g.largest_component_fraction(), 0.9);
}

TEST(Lifecycle, RepeatedCatastrophesWithRejoins) {
  World world(fast_world_config(4), make_croupier_factory({}));
  populate(world, 10, 40);
  for (int wave = 0; wave < 3; ++wave) {
    const auto t = sim::sec(10 + wave * 20);
    schedule_catastrophe(world, t, 0.4);
    // Refill with fresh nodes shortly after each failure.
    schedule_poisson_joins(world, 8, net::NatConfig::open(), sim::msec(200),
                           t + sim::sec(2));
    schedule_poisson_joins(world, 12, net::NatConfig::natted(),
                           sim::msec(200), t + sim::sec(2));
  }
  world.simulator().run_until(sim::sec(90));
  EXPECT_GT(world.alive_count(), 20u);
  EXPECT_GT(world.count(net::NatType::Public), 0u);
  for (double e : world.ratio_estimates()) {
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
  const auto g = world.snapshot_overlay();
  EXPECT_GE(g.largest_component_fraction(), 0.9);
}

// Regression (PR 5): stop() used to leave the already-scheduled tick
// live — it fired once more after stop, and a stop+restart stacked a
// second tick chain on top of the zombie one (double replacement rate).
TEST(Lifecycle, ChurnStopIsImmediateIdempotentAndRestartable) {
  // An empty world makes the event count the churn tick count: every
  // simulator event is a tick (quota is always zero, nothing gossips).
  World world(fast_world_config(6), make_croupier_factory({}));
  ChurnProcess churn(world, 0.5, net::NatConfig::open(),
                     net::NatConfig::natted());
  churn.start(sim::sec(1));
  world.simulator().run_until(sim::msec(5200));  // ticks at 1..5 s
  EXPECT_EQ(world.simulator().events_processed(), 5u);

  churn.stop();
  churn.stop();  // idempotent
  EXPECT_FALSE(churn.running());
  // Immediate: the tick already queued for t=6 s must not fire.
  world.simulator().run_until(sim::msec(5900));
  churn.start(sim::sec(6));  // restart before the zombie would have fired
  world.simulator().run_until(sim::sec(10) + sim::msec(200));
  // Exactly one chain: ticks at 6..10 s. With the zombie alive too, the
  // two chains would have doubled this.
  EXPECT_EQ(world.simulator().events_processed(), 10u);
  churn.stop();
  world.simulator().run_until(sim::sec(20));
  EXPECT_EQ(world.simulator().events_processed(), 10u);
  EXPECT_EQ(churn.replaced(), 0u);
}

TEST(Lifecycle, WholeWorldTeardownMidFlight) {
  // Destroying the world with thousands of in-flight events and pending
  // timeouts must be clean (ASan-visible if not).
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto cfg = fast_world_config(seed);
    cfg.use_natid_protocol = seed == 2;
    World world(cfg, make_croupier_factory({}));
    for (int i = 0; i < 3; ++i) world.spawn_seeded(net::NatConfig::open());
    populate(world, 5, 20);
    world.simulator().run_until(sim::msec(1500));  // mid-everything
    // world destructor runs here with a hot event queue
  }
  SUCCEED();
}

}  // namespace
}  // namespace croupier::run
