// The randomness audit estimators against their closed-form
// expectations: a uniform synthetic sampler passes every statistic at
// the documented thresholds (|chi2 z| < 3, ratios ~1), while hub-biased,
// frozen and class-biased samplers fail exactly the statistic built to
// catch them. Plus the recorder's determinism contract: two runs of the
// same seeded experiment produce bitwise-identical audit series.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "metrics/randomness.hpp"
#include "runtime/spec.hpp"
#include "sim/rng.hpp"

namespace croupier::metrics {
namespace {

TEST(ChiSquareUniform, EqualCountsScoreZero) {
  const std::vector<std::uint64_t> counts{5, 5, 5, 5};
  const auto fit = chi_square_uniform(counts);
  EXPECT_DOUBLE_EQ(fit.statistic, 0.0);
  EXPECT_DOUBLE_EQ(fit.dof, 3.0);
  EXPECT_DOUBLE_EQ(fit.z, -3.0 / std::sqrt(6.0));
}

TEST(ChiSquareUniform, MatchesHandComputedStatistic) {
  // counts {1,2,3}: expected 2 per cell, chi2 = (1/2 + 0 + 1/2) = 1.
  const std::vector<std::uint64_t> counts{1, 2, 3};
  const auto fit = chi_square_uniform(counts);
  EXPECT_DOUBLE_EQ(fit.statistic, 1.0);
  EXPECT_DOUBLE_EQ(fit.dof, 2.0);
  EXPECT_DOUBLE_EQ(fit.z, -0.5);
}

TEST(ChiSquareUniform, DegenerateInputsScoreZero) {
  EXPECT_DOUBLE_EQ(chi_square_uniform({}).statistic, 0.0);
  const std::vector<std::uint64_t> one{7};
  EXPECT_DOUBLE_EQ(chi_square_uniform(one).z, 0.0);
  const std::vector<std::uint64_t> zeros{0, 0, 0};
  EXPECT_DOUBLE_EQ(chi_square_uniform(zeros).z, 0.0);
}

// Synthetic overlay helpers: n nodes with ids 1..n, the first
// `publics` of them public, each holding `view` out-neighbours.
RandomnessAuditor::ClassMap make_classes(std::size_t n, std::size_t publics) {
  RandomnessAuditor::ClassMap classes;
  for (std::size_t i = 1; i <= n; ++i) {
    classes.emplace_back(static_cast<net::NodeId>(i),
                         i <= publics ? net::NatType::Public
                                      : net::NatType::Private);
  }
  return classes;
}

std::vector<net::NodeId> others(std::size_t n, net::NodeId self) {
  std::vector<net::NodeId> pool;
  for (std::size_t i = 1; i <= n; ++i) {
    if (static_cast<net::NodeId>(i) != self) {
      pool.push_back(static_cast<net::NodeId>(i));
    }
  }
  return pool;
}

constexpr std::size_t kNodes = 100;
constexpr std::size_t kPublics = 20;
constexpr std::size_t kView = 10;
constexpr std::size_t kTicks = 30;

TEST(RandomnessAuditor, UniformSamplerPassesEveryStatistic) {
  // A fresh uniform re-sample every tick is the null hypothesis all
  // three estimators are calibrated against.
  RandomnessAuditor auditor;
  sim::RngStream rng(1234);
  RandomnessPoint last;
  for (std::size_t tick = 0; tick < kTicks; ++tick) {
    RandomnessAuditor::Adjacency adj;
    for (std::size_t i = 1; i <= kNodes; ++i) {
      const auto self = static_cast<net::NodeId>(i);
      const auto pool = others(kNodes, self);
      adj.emplace_back(self,
                       rng.sample(std::span<const net::NodeId>(pool), kView));
    }
    last = auditor.observe(adj, make_classes(kNodes, kPublics), 0.2,
                           static_cast<double>(tick));
  }
  EXPECT_EQ(last.nodes, kNodes);
  EXPECT_EQ(last.edges_observed, kNodes * kView * kTicks);
  // The pass thresholds the recorder documentation promises.
  EXPECT_LT(std::abs(last.chi2_z), 3.0);
  EXPECT_NEAR(last.repeat_ratio, 1.0, 0.25);
  EXPECT_NEAR(last.bias_ratio, 1.0, 0.15);
}

TEST(RandomnessAuditor, HubBiasExplodesTheChiSquare) {
  // Every view contains node 1: its in-degree grows n per tick against
  // a uniform mean of `view`, which the chi-square z catches far above
  // the |z| < 3 pass band.
  RandomnessAuditor auditor;
  sim::RngStream rng(99);
  RandomnessPoint last;
  for (std::size_t tick = 0; tick < kTicks; ++tick) {
    RandomnessAuditor::Adjacency adj;
    for (std::size_t i = 1; i <= kNodes; ++i) {
      const auto self = static_cast<net::NodeId>(i);
      const auto pool = others(kNodes, self);
      auto view = rng.sample(std::span<const net::NodeId>(pool), kView - 1);
      if (self != 1) view.push_back(1);
      adj.emplace_back(self, std::move(view));
    }
    last = auditor.observe(adj, make_classes(kNodes, kPublics), 0.2,
                           static_cast<double>(tick));
  }
  EXPECT_GT(last.chi2_z, 10.0);
}

TEST(RandomnessAuditor, FrozenViewsHitTheClosedFormRepeatRatio) {
  // Views that never change: every current entry repeats, so the ratio
  // is exactly observed/expected = 1 / (view/(n-1)) = (n-1)/view.
  RandomnessAuditor auditor;
  sim::RngStream rng(7);
  RandomnessAuditor::Adjacency adj;
  for (std::size_t i = 1; i <= kNodes; ++i) {
    const auto self = static_cast<net::NodeId>(i);
    const auto pool = others(kNodes, self);
    adj.emplace_back(self,
                     rng.sample(std::span<const net::NodeId>(pool), kView));
  }
  (void)auditor.observe(adj, make_classes(kNodes, kPublics), 0.2, 0.0);
  const auto last =
      auditor.observe(adj, make_classes(kNodes, kPublics), 0.2, 1.0);
  EXPECT_DOUBLE_EQ(last.repeat_observed, 1.0);
  EXPECT_NEAR(last.repeat_ratio,
              static_cast<double>(kNodes - 1) / static_cast<double>(kView),
              1e-9);
}

TEST(RandomnessAuditor, PublicOnlyViewsHitTheClosedFormBiasRatio) {
  // Views drawn exclusively from the public fifth of a 20%-public
  // population: fraction 1.0 against omega 0.2 is a bias ratio of 5.
  RandomnessAuditor auditor;
  sim::RngStream rng(21);
  RandomnessAuditor::Adjacency adj;
  std::vector<net::NodeId> publics;
  for (std::size_t i = 1; i <= kPublics; ++i) {
    publics.push_back(static_cast<net::NodeId>(i));
  }
  for (std::size_t i = 1; i <= kNodes; ++i) {
    const auto self = static_cast<net::NodeId>(i);
    auto view = rng.sample(std::span<const net::NodeId>(publics), 5);
    std::erase(view, self);
    adj.emplace_back(self, std::move(view));
  }
  const auto last =
      auditor.observe(adj, make_classes(kNodes, kPublics), 0.2, 0.0);
  EXPECT_DOUBLE_EQ(last.public_fraction, 1.0);
  EXPECT_DOUBLE_EQ(last.bias_ratio, 5.0);
}

TEST(RandomnessAuditor, DepartedNodesArePrunedFromTheCumulativeCounts) {
  RandomnessAuditor auditor;
  const auto classes = make_classes(3, 3);
  // Tick 1: nodes 1 and 2 both point at 3; 3 points at 1.
  RandomnessAuditor::Adjacency tick1{{1, {3}}, {2, {3}}, {3, {1}}};
  (void)auditor.observe(tick1, classes, 1.0, 0.0);
  EXPECT_EQ(auditor.edges_observed(), 3u);
  // Tick 2: node 3 left the overlay — its accumulated in-degree (2)
  // must leave the cumulative tally with it: 3 + 2 new - 2 pruned.
  RandomnessAuditor::Adjacency tick2{{1, {2}}, {2, {1}}};
  (void)auditor.observe(tick2, classes, 1.0, 1.0);
  EXPECT_EQ(auditor.edges_observed(), 3u);

  auditor.reset();
  EXPECT_EQ(auditor.edges_observed(), 0u);
}

TEST(RandomnessAuditor, SelfLoopsAndDuplicatesAreDiscarded) {
  RandomnessAuditor auditor;
  const auto classes = make_classes(3, 1);
  RandomnessAuditor::Adjacency adj{{1, {1, 2, 2, 3}}, {2, {3}}, {3, {}}};
  const auto point = auditor.observe(adj, classes, 1.0 / 3.0, 0.0);
  // Node 1 contributes {2, 3} after dedup and self-drop.
  EXPECT_EQ(point.edges_observed, 3u);
}

}  // namespace
}  // namespace croupier::metrics

namespace croupier::run {
namespace {

TEST(RandomnessRecorder, TwinRunsAreBitwiseIdentical) {
  const auto spec = SpecBuilder()
                        .protocol("croupier:alpha=25,gamma=50")
                        .nodes(150)
                        .ratio(0.2)
                        .record_randomness(5.0)
                        .duration(40)
                        .build();
  const auto run = [&spec] {
    Experiment experiment(spec, 77);
    experiment.run();
    return experiment.randomness()->series();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_seconds, b[i].t_seconds);
    EXPECT_EQ(a[i].chi2, b[i].chi2);
    EXPECT_EQ(a[i].chi2_z, b[i].chi2_z);
    EXPECT_EQ(a[i].repeat_observed, b[i].repeat_observed);
    EXPECT_EQ(a[i].repeat_expected, b[i].repeat_expected);
    EXPECT_EQ(a[i].repeat_ratio, b[i].repeat_ratio);
    EXPECT_EQ(a[i].public_fraction, b[i].public_fraction);
    EXPECT_EQ(a[i].bias_ratio, b[i].bias_ratio);
    EXPECT_EQ(a[i].nodes, b[i].nodes);
    EXPECT_EQ(a[i].edges_observed, b[i].edges_observed);
  }
}

}  // namespace
}  // namespace croupier::run
