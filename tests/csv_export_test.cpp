// CSV export of the metric recorders.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "runtime/recorder.hpp"
#include "test_util.hpp"

namespace croupier::run {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CsvExport, EstimationSeries) {
  World world(fast_world_config(1), make_croupier_factory({}));
  populate(world, 5, 15);
  EstimationRecorder rec(world, {sim::sec(1), 2});
  rec.start(sim::sec(1));
  world.simulator().run_until(sim::sec(10));

  const std::string path = ::testing::TempDir() + "est_series.csv";
  ASSERT_TRUE(rec.write_csv(path));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("t_seconds,avg_error,max_error,truth,nodes"),
            std::string::npos);
  // Header + one row per recorded point.
  const auto rows = std::count(content.begin(), content.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), rec.series().size() + 1);
  std::remove(path.c_str());
}

TEST(CsvExport, GraphSeries) {
  World world(fast_world_config(2), make_croupier_factory({}));
  populate(world, 10, 0);
  GraphStatsRecorder rec(world, {sim::sec(2), 0});
  rec.start(sim::sec(2));
  world.simulator().run_until(sim::sec(9));

  const std::string path = ::testing::TempDir() + "graph_series.csv";
  ASSERT_TRUE(rec.write_csv(path));
  const std::string content = slurp(path);
  EXPECT_NE(content.find("avg_path_length"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(content.begin(), content.end(), '\n')),
            rec.series().size() + 1);
  std::remove(path.c_str());
}

TEST(CsvExport, UnwritablePathReturnsFalse) {
  World world(fast_world_config(3), make_croupier_factory({}));
  EstimationRecorder rec(world, {});
  EXPECT_FALSE(rec.write_csv("/nonexistent-dir/x/y.csv"));
}

}  // namespace
}  // namespace croupier::run
