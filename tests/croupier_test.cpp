// Croupier protocol tests: Algorithm 2 mechanics on small deterministic
// networks, plus the key structural invariant — private nodes never
// receive shuffle requests.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/croupier.hpp"
#include "test_util.hpp"

namespace croupier::core {
namespace {

using testing::fast_world_config;
using testing::populate;

CroupierConfig small_cfg() {
  CroupierConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  return cfg;
}

run::World make_world(std::uint64_t seed = 1,
                      CroupierConfig cfg = small_cfg()) {
  return run::World(fast_world_config(seed), run::make_croupier_factory(cfg));
}

TEST(Croupier, InitFillsPublicViewFromBootstrap) {
  auto world = make_world();
  populate(world, 6, 0);
  world.simulator().run_until(sim::msec(1));
  // Nodes spawned after others have bootstrap entries.
  const auto id = world.spawn(net::NatConfig::natted());
  const auto* node = dynamic_cast<const Croupier*>(world.sampler(id));
  ASSERT_NE(node, nullptr);
  EXPECT_GT(node->public_view().size(), 0u);
  EXPECT_EQ(node->private_view().size(), 0u);
  for (const auto& d : node->public_view().entries()) {
    EXPECT_EQ(d.nat_type, net::NatType::Public);
  }
}

TEST(Croupier, PrivateNodesNeverReceiveShuffleRequests) {
  auto world = make_world(7);
  populate(world, 4, 16);
  world.simulator().run_until(sim::sec(30));
  // If a private node had been targeted, the request would have been
  // NAT-filtered: with truthful classification the drop counter stays 0
  // except for responses racing node death (none here: no churn).
  EXPECT_EQ(world.network().drops().nat_filtered, 0u);
}

TEST(Croupier, ViewsSeparateClasses) {
  auto world = make_world(11);
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(20));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const Croupier&>(p);
    for (const auto& d : c.public_view().entries()) {
      EXPECT_EQ(d.nat_type, net::NatType::Public);
      EXPECT_EQ(world.type_of(d.id), net::NatType::Public);
    }
    for (const auto& d : c.private_view().entries()) {
      EXPECT_EQ(d.nat_type, net::NatType::Private);
      EXPECT_EQ(world.type_of(d.id), net::NatType::Private);
    }
  });
}

TEST(Croupier, ViewsNeverContainSelf) {
  auto world = make_world(13);
  populate(world, 5, 10);
  world.simulator().run_until(sim::sec(20));
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const Croupier&>(p);
    EXPECT_FALSE(c.public_view().contains(id));
    EXPECT_FALSE(c.private_view().contains(id));
  });
}

TEST(Croupier, PrivateViewsFillThroughCroupiers) {
  // Private nodes start with empty private views; croupier shuffling must
  // populate them (this is the mechanism replacing relaying).
  auto world = make_world(17);
  populate(world, 4, 16);
  world.simulator().run_until(sim::sec(30));
  std::size_t private_nodes = 0;
  std::size_t with_private_neighbors = 0;
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    if (world.type_of(id) != net::NatType::Private) return;
    ++private_nodes;
    const auto& c = dynamic_cast<const Croupier&>(p);
    if (c.private_view().size() > 0) ++with_private_neighbors;
  });
  ASSERT_GT(private_nodes, 0u);
  EXPECT_GE(with_private_neighbors, private_nodes * 9 / 10);
}

TEST(Croupier, EstimateConvergesOnSmallNetwork) {
  auto world = make_world(19);
  populate(world, 10, 40);  // ω = 0.2
  world.simulator().run_until(sim::sec(60));
  const auto estimates = world.ratio_estimates();
  ASSERT_GT(estimates.size(), 40u);
  for (double e : estimates) {
    EXPECT_NEAR(e, 0.2, 0.1);
  }
}

TEST(Croupier, SampleReturnsLiveishNodes) {
  auto world = make_world(23);
  populate(world, 5, 20);
  world.simulator().run_until(sim::sec(20));
  auto* s = world.sampler(world.alive_ids().front());
  ASSERT_NE(s, nullptr);
  for (int i = 0; i < 50; ++i) {
    const auto d = s->sample();
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(world.alive(d->id));
  }
}

TEST(Croupier, SampleMixesBothClasses) {
  auto world = make_world(29);
  populate(world, 10, 40);
  world.simulator().run_until(sim::sec(40));
  auto* s = world.sampler(world.alive_ids().front());
  ASSERT_NE(s, nullptr);
  int pub = 0;
  int priv = 0;
  for (int i = 0; i < 400; ++i) {
    const auto d = s->sample();
    ASSERT_TRUE(d.has_value());
    (d->nat_type == net::NatType::Public ? pub : priv) += 1;
  }
  // ω = 0.2: expect both classes sampled roughly in proportion.
  EXPECT_NEAR(static_cast<double>(pub) / 400.0, 0.2, 0.12);
  EXPECT_GT(priv, 0);
}

TEST(Croupier, OutNeighborsUnionOfViews) {
  auto world = make_world(31);
  populate(world, 5, 10);
  world.simulator().run_until(sim::sec(10));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const Croupier&>(p);
    EXPECT_EQ(p.out_neighbors().size(),
              c.public_view().size() + c.private_view().size());
  });
}

TEST(Croupier, UsableNeighborsFilterByLiveness) {
  auto world = make_world(37);
  populate(world, 3, 12);
  world.simulator().run_until(sim::sec(20));

  const auto alive_none = [](net::NodeId) { return false; };
  const auto all_alive = [&world](net::NodeId id) { return world.alive(id); };
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    EXPECT_TRUE(p.usable_neighbors(alive_none).empty());
    // Croupier edges carry no traversal state: with every target alive,
    // every view edge is usable.
    EXPECT_EQ(p.usable_neighbors(all_alive).size(),
              p.out_neighbors().size());
  });
}

TEST(Croupier, RatioProportionalSizingBoundsTotalDegree) {
  CroupierConfig cfg;
  cfg.base.view_size = 10;
  cfg.base.shuffle_size = 5;
  cfg.sizing = ViewSizing::RatioProportional;
  auto world = make_world(41, cfg);
  populate(world, 10, 40);
  world.simulator().run_until(sim::sec(40));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& c = dynamic_cast<const Croupier&>(p);
    EXPECT_LE(c.public_view().size() + c.private_view().size(), 10u);
    EXPECT_GE(c.public_view().capacity(), 2u);
    EXPECT_GE(c.private_view().capacity(), 2u);
  });
}

TEST(Croupier, SurvivesIsolationViaRebootstrap) {
  auto world = make_world(43);
  populate(world, 2, 2);
  world.simulator().run_until(sim::sec(5));
  // Kill one public; survivors keep gossiping through the other.
  const auto publics = [&] {
    std::vector<net::NodeId> out;
    for (net::NodeId id : world.alive_ids()) {
      if (world.type_of(id) == net::NatType::Public) out.push_back(id);
    }
    return out;
  }();
  ASSERT_EQ(publics.size(), 2u);
  world.kill(publics.front());
  world.simulator().run_until(sim::sec(40));
  // The overlay stays one usable cluster around the surviving croupier.
  // (In this degenerate one-public world a private's public view can be
  // momentarily empty mid-exchange — connectivity, not view fullness, is
  // the invariant that matters.)
  const auto g = world.snapshot_overlay(/*usable_only=*/true);
  EXPECT_EQ(g.largest_component(), 3u);
}

TEST(Croupier, MessagesRoundTripOnWire) {
  CroupierShuffleReq req;
  req.sender = pss::NodeDescriptor{1, net::NatType::Private, 0};
  req.pub = {{2, net::NatType::Public, 1}};
  req.pri = {{3, net::NatType::Private, 4}};
  req.estimates = {{5, 10, 40, 2}};
  wire::Writer w;
  req.encode(w);
  wire::Reader r(w.data());
  const auto back = CroupierShuffleReq::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.sender, req.sender);
  EXPECT_EQ(back.pub, req.pub);
  EXPECT_EQ(back.pri, req.pri);
  EXPECT_EQ(back.estimates, req.estimates);

  CroupierShuffleRes res;
  res.pub = req.pub;
  res.pri = req.pri;
  res.estimates = req.estimates;
  wire::Writer w2;
  res.encode(w2);
  wire::Reader r2(w2.data());
  const auto back2 = CroupierShuffleRes::decode(r2);
  EXPECT_TRUE(r2.exhausted());
  EXPECT_EQ(back2.pub, res.pub);
  EXPECT_EQ(back2.estimates, res.estimates);
}

// Property sweep: across seeds, after a settle period every node's
// estimate is within a loose band of the true ratio and views are full.
class CroupierConvergenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CroupierConvergenceSweep, EstimatesAndViewsHealthy) {
  auto world = make_world(GetParam());
  populate(world, 8, 32);
  world.simulator().run_until(sim::sec(60));
  for (double e : world.ratio_estimates()) {
    EXPECT_NEAR(e, 0.2, 0.12);
  }
  // With shuffle 3 the public-view half of the budget is 2 descriptors
  // per exchange, so the healthy floor is 2 — but tail removal leaves a
  // transient gap until the next response lands, so a single instant can
  // legitimately show 1. Sample one round apart and judge each node by
  // its best of the two snapshots.
  std::map<net::NodeId, std::size_t> peak_size;
  for (int snapshot = 0; snapshot < 2; ++snapshot) {
    world.simulator().run_until(sim::sec(60 + snapshot));
    world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
      const auto& c = dynamic_cast<const Croupier&>(p);
      peak_size[id] = std::max(peak_size[id], c.public_view().size());
    });
  }
  for (const auto& [id, size] : peak_size) {
    EXPECT_GE(size, 2u) << "node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CroupierConvergenceSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace croupier::core
