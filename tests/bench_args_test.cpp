// BenchArgs::parse: the flag parsing shared by every bench binary.
// Covers defaults, each flag, combinations, and malformed numeric input
// (which must warn and keep the default rather than abort the bench).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace croupier::bench {
namespace {

BenchArgs parse(std::vector<std::string> argv) {
  argv.insert(argv.begin(), "bench");
  std::vector<char*> raw;
  raw.reserve(argv.size());
  for (auto& a : argv) raw.push_back(a.data());
  return BenchArgs::parse(static_cast<int>(raw.size()), raw.data());
}

TEST(BenchArgs, Defaults) {
  const auto args = parse({});
  EXPECT_EQ(args.runs, 2u);
  EXPECT_EQ(args.seed, 1u);
  EXPECT_EQ(args.jobs, 0u);  // 0 = hardware concurrency
  EXPECT_TRUE(args.csv.empty());
  EXPECT_FALSE(args.fast);
}

TEST(BenchArgs, ParsesRuns) {
  EXPECT_EQ(parse({"--runs=5"}).runs, 5u);
}

TEST(BenchArgs, ZeroRunsClampsToOne) {
  // Regression: --runs=0 used to reach the benches unchanged and feed
  // empty run sets into the aggregates (division by zero).
  EXPECT_EQ(parse({"--runs=0"}).runs, 1u);
}

TEST(BenchArgs, ParsesJobs) {
  EXPECT_EQ(parse({"--jobs=4"}).jobs, 4u);
  EXPECT_EQ(parse({"--jobs=1"}).jobs, 1u);
}

TEST(BenchArgs, ParsesCsvPath) {
  if (built_with_sanitizer()) {
    GTEST_SKIP() << "--csv is refused under sanitizer builds (by design)";
  }
  EXPECT_EQ(parse({"--csv=/tmp/out.csv"}).csv, "/tmp/out.csv");
  EXPECT_TRUE(parse({"--csv="}).csv.empty());
}

TEST(BenchArgs, CsvRefusedUnderSanitizer) {
  // Sanitized timings must never become a baseline: --csv is a hard
  // error (exit 2), not a warning, in an instrumented binary.
  if (!built_with_sanitizer()) {
    GTEST_SKIP() << "needs an -fsanitize build to exercise the refusal";
  }
  EXPECT_EXIT(parse({"--csv=/tmp/out.csv"}), testing::ExitedWithCode(2),
              "refusing --csv");
}

TEST(BenchArgs, BuildInfoReportsSanitizerAndExits) {
  // --build-info prints provenance (stdout, for run_benches.sh) and
  // exits 0 without launching the bench.
  EXPECT_EXIT(parse({"--build-info"}), testing::ExitedWithCode(0), "");
}

TEST(BenchArgs, MalformedJobsKeepsDefault) {
  EXPECT_EQ(parse({"--jobs=many"}).jobs, 0u);
}

TEST(BenchArgs, ParsesSeed) {
  EXPECT_EQ(parse({"--seed=42"}).seed, 42u);
  EXPECT_EQ(parse({"--seed=18446744073709551615"}).seed,
            18446744073709551615ull);
}

TEST(BenchArgs, ParsesFast) {
  EXPECT_TRUE(parse({"--fast"}).fast);
}

TEST(BenchArgs, ParsesCombination) {
  const auto args = parse({"--runs=7", "--fast", "--seed=9"});
  EXPECT_EQ(args.runs, 7u);
  EXPECT_EQ(args.seed, 9u);
  EXPECT_TRUE(args.fast);
}

TEST(BenchArgs, LastFlagWins) {
  const auto args = parse({"--runs=3", "--runs=8"});
  EXPECT_EQ(args.runs, 8u);
}

TEST(BenchArgs, MalformedNumberKeepsDefault) {
  EXPECT_EQ(parse({"--runs=abc"}).runs, 2u);
  EXPECT_EQ(parse({"--seed=abc"}).seed, 1u);
}

TEST(BenchArgs, TrailingGarbageKeepsDefault) {
  EXPECT_EQ(parse({"--runs=5x"}).runs, 2u);
  EXPECT_EQ(parse({"--seed=1 2"}).seed, 1u);
}

TEST(BenchArgs, EmptyNumberKeepsDefault) {
  EXPECT_EQ(parse({"--runs="}).runs, 2u);
  EXPECT_EQ(parse({"--seed="}).seed, 1u);
}

TEST(BenchArgs, OverflowKeepsDefault) {
  // One past UINT64_MAX.
  EXPECT_EQ(parse({"--seed=18446744073709551616"}).seed, 1u);
}

TEST(BenchArgs, NegativeNumberKeepsDefault) {
  // strtoull would happily wrap "-1"; parse must reject it instead.
  EXPECT_EQ(parse({"--runs=-1"}).runs, 2u);
}

TEST(BenchArgs, HelpPrintsUsageAndExits) {
  // The regex matches stderr (usage goes to stdout); exit code 0 is the
  // contract under test.
  EXPECT_EXIT(parse({"--help"}), ::testing::ExitedWithCode(0), "");
}

TEST(BenchArgs, UnknownFlagsAreIgnoredButWarn) {
  // Regression: a typo like --run=5 used to be swallowed silently and the
  // bench ran with the default; it must now be called out on stderr.
  ::testing::internal::CaptureStderr();
  const auto args = parse({"--bogus", "stray", "--fast"});
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(args.fast);
  EXPECT_EQ(args.runs, 2u);
  EXPECT_NE(err.find("unknown flag --bogus"), std::string::npos) << err;
  EXPECT_NE(err.find("unknown flag stray"), std::string::npos) << err;
}

TEST(BenchArgs, TypoedFlagWarns) {
  ::testing::internal::CaptureStderr();
  const auto args = parse({"--run=5"});  // meant --runs=5
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(args.runs, 2u);
  EXPECT_NE(err.find("unknown flag --run=5"), std::string::npos) << err;
}

TEST(BenchArgs, KnownFlagsDoNotWarn) {
  std::vector<std::string> argv{"--runs=3", "--seed=2", "--jobs=1", "--fast"};
  // --csv exits a sanitized binary by design (see CsvRefusedUnderSanitizer),
  // so only exercise it in ordinary builds.
  if (!built_with_sanitizer()) argv.emplace_back("--csv=/tmp/x");
  ::testing::internal::CaptureStderr();
  (void)parse(std::move(argv));
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(BenchArgs, ExtraFlagHookConsumesBeforeWarning) {
  std::vector<std::string> seen;
  ::testing::internal::CaptureStderr();
  std::vector<std::string> argv{"bench", "--protocol=croupier", "--fast"};
  std::vector<char*> raw;
  for (auto& a : argv) raw.push_back(a.data());
  const auto args = BenchArgs::parse(
      static_cast<int>(raw.size()), raw.data(),
      [&seen](const std::string& a) {
        if (a.rfind("--protocol=", 0) == 0) {
          seen.push_back(a);
          return true;
        }
        return false;
      });
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(args.fast);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "--protocol=croupier");
  EXPECT_TRUE(err.empty()) << err;
}

}  // namespace
}  // namespace croupier::bench
