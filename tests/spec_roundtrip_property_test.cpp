// Randomized property test for the spec text format: for hundreds of
// seeded random specs drawn across every scenario family,
// parse(to_string(s)) must reproduce s exactly (field-for-field, via the
// defaulted operator==), to_string must be a fixed point, and validate()
// must agree with the generator's constraints. The spec string is the
// experiment's durable identity (CSV headers, BENCH provenance, lab
// --spec=...), so any asymmetry here silently forks provenance from
// reality.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/spec.hpp"
#include "sim/rng.hpp"

namespace croupier {
namespace {

using run::ExperimentSpec;

/// Uniform double in [lo, hi). fmt_double escalates precision until the
/// text parses back bit-exact, so arbitrary doubles are fair game — the
/// generator does not need to stay on a printable grid.
double uniform(sim::RngStream& rng, double lo, double hi) {
  return lo + rng.next_double() * (hi - lo);
}

ExperimentSpec random_spec(sim::RngStream& rng) {
  ExperimentSpec s;

  static const std::vector<std::string> kProtocols = {
      "croupier", "croupier:alpha=25,gamma=50", "cyclon",
      "gozar",    "nylon",                      "arrg"};
  s.protocol = kProtocols[rng.index(kProtocols.size())];
  s.nodes = 1 + rng.index(5000);
  s.ratio = rng.chance(0.1) ? (rng.chance(0.5) ? 0.0 : 1.0)
                            : uniform(rng, 0.0, 1.0);

  switch (rng.index(3)) {
    case 0: s.join = ExperimentSpec::JoinKind::Poisson; break;
    case 1: s.join = ExperimentSpec::JoinKind::Fixed; break;
    default: s.join = ExperimentSpec::JoinKind::Instant; break;
  }
  if (rng.chance(0.5)) {
    s.join_public_ms = uniform(rng, 0.1, 200.0);
    s.join_private_ms = uniform(rng, 0.1, 200.0);
  }

  if (rng.chance(0.3)) {
    s.step_publics = rng.index(50);
    s.step_privates = rng.index(50);
    s.step_at_s = uniform(rng, 0.0, 100.0);
    s.step_every_ms = uniform(rng, 1.0, 100.0);
  }
  if (rng.chance(0.3)) {
    s.flash_publics = rng.index(100);
    s.flash_privates = rng.index(100);
    s.flash_at_s = uniform(rng, 0.0, 100.0);
    s.flash_over_s = uniform(rng, 0.5, 30.0);
  }
  if (rng.chance(0.3)) {
    s.churn = uniform(rng, 0.0, 0.99);
    s.churn_at_s = uniform(rng, 0.0, 100.0);
  }
  if (rng.chance(0.3)) {
    s.catastrophe = uniform(rng, 0.0, 1.0);
    s.catastrophe_at_s = uniform(rng, 0.0, 100.0);
  }
  if (rng.chance(0.3)) {
    s.failure_frac = uniform(rng, 0.0, 1.0);
    s.failure_at_s = uniform(rng, 0.0, 100.0);
    switch (rng.index(4)) {
      case 0: s.failure_corr = ExperimentSpec::FailureCorr::Uniform; break;
      case 1: s.failure_corr = ExperimentSpec::FailureCorr::Region; break;
      case 2: s.failure_corr = ExperimentSpec::FailureCorr::Public; break;
      default: s.failure_corr = ExperimentSpec::FailureCorr::Private; break;
    }
  }
  if (rng.chance(0.3)) {
    s.eclipse_target = rng.index(s.nodes + 1);  // 0 = off
    s.eclipse_at_s = uniform(rng, 0.0, 100.0);
    s.eclipse_period_s = uniform(rng, 0.1, 20.0);
  }
  if (rng.chance(0.3) && s.ratio < 1.0) {
    s.natflap_frac = uniform(rng, 0.0, 1.0);
    s.natflap_at_s = uniform(rng, 0.0, 100.0);
    s.natflap_period_s = uniform(rng, 0.1, 30.0);
  }
  if (rng.chance(0.2) && s.nodes > 1) {
    s.adversary_hubs = 1 + rng.index(std::min<std::size_t>(s.nodes - 1, 4));
  }

  if (rng.chance(0.4)) {
    if (rng.chance(0.5)) {
      s.loss = ExperimentSpec::LossSpec(uniform(rng, 0.0, 0.99));
    } else {
      s.loss.pub_pub = uniform(rng, 0.0, 0.99);
      s.loss.pub_priv = uniform(rng, 0.0, 0.99);
      s.loss.priv_pub = uniform(rng, 0.0, 0.99);
      s.loss.priv_priv = uniform(rng, 0.0, 0.99);
      s.loss.after_s = uniform(rng, 0.0, 100.0);
    }
  }

  if (rng.chance(0.4)) {
    s.mtu = 21 + rng.index(2000);
    if (rng.chance(0.5)) s.fec_repair = rng.index(5);
    if (rng.chance(0.3)) s.fec_rate = uniform(rng, 0.0, 2.0);
  }
  if (rng.chance(0.3)) {
    s.bandwidth_bps = 1000 + rng.index(1000000);
    if (rng.chance(0.5)) s.bandwidth_burst = 100 + rng.index(100000);
  }

  if (rng.chance(0.3)) s.skew = uniform(rng, 0.0, 0.99);
  if (rng.chance(0.3)) s.private_round_scale = uniform(rng, 0.1, 4.0);
  switch (rng.index(3)) {
    case 0: s.latency = run::World::LatencyKind::King; break;
    case 1: s.latency = run::World::LatencyKind::Constant; break;
    default: s.latency = run::World::LatencyKind::Coordinate; break;
  }
  if (rng.chance(0.3)) s.latency_ms = uniform(rng, 0.1, 500.0);
  if (rng.chance(0.3)) s.round_ms = uniform(rng, 10.0, 5000.0);
  s.natid = rng.chance(0.2);

  switch (rng.index(5)) {
    case 0: s.record = ExperimentSpec::RecordKind::None; break;
    case 1: s.record = ExperimentSpec::RecordKind::Estimation; break;
    case 2: s.record = ExperimentSpec::RecordKind::Graph; break;
    case 3: s.record = ExperimentSpec::RecordKind::GraphSampled; break;
    default: s.record = ExperimentSpec::RecordKind::Randomness; break;
  }
  if (rng.chance(0.3)) s.record_every_s = uniform(rng, 0.0, 60.0);
  s.duration_s = uniform(rng, 1.0, 500.0);
  return s;
}

TEST(SpecRoundtripProperty, ParseOfToStringIsIdentity) {
  sim::RngStream rng(0xD1CE);
  for (int i = 0; i < 500; ++i) {
    const ExperimentSpec s = random_spec(rng);
    ASSERT_NO_THROW(s.validate()) << "iteration " << i << ": generator "
                                  << "produced an invalid spec\n"
                                  << s.to_string();
    const std::string text = s.to_string();
    ExperimentSpec back;
    ASSERT_NO_THROW(back = ExperimentSpec::parse(text))
        << "iteration " << i << ": " << text;
    EXPECT_EQ(back, s) << "iteration " << i << ": parse(to_string) diverged\n"
                       << "  emitted:  " << text << "\n"
                       << "  reparsed: " << back.to_string();
    // Fixed point: re-emitting the reparsed spec changes nothing.
    EXPECT_EQ(back.to_string(), text) << "iteration " << i;
  }
}

TEST(SpecRoundtripProperty, DefaultSpecRoundTrips) {
  const ExperimentSpec s;
  EXPECT_EQ(ExperimentSpec::parse(s.to_string()), s);
}

TEST(SpecRoundtripProperty, ValidateRejectsOutOfRangeMutations) {
  // One deliberate violation per constraint family — validate() must
  // throw for each, and parse() (which validates) must agree.
  const auto expect_invalid = [](ExperimentSpec s, const char* what) {
    EXPECT_THROW(s.validate(), std::invalid_argument) << what;
  };
  ExperimentSpec s;
  s.loss.pub_pub = 1.0;
  expect_invalid(s, "loss rate of 1.0");
  s = ExperimentSpec{};
  s.mtu = 10;
  expect_invalid(s, "mtu smaller than the fragment header");
  s = ExperimentSpec{};
  s.fec_repair = 2;  // fec without mtu
  expect_invalid(s, "fec without fragmentation");
  s = ExperimentSpec{};
  s.bandwidth_burst = 1000;  // burst without rate
  expect_invalid(s, "bandwidth burst without a rate");
  s = ExperimentSpec{};
  s.ratio = 1.0;
  s.natflap_frac = 0.5;
  expect_invalid(s, "natflap on an all-public population");
  s = ExperimentSpec{};
  s.eclipse_target = s.nodes + 1;
  expect_invalid(s, "eclipse target beyond the population");
  s = ExperimentSpec{};
  s.protocol = "no-such-protocol";
  expect_invalid(s, "unknown protocol");
}

}  // namespace
}  // namespace croupier
