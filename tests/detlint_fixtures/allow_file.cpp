// Fixture: file-level suppression covers every finding of the named
// rule in the file. (Not compiled — scanned by detlint_test.)
// detlint:allow-file(entropy) fixture: whole-file waiver for entropy
#include <cstdlib>
#include <ctime>

int first() {
  return std::rand();  // covered by the allow-file directive
}

int second() {
  std::srand(1);  // covered too
  return std::rand();
}

long still_flagged() {
  return time(nullptr);  // FINDING: wallclock — a different rule
}
