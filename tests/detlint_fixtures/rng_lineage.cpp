// Fixture: rng-lineage — duplicate fork tags and shared static streams.
void setup() {
  auto a = master_rng_.fork(0x1A7);
  auto b = master_rng_.fork(0x2E7);
  auto c = master_rng_.fork(0x1A7);
  auto d = other_rng_.fork(0x1A7);
  auto e = master_rng_.fork(tag_for(7));
  // detlint:allow(rng-lineage) fixture: intentional duplicate for tests
  auto f = master_rng_.fork(0x2E7);
}

static sim::RngStream shared_stream;
sim::RngStream fine_stream;
