// Fixture: the `unordered-iter` rule, including output-path
// reachability. (Not compiled — scanned by detlint_test.)
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, double> table;
std::unordered_set<int> members;

double bad_range_for() {
  double s = 0.0;
  for (const auto& [k, v] : table) s = v;  // FINDING: unordered-iter
  return s;
}

int bad_begin_walk() {
  int n = 0;
  for (auto it = members.begin(); it != members.end(); ++it) ++n;  // FINDING
  return n;
}

// emit_report writes bytes out, so helpers it calls are output-reachable.
void emit_report() {
  std::printf("%f\n", bad_range_for());
}

double suppressed_iter() {
  double worst = 0.0;
  // detlint:allow(unordered-iter) fixture: max-selection is visit-order
  // insensitive (reason continues on a second comment line).
  for (const auto& [k, v] : table) {
    if (v > worst) worst = v;
  }
  return worst;
}

int fine_ordered_iter(const std::map<int, int>& m) {
  int s = 0;
  for (const auto& [k, v] : m) s += v;  // ordered map: no finding
  return s;
}
