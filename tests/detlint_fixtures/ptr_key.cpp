// Fixture: the `ptr-key` rule — pointer-keyed ordered containers order
// by address, which ASLR shuffles per run. (Not compiled — scanned by
// detlint_test.)
#include <map>
#include <set>
#include <string>

struct Node {
  int id;
};

std::map<Node*, int> bad_ptr_map;        // FINDING: ptr-key
std::set<const Node*> bad_ptr_set;       // FINDING: ptr-key

// detlint:allow(ptr-key) fixture: suppressed pointer-keyed container
std::map<Node*, int> suppressed_ptr_map;

std::map<int, Node*> fine_ptr_value;     // pointer value, not key: fine
std::map<std::string, int> fine_map;
