// Fixture: cross-shard-mutate — cross-node engine state touched from a
// node-affine handler without routing through Simulator::defer.
struct PeerSampler;  // marks this file as a protocol implementation

void helper_bad() { ++next_msg_id_; }
void helper_serial_only() { ++next_msg_id_; }

void on_message(int from) {
  meter_.on_send(from, 10);
  helper_bad();
  nodes_.erase(from);
  nodes_.find(from);
  simulator_.defer([from] { drops_.loss += 1; });
  if (!simulator_.deferring()) {
    drops_.loss += 1;
  }
  // detlint:allow(cross-shard-mutate) test corpus: waiver grammar check
  buckets_.clear();
}
