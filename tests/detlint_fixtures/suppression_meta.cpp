// Fixture: the `suppression` meta-rule — bad directives are findings
// themselves. (Not compiled — scanned by detlint_test.)
#include <cstdlib>

int unknown_rule() {
  // detlint:allow(no-such-rule) names a rule detlint does not know
  return std::rand();  // FINDING survives: entropy
}

int short_reason() {
  // detlint:allow(entropy) nope
  return std::rand();  // FINDING survives: reason under 8 characters
}

// detlint:allow(wallclock) fixture: nothing here reads a clock, so this
// suppression is dead and the meta-rule flags it.
int unused_directive() {
  return 7;
}
