// Fixture: the `entropy` rule. Ambient entropy sources are banned; all
// randomness must flow from sim::RngStream. (Not compiled — scanned by
// detlint_test.)
#include <cstdlib>
#include <random>

int bad_rand() {
  return std::rand();  // FINDING: entropy
}

void bad_seed() {
  std::srand(42);          // FINDING: entropy
  std::random_device dev;  // FINDING: entropy
  (void)dev;
}

int suppressed_rand() {
  // detlint:allow(entropy) fixture exercising a suppressed finding
  return std::rand();
}

struct Gen {
  int rand;  // a field named rand is data, not the libc call
};

int not_entropy(const Gen& g) {
  return g.rand + 1;
}
