// Fixture: the `raw-shuffle` rule — std::shuffle/std::sample bypass the
// seeded sim::RngStream. (Not compiled — scanned by detlint_test.)
#include <algorithm>
#include <random>
#include <vector>

void bad_shuffle(std::vector<int>& v, std::mt19937& g) {
  std::shuffle(v.begin(), v.end(), g);  // FINDING: raw-shuffle
}

void suppressed_shuffle(std::vector<int>& v, std::mt19937& g) {
  // detlint:allow(raw-shuffle) fixture: suppressed raw shuffle call
  std::shuffle(v.begin(), v.end(), g);
}

struct Rng {
  // The project's own seeded API: unqualified shuffle/sample are the
  // sanctioned RngStream members, not the std:: algorithms.
  template <typename T>
  void shuffle(std::vector<T>& v);
};

void fine_stream_shuffle(std::vector<int>& v, Rng& rng) {
  rng.shuffle(v);  // RngStream member: no finding
}
