// Fixture: naked-schedule — Simulator scheduling API reached from shard
// context without the deferring() guard.
struct PeerSampler;  // marks this file as a protocol implementation

void round() {
  sim_.schedule_after(10, 1, [] {});
  auto id = sim_.schedule_at(99, [] {});
  sim_.cancel(id);
  if (!sim_.deferring()) {
    sim_.schedule_after(10, 1, [] {});
  }
  sim_.defer([] { sim_.schedule_after(10, 1, [] {}); });
  // detlint:allow(naked-schedule) fixture: re-arm discards the EventId
  sim_.schedule_after(10, 1, [] {});
}

void not_a_handler() {
  sim_.schedule_after(10, 1, [] {});
}
