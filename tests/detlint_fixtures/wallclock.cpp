// Fixture: the `wallclock` rule. Wall-clock reads are banned outside
// suppressed reporting sites. (Not compiled — scanned by detlint_test.)
#include <chrono>
#include <ctime>

long bad_time() {
  return time(nullptr);  // FINDING: wallclock
}

double bad_chrono() {
  const auto t0 = std::chrono::steady_clock::now();  // FINDING: wallclock
  const auto t1 = std::chrono::system_clock::now();  // FINDING: wallclock
  (void)t1;
  return std::chrono::duration<double>(
             // detlint:allow(wallclock) fixture: suppressed reporting read
             std::chrono::steady_clock::now() - t0)
      .count();
}

int not_wallclock(int time) {
  // A parameter named `time` is not the libc call.
  return time + 1;
}
