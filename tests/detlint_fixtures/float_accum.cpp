// Fixture: the `float-accum` rule. Scanned under the path
// src/metrics/float_accum.cpp so the metrics-only scoping applies.
// (Not compiled — scanned by detlint_test.)
#include <cstddef>
#include <span>

double bad_sum(std::span<const double> xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;  // FINDING: float-accum
  return sum;
}

double suppressed_sum(std::span<const double> xs) {
  double sum = 0.0;
  // detlint:allow(float-accum) fixture: caller passes a sorted span
  for (double x : xs) sum += x;
  return sum;
}

std::size_t fine_int_accum(std::span<const int> xs) {
  std::size_t n = 0;
  for (int x : xs) n += static_cast<std::size_t>(x);  // integer: exact
  return n;
}
