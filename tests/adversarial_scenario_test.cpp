// The adversarial membership processes: eclipse (targeted neighbour
// replacement), NAT flapping (in-place class oscillation through
// World::reclassify) and the self-promoting hub shim — their attack
// effects, their restore/stop semantics, and the start/stop/restart
// lifecycle contract every ScenarioProcess shares.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/scenario.hpp"
#include "runtime/spec.hpp"
#include "test_util.hpp"

namespace croupier::run {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

/// Cumulative in-degree per node over the final overlay snapshot.
std::map<net::NodeId, std::size_t> indegree_snapshot(World& world) {
  std::map<net::NodeId, std::size_t> indegree;
  for (const net::NodeId id : world.sorted_ids()) {
    const auto* sampler = world.sampler(id);
    if (sampler == nullptr) continue;
    for (const net::NodeId target : sampler->out_neighbors()) {
      if (target != id) ++indegree[target];
    }
  }
  return indegree;
}

TEST(Eclipse, StarvesTheTargetOfHonestLinks) {
  Experiment experiment(SpecBuilder()
                            .protocol("croupier:alpha=25,gamma=50")
                            .nodes(100)
                            .ratio(0.2)
                            .instant_joins()
                            .eclipse(1, 10.0, 1.0)
                            .duration(40)
                            .record_nothing()
                            .build(),
                        7);
  experiment.run();
  // Every period the target's neighbours were crashed and replaced in
  // kind: the population size is preserved while the replacement count
  // grows with the attack duration.
  World& world = experiment.world();
  EXPECT_EQ(world.alive_count(), 100u);
  EXPECT_GT(experiment.scenario_stats().replaced, 50u);

  // Isolation: everything the target points at is killed within one
  // period of entering its view, so the target's entire out-view is
  // dead links — it cannot route a single shuffle to a live peer.
  const auto* target = world.sampler(1);
  ASSERT_NE(target, nullptr);
  std::size_t out = 0;
  std::size_t live = 0;
  for (const net::NodeId id : target->out_neighbors()) {
    ++out;
    if (world.alive(id)) ++live;
  }
  EXPECT_GE(out, 10u);  // the view stayed full of (dead) entries
  EXPECT_EQ(live, 0u) << live << " of " << out << " out-links alive";
}

TEST(Eclipse, DeadTargetTicksAreInertAndRestartIsClean) {
  World world(fast_world_config(11), make_croupier_factory({}));
  populate(world, 10, 10);
  EclipseProcess eclipse(world, 3, sim::sec(1));
  eclipse.start(sim::sec(5));
  world.simulator().run_until(sim::sec(2));
  eclipse.stop();
  eclipse.stop();  // idempotent
  // The stopped arming's t=5 tick must stay dead.
  world.simulator().run_until(sim::sec(8));
  EXPECT_EQ(eclipse.stats().replaced, 0u);

  // A dead target makes every tick a deterministic no-op.
  world.kill(3);
  eclipse.start(sim::sec(10));
  world.simulator().run_until(sim::sec(13));
  EXPECT_EQ(eclipse.stats().replaced, 0u);
  EXPECT_EQ(world.alive_count(), 19u);
}

TEST(NatFlap, RoundTripsClassStateIdempotently) {
  World world(fast_world_config(13), make_croupier_factory({}));
  populate(world, 5, 5);
  std::map<net::NodeId, net::NatType> original;
  for (const net::NodeId id : world.alive_ids()) {
    original[id] = world.type_of(id);
  }

  NatFlapProcess flap(world, 0.5, sim::sec(2));
  flap.start(sim::sec(1));
  // t=1: out phase — floor(0.5 * 10) nodes flip class.
  world.simulator().run_until(sim::sec(2));
  EXPECT_EQ(flap.stats().reclassified, 5u);
  EXPECT_EQ(flap.currently_flapped(), 5u);
  std::size_t flipped = 0;
  for (const auto& [id, type] : original) {
    if (world.type_of(id) != type) ++flipped;
  }
  EXPECT_EQ(flipped, 5u);

  // t=3: back phase — every survivor returns to its original class.
  world.simulator().run_until(sim::sec(4));
  EXPECT_EQ(flap.stats().reclassified, 10u);
  EXPECT_EQ(flap.currently_flapped(), 0u);
  for (const auto& [id, type] : original) {
    EXPECT_EQ(world.type_of(id), type) << "node " << id;
  }

  // The world keeps gossiping across the oscillation: reclassified
  // nodes rebuilt their protocol through the normal join path.
  world.simulator().run_until(sim::sec(10));
  EXPECT_EQ(world.alive_count(), 10u);
  EXPECT_EQ(world.gossiping_count(), 10u);
}

TEST(NatFlap, StopLeavesTheFlippedClassInPlace) {
  World world(fast_world_config(17), make_croupier_factory({}));
  populate(world, 4, 4);
  std::map<net::NodeId, net::NatType> original;
  for (const net::NodeId id : world.alive_ids()) {
    original[id] = world.type_of(id);
  }
  NatFlapProcess flap(world, 0.25, sim::sec(10));
  flap.start(sim::sec(1));
  world.simulator().run_until(sim::sec(2));  // mid out-phase
  ASSERT_EQ(flap.stats().reclassified, 2u);
  flap.stop();
  flap.stop();  // idempotent
  // A stopped attack does not undo itself: the t=11 restore tick is
  // dead and the two victims stay in their flipped class.
  world.simulator().run_until(sim::sec(12));
  EXPECT_EQ(flap.stats().reclassified, 2u);
  std::size_t still_flipped = 0;
  for (const auto& [id, type] : original) {
    if (world.alive(id) && world.type_of(id) != type) ++still_flipped;
  }
  EXPECT_EQ(still_flipped, 2u);
}

/// The hub's in-degree against the mean in-degree of the honest public
/// nodes — the right null hypothesis, because publics are structurally
/// high in-degree under croupier (every private's public view points at
/// them by design), so a global mean would misread that structure as
/// amplification.
double hub_indegree_vs_public_mean(Experiment& experiment) {
  World& world = experiment.world();
  net::NodeId hub_id = 0;
  for (const net::NodeId id : world.sorted_ids()) {
    if (dynamic_cast<HubSampler*>(world.sampler(id)) != nullptr) hub_id = id;
  }
  EXPECT_NE(hub_id, 0u);
  const auto indegree = indegree_snapshot(world);
  double hub = 0.0;
  double honest_sum = 0.0;
  double honest_n = 0.0;
  for (const auto& [id, count] : indegree) {
    if (id == hub_id) {
      hub = static_cast<double>(count);
    } else if (world.alive(id) &&
               world.type_of(id) == net::NatType::Public) {
      honest_sum += static_cast<double>(count);
      honest_n += 1.0;
    }
  }
  return honest_n > 0.0 && honest_sum > 0.0 ? hub / (honest_sum / honest_n)
                                            : 0.0;
}

double run_hub_ratio(const char* protocol, std::uint64_t seed) {
  Experiment experiment(SpecBuilder()
                            .protocol(protocol)
                            .nodes(100)
                            .ratio(0.2)
                            .instant_joins()
                            .adversary_hubs(1)
                            .duration(60)
                            .record_nothing()
                            .build(),
                        seed);
  experiment.run();
  return hub_indegree_vs_public_mean(experiment);
}

TEST(HubAdversary, InflatesItsInDegreeUnderGozarButNotCroupier) {
  // Gozar hands the hub a relay position: hijacked relayed requests let
  // it inject {self} into private nodes' views it never met, tripling
  // its in-degree against the honest-public baseline (measured 3.4x).
  // Croupier gives it no such channel — privates drop requests, so the
  // hub's promotion only reaches the public fifth, and its in-degree
  // stays within a factor ~1.5 of what any honest public already gets
  // structurally (measured 1.46x, below the honest maximum's ratio).
  const double gozar = run_hub_ratio("gozar", 5);
  const double croupier = run_hub_ratio("croupier:alpha=25,gamma=50", 5);
  EXPECT_GT(gozar, 2.5) << "gozar hub/public-mean " << gozar;
  EXPECT_LT(croupier, 2.0) << "croupier hub/public-mean " << croupier;
  EXPECT_GT(gozar, croupier);
}

TEST(HubAdversary, CountsPoisonedExchangesAndHijackedRelays) {
  Experiment experiment(SpecBuilder()
                            .protocol("gozar")
                            .nodes(100)
                            .ratio(0.2)
                            .instant_joins()
                            .adversary_hubs(1)
                            .duration(60)
                            .record_nothing()
                            .build(),
                        9);
  experiment.run();
  World& world = experiment.world();
  const HubSampler* hub = nullptr;
  for (const net::NodeId id : world.sorted_ids()) {
    if (const auto* h = dynamic_cast<HubSampler*>(world.sampler(id))) {
      ASSERT_EQ(hub, nullptr) << "one hub requested, several found";
      hub = h;
    }
  }
  ASSERT_NE(hub, nullptr);
  // The hub answered honest shuffles with poisoned views, and relayed
  // requests routed through it were hijacked rather than forwarded.
  EXPECT_GT(hub->poisoned_exchanges(), 10u);
  EXPECT_GT(hub->hijacked_relays(), 0u);
}

}  // namespace
}  // namespace croupier::run
