// Drives the detlint core over the fixture corpus in
// tests/detlint_fixtures/ — every rule gets a positive, a suppressed,
// and a not-a-finding case — plus the scoping, suppression-meta, and
// self-scan-clean behaviors the tree gate relies on.
#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "detlint.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string fixture(const std::string& name) {
  return slurp(std::string(DETLINT_FIXTURE_DIR) + "/" + name);
}

/// Scans one fixture under a chosen virtual path (rule scoping and
/// output-root heuristics match on the path detlint is told, not where
/// the bytes live on disk).
std::vector<detlint::Finding> scan(const std::string& virtual_path,
                                   const std::string& fixture_name) {
  detlint::Linter lint;
  lint.add_file(virtual_path, fixture(fixture_name));
  return lint.run();
}

std::vector<int> lines_of(const std::vector<detlint::Finding>& fs,
                          const std::string& rule) {
  std::vector<int> out;
  for (const auto& f : fs) {
    if (f.rule == rule) out.push_back(f.line);
  }
  return out;
}

TEST(DetlintRules, EntropySources) {
  const auto fs = scan("tests/detlint_fixtures/entropy.cpp", "entropy.cpp");
  EXPECT_EQ(lines_of(fs, "entropy"), (std::vector<int>{8, 12, 13}));
  EXPECT_EQ(fs.size(), 3u) << "only the three unsuppressed entropy reads";
}

TEST(DetlintRules, WallclockReads) {
  const auto fs = scan("tests/detlint_fixtures/wallclock.cpp", "wallclock.cpp");
  EXPECT_EQ(lines_of(fs, "wallclock"), (std::vector<int>{7, 11, 12}));
  EXPECT_EQ(fs.size(), 3u) << "the suppressed reporting read stays quiet";
}

TEST(DetlintRules, UnorderedIteration) {
  const auto fs =
      scan("tests/detlint_fixtures/unordered_iter.cpp", "unordered_iter.cpp");
  EXPECT_EQ(lines_of(fs, "unordered-iter"), (std::vector<int>{13, 19}));
  EXPECT_EQ(fs.size(), 2u);
  // bad_range_for is called from emit_report (which printf's), so its
  // finding is marked output-reachable; bad_begin_walk is not.
  for (const auto& f : fs) {
    if (f.line == 13) {
      EXPECT_EQ(f.function, "bad_range_for");
      EXPECT_TRUE(f.output_reachable);
    } else {
      EXPECT_EQ(f.function, "bad_begin_walk");
      EXPECT_FALSE(f.output_reachable);
    }
  }
}

TEST(DetlintRules, PointerKeyedContainers) {
  const auto fs = scan("tests/detlint_fixtures/ptr_key.cpp", "ptr_key.cpp");
  EXPECT_EQ(lines_of(fs, "ptr-key"), (std::vector<int>{12, 13}));
  EXPECT_EQ(fs.size(), 2u) << "pointer *values* and the suppressed map pass";
}

TEST(DetlintRules, RawShuffle) {
  const auto fs =
      scan("tests/detlint_fixtures/raw_shuffle.cpp", "raw_shuffle.cpp");
  EXPECT_EQ(lines_of(fs, "raw-shuffle"), (std::vector<int>{8}));
  EXPECT_EQ(fs.size(), 1u)
      << "RngStream members and unqualified declarations are not std::shuffle";
}

TEST(DetlintRules, FloatAccumScopedToMetrics) {
  // Under src/metrics/ the raw += loop fires.
  const auto in_metrics = scan("src/metrics/float_accum.cpp", "float_accum.cpp");
  EXPECT_EQ(lines_of(in_metrics, "float-accum"), (std::vector<int>{9}));
  EXPECT_EQ(in_metrics.size(), 1u);

  // Outside src/metrics/ the rule is out of scope — which also turns the
  // fixture's allow directive into an unused-suppression meta finding.
  const auto elsewhere =
      scan("tests/detlint_fixtures/float_accum.cpp", "float_accum.cpp");
  EXPECT_TRUE(lines_of(elsewhere, "float-accum").empty());
  ASSERT_EQ(elsewhere.size(), 1u);
  EXPECT_EQ(elsewhere[0].rule, "suppression");
  EXPECT_NE(elsewhere[0].message.find("unused"), std::string::npos);
}

TEST(DetlintRules, CrossShardMutate) {
  const auto fs = scan("tests/detlint_fixtures/cross_shard_mutate.cpp",
                       "cross_shard_mutate.cpp");
  // helper_bad (line 5) is pulled into shard context by the call from
  // on_message; helper_serial_only (line 6) is identical code but
  // unreachable from any node-affine root, so it stays quiet. The
  // defer() argument (13), the !deferring() then-block (15), the
  // read-only lookup (12), and the waived clear (18) are all clean.
  EXPECT_EQ(lines_of(fs, "cross-shard-mutate"), (std::vector<int>{5, 9, 11}));
  EXPECT_EQ(fs.size(), 3u);
  for (const auto& f : fs) {
    if (f.line == 9) {
      EXPECT_EQ(f.function, "on_message");
    }
  }
}

TEST(DetlintRules, CrossShardMutateScopedOutOfEngine) {
  // The same bytes under src/sim/ are the engine kernel itself — out of
  // affinity scope; the now-dead waiver surfaces as a meta finding.
  const auto fs = scan("src/sim/cross_shard_mutate.cpp",
                       "cross_shard_mutate.cpp");
  EXPECT_TRUE(lines_of(fs, "cross-shard-mutate").empty());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "suppression");
  EXPECT_NE(fs[0].message.find("unused"), std::string::npos);
}

TEST(DetlintRules, NakedSchedule) {
  const auto fs = scan("tests/detlint_fixtures/naked_schedule.cpp",
                       "naked_schedule.cpp");
  // The raw schedule (6), the id-storing schedule_at (7), and the
  // cancel (8) fire inside the protocol round; the guarded (10),
  // deferred (12), waived (14), and non-handler (18) calls are clean.
  EXPECT_EQ(lines_of(fs, "naked-schedule"), (std::vector<int>{6, 7, 8}));
  EXPECT_EQ(fs.size(), 3u);
  for (const auto& f : fs) {
    EXPECT_EQ(f.function, "round");
    if (f.line == 8) {
      EXPECT_NE(f.message.find("cancel"), std::string::npos);
    }
  }
}

TEST(DetlintRules, RngLineage) {
  const auto fs = scan("tests/detlint_fixtures/rng_lineage.cpp",
                       "rng_lineage.cpp");
  // The duplicate (master_rng_, 0x1A7) pair (5) and the static stream
  // (12) fire; distinct tags (4), another receiver (6), a non-literal
  // tag (7), and the waived duplicate (9) are clean.
  EXPECT_EQ(lines_of(fs, "rng-lineage"), (std::vector<int>{5, 12}));
  EXPECT_EQ(fs.size(), 2u);
  for (const auto& f : fs) {
    if (f.line == 5) {
      EXPECT_NE(f.message.find("duplicate fork tag"), std::string::npos);
      EXPECT_NE(f.message.find("line 3"), std::string::npos);
    }
    if (f.line == 12) {
      EXPECT_NE(f.message.find("static"), std::string::npos);
    }
  }
}

TEST(DetlintRules, SuppressionMetaRule) {
  const auto fs = scan("tests/detlint_fixtures/suppression_meta.cpp",
                       "suppression_meta.cpp");
  // Bad directives never hide the underlying finding...
  EXPECT_EQ(lines_of(fs, "entropy"), (std::vector<int>{7, 12}));
  // ...and are findings themselves: unknown rule, short reason, unused.
  EXPECT_EQ(lines_of(fs, "suppression"), (std::vector<int>{6, 11, 15}));
  for (const auto& f : fs) {
    if (f.line == 6) {
      EXPECT_NE(f.message.find("unknown rule"), std::string::npos);
    }
    if (f.line == 11) {
      EXPECT_NE(f.message.find("reason"), std::string::npos);
    }
    if (f.line == 15) {
      EXPECT_NE(f.message.find("unused"), std::string::npos);
    }
  }
}

TEST(DetlintRules, FileLevelSuppression) {
  const auto fs =
      scan("tests/detlint_fixtures/allow_file.cpp", "allow_file.cpp");
  // allow-file(entropy) waives every entropy finding; other rules still
  // fire.
  EXPECT_TRUE(lines_of(fs, "entropy").empty());
  EXPECT_EQ(lines_of(fs, "wallclock"), (std::vector<int>{17}));
  EXPECT_EQ(fs.size(), 1u);
}

TEST(DetlintSelfScan, OwnSourcesClean) {
  // The lint holds itself to its own contract.
  detlint::Linter lint;
  for (const char* name :
       {"detlint.hpp", "preprocess.cpp", "rules.cpp", "main.cpp"}) {
    lint.add_file(std::string("tools/detlint/") + name,
                  slurp(std::string(DETLINT_SOURCE_DIR) + "/" + name));
  }
  const auto fs = lint.run();
  for (const auto& f : fs) ADD_FAILURE() << detlint::format(f);
}

TEST(DetlintFormat, CarriesFunctionAndReachability) {
  const auto fs =
      scan("tests/detlint_fixtures/unordered_iter.cpp", "unordered_iter.cpp");
  ASSERT_FALSE(fs.empty());
  const auto& f = fs.front();
  const std::string line = detlint::format(f);
  EXPECT_NE(line.find("unordered_iter.cpp:13"), std::string::npos);
  EXPECT_NE(line.find("[unordered-iter]"), std::string::npos);
  EXPECT_NE(line.find("reachable from an output path"), std::string::npos);
}

}  // namespace
