// ARRG extension-baseline tests: open-list fallback and the resulting
// selection bias.
#include <gtest/gtest.h>

#include "baselines/arrg.hpp"
#include "test_util.hpp"

namespace croupier::baselines {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

ArrgConfig small_cfg() {
  ArrgConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  cfg.open_list_size = 8;
  return cfg;
}

run::World make_world(std::uint64_t seed = 1) {
  return run::World(fast_world_config(seed),
                    run::make_arrg_factory(small_cfg()));
}

TEST(Arrg, WorksOnAllPublicNetwork) {
  auto world = make_world();
  populate(world, 15, 0);
  world.simulator().run_until(sim::sec(20));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& a = dynamic_cast<const Arrg&>(p);
    EXPECT_GE(a.view().size(), 3u);
  });
}

TEST(Arrg, OpenListFillsWithSuccessfulPartners) {
  auto world = make_world(3);
  populate(world, 10, 0);
  world.simulator().run_until(sim::sec(15));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    EXPECT_FALSE(dynamic_cast<const Arrg&>(p).open_list().empty());
  });
}

TEST(Arrg, OpenListBounded) {
  auto world = make_world(5);
  populate(world, 30, 0);
  world.simulator().run_until(sim::sec(30));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    EXPECT_LE(dynamic_cast<const Arrg&>(p).open_list().size(), 8u);
  });
}

TEST(Arrg, FallsBackOnNatFailures) {
  auto world = make_world(7);
  populate(world, 5, 15);  // most targets unreachable
  world.simulator().run_until(sim::sec(30));
  std::uint64_t fallbacks = 0;
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    fallbacks += dynamic_cast<const Arrg&>(p).fallback_count();
  });
  EXPECT_GT(fallbacks, 0u);
}

TEST(Arrg, OpenListContainsOnlyReachablePartnersOnMixedNetwork) {
  // A private node can appear in someone's open list only if it initiated
  // an exchange with them (its responses make it a "successful partner").
  // What matters for bias: publics dominate open lists.
  auto world = make_world(9);
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(30));
  std::size_t total = 0;
  std::size_t publics = 0;
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    for (net::NodeId id : dynamic_cast<const Arrg&>(p).open_list()) {
      ++total;
      if (world.alive(id) && world.type_of(id) == net::NatType::Public) {
        ++publics;
      }
    }
  });
  ASSERT_GT(total, 0u);
  // Publics are 25% of the population but clearly over-represented in
  // open lists — ARRG's structural bias. (Privates do appear: initiating
  // an exchange makes a private node a "successful partner" of its
  // responder.)
  EXPECT_GT(static_cast<double>(publics) / static_cast<double>(total), 0.3);
}

TEST(Arrg, MessageRoundTrip) {
  ArrgShuffleReq req;
  req.sender = pss::NodeDescriptor{3, net::NatType::Private, 0};
  req.entries = {{4, net::NatType::Public, 2}};
  wire::Writer w;
  req.encode(w);
  wire::Reader r(w.data());
  const auto back = ArrgShuffleReq::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.sender, req.sender);
  EXPECT_EQ(back.entries, req.entries);
}

}  // namespace
}  // namespace croupier::baselines
