// ExperimentSpec / SpecBuilder / Experiment: the declarative experiment
// surface. Covers the parse/to_string round-trip, validation, population
// arithmetic, and the load-bearing equivalence guarantee: a spec-built
// Experiment replays a hand-built World event for event (identical
// recorded series at the same seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "runtime/factories.hpp"
#include "runtime/recorder.hpp"
#include "runtime/registry.hpp"
#include "runtime/scenario.hpp"
#include "runtime/spec.hpp"

namespace croupier::run {
namespace {

TEST(ExperimentSpec, DefaultsRoundTripMinimally) {
  const ExperimentSpec spec;
  EXPECT_EQ(spec.to_string(),
            "protocol=croupier nodes=1000 ratio=0.2 duration=200");
  EXPECT_EQ(ExperimentSpec::parse(spec.to_string()), spec);
}

TEST(ExperimentSpec, FullyLoadedSpecRoundTrips) {
  const auto spec = SpecBuilder()
                        .protocol("croupier:alpha=10,gamma=25,merge=healer")
                        .nodes(1234)
                        .ratio(0.33)
                        .fixed_joins(42.5, 13)
                        .join_step(333, 7, 58, 42)
                        .churn(0.025, 61)
                        .catastrophe(0.8, 60)
                        .loss(0.05)
                        .skew(0.1)
                        .private_round_scale(1.2)
                        .constant_latency(20)
                        .round_period(500)
                        .natid()
                        .duration(123.456)
                        .record_graph(2.5)
                        .build();
  const auto text = spec.to_string();
  EXPECT_EQ(ExperimentSpec::parse(text), spec) << text;
  // And the canonical form is stable (parse -> to_string is idempotent).
  EXPECT_EQ(ExperimentSpec::parse(text).to_string(), text);
}

TEST(ExperimentSpec, ParseRejectsUnknownKeysAndBadValues) {
  EXPECT_THROW((void)ExperimentSpec::parse("bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("nodes"), std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("nodes=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("ratio=1.5"),
               std::invalid_argument);  // validate() runs after parsing
  EXPECT_THROW((void)ExperimentSpec::parse("join=sometimes"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("record=everything"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("natid=maybe"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("protocol=chorder:x"),
               std::invalid_argument);  // bad option syntax caught early
  // An unknown protocol name or option must fail at validation time, not
  // later inside a TrialPool worker where the throw would abort the run.
  EXPECT_THROW((void)ExperimentSpec::parse("protocol=chord"),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().protocol("croupier:aplha=25").build(),
               std::invalid_argument);
}

// Regression (PR 5): the Network hard-asserts every loss rate < 1.0, but
// validate() used to accept loss=1.0 — a lab spec could crash a trial
// worker mid-run instead of failing fast at parse time.
TEST(ExperimentSpec, LossRateOneIsRejectedAtValidateTime) {
  EXPECT_THROW((void)ExperimentSpec::parse("loss=1.0"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("loss=1"), std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("loss=priv-any:1.0"),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().loss(1.0).build(), std::invalid_argument);
  EXPECT_NO_THROW((void)ExperimentSpec::parse("loss=0.999"));
}

TEST(ExperimentSpec, StructuredLossParsesAndRoundTrips) {
  const auto spec =
      ExperimentSpec::parse("loss=pub-pub:0.1,priv-any:0.4,after:90");
  EXPECT_EQ(spec.loss.pub_pub, 0.1);
  EXPECT_EQ(spec.loss.pub_priv, 0.0);
  EXPECT_EQ(spec.loss.priv_pub, 0.4);
  EXPECT_EQ(spec.loss.priv_priv, 0.4);
  EXPECT_EQ(spec.loss.after_s, 90.0);
  EXPECT_FALSE(spec.loss.is_uniform());
  // Canonical form: explicit pairs, zero pairs omitted, fixed order.
  EXPECT_EQ(ExperimentSpec::parse(spec.to_string()), spec)
      << spec.to_string();
  EXPECT_NE(spec.to_string().find(
                "loss=pub-pub:0.1,priv-pub:0.4,priv-priv:0.4,after:90"),
            std::string::npos);

  // A bare rate inside the comma list is the uniform shorthand.
  const auto delayed = ExperimentSpec::parse("loss=0.2,after:50");
  EXPECT_EQ(delayed.loss.pub_pub, 0.2);
  EXPECT_EQ(delayed.loss.priv_priv, 0.2);
  EXPECT_EQ(delayed.loss.after_s, 50.0);
  EXPECT_EQ(ExperimentSpec::parse(delayed.to_string()), delayed);

  // The scalar form stays byte-identical to the historic field.
  const auto uniform = ExperimentSpec::parse("loss=0.05");
  EXPECT_TRUE(uniform.loss.is_uniform());
  EXPECT_NE(uniform.to_string().find("loss=0.05"), std::string::npos);
  EXPECT_EQ(uniform.to_string().find("pub-pub"), std::string::npos);
}

TEST(ExperimentSpec, StructuredLossRejectsMalformedValues) {
  EXPECT_THROW((void)ExperimentSpec::parse("loss=pub:0.1"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("loss=pub-pub:"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("loss=pub-pub:abc"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("loss=0.1,,after:3"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("loss=after:-5"),
               std::invalid_argument);
}

TEST(ExperimentSpec, FlashCrowdParsesValidatesAndRoundTrips) {
  const auto spec = ExperimentSpec::parse(
      "flash=at:120,publics:500,privates:125,over:10 duration=200");
  EXPECT_EQ(spec.flash_publics, 500u);
  EXPECT_EQ(spec.flash_privates, 125u);
  EXPECT_EQ(spec.flash_at_s, 120.0);
  EXPECT_EQ(spec.flash_over_s, 10.0);
  EXPECT_EQ(ExperimentSpec::parse(spec.to_string()), spec)
      << spec.to_string();

  EXPECT_THROW((void)ExperimentSpec::parse("flash=publics:10,over:0"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("flash=bogus:1"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("flash=publics:ten"),
               std::invalid_argument);
}

TEST(ExperimentSpec, CorrelatedFailureParsesValidatesAndRoundTrips) {
  const auto spec =
      ExperimentSpec::parse("failure=at:60,frac:0.3,corr:private");
  EXPECT_EQ(spec.failure_frac, 0.3);
  EXPECT_EQ(spec.failure_at_s, 60.0);
  EXPECT_EQ(spec.failure_corr, ExperimentSpec::FailureCorr::Private);
  EXPECT_EQ(ExperimentSpec::parse(spec.to_string()), spec)
      << spec.to_string();

  // Subkeys are optional: corr defaults to region, at to 60.
  const auto minimal = ExperimentSpec::parse("failure=frac:0.5");
  EXPECT_EQ(minimal.failure_corr, ExperimentSpec::FailureCorr::Region);
  EXPECT_EQ(minimal.failure_at_s, 60.0);
  EXPECT_EQ(ExperimentSpec::parse(minimal.to_string()), minimal);

  EXPECT_THROW((void)ExperimentSpec::parse("failure=frac:1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("failure=corr:sideways"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("failure=when:5"),
               std::invalid_argument);
}

TEST(ExperimentSpec, NewScenarioFamiliesRoundTripFullyLoaded) {
  ExperimentSpec::LossSpec loss;
  loss.pub_pub = 0.01;
  loss.priv_pub = 0.3;
  loss.priv_priv = 0.25;
  loss.after_s = 42.5;
  const auto spec =
      SpecBuilder()
          .protocol("croupier")
          .nodes(800)
          .ratio(0.25)
          .flash_crowd(200, 50, 33.5, 7.25)
          .correlated_failure(0.4, 90,
                              ExperimentSpec::FailureCorr::Public)
          .loss(loss)
          .duration(150)
          .build();
  const auto text = spec.to_string();
  EXPECT_EQ(ExperimentSpec::parse(text), spec) << text;
  EXPECT_EQ(ExperimentSpec::parse(text).to_string(), text);
}

TEST(ExperimentSpec, AdversarialFamiliesParseValidateAndRoundTrip) {
  const auto spec = SpecBuilder()
                        .protocol("gozar")
                        .nodes(400)
                        .ratio(0.2)
                        .eclipse(7, 33.5, 2.5)
                        .natflap(0.15, 40.0, 12.5)
                        .adversary_hubs(3)
                        .record_randomness(5)
                        .duration(120)
                        .build();
  const auto text = spec.to_string();
  EXPECT_EQ(ExperimentSpec::parse(text), spec) << text;
  EXPECT_EQ(ExperimentSpec::parse(text).to_string(), text);

  // Scalar shorthands: the bare value names the family's primary knob.
  EXPECT_EQ(ExperimentSpec::parse("eclipse=5").eclipse_target, 5u);
  EXPECT_DOUBLE_EQ(ExperimentSpec::parse("natflap=0.1").natflap_frac, 0.1);
  EXPECT_EQ(ExperimentSpec::parse("adversary=2").adversary_hubs, 2u);
  EXPECT_EQ(ExperimentSpec::parse("record=randomness").record,
            ExperimentSpec::RecordKind::Randomness);
  EXPECT_THROW((void)ExperimentSpec::parse("eclipse=when:5"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("adversary=count:3"),
               std::invalid_argument);
}

TEST(ExperimentSpec, AdversarialBoundsAreRejectedAtValidateTime) {
  // An eclipse target the join processes never spawn (ids are assigned
  // 1..nodes) would silently no-op forever.
  EXPECT_THROW((void)SpecBuilder().nodes(100).eclipse(101).build(),
               std::invalid_argument);
  EXPECT_NO_THROW((void)SpecBuilder().nodes(100).eclipse(100).build());
  EXPECT_THROW((void)SpecBuilder().eclipse(1, 10.0, 0.0).build(),
               std::invalid_argument);
  // NAT flapping needs a NAT class to flap.
  EXPECT_THROW((void)SpecBuilder().ratio(1.0).natflap(0.1).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().natflap(1.5).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().natflap(0.1, 10.0, 0.0).build(),
               std::invalid_argument);
  // At least one honest node must remain to audit.
  EXPECT_THROW((void)SpecBuilder().nodes(10).adversary_hubs(10).build(),
               std::invalid_argument);
  EXPECT_NO_THROW((void)SpecBuilder().nodes(10).adversary_hubs(9).build());
}

TEST(ExperimentSpec, ValidateRejectsOutOfRangeFields) {
  EXPECT_THROW((void)SpecBuilder().nodes(0).build(), std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().ratio(-0.1).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().churn(1.0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().loss(2.0).build(), std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().duration(0).build(),
               std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().poisson_joins(0, 13).build(),
               std::invalid_argument);
  EXPECT_NO_THROW((void)SpecBuilder().build());
}

TEST(ExperimentSpec, PacketFamiliesParseAndRoundTrip) {
  // Scalar shorthands.
  const auto scalar = ExperimentSpec::parse(
      "protocol=croupier mtu=512 bandwidth=20000 fec=2 duration=100");
  EXPECT_EQ(scalar.mtu, 512u);
  EXPECT_EQ(scalar.bandwidth_bps, 20000u);
  EXPECT_EQ(scalar.bandwidth_burst, 0u);
  EXPECT_EQ(scalar.fec_repair, 2u);
  EXPECT_EQ(scalar.fec_rate, 0.0);
  EXPECT_EQ(ExperimentSpec::parse(scalar.to_string()), scalar);

  // Composite forms.
  const auto full = ExperimentSpec::parse(
      "protocol=croupier mtu=256 bandwidth=rate:10000,burst:40000 "
      "fec=repair:1,rate:0.25 duration=100");
  EXPECT_EQ(full.bandwidth_bps, 10000u);
  EXPECT_EQ(full.bandwidth_burst, 40000u);
  EXPECT_EQ(full.fec_repair, 1u);
  EXPECT_EQ(full.fec_rate, 0.25);
  EXPECT_EQ(ExperimentSpec::parse(full.to_string()), full);

  // Rate-only fec round-trips without a repair subkey.
  const auto rate_only = ExperimentSpec::parse(
      "protocol=croupier mtu=256 fec=rate:0.5 duration=100");
  EXPECT_EQ(rate_only.fec_repair, 0u);
  EXPECT_EQ(rate_only.fec_rate, 0.5);
  EXPECT_EQ(ExperimentSpec::parse(rate_only.to_string()), rate_only);

  // Defaults stay omitted: the packet keys add zero bytes to pre-packet
  // specs (the mtu=0 compatibility contract).
  EXPECT_EQ(ExperimentSpec().to_string(),
            "protocol=croupier nodes=1000 ratio=0.2 duration=200");

  // Builder surface mirrors the grammar.
  const auto built = SpecBuilder().mtu(256).bandwidth(10000, 40000)
                         .fec(1, 0.25).build();
  EXPECT_EQ(built.mtu, 256u);
  EXPECT_EQ(built.bandwidth_burst, 40000u);
  EXPECT_EQ(built.fec_rate, 0.25);
}

TEST(ExperimentSpec, PacketValidationRejectsBadGeometry) {
  // mtu must exceed the 20-byte fragment header.
  EXPECT_THROW((void)SpecBuilder().mtu(20).build(), std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().mtu(12).build(), std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().mtu(70000).build(),
               std::invalid_argument);
  EXPECT_NO_THROW((void)SpecBuilder().mtu(21).build());
  EXPECT_NO_THROW((void)SpecBuilder().mtu(0).build());  // off

  // Zero-rate buckets: a burst without a rate would never drain.
  EXPECT_THROW((void)SpecBuilder().bandwidth(0, 1000).build(),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("bandwidth=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("bandwidth=burst:1000"),
               std::invalid_argument);

  // FEC without fragmentation has nothing to repair.
  EXPECT_THROW((void)SpecBuilder().fec(2).build(), std::invalid_argument);
  EXPECT_THROW((void)SpecBuilder().mtu(256).fec(0, -0.5).build(),
               std::invalid_argument);
  EXPECT_NO_THROW((void)SpecBuilder().mtu(256).fec(2).build());

  // Malformed values and unknown subkeys fail loudly.
  EXPECT_THROW((void)ExperimentSpec::parse("mtu=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("bandwidth=rate:1,depth:9"),
               std::invalid_argument);
  EXPECT_THROW((void)ExperimentSpec::parse("fec=repair:1,q:2"),
               std::invalid_argument);
}

TEST(ExperimentSpec, PopulationArithmeticMatchesHistoricBenches) {
  // The benches historically used n/5-style integer division; the spec's
  // round-half-up must agree at every paper operating point.
  const auto publics = [](std::size_t nodes, double ratio) {
    ExperimentSpec s;
    s.nodes = nodes;
    s.ratio = ratio;
    return s.publics();
  };
  EXPECT_EQ(publics(5000, 0.2), 1000u);
  EXPECT_EQ(publics(1000, 0.2), 200u);
  EXPECT_EQ(publics(300, 0.2), 60u);
  EXPECT_EQ(publics(50, 0.2), 10u);
  EXPECT_EQ(publics(1000, 0.33), 330u);
  EXPECT_EQ(publics(1000, 0.05), 50u);
  EXPECT_EQ(publics(300, 1.0), 300u);
  EXPECT_EQ(publics(300, 0.0), 0u);

  ExperimentSpec s;
  s.nodes = 500;
  s.ratio = 0.2;
  EXPECT_EQ(s.privates(), 400u);
}

TEST(ExperimentSpec, DurationIsExactForSubMillisecondHorizons) {
  ExperimentSpec s;
  s.duration_s = 60.001;  // fig7b: measure 1 ms after the crash
  EXPECT_EQ(s.duration(), sim::sec(60) + sim::msec(1));
}

// The load-bearing guarantee behind the bench migration: the spec-built
// world replays the hand-built one event for event, so the recorded
// series match bit for bit.
TEST(Experiment, ReproducesHandBuiltWorldBitForBit) {
  const std::uint64_t seed = 4242;
  const auto duration = sim::sec(20);

  // Hand-built, exactly as the pre-registry fig benches did it.
  metrics::ErrorSeries manual;
  {
    core::CroupierConfig cfg;
    cfg.estimator.local_history = 10;
    cfg.estimator.neighbour_history = 25;
    World::Config wcfg;
    wcfg.seed = seed;
    wcfg.latency = World::LatencyKind::King;
    wcfg.clock_skew = 0.01;
    World world(wcfg, make_croupier_factory(cfg));
    schedule_poisson_joins(world, 10, net::NatConfig::open(), sim::msec(50));
    schedule_poisson_joins(world, 40, net::NatConfig::natted(),
                           sim::msec(13));
    EstimationRecorder recorder(world, {sim::sec(1), 2});
    recorder.start(sim::sec(1));
    world.simulator().run_until(duration);
    manual = recorder.series();
  }

  // Declarative.
  Experiment experiment(SpecBuilder()
                            .protocol("croupier:alpha=10,gamma=25")
                            .nodes(50)
                            .ratio(0.2)
                            .duration(20)
                            .record_estimation()
                            .build(),
                        seed);
  experiment.run();
  const auto& spec_series = experiment.estimation()->series();

  ASSERT_EQ(spec_series.size(), manual.size());
  ASSERT_FALSE(manual.empty());
  for (std::size_t i = 0; i < manual.size(); ++i) {
    EXPECT_EQ(spec_series[i].t_seconds, manual[i].t_seconds);
    EXPECT_EQ(spec_series[i].sample.avg_error, manual[i].sample.avg_error);
    EXPECT_EQ(spec_series[i].sample.max_error, manual[i].sample.max_error);
    EXPECT_EQ(spec_series[i].sample.truth, manual[i].sample.truth);
  }
}

TEST(Experiment, ChurnReplacesNodesAndKeepsPopulation) {
  Experiment experiment(SpecBuilder()
                            .protocol("croupier")
                            .nodes(60)
                            .ratio(0.2)
                            .instant_joins()
                            .churn(0.05, 5)
                            .duration(30)
                            .record_nothing()
                            .build(),
                        7);
  experiment.run();
  EXPECT_EQ(experiment.world().alive_count(), 60u);
  // 5%/round for ~25 rounds must have replaced a noticeable share: the
  // maximum live node id keeps growing as fresh nodes join.
  net::NodeId max_id = 0;
  for (const auto id : experiment.world().alive_ids()) {
    max_id = std::max(max_id, id);
  }
  EXPECT_GT(max_id, 80u);
}

TEST(Experiment, CatastropheKillsTheRequestedFraction) {
  Experiment experiment(SpecBuilder()
                            .protocol("croupier")
                            .nodes(100)
                            .ratio(0.2)
                            .instant_joins()
                            .catastrophe(0.6, 10)
                            .duration(10.001)
                            .record_nothing()
                            .build(),
                        3);
  experiment.run();
  EXPECT_EQ(experiment.world().alive_count(), 40u);
}

TEST(Experiment, CorrelatedFailureKillsTheRequestedFraction) {
  Experiment experiment(SpecBuilder()
                            .protocol("croupier")
                            .nodes(100)
                            .ratio(0.2)
                            .instant_joins()
                            .correlated_failure(
                                0.6, 10, ExperimentSpec::FailureCorr::Region)
                            .duration(10.001)
                            .record_nothing()
                            .build(),
                        3);
  experiment.run();
  EXPECT_EQ(experiment.world().alive_count(), 40u);
  EXPECT_EQ(experiment.scenario_stats().killed, 60u);
}

TEST(Experiment, ClassBiasedFailureSparesTheOtherClassUntilExhausted) {
  // 20 publics / 80 privates; a private-biased kill of 40% (40 nodes)
  // fits inside the private class, so every public survives.
  Experiment spare(SpecBuilder()
                       .protocol("croupier")
                       .nodes(100)
                       .ratio(0.2)
                       .instant_joins()
                       .correlated_failure(
                           0.4, 10, ExperimentSpec::FailureCorr::Private)
                       .duration(10.001)
                       .record_nothing()
                       .build(),
                   7);
  spare.run();
  EXPECT_EQ(spare.world().alive_count(), 60u);
  EXPECT_EQ(spare.world().count(net::NatType::Public), 20u);

  // A public-biased kill of 40% (40 nodes) exhausts the 20 publics and
  // spills the remaining quota into the privates.
  Experiment spill(SpecBuilder()
                       .protocol("croupier")
                       .nodes(100)
                       .ratio(0.2)
                       .instant_joins()
                       .correlated_failure(
                           0.4, 10, ExperimentSpec::FailureCorr::Public)
                       .duration(10.001)
                       .record_nothing()
                       .build(),
                   7);
  spill.run();
  EXPECT_EQ(spill.world().alive_count(), 60u);
  EXPECT_EQ(spill.world().count(net::NatType::Public), 0u);
}

TEST(Experiment, GraphRecordingProducesSeries) {
  Experiment experiment(SpecBuilder()
                            .protocol("cyclon")
                            .nodes(40)
                            .ratio(1.0)
                            .instant_joins()
                            .duration(21)
                            .record_graph(5)
                            .build(),
                        11);
  experiment.run();
  ASSERT_NE(experiment.graph_stats(), nullptr);
  EXPECT_EQ(experiment.estimation(), nullptr);
  ASSERT_GE(experiment.graph_stats()->series().size(), 4u);
  EXPECT_GT(experiment.graph_stats()->series().back().avg_path_length, 0.0);
}

TEST(ExperimentSpec, GraphSampledRoundTrips) {
  const auto spec = SpecBuilder()
                        .protocol("cyclon")
                        .nodes(500)
                        .record_graph_sampled(7.5)
                        .build();
  const auto text = spec.to_string();
  EXPECT_NE(text.find("record=graph-sampled"), std::string::npos) << text;
  EXPECT_EQ(ExperimentSpec::parse(text), spec) << text;
  EXPECT_EQ(ExperimentSpec::parse(text).to_string(), text);
  EXPECT_EQ(ExperimentSpec::parse("record=graph-sampled").record,
            ExperimentSpec::RecordKind::GraphSampled);
}

TEST(Experiment, GraphSampledRecordingProducesSeries) {
  Experiment experiment(SpecBuilder()
                            .protocol("cyclon")
                            .nodes(40)
                            .ratio(1.0)
                            .instant_joins()
                            .duration(21)
                            .record_graph_sampled(5)
                            .build(),
                        11);
  experiment.run();
  ASSERT_NE(experiment.graph_sampled(), nullptr);
  EXPECT_EQ(experiment.graph_stats(), nullptr);
  EXPECT_EQ(experiment.estimation(), nullptr);
  ASSERT_GE(experiment.graph_sampled()->series().size(), 4u);
  const auto& last = experiment.graph_sampled()->series().back();
  EXPECT_GT(last.avg_path_length, 0.0);
  EXPECT_EQ(last.population, 40u);
  EXPECT_GT(last.largest_component_fraction, 0.9);
}

}  // namespace
}  // namespace croupier::run
