// Tests for the summary-statistics utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/stats.hpp"

namespace croupier::metrics {
namespace {

TEST(Stats, SummaryOfEmpty) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummaryOfSingleton) {
  const std::vector<double> v{42.0};
  const auto s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.p50, 42.0);
}

TEST(Stats, SummaryHandComputed) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Stats, MedianOfOddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(summarize(odd).p50, 2.0);
  const std::vector<double> even{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(summarize(even).p50, 2.5);  // interpolated
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Stats, PercentileOfEmpty) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, HistogramBinsCorrectly) {
  const std::vector<double> v{0.5, 1.5, 1.6, 2.5, 3.5};
  const auto h = histogram(v, 0.0, 4.0, 4);
  EXPECT_EQ(h.counts, (std::vector<std::size_t>{1, 2, 1, 1}));
  EXPECT_EQ(h.outliers(), 0u);
}

TEST(Stats, HistogramExcludesAndCountsOutliers) {
  // Regression: out-of-range samples used to be clamped into the edge
  // bins, silently inflating the tails. They must be excluded from the
  // bins and reported separately.
  const std::vector<double> v{-5.0, 0.5, 10.0, 20.0};
  const auto h = histogram(v, 0.0, 4.0, 4);
  EXPECT_EQ(h.counts, (std::vector<std::size_t>{1, 0, 0, 0}));
  EXPECT_EQ(h.underflow, 1u);
  EXPECT_EQ(h.overflow, 2u);
  EXPECT_EQ(h.outliers(), 3u);
}

TEST(Stats, HistogramBoundaries) {
  // lo is in range (first bin); hi is not ([lo, hi) is half-open).
  const std::vector<double> v{0.0, 4.0};
  const auto h = histogram(v, 0.0, 4.0, 4);
  EXPECT_EQ(h.counts, (std::vector<std::size_t>{1, 0, 0, 0}));
  EXPECT_EQ(h.overflow, 1u);
  EXPECT_EQ(h.underflow, 0u);
}

TEST(Stats, HistogramNanCountsAsOverflow) {
  const std::vector<double> v{std::nan(""), 1.0};
  const auto h = histogram(v, 0.0, 4.0, 4);
  EXPECT_EQ(h.counts, (std::vector<std::size_t>{0, 1, 0, 0}));
  EXPECT_EQ(h.overflow, 1u);
}

TEST(Stats, KsDistanceIdentical) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ks_distance(a, a), 0.0);
}

TEST(Stats, KsDistanceDisjoint) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{10.0, 20.0};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(Stats, KsDistanceHandComputed) {
  // a: CDF steps at 1,2; b: CDF steps at 2,3. At x in [1,2): Fa=0.5,
  // Fb=0 -> gap 0.5.
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{2.0, 3.0};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.5);
}

TEST(Stats, KsDistanceSymmetric) {
  const std::vector<double> a{1.0, 5.0, 7.0, 9.0};
  const std::vector<double> b{2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), ks_distance(b, a));
}

TEST(Stats, KsDistanceEmptyEdge) {
  const std::vector<double> a{1.0};
  EXPECT_DOUBLE_EQ(ks_distance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(ks_distance(a, {}), 1.0);
}

TEST(Stats, ToDoublesConverts) {
  const std::vector<std::size_t> v{1, 2, 3};
  EXPECT_EQ(to_doubles(v), (std::vector<double>{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace croupier::metrics
