// The PSS contract, enforced uniformly across all five protocol
// implementations (Croupier, Cyclon, Gozar, Nylon, ARRG) with
// parameterized sweeps:
//   - views never contain the node itself or duplicate entries;
//   - view sizes never exceed their bounds;
//   - samples name nodes that exist;
//   - the overlay is connected after warm-up;
//   - the protocol keeps working after half the network restarts.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "test_util.hpp"

namespace croupier {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

struct ProtoCase {
  const char* name;
  bool needs_publics;  // NAT-aware protocols need a public population
};

run::ProtocolFactory make_factory(const std::string& name) {
  pss::PssConfig base;
  base.view_size = 6;
  base.shuffle_size = 3;
  if (name == "croupier") {
    core::CroupierConfig cfg;
    cfg.base = base;
    return run::make_croupier_factory(cfg);
  }
  if (name == "cyclon") return run::make_cyclon_factory(base);
  if (name == "gozar") {
    baselines::GozarConfig cfg;
    cfg.base = base;
    return run::make_gozar_factory(cfg);
  }
  if (name == "nylon") {
    baselines::NylonConfig cfg;
    cfg.base = base;
    return run::make_nylon_factory(cfg);
  }
  baselines::ArrgConfig cfg;
  cfg.base = base;
  return run::make_arrg_factory(cfg);
}

// NAT-oblivious protocols run all-public so their contract is testable.
bool mixed_population(const std::string& name) {
  return name == "croupier" || name == "gozar" || name == "nylon";
}

class PssContract : public ::testing::TestWithParam<const char*> {};

TEST_P(PssContract, ViewInvariantsHoldOverTime) {
  const std::string name = GetParam();
  run::World world(fast_world_config(11), make_factory(name));
  if (mixed_population(name)) {
    populate(world, 8, 24);
  } else {
    populate(world, 32, 0);
  }
  // Check invariants repeatedly, not just at the end.
  for (int checkpoint = 1; checkpoint <= 5; ++checkpoint) {
    world.simulator().run_until(sim::sec(checkpoint * 8));
    world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
      const auto neighbors = p.out_neighbors();
      std::set<net::NodeId> distinct;
      for (net::NodeId n : neighbors) {
        EXPECT_NE(n, id) << name << ": self in view";
        distinct.insert(n);
      }
      EXPECT_EQ(distinct.size(), neighbors.size())
          << name << ": duplicate view entries";
      // Croupier has two views of view_size each; others one.
      const std::size_t bound = name == "croupier" ? 12u : 6u;
      EXPECT_LE(neighbors.size(), bound) << name;
    });
  }
}

TEST_P(PssContract, SamplesNameExistingNodes) {
  const std::string name = GetParam();
  run::World world(fast_world_config(13), make_factory(name));
  if (mixed_population(name)) {
    populate(world, 8, 24);
  } else {
    populate(world, 32, 0);
  }
  world.simulator().run_until(sim::sec(25));
  for (net::NodeId id : world.alive_ids()) {
    auto* s = world.sampler(id);
    if (s == nullptr) continue;
    for (int i = 0; i < 10; ++i) {
      const auto peer = s->sample();
      ASSERT_TRUE(peer.has_value()) << name;
      EXPECT_NE(peer->id, id) << name << ": sampled self";
      EXPECT_TRUE(world.alive(peer->id)) << name << ": sampled ghost";
    }
  }
}

TEST_P(PssContract, OverlayConnectedAfterWarmup) {
  const std::string name = GetParam();
  run::World world(fast_world_config(17), make_factory(name));
  if (mixed_population(name)) {
    populate(world, 8, 24);
  } else {
    populate(world, 32, 0);
  }
  world.simulator().run_until(sim::sec(40));
  EXPECT_EQ(world.snapshot_overlay().largest_component(), 32u) << name;
}

TEST_P(PssContract, SurvivesHalfTheNetworkRestarting) {
  const std::string name = GetParam();
  run::World world(fast_world_config(19), make_factory(name));
  const bool mixed = mixed_population(name);
  if (mixed) {
    populate(world, 10, 30);
  } else {
    populate(world, 40, 0);
  }
  world.simulator().run_until(sim::sec(20));

  // Kill half of each class, then respawn the same counts.
  std::size_t killed_pub = 0;
  std::size_t killed_priv = 0;
  auto victims = world.alive_ids();  // copy
  for (net::NodeId id : victims) {
    if (world.type_of(id) == net::NatType::Public) {
      if (killed_pub < (mixed ? 5u : 20u)) {
        world.kill(id);
        ++killed_pub;
      }
    } else if (killed_priv < 15u) {
      world.kill(id);
      ++killed_priv;
    }
  }
  for (std::size_t i = 0; i < killed_pub; ++i) {
    world.spawn(net::NatConfig::open());
  }
  for (std::size_t i = 0; i < killed_priv; ++i) {
    world.spawn(net::NatConfig::natted());
  }

  world.simulator().run_until(sim::sec(70));
  EXPECT_EQ(world.alive_count(), 40u);
  const auto g = world.snapshot_overlay(/*usable_only=*/true);
  EXPECT_GE(g.largest_component_fraction(), 0.95) << name;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PssContract,
                         ::testing::Values("croupier", "cyclon", "gozar",
                                           "nylon", "arrg"));

}  // namespace
}  // namespace croupier
