// Pins the columnar ViewStore-backed PartialView to the seed's
// vector-of-structs semantics: a reference AoS implementation (a copy
// of the pre-refactor PartialView) runs the same operation sequences —
// with twin RNG streams where draws are involved — and every
// intermediate state must match descriptor-for-descriptor in slot
// order. Slot order is the byte-identity lever: identical order means
// identical wire payloads and identical downstream RNG draws, which is
// what keeps every bench's output unchanged across the refactor.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "pss/descriptor.hpp"
#include "pss/view.hpp"
#include "pss/view_store.hpp"
#include "sim/rng.hpp"

namespace croupier::pss {
namespace {

/// The seed's AoS PartialView, verbatim semantics: linear find,
/// max_element first-max for oldest/force_add/healer, repeated
/// first-max eviction in set_capacity, rng.sample for subsets.
template <typename Desc>
class RefView {
 public:
  explicit RefView(std::size_t capacity) : capacity_(capacity) {
    entries_.reserve(capacity);
  }

  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    while (entries_.size() > capacity_) {
      entries_.erase(first_max());
    }
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] const std::vector<Desc>& entries() const { return entries_; }

  void age_all() {
    for (auto& d : entries_) d.bump_age();
  }

  [[nodiscard]] std::optional<Desc> oldest() const {
    if (entries_.empty()) return std::nullopt;
    return *first_max();
  }

  bool remove(net::NodeId id) {
    const auto idx = find_index(id);
    if (!idx.has_value()) return false;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(*idx));
    return true;
  }

  bool add_if_room(const Desc& d) {
    if (full() || find_index(d.id).has_value()) return false;
    entries_.push_back(d);
    return true;
  }

  void force_add(const Desc& d) {
    if (auto idx = find_index(d.id); idx.has_value()) {
      if (d.age < entries_[*idx].age) entries_[*idx] = d;
      return;
    }
    if (!full()) {
      entries_.push_back(d);
      return;
    }
    *first_max() = d;
  }

  [[nodiscard]] std::vector<Desc> random_subset(std::size_t n,
                                                sim::RngStream& rng) const {
    return rng.sample(std::span<const Desc>(entries_), n);
  }

  [[nodiscard]] std::vector<Desc> random_subset_excluding(
      std::size_t n, net::NodeId excluded, sim::RngStream& rng) const {
    std::vector<Desc> pool;
    pool.reserve(entries_.size());
    for (const auto& d : entries_) {
      if (d.id != excluded) pool.push_back(d);
    }
    return rng.sample(std::span<const Desc>(pool), n);
  }

  void merge_healer(std::span<const Desc> received, net::NodeId self) {
    for (const auto& r : received) {
      if (r.id == self) continue;
      if (auto idx = find_index(r.id); idx.has_value()) {
        if (r.age < entries_[*idx].age) entries_[*idx] = r;
        continue;
      }
      if (!full()) {
        entries_.push_back(r);
        continue;
      }
      auto it = first_max();
      if (it->age > r.age) *it = r;
    }
  }

  void merge_swapper(std::span<const Desc> sent,
                     std::span<const Desc> received, net::NodeId self) {
    std::deque<net::NodeId> evictable;
    for (const auto& d : sent) evictable.push_back(d.id);
    for (const auto& r : received) {
      if (r.id == self) continue;
      if (auto idx = find_index(r.id); idx.has_value()) {
        if (r.age < entries_[*idx].age) entries_[*idx] = r;
        continue;
      }
      if (!full()) {
        entries_.push_back(r);
        continue;
      }
      bool placed = false;
      while (!evictable.empty() && !placed) {
        const net::NodeId victim = evictable.front();
        evictable.pop_front();
        if (auto vidx = find_index(victim); vidx.has_value()) {
          entries_[*vidx] = r;
          placed = true;
        }
      }
    }
  }

 private:
  [[nodiscard]] std::optional<std::size_t> find_index(net::NodeId id) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) return i;
    }
    return std::nullopt;
  }

  [[nodiscard]] auto first_max() { return first_max_impl(entries_); }
  [[nodiscard]] auto first_max() const { return first_max_impl(entries_); }
  template <typename V>
  [[nodiscard]] static auto first_max_impl(V& v) {
    return std::max_element(v.begin(), v.end(),
                            [](const Desc& a, const Desc& b) {
                              return a.age < b.age;
                            });
  }

  std::size_t capacity_;
  std::vector<Desc> entries_;
};

NodeDescriptor desc(net::NodeId id, std::uint16_t age,
                    net::NatType nat = net::NatType::Public) {
  return NodeDescriptor{id, nat, age};
}

net::NatType nat_of(std::uint64_t bits) {
  return bits % 2 == 0 ? net::NatType::Public : net::NatType::Private;
}

/// Asserts slot-order equality between the store-backed view and the
/// reference — the property every downstream byte depends on.
void expect_same(const PartialView<NodeDescriptor>& v,
                 const RefView<NodeDescriptor>& ref, const char* where) {
  ASSERT_EQ(v.size(), ref.size()) << where;
  const auto entries = v.entries();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(entries[i], ref.entries()[i]) << where << " slot " << i;
  }
  const auto v_old = v.oldest();
  const auto r_old = ref.oldest();
  ASSERT_EQ(v_old.has_value(), r_old.has_value()) << where;
  if (v_old.has_value()) {
    EXPECT_EQ(*v_old, *r_old) << where;
  }
}

TEST(ViewStoreEquivalence, RandomOperationMix) {
  // Three generator seeds x a long op mix, covering every PartialView
  // mutation plus capacity shrink and RNG-drawing subsets.
  for (std::uint64_t run = 1; run <= 3; ++run) {
    sim::RngStream ops(run * 0x9E37);
    sim::RngStream rng_a(run * 0xC0FFEE);
    sim::RngStream rng_b(run * 0xC0FFEE);  // twin: must stay in lockstep
    PartialView<NodeDescriptor> v(8);
    RefView<NodeDescriptor> ref(8);

    for (int step = 0; step < 2000; ++step) {
      const auto id = static_cast<net::NodeId>(ops.uniform(24) + 1);
      const auto age = static_cast<std::uint16_t>(ops.uniform(6));
      const auto d = desc(id, age, nat_of(ops.uniform(3)));
      switch (ops.uniform(9)) {
        case 0:
          EXPECT_EQ(v.add_if_room(d), ref.add_if_room(d));
          break;
        case 1:
          v.force_add(d);
          ref.force_add(d);
          break;
        case 2:
          EXPECT_EQ(v.remove(id), ref.remove(id));
          break;
        case 3:
          v.age_all();
          ref.age_all();
          break;
        case 4: {
          const auto cap = ops.uniform(8) + 1;
          v.set_capacity(cap);
          ref.set_capacity(cap);
          break;
        }
        case 5: {
          const auto n = ops.uniform(6);
          EXPECT_EQ(v.random_subset(n, rng_a),
                    ref.random_subset(n, rng_b));
          break;
        }
        case 6: {
          const auto n = ops.uniform(6);
          EXPECT_EQ(v.random_subset_excluding(n, id, rng_a),
                    ref.random_subset_excluding(n, id, rng_b));
          break;
        }
        case 7: {
          std::vector<NodeDescriptor> sent =
              v.random_subset(3, rng_a);
          EXPECT_EQ(sent, ref.random_subset(3, rng_b));
          std::vector<NodeDescriptor> received;
          for (std::size_t k = 0; k < 4; ++k) {
            received.push_back(
                desc(static_cast<net::NodeId>(ops.uniform(24) + 1),
                     static_cast<std::uint16_t>(ops.uniform(6)),
                     nat_of(ops.uniform(3))));
          }
          v.merge_swapper(sent, received, /*self=*/5);
          ref.merge_swapper(sent, received, /*self=*/5);
          break;
        }
        default: {
          std::vector<NodeDescriptor> received;
          for (std::size_t k = 0; k < 4; ++k) {
            received.push_back(
                desc(static_cast<net::NodeId>(ops.uniform(24) + 1),
                     static_cast<std::uint16_t>(ops.uniform(6)),
                     nat_of(ops.uniform(3))));
          }
          v.merge_healer(received, /*self=*/5);
          ref.merge_healer(received, /*self=*/5);
          break;
        }
      }
      expect_same(v, ref, "after step");
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(ViewStoreEquivalence, ForceAddTieBreaksOnFirstMax) {
  // Several slots share the max age; the seed replaced the *first* of
  // them (max_element with strict less). Pin that tie-break.
  PartialView<NodeDescriptor> v(3);
  RefView<NodeDescriptor> ref(3);
  for (const auto& d : {desc(1, 7), desc(2, 7), desc(3, 7)}) {
    v.force_add(d);
    ref.force_add(d);
  }
  v.force_add(desc(9, 0));
  ref.force_add(desc(9, 0));
  expect_same(v, ref, "first tie-break");
  EXPECT_EQ(v.entries()[0].id, 9u);  // slot 0 held the first max

  v.force_add(desc(10, 0));
  ref.force_add(desc(10, 0));
  expect_same(v, ref, "second tie-break");
  EXPECT_EQ(v.entries()[1].id, 10u);
}

TEST(ViewStoreEquivalence, SetCapacityShrinkMatchesRepeatedFirstMax) {
  // The store shrinks in one pass (k largest by age, ties by earliest
  // slot); the seed looped remove-first-max. Same survivors, same order.
  PartialView<NodeDescriptor> v(8);
  RefView<NodeDescriptor> ref(8);
  const std::uint16_t ages[] = {3, 9, 1, 9, 4, 9, 2, 0};
  for (std::size_t i = 0; i < std::size(ages); ++i) {
    const auto d = desc(static_cast<net::NodeId>(i + 1), ages[i]);
    v.add_if_room(d);
    ref.add_if_room(d);
  }
  v.set_capacity(3);
  ref.set_capacity(3);
  expect_same(v, ref, "shrink to 3");
  v.set_capacity(1);
  ref.set_capacity(1);
  expect_same(v, ref, "shrink to 1");
}

TEST(ViewStoreEquivalence, AgeSaturationKeepsOldestStable) {
  // Saturated ages tie at 0xffff: after bump_ages the first saturated
  // slot must win, exactly as max_element did.
  PartialView<NodeDescriptor> v(4);
  RefView<NodeDescriptor> ref(4);
  for (const auto& d : {desc(1, 0xfffe), desc(2, 0xffff), desc(3, 0xfffd)}) {
    v.add_if_room(d);
    ref.add_if_room(d);
  }
  for (int i = 0; i < 4; ++i) {
    v.age_all();
    ref.age_all();
    expect_same(v, ref, "saturating bump");
  }
  EXPECT_EQ(v.oldest()->id, 1u);  // 1 and 2 both saturated; 1 is first
}

TEST(ViewStore, ArenaBlocksAreReusedAcrossViews) {
  ViewArena arena;
  {
    ViewStore<NodeDescriptor> a(8, &arena);
    for (net::NodeId id = 1; id <= 8; ++id) a.push_back(desc(id, 0));
  }
  const auto after_first = arena.stats();
  EXPECT_EQ(after_first.live_blocks, 0u);
  EXPECT_GE(after_first.slab_bytes, after_first.live_bytes);
  {
    ViewStore<NodeDescriptor> b(8, &arena);
    b.push_back(desc(42, 3));
    const auto live = arena.stats();
    EXPECT_EQ(live.live_blocks, 1u);
    EXPECT_GE(live.reuses, 1u);  // same size class: the freed block
    EXPECT_EQ(live.slab_count, after_first.slab_count);  // no new slab
    EXPECT_EQ(b.id_at(0), 42u);
    EXPECT_EQ(b.age_at(0), 3u);
    EXPECT_EQ(b.nat_at(0), net::NatType::Public);
  }
  EXPECT_EQ(arena.stats().live_blocks, 0u);
}

TEST(ViewStore, NatColumnRoundTripsAllClasses) {
  // 9 slots across 3 packed bytes (4 classes per byte), alternating
  // classes so neighbouring 2-bit lanes would corrupt each other if the
  // shifts were off.
  ViewStore<NodeDescriptor> s(9);
  const net::NatType kinds[] = {net::NatType::Public, net::NatType::Private};
  for (net::NodeId id = 0; id < 9; ++id) {
    s.push_back(desc(id + 1, static_cast<std::uint16_t>(id), kinds[id % 2]));
  }
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(s.nat_at(i), kinds[i % 2]) << "slot " << i;
    EXPECT_EQ(s.get(i).nat_type, kinds[i % 2]) << "slot " << i;
  }
}

TEST(ViewStore, SlotIndexSurvivesGrowthAndErase) {
  ViewStore<NodeDescriptor> s(2);
  for (net::NodeId id = 1; id <= 40; ++id) {
    s.reserve(static_cast<std::size_t>(id));
    s.push_back(desc(id, static_cast<std::uint16_t>(id)));
  }
  for (net::NodeId id = 1; id <= 40; ++id) {
    const auto slot = s.slot_of(id);
    ASSERT_TRUE(slot.has_value()) << id;
    EXPECT_EQ(s.id_at(*slot), id);
  }
  // Erase every odd id; the evens must keep resolving.
  for (net::NodeId id = 1; id <= 40; id += 2) {
    const auto slot = s.slot_of(id);
    ASSERT_TRUE(slot.has_value());
    s.erase_at(*slot);
  }
  for (net::NodeId id = 1; id <= 40; ++id) {
    EXPECT_EQ(s.slot_of(id).has_value(), id % 2 == 0) << id;
  }
}

}  // namespace
}  // namespace croupier::pss
