// Latency model tests: determinism, symmetry, distribution shape of the
// synthetic King-like model.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/latency.hpp"

namespace croupier::net {
namespace {

using sim::msec;

TEST(ConstantLatency, AlwaysSame) {
  ConstantLatency m(msec(42));
  sim::RngStream rng(1);
  EXPECT_EQ(m.sample(1, 2, rng), msec(42));
  EXPECT_EQ(m.sample(9, 7, rng), msec(42));
}

TEST(UniformLatency, WithinBounds) {
  UniformLatency m(msec(10), msec(20));
  sim::RngStream rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto d = m.sample(1, 2, rng);
    EXPECT_GE(d, msec(10));
    EXPECT_LE(d, msec(20));
  }
}

TEST(KingLatency, BaseIsDeterministic) {
  KingLatencyModel a(123);
  KingLatencyModel b(123);
  for (NodeId i = 0; i < 50; ++i) {
    EXPECT_EQ(a.base_latency(i, i + 1), b.base_latency(i, i + 1));
  }
}

TEST(KingLatency, BaseIsSymmetric) {
  KingLatencyModel m(7);
  for (NodeId i = 0; i < 50; ++i) {
    EXPECT_EQ(m.base_latency(i, i + 17), m.base_latency(i + 17, i));
  }
}

TEST(KingLatency, DifferentSeedsGiveDifferentMaps) {
  KingLatencyModel a(1);
  KingLatencyModel b(2);
  int distinct = 0;
  for (NodeId i = 0; i < 50; ++i) {
    if (a.base_latency(i, i + 1) != b.base_latency(i, i + 1)) ++distinct;
  }
  EXPECT_GT(distinct, 40);
}

TEST(KingLatency, WithinClampBounds) {
  KingLatencyModel::Params p;
  KingLatencyModel m(5, p);
  sim::RngStream rng(1);
  for (NodeId i = 0; i < 500; ++i) {
    const auto d = m.sample(i, i + 31, rng);
    EXPECT_GE(d, p.min_latency);
    EXPECT_LE(d, p.max_latency);
  }
}

TEST(KingLatency, MedianNearConfigured) {
  KingLatencyModel m(99);
  std::vector<sim::Duration> samples;
  for (NodeId i = 0; i < 4000; ++i) {
    samples.push_back(m.base_latency(i, 100000 + i));
  }
  std::sort(samples.begin(), samples.end());
  const double median_ms =
      static_cast<double>(samples[samples.size() / 2]) / 1000.0;
  // Configured median is 77 ms; the log-normal sampling should land close.
  EXPECT_NEAR(median_ms, 77.0, 8.0);
}

TEST(KingLatency, HeavyRightTail) {
  KingLatencyModel m(99);
  std::vector<double> ms;
  for (NodeId i = 0; i < 4000; ++i) {
    ms.push_back(static_cast<double>(m.base_latency(i, 200000 + i)) / 1000.0);
  }
  std::sort(ms.begin(), ms.end());
  const double median = ms[ms.size() / 2];
  const double p95 = ms[static_cast<std::size_t>(ms.size() * 0.95)];
  // Log-normal with sigma 0.56: p95/median = exp(1.645*0.56) ~ 2.5.
  EXPECT_GT(p95 / median, 1.8);
}

TEST(KingLatency, JitterPerturbsAroundBase) {
  KingLatencyModel::Params p;
  p.jitter_fraction = 0.1;
  KingLatencyModel m(3, p);
  sim::RngStream rng(4);
  const auto base = m.base_latency(10, 20);
  for (int i = 0; i < 200; ++i) {
    const auto d = m.sample(10, 20, rng);
    EXPECT_GE(static_cast<double>(d), static_cast<double>(base) * 0.89);
    EXPECT_LE(static_cast<double>(d), static_cast<double>(base) * 1.11);
  }
}

TEST(KingLatency, ZeroJitterReturnsBaseExactly) {
  KingLatencyModel::Params p;
  p.jitter_fraction = 0.0;
  KingLatencyModel m(3, p);
  sim::RngStream rng(4);
  EXPECT_EQ(m.sample(10, 20, rng), m.base_latency(10, 20));
}

TEST(KingLatency, SelfLatencyIsMinimal) {
  KingLatencyModel::Params p;
  KingLatencyModel m(3, p);
  EXPECT_EQ(m.base_latency(5, 5), p.min_latency);
}

TEST(CoordinateLatency, PositionsDeterministicAndInUnitSquare) {
  CoordinateLatencyModel a(5);
  CoordinateLatencyModel b(5);
  for (NodeId i = 0; i < 100; ++i) {
    const auto [x, y] = a.position(i);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
    EXPECT_EQ(a.position(i), b.position(i));
  }
}

TEST(CoordinateLatency, SymmetricBase) {
  CoordinateLatencyModel m(7);
  for (NodeId i = 0; i < 50; ++i) {
    EXPECT_EQ(m.base_latency(i, i + 13), m.base_latency(i + 13, i));
  }
}

TEST(CoordinateLatency, RespectsTriangleInequality) {
  // Euclidean embedding + constant last-mile: lat(a,c) <= lat(a,b) +
  // lat(b,c) + last_mile (the extra last-mile term of the middle hop).
  CoordinateLatencyModel::Params p;
  p.jitter_fraction = 0.0;
  CoordinateLatencyModel m(11, p);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 20; b < 30; ++b) {
      for (NodeId c = 30; c < 40; ++c) {
        EXPECT_LE(m.base_latency(a, c),
                  m.base_latency(a, b) + m.base_latency(b, c));
      }
    }
  }
}

TEST(CoordinateLatency, ClustersCreateBimodalLatencies) {
  // Intra-continent pairs should be clearly faster than inter-continent
  // pairs; check that both short and long latencies occur.
  CoordinateLatencyModel::Params p;
  p.jitter_fraction = 0.0;
  CoordinateLatencyModel m(13, p);
  sim::Duration shortest = ~0ull;
  sim::Duration longest = 0;
  for (NodeId i = 0; i < 200; ++i) {
    const auto d = m.base_latency(i, i + 101);
    shortest = std::min(shortest, d);
    longest = std::max(longest, d);
  }
  EXPECT_LT(shortest, msec(30));
  EXPECT_GT(longest, msec(60));
}

TEST(CoordinateLatency, JitterBounded) {
  CoordinateLatencyModel m(17);
  sim::RngStream rng(1);
  const auto base = m.base_latency(1, 2);
  for (int i = 0; i < 100; ++i) {
    const auto d = m.sample(1, 2, rng);
    EXPECT_GE(static_cast<double>(d), static_cast<double>(base) * 0.89);
    EXPECT_LE(static_cast<double>(d), static_cast<double>(base) * 1.11);
  }
}

}  // namespace
}  // namespace croupier::net
