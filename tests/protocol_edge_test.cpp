// Edge-case tests that drive protocol instances directly (no World):
// malformed/unexpected messages, duplicate deliveries, punch-chain hop
// caps, relay dedup — the inputs a deployed UDP service actually sees.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/gozar.hpp"
#include "baselines/nylon.hpp"
#include "core/croupier.hpp"
#include "net/latency.hpp"

namespace croupier {
namespace {

// Minimal harness: N protocol instances attached to one network.
class ProtoHarness {
 public:
  explicit ProtoHarness(double loss = 0.0) {
    network_ = std::make_unique<net::Network>(
        sim_, std::make_unique<net::ConstantLatency>(sim::msec(10)),
        sim::RngStream(3), loss);
  }

  template <typename Proto, typename Cfg>
  Proto* add(net::NodeId id, const net::NatConfig& nat, const Cfg& cfg) {
    auto shim = std::make_unique<Shim>();
    network_->attach(id, nat, *shim);
    pss::PeerSampler::Context ctx;
    ctx.self = id;
    ctx.nat_type = nat.nat_type();
    ctx.network = network_.get();
    ctx.bootstrap = &bootstrap_;
    ctx.rng = sim::RngStream(1000 + id);
    auto proto = std::make_unique<Proto>(std::move(ctx), cfg);
    Proto* raw = proto.get();
    shim->proto = std::move(proto);
    bootstrap_.add(id, nat.nat_type());
    shims_.push_back(std::move(shim));
    return raw;
  }

  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return *network_; }

 private:
  struct Shim final : net::MessageHandler {
    std::unique_ptr<pss::PeerSampler> proto;
    void on_message(net::NodeId from, const net::Message& msg) override {
      proto->on_message(from, msg);
    }
  };

  sim::Simulator sim_;
  net::BootstrapServer bootstrap_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Shim>> shims_;
};

core::CroupierConfig ccfg() {
  core::CroupierConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  return cfg;
}

struct UnknownMsg final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return 0x7E; }
  [[nodiscard]] const char* name() const override { return "unknown"; }
  void encode(wire::Writer& w) const override { w.u8(type()); }
};

TEST(CroupierEdge, IgnoresUnknownMessageType) {
  ProtoHarness h;
  auto* a = h.add<core::Croupier>(1, net::NatConfig::open(), ccfg());
  auto* b = h.add<core::Croupier>(2, net::NatConfig::open(), ccfg());
  a->init();
  b->init();
  h.network().send(1, 2, std::make_shared<UnknownMsg>());
  h.sim().run();
  EXPECT_TRUE(b->public_view().contains(1));  // state undisturbed
}

TEST(CroupierEdge, ResponseWithoutPendingStillMerges) {
  ProtoHarness h;
  auto* a = h.add<core::Croupier>(1, net::NatConfig::open(), ccfg());
  h.add<core::Croupier>(2, net::NatConfig::open(), ccfg());
  a->init();
  // Unsolicited response: no pending entry, merge with empty sent-list.
  auto res = std::make_shared<core::CroupierShuffleRes>();
  res->pub = {{3, net::NatType::Public, 1}};
  h.network().send(2, 1, std::move(res));
  h.sim().run();
  EXPECT_TRUE(a->public_view().contains(3));
}

TEST(CroupierEdge, DuplicateResponseIsHarmless) {
  ProtoHarness h;
  auto* a = h.add<core::Croupier>(1, net::NatConfig::open(), ccfg());
  h.add<core::Croupier>(2, net::NatConfig::open(), ccfg());
  a->init();
  for (int i = 0; i < 2; ++i) {
    auto res = std::make_shared<core::CroupierShuffleRes>();
    res->pub = {{3, net::NatType::Public, 1}};
    res->estimates = {{7, 1, 4, 0}};
    h.network().send(2, 1, std::move(res));
  }
  h.sim().run();
  EXPECT_TRUE(a->public_view().contains(3));
  EXPECT_EQ(a->estimator().cached_count(), 1u);  // deduped by origin
}

TEST(CroupierEdge, PrivateNodeDropsMisdirectedRequest) {
  ProtoHarness h;
  h.add<core::Croupier>(1, net::NatConfig::open(), ccfg());
  auto* b = h.add<core::Croupier>(2, net::NatConfig::natted(), ccfg());
  b->init();
  // Open b's NAT toward 1 so the request even arrives.
  b->round();
  h.sim().run();
  auto req = std::make_shared<core::CroupierShuffleReq>();
  req->sender = pss::NodeDescriptor{1, net::NatType::Public, 0};
  h.network().send(1, 2, std::move(req));
  h.sim().run();
  // No crash, no response counted into its estimator.
  EXPECT_FALSE(b->estimator().local_estimate().has_value());
}

TEST(CroupierEdge, StaleEstimatesOnWireAreRejected) {
  ProtoHarness h;
  auto* a = h.add<core::Croupier>(1, net::NatConfig::open(), ccfg());
  a->init();
  auto res = std::make_shared<core::CroupierShuffleRes>();
  res->estimates = {{7, 1, 4, 200}};  // age 200 > gamma 50
  h.network().send(1, 1, std::move(res));  // self-send for delivery
  h.sim().run();
  EXPECT_EQ(a->estimator().cached_count(), 0u);
}

TEST(CroupierEdge, TailTargetRemovedEvenWhenResponseLost) {
  ProtoHarness h;
  auto* a = h.add<core::Croupier>(1, net::NatConfig::open(), ccfg());
  h.add<core::Croupier>(2, net::NatConfig::open(), ccfg());
  a->init();
  ASSERT_TRUE(a->public_view().contains(2));
  h.network().detach(2);  // target dies before the round
  a->round();
  h.sim().run();
  EXPECT_FALSE(a->public_view().contains(2));  // removed by tail selection
}

TEST(CroupierEdge, RebootstrapCountsWhenViewRunsDry) {
  ProtoHarness h;
  auto* a = h.add<core::Croupier>(1, net::NatConfig::open(), ccfg());
  // No init(): the view starts empty, so the first round re-bootstraps.
  a->round();
  EXPECT_EQ(a->rebootstrap_count(), 1u);
}

baselines::NylonConfig ncfg() {
  baselines::NylonConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  cfg.max_punch_hops = 4;
  return cfg;
}

TEST(NylonEdge, PunchReqBeyondHopCapIsDropped) {
  ProtoHarness h;
  auto* a = h.add<baselines::Nylon>(1, net::NatConfig::open(), ncfg());
  h.add<baselines::Nylon>(2, net::NatConfig::open(), ncfg());
  a->init();
  auto punch = std::make_shared<baselines::NylonPunchReq>();
  punch->initiator = 2;
  punch->target = 99;  // unknown target
  punch->hops = 4;     // at the cap
  const auto sent_before = h.network().meter().totals(1).msgs_sent;
  h.network().send(2, 1, std::move(punch));
  h.sim().run();
  // Node 1 must not forward anything.
  EXPECT_EQ(h.network().meter().totals(1).msgs_sent, sent_before);
}

TEST(NylonEdge, PunchForTargetSelfAnswersDirectly) {
  ProtoHarness h;
  auto* a = h.add<baselines::Nylon>(1, net::NatConfig::open(), ncfg());
  h.add<baselines::Nylon>(2, net::NatConfig::open(), ncfg());
  a->init();
  auto punch = std::make_shared<baselines::NylonPunchReq>();
  punch->initiator = 2;
  punch->target = 1;  // the receiver itself
  h.network().send(2, 1, std::move(punch));
  h.sim().run();
  // Node 1 responded with a PunchOpen to the initiator.
  EXPECT_GE(h.network().meter().totals(2).msgs_received, 1u);
}

struct NullHandler final : net::MessageHandler {
  void on_message(net::NodeId, const net::Message&) override {}
};

TEST(NylonEdge, RoutingTableBounded) {
  auto cfg = ncfg();
  cfg.routing_table_size = 8;
  ProtoHarness h;
  auto* a = h.add<baselines::Nylon>(1, net::NatConfig::open(), cfg);
  a->init();
  // Feed many responses, each teaching routes to fresh targets.
  NullHandler null_handler;
  for (net::NodeId origin = 100; origin < 130; ++origin) {
    auto res = std::make_shared<baselines::NylonShuffleRes>();
    for (net::NodeId t = 0; t < 3; ++t) {
      res->entries.push_back(
          {origin * 10 + t, net::NatType::Private, 1, net::kNilNode});
    }
    h.network().attach(origin, net::NatConfig::open(), null_handler);
    h.network().send(origin, 1, std::move(res));
    h.sim().run();  // deliver before the origin detaches
    h.network().detach(origin);
  }
  EXPECT_LE(a->routing_entry_count(), 8u);
  EXPECT_GT(a->routing_entry_count(), 0u);
}

baselines::GozarConfig gcfg() {
  baselines::GozarConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  return cfg;
}

TEST(GozarEdge, DuplicateRelayCopiesAnsweredOnce) {
  ProtoHarness h;
  auto* a = h.add<baselines::Gozar>(1, net::NatConfig::open(), gcfg());
  h.add<baselines::Gozar>(2, net::NatConfig::open(), gcfg());
  a->init();
  baselines::GozarShuffleReq req;
  req.sender = baselines::GozarDescriptor{2, net::NatType::Public, 0, {}};
  req.nonce = 42;
  const auto received_before = h.network().meter().totals(2).msgs_received;
  h.network().send(2, 1, std::make_shared<baselines::GozarShuffleReq>(req));
  h.network().send(2, 1, std::make_shared<baselines::GozarShuffleReq>(req));
  h.sim().run();
  // Exactly one response despite two copies of the same (sender, nonce).
  EXPECT_EQ(h.network().meter().totals(2).msgs_received,
            received_before + 1);
}

TEST(GozarEdge, DistinctNoncesAnsweredSeparately) {
  ProtoHarness h;
  auto* a = h.add<baselines::Gozar>(1, net::NatConfig::open(), gcfg());
  h.add<baselines::Gozar>(2, net::NatConfig::open(), gcfg());
  a->init();
  for (std::uint16_t nonce : {1, 2}) {
    baselines::GozarShuffleReq req;
    req.sender = baselines::GozarDescriptor{2, net::NatType::Public, 0, {}};
    req.nonce = nonce;
    h.network().send(2, 1,
                     std::make_shared<baselines::GozarShuffleReq>(req));
  }
  h.sim().run();
  EXPECT_EQ(h.network().meter().totals(2).msgs_received, 2u);
}

TEST(GozarEdge, RelayForwardsToFinalTarget) {
  ProtoHarness h;
  h.add<baselines::Gozar>(1, net::NatConfig::open(), gcfg());
  h.add<baselines::Gozar>(2, net::NatConfig::open(), gcfg());
  auto* c = h.add<baselines::Gozar>(3, net::NatConfig::natted(), gcfg());
  c->init();          // c pings its parents (node 1 and/or 2)
  h.sim().run();

  // Route a request to private node 3 via its parent.
  ASSERT_FALSE(c->parents().empty());
  const net::NodeId relay = c->parents().front();
  auto rel = std::make_shared<baselines::GozarRelayedReq>();
  rel->final_target = 3;
  rel->inner.sender =
      baselines::GozarDescriptor{2, net::NatType::Public, 0, {}};
  rel->inner.nonce = 7;
  h.network().send(2, relay, std::move(rel));
  h.sim().run();
  // The relayed request reached node 3 through its warm NAT mapping and 3
  // responded directly to the public initiator.
  EXPECT_GE(h.network().meter().totals(3).msgs_received, 1u);
  EXPECT_GE(h.network().meter().totals(2).msgs_received, 1u);
}

}  // namespace
}  // namespace croupier
