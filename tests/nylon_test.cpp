// Nylon baseline tests: RVP link lifecycle, hole punching, chain routing.
#include <gtest/gtest.h>

#include "baselines/nylon.hpp"
#include "test_util.hpp"

namespace croupier::baselines {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

NylonConfig small_cfg() {
  NylonConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  cfg.max_rvp_links = 10;
  cfg.keepalive_rounds = 3;
  cfg.rvp_ttl_rounds = 12;
  return cfg;
}

run::World make_world(std::uint64_t seed = 1, NylonConfig cfg = small_cfg()) {
  return run::World(fast_world_config(seed), run::make_nylon_factory(cfg));
}

TEST(Nylon, ExchangesCreateRvpLinks) {
  auto world = make_world();
  populate(world, 10, 0);
  world.simulator().run_until(sim::sec(10));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    EXPECT_GT(dynamic_cast<const Nylon&>(p).rvp_link_count(), 0u);
  });
}

TEST(Nylon, RvpTableBounded) {
  NylonConfig cfg = small_cfg();
  cfg.max_rvp_links = 4;
  auto world = make_world(3, cfg);
  populate(world, 20, 0);
  world.simulator().run_until(sim::sec(30));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    EXPECT_LE(dynamic_cast<const Nylon&>(p).rvp_link_count(), 4u);
  });
}

TEST(Nylon, TwinRunByteIdenticalTraffic) {
  // Twin-run regression for two determinism fixes: RVP/route eviction
  // breaks round ties on the lower id (not on hash iteration order) and
  // keepalives go out in ascending-id order. A tight table bound makes
  // eviction constant; same seed must meter identical traffic per node.
  auto run_once = [] {
    NylonConfig cfg = small_cfg();
    cfg.max_rvp_links = 4;  // force the eviction path constantly
    auto world = make_world(11, cfg);
    populate(world, 8, 16);
    world.simulator().run_until(sim::sec(40));
    std::vector<std::pair<net::NodeId, std::uint64_t>> out;
    for (const net::NodeId id : world.sorted_ids()) {
      out.emplace_back(id, world.network().meter().totals(id).bytes_total());
    }
    return out;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Nylon, HolePunchingReachesPrivateNodes) {
  auto world = make_world(5);
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(40));

  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& n = dynamic_cast<const Nylon&>(p);
    started += n.punches_started();
    completed += n.punches_completed();
  });
  EXPECT_GT(started, 0u);
  EXPECT_GT(completed, 0u);
  // Most punches succeed in a healthy static network.
  EXPECT_GE(completed * 10, started * 5);
}

TEST(Nylon, PrivateViewsFillViaPunching) {
  auto world = make_world(7);
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(40));
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    if (world.type_of(id) != net::NatType::Private) return;
    EXPECT_GE(dynamic_cast<const Nylon&>(p).view().size(), 3u);
  });
}

TEST(Nylon, PrivateToPrivateExchangesHappen) {
  // The defining Nylon capability: two NATted nodes gossip directly after
  // simultaneous-open punching.
  auto world = make_world(9);
  populate(world, 3, 17);
  world.simulator().run_until(sim::sec(40));
  std::size_t private_with_private_neighbor = 0;
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    if (world.type_of(id) != net::NatType::Private) return;
    const auto& n = dynamic_cast<const Nylon&>(p);
    for (const auto& d : n.view().entries()) {
      if (d.nat_type == net::NatType::Private) {
        ++private_with_private_neighbor;
        return;
      }
    }
  });
  EXPECT_GT(private_with_private_neighbor, 10u);
}

TEST(Nylon, LearnedFromTracksExchangePartner) {
  auto world = make_world(11);
  populate(world, 6, 6);
  world.simulator().run_until(sim::sec(20));
  world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
    const auto& n = dynamic_cast<const Nylon&>(p);
    for (const auto& d : n.view().entries()) {
      EXPECT_NE(d.learned_from, net::kNilNode);
      EXPECT_NE(d.learned_from, id) << "learned_from must be a peer";
    }
  });
}

TEST(Nylon, UsableEdgeRequiresChainHead) {
  auto world = make_world(13);
  populate(world, 4, 12);
  world.simulator().run_until(sim::sec(30));
  world.for_each_sampler([&](net::NodeId, pss::PeerSampler& p) {
    const auto& n = dynamic_cast<const Nylon&>(p);
    // Oracle: everyone dead. Nothing usable.
    EXPECT_TRUE(
        n.usable_neighbors([](net::NodeId) { return false; }).empty());
    // Oracle: everyone alive. All view edges usable.
    EXPECT_EQ(n.usable_neighbors([](net::NodeId) { return true; }).size(),
              n.view().size());
  });
}

TEST(Nylon, PunchReqRoundTrip) {
  NylonPunchReq m;
  m.initiator = 5;
  m.initiator_type = net::NatType::Private;
  m.target = 9;
  m.hops = 3;
  wire::Writer w;
  m.encode(w);
  wire::Reader r(w.data());
  const auto back = NylonPunchReq::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(back.initiator, 5u);
  EXPECT_EQ(back.initiator_type, net::NatType::Private);
  EXPECT_EQ(back.target, 9u);
  EXPECT_EQ(back.hops, 3u);
}

TEST(Nylon, KeepalivesGenerateTraffic) {
  auto world = make_world(15);
  populate(world, 10, 0);
  world.simulator().run_until(sim::sec(10));
  world.network().meter().reset();
  world.simulator().run_until(sim::sec(20));
  // Count keepalive messages: with 10 nodes / RVP links present, traffic
  // clearly exceeds the two shuffle messages per round per node.
  std::uint64_t msgs = 0;
  // detlint:allow(unordered-iter) order-insensitive sum over the meter map
  for (const auto& [id, t] : world.network().meter().per_node()) {
    msgs += t.msgs_sent;
  }
  // 10 nodes x 10 rounds x (1 shuffle + 1 response) = 200 baseline; RVP
  // keepalives must add visibly on top.
  EXPECT_GT(msgs, 260u);
}

TEST(Nylon, ConnectedOverlayOnMixedNetwork) {
  auto world = make_world(17);
  populate(world, 5, 20);
  world.simulator().run_until(sim::sec(40));
  EXPECT_EQ(world.snapshot_overlay().largest_component(), 25u);
}

}  // namespace
}  // namespace croupier::baselines
