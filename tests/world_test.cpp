// Runtime orchestration tests: node lifecycle, round scheduling, scenario
// processes (joins, churn, catastrophe), recorders.
#include <gtest/gtest.h>

#include "runtime/recorder.hpp"
#include "runtime/scenario.hpp"
#include "test_util.hpp"

namespace croupier::run {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

core::CroupierConfig proto_cfg() {
  core::CroupierConfig cfg;
  cfg.base.view_size = 5;
  cfg.base.shuffle_size = 3;
  return cfg;
}

World make_world(std::uint64_t seed = 1) {
  return World(fast_world_config(seed), make_croupier_factory(proto_cfg()));
}

TEST(World, SpawnAssignsDistinctIds) {
  auto world = make_world();
  const auto a = world.spawn(net::NatConfig::open());
  const auto b = world.spawn(net::NatConfig::natted());
  EXPECT_NE(a, b);
  EXPECT_TRUE(world.alive(a));
  EXPECT_TRUE(world.alive(b));
  EXPECT_EQ(world.alive_count(), 2u);
}

TEST(World, CountsAndRatio) {
  auto world = make_world();
  populate(world, 2, 8);
  EXPECT_EQ(world.count(net::NatType::Public), 2u);
  EXPECT_EQ(world.count(net::NatType::Private), 8u);
  EXPECT_DOUBLE_EQ(world.true_ratio(), 0.2);
}

TEST(World, KillRemovesEverywhere) {
  auto world = make_world();
  populate(world, 3, 3);
  const auto victim = world.alive_ids().front();
  world.kill(victim);
  EXPECT_FALSE(world.alive(victim));
  EXPECT_EQ(world.alive_count(), 5u);
  EXPECT_FALSE(world.network().attached(victim));
  EXPECT_EQ(world.sampler(victim), nullptr);
}

TEST(World, IdsNeverReused) {
  auto world = make_world();
  const auto a = world.spawn(net::NatConfig::open());
  world.kill(a);
  const auto b = world.spawn(net::NatConfig::open());
  EXPECT_NE(a, b);
}

TEST(World, RoundsExecuteAtRoundPeriod) {
  auto world = make_world();
  const auto id = world.spawn(net::NatConfig::open());
  world.simulator().run_until(sim::sec(10));
  // Phase in [0,1s), then one round per second: at t=10 the node has run
  // 9 or 10 rounds.
  EXPECT_GE(world.rounds_of(id), 9u);
  EXPECT_LE(world.rounds_of(id), 10u);
}

TEST(World, ClockSkewSpreadsRoundCounts) {
  auto cfg = fast_world_config(5);
  cfg.clock_skew = 0.05;
  World world(cfg, make_croupier_factory(proto_cfg()));
  populate(world, 20, 0);
  world.simulator().run_until(sim::sec(100));
  std::uint64_t lo = UINT64_MAX;
  std::uint64_t hi = 0;
  for (net::NodeId id : world.alive_ids()) {
    lo = std::min(lo, world.rounds_of(id));
    hi = std::max(hi, world.rounds_of(id));
  }
  EXPECT_GE(hi - lo, 3u);  // 5% skew over 100 rounds
  EXPECT_NEAR(static_cast<double>(hi), 100.0, 8.0);
}

TEST(World, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto world = make_world(42);
    populate(world, 5, 15);
    world.simulator().run_until(sim::sec(30));
    std::vector<double> est = world.ratio_estimates();
    return std::make_pair(world.simulator().events_processed(), est);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(World, SortedSnapshotBasisSurvivesChurn) {
  // Regression for a determinism fix: every published view (class_map,
  // for_each_sampler visit order, overlay vertex order) iterates the
  // ascending-id basis, never hash-table or swap-remove order. Kills
  // scramble alive_ids_'s internal order via swap-remove; the views must
  // not see that.
  auto world = make_world(7);
  populate(world, 8, 24);
  world.simulator().run_until(sim::sec(10));
  const auto ids0 = world.alive_ids();
  world.kill(ids0[1]);
  world.kill(ids0[5]);
  world.kill(ids0[9]);
  world.simulator().run_until(sim::sec(20));

  const auto sorted = world.sorted_ids();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_EQ(sorted.size(), world.alive_count());

  const auto classes = world.class_map();
  EXPECT_TRUE(std::is_sorted(
      classes.begin(), classes.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));

  std::vector<net::NodeId> visited;
  world.for_each_sampler(
      [&](net::NodeId id, pss::PeerSampler&) { visited.push_back(id); });
  EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end()));

  const auto overlay = world.snapshot_overlay();
  EXPECT_TRUE(std::is_sorted(overlay.ids().begin(), overlay.ids().end()));
}

TEST(World, TwinRunAggregatesAfterChurnBitIdentical) {
  // Twin-run regression: two same-seed runs through abrupt churn must
  // agree bit-for-bit on every float aggregate the recorders publish.
  auto run_once = [] {
    auto world = make_world(42);
    populate(world, 6, 18);
    world.simulator().run_until(sim::sec(15));
    const auto ids = world.alive_ids();
    world.kill(ids[2]);
    world.kill(ids[7]);
    world.simulator().run_until(sim::sec(30));
    return std::make_pair(world.ratio_estimates(), world.class_map());
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);  // exact double equality, not near
  EXPECT_EQ(a.second, b.second);
}

TEST(World, DifferentSeedsDiverge) {
  auto overlay_for = [](std::uint64_t seed) {
    auto world = make_world(seed);
    populate(world, 5, 15);
    world.simulator().run_until(sim::sec(30));
    // Flatten the overlay's adjacency as the divergence observable
    // (event *counts* can legitimately coincide under constant latency).
    std::vector<net::NodeId> edges;
    world.for_each_sampler([&](net::NodeId id, pss::PeerSampler& p) {
      for (net::NodeId n : p.out_neighbors()) {
        edges.push_back(id * 1000 + n);
      }
    });
    std::sort(edges.begin(), edges.end());
    return edges;
  };
  EXPECT_NE(overlay_for(1), overlay_for(999));
}

TEST(Scenario, PoissonJoinsAllArrive) {
  auto world = make_world(7);
  schedule_poisson_joins(world, 50, net::NatConfig::natted(), sim::msec(20));
  world.simulator().run_until(sim::sec(30));
  EXPECT_EQ(world.alive_count(), 50u);
}

TEST(Scenario, PoissonJoinsSpreadOverTime) {
  auto world = make_world(9);
  schedule_poisson_joins(world, 100, net::NatConfig::open(), sim::msec(100));
  world.simulator().run_until(sim::msec(100));
  const auto early = world.alive_count();
  EXPECT_LT(early, 100u);  // not all at once
  world.simulator().run_until(sim::sec(120));
  EXPECT_EQ(world.alive_count(), 100u);
}

TEST(Scenario, FixedJoinsExactCadence) {
  auto world = make_world(11);
  schedule_fixed_joins(world, 10, net::NatConfig::open(), sim::msec(42),
                       sim::sec(1));
  world.simulator().run_until(sim::sec(1));
  EXPECT_EQ(world.alive_count(), 1u);  // first joins exactly at start
  world.simulator().run_until(sim::sec(1) + sim::msec(42 * 9));
  EXPECT_EQ(world.alive_count(), 10u);
}

TEST(Scenario, CatastropheKillsRequestedFraction) {
  auto world = make_world(13);
  populate(world, 20, 80);
  schedule_catastrophe(world, sim::sec(5), 0.6);
  world.simulator().run_until(sim::sec(6));
  EXPECT_EQ(world.alive_count(), 40u);
}

TEST(Scenario, ChurnKeepsPopulationAndRatioStable) {
  auto world = make_world(15);
  populate(world, 10, 40);
  ChurnProcess churn(world, 0.05, net::NatConfig::open(),
                     net::NatConfig::natted());
  churn.start(sim::sec(5));
  world.simulator().run_until(sim::sec(60));
  EXPECT_EQ(world.alive_count(), 50u);
  EXPECT_DOUBLE_EQ(world.true_ratio(), 0.2);
  // ~5% of 50 nodes over ~55 rounds.
  EXPECT_NEAR(static_cast<double>(churn.replaced()), 0.05 * 50 * 55, 30.0);
}

TEST(Scenario, LowChurnAccumulatesFractions) {
  auto world = make_world(17);
  populate(world, 10, 10);
  ChurnProcess churn(world, 0.001, net::NatConfig::open(),
                     net::NatConfig::natted());
  churn.start(0);
  world.simulator().run_until(sim::sec(300));
  // 0.1%/round x 20 nodes x 300 rounds = ~6 replacements.
  EXPECT_GE(churn.replaced(), 3u);
  EXPECT_LE(churn.replaced(), 12u);
  EXPECT_EQ(world.alive_count(), 20u);
}

TEST(Recorder, EstimationSeriesSamplesOverTime) {
  auto world = make_world(19);
  populate(world, 5, 20);
  EstimationRecorder rec(world, {sim::sec(1), 2});
  rec.start(sim::sec(1));
  world.simulator().run_until(sim::sec(30));
  ASSERT_GE(rec.series().size(), 29u);
  EXPECT_DOUBLE_EQ(rec.series().front().sample.truth, 0.2);
  // Error should be sane (estimates live in [0,1]).
  for (const auto& p : rec.series()) {
    EXPECT_LE(p.sample.max_error, 1.0);
    EXPECT_GE(p.sample.avg_error, 0.0);
  }
  // After warm-up the population error must have shrunk.
  EXPECT_LT(rec.latest().sample.avg_error, 0.1);
}

TEST(Recorder, MinRoundsExcludesFreshNodes) {
  auto world = make_world(21);
  populate(world, 5, 5);
  // Before any rounds ran, min_rounds=2 filters everyone out.
  EXPECT_TRUE(world.ratio_estimates(2).empty());
  world.simulator().run_until(sim::sec(5));
  EXPECT_FALSE(world.ratio_estimates(2).empty());
}

TEST(Recorder, GraphStatsSeries) {
  auto world = make_world(23);
  populate(world, 20, 0);
  GraphStatsRecorder rec(world, {sim::sec(5), 0});
  rec.start(sim::sec(5));
  world.simulator().run_until(sim::sec(21));
  ASSERT_EQ(rec.series().size(), 4u);
  const auto& last = rec.series().back();
  EXPECT_EQ(last.nodes, 20u);
  EXPECT_GT(last.edges, 0u);
  EXPECT_GT(last.avg_path_length, 1.0);
  EXPECT_LT(last.avg_path_length, 10.0);
}

TEST(World, SnapshotUsableOnlyFiltersDeadTargets) {
  auto world = make_world(25);
  populate(world, 5, 15);
  world.simulator().run_until(sim::sec(20));
  // Kill half the privates; the usable snapshot must not reference them.
  std::vector<net::NodeId> victims;
  for (net::NodeId id : world.alive_ids()) {
    if (world.type_of(id) == net::NatType::Private && victims.size() < 7) {
      victims.push_back(id);
    }
  }
  for (net::NodeId v : victims) world.kill(v);
  const auto g = world.snapshot_overlay(/*usable_only=*/true);
  EXPECT_EQ(g.node_count(), 13u);
}

}  // namespace
}  // namespace croupier::run
