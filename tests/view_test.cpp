// PartialView tests: the tail/swapper/random-subset mechanics all four
// protocols share, including property sweeps over random operation mixes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pss/descriptor.hpp"
#include "pss/view.hpp"

namespace croupier::pss {
namespace {

NodeDescriptor desc(net::NodeId id, std::uint16_t age = 0) {
  return NodeDescriptor{id, net::NatType::Public, age};
}

TEST(PartialView, StartsEmpty) {
  PartialView<NodeDescriptor> v(5);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), 5u);
  EXPECT_FALSE(v.oldest().has_value());
}

TEST(PartialView, AddIfRoomRespectsCapacity) {
  PartialView<NodeDescriptor> v(2);
  EXPECT_TRUE(v.add_if_room(desc(1)));
  EXPECT_TRUE(v.add_if_room(desc(2)));
  EXPECT_FALSE(v.add_if_room(desc(3)));
  EXPECT_EQ(v.size(), 2u);
}

TEST(PartialView, AddIfRoomRejectsDuplicates) {
  PartialView<NodeDescriptor> v(5);
  EXPECT_TRUE(v.add_if_room(desc(1)));
  EXPECT_FALSE(v.add_if_room(desc(1)));
  EXPECT_EQ(v.size(), 1u);
}

TEST(PartialView, OldestPicksHighestAge) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1, 3));
  v.add_if_room(desc(2, 9));
  v.add_if_room(desc(3, 1));
  ASSERT_TRUE(v.oldest().has_value());
  EXPECT_EQ(v.oldest()->id, 2u);
}

TEST(PartialView, AgeAllIncrements) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1, 0));
  v.age_all();
  v.age_all();
  EXPECT_EQ(v.find(1)->age, 2u);
}

TEST(PartialView, AgeSaturates) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1, 0xffff));
  v.age_all();
  EXPECT_EQ(v.find(1)->age, 0xffffu);
}

TEST(PartialView, RemoveByIdReportsPresence) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1));
  EXPECT_TRUE(v.remove(1));
  EXPECT_FALSE(v.remove(1));
  EXPECT_TRUE(v.empty());
}

TEST(PartialView, ForceAddKeepsNewerOfDuplicate) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1, 7));
  v.force_add(desc(1, 2));  // fresher
  EXPECT_EQ(v.find(1)->age, 2u);
  v.force_add(desc(1, 9));  // staler: ignored
  EXPECT_EQ(v.find(1)->age, 2u);
}

TEST(PartialView, ForceAddEvictsOldestWhenFull) {
  PartialView<NodeDescriptor> v(2);
  v.add_if_room(desc(1, 9));
  v.add_if_room(desc(2, 1));
  v.force_add(desc(3, 0));
  EXPECT_FALSE(v.contains(1));  // oldest evicted
  EXPECT_TRUE(v.contains(2));
  EXPECT_TRUE(v.contains(3));
}

TEST(PartialView, RandomSubsetSizeAndMembership) {
  PartialView<NodeDescriptor> v(10);
  for (net::NodeId i = 1; i <= 10; ++i) v.add_if_room(desc(i));
  sim::RngStream rng(1);
  const auto sub = v.random_subset(4, rng);
  EXPECT_EQ(sub.size(), 4u);
  std::set<net::NodeId> ids;
  for (const auto& d : sub) {
    EXPECT_TRUE(v.contains(d.id));
    ids.insert(d.id);
  }
  EXPECT_EQ(ids.size(), 4u);  // distinct
}

TEST(PartialView, RandomSubsetCappedBySize) {
  PartialView<NodeDescriptor> v(10);
  v.add_if_room(desc(1));
  sim::RngStream rng(1);
  EXPECT_EQ(v.random_subset(5, rng).size(), 1u);
}

TEST(PartialView, RandomSubsetExcluding) {
  PartialView<NodeDescriptor> v(5);
  for (net::NodeId i = 1; i <= 5; ++i) v.add_if_room(desc(i));
  sim::RngStream rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    for (const auto& d : v.random_subset_excluding(4, 3, rng)) {
      EXPECT_NE(d.id, 3u);
    }
  }
}

TEST(PartialView, RandomEntryFromEmpty) {
  PartialView<NodeDescriptor> v(3);
  sim::RngStream rng(1);
  EXPECT_FALSE(v.random_entry(rng).has_value());
}

TEST(PartialView, SetCapacityShrinksByEvictingOldest) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1, 5));
  v.add_if_room(desc(2, 9));
  v.add_if_room(desc(3, 1));
  v.add_if_room(desc(4, 7));
  v.set_capacity(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.contains(3));  // youngest survive
  EXPECT_TRUE(v.contains(1));
}

TEST(MergeSwapper, FillsFreeSpace) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1));
  const std::vector<NodeDescriptor> recv{desc(2), desc(3)};
  v.merge_swapper({}, recv, /*self=*/99);
  EXPECT_EQ(v.size(), 3u);
}

TEST(MergeSwapper, NeverInsertsSelf) {
  PartialView<NodeDescriptor> v(5);
  const std::vector<NodeDescriptor> recv{desc(99), desc(2)};
  v.merge_swapper({}, recv, /*self=*/99);
  EXPECT_FALSE(v.contains(99));
  EXPECT_TRUE(v.contains(2));
}

TEST(MergeSwapper, KeepsNewerOfKnownNode) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1, 8));
  const std::vector<NodeDescriptor> recv{desc(1, 2)};
  v.merge_swapper({}, recv, 99);
  EXPECT_EQ(v.find(1)->age, 2u);
}

TEST(MergeSwapper, IgnoresStalerOfKnownNode) {
  PartialView<NodeDescriptor> v(5);
  v.add_if_room(desc(1, 2));
  const std::vector<NodeDescriptor> recv{desc(1, 8)};
  v.merge_swapper({}, recv, 99);
  EXPECT_EQ(v.find(1)->age, 2u);
}

TEST(MergeSwapper, FullViewEvictsExactlySentEntries) {
  PartialView<NodeDescriptor> v(3);
  v.add_if_room(desc(1));
  v.add_if_room(desc(2));
  v.add_if_room(desc(3));
  const std::vector<NodeDescriptor> sent{desc(1), desc(2)};
  const std::vector<NodeDescriptor> recv{desc(4), desc(5)};
  v.merge_swapper(sent, recv, 99);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.contains(3));  // not sent: kept
  EXPECT_TRUE(v.contains(4));
  EXPECT_TRUE(v.contains(5));
}

TEST(MergeSwapper, FullViewWithoutSentDropsReceived) {
  PartialView<NodeDescriptor> v(2);
  v.add_if_room(desc(1));
  v.add_if_room(desc(2));
  const std::vector<NodeDescriptor> recv{desc(3)};
  v.merge_swapper({}, recv, 99);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(3));
}

TEST(MergeSwapper, SentEntryAlreadyGoneFallsThrough) {
  PartialView<NodeDescriptor> v(2);
  v.add_if_room(desc(2));
  v.add_if_room(desc(3));
  // We claim to have sent node 1, but it is no longer in the view (a
  // concurrent merge replaced it); the next sent entry is used instead.
  const std::vector<NodeDescriptor> sent{desc(1), desc(2)};
  const std::vector<NodeDescriptor> recv{desc(4)};
  v.merge_swapper(sent, recv, 99);
  EXPECT_TRUE(v.contains(4));
  EXPECT_TRUE(v.contains(3));
  EXPECT_FALSE(v.contains(2));
}

TEST(MergeSwapper, DuplicateReceivedEntriesCollapse) {
  PartialView<NodeDescriptor> v(5);
  const std::vector<NodeDescriptor> recv{desc(1, 5), desc(1, 2)};
  v.merge_swapper({}, recv, 99);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.find(1)->age, 2u);  // second copy was newer
}

TEST(MergeHealer, FillsFreeSpaceAndKeepsNewer) {
  PartialView<NodeDescriptor> v(3);
  v.add_if_room(desc(1, 8));
  const std::vector<NodeDescriptor> recv{desc(1, 2), desc(2, 5)};
  v.merge_healer(recv, 99);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.find(1)->age, 2u);
  EXPECT_TRUE(v.contains(2));
}

TEST(MergeHealer, EvictsOldestWhenFull) {
  PartialView<NodeDescriptor> v(2);
  v.add_if_room(desc(1, 9));
  v.add_if_room(desc(2, 1));
  const std::vector<NodeDescriptor> recv{desc(3, 0)};
  v.merge_healer(recv, 99);
  EXPECT_FALSE(v.contains(1));  // oldest out
  EXPECT_TRUE(v.contains(2));
  EXPECT_TRUE(v.contains(3));
}

TEST(MergeHealer, KeepsOlderEntryOverStalerIncoming) {
  PartialView<NodeDescriptor> v(2);
  v.add_if_room(desc(1, 3));
  v.add_if_room(desc(2, 4));
  // Incoming descriptor is older than everything in the view: dropped.
  const std::vector<NodeDescriptor> recv{desc(3, 9)};
  v.merge_healer(recv, 99);
  EXPECT_FALSE(v.contains(3));
}

TEST(MergeHealer, NeverInsertsSelf) {
  PartialView<NodeDescriptor> v(3);
  const std::vector<NodeDescriptor> recv{desc(99, 0)};
  v.merge_healer(recv, 99);
  EXPECT_TRUE(v.empty());
}

TEST(MergePolicy, DispatchesToConfiguredPolicy) {
  PartialView<NodeDescriptor> swapper_view(1);
  PartialView<NodeDescriptor> healer_view(1);
  swapper_view.add_if_room(desc(1, 0));  // fresh
  healer_view.add_if_room(desc(1, 9));   // stale
  const std::vector<NodeDescriptor> sent;  // nothing sent
  const std::vector<NodeDescriptor> recv{desc(2, 1)};
  // Swapper with no sent entries drops the received descriptor...
  merge_by_policy<NodeDescriptor>(swapper_view, MergePolicy::Swapper, sent,
                                  recv, 99);
  EXPECT_FALSE(swapper_view.contains(2));
  // ...healer replaces the stale entry regardless.
  merge_by_policy<NodeDescriptor>(healer_view, MergePolicy::Healer, sent,
                                  recv, 99);
  EXPECT_TRUE(healer_view.contains(2));
}

// Property sweep: under arbitrary merge sequences the view never exceeds
// capacity, never contains self, and never holds duplicate ids.
class ViewMergeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViewMergeSweep, InvariantsHoldUnderRandomOps) {
  sim::RngStream rng(GetParam());
  PartialView<NodeDescriptor> v(8);
  const net::NodeId self = 1000;

  for (int step = 0; step < 300; ++step) {
    // Random received batch (ids 0..29, may include self and duplicates).
    std::vector<NodeDescriptor> recv;
    const std::size_t n = rng.uniform(6);
    for (std::size_t i = 0; i < n; ++i) {
      net::NodeId id = static_cast<net::NodeId>(rng.uniform(30));
      if (rng.chance(0.05)) id = self;
      recv.push_back(desc(id, static_cast<std::uint16_t>(rng.uniform(20))));
    }
    const auto sent = v.random_subset(rng.uniform(4), rng);
    v.merge_swapper(sent, recv, self);
    v.age_all();
    if (rng.chance(0.2) && !v.empty()) {
      v.remove(v.oldest()->id);
    }

    ASSERT_LE(v.size(), v.capacity());
    ASSERT_FALSE(v.contains(self));
    std::set<net::NodeId> ids;
    for (const auto& d : v.entries()) ids.insert(d.id);
    ASSERT_EQ(ids.size(), v.size()) << "duplicate descriptor ids";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewMergeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace croupier::pss
