// ScenarioProcess subsystem: the composable workload pipeline — flash
// crowds, correlated failures, churn quota-carry edge cases, and the
// uniform start/stop/stats lifecycle.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/scenario.hpp"
#include "runtime/spec.hpp"
#include "test_util.hpp"

namespace croupier::run {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

// Regression (PR 5): a churn quota carry accrued while a class was
// populated used to survive the class going extinct, burst-replacing the
// first node of that class to reappear.
TEST(Churn, CarryIsDroppedWhileAClassIsEmpty) {
  World world(fast_world_config(9), make_croupier_factory({}));
  for (int i = 0; i < 3; ++i) world.spawn(net::NatConfig::open());
  const auto lone_private = world.spawn(net::NatConfig::natted());

  ChurnProcess churn(world, 0.95, net::NatConfig::open(),
                     net::NatConfig::natted());
  churn.start(sim::sec(1));
  // First tick (t=1 s): the private carry accrues 0.95 — below quota, so
  // the lone private survives it.
  world.simulator().run_until(sim::msec(1500));
  ASSERT_TRUE(world.alive(lone_private));
  world.kill(lone_private);

  // Two ticks with zero privates: the stale 0.95 must be dropped, not
  // kept simmering.
  world.simulator().run_until(sim::msec(3500));
  const auto fresh = world.spawn(net::NatConfig::natted());
  // Next tick accrues only this tick's 0.95 — still below quota. With
  // the stale carry kept, it would reach 1.9 and replace `fresh`
  // immediately.
  world.simulator().run_until(sim::msec(4500));
  EXPECT_TRUE(world.alive(fresh));
  churn.stop();
}

TEST(FlashCrowd, RampSpreadsArrivalsAcrossTheWindow) {
  // 60 extra nodes over a 4 s window starting at t=5 s: the triangular
  // profile puts exactly half the arrivals in the first half-window.
  Experiment experiment(SpecBuilder()
                            .protocol("croupier")
                            .nodes(20)
                            .ratio(0.5)
                            .instant_joins()
                            .flash_crowd(30, 10, 5.0, 4.0)
                            .duration(10)
                            .record_nothing()
                            .build(),
                        17);
  experiment.run_until(sim::sec(5));
  EXPECT_EQ(experiment.world().alive_count(), 20u);  // surge not started
  experiment.run_until(sim::sec(7));                 // window midpoint
  EXPECT_EQ(experiment.world().alive_count(), 40u);  // exactly half in
  experiment.run_until(sim::sec(10));
  EXPECT_EQ(experiment.world().alive_count(), 60u);  // everyone arrived
  EXPECT_EQ(experiment.scenario_stats().spawned, 40u);
}

TEST(FlashCrowd, StopHaltsTheSurgeImmediately) {
  World world(fast_world_config(13), make_croupier_factory({}));
  populate(world, 5, 5);
  FlashCrowdProcess flash(world, 20, 0, sim::sec(10));
  flash.start(sim::sec(1));
  world.simulator().run_until(sim::sec(6));  // half the window elapsed
  EXPECT_EQ(flash.stats().spawned, 10u);
  flash.stop();
  flash.stop();  // idempotent
  world.simulator().run_until(sim::sec(20));
  EXPECT_EQ(flash.stats().spawned, 10u);  // queued arrivals were inert
  EXPECT_EQ(world.alive_count(), 20u);

  // Restart resumes the remaining crowd exactly once (no replay of the
  // 10 that already joined, no resurrection of the old inert arrivals).
  flash.start(sim::sec(30));
  world.simulator().run_until(sim::sec(45));
  EXPECT_EQ(flash.stats().spawned, 20u);
  EXPECT_EQ(world.alive_count(), 30u);
}

TEST(CorrelatedFailure, RegionCohortIsLatencyCompact) {
  auto cfg = fast_world_config(11);
  cfg.latency = World::LatencyKind::Coordinate;
  World world(cfg, make_croupier_factory({}));
  populate(world, 10, 40);
  const std::vector<net::NodeId> everyone = world.alive_ids();

  CorrelatedFailureProcess failure(world, 0.3,
                                   CorrelatedFailureProcess::Corr::Region);
  failure.start(sim::sec(5));
  world.simulator().run_until(sim::sec(5) + sim::msec(1));
  EXPECT_EQ(world.alive_count(), 35u);  // floor(0.3 * 50)
  EXPECT_EQ(failure.stats().killed, 15u);

  // The cohort is a latency neighbourhood: victims sit closer to each
  // other (in the model's deterministic metric) than the population at
  // large does on average.
  const auto& latency = world.network().latency_model();
  const auto mean_pairwise = [&latency](const std::vector<net::NodeId>& ids) {
    double sum = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      for (std::size_t j = i + 1; j < ids.size(); ++j) {
        sum += static_cast<double>(latency.base_latency(ids[i], ids[j]));
        ++pairs;
      }
    }
    return sum / static_cast<double>(pairs);
  };
  std::vector<net::NodeId> victims;
  for (const net::NodeId id : everyone) {
    if (!world.alive(id)) victims.push_back(id);
  }
  ASSERT_EQ(victims.size(), 15u);
  EXPECT_LT(mean_pairwise(victims), mean_pairwise(everyone));
}

TEST(CorrelatedFailure, UniformModeMatchesCatastropheSampling) {
  // Same seed, same fraction: the uniform cohort must replay the historic
  // schedule_catastrophe draw for draw.
  const auto survivors_with = [](bool historic) {
    World world(fast_world_config(21), make_croupier_factory({}));
    populate(world, 10, 40);
    CorrelatedFailureProcess failure(
        world, 0.5, CorrelatedFailureProcess::Corr::Uniform);
    if (historic) {
      schedule_catastrophe(world, sim::sec(5), 0.5);
    } else {
      failure.start(sim::sec(5));
    }
    world.simulator().run_until(sim::sec(5) + sim::msec(1));
    return world.alive_ids();
  };
  EXPECT_EQ(survivors_with(true), survivors_with(false));
}

// Restart contract: start() after stop() must not resurrect events of
// the stopped arming still sitting in the queue.
TEST(ScenarioLifecycle, CatastropheRestartDoesNotResurrectOldSchedule) {
  World world(fast_world_config(31), make_croupier_factory({}));
  populate(world, 5, 20);
  CatastropheProcess failure(world, 0.4);
  failure.start(sim::sec(5));
  world.simulator().run_until(sim::sec(1));
  failure.stop();
  failure.start(sim::sec(10));  // the t=5 events are still queued
  world.simulator().run_until(sim::sec(6));
  EXPECT_EQ(world.alive_count(), 25u);  // old schedule stayed dead
  world.simulator().run_until(sim::sec(10) + sim::msec(1));
  EXPECT_EQ(world.alive_count(), 15u);  // only the restart fired
  EXPECT_EQ(failure.stats().killed, 10u);
}

TEST(ScenarioLifecycle, JoinRestartDoesNotStackChains) {
  World world(fast_world_config(33), make_croupier_factory({}));
  auto join = JoinProcess::fixed(world, 10, net::NatConfig::natted(),
                                 sim::sec(1));
  join->start(0);
  world.simulator().run_until(sim::msec(2500));  // spawns at t=0, 1, 2 s
  EXPECT_EQ(join->stats().spawned, 3u);
  join->stop();
  join->start(sim::sec(5));
  // The zombie chain's tick at t=3 s must stay dead; the restarted
  // chain resumes the remaining quota at t=5 s.
  world.simulator().run_until(sim::msec(4500));
  EXPECT_EQ(join->stats().spawned, 3u);
  world.simulator().run_until(sim::sec(5) + sim::msec(100));
  EXPECT_EQ(join->stats().spawned, 4u);
  EXPECT_EQ(world.alive_count(), 4u);
}

TEST(ScenarioPipeline, ExperimentExposesItsProcesses) {
  Experiment experiment(SpecBuilder()
                            .protocol("croupier")
                            .nodes(40)
                            .ratio(0.25)
                            .flash_crowd(10, 10, 15.0, 2.0)
                            .churn(0.01, 10)
                            .correlated_failure(
                                0.2, 20, ExperimentSpec::FailureCorr::Private)
                            .duration(25)
                            .record_nothing()
                            .build(),
                        5);
  // Poisson pubs + poisson privs + flash + churn + failure.
  EXPECT_EQ(experiment.scenario().size(), 5u);
  experiment.run();
  const auto stats = experiment.scenario_stats();
  EXPECT_EQ(stats.spawned, 40u + 20u);   // joins + the full surge
  EXPECT_EQ(stats.killed, 12u);          // floor(0.2 * 60)
  EXPECT_GT(stats.replaced, 0u);
  EXPECT_EQ(experiment.world().alive_count(), 60u - 12u);
}

}  // namespace
}  // namespace croupier::run
