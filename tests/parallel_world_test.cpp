// The round-synchronous parallel engine's contract: byte-identical
// results to the sequential engine, for every worker count, on every
// workload shape the specs can express.
//
// These suites run the same seeded experiment under world_jobs = 1
// (sequential engine), 2 and 4 (parallel engine) and require exact
// (bitwise) equality of everything observable: recorder series, drop
// counters, traffic totals, event counts and the surviving population.
// Any divergence — a missed defer(), a non-deterministic merge order, a
// latency model undercutting its min_latency() — fails loudly here
// before it can corrupt a figure.
//
// Registered with the `thread` ctest label so CI's ThreadSanitizer job
// also runs the executor's worker handoff under TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/spec.hpp"
#include "sim/event_queue.hpp"
#include "sim/parallel_executor.hpp"
#include "sim/simulator.hpp"

namespace croupier {
namespace {

TEST(EventQueueAffinity, DefaultsToSerialAndPreservesFifoTieOrder) {
  sim::EventQueue q;
  std::vector<int> fired;
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(10, sim::Affinity{7}, [&] { fired.push_back(2); });
  q.schedule(5, sim::Affinity{3}, [&] { fired.push_back(3); });

  EXPECT_EQ(q.next_time(), 5u);
  EXPECT_EQ(q.next_affinity(), 3u);
  auto first = q.pop();
  EXPECT_EQ(first.affinity, 3u);
  first.fn();

  // Equal timestamps fire in scheduling order regardless of affinity.
  EXPECT_EQ(q.next_affinity(), sim::kSerialAffinity);
  q.pop().fn();
  EXPECT_EQ(q.next_affinity(), 7u);
  q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{3, 1, 2}));
}

TEST(SimulatorDefer, RunsImmediatelyOutsideParallelBatches) {
  sim::Simulator sim;
  bool ran = false;
  sim.defer([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ShardOf, IsAPureFunctionOfAffinityAndJobs) {
  for (sim::Affinity a : {1u, 2u, 17u, 5000u}) {
    EXPECT_EQ(sim::shard_of(a, 4), sim::shard_of(a, 4));
    EXPECT_LT(sim::shard_of(a, 4), 4u);
    EXPECT_EQ(sim::shard_of(a, 1), 0u);
  }
}

TEST(ParallelExecutorEngine, SameTimestampEventsMergeInScheduleOrder) {
  // Node-affine events sharing one timestamp go through the full
  // shard/merge machinery; their deferred effects must replay in
  // scheduling order whatever the worker count.
  for (std::size_t jobs : {1u, 4u}) {
    sim::Simulator sim;
    std::vector<int> effects;
    for (int i = 0; i < 8; ++i) {
      sim.schedule_at(100, static_cast<sim::Affinity>(i + 1),
                      [&sim, &effects, i] {
                        sim.defer([&effects, i] { effects.push_back(i); });
                      });
    }
    sim::ParallelExecutor engine(sim, {jobs, sim::msec(1)});
    engine.run_until(200);
    EXPECT_EQ(effects, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}))
        << "jobs=" << jobs;
    EXPECT_EQ(sim.events_processed(), 8u);
    EXPECT_EQ(sim.now(), 200u);
  }
}

/// Everything observable about one finished experiment, for exact
/// cross-engine comparison.
struct RunFingerprint {
  std::vector<double> series;  // flattened recorder output
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t nat_filtered = 0;
  std::uint64_t dead_receiver = 0;
  std::size_t alive = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t fragments_sent = 0;
  std::uint64_t fragments_lost = 0;
  std::uint64_t fragments_reassembled = 0;
  std::uint64_t fragments_expired = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t replaced = 0;      // eclipse respawns
  std::uint64_t reclassified = 0;  // natflap class flips

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_spec(const run::ExperimentSpec& spec, std::uint64_t seed,
                        std::size_t world_jobs) {
  run::Experiment experiment(spec, seed, world_jobs);
  experiment.run();
  RunFingerprint fp;
  if (experiment.estimation() != nullptr) {
    for (const auto& p : experiment.estimation()->series()) {
      fp.series.push_back(p.t_seconds);
      fp.series.push_back(p.sample.avg_error);
      fp.series.push_back(p.sample.max_error);
      fp.series.push_back(p.sample.truth);
      fp.series.push_back(static_cast<double>(p.sample.node_count));
    }
  }
  if (experiment.graph_stats() != nullptr) {
    for (const auto& p : experiment.graph_stats()->series()) {
      fp.series.push_back(p.t_seconds);
      fp.series.push_back(p.avg_path_length);
      fp.series.push_back(p.clustering_coefficient);
      fp.series.push_back(p.unreachable_fraction);
      fp.series.push_back(static_cast<double>(p.edges));
    }
  }
  if (experiment.randomness() != nullptr) {
    for (const auto& p : experiment.randomness()->series()) {
      fp.series.push_back(p.t_seconds);
      fp.series.push_back(p.chi2);
      fp.series.push_back(p.chi2_z);
      fp.series.push_back(p.repeat_ratio);
      fp.series.push_back(p.bias_ratio);
      fp.series.push_back(static_cast<double>(p.nodes));
      fp.series.push_back(static_cast<double>(p.edges_observed));
    }
  }
  const auto scenario = experiment.scenario_stats();
  fp.replaced = scenario.replaced;
  fp.reclassified = scenario.reclassified;
  run::World& world = experiment.world();
  fp.events = world.simulator().events_processed();
  const auto& drops = world.network().drops();
  fp.delivered = drops.delivered;
  fp.lost = drops.loss;
  fp.nat_filtered = drops.nat_filtered;
  fp.dead_receiver = drops.dead_receiver;
  fp.fragments_sent = drops.fragments_sent;
  fp.fragments_lost = drops.fragments_lost;
  fp.fragments_reassembled = drops.fragments_reassembled;
  fp.fragments_expired = drops.fragments_expired;
  fp.delivered_bytes = drops.delivered_bytes;
  fp.alive = world.alive_count();
  // detlint:allow(unordered-iter) order-insensitive sum over the meter map
  for (const auto& [node, totals] : world.network().meter().per_node()) {
    fp.bytes_total += totals.bytes_total();
  }
  return fp;
}

void expect_engine_equivalence(const run::ExperimentSpec& spec,
                               std::uint64_t seed) {
  const RunFingerprint sequential = run_spec(spec, seed, 1);
  ASSERT_FALSE(sequential.series.empty());
  for (std::size_t jobs : {2u, 4u}) {
    const RunFingerprint parallel = run_spec(spec, seed, jobs);
    // Element-wise first so a mismatch reports where, then the full
    // fingerprint for the counters.
    ASSERT_EQ(sequential.series.size(), parallel.series.size())
        << "world_jobs=" << jobs;
    for (std::size_t i = 0; i < sequential.series.size(); ++i) {
      ASSERT_EQ(sequential.series[i], parallel.series[i])
          << "world_jobs=" << jobs << " series index " << i;
    }
    EXPECT_TRUE(sequential == parallel) << "world_jobs=" << jobs;
  }
}

TEST(ParallelWorldDeterminism, CroupierPoissonJoins500Nodes) {
  // The ISSUE's acceptance shape: a 500-node croupier run, world-jobs 1
  // vs 4 byte-identical.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier:alpha=25,gamma=50")
                        .nodes(500)
                        .ratio(0.2)
                        .duration(60)
                        .build();
  expect_engine_equivalence(spec, 42);
}

TEST(ParallelWorldDeterminism, ChurnAndLoss) {
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(300)
                        .ratio(0.2)
                        .churn(0.02, 20.0)
                        .loss(0.05)
                        .duration(50)
                        .build();
  expect_engine_equivalence(spec, 7);
}

TEST(ParallelWorldDeterminism, NatIdProtocolStaysSerialized) {
  // NAT-ID handlers mutate the shared bootstrap registry; the delivery
  // affinity policy must pin them to the serial path.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(200)
                        .ratio(0.3)
                        .natid()
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 11);
}

TEST(ParallelWorldDeterminism, CatastropheUnderGozar) {
  // Cross-protocol + mass kill mid-run (fig. 7b shape); graph recording
  // exercises the other recorder path.
  const auto spec = run::SpecBuilder()
                        .protocol("gozar")
                        .nodes(300)
                        .ratio(0.2)
                        .catastrophe(0.5, 25.0)
                        .record_graph(10.0)
                        .duration(50)
                        .build();
  expect_engine_equivalence(spec, 3);
}

TEST(ParallelWorldDeterminism, FlashCrowdSurge) {
  // A join surge ramping up and down mid-run: a long train of
  // serial-affinity spawn events interleaved with node-affine gossip —
  // the barrier-heavy shape for the batch former.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier:alpha=25,gamma=50")
                        .nodes(200)
                        .ratio(0.2)
                        .flash_crowd(80, 20, 20.0, 8.0)
                        .duration(45)
                        .build();
  expect_engine_equivalence(spec, 13);
}

TEST(ParallelWorldDeterminism, RegionCorrelatedFailure) {
  // A latency-correlated cohort kill: one serial event that reads the
  // latency model and the scenario RNG, then mass-detaches — everything
  // after it must replay identically.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(250)
                        .ratio(0.2)
                        .correlated_failure(
                            0.4, 20.0,
                            run::ExperimentSpec::FailureCorr::Region)
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 23);
}

TEST(ParallelWorldDeterminism, StructuredTimeVaryingLoss) {
  // Per-class-pair loss switching on mid-run: the loss die starts
  // rolling (and consuming network RNG) only for some packets from
  // t=15 s — the draw pattern must stay identical across engines.
  run::ExperimentSpec::LossSpec loss;
  loss.pub_pub = 0.05;
  loss.priv_pub = 0.3;
  loss.priv_priv = 0.3;
  loss.after_s = 15.0;
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(250)
                        .ratio(0.2)
                        .loss(loss)
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 29);
}

TEST(ParallelWorldDeterminism, FragmentedShufflesReassembleIdentically) {
  // mtu=64 forces every croupier shuffle through the fragmenter (k = 2):
  // per-receiver reassembly maps mutate inline under node affinity and
  // each message adds a GC event — both must replay identically.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier:alpha=25,gamma=50")
                        .nodes(300)
                        .ratio(0.2)
                        .mtu(64)
                        .duration(50)
                        .build();
  expect_engine_equivalence(spec, 31);
}

TEST(ParallelWorldDeterminism, FecUnderFragmentLossDrawsIdentically) {
  // Per-fragment loss multiplies the network RNG draw count and the FEC
  // decoder exercises the GF(256) elimination on partial arrivals; the
  // draw pattern and reassembly outcomes must not depend on the engine.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(250)
                        .ratio(0.2)
                        .mtu(64)
                        .fec(2)
                        .loss(0.1)
                        .duration(45)
                        .build();
  expect_engine_equivalence(spec, 37);
}

TEST(ParallelWorldDeterminism, BandwidthCapDelaysIdentically) {
  // Token buckets are charged from the serial halves in timestamp order;
  // the queueing delay they add to every datagram must be identical
  // whatever the worker count, or delivery times (and therefore every
  // downstream shuffle) diverge.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(200)
                        .ratio(0.2)
                        .mtu(128)
                        .bandwidth(20000, 4000)
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 41);
}

TEST(ParallelWorldDeterminism, ZeroMinLatencyDegeneratesToSameTimestamp) {
  // A constant latency that rounds to 0 us gives min_latency() == 0: the
  // lookahead clamps to 1 us and every batch is same-timestamp only.
  // Zero-delay deliveries then land at the batch's own timestamp — at,
  // not after, the causal floor — and must form the next batch instead
  // of tripping the floor assert (regression: the floor was once the
  // window end, which this workload violates by construction).
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(200)
                        .ratio(0.2)
                        .instant_joins()
                        .skew(0.0)  // all rounds share timestamps
                        .constant_latency(0.0004)
                        .duration(20)
                        .build();
  expect_engine_equivalence(spec, 19);
}

TEST(ParallelWorldDeterminism, ConstantLatencyMaximalBatches) {
  // Constant latency gives the widest causal windows (lookahead = the
  // full latency), the stress case for batch formation.
  const auto spec = run::SpecBuilder()
                        .protocol("cyclon")
                        .nodes(300)
                        .ratio(0.2)
                        .constant_latency(50.0)
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 5);
}

TEST(ParallelWorldDeterminism, EclipseRespawnsIdentically) {
  // The eclipse tick is one serial event that snapshots the target's
  // view, mass-kills and respawns — every respawned node's RNG lineage
  // and first-round schedule must replay identically, and the audit
  // recorder folds the resulting in-degree skew into the fingerprint.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier:alpha=25,gamma=50")
                        .nodes(250)
                        .ratio(0.2)
                        .eclipse(1, 15.0, 2.0)
                        .record_randomness(10.0)
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 43);
}

TEST(ParallelWorldDeterminism, NatFlapReclassifiesIdentically) {
  // NAT flapping tears protocols down and rebuilds them in place with
  // epoch-tagged RNG forks; pending round events of the old epoch must
  // no-op identically under every engine, and nylon's punch chains are
  // the workload most entangled with the flipped classes.
  const auto spec = run::SpecBuilder()
                        .protocol("nylon")
                        .nodes(200)
                        .ratio(0.2)
                        .natflap(0.1, 15.0, 5.0)
                        .record_randomness(10.0)
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 47);
}

TEST(ParallelWorldDeterminism, HubAdversaryUnderGozar) {
  // Hub shims answer shuffles and hijack relays from inside the normal
  // delivery path (node-affine events); their poisoned responses must
  // interleave identically with honest traffic.
  const auto spec = run::SpecBuilder()
                        .protocol("gozar")
                        .nodes(250)
                        .ratio(0.2)
                        .adversary_hubs(2)
                        .record_randomness(10.0)
                        .duration(40)
                        .build();
  expect_engine_equivalence(spec, 53);
}

TEST(ParallelWorldEngine, ReportsBatchingStats) {
  const auto spec = run::SpecBuilder()
                        .protocol("croupier")
                        .nodes(300)
                        .ratio(0.2)
                        .duration(30)
                        .build();
  run::Experiment experiment(spec, 1, /*world_jobs=*/4);
  EXPECT_NE(experiment.world().engine_stats(), nullptr);
  experiment.run();
  const auto* stats = experiment.world().engine_stats();
  ASSERT_NE(stats, nullptr);
  // Steady-state gossip must actually form multi-event batches, or the
  // engine silently degenerated to serial execution.
  EXPECT_GT(stats->batches, 0u);
  EXPECT_GT(stats->batched_events, stats->batches);
  EXPECT_GE(stats->max_batch, 2u);

  run::Experiment sequential(spec, 1, /*world_jobs=*/1);
  EXPECT_EQ(sequential.world().engine_stats(), nullptr);
}

}  // namespace
}  // namespace croupier
