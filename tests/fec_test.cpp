// Rateless GF(256) erasure codec tests: field arithmetic, the Cauchy
// k-of-n recovery guarantee, and clean failure below k fragments.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fec/gf256.hpp"
#include "fec/rateless.hpp"

namespace croupier::fec {
namespace {

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, 1), x);
    EXPECT_EQ(gf_mul(1, x), x);
    EXPECT_EQ(gf_mul(x, 0), 0);
    EXPECT_EQ(gf_mul(0, x), 0);
  }
}

TEST(Gf256, MulCommutes) {
  for (int a = 0; a < 256; a += 7) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a),
                       static_cast<std::uint8_t>(b)),
                gf_mul(static_cast<std::uint8_t>(b),
                       static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(x, gf_inv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256, AesFieldSpotChecks) {
  // 0x53 * 0xCA = 0x01 is the classic AES-field example pair.
  EXPECT_EQ(gf_mul(0x53, 0xCA), 0x01);
  EXPECT_EQ(gf_inv(0x53), 0xCA);
  // Generator: 0x03 * 0x03 = 0x05 (x+1 squared = x^2+1, no reduction).
  EXPECT_EQ(gf_mul(0x03, 0x03), 0x05);
}

TEST(Gf256, MulAddIsRowOperation) {
  std::vector<std::byte> dst = {std::byte{1}, std::byte{2}, std::byte{3}};
  const std::vector<std::byte> src = {std::byte{10}, std::byte{20},
                                      std::byte{30}};
  gf_mul_add(dst.data(), src.data(), dst.size(), 0x02);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const auto expect = gf_add(
        static_cast<std::uint8_t>(i + 1),
        gf_mul(0x02, static_cast<std::uint8_t>((i + 1) * 10)));
    EXPECT_EQ(std::to_integer<std::uint8_t>(dst[i]), expect);
  }
}

std::vector<std::byte> make_message(std::size_t n) {
  std::vector<std::byte> msg(n);
  for (std::size_t i = 0; i < n; ++i) {
    msg[i] = static_cast<std::byte>(i * 37 + 11);
  }
  return msg;
}

/// The k chunks of `msg` (tail zero-padded to chunk_len).
std::vector<std::vector<std::byte>> chunks_of(
    const std::vector<std::byte>& msg, std::size_t k,
    std::size_t chunk_len) {
  std::vector<std::vector<std::byte>> out;
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<std::byte> chunk(chunk_len, std::byte{0});
    for (std::size_t j = 0; j < chunk_len; ++j) {
      const std::size_t pos = i * chunk_len + j;
      if (pos < msg.size()) chunk[j] = msg[pos];
    }
    out.push_back(std::move(chunk));
  }
  return out;
}

TEST(Rateless, RepairCoeffIsNonZeroAndDeterministic) {
  for (std::size_t k = 1; k <= 8; ++k) {
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_NE(repair_coeff(k, r, i), 0);
        EXPECT_EQ(repair_coeff(k, r, i), repair_coeff(k, r, i));
      }
    }
  }
}

TEST(Rateless, DecodesFromExactlyKSourceFragments) {
  const std::size_t k = 4, chunk_len = 5;
  const auto msg = make_message(18);  // tail chunk 3 bytes + padding
  const auto chunks = chunks_of(msg, k, chunk_len);

  Decoder dec(k, chunk_len);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_FALSE(dec.ready());
    EXPECT_TRUE(dec.add(i, chunks[i]));
  }
  ASSERT_TRUE(dec.ready());
  const auto out = dec.decode();
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), k * chunk_len);
  for (std::size_t i = 0; i < msg.size(); ++i) EXPECT_EQ((*out)[i], msg[i]);
}

TEST(Rateless, DecodesFromAnyKOfNMixes) {
  const std::size_t k = 3, chunk_len = 4;
  const auto msg = make_message(11);
  const auto chunks = chunks_of(msg, k, chunk_len);

  // All (k+r choose k) = 20 subsets would be overkill; cover the shapes:
  // sources only, repairs only, and every single-erasure substitution.
  std::vector<std::vector<std::size_t>> picks = {{0, 1, 2}, {3, 4, 5}};
  for (std::size_t missing = 0; missing < k; ++missing) {
    std::vector<std::size_t> pick;
    for (std::size_t i = 0; i < k; ++i) {
      if (i != missing) pick.push_back(i);
    }
    pick.push_back(k + missing);  // substitute a distinct repair
    picks.push_back(pick);
  }

  for (const auto& pick : picks) {
    Decoder dec(k, chunk_len);
    for (const std::size_t index : pick) {
      if (index < k) {
        EXPECT_TRUE(dec.add(index, chunks[index]));
      } else {
        EXPECT_TRUE(dec.add(
            index, encode_repair(msg, k, chunk_len, index - k)));
      }
    }
    ASSERT_TRUE(dec.ready());
    const auto out = dec.decode();
    ASSERT_TRUE(out.has_value());
    for (std::size_t i = 0; i < msg.size(); ++i) {
      EXPECT_EQ((*out)[i], msg[i]) << "pick[0]=" << pick[0];
    }
  }
}

TEST(Rateless, FailsCleanlyBelowK) {
  const std::size_t k = 4, chunk_len = 6;
  const auto msg = make_message(21);
  Decoder dec(k, chunk_len);
  // k-1 fragments, deliberately a mix of source and repair rows.
  EXPECT_TRUE(dec.add(0, chunks_of(msg, k, chunk_len)[0]));
  EXPECT_TRUE(dec.add(4, encode_repair(msg, k, chunk_len, 0)));
  EXPECT_TRUE(dec.add(6, encode_repair(msg, k, chunk_len, 2)));
  EXPECT_FALSE(dec.ready());
  EXPECT_EQ(dec.rows(), 3u);
  EXPECT_FALSE(dec.decode().has_value());
}

TEST(Rateless, RejectsDuplicatesAndOverfill) {
  const std::size_t k = 2, chunk_len = 3;
  const auto msg = make_message(6);
  const auto chunks = chunks_of(msg, k, chunk_len);
  Decoder dec(k, chunk_len);
  EXPECT_TRUE(dec.add(0, chunks[0]));
  EXPECT_FALSE(dec.add(0, chunks[0]));  // duplicate index
  EXPECT_TRUE(dec.add(2, encode_repair(msg, k, chunk_len, 0)));
  EXPECT_TRUE(dec.ready());
  EXPECT_FALSE(dec.add(1, chunks[1]));  // already ready: rejected
  EXPECT_EQ(dec.rows(), 2u);
  const auto out = dec.decode();
  ASSERT_TRUE(out.has_value());
  for (std::size_t i = 0; i < msg.size(); ++i) EXPECT_EQ((*out)[i], msg[i]);
}

TEST(Rateless, ShortPayloadIsZeroPadded) {
  // The tail source chunk rides the wire at its true (short) length;
  // the decoder must treat it as zero-padded to chunk_len.
  const std::size_t k = 2, chunk_len = 4;
  const auto msg = make_message(6);  // tail chunk only 2 bytes
  Decoder dec(k, chunk_len);
  EXPECT_TRUE(dec.add(0, std::span<const std::byte>(msg).subspan(0, 4)));
  EXPECT_TRUE(dec.add(1, std::span<const std::byte>(msg).subspan(4, 2)));
  const auto out = dec.decode();
  ASSERT_TRUE(out.has_value());
  for (std::size_t i = 0; i < msg.size(); ++i) EXPECT_EQ((*out)[i], msg[i]);
  EXPECT_EQ((*out)[6], std::byte{0});
  EXPECT_EQ((*out)[7], std::byte{0});
}

TEST(Rateless, LargeKRoundTrip) {
  // Near the Cauchy bound: k = 200 sources + 56 repairs = 256 points.
  const std::size_t k = 200, chunk_len = 8;
  const auto msg = make_message(k * chunk_len - 3);
  const auto chunks = chunks_of(msg, k, chunk_len);
  Decoder dec(k, chunk_len);
  // Drop every 5th source chunk; replace with repairs.
  std::size_t repair = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (i % 5 == 0) {
      EXPECT_TRUE(dec.add(k + repair,
                          encode_repair(msg, k, chunk_len, repair)));
      ++repair;
    } else {
      EXPECT_TRUE(dec.add(i, chunks[i]));
    }
  }
  ASSERT_LE(k + repair, kMaxCodedFragments);
  ASSERT_TRUE(dec.ready());
  const auto out = dec.decode();
  ASSERT_TRUE(out.has_value());
  for (std::size_t i = 0; i < msg.size(); ++i) EXPECT_EQ((*out)[i], msg[i]);
}

}  // namespace
}  // namespace croupier::fec
