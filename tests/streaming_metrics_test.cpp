// Accuracy of the O(sample) streaming estimators (metrics/streaming)
// against the exact metrics (metrics/graph) on graphs small enough to
// materialize. Tolerances are loose by design — these are sampling
// estimators and the tolerance *is* the contract (documented in
// docs/SPEC_REFERENCE.md): path length within 15% relative, clustering
// within 0.05 absolute, in-degree CV within 0.15 absolute on 10^2-10^3
// node random out-regular overlays, with sampling budgets cranked high
// enough that pair-sampling noise sits well inside those bands.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "metrics/graph.hpp"
#include "metrics/streaming.hpp"
#include "sim/rng.hpp"

namespace croupier::metrics {
namespace {

using Adjacency =
    std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>>;

/// Random d-out-regular overlay on `n` nodes — the shape a healthy
/// peer-sampling view converges to.
Adjacency random_overlay(std::size_t n, std::size_t degree,
                         sim::RngStream& rng) {
  Adjacency adj;
  adj.reserve(n);
  for (net::NodeId u = 1; u <= n; ++u) {
    std::vector<net::NodeId> nbrs;
    while (nbrs.size() < degree) {
      const auto v = static_cast<net::NodeId>(rng.uniform(n) + 1);
      if (v == u) continue;
      if (std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end()) continue;
      nbrs.push_back(v);
    }
    adj.emplace_back(u, std::move(nbrs));
  }
  return adj;
}

struct AdjacencyCallbacks {
  explicit AdjacencyCallbacks(const Adjacency& adj) {
    for (const auto& [u, nbrs] : adj) map[u] = &nbrs;
  }

  [[nodiscard]] StreamingGraphEstimator::NeighborFn neighbors() const {
    return [this](net::NodeId u, std::vector<net::NodeId>& out) {
      const auto it = map.find(u);
      if (it == map.end()) return false;
      out = *it->second;
      return true;
    };
  }
  [[nodiscard]] StreamingGraphEstimator::VertexFn is_vertex() const {
    return [this](net::NodeId u) { return map.contains(u); };
  }

  std::unordered_map<net::NodeId, const std::vector<net::NodeId>*> map;
};

std::vector<net::NodeId> candidate_ids(const Adjacency& adj) {
  std::vector<net::NodeId> ids;
  ids.reserve(adj.size());
  for (const auto& [u, nbrs] : adj) ids.push_back(u);
  return ids;
}

/// Exact in-degree coefficient of variation from the materialized graph.
double exact_in_degree_cv(const OverlayGraph& g) {
  const auto degs = g.in_degrees();
  if (degs.empty()) return 0.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (const auto d : degs) {
    sum += static_cast<double>(d);
    sumsq += static_cast<double>(d) * static_cast<double>(d);
  }
  const double mean = sum / static_cast<double>(degs.size());
  const double var = sumsq / static_cast<double>(degs.size()) - mean * mean;
  return mean > 0.0 ? std::sqrt(std::max(0.0, var)) / mean : 0.0;
}

TEST(StreamingGraphEstimator, MatchesExactMetricsOnRandomOverlays) {
  for (const std::size_t n : {100UL, 400UL, 1000UL}) {
    sim::RngStream gen(0xA11CE + n);
    const auto adj = random_overlay(n, /*degree=*/8, gen);
    const auto graph = OverlayGraph::build(adj);
    const AdjacencyCallbacks cb(adj);
    const auto ids = candidate_ids(adj);

    sim::RngStream exact_rng(7);
    double exact_unreachable = 0.0;
    const double exact_apl =
        graph.avg_path_length(exact_rng, /*max_sources=*/0,
                              &exact_unreachable);
    const double exact_cc = graph.avg_clustering_coefficient();
    const double exact_cv = exact_in_degree_cv(graph);

    StreamingGraphConfig cfg;
    cfg.degree_probes = 256;
    cfg.path_sources = 16;
    cfg.path_targets = 32;
    cfg.cluster_probes = 128;
    StreamingGraphEstimator est(cfg);
    sim::RngStream est_rng(0xE57 + n);
    // Several ticks: the cross-tick accumulators (in-degree CV,
    // components) need a few rounds of probes to converge.
    StreamingGraphStats s;
    for (int tick = 0; tick < 8; ++tick) {
      s = est.tick(std::span<const net::NodeId>(ids), n, cb.neighbors(),
                   cb.is_vertex(), est_rng);
    }

    EXPECT_NEAR(s.avg_path_length, exact_apl, 0.15 * exact_apl)
        << "n=" << n;
    EXPECT_NEAR(s.clustering_coefficient, exact_cc, 0.05) << "n=" << n;
    EXPECT_NEAR(s.unreachable_fraction, exact_unreachable, 0.05)
        << "n=" << n;
    EXPECT_NEAR(s.in_degree_cv, exact_cv, 0.15) << "n=" << n;
    EXPECT_NEAR(s.mean_out_degree, 8.0, 1e-9) << "n=" << n;
    // A connected random 8-regular overlay: the tracker must have seen
    // one giant component spanning nearly everything it probed.
    EXPECT_EQ(graph.largest_component_fraction(), 1.0);
    EXPECT_GT(s.largest_component_fraction, 0.95) << "n=" << n;
    EXPECT_EQ(s.population, n);
    EXPECT_EQ(s.bfs_truncated, 0u);
  }
}

TEST(StreamingGraphEstimator, DetectsPartition) {
  // Two 200-node islands with no cross edges: unreachable pairs ~50%,
  // largest component ~1/2.
  sim::RngStream gen(99);
  Adjacency adj;
  for (int island = 0; island < 2; ++island) {
    const net::NodeId base = island == 0 ? 1 : 1001;
    for (net::NodeId u = base; u < base + 200; ++u) {
      std::vector<net::NodeId> nbrs;
      while (nbrs.size() < 6) {
        const auto v =
            static_cast<net::NodeId>(base + gen.uniform(200));
        if (v != u &&
            std::find(nbrs.begin(), nbrs.end(), v) == nbrs.end()) {
          nbrs.push_back(v);
        }
      }
      adj.emplace_back(u, std::move(nbrs));
    }
  }
  const AdjacencyCallbacks cb(adj);
  const auto ids = candidate_ids(adj);

  StreamingGraphConfig cfg;
  cfg.degree_probes = 256;
  cfg.path_sources = 16;
  cfg.path_targets = 32;
  StreamingGraphEstimator est(cfg);
  sim::RngStream rng(5);
  StreamingGraphStats s;
  for (int tick = 0; tick < 8; ++tick) {
    s = est.tick(std::span<const net::NodeId>(ids), 400, cb.neighbors(),
                 cb.is_vertex(), rng);
  }
  EXPECT_NEAR(s.unreachable_fraction, 0.5, 0.1);
  EXPECT_NEAR(s.largest_component_fraction, 0.5, 0.1);
}

TEST(StreamingGraphEstimator, ResetDropsAccumulatedState) {
  sim::RngStream gen(3);
  const auto adj = random_overlay(100, 8, gen);
  const AdjacencyCallbacks cb(adj);
  const auto ids = candidate_ids(adj);

  StreamingGraphEstimator est;
  sim::RngStream rng(11);
  est.tick(std::span<const net::NodeId>(ids), 100, cb.neighbors(),
           cb.is_vertex(), rng);
  est.reset_accumulators();
  const auto s = est.tick(std::span<const net::NodeId>(ids), 100,
                          cb.neighbors(), cb.is_vertex(), rng);
  // Post-reset, edge samples reflect one tick only (64 probes x 8 edges).
  EXPECT_EQ(s.edge_samples, 64u * 8u);
}

TEST(StreamingGraphEstimator, BudgetCensorsInsteadOfMiscounting) {
  // A 1000-node line graph: the far targets need more expansion than a
  // tiny budget allows. Censored pairs must not appear as unreachable.
  Adjacency adj;
  for (net::NodeId u = 1; u < 1000; ++u) {
    adj.emplace_back(u, std::vector<net::NodeId>{u + 1});
  }
  adj.emplace_back(1000, std::vector<net::NodeId>{});
  const AdjacencyCallbacks cb(adj);
  const auto ids = candidate_ids(adj);

  StreamingGraphConfig cfg;
  cfg.degree_probes = 1;
  cfg.cluster_probes = 0;
  cfg.path_sources = 4;
  cfg.path_targets = 8;
  cfg.bfs_budget = 10;  // absurdly small on purpose
  StreamingGraphEstimator est(cfg);
  sim::RngStream rng(17);
  const auto s = est.tick(std::span<const net::NodeId>(ids), 1000,
                          cb.neighbors(), cb.is_vertex(), rng);
  EXPECT_GT(s.bfs_truncated, 0u);
  EXPECT_EQ(s.unreachable_fraction, 0.0);
}

TEST(ComponentTracker, TracksLargestIncrementally) {
  ComponentTracker t;
  t.add_node(1);
  t.add_node(2);
  t.add_node(3);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_EQ(t.largest(), 1u);
  t.add_edge(1, 2);
  EXPECT_EQ(t.largest(), 2u);
  t.add_edge(4, 5);
  t.add_edge(5, 6);
  EXPECT_EQ(t.largest(), 3u);
  t.add_edge(2, 4);  // merge both
  EXPECT_EQ(t.largest(), 5u);
  EXPECT_EQ(t.node_count(), 6u);
  EXPECT_DOUBLE_EQ(t.largest_fraction(), 5.0 / 6.0);
  t.reset();
  EXPECT_EQ(t.node_count(), 0u);
  EXPECT_DOUBLE_EQ(t.largest_fraction(), 0.0);
}

}  // namespace
}  // namespace croupier::metrics
