// The dynamic half of the affinity-safety story (CROUPIER_CONFLICT_CHECK
// builds): instrumented engine-equivalence runs prove the recording
// hooks are live and silent on correct code, and a deliberately broken
// handler proves a cross-shard write actually aborts.
//
// Only compiled when the option is ON (tests/CMakeLists.txt gates the
// target), so the file may assume the instrumentation exists.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/network.hpp"
#include "pss/descriptor.hpp"
#include "pss/view.hpp"
#include "runtime/spec.hpp"
#include "sim/conflict.hpp"
#include "sim/parallel_executor.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "wire/wire.hpp"

namespace croupier {
namespace {

static_assert(sim::conflict::enabled(),
              "conflict_check_test requires -DCROUPIER_CONFLICT_CHECK=ON");

/// Runs one spec under both engines and requires identical drop counters
/// and event counts — the instrumented build must not change behavior,
/// and the parallel leg must actually validate writes (checked_writes
/// grows only inside batches, so a nonzero delta proves the hooks fired
/// on worker-executed events rather than being compiled out or bypassed).
void expect_instrumented_equivalence(const run::ExperimentSpec& spec,
                                     std::uint64_t seed) {
  run::Experiment sequential(spec, seed, /*world_jobs=*/1);
  sequential.run();
  const auto seq_drops = sequential.world().network().drops();
  const std::uint64_t seq_events =
      sequential.world().simulator().events_processed();

  const std::uint64_t before = sim::conflict::checked_writes();
  run::Experiment parallel(spec, seed, /*world_jobs=*/2);
  parallel.run();
  const std::uint64_t after = sim::conflict::checked_writes();
  EXPECT_GT(after, before)
      << "no write was validated inside any parallel batch — the "
         "instrumentation is dead";

  const auto par_drops = parallel.world().network().drops();
  EXPECT_EQ(seq_drops.delivered, par_drops.delivered);
  EXPECT_EQ(seq_drops.loss, par_drops.loss);
  EXPECT_EQ(seq_drops.nat_filtered, par_drops.nat_filtered);
  EXPECT_EQ(seq_drops.dead_receiver, par_drops.dead_receiver);
  EXPECT_EQ(seq_drops.delivered_bytes, par_drops.delivered_bytes);
  EXPECT_EQ(seq_events, parallel.world().simulator().events_processed());
  EXPECT_EQ(sequential.world().alive_count(), parallel.world().alive_count());
}

TEST(ConflictCheckEquivalence, CroupierSteadyState) {
  const auto spec = run::SpecBuilder()
                        .protocol("croupier:alpha=25,gamma=50")
                        .nodes(200)
                        .ratio(0.2)
                        .duration(30)
                        .build();
  expect_instrumented_equivalence(spec, 42);
}

TEST(ConflictCheckEquivalence, CyclonMaximalBatches) {
  // Constant latency widens the causal window to the full latency — the
  // largest batches, i.e. the most concurrently-validated writes.
  const auto spec = run::SpecBuilder()
                        .protocol("cyclon")
                        .nodes(150)
                        .ratio(0.2)
                        .constant_latency(50.0)
                        .duration(30)
                        .build();
  expect_instrumented_equivalence(spec, 5);
}

TEST(ConflictCheckEquivalence, GozarChurnAndLoss) {
  // Churn exercises view owner tags across node death/respawn, and loss
  // exercises the deferred drop-counter paths next to the inline hooks.
  const auto spec = run::SpecBuilder()
                        .protocol("gozar")
                        .nodes(150)
                        .ratio(0.2)
                        .churn(0.02, 15.0)
                        .loss(0.05)
                        .duration(30)
                        .build();
  expect_instrumented_equivalence(spec, 7);
}

// ---------------------------------------------------------------------
// Seeded fault: a handler that writes into its *neighbor's* view — the
// exact bug class the checker exists for (compiles fine, races silently
// in a release build, diverges only if batch orders happen to differ).

struct PingMsg final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return 0x7E; }
  [[nodiscard]] const char* name() const override { return "ping"; }
  void encode(wire::Writer& w) const override { w.u8(0); }
};

/// Each node owns a conflict-tagged view; on_message ages the view of
/// whichever node the registry says — `self` for the honest variant,
/// a neighbor for the rogue one.
class ViewHandler final : public net::MessageHandler {
 public:
  ViewHandler(net::NodeId self, net::NodeId victim,
              std::vector<ViewHandler*>* registry)
      : self_(self), victim_(victim), registry_(registry), view_(4) {
    view_.set_owner(self);
    view_.force_add(pss::NodeDescriptor{self, net::NatType::Public, 0});
  }

  void on_message(net::NodeId /*from*/, const net::Message& /*msg*/) override {
    (*registry_)[victim_]->view_.age_all();
  }

  [[nodiscard]] net::NodeId self() const { return self_; }

 private:
  net::NodeId self_;
  net::NodeId victim_;
  std::vector<ViewHandler*>* registry_;
  pss::PartialView<pss::NodeDescriptor> view_;
};

/// Drives one delivery batch through the real parallel engine: nodes 1
/// and 2 message each other with constant latency, so both deliveries
/// land at the same timestamp and form a genuine two-event batch
/// (batch-size-1 runs inline on the serial path and is exempt by design).
void run_delivery_batch(bool rogue) {
  sim::Simulator simulator;
  net::Network network(simulator,
                       std::make_unique<net::ConstantLatency>(sim::msec(50)),
                       sim::RngStream(9), /*loss_probability=*/0.0);
  std::vector<ViewHandler*> registry(3, nullptr);
  ViewHandler h1(1, /*victim=*/1, &registry);
  // The rogue node 2 reaches into node 1's view from node 2's shard.
  ViewHandler h2(2, /*victim=*/rogue ? 1 : 2, &registry);
  registry[1] = &h1;
  registry[2] = &h2;
  network.attach(1, net::NatConfig{}, h1);
  network.attach(2, net::NatConfig{}, h2);
  // Unset delivery affinity means every delivery is a serial event —
  // safe but never sharded. Shard by receiver like the World does.
  network.set_delivery_affinity([](net::NodeId to, const net::Message&) {
    return static_cast<sim::Affinity>(to);
  });

  sim::ParallelExecutor engine(simulator, {2, sim::msec(50)});
  simulator.schedule_at(0, sim::Affinity{1}, [&] {
    network.send(1, 2, std::make_shared<PingMsg>());
  });
  simulator.schedule_at(0, sim::Affinity{2}, [&] {
    network.send(2, 1, std::make_shared<PingMsg>());
  });
  engine.run_until(sim::sec(1));
}

TEST(ConflictCheckFault, HonestDeliveryBatchPasses) {
  const std::uint64_t before = sim::conflict::checked_writes();
  run_delivery_batch(/*rogue=*/false);
  EXPECT_GT(sim::conflict::checked_writes(), before)
      << "the two sends plus two deliveries must batch and be validated";
}

TEST(ConflictCheckFaultDeathTest, CrossShardViewWriteAborts) {
  // threadsafe style re-execs the test binary for the death child — the
  // only mode that is sound with the executor's worker threads running.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(run_delivery_batch(/*rogue=*/true), "cross-shard write");
}

}  // namespace
}  // namespace croupier
