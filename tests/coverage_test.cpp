// Coverage for the remaining public API surface: contract violations
// (death tests on CROUPIER_ASSERT), recorder lifecycle, churn resilience
// of each protocol, and misc accessors.
#include <gtest/gtest.h>

#include "runtime/recorder.hpp"
#include "runtime/scenario.hpp"
#include "test_util.hpp"

namespace croupier {
namespace {

using croupier::testing::fast_world_config;
using croupier::testing::populate;

TEST(Contracts, EventQueuePopOnEmptyAborts) {
  EXPECT_DEATH(
      {
        sim::EventQueue q;
        q.pop();
      },
      "pop\\(\\) on empty queue");
}

TEST(Contracts, SchedulingIntoThePastAborts) {
  EXPECT_DEATH(
      {
        sim::Simulator s;
        s.schedule_after(sim::sec(5), [] {});
        s.run();
        s.schedule_at(sim::sec(1), [] {});
      },
      "cannot schedule into the past");
}

TEST(Contracts, DoubleAttachAborts) {
  EXPECT_DEATH(
      {
        sim::Simulator s;
        net::Network n(s, std::make_unique<net::ConstantLatency>(1),
                       sim::RngStream(1));
        struct H final : net::MessageHandler {
          void on_message(net::NodeId, const net::Message&) override {}
        } h;
        n.attach(1, net::NatConfig::open(), h);
        n.attach(1, net::NatConfig::open(), h);
      },
      "already attached");
}

TEST(Contracts, KillingDeadNodeAborts) {
  EXPECT_DEATH(
      {
        run::World world(fast_world_config(1),
                         run::make_croupier_factory({}));
        world.kill(12345);
      },
      "kill of dead node");
}

TEST(Simulator, RunForAdvancesRelative) {
  sim::Simulator s;
  s.run_for(sim::sec(2));
  EXPECT_EQ(s.now(), sim::sec(2));
  s.run_for(sim::sec(3));
  EXPECT_EQ(s.now(), sim::sec(5));
}

TEST(EventQueue, NextTimeSkipsCancelledPrefix) {
  sim::EventQueue q;
  const auto a = q.schedule(1, [] {});
  const auto b = q.schedule(2, [] {});
  q.schedule(3, [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_EQ(q.next_time(), 3u);
}

TEST(Estimator, PublicWithoutHitsFallsBackToCacheOnly) {
  core::RatioEstimator e(1, net::NatType::Public, {25, 50, 10});
  e.begin_round();  // no hits at all
  e.merge(std::vector<core::EstimateEntry>{{2, 1, 4, 0}});
  // Eq. 8 degenerates to eq. 9 when E_i is undefined.
  EXPECT_DOUBLE_EQ(e.estimate(), 0.2);
}

TEST(Recorder, StopHaltsSampling) {
  run::World world(fast_world_config(3), run::make_croupier_factory({}));
  populate(world, 5, 5);
  run::EstimationRecorder rec(world, {sim::sec(1), 0});
  rec.start(sim::sec(1));
  world.simulator().run_until(sim::sec(5));
  const auto count = rec.series().size();
  rec.stop();
  world.simulator().run_until(sim::sec(10));
  EXPECT_EQ(rec.series().size(), count);
}

TEST(Recorder, GraphRecorderStopHalts) {
  run::World world(fast_world_config(4), run::make_croupier_factory({}));
  populate(world, 8, 0);
  run::GraphStatsRecorder rec(world, {sim::sec(1), 0});
  rec.start(sim::sec(1));
  world.simulator().run_until(sim::sec(3));
  rec.stop();
  world.simulator().run_until(sim::sec(8));
  EXPECT_LE(rec.series().size(), 3u);
}

TEST(Bootstrap, KnownTracksMembership) {
  net::BootstrapServer b;
  EXPECT_FALSE(b.known(1));
  b.add(1, net::NatType::Public);
  EXPECT_TRUE(b.known(1));
  b.remove(1);
  EXPECT_FALSE(b.known(1));
}

TEST(Network, DeliveredCounterCounts) {
  run::World world(fast_world_config(5), run::make_croupier_factory({}));
  populate(world, 5, 0);
  world.simulator().run_until(sim::sec(10));
  EXPECT_GT(world.network().drops().delivered, 0u);
  EXPECT_EQ(world.network().drops().loss, 0u);
}

// Churn resilience per protocol: the overlay stays connected while 1% of
// each class is replaced every round.
class ChurnResilience
    : public ::testing::TestWithParam<const char*> {
 protected:
  static run::ProtocolFactory factory(const std::string& name) {
    if (name == "croupier") return run::make_croupier_factory({});
    if (name == "gozar") return run::make_gozar_factory({});
    if (name == "nylon") return run::make_nylon_factory({});
    return run::make_croupier_factory({});
  }
};

TEST_P(ChurnResilience, OverlayStaysConnected) {
  auto cfg = fast_world_config(7);
  cfg.latency = run::World::LatencyKind::King;
  run::World world(cfg, factory(GetParam()));
  populate(world, 20, 80);
  run::ChurnProcess churn(world, 0.01, net::NatConfig::open(),
                          net::NatConfig::natted());
  churn.start(sim::sec(20));
  world.simulator().run_until(sim::sec(120));

  EXPECT_EQ(world.alive_count(), 100u);
  const auto g = world.snapshot_overlay(/*usable_only=*/true);
  // Allow a couple of just-joined stragglers outside the main cluster.
  EXPECT_GE(g.largest_component_fraction(), 0.95);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChurnResilience,
                         ::testing::Values("croupier", "gozar", "nylon"));

TEST(LatencyParams, KingCustomParamsRespected) {
  net::KingLatencyModel::Params p;
  p.median_ms = 10.0;
  p.sigma = 0.1;
  p.jitter_fraction = 0.0;
  p.min_latency = sim::msec(1);
  p.max_latency = sim::msec(50);
  net::KingLatencyModel m(1, p);
  std::vector<double> ms;
  for (net::NodeId i = 0; i < 500; ++i) {
    ms.push_back(static_cast<double>(m.base_latency(i, i + 1000)) / 1000.0);
  }
  std::sort(ms.begin(), ms.end());
  EXPECT_NEAR(ms[ms.size() / 2], 10.0, 1.0);
}

TEST(ViewExtra, OldestTieBreaksDeterministically) {
  pss::PartialView<pss::NodeDescriptor> v(3);
  v.add_if_room({1, net::NatType::Public, 5});
  v.add_if_room({2, net::NatType::Public, 5});
  ASSERT_TRUE(v.oldest().has_value());
  EXPECT_EQ(v.oldest()->id, 1u);  // first maximal element wins
}

TEST(ViewExtra, SetCapacityGrowthKeepsEntries) {
  pss::PartialView<pss::NodeDescriptor> v(2);
  v.add_if_room({1, net::NatType::Public, 0});
  v.add_if_room({2, net::NatType::Public, 0});
  v.set_capacity(5);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_TRUE(v.add_if_room({3, net::NatType::Public, 0}));
}

}  // namespace
}  // namespace croupier
