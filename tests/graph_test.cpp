// Graph metric tests against hand-built graphs with known answers.
#include <gtest/gtest.h>

#include "metrics/estimation.hpp"
#include "metrics/graph.hpp"
#include "metrics/overhead.hpp"

namespace croupier::metrics {
namespace {

using Adj = std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>>;

TEST(OverlayGraph, EmptyGraph) {
  const auto g = OverlayGraph::build({});
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.largest_component(), 0u);
  EXPECT_DOUBLE_EQ(g.largest_component_fraction(), 0.0);
  sim::RngStream rng(1);
  EXPECT_DOUBLE_EQ(g.avg_path_length(rng), 0.0);
  EXPECT_DOUBLE_EQ(g.avg_clustering_coefficient(), 0.0);
}

TEST(OverlayGraph, DropsSelfLoopsAndUnknownTargets) {
  const auto g = OverlayGraph::build(Adj{
      {1, {1, 2, 99}},  // self-loop and unknown 99 dropped
      {2, {}},
  });
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(OverlayGraph, CollapsesDuplicateEdges) {
  const auto g = OverlayGraph::build(Adj{
      {1, {2, 2, 2}},
      {2, {}},
  });
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(OverlayGraph, InDegreesOfStar) {
  // 1 -> {2,3,4}: each spoke has in-degree 1, hub 0.
  const auto g = OverlayGraph::build(Adj{
      {1, {2, 3, 4}},
      {2, {}},
      {3, {}},
      {4, {}},
  });
  const auto hist = g.in_degree_histogram();
  EXPECT_EQ(hist.at(0), 1u);
  EXPECT_EQ(hist.at(1), 3u);
}

TEST(OverlayGraph, PathLengthOnDirectedChain) {
  // 1 -> 2 -> 3: pairs (1,2)=1, (1,3)=2, (2,3)=1; others unreachable.
  const auto g = OverlayGraph::build(Adj{
      {1, {2}},
      {2, {3}},
      {3, {}},
  });
  sim::RngStream rng(1);
  double unreachable = 0.0;
  const double apl = g.avg_path_length(rng, 0, &unreachable);
  EXPECT_DOUBLE_EQ(apl, 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(unreachable, 0.5);  // 3 of 6 ordered pairs unreachable
}

TEST(OverlayGraph, PathLengthOnCycle) {
  // Directed 4-cycle: distances 1,2,3 from each source; mean = 2.
  const auto g = OverlayGraph::build(Adj{
      {1, {2}},
      {2, {3}},
      {3, {4}},
      {4, {1}},
  });
  sim::RngStream rng(1);
  EXPECT_DOUBLE_EQ(g.avg_path_length(rng), 2.0);
}

TEST(OverlayGraph, SampledPathLengthApproximatesExact) {
  // Ring of 60: exact average is (1+...+59)/59 = 30.
  Adj adj;
  for (net::NodeId i = 0; i < 60; ++i) {
    adj.push_back({i, {(i + 1) % 60}});
  }
  const auto g = OverlayGraph::build(adj);
  sim::RngStream rng(7);
  const double sampled = g.avg_path_length(rng, 10);
  EXPECT_DOUBLE_EQ(sampled, 30.0);  // symmetric: any source gives 30
}

TEST(OverlayGraph, ClusteringOfTriangle) {
  const auto g = OverlayGraph::build(Adj{
      {1, {2, 3}},
      {2, {3}},
      {3, {}},
  });
  // Undirected projection is a complete triangle: coefficient 1.
  EXPECT_DOUBLE_EQ(g.avg_clustering_coefficient(), 1.0);
}

TEST(OverlayGraph, ClusteringOfStarIsZero) {
  const auto g = OverlayGraph::build(Adj{
      {1, {2, 3, 4}},
      {2, {}},
      {3, {}},
      {4, {}},
  });
  EXPECT_DOUBLE_EQ(g.avg_clustering_coefficient(), 0.0);
}

TEST(OverlayGraph, ClusteringMixed) {
  // Triangle {1,2,3} plus pendant 4 attached to 1.
  // Local: c(1)=1/3 (neighbors 2,3,4; one link), c(2)=1, c(3)=1, c(4)=0.
  const auto g = OverlayGraph::build(Adj{
      {1, {2, 3, 4}},
      {2, {3}},
      {3, {1}},
      {4, {}},
  });
  EXPECT_NEAR(g.avg_clustering_coefficient(), (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0,
              1e-12);
}

TEST(OverlayGraph, LargestComponentIsWeak) {
  // Directed edges 1->2, 3->2: weakly connected {1,2,3}; isolated 4.
  const auto g = OverlayGraph::build(Adj{
      {1, {2}},
      {2, {}},
      {3, {2}},
      {4, {}},
  });
  EXPECT_EQ(g.largest_component(), 3u);
  EXPECT_DOUBLE_EQ(g.largest_component_fraction(), 0.75);
}

TEST(OverlayGraph, TwoComponents) {
  const auto g = OverlayGraph::build(Adj{
      {1, {2}}, {2, {1}}, {3, {4}}, {4, {5}}, {5, {3}},
  });
  EXPECT_EQ(g.largest_component(), 3u);
}

TEST(EstimationErrors, HandComputed) {
  const std::vector<double> est{0.25, 0.15, 0.2};
  const auto s = estimation_errors(est, 0.2);
  EXPECT_NEAR(s.avg_error, (0.05 + 0.05 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(s.max_error, 0.05, 1e-12);
  EXPECT_EQ(s.node_count, 3u);
}

TEST(EstimationErrors, EmptyInput) {
  const auto s = estimation_errors({}, 0.2);
  EXPECT_DOUBLE_EQ(s.avg_error, 0.0);
  EXPECT_DOUBLE_EQ(s.max_error, 0.0);
  EXPECT_EQ(s.node_count, 0u);
}

TEST(EstimationErrors, SymmetricAroundTruth) {
  const std::vector<double> est{0.1, 0.3};
  const auto s = estimation_errors(est, 0.2);
  EXPECT_NEAR(s.avg_error, 0.1, 1e-12);
  EXPECT_NEAR(s.max_error, 0.1, 1e-12);
}

TEST(OverheadSummary, SplitsByClass) {
  net::TrafficMeter meter;
  meter.on_send(1, 1000);
  meter.on_deliver(1, 500);   // public: 1500 total
  meter.on_send(2, 300);      // private: 300
  meter.on_send(3, 100);      // private: 100
  const std::vector<std::pair<net::NodeId, net::NatType>> classes{
      {1, net::NatType::Public},
      {2, net::NatType::Private},
      {3, net::NatType::Private},
      {4, net::NatType::Private},  // silent node still counted
  };
  const auto load = summarize_load(meter, classes, sim::sec(10));
  EXPECT_DOUBLE_EQ(load.public_bytes_per_sec, 150.0);
  EXPECT_DOUBLE_EQ(load.private_bytes_per_sec, (300.0 + 100.0 + 0.0) / 3.0 / 10.0);
  EXPECT_EQ(load.public_nodes, 1u);
  EXPECT_EQ(load.private_nodes, 3u);
}

TEST(OverheadSummary, EmptyClasses) {
  net::TrafficMeter meter;
  const auto load = summarize_load(meter, {}, sim::sec(1));
  EXPECT_DOUBLE_EQ(load.public_bytes_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(load.private_bytes_per_sec, 0.0);
}

}  // namespace
}  // namespace croupier::metrics
