// NAT model tests: filtering policies, mapping timeouts, the reachability
// semantics every protocol in the repository is built around.
#include <gtest/gtest.h>

#include "net/nat.hpp"
#include "sim/time.hpp"

namespace croupier::net {
namespace {

using sim::sec;

TEST(NatConfig, ClassificationMatchesClass) {
  EXPECT_EQ(NatConfig::open().nat_type(), NatType::Public);
  EXPECT_EQ(NatConfig::upnp().nat_type(), NatType::Public);
  EXPECT_EQ(NatConfig::natted().nat_type(), NatType::Private);
  EXPECT_EQ(NatConfig::firewalled().nat_type(), NatType::Private);
}

TEST(NatBox, BlocksUnsolicitedInbound) {
  NatBox nat(NatConfig::natted());
  EXPECT_FALSE(nat.allows_inbound(sec(1), 42));
}

TEST(NatBox, OutboundOpensMappingForThatPeer) {
  NatBox nat(NatConfig::natted());
  nat.on_outbound(sec(1), 42);
  EXPECT_TRUE(nat.allows_inbound(sec(2), 42));
  EXPECT_FALSE(nat.allows_inbound(sec(2), 43));  // different peer
}

TEST(NatBox, MappingExpiresAfterTimeout) {
  NatBox nat(NatConfig::natted(FilteringPolicy::AddressAndPortDependent,
                               sec(30)));
  nat.on_outbound(sec(0), 42);
  EXPECT_TRUE(nat.allows_inbound(sec(30), 42));   // boundary: still live
  EXPECT_FALSE(nat.allows_inbound(sec(31), 42));  // expired
}

TEST(NatBox, OutboundRefreshesMapping) {
  NatBox nat(NatConfig::natted(FilteringPolicy::AddressAndPortDependent,
                               sec(30)));
  nat.on_outbound(sec(0), 42);
  nat.on_outbound(sec(25), 42);
  EXPECT_TRUE(nat.allows_inbound(sec(50), 42));
  EXPECT_FALSE(nat.allows_inbound(sec(56), 42));
}

TEST(NatBox, EndpointIndependentFilteringAdmitsAnyoneOnceOpen) {
  NatBox nat(NatConfig::natted(FilteringPolicy::EndpointIndependent));
  EXPECT_FALSE(nat.allows_inbound(sec(1), 99));
  nat.on_outbound(sec(1), 42);  // any outbound opens the socket's mapping
  EXPECT_TRUE(nat.allows_inbound(sec(2), 99));
  EXPECT_TRUE(nat.allows_inbound(sec(2), 7));
}

TEST(NatBox, EndpointIndependentMappingAlsoExpires) {
  NatBox nat(NatConfig::natted(FilteringPolicy::EndpointIndependent, sec(30)));
  nat.on_outbound(sec(0), 42);
  EXPECT_TRUE(nat.allows_inbound(sec(20), 99));
  EXPECT_FALSE(nat.allows_inbound(sec(31), 99));
}

TEST(NatBox, AddressDependentEquivalentToAddressPortHere) {
  // One port per node in the model, so the two policies agree.
  NatBox ad(NatConfig::natted(FilteringPolicy::AddressDependent));
  NatBox apd(NatConfig::natted(FilteringPolicy::AddressAndPortDependent));
  ad.on_outbound(sec(1), 42);
  apd.on_outbound(sec(1), 42);
  EXPECT_EQ(ad.allows_inbound(sec(2), 42), apd.allows_inbound(sec(2), 42));
  EXPECT_EQ(ad.allows_inbound(sec(2), 43), apd.allows_inbound(sec(2), 43));
}

TEST(NatBox, PublicConfigAlwaysAdmits) {
  NatBox open(NatConfig::open());
  NatBox upnp(NatConfig::upnp());
  EXPECT_TRUE(open.allows_inbound(sec(1), 1));
  EXPECT_TRUE(upnp.allows_inbound(sec(1), 1));
}

TEST(NatBox, FirewallBehavesLikeRestrictiveNat) {
  NatBox fw(NatConfig::firewalled());
  EXPECT_FALSE(fw.allows_inbound(sec(1), 42));
  fw.on_outbound(sec(1), 42);
  EXPECT_TRUE(fw.allows_inbound(sec(2), 42));
  EXPECT_FALSE(fw.allows_inbound(sec(2), 43));
}

TEST(NatBox, LiveEntriesCountsAndGcs) {
  NatBox nat(NatConfig::natted(FilteringPolicy::AddressAndPortDependent,
                               sec(30)));
  nat.on_outbound(sec(0), 1);
  nat.on_outbound(sec(0), 2);
  nat.on_outbound(sec(20), 3);
  EXPECT_EQ(nat.live_entries(sec(25)), 3u);
  EXPECT_EQ(nat.live_entries(sec(40)), 1u);  // only peer 3 still live
}

TEST(NatBox, ManyMappingsIndependent) {
  NatBox nat(NatConfig::natted());
  for (NodeId peer = 0; peer < 100; ++peer) {
    nat.on_outbound(sec(peer), peer);
  }
  // Peer k's mapping was refreshed at t=k and lives 30 s.
  EXPECT_TRUE(nat.allows_inbound(sec(100), 80));
  EXPECT_FALSE(nat.allows_inbound(sec(100), 60));
}

// Property sweep: for every filtering policy, an inbound from a peer is
// admitted iff (policy == EI and any mapping live) or (that peer's mapping
// is live).
class NatPolicySweep : public ::testing::TestWithParam<FilteringPolicy> {};

TEST_P(NatPolicySweep, FilterInvariant) {
  const FilteringPolicy policy = GetParam();
  NatBox nat(NatConfig::natted(policy, sec(10)));
  nat.on_outbound(sec(0), 1);
  nat.on_outbound(sec(5), 2);

  for (sim::SimTime t : {sec(6), sec(9), sec(11), sec(16)}) {
    const bool peer1_live = t <= sec(0) + sec(10);
    const bool peer2_live = t <= sec(5) + sec(10);
    const bool any_live = peer1_live || peer2_live;
    const bool ei = policy == FilteringPolicy::EndpointIndependent;
    EXPECT_EQ(nat.allows_inbound(t, 1), ei ? any_live : peer1_live)
        << "t=" << t;
    EXPECT_EQ(nat.allows_inbound(t, 2), ei ? any_live : peer2_live)
        << "t=" << t;
    EXPECT_EQ(nat.allows_inbound(t, 3), ei && any_live) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, NatPolicySweep,
    ::testing::Values(FilteringPolicy::EndpointIndependent,
                      FilteringPolicy::AddressDependent,
                      FilteringPolicy::AddressAndPortDependent));

}  // namespace
}  // namespace croupier::net
