// Algebraic properties of the ratio estimator's merge and of the overlay
// metrics against random-graph theory — the "it cannot be subtly wrong"
// layer on top of the example-based tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/estimator.hpp"
#include "metrics/graph.hpp"
#include "sim/rng.hpp"

namespace croupier {
namespace {

using core::EstimateEntry;
using core::EstimatorConfig;
using core::RatioEstimator;

std::vector<EstimateEntry> random_entries(sim::RngStream& rng,
                                          std::size_t count) {
  std::vector<EstimateEntry> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(EstimateEntry{
        static_cast<net::NodeId>(rng.uniform(20) + 2),
        static_cast<std::uint32_t>(rng.uniform(50)),
        static_cast<std::uint32_t>(rng.uniform(200) + 1),
        static_cast<std::uint16_t>(rng.uniform(40))});
  }
  return out;
}

// Merging is idempotent: applying the same batch twice changes nothing.
class EstimatorMergeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorMergeSweep, MergeIsIdempotent) {
  sim::RngStream rng(GetParam());
  RatioEstimator e(1, net::NatType::Private, EstimatorConfig{});
  const auto batch = random_entries(rng, 15);
  e.merge(batch);
  const auto cache_once = e.cached();
  const double est_once = e.estimate();
  e.merge(batch);
  EXPECT_EQ(e.cached(), cache_once);
  EXPECT_DOUBLE_EQ(e.estimate(), est_once);
}

TEST_P(EstimatorMergeSweep, MergeOrderDoesNotAffectEstimate) {
  // The cache keeps the newest entry per origin, so any permutation of
  // the same multiset of entries must yield the same estimate. (Ties on
  // age are broken first-wins, so we make ages unique per origin.)
  sim::RngStream rng(GetParam() * 31 + 7);
  std::vector<EstimateEntry> batch;
  for (net::NodeId origin = 2; origin < 12; ++origin) {
    for (std::uint16_t age : {3, 9, 17}) {
      batch.push_back(EstimateEntry{
          origin, static_cast<std::uint32_t>(rng.uniform(40) + 1),
          static_cast<std::uint32_t>(rng.uniform(160) + 1),
          static_cast<std::uint16_t>(age + origin % 3)});
    }
  }

  RatioEstimator forward(1, net::NatType::Private, EstimatorConfig{});
  forward.merge(batch);

  std::vector<EstimateEntry> shuffled = batch;
  rng.shuffle(std::span<EstimateEntry>(shuffled));
  RatioEstimator permuted(1, net::NatType::Private, EstimatorConfig{});
  permuted.merge(shuffled);

  EXPECT_DOUBLE_EQ(forward.estimate(), permuted.estimate());
}

TEST_P(EstimatorMergeSweep, EstimateAlwaysInUnitInterval) {
  sim::RngStream rng(GetParam() * 97 + 3);
  RatioEstimator e(1, net::NatType::Public, EstimatorConfig{});
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < rng.uniform(5); ++i) {
      e.count_request(rng.chance(0.5) ? net::NatType::Public
                                      : net::NatType::Private);
    }
    e.begin_round();
    e.merge(random_entries(rng, rng.uniform(8)));
    const double est = e.estimate();
    ASSERT_GE(est, 0.0);
    ASSERT_LE(est, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorMergeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Directed ER-style random graph: measured metrics must match theory.
TEST(GraphTheory, RandomGraphPathLengthMatchesLogNOverLogD) {
  sim::RngStream rng(11);
  const std::size_t n = 2000;
  const std::size_t d = 12;
  std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>> adj;
  for (net::NodeId i = 0; i < n; ++i) {
    std::vector<net::NodeId> nbrs;
    while (nbrs.size() < d) {
      const auto t = static_cast<net::NodeId>(rng.uniform(n));
      if (t != i) nbrs.push_back(t);
    }
    adj.emplace_back(i, std::move(nbrs));
  }
  const auto g = metrics::OverlayGraph::build(adj);
  sim::RngStream sample_rng(1);
  const double apl = g.avg_path_length(sample_rng, 64);
  const double theory = std::log(static_cast<double>(n)) /
                        std::log(static_cast<double>(d));
  EXPECT_NEAR(apl, theory, 0.5);
}

TEST(GraphTheory, RandomGraphClusteringMatchesDegreeOverN) {
  sim::RngStream rng(13);
  const std::size_t n = 1500;
  const std::size_t d = 10;
  std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>> adj;
  for (net::NodeId i = 0; i < n; ++i) {
    std::vector<net::NodeId> nbrs;
    while (nbrs.size() < d) {
      const auto t = static_cast<net::NodeId>(rng.uniform(n));
      if (t != i) nbrs.push_back(t);
    }
    adj.emplace_back(i, std::move(nbrs));
  }
  const auto g = metrics::OverlayGraph::build(adj);
  // Undirected projection has mean degree ~2d; expected clustering for a
  // random graph is (mean degree)/n.
  const double theory = 2.0 * static_cast<double>(d) / static_cast<double>(n);
  EXPECT_NEAR(g.avg_clustering_coefficient(), theory, theory);
  EXPECT_LT(g.avg_clustering_coefficient(), 0.05);
}

TEST(GraphTheory, RandomGraphIsConnectedAtThisDegree) {
  sim::RngStream rng(17);
  const std::size_t n = 1000;
  std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>> adj;
  for (net::NodeId i = 0; i < n; ++i) {
    std::vector<net::NodeId> nbrs;
    for (int k = 0; k < 8; ++k) {
      nbrs.push_back(static_cast<net::NodeId>(rng.uniform(n)));
    }
    adj.emplace_back(i, std::move(nbrs));
  }
  const auto g = metrics::OverlayGraph::build(adj);
  EXPECT_EQ(g.largest_component(), n);  // far above the ln(n) threshold
}

}  // namespace
}  // namespace croupier
