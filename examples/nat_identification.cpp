// NAT-type identification demo (paper §V, Algorithm 1).
//
// Boots a small system where every joining node first runs the
// distributed NAT-ID protocol against already-present public nodes, then
// starts gossiping with the classification it determined for itself.
// Prints the verdict for one node of every connectivity class, plus the
// message cost.
#include <cstdio>

#include "runtime/spec.hpp"
#include "runtime/world.hpp"

int main() {
  using namespace croupier;

  // natid + instant joins: the initial publics are operator-seeded
  // responders (ground-truth classified), exactly what a fresh deployment
  // needs before the identification protocol has anyone to test against.
  run::Experiment experiment(run::SpecBuilder()
                                 .protocol("croupier")
                                 .nodes(4)
                                 .ratio(1.0)
                                 .instant_joins()
                                 .natid()
                                 .duration(60)
                                 .record_nothing()
                                 .build(),
                             /*seed=*/7);
  run::World& world = experiment.world();
  world.simulator().run_until(sim::sec(2));

  struct Case {
    const char* description;
    net::NatConfig config;
  };
  const Case cases[] = {
      {"open Internet host", net::NatConfig::open()},
      {"NAT with UPnP IGD port mapping", net::NatConfig::upnp()},
      {"NAT, endpoint-independent filtering",
       net::NatConfig::natted(net::FilteringPolicy::EndpointIndependent)},
      {"NAT, address-dependent filtering",
       net::NatConfig::natted(net::FilteringPolicy::AddressDependent)},
      {"NAT, address+port-dependent filtering",
       net::NatConfig::natted(net::FilteringPolicy::AddressAndPortDependent)},
      {"stateful firewall (no translation)", net::NatConfig::firewalled()},
  };

  std::printf("%-42s %-10s %-10s %s\n", "ground truth", "identified",
              "correct?", "msgs sent by client");
  for (const auto& c : cases) {
    const auto before_drops = world.network().drops().delivered;
    (void)before_drops;
    const net::NodeId id = world.spawn(c.config);
    const auto sent_before = world.network().meter().totals(id).msgs_sent;
    world.simulator().run_until(world.simulator().now() + sim::sec(5));
    const auto identified = world.identified_type_of(id);
    const auto truth = c.config.nat_type();
    const auto sent =
        world.network().meter().totals(id).msgs_sent - sent_before;
    std::printf("%-42s %-10s %-10s %llu (incl. first gossip)\n",
                c.description, net::to_cstring(identified),
                identified == truth ? "yes" : "NO",
                static_cast<unsigned long long>(sent));
  }

  std::printf(
      "\nThe EI-filtering NAT case is the subtle one: the ForwardResp DOES\n"
      "arrive (any open mapping admits it), but the observed address is\n"
      "the gateway's, so the IP comparison still classifies it private.\n");
  return 0;
}
