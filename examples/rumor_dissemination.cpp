// Gossip dissemination on top of the PSS — the paper's motivating use
// case (§I cites lightweight probabilistic broadcast [1]).
//
// An application layers its own messages over the same simulated network
// (via World::set_app_handler) and uses Croupier's sample() to pick
// gossip partners:
//  - push: an infected node pushes the rumor to `fanout` sampled peers
//    each round. Pushes to private peers are dropped by their NATs unless
//    a mapping happens to be open — exactly what a real deployment sees.
//  - pull: every node polls one sampled peer per round; an infected
//    public peer answers with the rumor. This is how NATted nodes catch
//    up despite being unreachable for pushes.
//
// Prints rumor coverage over time on a 500-node, 80%-private network.
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "core/croupier.hpp"
#include "runtime/spec.hpp"
#include "runtime/world.hpp"

namespace {

using namespace croupier;

constexpr std::uint8_t kRumorPush = 0x80;
constexpr std::uint8_t kRumorPullReq = 0x81;
constexpr std::uint8_t kRumorPullRes = 0x82;

struct RumorPush final : net::Message {
  std::uint32_t rumor_id = 0;
  [[nodiscard]] std::uint8_t type() const override { return kRumorPush; }
  [[nodiscard]] const char* name() const override { return "app.push"; }
  void encode(wire::Writer& w) const override {
    w.u8(type());
    w.u32(rumor_id);
  }
};

struct RumorPullReq final : net::Message {
  [[nodiscard]] std::uint8_t type() const override { return kRumorPullReq; }
  [[nodiscard]] const char* name() const override { return "app.pull_req"; }
  void encode(wire::Writer& w) const override { w.u8(type()); }
};

struct RumorPullRes final : net::Message {
  std::uint32_t rumor_id = 0;
  [[nodiscard]] std::uint8_t type() const override { return kRumorPullRes; }
  [[nodiscard]] const char* name() const override { return "app.pull_res"; }
  void encode(wire::Writer& w) const override {
    w.u8(type());
    w.u32(rumor_id);
  }
};

// Application state for one node: rumor possession + gossip behaviour.
class RumorApp final : public net::MessageHandler {
 public:
  RumorApp(run::World& world, net::NodeId self)
      : world_(world), self_(self) {}

  void infect() { infected_ = true; }
  [[nodiscard]] bool infected() const { return infected_; }

  void on_message(net::NodeId from, const net::Message& msg) override {
    switch (msg.type()) {
      case kRumorPush:
        infected_ = true;
        break;
      case kRumorPullReq:
        if (infected_) {
          world_.network().send(self_, from,
                                std::make_shared<RumorPullRes>());
        }
        break;
      case kRumorPullRes:
        infected_ = true;
        break;
      default:
        break;
    }
  }

  // One application gossip round, driven off the PSS samples.
  void round(std::size_t push_fanout) {
    auto* sampler = world_.sampler(self_);
    if (sampler == nullptr) return;
    if (infected_) {
      for (std::size_t i = 0; i < push_fanout; ++i) {
        if (const auto peer = sampler->sample(); peer.has_value()) {
          world_.network().send(self_, peer->id,
                                std::make_shared<RumorPush>());
        }
      }
    }
    // Pull regardless of state (cheap anti-entropy).
    if (const auto peer = sampler->sample(); peer.has_value()) {
      world_.network().send(self_, peer->id,
                            std::make_shared<RumorPullReq>());
    }
  }

 private:
  run::World& world_;
  net::NodeId self_;
  bool infected_ = false;
};

}  // namespace

int main() {
  const std::size_t publics = 100;
  const std::size_t privates = 400;
  run::Experiment experiment(run::SpecBuilder()
                                 .protocol("croupier")
                                 .nodes(publics + privates)
                                 .ratio(0.2)
                                 .instant_joins()
                                 .duration(90)
                                 .record_nothing()
                                 .build(),
                             /*seed=*/11);
  run::World& world = experiment.world();

  // Let the PSS warm up before the application starts.
  world.simulator().run_until(sim::sec(30));

  std::unordered_map<net::NodeId, std::unique_ptr<RumorApp>> apps;
  for (net::NodeId id : world.alive_ids()) {
    auto app = std::make_unique<RumorApp>(world, id);
    world.set_app_handler(id, app.get());
    apps.emplace(id, std::move(app));
  }

  // Patient zero: one private node learns the rumor.
  for (net::NodeId id : world.alive_ids()) {
    if (world.type_of(id) == net::NatType::Private) {
      apps.at(id)->infect();
      std::printf("rumor injected at private node %u\n", id);
      break;
    }
  }

  // Drive app rounds once per second for a minute; report coverage.
  std::printf("%6s %10s %12s %12s\n", "t(s)", "coverage", "public-cov",
              "private-cov");
  for (int t = 0; t <= 30; ++t) {
    std::size_t infected = 0;
    std::size_t inf_pub = 0;
    std::size_t inf_priv = 0;
    for (const auto& [id, app] : apps) {
      if (!app->infected()) continue;
      ++infected;
      (world.type_of(id) == net::NatType::Public ? inf_pub : inf_priv) += 1;
    }
    if (t % 3 == 0 || infected == apps.size()) {
      std::printf("%6d %9.1f%% %11.1f%% %11.1f%%\n", t,
                  100.0 * static_cast<double>(infected) /
                      static_cast<double>(apps.size()),
                  100.0 * static_cast<double>(inf_pub) /
                      static_cast<double>(publics),
                  100.0 * static_cast<double>(inf_priv) /
                      static_cast<double>(privates));
    }
    if (infected == apps.size()) {
      std::printf("full coverage after %d app rounds\n", t);
      break;
    }
    for (const auto& [id, app] : apps) {
      app->round(/*push_fanout=*/2);
    }
    world.simulator().run_until(world.simulator().now() + sim::sec(1));
  }
  return 0;
}
