// Decentralized aggregation on top of the PSS — the paper's §I cites
// gossip-based aggregation [2] as a canonical PSS consumer.
//
// Every node holds a local value (here: a synthetic temperature) and the
// network estimates the global average with push-pull averaging driven by
// Croupier samples. NAT-correct variant: a node can only *initiate* an
// exchange, and the exchange completes when the target is reachable (the
// simulated network enforces this). Private targets are reachable through
// mappings the PSS traffic keeps warm or not at all — so convergence
// leans on public nodes, yet remains correct because averaging preserves
// the global sum wherever the pairs happen to form.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "runtime/spec.hpp"
#include "runtime/world.hpp"

namespace {

using namespace croupier;

constexpr std::uint8_t kAvgPush = 0x90;
constexpr std::uint8_t kAvgPull = 0x91;

struct AvgPush final : net::Message {
  double value = 0;  // initiator's half of the pairwise average
  [[nodiscard]] std::uint8_t type() const override { return kAvgPush; }
  [[nodiscard]] const char* name() const override { return "agg.push"; }
  void encode(wire::Writer& w) const override {
    w.u8(type());
    w.u64(static_cast<std::uint64_t>(value * 1e6));
  }
};

struct AvgPull final : net::Message {
  double value = 0;  // responder's half
  [[nodiscard]] std::uint8_t type() const override { return kAvgPull; }
  [[nodiscard]] const char* name() const override { return "agg.pull"; }
  void encode(wire::Writer& w) const override {
    w.u8(type());
    w.u64(static_cast<std::uint64_t>(value * 1e6));
  }
};

class AveragingApp final : public net::MessageHandler {
 public:
  AveragingApp(run::World& world, net::NodeId self, double initial)
      : world_(world), self_(self), value_(initial) {}

  [[nodiscard]] double value() const { return value_; }

  void on_message(net::NodeId from, const net::Message& msg) override {
    switch (msg.type()) {
      case kAvgPush: {
        // Push-pull step (Jelasity et al. [2]): both sides move to the
        // pairwise mean; the sum over the network is invariant.
        const double theirs = static_cast<const AvgPush&>(msg).value;
        auto reply = std::make_shared<AvgPull>();
        reply->value = value_;
        value_ = (value_ + theirs) / 2.0;
        world_.network().send(self_, from, std::move(reply));
        break;
      }
      case kAvgPull: {
        const double theirs = static_cast<const AvgPull&>(msg).value;
        if (awaiting_pull_) {
          value_ = (value_ + theirs) / 2.0;
          awaiting_pull_ = false;
        }
        break;
      }
      default:
        break;
    }
  }

  void round() {
    auto* sampler = world_.sampler(self_);
    if (sampler == nullptr) return;
    const auto peer = sampler->sample();
    if (!peer.has_value()) return;
    auto push = std::make_shared<AvgPush>();
    push->value = value_;
    awaiting_pull_ = true;
    world_.network().send(self_, peer->id, std::move(push));
  }

 private:
  run::World& world_;
  net::NodeId self_;
  double value_;
  bool awaiting_pull_ = false;
};

}  // namespace

int main() {
  // 80 public + 320 private nodes, all present from the start; the
  // application drives its own clock below, so nothing is recorded.
  run::Experiment experiment(run::SpecBuilder()
                                 .protocol("croupier")
                                 .nodes(400)
                                 .ratio(0.2)
                                 .instant_joins()
                                 .duration(120)
                                 .record_nothing()
                                 .build(),
                             /*seed=*/5);
  run::World& world = experiment.world();
  world.simulator().run_until(sim::sec(30));  // PSS warm-up

  // Synthetic sensor readings: mean 20.0 with wide spread.
  sim::RngStream rng(99);
  std::unordered_map<net::NodeId, std::unique_ptr<AveragingApp>> apps;
  double true_sum = 0;
  for (net::NodeId id : world.alive_ids()) {
    const double reading = 20.0 + rng.normal(0.0, 8.0);
    true_sum += reading;
    auto app = std::make_unique<AveragingApp>(world, id, reading);
    world.set_app_handler(id, app.get());
    apps.emplace(id, std::move(app));
  }
  const double true_avg = true_sum / static_cast<double>(apps.size());
  std::printf("true average: %.4f over %zu nodes\n", true_avg, apps.size());

  std::printf("%6s %12s %14s\n", "round", "mean|err|", "max|err|");
  for (int round = 1; round <= 40; ++round) {
    for (const auto& [id, app] : apps) app->round();
    world.simulator().run_until(world.simulator().now() + sim::sec(1));
    if (round % 5 != 0) continue;
    double worst = 0;
    double sum = 0;
    for (const auto& [id, app] : apps) {
      const double err = std::abs(app->value() - true_avg);
      worst = std::max(worst, err);
      sum += err;
    }
    std::printf("%6d %12.5f %14.5f\n", round,
                sum / static_cast<double>(apps.size()), worst);
  }
  std::printf(
      "\npairwise averaging over PSS samples converges towards the global\n"
      "mean; exchanges blocked by NATs only slow it down, they cannot\n"
      "corrupt it (the pairwise step conserves the global sum).\n");
  return 0;
}
