// Sampling quality: measures the PSS contract directly.
//
// At a set of observer nodes, draws one sample per round for several
// simulated minutes and checks:
//  1. class balance — the fraction of public samples should track ω
//     (this is exactly what the ratio estimator buys Croupier);
//  2. spread — how many distinct peers a node sees over time (a random
//     walk over fresh views should keep discovering new nodes);
//  3. uniformity — a chi-squared statistic of the empirical sample
//     distribution against the uniform one.
//
// Run it twice to compare Croupier with NAT-oblivious Cyclon on the same
// 80%-private population: Cyclon's samples collapse onto public nodes.
#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>

#include "runtime/spec.hpp"
#include "runtime/world.hpp"

namespace {

using namespace croupier;

struct Quality {
  double public_share = 0;
  double distinct_frac = 0;
  double chi2_per_cell = 0;  // ~1.0 for a perfectly uniform sampler
  double dead_share = 0;     // samples pointing at already-dead nodes
  double nat_drop_share = 0;  // protocol packets eaten by NAT filters
};

Quality measure(const std::string& protocol, std::uint64_t seed) {
  // Continuous churn from t=30 s: stale descriptors then point at dead
  // nodes, so a sampler that fails to refresh its views hands out dead
  // peers. Both systems run the identical spec — only the protocol name
  // differs.
  run::Experiment experiment(run::SpecBuilder()
                                 .protocol(protocol)
                                 .nodes(500)
                                 .ratio(0.2)
                                 .instant_joins()
                                 .churn(0.01, 30)
                                 .duration(330)
                                 .record_nothing()
                                 .build(),
                             seed);
  run::World& world = experiment.world();
  world.simulator().run_until(sim::sec(30));

  net::NodeId observer = world.alive_ids().front();
  std::unordered_map<net::NodeId, std::size_t> counts;
  std::size_t total = 0;
  std::size_t public_hits = 0;
  std::size_t dead_hits = 0;

  for (int round = 0; round < 600; ++round) {
    world.simulator().run_until(world.simulator().now() + sim::msec(500));
    if (!world.alive(observer)) {  // churned away: move to a survivor
      observer = world.alive_ids().front();
      continue;
    }
    auto* sampler = world.sampler(observer);
    const auto peer = sampler->sample();
    if (!peer.has_value()) continue;
    ++counts[peer->id];
    ++total;
    if (!world.alive(peer->id)) {
      ++dead_hits;
    } else if (world.type_of(peer->id) == net::NatType::Public) {
      ++public_hits;
    }
  }

  Quality q;
  q.public_share = static_cast<double>(public_hits) /
                   static_cast<double>(total);
  q.dead_share = static_cast<double>(dead_hits) / static_cast<double>(total);
  q.distinct_frac = static_cast<double>(counts.size()) /
                    static_cast<double>(world.alive_count());
  // Chi-squared against uniform over all alive nodes, normalized by the
  // cell count so 1.0 ~ uniform.
  const double expected = static_cast<double>(total) /
                          static_cast<double>(world.alive_count());
  double chi2 = 0;
  for (net::NodeId id : world.alive_ids()) {
    const auto it = counts.find(id);
    const double observed =
        it == counts.end() ? 0.0 : static_cast<double>(it->second);
    chi2 += (observed - expected) * (observed - expected) / expected;
  }
  q.chi2_per_cell = chi2 / static_cast<double>(world.alive_count());
  const auto& drops = world.network().drops();
  q.nat_drop_share =
      static_cast<double>(drops.nat_filtered) /
      static_cast<double>(drops.nat_filtered + drops.delivered);
  return q;
}

}  // namespace

int main() {
  std::printf(
      "sampling quality at one observer, 500 nodes, omega=0.2, 600 draws,\n"
      "1%%/round churn after warm-up\n");
  std::printf("%-10s %14s %12s %16s %11s %11s\n", "system", "public-share",
              "dead-share", "distinct-peers", "chi2/cell", "nat-drops");

  const auto croupier_q = measure("croupier", /*seed=*/3);
  std::printf("%-10s %13.1f%% %11.1f%% %15.1f%% %11.2f %10.1f%%\n",
              "croupier", croupier_q.public_share * 100,
              croupier_q.dead_share * 100, croupier_q.distinct_frac * 100,
              croupier_q.chi2_per_cell, croupier_q.nat_drop_share * 100);

  const auto cyclon_q = measure("cyclon", /*seed=*/3);
  std::printf("%-10s %13.1f%% %11.1f%% %15.1f%% %11.2f %10.1f%%\n", "cyclon",
              cyclon_q.public_share * 100, cyclon_q.dead_share * 100,
              cyclon_q.distinct_frac * 100, cyclon_q.chi2_per_cell,
              cyclon_q.nat_drop_share * 100);

  std::printf(
      "\nomega = 0.2: a correct PSS hands out ~20%% public samples. Both\n"
      "systems keep sample quality comparable at this churn rate — but\n"
      "Croupier does so with zero NAT-filtered packets, while NAT-oblivious\n"
      "Cyclon burns the nat-drops share of its gossip against closed NATs\n"
      "(and partitions outright at higher private fractions; see\n"
      "bench/ablation_nat_oblivious).\n");
  return 0;
}
