// Quickstart: stand up a NATted network, run Croupier on every node, and
// consume the peer sampling service.
//
//   $ ./quickstart
//
// Walks through the whole public API surface:
//  1. configure the protocol (view sizes, estimator windows);
//  2. build a World (simulator + NATted network + bootstrap oracle);
//  3. add nodes — 20% open-Internet, 80% behind address-restricted NATs;
//  4. run simulated time;
//  5. draw uniform random samples at a node and inspect the ratio
//     estimate the sampling relies on.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/croupier.hpp"
#include "runtime/factories.hpp"
#include "runtime/scenario.hpp"
#include "runtime/world.hpp"

int main() {
  using namespace croupier;

  // 1. Protocol configuration (paper defaults: view 10, shuffle 5,
  //    1 s rounds, alpha=25, gamma=50).
  core::CroupierConfig protocol;
  protocol.base.view_size = 10;
  protocol.base.shuffle_size = 5;
  protocol.estimator.local_history = 25;     // alpha
  protocol.estimator.neighbour_history = 50; // gamma

  // 2. World: deterministic simulator + network with King-like latencies.
  run::World::Config config;
  config.seed = 42;
  run::World world(config, run::make_croupier_factory(protocol));

  // 3. Population: 100 public, 400 private (omega = 0.2), joining as two
  //    Poisson processes like the paper's experiments.
  run::schedule_poisson_joins(world, 100, net::NatConfig::open(),
                              sim::msec(50));
  run::schedule_poisson_joins(world, 400, net::NatConfig::natted(),
                              sim::msec(13));

  // 4. Let the gossip run for two simulated minutes.
  world.simulator().run_until(sim::sec(120));

  std::printf("nodes alive:        %zu\n", world.alive_count());
  std::printf("true ratio omega:   %.3f\n", world.true_ratio());

  // 5. Consume the PSS at an arbitrary node.
  const net::NodeId me = world.alive_ids().front();
  auto* sampler = world.sampler(me);
  const auto* node = dynamic_cast<const core::Croupier*>(sampler);

  std::printf("node %u estimate:   %.3f\n", me,
              sampler->ratio_estimate().value_or(-1.0));
  std::printf("public view:        %zu entries\n",
              node->public_view().size());
  std::printf("private view:       %zu entries\n",
              node->private_view().size());

  std::printf("ten uniform samples drawn at node %u:\n", me);
  for (int i = 0; i < 10; ++i) {
    const auto peer = sampler->sample();
    if (!peer.has_value()) continue;
    std::printf("  node %-6u (%s, descriptor age %u rounds)\n", peer->id,
                net::to_cstring(peer->nat_type), peer->age);
  }

  // Population-wide estimation quality, the paper's headline metric.
  double worst = 0;
  double sum = 0;
  const auto estimates = world.ratio_estimates();
  for (double e : estimates) {
    const double err = std::abs(e - world.true_ratio());
    worst = std::max(worst, err);
    sum += err;
  }
  std::printf("avg estimation err: %.4f over %zu nodes (max %.4f)\n",
              sum / static_cast<double>(estimates.size()), estimates.size(),
              worst);
  return 0;
}
