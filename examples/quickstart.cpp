// Quickstart: stand up a NATted network, run Croupier on every node, and
// consume the peer sampling service.
//
//   $ ./quickstart
//
// Walks through the whole public API surface:
//  1. describe the experiment declaratively (protocol by registry name
//     with key=value overrides, population, workload, horizon);
//  2. materialize it — Experiment builds the World (simulator + NATted
//     network + bootstrap oracle) and schedules the join processes;
//  3. run simulated time;
//  4. draw uniform random samples at a node and inspect the ratio
//     estimate the sampling relies on.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/croupier.hpp"
#include "runtime/spec.hpp"

int main() {
  using namespace croupier;

  // 1. The whole experiment as data. Protocol options ride in the
  //    registry spec string (paper defaults: view 10, shuffle 5, 1 s
  //    rounds, alpha=25, gamma=50); population is 100 public + 400
  //    private nodes (omega = 0.2) joining as two Poisson processes like
  //    the paper's experiments. The same spec round-trips through text:
  //    run::ExperimentSpec::parse(spec.to_string()) == spec.
  const auto spec = run::SpecBuilder()
                        .protocol("croupier:alpha=25,gamma=50")
                        .nodes(500)
                        .ratio(0.2)
                        .poisson_joins(50, 13)
                        .duration(120)
                        .record_nothing()
                        .build();
  std::printf("spec: %s\n\n", spec.to_string().c_str());

  // 2. Materialize: deterministic simulator + network with King-like
  //    latencies, one Croupier instance per node.
  run::Experiment experiment(spec, /*seed=*/42);
  run::World& world = experiment.world();

  // 3. Let the gossip run for two simulated minutes.
  experiment.run();

  std::printf("nodes alive:        %zu\n", world.alive_count());
  std::printf("true ratio omega:   %.3f\n", world.true_ratio());

  // 4. Consume the PSS at an arbitrary node.
  const net::NodeId me = world.alive_ids().front();
  auto* sampler = world.sampler(me);
  const auto* node = dynamic_cast<const core::Croupier*>(sampler);

  std::printf("node %u estimate:   %.3f\n", me,
              sampler->ratio_estimate().value_or(-1.0));
  std::printf("public view:        %zu entries\n",
              node->public_view().size());
  std::printf("private view:       %zu entries\n",
              node->private_view().size());

  std::printf("ten uniform samples drawn at node %u:\n", me);
  for (int i = 0; i < 10; ++i) {
    const auto peer = sampler->sample();
    if (!peer.has_value()) continue;
    std::printf("  node %-6u (%s, descriptor age %u rounds)\n", peer->id,
                net::to_cstring(peer->nat_type), peer->age);
  }

  // Population-wide estimation quality, the paper's headline metric.
  double worst = 0;
  double sum = 0;
  const auto estimates = world.ratio_estimates();
  for (double e : estimates) {
    const double err = std::abs(e - world.true_ratio());
    worst = std::max(worst, err);
    sum += err;
  }
  std::printf("avg estimation err: %.4f over %zu nodes (max %.4f)\n",
              sum / static_cast<double>(estimates.size()), estimates.size(),
              worst);
  return 0;
}
