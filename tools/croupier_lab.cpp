// croupier-lab: the declarative experiment driver.
//
// Runs any run::ExperimentSpec through the exp::TrialPool / ResultSink
// pipeline — the one binary that replaces writing a new bench for every
// new scenario. A sweep is a list of specs: pass --protocol repeatedly to
// compare samplers under identical conditions (PeerSwap-style), or
// --spec repeatedly to run arbitrary serialized specs.
//
//   croupier-lab --protocol=croupier --nodes=1000 --ratio=0.2
//                --churn=0.01 --runs=5 --csv=out.csv
//   croupier-lab --protocol=croupier:alpha=10,gamma=25
//                --protocol=croupier:alpha=25,gamma=50 --duration=350
//   croupier-lab --spec="protocol=gozar nodes=500 ratio=0.2 duration=120"
//
// Output matches the fig benches: gnuplot series blocks on stdout (avg-
// and max-error per spec for estimation recording; path length and
// clustering for graph recording), stddev third column when --runs>1,
// optional CSV mirror. Spec points are trial-grid points, so the seed of
// (point p, run r) is exp::trial_seed(seed, p, r) — invoking croupier-lab
// with fig1's three (alpha,gamma) specs reproduces fig1's series
// byte-for-byte at the same --seed/--runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "exp/memory.hpp"

namespace {

using namespace croupier;

constexpr const char* kUsage =
    "croupier-lab: run declarative peer-sampling experiments\n"
    "\n"
    "spec selection (one sweep point per flag occurrence):\n"
    "  --protocol=NAME[:k=v,...]  protocol for the shared scenario; repeat\n"
    "                             to sweep several samplers (croupier,\n"
    "                             cyclon, gozar, nylon, arrg)\n"
    "  --spec=\"k=v k=v ...\"       full ExperimentSpec string; repeat to\n"
    "                             sweep (exclusive with scenario flags)\n"
    "scenario (shared by every --protocol point):\n"
    "  --nodes=N                  population size (default 1000)\n"
    "  --ratio=R                  public fraction omega (default 0.2)\n"
    "  --join=poisson|fixed|instant   join process (default poisson)\n"
    "  --join-public-ms=MS --join-private-ms=MS   inter-arrival times\n"
    "  --step-publics=N --step-privates=N   second join wave sizes\n"
    "  --step-at=S --step-every-ms=MS        wave start / interval\n"
    "  --flash=at:S,publics:N,privates:N,over:S   flash crowd: a join\n"
    "                             surge ramping up then down inside the\n"
    "                             window (e.g. at:120,publics:500,\n"
    "                             privates:125,over:10)\n"
    "  --churn=F                  fraction replaced per round (default 0)\n"
    "  --churn-at=S               churn start (default 61)\n"
    "  --catastrophe=F            fraction crashing at one instant\n"
    "  --catastrophe-at=S         crash time (default 60)\n"
    "  --failure=at:S,frac:F,corr:C   correlated failure: frac of the\n"
    "                             system crashes as one cohort; corr is\n"
    "                             uniform|region|public|private\n"
    "                             (region = a contiguous latency\n"
    "                             neighbourhood around a random\n"
    "                             epicenter)\n"
    "  --eclipse=target:N,at:S,period:S   eclipse attack: every period,\n"
    "                             every node the target points at is\n"
    "                             crashed and replaced, starving the\n"
    "                             target of honest links\n"
    "  --natflap=frac:F,at:S,period:S   NAT flapping: frac of nodes flip\n"
    "                             NAT class each period and flip back the\n"
    "                             next, invalidating relay/RVP state\n"
    "  --adversary=hubs:N         N public joiners run the self-promoting\n"
    "                             hub shim instead of the honest sampler\n"
    "  --loss=P | --loss=pub-pub:P,priv-any:P,...,after:S\n"
    "                             uniform or per-class-pair message loss\n"
    "                             (pairs are sender-receiver with `any`\n"
    "                             wildcards; after delays activation)\n"
    "  --mtu=N                    datagram payload limit in bytes; larger\n"
    "                             messages split into fragments, each its\n"
    "                             own loss roll (0 = off, default)\n"
    "  --bandwidth=BPS | --bandwidth=rate:BPS,burst:BYTES\n"
    "                             per-node send cap (token bucket, bytes/\n"
    "                             second); queueing delay when saturated\n"
    "                             inflates delivery latency\n"
    "  --fec=R | --fec=repair:R,rate:X\n"
    "                             rateless repair fragments appended per\n"
    "                             fragmented message (fixed count plus\n"
    "                             ceil(rate*k)); requires --mtu\n"
    "  --skew=S                   clock skew fraction (default 0.01)\n"
    "  --private-round-scale=X    slow private rounds by X (default 1)\n"
    "  --latency=king|constant|coordinate   latency model (default king)\n"
    "  --latency-ms=MS            constant-latency value (default 50)\n"
    "  --round-ms=MS              gossip round period (default 1000)\n"
    "  --natid                    joiners run the NAT-ID protocol\n"
    "  --duration=S               horizon in seconds (default 200)\n"
    "  --record=estimation|graph|graph-sampled|randomness\n"
    "                             what to record (default estimation);\n"
    "                             graph-sampled runs the O(sample)\n"
    "                             streaming estimators for worlds too\n"
    "                             large to snapshot; randomness runs the\n"
    "                             statistical sampler audit (in-degree\n"
    "                             chi-square z, lag-1 repeat ratio,\n"
    "                             public-selection bias)\n"
    "  --record-every=S           sampling interval (default 1 / 10)\n"
    "harness:\n"
    "  --runs=N --seed=S --jobs=N --csv=PATH   as in the fig benches;\n"
    "                             with --runs>1 series rows gain a stddev\n"
    "                             column and the CSV gains `spread` rows\n"
    "  --world-jobs=N             workers inside each trial World (the\n"
    "                             round-synchronous parallel engine);\n"
    "                             output is byte-identical for every N\n"
    "  --print-spec               print canonical spec strings and exit\n"
    "\n"
    "Per sweep point, elapsed wall-clock, the effective parallelism\n"
    "(concurrent trials x world shards), and resident memory are\n"
    "reported on stderr, so speedups and footprints are observable\n"
    "without external tooling.\n";

struct LabFlags {
  std::vector<std::string> protocols;
  std::vector<std::string> raw_specs;
  std::vector<std::pair<std::string, std::string>> scenario;  // key, value
  bool print_spec = false;

  /// BenchArgs extra-flag hook: true when `arg` is a lab flag.
  bool consume(const std::string& arg) {
    static constexpr const char* kSpecKeys[] = {
        "nodes",          "ratio",        "join",        "join-public-ms",
        "join-private-ms", "step-publics", "step-privates", "step-at",
        "step-every-ms",  "flash",        "churn",       "churn-at",
        "catastrophe",    "catastrophe-at", "failure",   "loss",
        "eclipse",        "natflap",      "adversary",
        "mtu",            "bandwidth",    "fec",
        "skew",           "private-round-scale",
        "latency",        "latency-ms",   "round-ms",    "duration",
        "record",         "record-every",
    };
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    }
    if (arg == "--fast") {
      // The fig benches shrink their hard-coded scale under --fast; the
      // lab's scale is explicit, so accepting it silently would be the
      // same trap the unknown-flag warning exists to close.
      std::fprintf(stderr,
                   "warning: croupier-lab has no --fast mode; set "
                   "--nodes/--duration explicitly (flag ignored)\n");
      return true;
    }
    if (arg == "--print-spec") {
      print_spec = true;
      return true;
    }
    if (arg == "--natid") {
      scenario.emplace_back("natid", "1");
      return true;
    }
    if (arg.rfind("--protocol=", 0) == 0) {
      protocols.push_back(arg.substr(11));
      return true;
    }
    if (arg.rfind("--spec=", 0) == 0) {
      raw_specs.push_back(arg.substr(7));
      return true;
    }
    for (const char* key : kSpecKeys) {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) {
        scenario.emplace_back(key, arg.substr(prefix.size()));
        return true;
      }
    }
    return false;
  }
};

/// The sweep: one ExperimentSpec per point, built either from --spec
/// strings or from the shared scenario flags times the protocol list.
std::vector<run::ExperimentSpec> build_specs(const LabFlags& flags) {
  std::vector<run::ExperimentSpec> specs;
  if (!flags.raw_specs.empty()) {
    if (!flags.protocols.empty() || !flags.scenario.empty()) {
      std::fprintf(stderr,
                   "error: --spec is exclusive with --protocol and the "
                   "scenario flags\n");
      std::exit(1);
    }
    for (const auto& raw : flags.raw_specs) {
      specs.push_back(run::ExperimentSpec::parse(raw));
    }
    return specs;
  }

  // Scenario flags reuse the ExperimentSpec string syntax key for key, so
  // the base spec is just their concatenation.
  std::string base_text;
  for (const auto& [key, value] : flags.scenario) {
    base_text += key + "=" + value + " ";
  }
  const auto protocols = flags.protocols.empty()
                             ? std::vector<std::string>{"croupier"}
                             : flags.protocols;
  for (const auto& protocol : protocols) {
    specs.push_back(
        run::ExperimentSpec::parse(base_text + "protocol=" + protocol));
  }
  return specs;
}

struct GraphSeries {
  std::vector<double> t;
  std::vector<double> apl;
  std::vector<double> cc;
};

GraphSeries to_graph_series(const run::GraphStatsRecorder& recorder) {
  GraphSeries out;
  for (const auto& p : recorder.series()) {
    out.t.push_back(p.t_seconds);
    out.apl.push_back(p.avg_path_length);
    out.cc.push_back(p.clustering_coefficient);
  }
  return out;
}

/// Streaming pointwise aggregation of graph series (the graph-recording
/// twin of bench::SeriesFold): each finished trial folds into Welford
/// accumulators and is freed.
struct GraphFold {
  std::vector<double> t;
  exp::SeriesAccum apl;
  exp::SeriesAccum cc;

  void add(const GraphSeries& run) {
    if (t.empty()) t = run.t;
    apl.add(run.apl);
    cc.add(run.cc);
  }
};

/// graph-sampled recording: the streaming-estimator series carries two
/// extra columns the exact recorder cannot afford at scale.
struct SampledSeries {
  std::vector<double> t;
  std::vector<double> apl;
  std::vector<double> cc;
  std::vector<double> indeg_cv;
  std::vector<double> component;
};

SampledSeries to_sampled_series(const run::SampledGraphStatsRecorder& rec) {
  SampledSeries out;
  for (const auto& p : rec.series()) {
    out.t.push_back(p.t_seconds);
    out.apl.push_back(p.avg_path_length);
    out.cc.push_back(p.clustering_coefficient);
    out.indeg_cv.push_back(p.in_degree_cv);
    out.component.push_back(p.largest_component_fraction);
  }
  return out;
}

struct SampledFold {
  std::vector<double> t;
  exp::SeriesAccum apl;
  exp::SeriesAccum cc;
  exp::SeriesAccum indeg_cv;
  exp::SeriesAccum component;

  void add(const SampledSeries& run) {
    if (t.empty()) t = run.t;
    apl.add(run.apl);
    cc.add(run.cc);
    indeg_cv.add(run.indeg_cv);
    component.add(run.component);
  }
};

/// randomness recording: the statistical audit series — the three
/// normalized statistics whose honest-case expectations are known in
/// closed form (chi2 z ~ 0, repeat ratio ~ 1, bias ratio ~ 1).
struct RandomnessSeries {
  std::vector<double> t;
  std::vector<double> chi2_z;
  std::vector<double> repeat_ratio;
  std::vector<double> bias_ratio;
};

RandomnessSeries to_randomness_series(const run::RandomnessAuditRecorder& rec) {
  RandomnessSeries out;
  for (const auto& p : rec.series()) {
    out.t.push_back(p.t_seconds);
    out.chi2_z.push_back(p.chi2_z);
    out.repeat_ratio.push_back(p.repeat_ratio);
    out.bias_ratio.push_back(p.bias_ratio);
  }
  return out;
}

struct RandomnessFold {
  std::vector<double> t;
  exp::SeriesAccum chi2_z;
  exp::SeriesAccum repeat_ratio;
  exp::SeriesAccum bias_ratio;

  void add(const RandomnessSeries& run) {
    if (t.empty()) t = run.t;
    chi2_z.add(run.chi2_z);
    repeat_ratio.add(run.repeat_ratio);
    bias_ratio.add(run.bias_ratio);
  }
};

/// Wall-clock accounting for one sweep point, reported on stderr so the
/// determinism gate (which byte-compares stdout and CSV across --jobs /
/// --world-jobs) never sees it.
struct PointTiming {
  exp::Accum seconds;
  double max_seconds = 0.0;
  std::uint64_t max_rss = 0;  // resident set observed at fold time
  net::Network::DropStats drops;  // summed across the point's trials

  void add(double s, const net::Network::DropStats& d) {
    seconds.add(s);
    max_seconds = std::max(max_seconds, s);
    // Sampled when the trial folds. Trials of different points
    // interleave under --jobs, so this is an upper bound on the point's
    // own footprint — tight when points run alone, still the number
    // that answers "did this sweep fit in memory".
    max_rss = std::max(max_rss, exp::current_rss_bytes());
    drops.loss += d.loss;
    drops.nat_filtered += d.nat_filtered;
    drops.dead_receiver += d.dead_receiver;
    drops.delivered += d.delivered;
    drops.loss_bytes += d.loss_bytes;
    drops.nat_filtered_bytes += d.nat_filtered_bytes;
    drops.dead_receiver_bytes += d.dead_receiver_bytes;
    drops.delivered_bytes += d.delivered_bytes;
    drops.fragments_sent += d.fragments_sent;
    drops.fragments_lost += d.fragments_lost;
    drops.fragments_reassembled += d.fragments_reassembled;
    drops.fragments_expired += d.fragments_expired;
  }
};

void report_timing(const std::vector<std::string>& labels,
                   const std::vector<PointTiming>& timing,
                   const bench::BenchArgs& args, double elapsed) {
  const std::size_t shards = std::max<std::size_t>(1, args.world_jobs);
  for (std::size_t p = 0; p < labels.size(); ++p) {
    const auto& d = timing[p].drops;
    std::fprintf(stderr,
                 "# timing %s: trials=%zu wall-sum=%.2fs wall-max=%.2fs "
                 "rss-max=%.1fMiB "
                 "drop-bytes=loss:%llu,nat:%llu,dead:%llu "
                 "frags=sent:%llu,lost:%llu,reassembled:%llu,expired:%llu "
                 "effective-parallelism=%zu "
                 "(%zu trials x %zu world shards)\n",
                 labels[p].c_str(), timing[p].seconds.n(),
                 timing[p].seconds.mean() *
                     static_cast<double>(timing[p].seconds.n()),
                 timing[p].max_seconds,
                 static_cast<double>(timing[p].max_rss) / (1024.0 * 1024.0),
                 static_cast<unsigned long long>(d.loss_bytes),
                 static_cast<unsigned long long>(d.nat_filtered_bytes),
                 static_cast<unsigned long long>(d.dead_receiver_bytes),
                 static_cast<unsigned long long>(d.fragments_sent),
                 static_cast<unsigned long long>(d.fragments_lost),
                 static_cast<unsigned long long>(d.fragments_reassembled),
                 static_cast<unsigned long long>(d.fragments_expired),
                 args.trial_jobs() * shards, args.trial_jobs(), shards);
  }
  std::fprintf(stderr, "# timing total: elapsed=%.2fs peak-rss=%.1fMiB\n",
               elapsed,
               static_cast<double>(exp::peak_rss_bytes()) /
                   (1024.0 * 1024.0));
}

void emit_estimation(exp::ResultSink& sink, const std::string& label,
                     const bench::SeriesFold& fold, std::size_t n_runs) {
  const auto agg = fold.finish();
  bench::emit_series(sink, label + " avg-error", agg.t, agg.avg_err,
                     agg.avg_err_sd, n_runs);
  bench::emit_series(sink, label + " max-error", agg.t, agg.max_err,
                     agg.max_err_sd, n_runs);
  const std::string block = "summary " + label;
  const double steady_avg = bench::steady_state(agg.avg_err);
  const double steady_max = bench::steady_state(agg.max_err);
  sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                         block.c_str(), steady_avg, steady_max));
  sink.blank();
  sink.value(block, "steady avg-err", steady_avg);
  sink.value(block, "steady max-err", steady_max);
}

void emit_graph(exp::ResultSink& sink, const std::string& label,
                const GraphFold& fold, std::size_t n_runs) {
  const std::vector<double> apl = fold.apl.means();
  const std::vector<double> apl_sd = fold.apl.stddevs();
  const std::vector<double> cc = fold.cc.means();
  const std::vector<double> cc_sd = fold.cc.stddevs();
  const std::vector<double> t(
      fold.t.begin(),
      fold.t.begin() + static_cast<std::ptrdiff_t>(apl.size()));
  bench::emit_series(sink, label + " avg-path-length", t, apl, apl_sd,
                     n_runs, "%.0f", "%.4f");
  bench::emit_series(sink, label + " clustering-coefficient", t, cc, cc_sd,
                     n_runs, "%.0f", "%.5f");
  const std::string block = "summary " + label;
  const double final_apl = apl.empty() ? 0.0 : apl.back();
  const double final_cc = cc.empty() ? 0.0 : cc.back();
  sink.comment(exp::strf("%s: final apl=%.3f final cc=%.4f", block.c_str(),
                         final_apl, final_cc));
  sink.blank();
  sink.value(block, "final apl", final_apl);
  sink.value(block, "final cc", final_cc);
}

void emit_graph_sampled(exp::ResultSink& sink, const std::string& label,
                        const SampledFold& fold, std::size_t n_runs) {
  const std::vector<double> apl = fold.apl.means();
  const std::vector<double> cc = fold.cc.means();
  const std::vector<double> cv = fold.indeg_cv.means();
  const std::vector<double> comp = fold.component.means();
  const std::vector<double> t(
      fold.t.begin(),
      fold.t.begin() + static_cast<std::ptrdiff_t>(apl.size()));
  bench::emit_series(sink, label + " avg-path-length", t, apl,
                     fold.apl.stddevs(), n_runs, "%.0f", "%.4f");
  bench::emit_series(sink, label + " clustering-coefficient", t, cc,
                     fold.cc.stddevs(), n_runs, "%.0f", "%.5f");
  bench::emit_series(sink, label + " in-degree-cv", t, cv,
                     fold.indeg_cv.stddevs(), n_runs, "%.0f", "%.4f");
  bench::emit_series(sink, label + " largest-component", t, comp,
                     fold.component.stddevs(), n_runs, "%.0f", "%.4f");
  const std::string block = "summary " + label;
  const double final_apl = apl.empty() ? 0.0 : apl.back();
  const double final_cc = cc.empty() ? 0.0 : cc.back();
  const double final_comp = comp.empty() ? 0.0 : comp.back();
  sink.comment(exp::strf("%s: final apl=%.3f final cc=%.4f "
                         "final largest-component=%.4f",
                         block.c_str(), final_apl, final_cc, final_comp));
  sink.blank();
  sink.value(block, "final apl", final_apl);
  sink.value(block, "final cc", final_cc);
  sink.value(block, "final largest-component", final_comp);
}

void emit_randomness(exp::ResultSink& sink, const std::string& label,
                     const RandomnessFold& fold, std::size_t n_runs) {
  const std::vector<double> z = fold.chi2_z.means();
  const std::vector<double> rep = fold.repeat_ratio.means();
  const std::vector<double> bias = fold.bias_ratio.means();
  const std::vector<double> t(
      fold.t.begin(),
      fold.t.begin() + static_cast<std::ptrdiff_t>(z.size()));
  bench::emit_series(sink, label + " indegree-chi2-z", t, z,
                     fold.chi2_z.stddevs(), n_runs, "%.0f", "%.4f");
  bench::emit_series(sink, label + " repeat-ratio", t, rep,
                     fold.repeat_ratio.stddevs(), n_runs, "%.0f", "%.4f");
  bench::emit_series(sink, label + " bias-ratio", t, bias,
                     fold.bias_ratio.stddevs(), n_runs, "%.0f", "%.4f");
  const std::string block = "summary " + label;
  const double final_z = z.empty() ? 0.0 : z.back();
  const double final_rep = rep.empty() ? 0.0 : rep.back();
  const double final_bias = bias.empty() ? 0.0 : bias.back();
  sink.comment(exp::strf("%s: final chi2-z=%.3f final repeat-ratio=%.4f "
                         "final bias-ratio=%.4f",
                         block.c_str(), final_z, final_rep, final_bias));
  sink.blank();
  sink.value(block, "final chi2-z", final_z);
  sink.value(block, "final repeat-ratio", final_rep);
  sink.value(block, "final bias-ratio", final_bias);
}

/// Runs the sweep's trial grid with streaming per-point folds plus
/// per-trial wall-clock and drop-stat capture. `run_trial(p, seed)`
/// executes one trial and returns (series, DropStats); the series is
/// folded in grid order (byte-identical for every --jobs).
template <typename Fold, typename RunTrial>
std::vector<Fold> run_lab_grid(exp::TrialPool& pool,
                               const bench::BenchArgs& args,
                               std::size_t points, RunTrial&& run_trial,
                               std::vector<PointTiming>& timing) {
  std::vector<Fold> folds(points);
  pool.map_fold(
      points * args.runs,
      [&](std::size_t i) {
        const std::size_t p = i / args.runs;
        const std::size_t r = i % args.runs;
        // detlint:allow(wallclock) per-trial timing, reported on stderr
        // only (report_timing) — never reaches the result sink.
        const auto start = std::chrono::steady_clock::now();
        auto trial = run_trial(p, exp::trial_seed(args.seed, p, r));
        // detlint:allow(wallclock) stderr-only timing, as above.
        const auto trial_end = std::chrono::steady_clock::now();
        const std::chrono::duration<double> took = trial_end - start;
        return std::make_tuple(std::move(trial.first), trial.second,
                               took.count());
      },
      [&](std::size_t i, auto&& result) {
        folds[i / args.runs].add(std::get<0>(result));
        timing[i / args.runs].add(std::get<2>(result), std::get<1>(result));
      });
  return folds;
}

}  // namespace

int main(int argc, char** argv) {
  LabFlags flags;
  const auto args = bench::BenchArgs::parse(
      argc, argv, [&flags](const std::string& a) { return flags.consume(a); });

  std::vector<run::ExperimentSpec> specs;
  try {
    specs = build_specs(flags);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (flags.print_spec) {
    for (const auto& spec : specs) {
      std::printf("%s\n", spec.to_string().c_str());
    }
    return 0;
  }
  for (const auto& spec : specs) {
    if (spec.record == run::ExperimentSpec::RecordKind::None) {
      std::fprintf(stderr,
                   "error: record=none records nothing to report; use "
                   "record=estimation, record=graph, or "
                   "record=graph-sampled\n");
      return 1;
    }
    if (spec.record != specs[0].record) {
      std::fprintf(stderr,
                   "error: every spec of one sweep must record the same "
                   "kind\n");
      return 1;
    }
  }

  // Series labels default to the protocol spec; sweep points that share
  // one (several --spec strings varying only the scenario) are suffixed
  // with their point index so no two output blocks collide.
  std::vector<std::string> labels;
  labels.reserve(specs.size());
  for (const auto& spec : specs) labels.push_back(spec.protocol);
  const std::vector<std::string> plain = labels;
  for (std::size_t p = 0; p < labels.size(); ++p) {
    std::size_t same = 0;
    for (const auto& label : plain) same += label == plain[p] ? 1 : 0;
    if (same > 1) labels[p] += exp::strf(" #%zu", p);
  }

  exp::TrialPool pool(args.trial_jobs());
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf("croupier-lab: %zu spec(s), %zu run(s), seed %llu",
                         specs.size(), args.runs,
                         static_cast<unsigned long long>(args.seed)));
  for (const auto& spec : specs) sink.comment(spec.to_string());
  sink.blank();

  // detlint:allow(wallclock) sweep wall-clock for the stderr timing
  // report only; the sink output carries no wall-clock bytes.
  const auto sweep_start = std::chrono::steady_clock::now();
  std::vector<PointTiming> timing(specs.size());
  const auto record = specs[0].record;
  if (record == run::ExperimentSpec::RecordKind::Graph) {
    const auto folds = run_lab_grid<GraphFold>(
        pool, args, specs.size(),
        [&](std::size_t p, std::uint64_t seed) {
          run::Experiment experiment(specs[p], seed, args.world_jobs);
          experiment.run();
          return std::make_pair(to_graph_series(*experiment.graph_stats()),
                                experiment.world().network().drops());
        },
        timing);
    for (std::size_t p = 0; p < specs.size(); ++p) {
      emit_graph(sink, labels[p], folds[p], args.runs);
    }
  } else if (record == run::ExperimentSpec::RecordKind::Randomness) {
    const auto folds = run_lab_grid<RandomnessFold>(
        pool, args, specs.size(),
        [&](std::size_t p, std::uint64_t seed) {
          run::Experiment experiment(specs[p], seed, args.world_jobs);
          experiment.run();
          return std::make_pair(
              to_randomness_series(*experiment.randomness()),
              experiment.world().network().drops());
        },
        timing);
    for (std::size_t p = 0; p < specs.size(); ++p) {
      emit_randomness(sink, labels[p], folds[p], args.runs);
    }
  } else if (record == run::ExperimentSpec::RecordKind::GraphSampled) {
    const auto folds = run_lab_grid<SampledFold>(
        pool, args, specs.size(),
        [&](std::size_t p, std::uint64_t seed) {
          run::Experiment experiment(specs[p], seed, args.world_jobs);
          experiment.run();
          return std::make_pair(
              to_sampled_series(*experiment.graph_sampled()),
              experiment.world().network().drops());
        },
        timing);
    for (std::size_t p = 0; p < specs.size(); ++p) {
      emit_graph_sampled(sink, labels[p], folds[p], args.runs);
    }
  } else {
    const auto folds = run_lab_grid<bench::SeriesFold>(
        pool, args, specs.size(),
        [&](std::size_t p, std::uint64_t seed) {
          run::Experiment experiment(specs[p], seed, args.world_jobs);
          experiment.run();
          return std::make_pair(bench::to_series(*experiment.estimation()),
                                experiment.world().network().drops());
        },
        timing);
    for (std::size_t p = 0; p < specs.size(); ++p) {
      emit_estimation(sink, labels[p], folds[p], args.runs);
    }
  }
  // detlint:allow(wallclock) stderr-only timing report, as above.
  const auto sweep_end = std::chrono::steady_clock::now();
  const std::chrono::duration<double> elapsed = sweep_end - sweep_start;
  report_timing(labels, timing, args, elapsed.count());
  return 0;
}
