// croupier-lab: the declarative experiment driver.
//
// Runs any run::ExperimentSpec through the exp::TrialPool / ResultSink
// pipeline — the one binary that replaces writing a new bench for every
// new scenario. A sweep is a list of specs: pass --protocol repeatedly to
// compare samplers under identical conditions (PeerSwap-style), or
// --spec repeatedly to run arbitrary serialized specs.
//
//   croupier-lab --protocol=croupier --nodes=1000 --ratio=0.2
//                --churn=0.01 --runs=5 --csv=out.csv
//   croupier-lab --protocol=croupier:alpha=10,gamma=25
//                --protocol=croupier:alpha=25,gamma=50 --duration=350
//   croupier-lab --spec="protocol=gozar nodes=500 ratio=0.2 duration=120"
//
// Output matches the fig benches: gnuplot series blocks on stdout (avg-
// and max-error per spec for estimation recording; path length and
// clustering for graph recording), stddev third column when --runs>1,
// optional CSV mirror. Spec points are trial-grid points, so the seed of
// (point p, run r) is exp::trial_seed(seed, p, r) — invoking croupier-lab
// with fig1's three (alpha,gamma) specs reproduces fig1's series
// byte-for-byte at the same --seed/--runs.
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace croupier;

constexpr const char* kUsage =
    "croupier-lab: run declarative peer-sampling experiments\n"
    "\n"
    "spec selection (one sweep point per flag occurrence):\n"
    "  --protocol=NAME[:k=v,...]  protocol for the shared scenario; repeat\n"
    "                             to sweep several samplers (croupier,\n"
    "                             cyclon, gozar, nylon, arrg)\n"
    "  --spec=\"k=v k=v ...\"       full ExperimentSpec string; repeat to\n"
    "                             sweep (exclusive with scenario flags)\n"
    "scenario (shared by every --protocol point):\n"
    "  --nodes=N                  population size (default 1000)\n"
    "  --ratio=R                  public fraction omega (default 0.2)\n"
    "  --join=poisson|fixed|instant   join process (default poisson)\n"
    "  --join-public-ms=MS --join-private-ms=MS   inter-arrival times\n"
    "  --churn=F                  fraction replaced per round (default 0)\n"
    "  --churn-at=S               churn start (default 61)\n"
    "  --catastrophe=F            fraction crashing at one instant\n"
    "  --catastrophe-at=S         crash time (default 60)\n"
    "  --loss=P                   uniform message loss probability\n"
    "  --skew=S                   clock skew fraction (default 0.01)\n"
    "  --latency=king|constant|coordinate   latency model (default king)\n"
    "  --latency-ms=MS            constant-latency value (default 50)\n"
    "  --natid                    joiners run the NAT-ID protocol\n"
    "  --duration=S               horizon in seconds (default 200)\n"
    "  --record=estimation|graph  what to record (default estimation)\n"
    "  --record-every=S           sampling interval (default 1 / 10)\n"
    "harness:\n"
    "  --runs=N --seed=S --jobs=N --csv=PATH   as in the fig benches;\n"
    "                             with --runs>1 series rows gain a stddev\n"
    "                             column and the CSV gains `spread` rows\n"
    "  --print-spec               print canonical spec strings and exit\n";

struct LabFlags {
  std::vector<std::string> protocols;
  std::vector<std::string> raw_specs;
  std::vector<std::pair<std::string, std::string>> scenario;  // key, value
  bool print_spec = false;

  /// BenchArgs extra-flag hook: true when `arg` is a lab flag.
  bool consume(const std::string& arg) {
    static constexpr const char* kSpecKeys[] = {
        "nodes",          "ratio",     "join",       "join-public-ms",
        "join-private-ms", "churn",    "churn-at",   "catastrophe",
        "catastrophe-at", "loss",      "skew",       "latency",
        "latency-ms",     "duration",  "record",     "record-every",
    };
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    }
    if (arg == "--fast") {
      // The fig benches shrink their hard-coded scale under --fast; the
      // lab's scale is explicit, so accepting it silently would be the
      // same trap the unknown-flag warning exists to close.
      std::fprintf(stderr,
                   "warning: croupier-lab has no --fast mode; set "
                   "--nodes/--duration explicitly (flag ignored)\n");
      return true;
    }
    if (arg == "--print-spec") {
      print_spec = true;
      return true;
    }
    if (arg == "--natid") {
      scenario.emplace_back("natid", "1");
      return true;
    }
    if (arg.rfind("--protocol=", 0) == 0) {
      protocols.push_back(arg.substr(11));
      return true;
    }
    if (arg.rfind("--spec=", 0) == 0) {
      raw_specs.push_back(arg.substr(7));
      return true;
    }
    for (const char* key : kSpecKeys) {
      const std::string prefix = std::string("--") + key + "=";
      if (arg.rfind(prefix, 0) == 0) {
        scenario.emplace_back(key, arg.substr(prefix.size()));
        return true;
      }
    }
    return false;
  }
};

/// The sweep: one ExperimentSpec per point, built either from --spec
/// strings or from the shared scenario flags times the protocol list.
std::vector<run::ExperimentSpec> build_specs(const LabFlags& flags) {
  std::vector<run::ExperimentSpec> specs;
  if (!flags.raw_specs.empty()) {
    if (!flags.protocols.empty() || !flags.scenario.empty()) {
      std::fprintf(stderr,
                   "error: --spec is exclusive with --protocol and the "
                   "scenario flags\n");
      std::exit(1);
    }
    for (const auto& raw : flags.raw_specs) {
      specs.push_back(run::ExperimentSpec::parse(raw));
    }
    return specs;
  }

  // Scenario flags reuse the ExperimentSpec string syntax key for key, so
  // the base spec is just their concatenation.
  std::string base_text;
  for (const auto& [key, value] : flags.scenario) {
    base_text += key + "=" + value + " ";
  }
  const auto protocols = flags.protocols.empty()
                             ? std::vector<std::string>{"croupier"}
                             : flags.protocols;
  for (const auto& protocol : protocols) {
    specs.push_back(
        run::ExperimentSpec::parse(base_text + "protocol=" + protocol));
  }
  return specs;
}

struct GraphSeries {
  std::vector<double> t;
  std::vector<double> apl;
  std::vector<double> cc;
};

GraphSeries to_graph_series(const run::GraphStatsRecorder& recorder) {
  GraphSeries out;
  for (const auto& p : recorder.series()) {
    out.t.push_back(p.t_seconds);
    out.apl.push_back(p.avg_path_length);
    out.cc.push_back(p.clustering_coefficient);
  }
  return out;
}

/// Pointwise mean/stddev over equally-gridded runs of (t, y) pairs.
void aggregate_column(const std::vector<GraphSeries>& runs,
                      std::vector<double> GraphSeries::*column,
                      std::vector<double>& mean, std::vector<double>& sd) {
  if (runs.empty()) return;
  std::size_t len = runs[0].t.size();
  for (const auto& r : runs) len = std::min(len, r.t.size());
  const auto n = static_cast<double>(runs.size());
  for (std::size_t i = 0; i < len; ++i) {
    double sum = 0;
    for (const auto& r : runs) sum += (r.*column)[i];
    const double m = sum / n;
    double var = 0;
    for (const auto& r : runs) {
      var += ((r.*column)[i] - m) * ((r.*column)[i] - m);
    }
    mean.push_back(m);
    sd.push_back(std::sqrt(var / (runs.size() > 1 ? n - 1 : 1)));
  }
}

void emit_estimation(exp::ResultSink& sink, const std::string& label,
                     const std::vector<bench::EstimationSeries>& runs,
                     std::size_t n_runs) {
  const auto agg = bench::aggregate_runs(runs);
  bench::emit_series(sink, label + " avg-error", agg.t, agg.avg_err,
                     agg.avg_err_sd, n_runs);
  bench::emit_series(sink, label + " max-error", agg.t, agg.max_err,
                     agg.max_err_sd, n_runs);
  const std::string block = "summary " + label;
  const double steady_avg = bench::steady_state(agg.avg_err);
  const double steady_max = bench::steady_state(agg.max_err);
  sink.comment(exp::strf("%s: steady avg-err=%.5f steady max-err=%.5f",
                         block.c_str(), steady_avg, steady_max));
  sink.blank();
  sink.value(block, "steady avg-err", steady_avg);
  sink.value(block, "steady max-err", steady_max);
}

void emit_graph(exp::ResultSink& sink, const std::string& label,
                const std::vector<GraphSeries>& runs, std::size_t n_runs) {
  std::vector<double> apl;
  std::vector<double> apl_sd;
  std::vector<double> cc;
  std::vector<double> cc_sd;
  aggregate_column(runs, &GraphSeries::apl, apl, apl_sd);
  aggregate_column(runs, &GraphSeries::cc, cc, cc_sd);
  std::vector<double> t(runs.empty() ? std::vector<double>{}
                                     : std::vector<double>(
                                           runs[0].t.begin(),
                                           runs[0].t.begin() +
                                               static_cast<std::ptrdiff_t>(
                                                   apl.size())));
  bench::emit_series(sink, label + " avg-path-length", t, apl, apl_sd,
                     n_runs, "%.0f", "%.4f");
  bench::emit_series(sink, label + " clustering-coefficient", t, cc, cc_sd,
                     n_runs, "%.0f", "%.5f");
  const std::string block = "summary " + label;
  const double final_apl = apl.empty() ? 0.0 : apl.back();
  const double final_cc = cc.empty() ? 0.0 : cc.back();
  sink.comment(exp::strf("%s: final apl=%.3f final cc=%.4f", block.c_str(),
                         final_apl, final_cc));
  sink.blank();
  sink.value(block, "final apl", final_apl);
  sink.value(block, "final cc", final_cc);
}

}  // namespace

int main(int argc, char** argv) {
  LabFlags flags;
  const auto args = bench::BenchArgs::parse(
      argc, argv, [&flags](const std::string& a) { return flags.consume(a); });

  std::vector<run::ExperimentSpec> specs;
  try {
    specs = build_specs(flags);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (flags.print_spec) {
    for (const auto& spec : specs) {
      std::printf("%s\n", spec.to_string().c_str());
    }
    return 0;
  }
  for (const auto& spec : specs) {
    if (spec.record == run::ExperimentSpec::RecordKind::None) {
      std::fprintf(stderr,
                   "error: record=none records nothing to report; use "
                   "record=estimation or record=graph\n");
      return 1;
    }
    if (spec.record != specs[0].record) {
      std::fprintf(stderr,
                   "error: every spec of one sweep must record the same "
                   "kind\n");
      return 1;
    }
  }

  // Series labels default to the protocol spec; sweep points that share
  // one (several --spec strings varying only the scenario) are suffixed
  // with their point index so no two output blocks collide.
  std::vector<std::string> labels;
  labels.reserve(specs.size());
  for (const auto& spec : specs) labels.push_back(spec.protocol);
  const std::vector<std::string> plain = labels;
  for (std::size_t p = 0; p < labels.size(); ++p) {
    std::size_t same = 0;
    for (const auto& label : plain) same += label == plain[p] ? 1 : 0;
    if (same > 1) labels[p] += exp::strf(" #%zu", p);
  }

  exp::TrialPool pool(args.jobs);
  exp::ResultSink sink(args.csv);
  sink.comment(exp::strf("croupier-lab: %zu spec(s), %zu run(s), seed %llu",
                         specs.size(), args.runs,
                         static_cast<unsigned long long>(args.seed)));
  for (const auto& spec : specs) sink.comment(spec.to_string());
  sink.blank();

  const bool graph =
      specs[0].record == run::ExperimentSpec::RecordKind::Graph;
  if (graph) {
    const auto grid = bench::run_trial_grid(
        pool, args, specs.size(), [&](std::size_t p, std::uint64_t seed) {
          run::Experiment experiment(specs[p], seed);
          experiment.run();
          return to_graph_series(*experiment.graph_stats());
        });
    for (std::size_t p = 0; p < specs.size(); ++p) {
      emit_graph(sink, labels[p], grid[p], args.runs);
    }
  } else {
    const auto grid = bench::run_trial_grid(
        pool, args, specs.size(), [&](std::size_t p, std::uint64_t seed) {
          return bench::run_spec_series(specs[p], seed);
        });
    for (std::size_t p = 0; p < specs.size(); ++p) {
      emit_estimation(sink, labels[p], grid[p], args.runs);
    }
  }
  return 0;
}
