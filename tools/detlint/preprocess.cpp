// Lexical front end: blanks comments and string/char literals so the
// rule passes match only real code, and harvests detlint:allow
// suppressions from the comment text as it goes.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>

#include "detlint.hpp"

namespace detlint {
namespace {

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// True iff `s` is shaped like a rule id: lowercase letters and dashes.
/// Anything else (e.g. the `rule[,rule]` placeholder in documentation
/// that *describes* the syntax) marks the comment as prose, not a
/// directive.
bool rule_shaped(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::islower(static_cast<unsigned char>(c)) || c == '-')) {
      return false;
    }
  }
  return true;
}

/// Parses one comment's text for a suppression directive. Grammar:
///   detlint:allow(<ids>) reason...
///   detlint:allow-file(<ids>) reason...
/// with <ids> a comma list of rule ids. Returns true when a directive is
/// recognised — including `()` (empty rule list) and well-shaped-but-
/// unknown ids, which the meta-rule flags. Placeholder text whose "ids"
/// are not rule-shaped is treated as documentation and ignored; a typo'd
/// directive that slips through this way simply fails to suppress, so
/// the underlying finding still surfaces.
bool parse_suppression(const std::string& comment, int line,
                       Suppression& out) {
  const std::size_t at = comment.find("detlint:allow");
  if (at == std::string::npos) return false;
  std::size_t p = at + std::string("detlint:allow").size();
  // In a multi-line block comment the directive's own line is what the
  // same-line/line-above matching works from.
  out.line = line + static_cast<int>(
                        std::count(comment.begin(),
                                   comment.begin() + static_cast<std::ptrdiff_t>(at),
                                   '\n'));
  out.file_level = false;
  if (comment.compare(p, 5, "-file") == 0) {
    out.file_level = true;
    p += 5;
  }
  if (p >= comment.size() || comment[p] != '(') return false;  // prose
  const std::size_t close = comment.find(')', p);
  if (close == std::string::npos) return false;
  std::string rule;
  std::vector<std::string> rules;
  for (std::size_t i = p + 1; i <= close; ++i) {
    if (i == close || comment[i] == ',') {
      rule = trim(rule);
      if (!rule.empty()) rules.push_back(rule);
      rule.clear();
    } else {
      rule += comment[i];
    }
  }
  for (const std::string& r : rules) {
    if (!rule_shaped(r)) return false;  // documentation, not a directive
  }
  out.rules = rules;
  out.reason = trim(comment.substr(close + 1));
  return true;
}

}  // namespace

FileScan preprocess(const std::string& path, const std::string& content) {
  FileScan fs;
  fs.path = path;
  fs.code = content;
  fs.line_starts.push_back(0);

  enum class State {
    Code,
    LineComment,
    BlockComment,
    Str,
    Char,
    RawStr,
  };
  State state = State::Code;
  int line = 1;
  std::string comment_text;  // accumulates the current comment block
  int comment_line = 1;
  // Consecutive //-lines form one block so a suppression's reason can
  // continue over several lines; the block's last line is the anchor the
  // line-above matching works from.
  bool pending = false;  // a finished //-block that the next line may extend
  int pending_end = 0;   // its last line
  std::string raw_delim;  // the )delim" closer of the active raw string

  const auto flush_comment = [&](int end_line) {
    Suppression sup;
    if (parse_suppression(comment_text, comment_line, sup)) {
      sup.end_line = end_line;
      fs.suppressions.push_back(sup);
    }
    comment_text.clear();
    pending = false;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      fs.line_starts.push_back(i + 1);
    }

    switch (state) {
      case State::Code:
        if (pending && !std::isspace(static_cast<unsigned char>(c)) &&
            !(c == '/' && (next == '/' || next == '*'))) {
          flush_comment(pending_end);  // real code ends the //-block
        }
        if (c == '/' && next == '/') {
          if (pending && line == pending_end + 1) {
            comment_text += '\n';  // adjacent //-line: same block
            pending = false;
          } else {
            if (pending) flush_comment(pending_end);
            comment_line = line;
          }
          state = State::LineComment;
          fs.code[i] = ' ';
          fs.code[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          if (pending) flush_comment(pending_end);
          state = State::BlockComment;
          comment_line = line;
          fs.code[i] = ' ';
          fs.code[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // Raw string: R"delim( ... )delim"
          std::size_t j = i + 2;
          std::string delim;
          while (j < content.size() && content[j] != '(') {
            delim += content[j];
            ++j;
          }
          raw_delim = ")" + delim + "\"";
          fs.code[i] = ' ';
          for (std::size_t k = i + 1; k <= j && k < content.size(); ++k) {
            fs.code[k] = ' ';
          }
          i = j;
          state = State::RawStr;
        } else if (c == '"') {
          fs.code[i] = ' ';
          state = State::Str;
        } else if (c == '\'' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   content[i - 1])) &&
                               content[i - 1] != '_'))) {
          // The preceding-char check keeps digit separators (1'000'000)
          // out of the literal state.
          fs.code[i] = ' ';
          state = State::Char;
        }
        break;

      case State::LineComment:
        if (c == '\n') {
          pending = true;
          pending_end = line - 1;  // ++line already ran for this '\n'
          state = State::Code;
        } else {
          comment_text += c;
          fs.code[i] = ' ';
        }
        break;

      case State::BlockComment:
        if (c == '*' && next == '/') {
          fs.code[i] = ' ';
          fs.code[i + 1] = ' ';
          ++i;
          flush_comment(line);
          state = State::Code;
        } else {
          if (c != '\n') {
            comment_text += c;
            fs.code[i] = ' ';
          } else {
            comment_text += '\n';
          }
        }
        break;

      case State::Str:
        if (c == '\\') {
          fs.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            fs.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          fs.code[i] = ' ';
          state = State::Code;
        } else if (c != '\n') {
          fs.code[i] = ' ';
        }
        break;

      case State::Char:
        if (c == '\\') {
          fs.code[i] = ' ';
          if (next != '\0' && next != '\n') {
            fs.code[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          fs.code[i] = ' ';
          state = State::Code;
        } else if (c != '\n') {
          fs.code[i] = ' ';
        }
        break;

      case State::RawStr:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = i; k < i + raw_delim.size(); ++k) {
            fs.code[k] = ' ';
          }
          i += raw_delim.size() - 1;
          state = State::Code;
        } else if (c != '\n') {
          fs.code[i] = ' ';
        }
        break;
    }
  }
  if (state == State::LineComment || state == State::BlockComment) {
    flush_comment(line);
  } else if (pending) {
    flush_comment(pending_end);
  }
  return fs;
}

}  // namespace detlint
