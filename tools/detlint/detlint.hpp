// detlint — the determinism lint.
//
// A token-level static-analysis pass over src/, bench/, tools/, and
// tests/ (minus the deliberately-dirty detlint_fixtures/) that
// enforces the repo's byte-identity contract at the source level: same
// spec + seed => identical output bytes, regardless of --jobs or
// --world-jobs. The dynamic gates (scripts/check_determinism.sh, the
// twin-run tests) catch a violation only on inputs they happen to run;
// detlint bans the *constructs* that produce one.
//
// Rule catalog (ids are what suppressions name):
//   entropy         ambient entropy sources: std::rand/srand,
//                   std::random_device, drand48 family, getrandom,
//                   arc4random. All randomness must flow from
//                   sim::RngStream forks of the experiment seed.
//   wallclock       wall-clock reads: time(), clock(), gettimeofday,
//                   clock_gettime, system_clock/steady_clock/
//                   high_resolution_clock, __DATE__/__TIME__. Allowed
//                   only at suppressed wall-clock *reporting* sites
//                   (stderr timing lines), never in anything that feeds
//                   result bytes.
//   unordered-iter  iteration over std::unordered_map/unordered_set
//                   (range-for over a declared unordered variable or a
//                   call returning one, or explicit .begin()/.cbegin()
//                   loops). Hash-table iteration order is an accident of
//                   insertion history and libstdc++ internals; in an
//                   output-reachable function it decides output bytes.
//                   Findings note when the enclosing function is
//                   reachable from a recorder/sink/wire output path.
//   ptr-key         std::map/std::set (or unordered) keyed on a pointer
//                   type: ASLR makes the ordering differ across runs.
//   raw-shuffle     std::shuffle/std::sample/std::random_shuffle —
//                   permutations must route through sim::RngStream
//                   (shuffle/sample_prefix/sample) so they consume the
//                   seeded stream.
//   float-accum     raw `+=` accumulation into a float/double inside a
//                   loop in src/metrics/ — order-sensitive summation in
//                   the layer that computes the published numbers. Use
//                   Welford (exp::Accum/SeriesAccum) or iterate a
//                   deterministically ordered sequence and say so in a
//                   suppression.
//   cross-shard-mutate
//                   a function reachable from a node-affine handler root
//                   (protocol on_message/round, Network send/deliver, the
//                   round driver) touches cross-node engine state (the
//                   traffic meter, drop counters, shared msg-id counter,
//                   token buckets, the loss/latency RNG, the node table,
//                   the bootstrap oracle) outside a Simulator::defer
//                   argument or a `!deferring()` serial guard. Such a
//                   write lands mid-batch on a worker thread and its
//                   order relative to sibling shards is a scheduling
//                   accident — the exact hazard the byte-identity
//                   contract bans.
//   naked-schedule  Simulator::schedule_after/schedule_at (or cancel)
//                   reachable from shard context without the deferring()
//                   guard. Inside a parallel batch schedule_impl
//                   auto-defers and returns kInvalidEventId, so storing
//                   or cancelling the id is broken; cancel() asserts
//                   outright. Guard with !deferring(), route through
//                   defer(), or waive with the reason the id is
//                   discarded.
//   rng-lineage     RngStream fork-tag audit: two forks of the same
//                   receiver with the same literal tag yield *identical*
//                   streams (fork hashes (lineage, tag) and nothing
//                   else), and a static/thread_local RngStream is one
//                   stream shared across node-affine handlers — its draw
//                   order depends on batch scheduling.
//   suppression     meta-rule: a detlint:allow with an unknown rule id,
//                   a missing/too-short reason, or one that suppresses
//                   nothing.
//
// Suppression syntax (same line as the finding, or in the comment block
// that ends on the line directly above it — the reason may continue over
// several comment lines):
//   // detlint:allow(<rule>[,<rule>]) <reason, at least 8 characters>
//   // detlint:allow-file(<rule>) <reason>     — whole file
//
// Analysis is deliberately lexical (comments and string/char literals are
// blanked first): it is fast, has no compiler dependency, and is exact
// enough for this tree's idiom. The price is a conservative posture —
// anything flagged must be fixed or carry a written reason.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace detlint {

struct Finding {
  std::string file;  // as given to add_file (repo-relative by convention)
  int line = 0;
  std::string rule;
  std::string message;
  std::string function;           // enclosing function, "" if file scope
  bool output_reachable = false;  // via the heuristic call graph
};

/// Stable ordering for reports: file, then line, then rule.
bool operator<(const Finding& a, const Finding& b);

struct Suppression {
  int line = 0;      // the directive's own line (same-line matching)
  int end_line = 0;  // last line of the comment block (line-above matching)
  bool file_level = false;
  std::vector<std::string> rules;
  std::string reason;
  bool used = false;
};

/// One function definition recognised by the heuristic parser.
struct FunctionDef {
  std::string name;  // unqualified
  int line = 0;
  std::size_t body_begin = 0;  // offsets into the blanked code
  std::size_t body_end = 0;
  std::set<std::string> calls;  // unqualified callee names
  /// Every call site with its offset — the affinity pass needs positions
  /// so edges inside defer()/serial-guard extents can be skipped.
  std::vector<std::pair<std::string, std::size_t>> call_sites;
  bool is_root = false;        // emits output itself (see rules.cpp)
  bool is_shard_root = false;  // node-affine handler registration site
};

/// Per-file scan state: the blanked source plus everything the per-file
/// rule passes extracted from it.
struct FileScan {
  std::string path;
  std::string code;  // comments + string/char literals blanked to spaces
  std::vector<std::size_t> line_starts;
  std::vector<Suppression> suppressions;
  std::vector<FunctionDef> functions;
  std::set<std::string> unordered_vars;  // identifiers of unordered type
  std::set<std::string> unordered_fns;   // functions returning unordered
  std::set<std::string> float_vars;      // identifiers of float/double type
  /// Offset ranges where cross-node effects are legal: the argument of a
  /// defer(...) call, or the then-block of an `if (!...deferring...)`
  /// serial guard. Marker uses and call-graph edges inside these are
  /// exempt from the affinity rules.
  std::vector<std::pair<std::size_t, std::size_t>> exempt_extents;
  std::vector<Finding> findings;         // pre-suppression
};

/// Blanks comments and string/char literals (layout preserved) and
/// collects detlint:allow suppressions from the comment text.
FileScan preprocess(const std::string& path, const std::string& content);

/// Runs the per-file passes (declaration harvesting, banned tokens,
/// iteration analysis, float accumulation, function extraction).
void analyze(FileScan& fs);

class Linter {
 public:
  /// Feeds one source file. `path` should be repo-relative with '/'
  /// separators; rule scoping (e.g. float-accum in src/metrics/ only)
  /// matches on it.
  void add_file(const std::string& path, const std::string& content);

  /// Cross-file linking: merges unordered-returning function names,
  /// re-runs iteration analysis with the merged set, computes
  /// output-path reachability, applies suppressions, and reports
  /// bad/unused suppressions. Returns all surviving findings, sorted.
  std::vector<Finding> run();

  [[nodiscard]] const std::vector<FileScan>& files() const { return files_; }

  /// The known rule ids (for --list-rules and suppression validation).
  static const std::set<std::string>& rule_ids();

 private:
  std::vector<FileScan> files_;
};

/// Formats a finding as "path:line: [rule] message ...".
std::string format(const Finding& f);

}  // namespace detlint
