// detlint CLI: scans src/, bench/, and tools/ under --root (default the
// current directory) and exits nonzero when any determinism finding
// survives suppression — the ctest/CI gate.
//
//   detlint [--root=DIR] [extra files or dirs...]
//   detlint --list-rules
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

namespace fs = std::filesystem;

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx";
}

void collect(const fs::path& root, const fs::path& p,
             std::vector<std::string>& out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (fs::recursive_directory_iterator it(p, ec), end; it != end;
         it.increment(ec)) {
      if (it->is_regular_file(ec) && scannable(it->path())) {
        out.push_back(fs::relative(it->path(), root, ec).generic_string());
      }
    }
  } else if (fs::is_regular_file(p, ec) && scannable(p)) {
    out.push_back(fs::relative(p, root, ec).generic_string());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> extra;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--root=", 0) == 0) {
      root = a.substr(7);
    } else if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--help") {
      std::printf("usage: detlint [--root=DIR] [files-or-dirs...]\n"
                  "       detlint --list-rules\n");
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "detlint: unknown flag %s\n", a.c_str());
      return 2;
    } else {
      extra.push_back(a);
    }
  }

  if (list_rules) {
    for (const std::string& r : detlint::Linter::rule_ids()) {
      std::printf("%s\n", r.c_str());
    }
    return 0;
  }

  std::vector<std::string> paths;
  if (extra.empty()) {
    for (const char* dir : {"src", "bench", "tools"}) {
      collect(root, fs::path(root) / dir, paths);
    }
  } else {
    for (const std::string& e : extra) {
      collect(root, fs::path(root) / e, paths);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "detlint: nothing to scan under %s\n", root.c_str());
    return 2;
  }

  detlint::Linter linter;
  for (const std::string& rel : paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "detlint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    linter.add_file(rel, buf.str());
  }

  const std::vector<detlint::Finding> findings = linter.run();
  for (const detlint::Finding& f : findings) {
    std::printf("%s\n", detlint::format(f).c_str());
  }
  if (!findings.empty()) {
    std::printf("detlint: %zu finding(s) across %zu file(s) — fix the "
                "hazard or add `// detlint:allow(<rule>) <reason>`\n",
                findings.size(), paths.size());
    return 1;
  }
  std::printf("detlint: clean (%zu files scanned)\n", paths.size());
  return 0;
}
