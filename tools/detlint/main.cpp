// detlint CLI: scans src/, bench/, tools/, and tests/ under --root
// (default the current directory) and exits nonzero when any determinism
// finding survives suppression — the ctest/CI gate.
//
// tests/detlint_fixtures/ is skipped during directory walks: those files
// are deliberate rule violations the fixture suite scans in-process.
// Naming a fixture file directly still works.
//
//   detlint [--root=DIR] [--format=text|sarif] [--output=FILE]
//           [extra files or dirs...]
//   detlint --list-rules
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace {

namespace fs = std::filesystem;

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx";
}

bool is_fixture(const std::string& rel) {
  return rel.rfind("tests/detlint_fixtures/", 0) == 0;
}

void collect(const fs::path& root, const fs::path& p,
             std::vector<std::string>& out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    for (fs::recursive_directory_iterator it(p, ec), end; it != end;
         it.increment(ec)) {
      if (it->is_regular_file(ec) && scannable(it->path())) {
        std::string rel = fs::relative(it->path(), root, ec).generic_string();
        if (!is_fixture(rel)) out.push_back(std::move(rel));
      }
    }
  } else if (fs::is_regular_file(p, ec) && scannable(p)) {
    out.push_back(fs::relative(p, root, ec).generic_string());
  }
}

/// JSON string escaping for the SARIF emitter (control chars, quotes,
/// backslashes; everything else passes through byte-for-byte).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal SARIF 2.1.0 log: one run, one rule entry per known rule, one
/// result per finding. Enough for GitHub code scanning and editors;
/// nothing speculative.
std::string to_sarif(const std::vector<detlint::Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\"name\": \"detlint\", \"rules\": [";
  bool first = true;
  for (const std::string& r : detlint::Linter::rule_ids()) {
    if (!first) out << ", ";
    first = false;
    out << "{\"id\": \"" << json_escape(r) << "\"}";
  }
  out << "]}},\n"
      << "    \"results\": [";
  first = true;
  for (const detlint::Finding& f : findings) {
    if (!first) out << ",";
    first = false;
    std::string text = f.message;
    if (!f.function.empty()) text += " [in " + f.function + "]";
    out << "\n      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(text) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": " << f.line << "}}}]}";
  }
  if (!first) out << "\n    ";
  out << "]\n  }]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string output;
  std::vector<std::string> extra;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--root=", 0) == 0) {
      root = a.substr(7);
    } else if (a.rfind("--format=", 0) == 0) {
      format = a.substr(9);
      if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "detlint: unknown format %s\n", format.c_str());
        return 2;
      }
    } else if (a.rfind("--output=", 0) == 0) {
      output = a.substr(9);
    } else if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--help") {
      std::printf(
          "usage: detlint [--root=DIR] [--format=text|sarif]\n"
          "               [--output=FILE] [files-or-dirs...]\n"
          "       detlint --list-rules\n");
      return 0;
    } else if (a.rfind("--", 0) == 0) {
      std::fprintf(stderr, "detlint: unknown flag %s\n", a.c_str());
      return 2;
    } else {
      extra.push_back(a);
    }
  }

  if (list_rules) {
    for (const std::string& r : detlint::Linter::rule_ids()) {
      std::printf("%s\n", r.c_str());
    }
    return 0;
  }

  std::vector<std::string> paths;
  if (extra.empty()) {
    for (const char* dir : {"src", "bench", "tools", "tests"}) {
      collect(root, fs::path(root) / dir, paths);
    }
  } else {
    for (const std::string& e : extra) {
      collect(root, fs::path(root) / e, paths);
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "detlint: nothing to scan under %s\n", root.c_str());
    return 2;
  }

  detlint::Linter linter;
  for (const std::string& rel : paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "detlint: cannot read %s\n", rel.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    linter.add_file(rel, buf.str());
  }

  const std::vector<detlint::Finding> findings = linter.run();

  std::string rendered;
  if (format == "sarif") {
    rendered = to_sarif(findings);
  } else {
    for (const detlint::Finding& f : findings) {
      rendered += detlint::format(f);
      rendered += '\n';
    }
  }
  if (output.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  } else {
    std::ofstream out(output, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "detlint: cannot write %s\n", output.c_str());
      return 2;
    }
    out << rendered;
  }

  // The human summary rides along whatever the report format — on
  // stderr when a SARIF document owns stdout, so the JSON stays valid.
  std::FILE* const chat =
      (format == "sarif" && output.empty()) ? stderr : stdout;
  if (!findings.empty()) {
    std::fprintf(chat,
                 "detlint: %zu finding(s) across %zu file(s) — fix the "
                 "hazard or add `// detlint:allow(<rule>) <reason>`\n",
                 findings.size(), paths.size());
    return 1;
  }
  std::fprintf(chat, "detlint: clean (%zu files scanned)\n", paths.size());
  return 0;
}
