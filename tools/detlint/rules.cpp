// Rule passes + cross-file linking for detlint.
//
// Everything here works on FileScan::code — the comment/string-blanked
// source — so token matches are real code, never prose or literals. The
// analysis is lexical with just enough structure recovered (declarations,
// loops, function bodies, call sites) to make the determinism rules
// precise on this tree's idiom.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace detlint {

bool operator<(const Finding& a, const Finding& b) {
  if (a.file != b.file) return a.file < b.file;
  if (a.line != b.line) return a.line < b.line;
  if (a.rule != b.rule) return a.rule < b.rule;
  return a.message < b.message;
}

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

int line_at(const FileScan& fs, std::size_t offset) {
  const auto it = std::upper_bound(fs.line_starts.begin(),
                                   fs.line_starts.end(), offset);
  return static_cast<int>(it - fs.line_starts.begin());
}

/// Finds the next occurrence of `word` in `s` at or after `from` that is
/// a whole identifier (not a substring of a longer one). npos when none.
std::size_t find_word(const std::string& s, const std::string& word,
                      std::size_t from) {
  for (std::size_t at = s.find(word, from); at != std::string::npos;
       at = s.find(word, at + 1)) {
    const bool left_ok = at == 0 || !ident_char(s[at - 1]);
    const std::size_t end = at + word.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return at;
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i]))) {
    ++i;
  }
  return i;
}

/// Given `s[open]` in "<([{", returns the offset just past the matching
/// closer, treating the other bracket kinds as nested too (good enough
/// for type and argument lists). npos on imbalance.
std::size_t match_balanced(const std::string& s, std::size_t open) {
  const char oc = s[open];
  const char cc = oc == '<' ? '>' : oc == '(' ? ')' : oc == '[' ? ']' : '}';
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    const char c = s[i];
    if (c == oc) {
      ++depth;
    } else if (c == cc) {
      if (--depth == 0) return i + 1;
    } else if (oc == '<' && (c == ';' || c == '{')) {
      return std::string::npos;  // not a template argument list after all
    }
  }
  return std::string::npos;
}

std::string read_ident(const std::string& s, std::size_t i,
                       std::size_t* end = nullptr) {
  std::size_t j = i;
  while (j < s.size() && ident_char(s[j])) ++j;
  if (end != nullptr) *end = j;
  return s.substr(i, j - i);
}

/// Reads the identifier that *ends* at j (exclusive), walking backwards.
std::string ident_ending_at(const std::string& s, std::size_t j) {
  std::size_t b = j;
  while (b > 0 && ident_char(s[b - 1])) --b;
  return s.substr(b, j - b);
}

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",    "switch",  "return", "catch",
      "sizeof", "alignof", "decltype", "new",    "delete", "throw",
      "else",   "do",     "case",     "default", "static_assert",
  };
  return kw;
}

void add_finding(FileScan& fs, std::size_t offset, const std::string& rule,
                 const std::string& message) {
  Finding f;
  f.file = fs.path;
  f.line = line_at(fs, offset);
  f.rule = rule;
  f.message = message;
  // One finding per (line, rule): the token scans can hit the same
  // construct twice (e.g. std::rand matching both the qualified and the
  // call pattern).
  for (const Finding& g : fs.findings) {
    if (g.line == f.line && g.rule == f.rule) return;
  }
  fs.findings.push_back(f);
}

// --- Declaration harvesting -------------------------------------------

/// Collects identifiers declared with std::unordered_{map,set,...} types
/// (variables, members, and parameters) and names of functions returning
/// such a type. Also flags pointer-keyed containers (rule ptr-key).
void harvest_unordered(FileScan& fs) {
  static const std::vector<std::string> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "map", "set", "multimap", "multiset",
  };
  const std::string& code = fs.code;
  for (const std::string& cont : kContainers) {
    const bool unordered = cont.rfind("unordered", 0) == 0;
    for (std::size_t at = find_word(code, cont, 0); at != std::string::npos;
         at = find_word(code, cont, at + 1)) {
      // Require std:: (possibly ::std::) qualification so project types
      // named `map` don't match.
      if (at < 5 || code.compare(at - 5, 5, "std::") != 0) continue;
      std::size_t p = skip_ws(code, at + cont.size());
      if (p >= code.size() || code[p] != '<') continue;
      const std::size_t args_end = match_balanced(code, p);
      if (args_end == std::string::npos) continue;

      // Pointer-keyed container: '*' in the key (first) template
      // argument at top nesting level.
      {
        int depth = 0;
        for (std::size_t i = p; i < args_end; ++i) {
          const char c = code[i];
          if (c == '<' || c == '(') ++depth;
          if (c == '>' || c == ')') --depth;
          if (depth == 1 && c == ',') break;  // past the key argument
          if (depth == 1 && c == '*') {
            add_finding(fs, at, "ptr-key",
                        "std::" + cont +
                            " keyed on a pointer: ordering/iteration "
                            "depends on allocation addresses (ASLR), not "
                            "on the experiment seed");
            break;
          }
        }
      }
      if (!unordered) continue;

      // What follows the type: `&`/`*`/whitespace then an identifier.
      // Identifier followed by '(' is a function returning the type;
      // otherwise it is a declared variable/member/parameter.
      std::size_t q = skip_ws(code, args_end);
      while (q < code.size() && (code[q] == '&' || code[q] == '*')) {
        q = skip_ws(code, q + 1);
      }
      std::size_t id_end = q;
      const std::string id = read_ident(code, q, &id_end);
      if (id.empty() || std::isdigit(static_cast<unsigned char>(id[0]))) {
        continue;
      }
      const std::size_t after = skip_ws(code, id_end);
      if (after < code.size() && code[after] == '(') {
        fs.unordered_fns.insert(id);
      } else {
        fs.unordered_vars.insert(id);
      }
    }
  }
}

/// Collects identifiers declared float/double (skipping function names).
void harvest_floats(FileScan& fs) {
  const std::string& code = fs.code;
  for (const std::string& ty : {std::string("double"), std::string("float")}) {
    for (std::size_t at = find_word(code, ty, 0); at != std::string::npos;
         at = find_word(code, ty, at + 1)) {
      std::size_t p = skip_ws(code, at + ty.size());
      while (p < code.size() && (code[p] == '&' || code[p] == '*')) {
        p = skip_ws(code, p + 1);
      }
      std::size_t id_end = p;
      const std::string id = read_ident(code, p, &id_end);
      if (id.empty() || std::isdigit(static_cast<unsigned char>(id[0]))) {
        continue;
      }
      const std::size_t after = skip_ws(code, id_end);
      if (after < code.size() && code[after] == '(') continue;  // function
      fs.float_vars.insert(id);
    }
  }
}

// --- Banned token rules ------------------------------------------------

struct TokenRule {
  const char* token;
  const char* rule;
  const char* message;
};

void scan_tokens(FileScan& fs) {
  static const std::vector<TokenRule> kRules = {
      {"rand", "entropy",
       "std::rand/rand(): ambient PRNG outside the seeded sim::RngStream"},
      {"srand", "entropy", "srand(): seeding the ambient PRNG"},
      {"random_device", "entropy",
       "std::random_device: hardware entropy can never reproduce a run"},
      {"drand48", "entropy", "drand48 family: ambient PRNG"},
      {"lrand48", "entropy", "drand48 family: ambient PRNG"},
      {"mrand48", "entropy", "drand48 family: ambient PRNG"},
      {"rand_r", "entropy", "rand_r(): ambient PRNG"},
      {"arc4random", "entropy", "arc4random(): kernel entropy"},
      {"getrandom", "entropy", "getrandom(): kernel entropy"},
      {"getentropy", "entropy", "getentropy(): kernel entropy"},
      {"time", "wallclock", "time(): wall-clock read"},
      {"clock", "wallclock", "clock(): CPU/wall-clock read"},
      {"gettimeofday", "wallclock", "gettimeofday(): wall-clock read"},
      {"clock_gettime", "wallclock", "clock_gettime(): wall-clock read"},
      {"system_clock", "wallclock", "std::chrono::system_clock"},
      {"steady_clock", "wallclock", "std::chrono::steady_clock"},
      {"high_resolution_clock", "wallclock",
       "std::chrono::high_resolution_clock"},
      {"localtime", "wallclock", "localtime(): wall-clock read"},
      {"gmtime", "wallclock", "gmtime(): wall-clock read"},
      {"mktime", "wallclock", "mktime(): wall-clock conversion"},
      {"__DATE__", "wallclock", "__DATE__: build-time stamp in output"},
      {"__TIME__", "wallclock", "__TIME__: build-time stamp in output"},
      {"shuffle", "raw-shuffle",
       "std::shuffle: use sim::RngStream::shuffle so the permutation "
       "consumes the seeded stream"},
      {"random_shuffle", "raw-shuffle", "std::random_shuffle (and removed "
       "in C++17)"},
      {"sample", "raw-shuffle",
       "std::sample: use sim::RngStream::sample/sample_prefix"},
  };
  const std::string& code = fs.code;
  for (const TokenRule& r : kRules) {
    const std::string tok = r.token;
    // time/clock/rand are common identifier tails: require an immediate
    // '(' and no member/namespace qualification other than std::.
    const bool call_shaped =
        tok == "rand" || tok == "srand" || tok == "time" || tok == "clock";
    // shuffle/sample are also the names of the project's *seeded*
    // RngStream API (and of per-protocol helpers taking an RngStream),
    // so only the explicitly qualified std::/ranges:: algorithms are
    // banned.
    const bool qualified_only =
        tok == "shuffle" || tok == "sample" || tok == "random_shuffle";
    for (std::size_t at = find_word(code, tok, 0); at != std::string::npos;
         at = find_word(code, tok, at + 1)) {
      if (call_shaped || qualified_only) {
        const std::size_t after = skip_ws(code, at + tok.size());
        if (after >= code.size() || code[after] != '(') continue;
        // `obj.sample(...)`, `rng().shuffle(...)`: member calls are the
        // project's own seeded API, not the std:: algorithm.
        std::size_t b = at;
        while (b > 0 &&
               std::isspace(static_cast<unsigned char>(code[b - 1]))) {
          --b;
        }
        if (b > 0 && (code[b - 1] == '.' ||
                      (b > 1 && code[b - 1] == '>' && code[b - 2] == '-'))) {
          continue;
        }
        const bool qualified =
            b > 1 && code[b - 1] == ':' && code[b - 2] == ':';
        if (qualified) {
          // Qualified: only std:: (or std::ranges::) is the banned one.
          const std::string ns = ident_ending_at(code, b - 2);
          if (ns != "std" && ns != "ranges") continue;
        } else if (qualified_only) {
          continue;
        }
      }
      add_finding(fs, at, r.rule, r.message);
    }
  }
}

// --- Loops and iteration ----------------------------------------------

struct LoopBody {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Records every for/while loop: analyzes range-for heads against the
/// unordered sets and returns body extents for the float-accum pass.
std::vector<LoopBody> scan_loops(FileScan& fs,
                                 const std::set<std::string>& unordered_fns) {
  std::vector<LoopBody> bodies;
  const std::string& code = fs.code;
  for (const std::string& kw : {std::string("for"), std::string("while")}) {
    for (std::size_t at = find_word(code, kw, 0); at != std::string::npos;
         at = find_word(code, kw, at + 1)) {
      const std::size_t open = skip_ws(code, at + kw.size());
      if (open >= code.size() || code[open] != '(') continue;
      const std::size_t close = match_balanced(code, open);
      if (close == std::string::npos) continue;
      const std::string head = code.substr(open + 1, close - open - 2);

      // Body extent: `{...}` or a single statement up to `;`.
      LoopBody body;
      std::size_t b = skip_ws(code, close);
      if (b < code.size() && code[b] == '{') {
        body.begin = b;
        body.end = match_balanced(code, b);
      } else {
        body.begin = b;
        body.end = code.find(';', b);
      }
      if (body.end == std::string::npos) body.end = code.size();
      bodies.push_back(body);

      if (kw != "for") continue;
      // Range-for: top-level ':' (ignore '::').
      std::size_t colon = std::string::npos;
      int depth = 0;
      for (std::size_t i = 0; i < head.size(); ++i) {
        const char c = head[i];
        if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
        if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
        if (depth == 0 && c == ':' &&
            (i == 0 || head[i - 1] != ':') &&
            (i + 1 >= head.size() || head[i + 1] != ':')) {
          colon = i;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string range = head.substr(colon + 1);
      // Trim.
      while (!range.empty() &&
             std::isspace(static_cast<unsigned char>(range.front()))) {
        range.erase(range.begin());
      }
      while (!range.empty() &&
             std::isspace(static_cast<unsigned char>(range.back()))) {
        range.pop_back();
      }

      // `for (x : ident)` over a declared unordered variable.
      bool plain_ident = !range.empty() && ident_char(range[0]);
      for (char c : range) {
        if (!ident_char(c)) plain_ident = false;
      }
      if (plain_ident && fs.unordered_vars.count(range) != 0) {
        add_finding(fs, at, "unordered-iter",
                    "range-for over std::unordered container '" + range +
                        "': iteration order is a hash-table accident, not "
                        "part of the experiment seed");
        continue;
      }
      // `for (x : expr.fn())` where fn returns an unordered container.
      if (range.size() >= 2 && range.compare(range.size() - 2, 2, "()") == 0) {
        const std::string fn = ident_ending_at(range, range.size() - 2);
        if (!fn.empty() && unordered_fns.count(fn) != 0) {
          add_finding(fs, at, "unordered-iter",
                      "range-for over unordered container returned by '" +
                          fn + "()'");
        }
      }
    }
  }

  // Explicit iterator loops: `X.begin()` / `X.cbegin()` on an unordered
  // variable (the range-for pass cannot see these).
  for (const std::string& b : {std::string("begin"), std::string("cbegin")}) {
    for (std::size_t at = find_word(code, b, 0); at != std::string::npos;
         at = find_word(code, b, at + 1)) {
      const std::size_t after = skip_ws(code, at + b.size());
      if (after >= code.size() || code[after] != '(') continue;
      if (at == 0 || code[at - 1] != '.') continue;
      const std::string obj = ident_ending_at(code, at - 1);
      if (!obj.empty() && fs.unordered_vars.count(obj) != 0) {
        add_finding(fs, at, "unordered-iter",
                    "iterator walk over std::unordered container '" + obj +
                        "'");
      }
    }
  }
  return bodies;
}

/// float-accum: raw `+=` into a float/double inside a loop, scoped to
/// src/metrics/ — the layer whose sums become published numbers.
void scan_float_accum(FileScan& fs, const std::vector<LoopBody>& loops) {
  if (fs.path.find("src/metrics/") == std::string::npos) return;
  const std::string& code = fs.code;
  for (std::size_t at = code.find("+="); at != std::string::npos;
       at = code.find("+=", at + 2)) {
    std::size_t b = at;
    while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1]))) {
      --b;
    }
    const std::string lhs = ident_ending_at(code, b);
    if (lhs.empty() || fs.float_vars.count(lhs) == 0) continue;
    bool in_loop = false;
    for (const LoopBody& l : loops) {
      if (at >= l.begin && at < l.end) {
        in_loop = true;
        break;
      }
    }
    if (!in_loop) continue;
    add_finding(fs, at, "float-accum",
                "raw '" + lhs +
                    " +=' accumulation in a loop: float addition is "
                    "order-sensitive; use Welford (exp::Accum) or justify "
                    "the iteration order in a suppression");
  }
}

// --- Affinity-safety per-file passes -----------------------------------

/// Records the offset ranges where cross-node effects are legal:
///   (a) the argument list of a `defer(...)` / `.defer(...)` call — the
///       canonical route for cross-node effects from shard context;
///   (b) the then-branch of an `if (!...deferring...)` serial guard
///       (covers both `if (!simulator_.deferring())` and the hoisted
///       `const bool deferring = ...; if (!deferring)` idiom).
void compute_exempt_extents(FileScan& fs) {
  const std::string& code = fs.code;
  for (std::size_t at = find_word(code, "defer", 0); at != std::string::npos;
       at = find_word(code, "defer", at + 1)) {
    const std::size_t open = skip_ws(code, at + 5);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_balanced(code, open);
    if (close == std::string::npos) continue;
    fs.exempt_extents.emplace_back(open, close);
  }
  for (std::size_t at = find_word(code, "if", 0); at != std::string::npos;
       at = find_word(code, "if", at + 1)) {
    const std::size_t open = skip_ws(code, at + 2);
    if (open >= code.size() || code[open] != '(') continue;
    const std::size_t close = match_balanced(code, open);
    if (close == std::string::npos) continue;
    const std::string cond = code.substr(open, close - open);
    const std::size_t guard = find_word(cond, "deferring", 0);
    if (guard == std::string::npos) continue;
    const std::size_t bang = cond.find('!');
    if (bang == std::string::npos || bang > guard) continue;
    std::size_t b = skip_ws(code, close);
    std::size_t e;
    if (b < code.size() && code[b] == '{') {
      e = match_balanced(code, b);
    } else {
      e = code.find(';', b);
      if (e != std::string::npos) ++e;
    }
    if (e == std::string::npos) continue;
    fs.exempt_extents.emplace_back(b, e);
  }
}

bool in_exempt_extent(const FileScan& fs, std::size_t offset) {
  for (const auto& [b, e] : fs.exempt_extents) {
    if (offset >= b && offset < e) return true;
  }
  return false;
}

/// rng-lineage: duplicate `(receiver, literal-tag)` fork pairs within a
/// file, and static/thread_local RngStream declarations. fork() hashes
/// (lineage, tag) and nothing else, so two forks of the same receiver
/// with the same tag are the *same* stream — two components believing
/// they draw independently actually draw identically. A static stream is
/// one stream shared across node-affine handlers: its draw order is a
/// batch-scheduling accident under --world-jobs > 1.
void scan_rng_lineage(FileScan& fs) {
  const std::string& code = fs.code;
  std::map<std::pair<std::string, unsigned long long>, int> seen;
  for (std::size_t at = find_word(code, "fork", 0); at != std::string::npos;
       at = find_word(code, "fork", at + 1)) {
    const std::size_t open = skip_ws(code, at + 4);
    if (open >= code.size() || code[open] != '(') continue;
    // Member-call shape with a nameable receiver: `recv.fork(` /
    // `recv->fork(`. Chained receivers (`x.fork(a).fork(b)`) have no
    // single identifier to key on and are skipped.
    std::size_t b = at;
    while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1]))) {
      --b;
    }
    std::string recv;
    if (b > 0 && code[b - 1] == '.') {
      recv = ident_ending_at(code, b - 1);
    } else if (b > 1 && code[b - 1] == '>' && code[b - 2] == '-') {
      recv = ident_ending_at(code, b - 2);
    }
    if (recv.empty()) continue;
    const std::size_t close = match_balanced(code, open);
    if (close == std::string::npos) continue;
    std::string arg = code.substr(open + 1, close - open - 2);
    while (!arg.empty() &&
           std::isspace(static_cast<unsigned char>(arg.front()))) {
      arg.erase(arg.begin());
    }
    while (!arg.empty() &&
           std::isspace(static_cast<unsigned char>(arg.back()))) {
      arg.pop_back();
    }
    // Only integer-literal tags are auditable; expressions and variables
    // vary per call site.
    if (arg.empty() || !std::isdigit(static_cast<unsigned char>(arg[0]))) {
      continue;
    }
    char* end = nullptr;
    const unsigned long long tag = std::strtoull(arg.c_str(), &end, 0);
    if (end == nullptr || *end != '\0') continue;
    const auto key = std::make_pair(recv, tag);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      add_finding(fs, at, "rng-lineage",
                  "duplicate fork tag " + arg + " on '" + recv +
                      "' (first forked at line " + std::to_string(it->second) +
                      "): fork() hashes (lineage, tag), so both sites draw "
                      "the *same* stream");
    } else {
      seen.emplace(key, line_at(fs, at));
    }
  }

  for (std::size_t at = find_word(code, "RngStream", 0);
       at != std::string::npos; at = find_word(code, "RngStream", at + 1)) {
    // Walk back over namespace qualification to the preceding keyword.
    std::size_t j = at;
    bool flagged = false;
    while (!flagged) {
      while (j > 0 && std::isspace(static_cast<unsigned char>(code[j - 1]))) {
        --j;
      }
      if (j >= 2 && code[j - 1] == ':' && code[j - 2] == ':') {
        j -= 2;
        continue;
      }
      const std::string id = ident_ending_at(code, j);
      if (id == "sim" || id == "croupier") {
        j -= id.size();
        continue;
      }
      if (id == "static" || id == "thread_local") {
        add_finding(fs, at, "rng-lineage",
                    "static/thread_local RngStream: one stream shared "
                    "across node-affine handlers — its draw order depends "
                    "on batch scheduling, not on the experiment seed");
        flagged = true;
      }
      break;
    }
  }
}

// --- Function extraction (for output-path reachability) ----------------

void extract_functions(FileScan& fs) {
  const std::string& code = fs.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != '(') continue;
    // Identifier directly before '(' — candidate function name.
    std::size_t b = i;
    while (b > 0 && std::isspace(static_cast<unsigned char>(code[b - 1]))) {
      --b;
    }
    const std::string name = ident_ending_at(code, b);
    if (name.empty() || cpp_keywords().count(name) != 0) continue;
    const std::size_t close = match_balanced(code, i);
    if (close == std::string::npos) continue;
    // Walk what follows: qualifiers, trailing return, ctor init list —
    // a '{' before any ';' means this was a definition. Two bail-outs
    // keep calls from masquerading as definitions: an unbalanced ')'
    // means the "name(...)" was a nested call inside an enclosing
    // argument list, and a top-level ',' before any ctor-init ':' means
    // it was one argument among several (the classic false positive is
    // `call(args), more_args, [capture] { ... }` — a lambda argument
    // whose body would otherwise be credited to a phantom function).
    std::size_t p = close;
    bool is_def = false;
    bool saw_init_colon = false;
    int paren_depth = 0;
    while (p < code.size()) {
      const char c = code[p];
      if (c == '(') ++paren_depth;
      if (c == ')') {
        if (--paren_depth < 0) break;  // nested call, not a declarator
      }
      if (paren_depth == 0 && c == ':') {
        const bool scope = (p > 0 && code[p - 1] == ':') ||
                           (p + 1 < code.size() && code[p + 1] == ':');
        if (!scope) saw_init_colon = true;
      }
      if (paren_depth == 0 && c == ',' && !saw_init_colon) break;
      if (paren_depth == 0 && c == ';') break;
      if (paren_depth == 0 && c == '=') break;  // `= default`, assignment
      if (paren_depth == 0 && c == '{') {
        is_def = true;
        break;
      }
      ++p;
    }
    if (!is_def) continue;
    const std::size_t body_end = match_balanced(code, p);
    if (body_end == std::string::npos) continue;

    FunctionDef def;
    def.name = name;
    def.line = line_at(fs, i);
    def.body_begin = p;
    def.body_end = body_end;
    // Call sites: identifiers immediately before '(' in the body.
    for (std::size_t j = p; j < body_end; ++j) {
      if (code[j] != '(') continue;
      std::size_t cb = j;
      while (cb > p &&
             std::isspace(static_cast<unsigned char>(code[cb - 1]))) {
        --cb;
      }
      const std::string callee = ident_ending_at(code, cb);
      if (!callee.empty() && cpp_keywords().count(callee) == 0 &&
          callee != name) {
        def.calls.insert(callee);
        def.call_sites.emplace_back(callee, j);
      }
    }
    fs.functions.push_back(def);
  }
}

/// A function is an output *root* when it lives in a designated output
/// module or demonstrably writes results itself.
bool is_output_root(const FileScan& fs, const FunctionDef& def) {
  static const std::vector<std::string> kOutputFiles = {
      "src/exp/sink", "src/runtime/recorder", "src/wire/",
  };
  for (const std::string& m : kOutputFiles) {
    if (fs.path.find(m) != std::string::npos) return true;
  }
  if (def.name.rfind("emit_", 0) == 0 || def.name == "write_csv") {
    return true;
  }
  // Writes through a ResultSink or stdout directly.
  const std::string body =
      fs.code.substr(def.body_begin, def.body_end - def.body_begin);
  for (const char* marker : {"sink.", "sink_.", "std::cout", "printf"}) {
    if (body.find(marker) != std::string::npos) return true;
  }
  return false;
}

// --- Affinity-safety cross-file pass -----------------------------------

/// Modules the affinity analysis traverses and scans. The engine kernel
/// (src/sim/) *implements* the deferral machinery the rules police, and
/// the NAT-ID module (src/natid/) is serial-affinity by registration —
/// World's delivery-affinity function routes every NAT-ID message to the
/// serial shard, so its handlers never run on a worker.
bool affinity_scope(const std::string& path) {
  // Test code (mock handlers, harness helpers) runs on the test thread,
  // never inside a parallel batch — and its coincidental names (an
  // `on_message` on a stub, an `add` on a fake bootstrap) would otherwise
  // pull production defs into shard reachability through the name-matched
  // call graph. Only the fixture corpus, which exists to exercise these
  // rules, stays in scope.
  if (path.rfind("tests/", 0) == 0) {
    return path.rfind("tests/detlint_fixtures/", 0) == 0;
  }
  return path.find("src/sim/") == std::string::npos &&
         path.find("src/natid/") == std::string::npos;
}

/// A function is a shard *root* when it is one of the entry points the
/// engine invokes with node affinity: a protocol handler (on_message /
/// round in a file that implements the PeerSampler interface), the
/// Network's send/delivery pipeline (send runs on the sender's shard,
/// deliver on the receiver's), or the World's round driver.
bool is_shard_root(const FileScan& fs, const FunctionDef& def) {
  if (!affinity_scope(fs.path)) return false;
  if (def.name == "on_message" || def.name == "round") {
    return find_word(fs.code, "PeerSampler", 0) != std::string::npos;
  }
  if (def.name == "schedule_round") {
    return fs.path.find("src/runtime/") != std::string::npos;
  }
  if (fs.path.find("src/net/") != std::string::npos) {
    return def.name == "send" || def.name == "deliver" ||
           def.name == "deliver_fragment";
  }
  return false;
}

/// Cross-node engine state a shard-context function must not touch
/// outside defer()/serial-guard extents. AnyUse tokens are serial-half
/// members whose every touch (even a read of a counter mid-mutation) is
/// order-sensitive; MutCall tokens are containers where only mutating
/// member calls (or operator[]) are hazards — lookups are fine.
struct ShardMarker {
  const char* token;
  bool any_use;
  const char* what;
};

const std::vector<ShardMarker>& shard_markers() {
  static const std::vector<ShardMarker> kMarkers = {
      {"drops_", true, "the global drop counters"},
      {"meter_", true, "the global traffic meter"},
      {"next_msg_id_", true, "the shared message-id counter"},
      {"buckets_", true, "the per-sender token buckets (serial-half state)"},
      {"rng_", true, "the shared loss/latency RNG stream"},
      {"nodes_", false, "the node table"},
      {"bootstrap_", false, "the bootstrap oracle"},
  };
  return kMarkers;
}

/// Member calls that mutate a container (for MutCall markers).
bool mutating_member(const std::string& m) {
  static const std::set<std::string> kMut = {
      "erase",   "emplace", "insert",    "clear",
      "add",     "remove",  "try_emplace", "push_back",
  };
  return kMut.count(m) != 0;
}

/// Scans one shard-reachable function body for affinity hazards,
/// appending cross-shard-mutate / naked-schedule findings to fs.
void scan_shard_body(FileScan& fs, const FunctionDef& def) {
  const std::string& code = fs.code;
  for (const ShardMarker& m : shard_markers()) {
    for (std::size_t at = find_word(code, m.token, def.body_begin);
         at != std::string::npos && at < def.body_end;
         at = find_word(code, m.token, at + 1)) {
      if (in_exempt_extent(fs, at)) continue;
      // A member access on *another* object (x.drops_) is still the same
      // engine state in this tree's idiom; no receiver filtering needed.
      if (!m.any_use) {
        std::size_t p = skip_ws(code, at + std::string(m.token).size());
        bool mutation = false;
        if (p < code.size() && code[p] == '[') {
          mutation = true;  // operator[] default-inserts
        } else if (p < code.size() &&
                   (code[p] == '.' ||
                    (code[p] == '-' && p + 1 < code.size() &&
                     code[p + 1] == '>'))) {
          p += code[p] == '.' ? 1 : 2;
          p = skip_ws(code, p);
          if (!mutating_member(read_ident(code, p))) continue;
          mutation = true;
        }
        if (!mutation) continue;
      }
      add_finding(fs, at, "cross-shard-mutate",
                  std::string("'") + m.token + "' (" + m.what +
                      ") touched from shard context without "
                      "Simulator::defer — under --world-jobs > 1 this "
                      "write lands mid-batch on a worker thread and its "
                      "order is a scheduling accident");
    }
  }

  for (const char* sched : {"schedule_after", "schedule_at"}) {
    for (std::size_t at = find_word(code, sched, def.body_begin);
         at != std::string::npos && at < def.body_end;
         at = find_word(code, sched, at + 1)) {
      const std::size_t after = skip_ws(code, at + std::string(sched).size());
      if (after >= code.size() || code[after] != '(') continue;
      if (in_exempt_extent(fs, at)) continue;
      add_finding(fs, at, "naked-schedule",
                  std::string("Simulator::") + sched +
                      " from shard context without the deferring() guard: "
                      "inside a parallel batch the schedule is auto-"
                      "deferred and the returned EventId is "
                      "kInvalidEventId — guard with !deferring(), route "
                      "through defer(), or waive stating the id is "
                      "discarded");
    }
  }
  for (std::size_t at = find_word(code, "cancel", def.body_begin);
       at != std::string::npos && at < def.body_end;
       at = find_word(code, "cancel", at + 1)) {
    const std::size_t after = skip_ws(code, at + 6);
    if (after >= code.size() || code[after] != '(') continue;
    // Member-call shape only (sim.cancel / simulator().cancel): free
    // functions named cancel are not the Simulator API.
    if (at == 0 || (code[at - 1] != '.' &&
                    !(at > 1 && code[at - 1] == '>' && code[at - 2] == '-'))) {
      continue;
    }
    if (in_exempt_extent(fs, at)) continue;
    add_finding(fs, at, "naked-schedule",
                "Simulator::cancel from shard context: cancel asserts "
                "outside the serial phase — route the cancellation "
                "through defer()");
  }
}

}  // namespace

void analyze(FileScan& fs) {
  harvest_unordered(fs);
  harvest_floats(fs);
  scan_tokens(fs);
  compute_exempt_extents(fs);
  scan_rng_lineage(fs);
  extract_functions(fs);
}

const std::set<std::string>& Linter::rule_ids() {
  static const std::set<std::string> ids = {
      "entropy",        "wallclock",          "unordered-iter",
      "ptr-key",        "raw-shuffle",        "float-accum",
      "cross-shard-mutate", "naked-schedule", "rng-lineage",
      "suppression",
  };
  return ids;
}

void Linter::add_file(const std::string& path, const std::string& content) {
  FileScan fs = preprocess(path, content);
  analyze(fs);
  files_.push_back(std::move(fs));
}

std::vector<Finding> Linter::run() {
  // Merge unordered-returning function names across files: a range-for
  // over `world.class_map()` in a bench must see world.hpp's signature.
  std::set<std::string> unordered_fns;
  for (const FileScan& fs : files_) {
    unordered_fns.insert(fs.unordered_fns.begin(), fs.unordered_fns.end());
  }

  // Members are declared in the header and iterated in the paired
  // source file: union foo.hpp's declarations into foo.cpp's sets.
  // (Deliberately pairwise, not global — a vector named like another
  // file's hash map must not taint unrelated files.)
  {
    std::map<std::string, const FileScan*> headers;
    for (const FileScan& fs : files_) {
      const std::size_t dot = fs.path.rfind('.');
      if (dot == std::string::npos) continue;
      const std::string ext = fs.path.substr(dot);
      if (ext == ".hpp" || ext == ".h") {
        headers[fs.path.substr(0, dot)] = &fs;
      }
    }
    for (FileScan& fs : files_) {
      const std::size_t dot = fs.path.rfind('.');
      if (dot == std::string::npos) continue;
      const std::string ext = fs.path.substr(dot);
      if (ext != ".cpp" && ext != ".cc" && ext != ".cxx") continue;
      const auto it = headers.find(fs.path.substr(0, dot));
      if (it == headers.end()) continue;
      fs.unordered_vars.insert(it->second->unordered_vars.begin(),
                               it->second->unordered_vars.end());
      fs.float_vars.insert(it->second->float_vars.begin(),
                           it->second->float_vars.end());
    }
  }

  // Iteration + accumulation passes (need the merged function set).
  for (FileScan& fs : files_) {
    const std::vector<LoopBody> loops = scan_loops(fs, unordered_fns);
    scan_float_accum(fs, loops);
  }

  // Output-path reachability: BFS over the name-matched call graph from
  // the output roots. Name matching is conservative — any definition of
  // a called name counts — which errs toward marking reachable.
  std::map<std::string, std::vector<const FunctionDef*>> by_name;
  for (FileScan& fs : files_) {
    for (FunctionDef& def : fs.functions) {
      def.is_root = is_output_root(fs, def);
      by_name[def.name].push_back(&def);
    }
  }
  std::set<std::string> reachable;  // function names
  std::vector<const FunctionDef*> work;
  for (const auto& [name, defs] : by_name) {
    for (const FunctionDef* def : defs) {
      if (def->is_root && reachable.insert(def->name).second) {
        work.push_back(def);
      }
    }
  }
  while (!work.empty()) {
    const FunctionDef* def = work.back();
    work.pop_back();
    for (const std::string& callee : def->calls) {
      if (!reachable.insert(callee).second) continue;
      const auto it = by_name.find(callee);
      if (it == by_name.end()) continue;
      for (const FunctionDef* next : it->second) work.push_back(next);
    }
  }

  // Affinity-safety pass: BFS over the call graph from the node-affine
  // handler roots, following only call sites *outside* defer()/serial-
  // guard extents (a call inside a defer argument executes in the serial
  // merge, not on the worker). Every def of a called name counts —
  // conservative, like the output BFS — then each shard-reachable body
  // is scanned for cross-node mutations and naked schedule/cancel calls.
  {
    struct DefRef {
      FileScan* fs;
      FunctionDef* def;
    };
    std::vector<DefRef> defs;
    std::map<std::string, std::vector<std::size_t>> index;
    for (FileScan& fs : files_) {
      for (FunctionDef& def : fs.functions) {
        def.is_shard_root = is_shard_root(fs, def);
        index[def.name].push_back(defs.size());
        defs.push_back({&fs, &def});
      }
    }
    std::set<std::size_t> shard_reachable;
    std::vector<std::size_t> shard_work;
    for (std::size_t i = 0; i < defs.size(); ++i) {
      if (defs[i].def->is_shard_root && shard_reachable.insert(i).second) {
        shard_work.push_back(i);
      }
    }
    while (!shard_work.empty()) {
      const DefRef ref = defs[shard_work.back()];
      shard_work.pop_back();
      for (const auto& [callee, offset] : ref.def->call_sites) {
        if (in_exempt_extent(*ref.fs, offset)) continue;
        const auto it = index.find(callee);
        if (it == index.end()) continue;
        for (const std::size_t next : it->second) {
          // Out-of-scope defs neither get scanned nor propagate: a call
          // *into* src/sim/ (an RngStream draw, the scheduling API) does
          // not drag the callee's own callees into shard context.
          if (!affinity_scope(defs[next].fs->path)) continue;
          if (shard_reachable.insert(next).second) {
            shard_work.push_back(next);
          }
        }
      }
    }
    for (const std::size_t i : shard_reachable) {
      scan_shard_body(*defs[i].fs, *defs[i].def);
    }
  }

  // Attribute findings to their innermost enclosing function and mark
  // output reachability.
  std::vector<Finding> all;
  for (FileScan& fs : files_) {
    for (Finding f : fs.findings) {
      const std::size_t offset =
          fs.line_starts[static_cast<std::size_t>(f.line - 1)];
      const FunctionDef* best = nullptr;
      for (const FunctionDef& def : fs.functions) {
        if (offset >= def.body_begin && offset < def.body_end &&
            (best == nullptr ||
             def.body_begin > best->body_begin)) {
          best = &def;
        }
      }
      if (best != nullptr) {
        f.function = best->name;
        f.output_reachable = reachable.count(best->name) != 0;
      }
      all.push_back(std::move(f));
    }
  }

  // Suppressions: same line, a comment block ending on the line directly
  // above, or file-level.
  std::vector<Finding> surviving;
  for (Finding& f : all) {
    bool suppressed = false;
    for (FileScan& fs : files_) {
      if (fs.path != f.file) continue;
      for (Suppression& sup : fs.suppressions) {
        const bool rule_match =
            std::find(sup.rules.begin(), sup.rules.end(), f.rule) !=
            sup.rules.end();
        if (!rule_match) continue;
        if (sup.reason.size() < 8) continue;  // bad suppression: no effect
        if (sup.file_level || sup.line == f.line ||
            sup.end_line == f.line - 1) {
          sup.used = true;
          suppressed = true;
        }
      }
    }
    if (!suppressed) surviving.push_back(std::move(f));
  }

  // Meta-rule: malformed or dead suppressions are findings themselves.
  for (const FileScan& fs : files_) {
    for (const Suppression& sup : fs.suppressions) {
      Finding f;
      f.file = fs.path;
      f.line = sup.line;
      f.rule = "suppression";
      if (sup.rules.empty()) {
        f.message = "detlint:allow with no rule list";
      } else if (sup.reason.size() < 8) {
        f.message =
            "suppression without a written reason (need >= 8 characters "
            "explaining why this site is determinism-safe)";
      } else {
        std::string unknown;
        for (const std::string& r : sup.rules) {
          if (rule_ids().count(r) == 0 || r == "suppression") {
            unknown = r;
            break;
          }
        }
        if (!unknown.empty()) {
          f.message = "suppression names unknown rule '" + unknown + "'";
        } else if (!sup.used) {
          f.message = "unused suppression for rule '" + sup.rules.front() +
                      "': the finding it justified is gone; delete it";
        } else {
          continue;
        }
      }
      surviving.push_back(std::move(f));
    }
  }

  std::sort(surviving.begin(), surviving.end());
  return surviving;
}

std::string format(const Finding& f) {
  std::ostringstream os;
  os << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message;
  if (!f.function.empty()) {
    os << " (in '" << f.function << '\'';
    if (f.output_reachable) os << ", reachable from an output path";
    os << ')';
  }
  return os.str();
}

}  // namespace detlint
