#!/usr/bin/env bash
# Determinism gate for both parallelism axes of the harness:
#
#  - trial-level (--jobs): the TrialPool contract — results are folded in
#    submission order, so worker count can never show up in the output;
#  - world-level (--world-jobs): the round-synchronous parallel engine
#    contract — events are sharded by node and their effects merged in
#    (time, seq) order, so the engine is byte-identical to the sequential
#    one.
#
# Every figure bench must produce byte-identical stdout AND --csv output
# for (--jobs=1 --world-jobs=1), (--jobs=4 --world-jobs=1) and
# (--jobs=4 --world-jobs=4). croupier-lab additionally must reproduce
# fig1's series rows byte for byte (the PR-3 API-redesign acceptance).
#
# Usage: scripts/check_determinism.sh [--fast]
#   BUILD_DIR=...  bench build directory (default build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
MODE=${1:---fast}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
run_config() {  # binary tag extra-flags...
  local bin=$1 tag=$2
  shift 2
  "$bin" "$@" --csv="$TMP/$tag.csv" >"$TMP/$tag.txt" 2>/dev/null
}

check_same() {  # name base other
  local name=$1 base=$2 other=$3
  if cmp -s "$TMP/$base.txt" "$TMP/$other.txt" &&
     cmp -s "$TMP/$base.csv" "$TMP/$other.csv"; then
    return 0
  fi
  echo "FAIL $name ($base vs $other output differs)"
  fail=1
  return 1
}

for bench in "$BUILD_DIR"/bench/fig* "$BUILD_DIR"/bench/ablation_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  run_config "$bench" "$name.j1" "$MODE" --runs=2 --jobs=1 --world-jobs=1
  run_config "$bench" "$name.j4" "$MODE" --runs=2 --jobs=4 --world-jobs=1
  run_config "$bench" "$name.w4" "$MODE" --runs=2 --jobs=4 --world-jobs=4
  ok=1
  check_same "$name" "$name.j1" "$name.j4" || ok=0
  check_same "$name" "$name.j1" "$name.w4" || ok=0
  [ "$ok" = 1 ] && echo "ok   $name (jobs 1/4, world-jobs 1/4)"
done

# croupier-lab: same determinism contracts on both axes, plus the
# API-redesign acceptance check — a lab sweep of fig1's three
# (alpha,gamma) specs must reproduce the dedicated bench's series rows
# byte for byte at the same seed (the sweep points share fig1's
# trial-seed grid coordinates).
LAB="$BUILD_DIR/tools/croupier-lab"
if [ -x "$LAB" ]; then
  lab_flags=(--protocol=croupier:alpha=10,gamma=25
             --protocol=croupier:alpha=25,gamma=50
             --protocol=croupier:alpha=100,gamma=250
             --nodes=500 --ratio=0.2 --duration=120 --runs=2)
  run_config "$LAB" "lab.j1" "${lab_flags[@]}" --jobs=1 --world-jobs=1
  run_config "$LAB" "lab.j4" "${lab_flags[@]}" --jobs=4 --world-jobs=1
  run_config "$LAB" "lab.w4" "${lab_flags[@]}" --jobs=4 --world-jobs=4
  ok=1
  check_same "croupier-lab" "lab.j1" "lab.j4" || ok=0
  check_same "croupier-lab" "lab.j1" "lab.w4" || ok=0
  [ "$ok" = 1 ] && echo "ok   croupier-lab (jobs 1/4, world-jobs 1/4)"

  "$BUILD_DIR/bench/fig1_stable_ratio" --fast --runs=2 --jobs=4 \
    2>/dev/null | grep -E '^[0-9]' >"$TMP/fig1.rows"
  grep -E '^[0-9]' "$TMP/lab.w4.txt" >"$TMP/lab.rows"
  if cmp -s "$TMP/fig1.rows" "$TMP/lab.rows"; then
    echo "ok   croupier-lab == fig1_stable_ratio (series rows)"
  else
    echo "FAIL croupier-lab vs fig1_stable_ratio (series rows differ)"
    fail=1
  fi

  # The PR-5 scenario families — flash crowd, correlated failure,
  # structured time-varying loss — must honour the same determinism
  # contracts on both parallelism axes.
  scenario_flags=(
    --spec="protocol=croupier nodes=300 ratio=0.2 flash=at:30,publics:120,privates:30,over:5 duration=70"
    --spec="protocol=croupier nodes=300 ratio=0.2 failure=at:40,frac:0.3,corr:region duration=70"
    --spec="protocol=croupier nodes=300 ratio=0.2 loss=pub-pub:0.05,priv-any:0.2,after:30 duration=70"
    --runs=2)
  run_config "$LAB" "scen.j1" "${scenario_flags[@]}" --jobs=1 --world-jobs=1
  run_config "$LAB" "scen.j4" "${scenario_flags[@]}" --jobs=4 --world-jobs=1
  run_config "$LAB" "scen.w4" "${scenario_flags[@]}" --jobs=4 --world-jobs=4
  ok=1
  check_same "croupier-lab-scenarios" "scen.j1" "scen.j4" || ok=0
  check_same "croupier-lab-scenarios" "scen.j1" "scen.w4" || ok=0
  [ "$ok" = 1 ] && \
    echo "ok   croupier-lab scenarios flash/failure/loss (jobs 1/4, world-jobs 1/4)"

  # The PR-8 packet layer — fragmentation at mtu=64, FEC repair under
  # per-fragment loss, token-bucket bandwidth caps — must honour the same
  # determinism contracts on both parallelism axes.
  packet_flags=(
    --spec="protocol=croupier nodes=300 ratio=0.2 mtu=64 duration=70"
    --spec="protocol=croupier nodes=300 ratio=0.2 mtu=64 fec=2 loss=0.1 duration=70"
    --spec="protocol=croupier nodes=300 ratio=0.2 mtu=128 bandwidth=rate:20000,burst:4000 duration=70"
    --runs=2)
  run_config "$LAB" "pkt.j1" "${packet_flags[@]}" --jobs=1 --world-jobs=1
  run_config "$LAB" "pkt.j4" "${packet_flags[@]}" --jobs=4 --world-jobs=1
  run_config "$LAB" "pkt.w4" "${packet_flags[@]}" --jobs=4 --world-jobs=4
  ok=1
  check_same "croupier-lab-packet" "pkt.j1" "pkt.j4" || ok=0
  check_same "croupier-lab-packet" "pkt.j1" "pkt.w4" || ok=0
  [ "$ok" = 1 ] && \
    echo "ok   croupier-lab packet mtu/fec/bandwidth (jobs 1/4, world-jobs 1/4)"

  # The PR-9 randomness audit + adversarial processes — eclipse respawn,
  # NAT flapping through World::reclassify, the hub adversary shim — all
  # recorded through the randomness auditor, must honour the same
  # determinism contracts on both parallelism axes.
  randomness_flags=(
    --spec="protocol=croupier nodes=250 ratio=0.2 eclipse=target:1,at:20,period:2 record=randomness duration=60"
    --spec="protocol=nylon nodes=250 ratio=0.2 natflap=frac:0.1,at:20,period:10 record=randomness duration=60"
    --spec="protocol=gozar nodes=250 ratio=0.2 adversary=hubs:2 record=randomness duration=60"
    --runs=2)
  run_config "$LAB" "rand.j1" "${randomness_flags[@]}" --jobs=1 --world-jobs=1
  run_config "$LAB" "rand.j4" "${randomness_flags[@]}" --jobs=4 --world-jobs=1
  run_config "$LAB" "rand.w4" "${randomness_flags[@]}" --jobs=4 --world-jobs=4
  ok=1
  check_same "croupier-lab-randomness" "rand.j1" "rand.j4" || ok=0
  check_same "croupier-lab-randomness" "rand.j1" "rand.w4" || ok=0
  [ "$ok" = 1 ] && \
    echo "ok   croupier-lab randomness eclipse/natflap/adversary (jobs 1/4, world-jobs 1/4)"
else
  echo "FAIL croupier-lab binary missing at $LAB"
  fail=1
fi
exit "$fail"
