#!/usr/bin/env bash
# Determinism gate for the parallel trial harness: every figure bench
# must produce byte-identical stdout AND --csv output for --jobs=1 and
# --jobs=4 (the TrialPool contract: results are collected in submission
# order, so thread count can never show up in the output).
#
# Usage: scripts/check_determinism.sh [--fast]
#   BUILD_DIR=...  bench build directory (default build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
MODE=${1:---fast}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
for bench in "$BUILD_DIR"/bench/fig* "$BUILD_DIR"/bench/ablation_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  "$bench" "$MODE" --runs=2 --jobs=1 --csv="$TMP/$name.1.csv" \
    >"$TMP/$name.1.txt" 2>/dev/null
  "$bench" "$MODE" --runs=2 --jobs=4 --csv="$TMP/$name.4.csv" \
    >"$TMP/$name.4.txt" 2>/dev/null
  if cmp -s "$TMP/$name.1.txt" "$TMP/$name.4.txt" &&
     cmp -s "$TMP/$name.1.csv" "$TMP/$name.4.csv"; then
    echo "ok   $name"
  else
    echo "FAIL $name (jobs=1 vs jobs=4 output differs)"
    fail=1
  fi
done

# croupier-lab: same jobs-determinism contract, plus the API-redesign
# acceptance check — a lab sweep of fig1's three (alpha,gamma) specs must
# reproduce the dedicated bench's series rows byte for byte at the same
# seed (the sweep points share fig1's trial-seed grid coordinates).
LAB="$BUILD_DIR/tools/croupier-lab"
if [ -x "$LAB" ]; then
  lab_flags=(--protocol=croupier:alpha=10,gamma=25
             --protocol=croupier:alpha=25,gamma=50
             --protocol=croupier:alpha=100,gamma=250
             --nodes=500 --ratio=0.2 --duration=120 --runs=2)
  "$LAB" "${lab_flags[@]}" --jobs=1 --csv="$TMP/lab.1.csv" \
    >"$TMP/lab.1.txt" 2>/dev/null
  "$LAB" "${lab_flags[@]}" --jobs=4 --csv="$TMP/lab.4.csv" \
    >"$TMP/lab.4.txt" 2>/dev/null
  if cmp -s "$TMP/lab.1.txt" "$TMP/lab.4.txt" &&
     cmp -s "$TMP/lab.1.csv" "$TMP/lab.4.csv"; then
    echo "ok   croupier-lab"
  else
    echo "FAIL croupier-lab (jobs=1 vs jobs=4 output differs)"
    fail=1
  fi

  "$BUILD_DIR/bench/fig1_stable_ratio" --fast --runs=2 --jobs=4 \
    2>/dev/null | grep -E '^[0-9]' >"$TMP/fig1.rows"
  grep -E '^[0-9]' "$TMP/lab.4.txt" >"$TMP/lab.rows"
  if cmp -s "$TMP/fig1.rows" "$TMP/lab.rows"; then
    echo "ok   croupier-lab == fig1_stable_ratio (series rows)"
  else
    echo "FAIL croupier-lab vs fig1_stable_ratio (series rows differ)"
    fail=1
  fi
else
  echo "FAIL croupier-lab binary missing at $LAB"
  fail=1
fi
exit "$fail"
