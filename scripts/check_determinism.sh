#!/usr/bin/env bash
# Determinism gate for the parallel trial harness: every figure bench
# must produce byte-identical stdout AND --csv output for --jobs=1 and
# --jobs=4 (the TrialPool contract: results are collected in submission
# order, so thread count can never show up in the output).
#
# Usage: scripts/check_determinism.sh [--fast]
#   BUILD_DIR=...  bench build directory (default build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
MODE=${1:---fast}

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fail=0
for bench in "$BUILD_DIR"/bench/fig* "$BUILD_DIR"/bench/ablation_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  "$bench" "$MODE" --runs=2 --jobs=1 --csv="$TMP/$name.1.csv" \
    >"$TMP/$name.1.txt" 2>/dev/null
  "$bench" "$MODE" --runs=2 --jobs=4 --csv="$TMP/$name.4.csv" \
    >"$TMP/$name.4.txt" 2>/dev/null
  if cmp -s "$TMP/$name.1.txt" "$TMP/$name.4.txt" &&
     cmp -s "$TMP/$name.1.csv" "$TMP/$name.4.csv"; then
    echo "ok   $name"
  else
    echo "FAIL $name (jobs=1 vs jobs=4 output differs)"
    fail=1
  fi
done
exit "$fail"
