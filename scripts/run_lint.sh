#!/usr/bin/env bash
# Lint gate: detlint (the determinism lint, tools/detlint) over the full
# tree, then clang-tidy (config: .clang-tidy) when it is installed.
# CI's `lint` job runs exactly this; locally it is the fast pre-commit
# check — detlint alone takes well under a second.
#
# Usage: scripts/run_lint.sh [--no-tidy]
#   BUILD_DIR=...  build directory for the detlint binary
#                  (default build-lint; reusing an existing build dir is
#                  fine, detlint is a leaf target)
#   TIDY_DIR=...   clang-tidy build directory (default build-tidy)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-lint}
TIDY_DIR=${TIDY_DIR:-build-tidy}
NO_TIDY=0
if [ "${1:-}" = "--no-tidy" ]; then
  NO_TIDY=1
fi

echo "== detlint =="
cmake -B "$BUILD_DIR" -S . -DCROUPIER_BUILD_TESTS=OFF \
  -DCROUPIER_BUILD_BENCHES=OFF -DCROUPIER_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)" --target detlint >/dev/null
"$BUILD_DIR/tools/detlint/detlint" --root=.

if [ "$NO_TIDY" = 1 ]; then
  exit 0
fi
if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not installed; skipping (detlint gate passed)" >&2
  exit 0
fi

echo "== clang-tidy ($(clang-tidy --version | sed -n 2p | tr -s ' ')) =="
# A full compile with CMAKE_CXX_CLANG_TIDY checks every TU; warnings
# print, and the checks listed in WarningsAsErrors fail the build.
cmake -B "$TIDY_DIR" -S . -DCROUPIER_CLANG_TIDY=ON \
  -DCROUPIER_BUILD_TESTS=OFF -DCROUPIER_BUILD_BENCHES=OFF \
  -DCROUPIER_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$TIDY_DIR" -j "$(nproc)"
echo "lint: clean"
