#!/usr/bin/env bash
# Lint gate: detlint (the determinism lint, tools/detlint) over the full
# tree, then clang-tidy (config: .clang-tidy) when it is installed.
# CI's `lint` job runs exactly this; locally it is the fast pre-commit
# check — detlint alone takes well under a second.
#
# Every leg runs even when an earlier one fails; the exit code is the
# aggregate, so CI annotates all findings from one run instead of
# revealing them one leg at a time.
#
# Usage: scripts/run_lint.sh [--no-tidy]
#   BUILD_DIR=...    build directory for the detlint binary
#                    (default build-lint; reusing an existing build dir is
#                    fine, detlint is a leaf target)
#   TIDY_DIR=...     clang-tidy build directory (default build-tidy)
#   REQUIRE_TIDY=1   missing clang-tidy is a failure instead of a skip
#                    (CI sets this: the tidy leg must actually execute)
#   SARIF_OUT=...    also write the detlint report as SARIF to this path
set -uo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-lint}
TIDY_DIR=${TIDY_DIR:-build-tidy}
REQUIRE_TIDY=${REQUIRE_TIDY:-0}
SARIF_OUT=${SARIF_OUT:-}
NO_TIDY=0
if [ "${1:-}" = "--no-tidy" ]; then
  NO_TIDY=1
fi

failed=0

echo "== detlint =="
if cmake -B "$BUILD_DIR" -S . -DCROUPIER_BUILD_TESTS=OFF \
     -DCROUPIER_BUILD_BENCHES=OFF -DCROUPIER_BUILD_EXAMPLES=OFF >/dev/null \
   && cmake --build "$BUILD_DIR" -j "$(nproc)" --target detlint >/dev/null
then
  "$BUILD_DIR/tools/detlint/detlint" --root=. || failed=1
  if [ -n "$SARIF_OUT" ]; then
    # Second pass for the machine-readable mirror; the scan is sub-second.
    "$BUILD_DIR/tools/detlint/detlint" --root=. --format=sarif \
      --output="$SARIF_OUT" >/dev/null || true
  fi
else
  echo "detlint: failed to build" >&2
  failed=1
fi

if [ "$NO_TIDY" = 1 ]; then
  exit "$failed"
fi
if ! command -v clang-tidy >/dev/null 2>&1; then
  if [ "$REQUIRE_TIDY" = 1 ]; then
    echo "clang-tidy required (REQUIRE_TIDY=1) but not installed" >&2
    exit 1
  fi
  echo "clang-tidy not installed; skipping (detlint exit: $failed)" >&2
  exit "$failed"
fi

echo "== clang-tidy ($(clang-tidy --version | sed -n 2p | tr -s ' ')) =="
# A full compile with CMAKE_CXX_CLANG_TIDY checks every TU; warnings
# print, and the checks listed in WarningsAsErrors fail the build.
if ! cmake -B "$TIDY_DIR" -S . -DCROUPIER_CLANG_TIDY=ON \
       -DCROUPIER_BUILD_TESTS=OFF -DCROUPIER_BUILD_BENCHES=OFF \
       -DCROUPIER_BUILD_EXAMPLES=OFF >/dev/null \
   || ! cmake --build "$TIDY_DIR" -j "$(nproc)"; then
  failed=1
fi

if [ "$failed" = 0 ]; then
  echo "lint: clean"
else
  echo "lint: FAILED (see legs above)" >&2
fi
exit "$failed"
