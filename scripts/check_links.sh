#!/usr/bin/env bash
# Markdown link check for the reference docs: every relative link target
# in README.md and docs/*.md must exist in the tree, so the architecture
# and spec reference pages cannot rot as files move. External http(s)
# links are not fetched (CI must not depend on the network); anchors are
# stripped before the existence check.
#
# Usage: scripts/check_links.sh [file.md ...]   (default: README + docs)
set -euo pipefail

cd "$(dirname "$0")/.."

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  files=(README.md docs/*.md)
fi

fail=0
for file in "${files[@]}"; do
  if [ ! -f "$file" ]; then
    echo "FAIL $file (file missing)"
    fail=1
    continue
  fi
  dir=$(dirname "$file")
  bad=0
  # Inline links: [text](target). Reference-style links are not used in
  # this repo; add them here if that changes.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue  # same-file anchor
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "FAIL $file -> $target (no such file)"
      bad=1
      fail=1
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
  [ "$bad" = 0 ] && echo "ok   $file"
done
exit "$fail"
