#!/usr/bin/env bash
# Bench harness: builds Release, runs the micro-benchmarks plus every
# figure-regeneration bench in --fast mode, and writes BENCH_micro.json —
# the machine-readable baseline PRs regress against.
#
# Usage: scripts/run_benches.sh [output.json]
#   BUILD_DIR=...   override the Release build directory
#                   (default build-release)
#   JOBS=N          worker threads per fig bench (default: nproc); trials
#                   fan out over the exp::TrialPool, output is
#                   byte-identical for every N
#   RUNS=N          seeds averaged per fig-bench point (default 5 — the
#                   paper's averaging; trials run in parallel so the
#                   extra runs cost little wall clock on multi-core)
#   CSV_DIR=...     also write each fig bench's --csv mirror there
#
# BENCH_micro.json layout:
#   protocols.<Name>.rounds_per_sec   end-to-end gossip-round throughput
#                                     (BM_ProtocolRounds, 128-node world)
#   components.<BM_Name>              wall ns/op (items_per_sec when the
#                                     bench reports it)
#   fig_benches.<name>.wall_seconds   --fast --runs=$RUNS wall clock per
#                                     bench
#   fig_benches.<name>.peak_rss_bytes bench-process peak resident set
#                                     (ru_maxrss of the child)
set -euo pipefail

# Resolve the output path against the caller's cwd before cd-ing away.
OUT=$(realpath -m "${1:-BENCH_micro.json}")
cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)
if [ $# -eq 0 ]; then
  OUT="$REPO_ROOT/BENCH_micro.json"
fi
BUILD_DIR=${BUILD_DIR:-"$REPO_ROOT/build-release"}
JOBS=${JOBS:-$(nproc)}
RUNS=${RUNS:-5}
CSV_DIR=${CSV_DIR:-}
if [ -n "$CSV_DIR" ]; then
  mkdir -p "$CSV_DIR"
fi

# Benches only: skip the test suites and examples so the Release build
# doesn't recompile the whole tree (CI already builds those once).
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DCROUPIER_BUILD_TESTS=OFF -DCROUPIER_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Never record a baseline from a sanitized build: a cached CMAKE_CXX_FLAGS
# with -fsanitize (e.g. BUILD_DIR pointed at an ASan tree) survives the
# re-configure above, and instrumented timings are 2-20x off. Every bench
# binary reports its provenance via --build-info.
for bench in "$BUILD_DIR"/bench/fig* "$BUILD_DIR"/bench/ablation_*; do
  [ -x "$bench" ] || continue
  if "$bench" --build-info | grep -q '^sanitized=yes'; then
    echo "error: $bench was built with a sanitizer;" \
         "refusing to write $OUT" >&2
    exit 2
  fi
  break  # one binary speaks for the build directory
done

RAW=$(mktemp)
FIG=$(mktemp)
trap 'rm -f "$RAW" "$FIG"' EXIT

echo "== micro benchmarks =="
"$BUILD_DIR/bench/micro" \
  --benchmark_format=json --benchmark_out="$RAW" \
  --benchmark_out_format=json >/dev/null

echo "== figure benches (--fast --runs=$RUNS --jobs=$JOBS) =="
for bench in "$BUILD_DIR"/bench/fig* "$BUILD_DIR"/bench/ablation_*; do
  [ -x "$bench" ] || continue
  name=$(basename "$bench")
  csv_flag=()
  if [ -n "$CSV_DIR" ]; then
    csv_flag=(--csv="$CSV_DIR/$name.csv")
  fi
  # Wall clock and peak RSS in one measurement: the wrapper waits on the
  # bench and reads RUSAGE_CHILDREN afterwards (each bench is the only
  # child, so ru_maxrss is its high-water mark).
  python3 - "$name" "$bench" --fast --runs="$RUNS" --jobs="$JOBS" \
    "${csv_flag[@]}" <<'PY' | tee -a "$FIG"
import resource
import subprocess
import sys
import time

name = sys.argv[1]
start = time.monotonic()
subprocess.run(sys.argv[2:], check=True, stdout=subprocess.DEVNULL)
wall = time.monotonic() - start
peak_kib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"{name} {wall:.3f} {peak_kib * 1024}")
PY
done

python3 - "$RAW" "$FIG" "$OUT" <<'PY'
import json
import sys

raw_path, fig_path, out_path = sys.argv[1:4]
with open(raw_path) as f:
    raw = json.load(f)

protocols = {}
components = {}
for b in raw["benchmarks"]:
    name = b["name"]
    if name.startswith("BM_ProtocolRounds/"):
        protocols[name.split("/", 1)[1]] = {
            "rounds_per_sec": round(b["items_per_second"], 1),
        }
    else:
        entry = {"real_ns_per_op": round(b["real_time"], 2)}
        if "items_per_second" in b:
            entry["items_per_sec"] = round(b["items_per_second"], 1)
        components[name] = entry

fig_benches = {}
with open(fig_path) as f:
    for line in f:
        name, secs, rss = line.split()
        fig_benches[name] = {
            "wall_seconds": float(secs),
            "peak_rss_bytes": int(rss),
        }

out = {
    "schema": "croupier-bench-v1",
    "generated_by": "scripts/run_benches.sh",
    "build_type": "Release",
    "context": {
        "host": raw["context"].get("host_name", ""),
        "num_cpus": raw["context"].get("num_cpus", 0),
        "mhz_per_cpu": raw["context"].get("mhz_per_cpu", 0),
    },
    "protocols": protocols,
    "components": components,
    "fig_benches": fig_benches,
}
with open(out_path, "w") as f:
    json.dump(out, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY

echo "== protocol throughput (gossip rounds / wall-clock second) =="
python3 - "$OUT" <<'PY'
import json
import sys

with open(sys.argv[1]) as f:
    for name, entry in sorted(json.load(f)["protocols"].items()):
        print(f"{name}\t{entry['rounds_per_sec']}")
PY
