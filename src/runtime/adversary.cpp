#include "runtime/adversary.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "baselines/arrg.hpp"
#include "baselines/cyclon.hpp"
#include "baselines/gozar.hpp"
#include "baselines/nylon.hpp"
#include "core/croupier.hpp"
#include "runtime/registry.hpp"

namespace croupier::run {

namespace {

// Promotion targets per round and the bound on the victim list. Small on
// purpose: a hub's reach comes from answering every request, not from
// flooding.
constexpr std::size_t kPromoteFanout = 2;
constexpr std::size_t kRecentCap = 32;
constexpr std::size_t kSeedFanout = 5;

}  // namespace

AdversaryDialect dialect_for_protocol(const std::string& protocol_spec) {
  const auto [name, opts] = ProtocolRegistry::parse_spec(protocol_spec);
  (void)opts;
  if (name == "croupier") return AdversaryDialect::Croupier;
  if (name == "cyclon") return AdversaryDialect::Cyclon;
  if (name == "gozar") return AdversaryDialect::Gozar;
  if (name == "nylon") return AdversaryDialect::Nylon;
  if (name == "arrg") return AdversaryDialect::Arrg;
  throw std::invalid_argument("adversary: no hub dialect for protocol '" +
                              name + "'");
}

HubSampler::HubSampler(Context ctx, AdversaryDialect dialect)
    : pss::PeerSampler(std::move(ctx)), dialect_(dialect) {}

void HubSampler::init() {
  for (const net::NodeId id :
       bootstrap().sample_public(kSeedFanout, self(), rng())) {
    remember(id);
  }
}

void HubSampler::remember(net::NodeId peer) {
  if (peer == self() || peer == net::kNilNode) return;
  if (std::find(recent_.begin(), recent_.end(), peer) != recent_.end()) {
    return;
  }
  recent_.push_back(peer);
  while (recent_.size() > kRecentCap) recent_.pop_front();
}

void HubSampler::promote_to(net::NodeId target) {
  switch (dialect_) {
    case AdversaryDialect::Croupier: {
      auto req = std::make_shared<core::CroupierShuffleReq>();
      req->sender = pss::NodeDescriptor::self(self(), nat_type());
      network().send(self(), target, std::move(req));
      break;
    }
    case AdversaryDialect::Cyclon: {
      auto req = std::make_shared<baselines::CyclonShuffleReq>();
      req->sender = pss::NodeDescriptor::self(self(), nat_type());
      network().send(self(), target, std::move(req));
      break;
    }
    case AdversaryDialect::Gozar: {
      auto req = std::make_shared<baselines::GozarShuffleReq>();
      req->sender =
          baselines::GozarDescriptor{self(), nat_type(), 0, {}};
      req->nonce = next_nonce_++;
      network().send(self(), target, std::move(req));
      break;
    }
    case AdversaryDialect::Nylon: {
      auto req = std::make_shared<baselines::NylonShuffleReq>();
      req->sender =
          baselines::NylonDescriptor{self(), nat_type(), 0, self()};
      network().send(self(), target, std::move(req));
      break;
    }
    case AdversaryDialect::Arrg: {
      auto req = std::make_shared<baselines::ArrgShuffleReq>();
      req->sender = pss::NodeDescriptor::self(self(), nat_type());
      network().send(self(), target, std::move(req));
      break;
    }
  }
}

void HubSampler::round() {
  if (recent_.empty()) init();
  for (std::size_t i = 0; i < kPromoteFanout && !recent_.empty(); ++i) {
    const net::NodeId target = recent_.front();
    recent_.pop_front();
    recent_.push_back(target);
    promote_to(target);
  }
}

void HubSampler::on_message(net::NodeId from, const net::Message& msg) {
  switch (dialect_) {
    case AdversaryDialect::Croupier:
      switch (msg.type()) {
        case core::kCroupierShuffleReq: {
          const auto& req = static_cast<const core::CroupierShuffleReq&>(msg);
          remember(req.sender.id);
          ++poisoned_exchanges_;
          auto res = std::make_shared<core::CroupierShuffleRes>();
          res->pub.push_back(pss::NodeDescriptor::self(self(), nat_type()));
          network().send(self(), from, std::move(res));
          break;
        }
        case core::kCroupierShuffleRes:
          remember(from);
          break;
        default:
          break;
      }
      break;

    case AdversaryDialect::Cyclon:
      switch (msg.type()) {
        case baselines::kCyclonShuffleReq: {
          const auto& req = static_cast<const baselines::CyclonShuffleReq&>(msg);
          remember(req.sender.id);
          ++poisoned_exchanges_;
          auto res = std::make_shared<baselines::CyclonShuffleRes>();
          res->entries.push_back(pss::NodeDescriptor::self(self(), nat_type()));
          network().send(self(), from, std::move(res));
          break;
        }
        case baselines::kCyclonShuffleRes:
          remember(from);
          break;
        default:
          break;
      }
      break;

    case AdversaryDialect::Gozar:
      switch (msg.type()) {
        case baselines::kGozarShuffleReq: {
          const auto& req = static_cast<const baselines::GozarShuffleReq&>(msg);
          remember(req.sender.id);
          ++poisoned_exchanges_;
          auto res = std::make_shared<baselines::GozarShuffleRes>();
          res->responder = self();
          res->entries.push_back(
              baselines::GozarDescriptor{self(), nat_type(), 0, {}});
          if (req.sender.nat_type == net::NatType::Public ||
              from == req.sender.id) {
            network().send(self(), req.sender.id, std::move(res));
          } else {
            // Forwarded by a relay: the honest response path, with
            // poisoned contents.
            auto rel = std::make_shared<baselines::GozarRelayedRes>();
            rel->final_target = req.sender.id;
            rel->inner = std::move(*res);
            network().send(self(), from, std::move(rel));
          }
          break;
        }
        case baselines::kGozarRelayedReq: {
          // We were picked as a relay parent. Instead of forwarding,
          // answer in the final target's name: the initiator's pending
          // exchange matches `responder` and merges our self-promotion.
          // Its NAT mapping toward us is open — it just sent us this.
          const auto& rel = static_cast<const baselines::GozarRelayedReq&>(msg);
          remember(rel.inner.sender.id);
          ++hijacked_relays_;
          auto res = std::make_shared<baselines::GozarShuffleRes>();
          res->responder = rel.final_target;
          res->entries.push_back(
              baselines::GozarDescriptor{self(), nat_type(), 0, {}});
          network().send(self(), rel.inner.sender.id, std::move(res));
          break;
        }
        case baselines::kGozarPing:
          // Stay a live (and thus repeatedly chosen) relay parent.
          network().send(self(), from, std::make_shared<baselines::GozarPong>());
          break;
        case baselines::kGozarShuffleRes:
          remember(from);
          break;
        default:
          break;
      }
      break;

    case AdversaryDialect::Nylon:
      switch (msg.type()) {
        case baselines::kNylonShuffleReq: {
          const auto& req = static_cast<const baselines::NylonShuffleReq&>(msg);
          remember(req.sender.id);
          ++poisoned_exchanges_;
          auto res = std::make_shared<baselines::NylonShuffleRes>();
          res->entries.push_back(
              baselines::NylonDescriptor{self(), nat_type(), 0, self()});
          network().send(self(), from, std::move(res));
          break;
        }
        case baselines::kNylonShuffleRes:
          remember(from);
          break;
        case baselines::kNylonPunchReq:
          // Swallow the hole-punch chain: the initiator's exchange with
          // its real target silently fails.
          ++hijacked_relays_;
          break;
        case baselines::kNylonConnect: {
          // Answer like an honest target — the punch completes toward
          // us, and the follow-up shuffle request gets poisoned.
          const auto& c = static_cast<const baselines::NylonConnect&>(msg);
          remember(c.initiator);
          network().send(self(), c.initiator,
                         std::make_shared<baselines::NylonPunchOpen>());
          break;
        }
        default:
          break;
      }
      break;

    case AdversaryDialect::Arrg:
      switch (msg.type()) {
        case baselines::kArrgShuffleReq: {
          const auto& req = static_cast<const baselines::ArrgShuffleReq&>(msg);
          remember(req.sender.id);
          ++poisoned_exchanges_;
          auto res = std::make_shared<baselines::ArrgShuffleRes>();
          res->entries.push_back(pss::NodeDescriptor::self(self(), nat_type()));
          network().send(self(), from, std::move(res));
          break;
        }
        case baselines::kArrgShuffleRes:
          remember(from);
          break;
        default:
          break;
      }
      break;
  }
}

std::optional<pss::NodeDescriptor> HubSampler::sample() {
  return pss::NodeDescriptor::self(self(), nat_type());
}

std::vector<net::NodeId> HubSampler::out_neighbors() const {
  std::vector<net::NodeId> out(recent_.begin(), recent_.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ProtocolFactory make_hub_adversary_factory(ProtocolFactory inner,
                                           std::size_t hubs,
                                           AdversaryDialect dialect) {
  auto assigned = std::make_shared<std::size_t>(0);
  return [inner = std::move(inner), hubs, dialect,
          assigned](pss::PeerSampler::Context ctx)
             -> std::unique_ptr<pss::PeerSampler> {
    if (*assigned < hubs && ctx.nat_type == net::NatType::Public) {
      ++*assigned;
      return std::make_unique<HubSampler>(std::move(ctx), dialect);
    }
    return inner(std::move(ctx));
  };
}

}  // namespace croupier::run
