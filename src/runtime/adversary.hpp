// Hub-forming adversary: a registry-pluggable protocol shim.
//
// `adversary=hubs:N` replaces the first N *public* spawns with HubSampler
// instances that speak the honest protocol's wire dialect but answer
// every shuffle with self-promoting descriptors (fresh age-0 copies of
// the hub itself) instead of a random view subset. Under Gozar the hub
// additionally hijacks the relay path: when chosen as a relay parent it
// answers the relayed request itself, impersonating the final target in
// `responder`, so the private initiator's pending exchange matches and
// the poison merges. Croupier gives a hub no such amplification channel —
// privates never receive requests, so a hub only poisons the exchanges
// addressed to it, same as any public node.
//
// This is the adversarial half of the randomness audit (PeerSwap,
// arXiv:2408.03829): the `record=randomness` chi-square over in-degree is
// exactly the statistic a successful hub drives off the uniform band.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "pss/protocol.hpp"
#include "runtime/world.hpp"

namespace croupier::run {

/// Which honest wire dialect the hub speaks (and subverts).
enum class AdversaryDialect : std::uint8_t {
  Croupier,
  Cyclon,
  Gozar,
  Nylon,
  Arrg,
};

/// Dialect for a protocol spec string ("gozar:parents=3" -> Gozar).
/// Throws std::invalid_argument for a protocol without a dialect.
[[nodiscard]] AdversaryDialect dialect_for_protocol(
    const std::string& protocol_spec);

/// A node that answers every shuffle with self-promotion. Exposed so
/// tests can identify hubs by dynamic_cast; constructed through
/// make_hub_adversary_factory in normal use.
class HubSampler final : public pss::PeerSampler {
 public:
  HubSampler(Context ctx, AdversaryDialect dialect);

  void init() override;
  void round() override;
  void on_message(net::NodeId from, const net::Message& msg) override;

  std::optional<pss::NodeDescriptor> sample() override;
  [[nodiscard]] std::vector<net::NodeId> out_neighbors() const override;

  /// Shuffle requests answered with self-promotion so far.
  [[nodiscard]] std::uint64_t poisoned_exchanges() const {
    return poisoned_exchanges_;
  }
  /// Gozar relayed requests hijacked (answered in the target's name).
  [[nodiscard]] std::uint64_t hijacked_relays() const {
    return hijacked_relays_;
  }

 private:
  void remember(net::NodeId peer);
  void promote_to(net::NodeId target);

  AdversaryDialect dialect_;
  // Recently heard-from peers — the hub's promotion targets and its
  // out_neighbors() as seen by the audit. Bounded FIFO, membership
  // checked on insert.
  std::deque<net::NodeId> recent_;
  std::uint16_t next_nonce_ = 0;  // gozar request dedup key
  std::uint64_t poisoned_exchanges_ = 0;
  std::uint64_t hijacked_relays_ = 0;
};

/// Wraps `inner` so the first `hubs` public-node constructions yield
/// HubSamplers speaking `dialect`; everyone else gets the honest
/// protocol. Spawns execute in serial scenario events, so the shared
/// assignment counter needs no synchronisation.
[[nodiscard]] ProtocolFactory make_hub_adversary_factory(
    ProtocolFactory inner, std::size_t hubs, AdversaryDialect dialect);

}  // namespace croupier::run
