// Convenience ProtocolFactory builders for the four PSS implementations.
// Benches and examples construct worlds as
//   World world(cfg, make_croupier_factory(croupier_cfg));
#pragma once

#include <memory>

#include "baselines/arrg.hpp"
#include "baselines/cyclon.hpp"
#include "baselines/gozar.hpp"
#include "baselines/nylon.hpp"
#include "core/croupier.hpp"
#include "runtime/world.hpp"

namespace croupier::run {

inline ProtocolFactory make_croupier_factory(core::CroupierConfig cfg) {
  return [cfg](pss::PeerSampler::Context ctx) {
    return std::make_unique<core::Croupier>(std::move(ctx), cfg);
  };
}

inline ProtocolFactory make_cyclon_factory(pss::PssConfig cfg) {
  return [cfg](pss::PeerSampler::Context ctx) {
    return std::make_unique<baselines::Cyclon>(std::move(ctx), cfg);
  };
}

inline ProtocolFactory make_gozar_factory(baselines::GozarConfig cfg) {
  return [cfg](pss::PeerSampler::Context ctx) {
    return std::make_unique<baselines::Gozar>(std::move(ctx), cfg);
  };
}

inline ProtocolFactory make_nylon_factory(baselines::NylonConfig cfg) {
  return [cfg](pss::PeerSampler::Context ctx) {
    return std::make_unique<baselines::Nylon>(std::move(ctx), cfg);
  };
}

inline ProtocolFactory make_arrg_factory(baselines::ArrgConfig cfg) {
  return [cfg](pss::PeerSampler::Context ctx) {
    return std::make_unique<baselines::Arrg>(std::move(ctx), cfg);
  };
}

}  // namespace croupier::run
