// World: the experiment orchestrator.
//
// Owns the simulator, the network, the bootstrap oracle, and every node's
// runtime (NAT-ID components + PSS protocol instance). Drives gossip
// rounds with per-node phase and a configurable clock-skew factor, and
// provides the snapshots (overlay graphs, per-node estimates, class maps)
// the metrics and benches consume.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics/graph.hpp"
#include "natid/natid.hpp"
#include "net/bootstrap.hpp"
#include "net/network.hpp"
#include "pss/protocol.hpp"
#include "sim/parallel_executor.hpp"
#include "sim/simulator.hpp"

namespace croupier::run {

using ProtocolFactory =
    std::function<std::unique_ptr<pss::PeerSampler>(pss::PeerSampler::Context)>;

class World {
 public:
  enum class LatencyKind : std::uint8_t { Constant, King, Coordinate };

  struct Config {
    std::uint64_t seed = 1;
    /// Message-loss conditions (per-class-pair, optionally time-varying;
    /// net::LossConfig::uniform(p) for the paper's flat probability).
    net::LossConfig loss;
    /// Packet layer (MTU fragmentation, FEC repair, per-node bandwidth
    /// caps). The default — mtu=0, uncapped — is the historic
    /// one-message-one-datagram model, byte-identical to every
    /// pre-packet run.
    net::PacketConfig packet;
    sim::Duration round_period = sim::sec(1);
    /// Per-node round period is scaled by 1 ± clock_skew (uniform),
    /// standing in for the paper's "subject to clock skew".
    double clock_skew = 0.01;
    /// Extra multiplier on *private* nodes' round period (1.0 = none).
    /// Deliberately violates the estimator's first assumption ("no bias
    /// between the average gossip round-time of public and private
    /// nodes") — used by bench/ablation_skew to quantify the resulting
    /// estimation bias.
    double private_round_scale = 1.0;
    LatencyKind latency = LatencyKind::King;
    sim::Duration constant_latency = sim::msec(50);
    /// When true, joining nodes run the distributed NAT-ID protocol
    /// (§V) before starting to gossip; otherwise the ground-truth
    /// classification is used directly (faster, and equivalent given the
    /// protocol's accuracy — tested separately).
    bool use_natid_protocol = false;
    sim::Duration natid_timeout = sim::sec(2);
    /// Worker threads inside this one World. 1 = the classic sequential
    /// engine; N > 1 = the round-synchronous parallel engine
    /// (sim/parallel_executor), whose output is byte-identical to 1.
    /// Only run_until/run_for are engine-aware — driving
    /// simulator().run_until directly always runs sequentially.
    std::size_t world_jobs = 1;
  };

  World(Config cfg, ProtocolFactory factory);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Adds a node with the given ground-truth NAT configuration. Returns
  /// its id. The node begins gossiping after (optional) NAT
  /// identification, at a random phase within its round period.
  net::NodeId spawn(const net::NatConfig& nat);

  /// Adds a node whose classification is taken from ground truth even
  /// when use_natid_protocol is set — the operator-seeded nodes every
  /// deployment needs before the identification protocol has public
  /// responders to test against.
  net::NodeId spawn_seeded(const net::NatConfig& nat);

  /// Removes a node abruptly (crash). In-flight traffic to it is lost.
  void kill(net::NodeId id);

  /// Changes a live node's ground-truth NAT configuration in place (the
  /// natflap scenario: a laptop re-homing from an open network to a
  /// carrier NAT and back). The node's network identity and RNG lineage
  /// survive, but its protocol instance is torn down and rebuilt through
  /// the same join path spawn uses — including the distributed NAT-ID
  /// protocol when the World runs it — because that is what a real
  /// re-homed node would do. Clock skew is a node property and is kept;
  /// private_round_scale is applied at spawn only.
  void reclassify(net::NodeId id, const net::NatConfig& nat);

  [[nodiscard]] bool alive(net::NodeId id) const {
    return nodes_.contains(id);
  }
  [[nodiscard]] std::size_t alive_count() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<net::NodeId>& alive_ids() const {
    return alive_ids_;
  }
  /// Live node ids in ascending order — the deterministic iteration basis
  /// for every snapshot/aggregate the recorders and sinks consume.
  [[nodiscard]] std::vector<net::NodeId> sorted_ids() const;

  /// Ground-truth public/private counts and ratio ω over live nodes.
  [[nodiscard]] std::size_t count(net::NatType type) const;
  [[nodiscard]] double true_ratio() const;

  /// Plays the simulation to `t` on the configured engine (sequential
  /// for world_jobs <= 1, round-synchronous parallel otherwise).
  void run_until(sim::SimTime t);
  void run_for(sim::Duration span) { run_until(sim_.now() + span); }

  /// Engine statistics; nullptr under the sequential engine.
  [[nodiscard]] const sim::ParallelExecutor::Stats* engine_stats() const {
    return executor_ ? &executor_->stats() : nullptr;
  }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] net::BootstrapServer& bootstrap_server() {
    return bootstrap_;
  }
  /// RNG stream reserved for scenario processes (joins, churn, failure).
  [[nodiscard]] sim::RngStream& scenario_rng() { return scenario_rng_; }

  /// Pool all node view storage is carved from (memory accounting).
  [[nodiscard]] const pss::ViewArena& view_arena() const {
    return view_arena_;
  }

  /// Live nodes with an active protocol instance (O(1); alive_count()
  /// minus nodes still running NAT identification).
  [[nodiscard]] std::size_t gossiping_count() const {
    return gossiping_count_;
  }

  /// Total kill() calls so far. Observers that accumulate state across
  /// snapshots (the sampled graph recorder's component tracking) treat a
  /// change as an epoch boundary and reset.
  [[nodiscard]] std::uint64_t kill_count() const { return kill_count_; }

  /// The node's protocol instance, or nullptr before identification
  /// completes / after death.
  [[nodiscard]] pss::PeerSampler* sampler(net::NodeId id);
  [[nodiscard]] const pss::PeerSampler* sampler(net::NodeId id) const;

  /// Ground-truth classification of a live node.
  [[nodiscard]] net::NatType type_of(net::NodeId id) const;
  /// Full ground-truth NAT configuration of a live node (what
  /// reclassify() restores after a flap).
  [[nodiscard]] const net::NatConfig& nat_config_of(net::NodeId id) const;
  /// Classification the node itself arrived at (== ground truth unless the
  /// NAT-ID protocol misidentified it).
  [[nodiscard]] net::NatType identified_type_of(net::NodeId id) const;

  /// Gossip rounds the node has executed (paper: metrics skip nodes with
  /// fewer than 2 rounds).
  [[nodiscard]] std::uint64_t rounds_of(net::NodeId id) const;

  /// Visits every live node that has an active protocol.
  void for_each_sampler(
      const std::function<void(net::NodeId, pss::PeerSampler&)>& fn) const;

  /// Directed overlay snapshot over live, gossiping nodes. With
  /// `usable_only`, edges are each protocol's usable_neighbors() — the
  /// fig. 7b connectivity notion.
  [[nodiscard]] metrics::OverlayGraph snapshot_overlay(
      bool usable_only = false) const;

  /// Ground-truth class of every live gossiping node (for overhead
  /// accounting), sorted by node id so downstream accumulation order is
  /// deterministic.
  [[nodiscard]] std::vector<std::pair<net::NodeId, net::NatType>> class_map()
      const;

  /// All current ratio estimates from nodes with >= min_rounds rounds.
  [[nodiscard]] std::vector<double> ratio_estimates(
      std::uint64_t min_rounds = 2) const;

  /// Registers an application-layer message handler for a node:
  /// messages whose type tag is outside the protocol ranges (use tags
  /// >= 0x80) are routed to it. This is how applications (examples/)
  /// layer their own traffic on top of the PSS. The handler must outlive
  /// the node; pass nullptr to remove.
  void set_app_handler(net::NodeId id, net::MessageHandler* handler);

 private:
  struct NodeRuntime;

  net::NodeId spawn_impl(const net::NatConfig& nat, bool skip_natid);
  void start_pss(NodeRuntime& node);
  void schedule_round(net::NodeId id, std::uint32_t epoch);
  void start_natid(NodeRuntime& node);

  Config cfg_;
  ProtocolFactory factory_;
  sim::Simulator sim_;
  std::unique_ptr<sim::ParallelExecutor> executor_;  // world_jobs > 1 only
  sim::RngStream master_rng_;
  sim::RngStream scenario_rng_;
  sim::RngStream spawn_rng_;
  net::BootstrapServer bootstrap_;
  std::unique_ptr<net::Network> network_;

  // Declared before nodes_: views release their blocks into the arena on
  // node destruction, so the arena must be destroyed after the nodes.
  pss::ViewArena view_arena_;
  std::unordered_map<net::NodeId, std::unique_ptr<NodeRuntime>> nodes_;
  std::vector<net::NodeId> alive_ids_;
  std::unordered_map<net::NodeId, std::size_t> alive_index_;
  net::NodeId next_id_ = 1;
  std::size_t public_count_ = 0;  // ground truth over live nodes
  std::size_t gossiping_count_ = 0;
  std::uint64_t kill_count_ = 0;
};

}  // namespace croupier::run
