// Scenario processes: the workload side of every experiment.
//
// Every membership dynamic an experiment can throw at the overlay is a
// ScenarioProcess — one common lifecycle (start/stop/stats) so an
// Experiment owns its workload as a pipeline of uniform objects:
//
//  - JoinProcess: Poisson joins (paper: "nodes join the system following
//    a Poisson distribution with an inter-arrival time of X ms") and
//    fixed-rate joins (fig. 2's ratio-change phase: "a new public node
//    every 42 ms");
//  - FlashCrowdProcess: a join surge with a piecewise (ramp-up, peak,
//    ramp-down) rate profile — the flash-crowd workload the paper's
//    constant-rate join processes cannot express;
//  - ChurnProcess: continuous churn ("replacing a fixed fraction of
//    randomly selected public and private nodes with new nodes at each
//    gossiping round, keeping the ratio stable", §VII-B);
//  - CatastropheProcess: catastrophic failure (fig. 7b: a fraction of
//    all nodes crashes at a single instant, uniformly sampled);
//  - CorrelatedFailureProcess: the adversarial variant — the crashing
//    cohort is a contiguous latency region or biased to one NAT class,
//    the membership dynamics under which peer-sampler randomness claims
//    are most fragile (PeerSwap, arXiv:2408.03829).
//
// The historic free functions (schedule_*_joins, schedule_catastrophe)
// remain as fire-and-forget wrappers over the same internals; tests and
// hand-built worlds keep using them, and their event/RNG schedules are
// unchanged.
//
// Determinism contract: every event a scenario process schedules is
// serial-affinity (scenario code mutates cross-node state — spawns,
// kills, the shared scenario RNG), so the round-synchronous parallel
// engine treats it as a barrier and runs stay byte-identical across
// engines.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/nat.hpp"
#include "runtime/world.hpp"

namespace croupier::run {

/// Joins `count` nodes with exponential inter-arrival times of the given
/// mean, starting at `start`.
void schedule_poisson_joins(World& world, std::size_t count,
                            const net::NatConfig& nat,
                            sim::Duration mean_interarrival,
                            sim::SimTime start = 0);

/// Joins `count` nodes at a fixed interval, starting at `start`.
void schedule_fixed_joins(World& world, std::size_t count,
                          const net::NatConfig& nat, sim::Duration interval,
                          sim::SimTime start = 0);

/// Kills floor(fraction * alive) uniformly random nodes at time `at`.
void schedule_catastrophe(World& world, sim::SimTime at, double fraction);

namespace detail {
struct JoinState;
struct FlashState;
}  // namespace detail

/// One membership dynamic of an experiment. Concrete processes schedule
/// their own events on the world's simulator; the owner (usually an
/// Experiment) arms each with start() and may halt it early with stop().
class ScenarioProcess {
 public:
  explicit ScenarioProcess(World& world) : world_(world) {}
  virtual ~ScenarioProcess() = default;

  ScenarioProcess(const ScenarioProcess&) = delete;
  ScenarioProcess& operator=(const ScenarioProcess&) = delete;

  /// Arms the process at virtual time `at`. Call at most once while the
  /// process is running; a stopped process may be started again.
  virtual void start(sim::SimTime at) = 0;

  /// Halts the process immediately and idempotently: no node is spawned,
  /// killed or replaced by this process after stop() returns, including
  /// by ticks already sitting in the event queue.
  virtual void stop() = 0;

  [[nodiscard]] bool running() const { return running_; }

  /// Lifetime totals of what the process did to the population.
  struct Stats {
    std::uint64_t spawned = 0;       // nodes created
    std::uint64_t killed = 0;        // nodes crashed
    std::uint64_t replaced = 0;      // kill+respawn pairs (churn, eclipse)
    std::uint64_t reclassified = 0;  // in-place NAT class flips (natflap)
  };
  [[nodiscard]] virtual Stats stats() const = 0;

 protected:
  World& world_;
  bool running_ = false;
};

/// Poisson or fixed-interval join process (the two historic free
/// functions as a stoppable pipeline stage).
class JoinProcess final : public ScenarioProcess {
 public:
  /// Exponential inter-arrival times of the given mean.
  static std::unique_ptr<JoinProcess> poisson(World& world, std::size_t count,
                                              const net::NatConfig& nat,
                                              sim::Duration mean_interarrival);
  /// Fixed inter-arrival interval.
  static std::unique_ptr<JoinProcess> fixed(World& world, std::size_t count,
                                            const net::NatConfig& nat,
                                            sim::Duration interval);

  void start(sim::SimTime at) override;
  void stop() override;
  [[nodiscard]] Stats stats() const override;

 private:
  JoinProcess(World& world, std::size_t count, const net::NatConfig& nat,
              sim::Duration mean, sim::Duration fixed);

  std::shared_ptr<detail::JoinState> state_;
};

/// A flash crowd: `publics` + `privates` extra nodes join inside a
/// window of `over` virtual time with a triangular rate profile — the
/// join rate ramps linearly up to its peak at the window midpoint and
/// back down to zero. Arrival times are the deterministic inverse-CDF
/// grid of that profile (no RNG), so the surge shape is identical across
/// seeds and engines.
class FlashCrowdProcess final : public ScenarioProcess {
 public:
  FlashCrowdProcess(World& world, std::size_t publics, std::size_t privates,
                    sim::Duration over);

  void start(sim::SimTime at) override;
  void stop() override;
  [[nodiscard]] Stats stats() const override;

 private:
  std::size_t publics_;
  std::size_t privates_;
  sim::Duration over_;
  std::shared_ptr<detail::FlashState> state_;
};

/// Catastrophic failure: floor(fraction * alive) uniformly random nodes
/// crash at one instant (fig. 7b). The kill event is scheduled from
/// inside a same-time event so it executes after every event already
/// queued at that timestamp — the tie-break the historic hand-built
/// fig7b bench established; spec-built worlds stay bit-compatible
/// with it.
class CatastropheProcess final : public ScenarioProcess {
 public:
  CatastropheProcess(World& world, double fraction);
  ~CatastropheProcess() override { *alive_flag_ = false; }

  void start(sim::SimTime at) override;
  void stop() override;
  [[nodiscard]] Stats stats() const override { return stats_; }

 private:
  void fire();

  double fraction_;
  Stats stats_;
  std::shared_ptr<bool> alive_flag_;  // guards the queued fire() events
};

/// Correlated failure: like a catastrophe, but the crashing cohort is
/// structured instead of uniform —
///   Region:  a contiguous latency neighbourhood (the floor(frac*alive)
///            nodes closest, by the latency model's deterministic
///            base_latency metric, to a uniformly drawn epicenter node);
///   Public / Private: biased to one NAT class — victims are drawn
///            uniformly from that class first and spill into the rest of
///            the population only once the class is exhausted, so `frac`
///            keeps meaning a fraction of the whole system;
///   Uniform: the fig. 7b baseline, for like-for-like comparisons.
class CorrelatedFailureProcess final : public ScenarioProcess {
 public:
  enum class Corr : std::uint8_t { Uniform, Region, Public, Private };

  CorrelatedFailureProcess(World& world, double fraction, Corr corr);
  ~CorrelatedFailureProcess() override { *alive_flag_ = false; }

  void start(sim::SimTime at) override;
  void stop() override;
  [[nodiscard]] Stats stats() const override { return stats_; }

 private:
  void fire();

  double fraction_;
  Corr corr_;
  Stats stats_;
  std::shared_ptr<bool> alive_flag_;
};

/// Continuous churn: each period, `fraction` of each node class is
/// replaced by fresh nodes of the same class, preserving the ratio.
/// Fractional quotas accumulate across rounds so arbitrarily low rates
/// (0.1 %/round) still average out correctly; a quota carry is dropped
/// while its class has no live nodes (a stale carry would otherwise
/// burst-replace the first node of that class to reappear after a
/// catastrophe or at ratio extremes).
class ChurnProcess final : public ScenarioProcess {
 public:
  ChurnProcess(World& world, double fraction_per_round,
               net::NatConfig public_cfg, net::NatConfig private_cfg,
               sim::Duration period = sim::sec(1));
  /// Cancels the pending tick: no event capturing this object survives
  /// it (the owning World must still be alive, which every owner —
  /// Experiment pipeline or stack scope — already guarantees).
  ~ChurnProcess() override { stop(); }

  /// Starts replacing nodes at time `at`. Runs until stop().
  void start(sim::SimTime at) override;
  /// Immediate and idempotent: the pending tick is cancelled, so no
  /// replacement fires after stop() even if one was already queued, and
  /// a subsequent start() cannot stack a second tick chain on top of a
  /// zombie one.
  void stop() override;

  [[nodiscard]] std::uint64_t replaced() const { return replaced_; }
  [[nodiscard]] Stats stats() const override;

 private:
  void tick();

  double fraction_;
  net::NatConfig public_cfg_;
  net::NatConfig private_cfg_;
  sim::Duration period_;
  double carry_public_ = 0.0;
  double carry_private_ = 0.0;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::uint64_t replaced_ = 0;
};

/// Eclipse attack as a membership dynamic: each period, every node the
/// target currently points at is crashed and replaced by a fresh node of
/// the same NAT class (population size and ratio stay stable, so audit
/// shifts are attributable to the attack, not to shrinkage). The target
/// is forced to rebuild its view from strangers every period — a sampler
/// whose replacement stream is not uniform leaks it in the target's
/// in-degree and repeat statistics. A dead or not-yet-gossiping target
/// makes the tick a deterministic no-op.
class EclipseProcess final : public ScenarioProcess {
 public:
  EclipseProcess(World& world, net::NodeId target, sim::Duration period);
  /// Cancels the pending tick, as in ChurnProcess.
  ~EclipseProcess() override { stop(); }

  void start(sim::SimTime at) override;
  void stop() override;
  [[nodiscard]] Stats stats() const override { return stats_; }

 private:
  void tick();

  net::NodeId target_;
  sim::Duration period_;
  Stats stats_;
  sim::EventId pending_ = sim::kInvalidEventId;
};

/// Oscillating NAT reclassification: each period alternates between an
/// "out" phase — floor(frac * alive) uniformly drawn nodes flip class in
/// place (public -> carrier NAT, private -> open) through
/// World::reclassify, re-joining through the NAT-ID path when the world
/// runs it — and a "back" phase restoring every still-alive flapped node
/// to its original configuration. Node identities and RNG lineages
/// survive the flip; only the protocol instance is rebuilt. This is the
/// dynamic that breaks traversal-dependent samplers (gozar's relay
/// parents, nylon's RVP chains reference classes that no longer hold)
/// while a croupier private only ever depends on live publics.
class NatFlapProcess final : public ScenarioProcess {
 public:
  NatFlapProcess(World& world, double fraction, sim::Duration period);
  ~NatFlapProcess() override { stop(); }

  void start(sim::SimTime at) override;
  void stop() override;
  [[nodiscard]] Stats stats() const override { return stats_; }

  /// Nodes currently flipped away from their original class.
  [[nodiscard]] std::size_t currently_flapped() const {
    return flapped_.size();
  }

 private:
  void tick();

  double fraction_;
  sim::Duration period_;
  bool out_phase_ = true;  // next tick flips out; alternates
  std::vector<std::pair<net::NodeId, net::NatConfig>> flapped_;
  Stats stats_;
  sim::EventId pending_ = sim::kInvalidEventId;
};

}  // namespace croupier::run
