// Scenario processes: the workload side of every experiment.
//
//  - Poisson join processes (paper: "nodes join the system following a
//    Poisson distribution with an inter-arrival time of X ms");
//  - fixed-rate join processes (fig. 2's ratio-change phase: "a new public
//    node every 42 ms");
//  - continuous churn ("replacing a fixed fraction of randomly selected
//    public and private nodes with new nodes at each gossiping round,
//    keeping the ratio stable", §VII-B);
//  - catastrophic failure (fig. 7b: a fraction of all nodes crashes at a
//    single instant).
#pragma once

#include <cstdint>
#include <memory>

#include "net/nat.hpp"
#include "runtime/world.hpp"

namespace croupier::run {

/// Joins `count` nodes with exponential inter-arrival times of the given
/// mean, starting at `start`.
void schedule_poisson_joins(World& world, std::size_t count,
                            const net::NatConfig& nat,
                            sim::Duration mean_interarrival,
                            sim::SimTime start = 0);

/// Joins `count` nodes at a fixed interval, starting at `start`.
void schedule_fixed_joins(World& world, std::size_t count,
                          const net::NatConfig& nat, sim::Duration interval,
                          sim::SimTime start = 0);

/// Kills floor(fraction * alive) uniformly random nodes at time `at`.
void schedule_catastrophe(World& world, sim::SimTime at, double fraction);

/// Continuous churn: each period, `fraction` of each node class is
/// replaced by fresh nodes of the same class, preserving the ratio.
/// Fractional quotas accumulate across rounds so arbitrarily low rates
/// (0.1 %/round) still average out correctly.
class ChurnProcess {
 public:
  ChurnProcess(World& world, double fraction_per_round,
               net::NatConfig public_cfg, net::NatConfig private_cfg,
               sim::Duration period = sim::sec(1));

  /// Starts replacing nodes at time `at`. Runs until stop().
  void start(sim::SimTime at);
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t replaced() const { return replaced_; }

 private:
  void tick();

  World& world_;
  double fraction_;
  net::NatConfig public_cfg_;
  net::NatConfig private_cfg_;
  sim::Duration period_;
  double carry_public_ = 0.0;
  double carry_private_ = 0.0;
  bool running_ = false;
  std::uint64_t replaced_ = 0;
};

}  // namespace croupier::run
