#include "runtime/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace croupier::run {

namespace {

// Shared state for a recursive join process.
struct JoinState {
  std::size_t remaining;
  net::NatConfig nat;
  sim::Duration mean;  // exponential mean; 0 => fixed interval
  sim::Duration fixed;
};

void join_step(World& world, const std::shared_ptr<JoinState>& st) {
  if (st->remaining == 0) return;
  --st->remaining;
  world.spawn(st->nat);
  if (st->remaining == 0) return;
  const sim::Duration gap =
      st->mean > 0
          ? static_cast<sim::Duration>(world.scenario_rng().exponential(
                static_cast<double>(st->mean)))
          : st->fixed;
  world.simulator().schedule_after(gap,
                                   [&world, st] { join_step(world, st); });
}

}  // namespace

void schedule_poisson_joins(World& world, std::size_t count,
                            const net::NatConfig& nat,
                            sim::Duration mean_interarrival,
                            sim::SimTime start) {
  if (count == 0) return;
  CROUPIER_ASSERT(mean_interarrival > 0);
  auto st = std::make_shared<JoinState>(
      JoinState{count, nat, mean_interarrival, 0});
  world.simulator().schedule_at(start,
                                [&world, st] { join_step(world, st); });
}

void schedule_fixed_joins(World& world, std::size_t count,
                          const net::NatConfig& nat, sim::Duration interval,
                          sim::SimTime start) {
  if (count == 0) return;
  CROUPIER_ASSERT(interval > 0);
  auto st = std::make_shared<JoinState>(JoinState{count, nat, 0, interval});
  world.simulator().schedule_at(start,
                                [&world, st] { join_step(world, st); });
}

void schedule_catastrophe(World& world, sim::SimTime at, double fraction) {
  CROUPIER_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  world.simulator().schedule_at(at, [&world, fraction] {
    const auto targets = static_cast<std::size_t>(
        std::floor(fraction * static_cast<double>(world.alive_count())));
    auto& rng = world.scenario_rng();
    for (std::size_t i = 0; i < targets; ++i) {
      const auto& alive = world.alive_ids();
      if (alive.empty()) break;
      world.kill(alive[rng.index(alive.size())]);
    }
  });
}

ChurnProcess::ChurnProcess(World& world, double fraction_per_round,
                           net::NatConfig public_cfg,
                           net::NatConfig private_cfg, sim::Duration period)
    : world_(world),
      fraction_(fraction_per_round),
      public_cfg_(public_cfg),
      private_cfg_(private_cfg),
      period_(period) {
  CROUPIER_ASSERT(fraction_ >= 0.0 && fraction_ < 1.0);
  CROUPIER_ASSERT(public_cfg_.nat_type() == net::NatType::Public);
  CROUPIER_ASSERT(private_cfg_.nat_type() == net::NatType::Private);
  CROUPIER_ASSERT(period_ > 0);
}

void ChurnProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  world_.simulator().schedule_at(at, [this] { tick(); });
}

void ChurnProcess::tick() {
  if (!running_) return;

  auto replace_class = [this](net::NatType type, double& carry,
                              const net::NatConfig& cfg) {
    carry += fraction_ * static_cast<double>(world_.count(type));
    auto quota = static_cast<std::size_t>(std::floor(carry));
    carry -= static_cast<double>(quota);

    auto& rng = world_.scenario_rng();
    for (std::size_t i = 0; i < quota; ++i) {
      // Pick a victim of the right class by rejection (class shares are
      // large, so this terminates quickly).
      const auto& alive = world_.alive_ids();
      if (alive.empty()) break;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const net::NodeId victim = alive[rng.index(alive.size())];
        if (world_.type_of(victim) == type) {
          world_.kill(victim);
          world_.spawn(cfg);
          ++replaced_;
          break;
        }
      }
    }
  };

  replace_class(net::NatType::Public, carry_public_, public_cfg_);
  replace_class(net::NatType::Private, carry_private_, private_cfg_);

  world_.simulator().schedule_after(period_, [this] { tick(); });
}

}  // namespace croupier::run
