#include "runtime/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace croupier::run {

namespace detail {

// Shared state for a recursive join process. Events hold it by
// shared_ptr, so a fire-and-forget chain (the free functions) and a
// stoppable JoinProcess handle run the exact same code.
struct JoinState {
  std::size_t remaining;
  net::NatConfig nat;
  sim::Duration mean;  // exponential mean; 0 => fixed interval
  sim::Duration fixed;
  bool stopped = false;
  std::uint64_t spawned = 0;
};

// Shared state for a flash crowd: every spawn event of the surge checks
// the stop flag and bumps its class counter (per class, so a restart
// can resume the remaining quota).
struct FlashState {
  bool stopped = false;
  std::uint64_t pub_spawned = 0;
  std::uint64_t priv_spawned = 0;
};

}  // namespace detail

namespace {

using detail::FlashState;
using detail::JoinState;

void join_step(World& world, const std::shared_ptr<JoinState>& st) {
  if (st->stopped || st->remaining == 0) return;
  --st->remaining;
  world.spawn(st->nat);
  ++st->spawned;
  if (st->remaining == 0) return;
  const sim::Duration gap =
      st->mean > 0
          ? static_cast<sim::Duration>(world.scenario_rng().exponential(
                static_cast<double>(st->mean)))
          : st->fixed;
  world.simulator().schedule_after(gap,
                                   [&world, st] { join_step(world, st); });
}

void schedule_join_chain(World& world, const std::shared_ptr<JoinState>& st,
                         sim::SimTime start) {
  world.simulator().schedule_at(start,
                                [&world, st] { join_step(world, st); });
}

/// Inverse CDF of the triangular rate profile on [0, 1] (peak at 1/2):
/// the fraction of the flash-crowd window elapsed when a fraction `u` of
/// the crowd has arrived.
double triangular_inv_cdf(double u) {
  if (u <= 0.5) return std::sqrt(u / 2.0);
  return 1.0 - std::sqrt((1.0 - u) / 2.0);
}

/// Kills floor(fraction * alive) victims picked uniformly one at a time
/// from the shrinking live population — the historic fig. 7b sampling.
std::uint64_t kill_uniform(World& world, double fraction) {
  const auto targets = static_cast<std::size_t>(
      std::floor(fraction * static_cast<double>(world.alive_count())));
  auto& rng = world.scenario_rng();
  std::uint64_t killed = 0;
  for (std::size_t i = 0; i < targets; ++i) {
    const auto& alive = world.alive_ids();
    if (alive.empty()) break;
    world.kill(alive[rng.index(alive.size())]);
    ++killed;
  }
  return killed;
}

}  // namespace

void schedule_poisson_joins(World& world, std::size_t count,
                            const net::NatConfig& nat,
                            sim::Duration mean_interarrival,
                            sim::SimTime start) {
  if (count == 0) return;
  CROUPIER_ASSERT(mean_interarrival > 0);
  auto st = std::make_shared<JoinState>(
      JoinState{count, nat, mean_interarrival, 0});
  schedule_join_chain(world, st, start);
}

void schedule_fixed_joins(World& world, std::size_t count,
                          const net::NatConfig& nat, sim::Duration interval,
                          sim::SimTime start) {
  if (count == 0) return;
  CROUPIER_ASSERT(interval > 0);
  auto st = std::make_shared<JoinState>(JoinState{count, nat, 0, interval});
  schedule_join_chain(world, st, start);
}

void schedule_catastrophe(World& world, sim::SimTime at, double fraction) {
  CROUPIER_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  world.simulator().schedule_at(
      at, [&world, fraction] { kill_uniform(world, fraction); });
}

// ---------------------------------------------------------------- joins

JoinProcess::JoinProcess(World& world, std::size_t count,
                         const net::NatConfig& nat, sim::Duration mean,
                         sim::Duration fixed)
    : ScenarioProcess(world),
      state_(std::make_shared<JoinState>(JoinState{count, nat, mean, fixed})) {
}

std::unique_ptr<JoinProcess> JoinProcess::poisson(
    World& world, std::size_t count, const net::NatConfig& nat,
    sim::Duration mean_interarrival) {
  CROUPIER_ASSERT(mean_interarrival > 0);
  return std::unique_ptr<JoinProcess>(
      new JoinProcess(world, count, nat, mean_interarrival, 0));
}

std::unique_ptr<JoinProcess> JoinProcess::fixed(World& world,
                                                std::size_t count,
                                                const net::NatConfig& nat,
                                                sim::Duration interval) {
  CROUPIER_ASSERT(interval > 0);
  return std::unique_ptr<JoinProcess>(
      new JoinProcess(world, count, nat, 0, interval));
}

void JoinProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  // Restart after stop(): events of the old chain may still be queued,
  // so arm a fresh state (counters carried over) and leave the old one
  // permanently stopped — re-flipping its flag would resurrect the
  // zombie chain alongside the new one.
  if (state_->stopped) {
    state_ = std::make_shared<JoinState>(*state_);
    state_->stopped = false;
  }
  if (state_->remaining == 0) return;
  schedule_join_chain(world_, state_, at);
}

void JoinProcess::stop() {
  running_ = false;
  state_->stopped = true;
}

ScenarioProcess::Stats JoinProcess::stats() const {
  Stats s;
  s.spawned = state_->spawned;
  return s;
}

// ---------------------------------------------------------- flash crowd

FlashCrowdProcess::FlashCrowdProcess(World& world, std::size_t publics,
                                     std::size_t privates,
                                     sim::Duration over)
    : ScenarioProcess(world),
      publics_(publics),
      privates_(privates),
      over_(over),
      state_(std::make_shared<FlashState>()) {
  CROUPIER_ASSERT(over_ > 0);
}

void FlashCrowdProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  // As in JoinProcess::start: a restart must not re-enable arrivals of
  // the stopped surge still sitting in the queue, and it resumes the
  // *remaining* crowd (re-ramped over a fresh window) rather than
  // replaying nodes that already joined.
  if (state_->stopped) {
    state_ = std::make_shared<FlashState>(*state_);
    state_->stopped = false;
  }
  // Arrival k of N lands at the inverse-CDF grid point of the triangular
  // profile — deterministic, monotone in k, interleaving the two classes
  // purely by timestamp.
  const auto schedule_class = [this, at](std::size_t count,
                                         const net::NatConfig& nat,
                                         std::uint64_t FlashState::*spawned) {
    for (std::size_t k = 0; k < count; ++k) {
      const double u =
          (static_cast<double>(k) + 0.5) / static_cast<double>(count);
      const auto offset = static_cast<sim::Duration>(std::llround(
          triangular_inv_cdf(u) * static_cast<double>(over_)));
      World& world = world_;
      const auto st = state_;
      world_.simulator().schedule_at(at + offset, [&world, st, nat,
                                                   spawned] {
        if (st->stopped) return;
        world.spawn(nat);
        ++((*st).*spawned);
      });
    }
  };
  const auto remaining = [](std::size_t total, std::uint64_t done) {
    return total > done ? total - static_cast<std::size_t>(done) : 0;
  };
  schedule_class(remaining(publics_, state_->pub_spawned),
                 net::NatConfig::open(), &FlashState::pub_spawned);
  schedule_class(remaining(privates_, state_->priv_spawned),
                 net::NatConfig::natted(), &FlashState::priv_spawned);
}

void FlashCrowdProcess::stop() {
  running_ = false;
  state_->stopped = true;
}

ScenarioProcess::Stats FlashCrowdProcess::stats() const {
  Stats s;
  s.spawned = state_->pub_spawned + state_->priv_spawned;
  return s;
}

// ----------------------------------------------------------- catastrophe

CatastropheProcess::CatastropheProcess(World& world, double fraction)
    : ScenarioProcess(world),
      fraction_(fraction),
      alive_flag_(std::make_shared<bool>(false)) {
  CROUPIER_ASSERT(fraction_ >= 0.0 && fraction_ <= 1.0);
}

void CatastropheProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  // A fresh flag per arming: events queued by a previous (stopped) start
  // hold the old flag and stay inert forever.
  alive_flag_ = std::make_shared<bool>(true);
  // Double indirection on purpose: the hand-built fig7b ran the world up
  // to the crash instant and only then scheduled the kill, so the kill
  // executed after every already-queued event of that timestamp.
  // Scheduling the real kill event from inside a same-time event
  // reproduces that tie-break (fresh event ids sort last), keeping
  // spec-built worlds bit-compatible with the historic bench.
  const auto armed = alive_flag_;
  world_.simulator().schedule_at(at, [this, armed, at] {
    if (!*armed) return;
    world_.simulator().schedule_at(at, [this, armed] {
      if (!*armed) return;
      fire();
    });
  });
}

void CatastropheProcess::stop() {
  running_ = false;
  *alive_flag_ = false;
}

void CatastropheProcess::fire() { stats_.killed += kill_uniform(world_, fraction_); }

// ----------------------------------------------------- correlated failure

CorrelatedFailureProcess::CorrelatedFailureProcess(World& world,
                                                   double fraction, Corr corr)
    : ScenarioProcess(world),
      fraction_(fraction),
      corr_(corr),
      alive_flag_(std::make_shared<bool>(false)) {
  CROUPIER_ASSERT(fraction_ >= 0.0 && fraction_ <= 1.0);
}

void CorrelatedFailureProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  // A fresh flag per arming, as in CatastropheProcess::start.
  alive_flag_ = std::make_shared<bool>(true);
  const auto armed = alive_flag_;
  world_.simulator().schedule_at(at, [this, armed] {
    if (!*armed) return;
    fire();
  });
}

void CorrelatedFailureProcess::stop() {
  running_ = false;
  *alive_flag_ = false;
}

void CorrelatedFailureProcess::fire() {
  const auto targets = static_cast<std::size_t>(
      std::floor(fraction_ * static_cast<double>(world_.alive_count())));
  if (targets == 0) return;
  auto& rng = world_.scenario_rng();

  if (corr_ == Corr::Uniform) {
    stats_.killed += kill_uniform(world_, fraction_);
    return;
  }

  if (corr_ == Corr::Region) {
    // One RNG draw picks the epicenter; the cohort is then the targets
    // nearest nodes in the latency model's deterministic metric
    // (ties broken by node id so the kill set is engine-independent).
    const auto& alive = world_.alive_ids();
    const net::NodeId epicenter = alive[rng.index(alive.size())];
    const auto& latency = world_.network().latency_model();
    std::vector<std::pair<sim::Duration, net::NodeId>> by_distance;
    by_distance.reserve(alive.size());
    for (const net::NodeId id : alive) {
      by_distance.emplace_back(latency.base_latency(epicenter, id), id);
    }
    std::sort(by_distance.begin(), by_distance.end());
    for (std::size_t i = 0; i < targets; ++i) {
      world_.kill(by_distance[i].second);
      ++stats_.killed;
    }
    return;
  }

  // NAT-class-biased: the named class dies first (uniform within it);
  // the quota spills into the remaining population only once the class
  // is exhausted.
  const net::NatType type = corr_ == Corr::Public ? net::NatType::Public
                                                  : net::NatType::Private;
  std::vector<net::NodeId> cohort;
  for (const net::NodeId id : world_.alive_ids()) {
    if (world_.type_of(id) == type) cohort.push_back(id);
  }
  const auto victims = rng.sample(std::span<const net::NodeId>(cohort),
                                 std::min(targets, cohort.size()));
  for (const net::NodeId id : victims) {
    world_.kill(id);
    ++stats_.killed;
  }
  if (victims.size() < targets) {
    const std::vector<net::NodeId> rest = world_.alive_ids();
    const auto spill = rng.sample(std::span<const net::NodeId>(rest),
                                  targets - victims.size());
    for (const net::NodeId id : spill) {
      world_.kill(id);
      ++stats_.killed;
    }
  }
}

// ----------------------------------------------------------------- churn

ChurnProcess::ChurnProcess(World& world, double fraction_per_round,
                           net::NatConfig public_cfg,
                           net::NatConfig private_cfg, sim::Duration period)
    : ScenarioProcess(world),
      fraction_(fraction_per_round),
      public_cfg_(public_cfg),
      private_cfg_(private_cfg),
      period_(period) {
  CROUPIER_ASSERT(fraction_ >= 0.0 && fraction_ < 1.0);
  CROUPIER_ASSERT(public_cfg_.nat_type() == net::NatType::Public);
  CROUPIER_ASSERT(private_cfg_.nat_type() == net::NatType::Private);
  CROUPIER_ASSERT(period_ > 0);
}

void ChurnProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  pending_ = world_.simulator().schedule_at(at, [this] { tick(); });
}

void ChurnProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != sim::kInvalidEventId) {
    world_.simulator().cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
}

ScenarioProcess::Stats ChurnProcess::stats() const {
  Stats s;
  s.replaced = replaced_;
  return s;
}

void ChurnProcess::tick() {
  pending_ = sim::kInvalidEventId;
  if (!running_) return;

  auto replace_class = [this](net::NatType type, double& carry,
                              const net::NatConfig& cfg) {
    if (world_.count(type) == 0) {
      // A carry accrued while the class was populated must not survive
      // its extinction: it would burst-replace the first node of that
      // class to reappear (post-catastrophe refills, ratio=0/1 runs).
      carry = 0.0;
      return;
    }
    carry += fraction_ * static_cast<double>(world_.count(type));
    auto quota = static_cast<std::size_t>(std::floor(carry));
    carry -= static_cast<double>(quota);

    auto& rng = world_.scenario_rng();
    for (std::size_t i = 0; i < quota; ++i) {
      // Pick a victim of the right class by rejection (class shares are
      // large, so this terminates quickly).
      const auto& alive = world_.alive_ids();
      if (alive.empty()) break;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const net::NodeId victim = alive[rng.index(alive.size())];
        if (world_.type_of(victim) == type) {
          world_.kill(victim);
          world_.spawn(cfg);
          ++replaced_;
          break;
        }
      }
    }
  };

  replace_class(net::NatType::Public, carry_public_, public_cfg_);
  replace_class(net::NatType::Private, carry_private_, private_cfg_);

  if (running_) {
    pending_ = world_.simulator().schedule_after(period_, [this] { tick(); });
  }
}

// ---------------------------------------------------------------- eclipse

EclipseProcess::EclipseProcess(World& world, net::NodeId target,
                               sim::Duration period)
    : ScenarioProcess(world), target_(target), period_(period) {
  CROUPIER_ASSERT(target_ != net::kNilNode);
  CROUPIER_ASSERT(period_ > 0);
}

void EclipseProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  pending_ = world_.simulator().schedule_at(at, [this] { tick(); });
}

void EclipseProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != sim::kInvalidEventId) {
    world_.simulator().cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
}

void EclipseProcess::tick() {
  pending_ = sim::kInvalidEventId;
  if (!running_) return;

  const auto* sampler =
      world_.alive(target_) ? world_.sampler(target_) : nullptr;
  if (sampler != nullptr) {
    // Snapshot, sort and dedupe the target's out-edges so the kill order
    // is a pure function of the view contents.
    std::vector<net::NodeId> neighbors = sampler->out_neighbors();
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
    for (const net::NodeId id : neighbors) {
      if (id == target_ || !world_.alive(id)) continue;
      const net::NatType type = world_.type_of(id);
      world_.kill(id);
      world_.spawn(type == net::NatType::Public ? net::NatConfig::open()
                                                : net::NatConfig::natted());
      ++stats_.replaced;
    }
  }

  if (running_) {
    pending_ = world_.simulator().schedule_after(period_, [this] { tick(); });
  }
}

// ---------------------------------------------------------------- natflap

NatFlapProcess::NatFlapProcess(World& world, double fraction,
                               sim::Duration period)
    : ScenarioProcess(world), fraction_(fraction), period_(period) {
  CROUPIER_ASSERT(fraction_ > 0.0 && fraction_ <= 1.0);
  CROUPIER_ASSERT(period_ > 0);
}

void NatFlapProcess::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  pending_ = world_.simulator().schedule_at(at, [this] { tick(); });
}

void NatFlapProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != sim::kInvalidEventId) {
    world_.simulator().cancel(pending_);
    pending_ = sim::kInvalidEventId;
  }
  // Flapped nodes keep their flipped class until the next "back" phase
  // of a restarted process — a stopped attack does not undo itself.
}

void NatFlapProcess::tick() {
  pending_ = sim::kInvalidEventId;
  if (!running_) return;

  if (out_phase_) {
    const auto targets = static_cast<std::size_t>(std::floor(
        fraction_ * static_cast<double>(world_.alive_count())));
    const auto victims =
        world_.scenario_rng().sample(
            std::span<const net::NodeId>(world_.alive_ids()), targets);
    for (const net::NodeId id : victims) {
      const net::NatConfig orig = world_.nat_config_of(id);
      flapped_.emplace_back(id, orig);
      world_.reclassify(id, orig.nat_type() == net::NatType::Public
                                ? net::NatConfig::natted()
                                : net::NatConfig::open());
      ++stats_.reclassified;
    }
  } else {
    for (const auto& [id, orig] : flapped_) {
      if (!world_.alive(id)) continue;  // churn/failure got it meanwhile
      world_.reclassify(id, orig);
      ++stats_.reclassified;
    }
    flapped_.clear();
  }
  out_phase_ = !out_phase_;

  if (running_) {
    pending_ = world_.simulator().schedule_after(period_, [this] { tick(); });
  }
}

}  // namespace croupier::run
