#include "runtime/registry.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>

#include "runtime/factories.hpp"

namespace croupier::run {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument(message);
}

/// Consumes recognized keys from a ProtocolOptions map and converts their
/// values; finish() rejects anything left over, so a typoed key is an
/// error instead of a silently ignored default.
class OptionReader {
 public:
  OptionReader(std::string protocol, const ProtocolOptions& opts)
      : protocol_(std::move(protocol)), opts_(opts) {}

  void size(const char* key, std::size_t& out) {
    if (const auto* v = take(key)) out = static_cast<std::size_t>(u64(key, *v));
  }

  void u8(const char* key, std::uint8_t& out) {
    if (const auto* v = take(key)) {
      const std::uint64_t n = u64(key, *v);
      if (n > 0xff) bad_value(key, *v);
      out = static_cast<std::uint8_t>(n);
    }
  }

  /// Enumerated option: `choices` maps accepted spellings to values.
  template <typename E>
  void choice(const char* key, E& out,
              std::initializer_list<std::pair<const char*, E>> choices) {
    const auto* v = take(key);
    if (v == nullptr) return;
    for (const auto& [name, value] : choices) {
      if (*v == name) {
        out = value;
        return;
      }
    }
    std::ostringstream msg;
    msg << "protocol '" << protocol_ << "': option '" << key
        << "' must be one of {";
    const char* sep = "";
    for (const auto& [name, value] : choices) {
      msg << sep << name;
      sep = ", ";
    }
    msg << "}, got \"" << *v << "\"";
    fail(msg.str());
  }

  /// The options every protocol's base PssConfig accepts. The gossip
  /// round period is a World::Config knob (the runtime drives rounds),
  /// so it is deliberately not offered here.
  void base(pss::PssConfig& cfg) {
    size("view", cfg.view_size);
    size("shuffle", cfg.shuffle_size);
    size("fanout", cfg.bootstrap_fanout);
    choice("merge", cfg.merge,
           {{"swapper", pss::MergePolicy::Swapper},
            {"healer", pss::MergePolicy::Healer}});
    if (cfg.view_size == 0) {
      fail("protocol '" + protocol_ + "': view must be >= 1");
    }
    if (cfg.shuffle_size == 0) {
      fail("protocol '" + protocol_ + "': shuffle must be >= 1");
    }
  }

  void finish() const {
    for (const auto& [key, value] : opts_) {
      if (!seen_.contains(key)) {
        fail("protocol '" + protocol_ + "': unknown option '" + key +
             "' (see ProtocolRegistry::options_help)");
      }
    }
  }

 private:
  const std::string* take(const char* key) {
    const auto it = opts_.find(key);
    if (it == opts_.end()) return nullptr;
    seen_.insert(key);
    return &it->second;
  }

  std::uint64_t u64(const char* key, const std::string& text) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
        end != text.c_str() + text.size() || errno == ERANGE) {
      bad_value(key, text);
    }
    return v;
  }

  [[noreturn]] void bad_value(const char* key, const std::string& text) {
    fail("protocol '" + protocol_ + "': malformed value for option '" + key +
         "': \"" + text + "\"");
  }

  std::string protocol_;
  const ProtocolOptions& opts_;
  std::set<std::string> seen_;
};

}  // namespace

core::CroupierConfig make_croupier_config(const ProtocolOptions& opts) {
  core::CroupierConfig cfg;
  OptionReader r("croupier", opts);
  r.base(cfg.base);
  r.size("alpha", cfg.estimator.local_history);
  r.size("gamma", cfg.estimator.neighbour_history);
  r.size("share_limit", cfg.estimator.share_limit);
  r.size("min_slots", cfg.min_view_slots);
  r.choice("sizing", cfg.sizing,
           {{"fixed", core::ViewSizing::FixedPerView},
            {"proportional", core::ViewSizing::RatioProportional}});
  r.finish();
  return cfg;
}

pss::PssConfig make_cyclon_config(const ProtocolOptions& opts) {
  pss::PssConfig cfg;
  OptionReader r("cyclon", opts);
  r.base(cfg);
  r.finish();
  return cfg;
}

baselines::GozarConfig make_gozar_config(const ProtocolOptions& opts) {
  baselines::GozarConfig cfg;
  OptionReader r("gozar", opts);
  r.base(cfg.base);
  r.size("parents", cfg.num_parents);
  r.size("keepalive", cfg.keepalive_rounds);
  r.size("parent_timeout", cfg.parent_timeout_rounds);
  r.size("redundancy", cfg.relay_redundancy);
  r.finish();
  return cfg;
}

baselines::NylonConfig make_nylon_config(const ProtocolOptions& opts) {
  baselines::NylonConfig cfg;
  OptionReader r("nylon", opts);
  r.base(cfg.base);
  r.size("rvp_links", cfg.max_rvp_links);
  r.size("keepalive", cfg.keepalive_rounds);
  r.size("rvp_ttl", cfg.rvp_ttl_rounds);
  r.u8("punch_hops", cfg.max_punch_hops);
  r.size("routing_table", cfg.routing_table_size);
  r.size("routing_ttl", cfg.routing_ttl_rounds);
  r.finish();
  return cfg;
}

baselines::ArrgConfig make_arrg_config(const ProtocolOptions& opts) {
  baselines::ArrgConfig cfg;
  OptionReader r("arrg", opts);
  r.base(cfg.base);
  r.size("open_list", cfg.open_list_size);
  r.finish();
  return cfg;
}

ProtocolRegistry::ProtocolRegistry() {
  entries_["croupier"] = {
      [](const ProtocolOptions& o) {
        return make_croupier_factory(make_croupier_config(o));
      },
      "view shuffle fanout merge=swapper|healer alpha gamma share_limit "
      "sizing=fixed|proportional min_slots"};
  entries_["cyclon"] = {
      [](const ProtocolOptions& o) {
        return make_cyclon_factory(make_cyclon_config(o));
      },
      "view shuffle fanout merge=swapper|healer"};
  entries_["gozar"] = {
      [](const ProtocolOptions& o) {
        return make_gozar_factory(make_gozar_config(o));
      },
      "view shuffle fanout merge=swapper|healer parents keepalive "
      "parent_timeout redundancy"};
  entries_["nylon"] = {
      [](const ProtocolOptions& o) {
        return make_nylon_factory(make_nylon_config(o));
      },
      "view shuffle fanout merge=swapper|healer rvp_links keepalive rvp_ttl "
      "punch_hops routing_table routing_ttl"};
  entries_["arrg"] = {
      [](const ProtocolOptions& o) {
        return make_arrg_factory(make_arrg_config(o));
      },
      "view shuffle fanout merge=swapper|healer open_list"};
}

const ProtocolRegistry& ProtocolRegistry::instance() {
  static const ProtocolRegistry registry;
  return registry;
}

std::vector<std::string> ProtocolRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

bool ProtocolRegistry::contains(const std::string& name) const {
  return entries_.contains(name);
}

ProtocolFactory ProtocolRegistry::make(const std::string& name,
                                       const ProtocolOptions& opts) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::ostringstream msg;
    msg << "unknown protocol \"" << name << "\"; known protocols:";
    for (const auto& [known, entry] : entries_) msg << ' ' << known;
    fail(msg.str());
  }
  return it->second.build(opts);
}

ProtocolFactory ProtocolRegistry::make_from_spec(
    const std::string& spec) const {
  const auto [name, opts] = parse_spec(spec);
  return make(name, opts);
}

std::pair<std::string, ProtocolOptions> ProtocolRegistry::parse_spec(
    const std::string& spec) {
  const auto colon = spec.find(':');
  std::string name = spec.substr(0, colon);
  if (name.empty()) {
    fail("protocol spec \"" + spec + "\": empty protocol name");
  }
  ProtocolOptions opts;
  if (colon == std::string::npos) return {std::move(name), std::move(opts)};

  // "k=v,k=v,..." after the colon; every element must carry an '='.
  std::string rest = spec.substr(colon + 1);
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    const std::size_t comma = rest.find(',', pos);
    const std::string item =
        rest.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const std::size_t eq = item.find('=');
    if (eq == 0 || eq == std::string::npos) {
      fail("protocol spec \"" + spec + "\": expected key=value, got \"" +
           item + "\"");
    }
    opts[item.substr(0, eq)] = item.substr(eq + 1);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return {std::move(name), std::move(opts)};
}

const std::string& ProtocolRegistry::options_help(
    const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    fail("unknown protocol \"" + name + "\"");
  }
  return it->second.help;
}

}  // namespace croupier::run
