#include "runtime/recorder.hpp"

#include <fstream>

#include "common/assert.hpp"

namespace croupier::run {

bool EstimationRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_seconds,avg_error,max_error,truth,nodes\n";
  for (const auto& p : series_) {
    out << p.t_seconds << ',' << p.sample.avg_error << ','
        << p.sample.max_error << ',' << p.sample.truth << ','
        << p.sample.node_count << '\n';
  }
  return static_cast<bool>(out);
}

bool GraphStatsRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_seconds,avg_path_length,clustering,unreachable,nodes,edges\n";
  for (const auto& p : series_) {
    out << p.t_seconds << ',' << p.avg_path_length << ','
        << p.clustering_coefficient << ',' << p.unreachable_fraction << ','
        << p.nodes << ',' << p.edges << '\n';
  }
  return static_cast<bool>(out);
}

EstimationRecorder::EstimationRecorder(World& world, Options opt)
    : world_(world), opt_(opt) {
  CROUPIER_ASSERT(opt_.interval > 0);
}

void EstimationRecorder::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  world_.simulator().schedule_at(at, [this] { tick(); });
}

void EstimationRecorder::tick() {
  if (!running_) return;
  const auto estimates = world_.ratio_estimates(opt_.min_rounds);
  metrics::ErrorPoint point;
  point.t_seconds = sim::to_seconds(world_.simulator().now());
  point.sample = metrics::estimation_errors(estimates, world_.true_ratio());
  series_.push_back(point);
  world_.simulator().schedule_after(opt_.interval, [this] { tick(); });
}

GraphStatsRecorder::GraphStatsRecorder(World& world, Options opt)
    : world_(world), opt_(opt), rng_(world.scenario_rng().fork(0x6EA9)) {
  CROUPIER_ASSERT(opt_.interval > 0);
}

void GraphStatsRecorder::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  world_.simulator().schedule_at(at, [this] { tick(); });
}

void GraphStatsRecorder::tick() {
  if (!running_) return;
  const auto graph = world_.snapshot_overlay();
  GraphStatsPoint point;
  point.t_seconds = sim::to_seconds(world_.simulator().now());
  point.nodes = graph.node_count();
  point.edges = graph.edge_count();
  point.avg_path_length = graph.avg_path_length(
      rng_, opt_.path_length_sources, &point.unreachable_fraction);
  point.clustering_coefficient = graph.avg_clustering_coefficient();
  series_.push_back(point);
  world_.simulator().schedule_after(opt_.interval, [this] { tick(); });
}

SampledGraphStatsRecorder::SampledGraphStatsRecorder(World& world,
                                                     Options opt)
    : world_(world),
      opt_(opt),
      rng_(world.scenario_rng().fork(0x6EAB)),
      estimator_(opt.estimator) {
  CROUPIER_ASSERT(opt_.interval > 0);
}

void SampledGraphStatsRecorder::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  kill_epoch_ = world_.kill_count();
  world_.simulator().schedule_at(at, [this] { tick(); });
}

void SampledGraphStatsRecorder::tick() {
  if (!running_) return;
  if (world_.kill_count() != kill_epoch_) {
    kill_epoch_ = world_.kill_count();
    estimator_.reset_accumulators();
  }

  const auto neighbors = [this](net::NodeId id,
                                std::vector<net::NodeId>& out) {
    const auto* s = world_.sampler(id);
    if (s == nullptr) return false;
    out = s->out_neighbors();
    return true;
  };
  const auto is_vertex = [this](net::NodeId id) {
    return world_.sampler(id) != nullptr;
  };

  Point point = estimator_.tick(
      std::span<const net::NodeId>(world_.alive_ids()),
      world_.gossiping_count(), neighbors, is_vertex, rng_);
  point.t_seconds = sim::to_seconds(world_.simulator().now());
  series_.push_back(point);
  world_.simulator().schedule_after(opt_.interval, [this] { tick(); });
}

bool SampledGraphStatsRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_seconds,avg_path_length,clustering,unreachable,in_degree_cv,"
         "largest_component,component_nodes,nodes,edge_samples,path_pairs\n";
  for (const auto& p : series_) {
    out << p.t_seconds << ',' << p.avg_path_length << ','
        << p.clustering_coefficient << ',' << p.unreachable_fraction << ','
        << p.in_degree_cv << ',' << p.largest_component_fraction << ','
        << p.component_nodes << ',' << p.population << ',' << p.edge_samples
        << ',' << p.path_pairs << '\n';
  }
  return static_cast<bool>(out);
}

RandomnessAuditRecorder::RandomnessAuditRecorder(World& world, Options opt)
    : world_(world), opt_(opt) {
  CROUPIER_ASSERT(opt_.interval > 0);
}

void RandomnessAuditRecorder::start(sim::SimTime at) {
  CROUPIER_ASSERT(!running_);
  running_ = true;
  world_.simulator().schedule_at(at, [this] { tick(); });
}

void RandomnessAuditRecorder::tick() {
  if (!running_) return;
  metrics::RandomnessAuditor::Adjacency adjacency;
  adjacency.reserve(world_.gossiping_count());
  for (const net::NodeId id : world_.sorted_ids()) {
    const auto* s = world_.sampler(id);
    if (s == nullptr) continue;
    adjacency.emplace_back(id, s->out_neighbors());
  }
  auto point = auditor_.observe(adjacency, world_.class_map(),
                                world_.true_ratio(),
                                sim::to_seconds(world_.simulator().now()));
  series_.push_back(point);
  world_.simulator().schedule_after(opt_.interval, [this] { tick(); });
}

bool RandomnessAuditRecorder::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_seconds,chi2,chi2_z,repeat_observed,repeat_expected,"
         "repeat_ratio,public_fraction,public_expected,bias_ratio,nodes,"
         "edges\n";
  for (const auto& p : series_) {
    out << p.t_seconds << ',' << p.chi2 << ',' << p.chi2_z << ','
        << p.repeat_observed << ',' << p.repeat_expected << ','
        << p.repeat_ratio << ',' << p.public_fraction << ','
        << p.public_expected << ',' << p.bias_ratio << ',' << p.nodes << ','
        << p.edges_observed << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace croupier::run
