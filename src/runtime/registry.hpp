// ProtocolRegistry: string-keyed protocol construction.
//
// The public entry point for building a World's ProtocolFactory. Every
// PSS implementation is registered under a stable name ("croupier",
// "cyclon", "gozar", "nylon", "arrg") and can be instantiated from a
// textual spec with per-protocol `key=value` overrides on top of the
// paper-default configuration:
//
//   auto factory = run::ProtocolRegistry::instance()
//                      .make_from_spec("croupier:alpha=25,gamma=50");
//   run::World world(cfg, factory);
//
// This is what makes experiments *data*: a protocol choice is a string a
// bench flag, an ExperimentSpec field, or a config file can carry, not a
// hand-wired make_*_factory call. Errors (unknown protocol, unknown
// option, malformed value) throw std::invalid_argument with a message
// naming the offender and the accepted alternatives.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "baselines/arrg.hpp"
#include "baselines/cyclon.hpp"
#include "baselines/gozar.hpp"
#include "baselines/nylon.hpp"
#include "core/croupier.hpp"
#include "runtime/world.hpp"

namespace croupier::run {

/// Parsed `key=value` overrides for one protocol instantiation. Ordered
/// so error messages and help output are deterministic.
using ProtocolOptions = std::map<std::string, std::string>;

/// Typed config builders: paper defaults with `opts` applied. Exposed so
/// tests and advanced callers can inspect or further tweak a parsed
/// config before wrapping it in a factory. All throw std::invalid_argument
/// on unknown keys or malformed values.
///
/// Options shared by every protocol: view, shuffle, fanout,
/// merge=swapper|healer.
[[nodiscard]] core::CroupierConfig make_croupier_config(
    const ProtocolOptions& opts);  // + alpha, gamma, share_limit,
                                   //   sizing=fixed|proportional, min_slots
[[nodiscard]] pss::PssConfig make_cyclon_config(const ProtocolOptions& opts);
[[nodiscard]] baselines::GozarConfig make_gozar_config(
    const ProtocolOptions& opts);  // + parents, keepalive, parent_timeout,
                                   //   redundancy
[[nodiscard]] baselines::NylonConfig make_nylon_config(
    const ProtocolOptions& opts);  // + rvp_links, keepalive, rvp_ttl,
                                   //   punch_hops, routing_table, routing_ttl
[[nodiscard]] baselines::ArrgConfig make_arrg_config(
    const ProtocolOptions& opts);  // + open_list

class ProtocolRegistry {
 public:
  /// The process-wide registry of the five built-in protocols.
  static const ProtocolRegistry& instance();

  /// Registered protocol names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Factory for `name` with `opts` applied over the paper defaults.
  [[nodiscard]] ProtocolFactory make(const std::string& name,
                                     const ProtocolOptions& opts = {}) const;

  /// Factory from a full spec string: `name` or `name:k=v,k=v,...`, e.g.
  /// "croupier:alpha=25,gamma=50".
  [[nodiscard]] ProtocolFactory make_from_spec(const std::string& spec) const;

  /// Splits a spec string into (name, options). Validates syntax only —
  /// the name and keys are checked when the factory is built.
  static std::pair<std::string, ProtocolOptions> parse_spec(
      const std::string& spec);

  /// One-line `key=value` reference for the protocol's options (for
  /// --help output). Throws on unknown name.
  [[nodiscard]] const std::string& options_help(const std::string& name) const;

 private:
  ProtocolRegistry();

  struct Entry {
    std::function<ProtocolFactory(const ProtocolOptions&)> build;
    std::string help;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace croupier::run
