// ExperimentSpec: one experiment as a value.
//
// Everything the figure benches used to hand-roll — population size and
// public/private ratio, join process, churn, catastrophic failure,
// message loss, clock skew, latency model, duration, and what to record —
// lives in one serializable struct. A spec plus a seed fully determines a
// run: `Experiment(spec, seed)` builds the World through the
// ProtocolRegistry, schedules every scenario process, attaches the
// requested recorder, and `run()` plays it out.
//
// Specs round-trip through text (`parse` / `to_string`), so an experiment
// can be carried in a CLI flag, a file, or a CSV column:
//
//   protocol=croupier:alpha=25,gamma=50 nodes=1000 ratio=0.2 churn=0.01
//   duration=250
//
// The format is whitespace-separated `key=value` tokens; to_string emits
// the canonical minimal form (defaults omitted, fixed key order), and
// parse(to_string(s)) == s for every valid spec.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/recorder.hpp"
#include "runtime/scenario.hpp"
#include "runtime/world.hpp"

namespace croupier::run {

struct ExperimentSpec {
  enum class JoinKind : std::uint8_t {
    Poisson,  // exponential inter-arrival (the paper's join model)
    Fixed,    // fixed inter-arrival
    Instant,  // all nodes spawn before t=0 events run
  };
  enum class RecordKind : std::uint8_t { None, Estimation, Graph,
                                         GraphSampled, Randomness };
  /// How a correlated failure picks its victims (see
  /// CorrelatedFailureProcess).
  using FailureCorr = CorrelatedFailureProcess::Corr;

  /// Message-loss conditions: one rate per (sender class, receiver
  /// class) pair, optionally activating only after `after_s`. The
  /// scalar form `loss=0.1` (and the implicit constructor) is uniform
  /// loss from t=0 — the paper's model, byte-identical to the historic
  /// scalar field. Rates live in [0, 1): a rate of 1 would have crashed
  /// the Network's assert mid-trial, so validate() rejects it up front.
  struct LossSpec {
    double pub_pub = 0.0;
    double pub_priv = 0.0;
    double priv_pub = 0.0;
    double priv_priv = 0.0;
    double after_s = 0.0;

    LossSpec() = default;
    LossSpec(double p)  // NOLINT(google-explicit-constructor)
        : pub_pub(p), pub_priv(p), priv_pub(p), priv_priv(p) {}

    /// The net-layer form (rates into the matrix, seconds to SimTime) —
    /// the one place the two representations are mapped.
    [[nodiscard]] net::LossConfig to_config() const;

    [[nodiscard]] bool lossless() const { return to_config().lossless(); }
    [[nodiscard]] bool is_uniform() const {
      return to_config().is_uniform();
    }
    friend bool operator==(const LossSpec&, const LossSpec&) = default;
  };

  /// ProtocolRegistry spec, options included ("croupier:alpha=25,gamma=50").
  std::string protocol = "croupier";

  // Population: `nodes` total, `ratio` of them public (ω). The public
  // count is round-half-up of ratio*nodes, matching the benches' historic
  // n/5-style arithmetic at every paper operating point.
  std::size_t nodes = 1000;
  double ratio = 0.2;

  // Join process (public and private nodes as two parallel processes).
  JoinKind join = JoinKind::Poisson;
  double join_public_ms = 50.0;   // poisson mean / fixed interval
  double join_private_ms = 13.0;

  // Optional second join wave (fig. 2's ratio step): extra nodes at a
  // fixed interval starting at step_at_s.
  std::size_t step_publics = 0;
  std::size_t step_privates = 0;
  double step_at_s = 0.0;
  double step_every_ms = 42.0;

  // Flash crowd: an extra join surge with a triangular (ramp-up,
  // ramp-down) rate profile inside a window of flash_over_s seconds
  // starting at flash_at_s.
  std::size_t flash_publics = 0;
  std::size_t flash_privates = 0;
  double flash_at_s = 60.0;
  double flash_over_s = 10.0;

  // Continuous churn (fraction of each class replaced per round).
  double churn = 0.0;
  double churn_at_s = 61.0;

  // Catastrophic failure (fraction of all nodes crashing at one instant).
  double catastrophe = 0.0;
  double catastrophe_at_s = 60.0;

  // Correlated failure: a fraction of the system crashing at one
  // instant as a structured cohort (latency region / NAT class) rather
  // than a uniform sample.
  double failure_frac = 0.0;
  double failure_at_s = 60.0;
  FailureCorr failure_corr = FailureCorr::Region;

  // Eclipse attack: every eclipse period, each node the target currently
  // points at is crashed and replaced by a fresh node of the same class
  // (EclipseProcess). 0 = off; node ids start at 1, and validate()
  // rejects targets outside the initial population.
  std::size_t eclipse_target = 0;
  double eclipse_at_s = 60.0;
  double eclipse_period_s = 1.0;

  // Oscillating NAT reclassification (NatFlapProcess): every period
  // alternates between flipping floor(frac * alive) nodes' NAT class in
  // place and restoring them.
  double natflap_frac = 0.0;
  double natflap_at_s = 60.0;
  double natflap_period_s = 10.0;

  // Hub-forming adversary: the first `hubs` public spawns run the
  // self-promoting HubSampler shim instead of the honest protocol.
  std::size_t adversary_hubs = 0;

  // Network conditions.
  LossSpec loss;

  // Packet layer (net/packet). mtu=0 (default) = whole messages ride
  // single datagrams, the historic byte-identical model; a positive mtu
  // fragments larger messages, `fec` appends rateless repair fragments,
  // and `bandwidth` meters each sender through a token bucket whose
  // queueing delay inflates delivery latency.
  std::size_t mtu = 0;               // bytes per datagram payload; 0 = off
  std::uint64_t bandwidth_bps = 0;   // bytes/second per node; 0 = uncapped
  std::uint64_t bandwidth_burst = 0;  // bucket depth bytes; 0 = 1 s of rate
  std::uint32_t fec_repair = 0;      // fixed repair fragments per message
  double fec_rate = 0.0;             // + ceil(rate * k) proportional repairs

  double skew = 0.01;                // World::Config::clock_skew
  double private_round_scale = 1.0;  // ablation_skew's adversarial bias
  World::LatencyKind latency = World::LatencyKind::King;
  double latency_ms = 50.0;          // constant-latency model only
  double round_ms = 1000.0;          // gossip round period
  bool natid = false;                // joiners run the NAT-ID protocol

  // Horizon and recording.
  double duration_s = 200.0;
  RecordKind record = RecordKind::Estimation;
  double record_every_s = 0.0;  // 0 = kind default (1 s est., 10 s graph)

  [[nodiscard]] std::size_t publics() const;
  [[nodiscard]] std::size_t privates() const { return nodes - publics(); }
  [[nodiscard]] sim::Duration duration() const;

  /// The net-layer form of the mtu/bandwidth/fec fields.
  [[nodiscard]] net::PacketConfig packet_config() const;

  /// Throws std::invalid_argument on out-of-range fields (ratio outside
  /// [0,1], churn outside [0,1), zero nodes, non-positive duration, ...).
  void validate() const;

  /// Canonical textual form; defaults omitted except the identifying
  /// quartet protocol/nodes/ratio/duration.
  [[nodiscard]] std::string to_string() const;

  /// Parses the `key=value ...` form. Throws std::invalid_argument on
  /// unknown keys, malformed values, or a spec that fails validate().
  static ExperimentSpec parse(const std::string& text);

  friend bool operator==(const ExperimentSpec&,
                         const ExperimentSpec&) = default;
};

/// Fluent construction for C++ call sites (benches, examples, tests):
///
///   auto spec = SpecBuilder()
///                   .protocol("croupier:alpha=25,gamma=50")
///                   .nodes(1000).ratio(0.2)
///                   .churn(0.01)
///                   .duration(250)
///                   .build();
///
/// build() validates and returns the value.
class SpecBuilder {
 public:
  SpecBuilder& protocol(std::string spec);
  SpecBuilder& nodes(std::size_t n);
  SpecBuilder& ratio(double omega);
  SpecBuilder& poisson_joins(double public_ms, double private_ms);
  SpecBuilder& fixed_joins(double public_ms, double private_ms);
  SpecBuilder& instant_joins();
  SpecBuilder& join_step(std::size_t publics, std::size_t privates,
                         double at_s, double every_ms);
  SpecBuilder& flash_crowd(std::size_t publics, std::size_t privates,
                           double at_s, double over_s = 10.0);
  SpecBuilder& churn(double fraction, double at_s = 61.0);
  SpecBuilder& catastrophe(double fraction, double at_s);
  SpecBuilder& correlated_failure(
      double fraction, double at_s,
      ExperimentSpec::FailureCorr corr = ExperimentSpec::FailureCorr::Region);
  SpecBuilder& eclipse(std::size_t target, double at_s = 60.0,
                       double period_s = 1.0);
  SpecBuilder& natflap(double fraction, double at_s = 60.0,
                       double period_s = 10.0);
  SpecBuilder& adversary_hubs(std::size_t hubs);
  SpecBuilder& loss(const ExperimentSpec::LossSpec& loss);
  SpecBuilder& mtu(std::size_t bytes);
  SpecBuilder& bandwidth(std::uint64_t bytes_per_s,
                         std::uint64_t burst_bytes = 0);
  SpecBuilder& fec(std::uint32_t repair, double rate = 0.0);
  SpecBuilder& skew(double fraction);
  SpecBuilder& private_round_scale(double scale);
  SpecBuilder& king_latency();
  SpecBuilder& constant_latency(double ms);
  SpecBuilder& coordinate_latency();
  SpecBuilder& round_period(double ms);
  SpecBuilder& natid(bool enabled = true);
  SpecBuilder& duration(double seconds);
  SpecBuilder& record_estimation(double every_s = 0.0);
  SpecBuilder& record_graph(double every_s = 0.0);
  SpecBuilder& record_graph_sampled(double every_s = 0.0);
  SpecBuilder& record_randomness(double every_s = 0.0);
  SpecBuilder& record_nothing();

  /// Validates and returns the spec (throws std::invalid_argument).
  [[nodiscard]] ExperimentSpec build() const;

 private:
  ExperimentSpec spec_;
};

/// One materialized run of a spec: owns the World, the scenario pipeline
/// (every membership dynamic of the spec as a ScenarioProcess), and the
/// requested recorder. Construction schedules everything; run() plays
/// the full horizon, or drive the simulator in slices with run_until()
/// for mid-run measurements (overhead windows, meter resets).
class Experiment {
 public:
  /// `world_jobs` picks the engine inside the single World (1 =
  /// sequential, N = round-synchronous parallel); it is a harness knob,
  /// not part of the experiment's identity — results are byte-identical
  /// for every value.
  Experiment(const ExperimentSpec& spec, std::uint64_t seed,
             std::size_t world_jobs = 1);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  [[nodiscard]] const ExperimentSpec& spec() const { return spec_; }
  [[nodiscard]] World& world() { return *world_; }

  /// The scheduled scenario processes, in scheduling order (joins, step
  /// wave, flash crowd, churn, catastrophe, correlated failure).
  [[nodiscard]] const std::vector<std::unique_ptr<ScenarioProcess>>&
  scenario() const {
    return scenario_;
  }

  /// Pipeline-wide totals (nodes spawned/killed/replaced by scenario
  /// processes — joins included).
  [[nodiscard]] ScenarioProcess::Stats scenario_stats() const;

  void run() { run_until(spec_.duration()); }
  void run_until(sim::SimTime t) { world_->run_until(t); }

  /// Recorder for the spec's RecordKind; nullptr when not requested.
  [[nodiscard]] const EstimationRecorder* estimation() const {
    return estimation_.get();
  }
  [[nodiscard]] const GraphStatsRecorder* graph_stats() const {
    return graph_stats_.get();
  }
  [[nodiscard]] const SampledGraphStatsRecorder* graph_sampled() const {
    return graph_sampled_.get();
  }
  [[nodiscard]] const RandomnessAuditRecorder* randomness() const {
    return randomness_.get();
  }

 private:
  ExperimentSpec spec_;
  std::unique_ptr<World> world_;
  // Declared after world_ so the pipeline is destroyed first: processes
  // may cancel their pending events, which needs the simulator alive.
  std::vector<std::unique_ptr<ScenarioProcess>> scenario_;
  std::unique_ptr<EstimationRecorder> estimation_;
  std::unique_ptr<GraphStatsRecorder> graph_stats_;
  std::unique_ptr<SampledGraphStatsRecorder> graph_sampled_;
  std::unique_ptr<RandomnessAuditRecorder> randomness_;
};

}  // namespace croupier::run
