// Periodic metric recorders driven by the simulation clock.
//
// EstimationRecorder samples the estimation error series of figures 1-5;
// GraphStatsRecorder samples the randomness series of figure 6(b)/(c).
// Both follow the paper's measurement hygiene: nodes that have executed
// fewer than two gossip rounds are excluded ("giving them enough time to
// initialize their estimates").
//
// SampledGraphStatsRecorder is the million-node variant of
// GraphStatsRecorder: instead of materializing the full overlay every
// tick it runs the O(sample) streaming estimators (metrics/streaming)
// against the implicit graph. Selected with record=graph-sampled.
#pragma once

#include <string>
#include <vector>

#include "metrics/estimation.hpp"
#include "metrics/randomness.hpp"
#include "metrics/streaming.hpp"
#include "runtime/world.hpp"

namespace croupier::run {

struct EstimationRecorderOptions {
  sim::Duration interval = sim::sec(1);
  std::uint64_t min_rounds = 2;
};

class EstimationRecorder {
 public:
  using Options = EstimationRecorderOptions;

  EstimationRecorder(World& world, Options opt = {});

  /// Starts sampling at `at` and every `interval` thereafter (while the
  /// simulation keeps running).
  void start(sim::SimTime at);
  void stop() { running_ = false; }

  [[nodiscard]] const metrics::ErrorSeries& series() const { return series_; }

  /// The last recorded point (empty-series safe: returns zeros).
  [[nodiscard]] metrics::ErrorPoint latest() const {
    return series_.empty() ? metrics::ErrorPoint{} : series_.back();
  }

  /// Dumps the series as CSV (t_seconds,avg_error,max_error,truth,nodes).
  /// Returns false if the file could not be written.
  bool write_csv(const std::string& path) const;

 private:
  void tick();

  World& world_;
  Options opt_;
  bool running_ = false;
  metrics::ErrorSeries series_;
};

/// One timestamped snapshot of overlay randomness metrics.
struct GraphStatsPoint {
  double t_seconds = 0.0;
  double avg_path_length = 0.0;
  double clustering_coefficient = 0.0;
  double unreachable_fraction = 0.0;
  std::size_t nodes = 0;
  std::size_t edges = 0;
};

struct GraphStatsRecorderOptions {
  sim::Duration interval = sim::sec(10);
  /// BFS sources for path length (0 = exact all-pairs).
  std::size_t path_length_sources = 128;
};

class GraphStatsRecorder {
 public:
  using Options = GraphStatsRecorderOptions;

  GraphStatsRecorder(World& world, Options opt = {});

  void start(sim::SimTime at);
  void stop() { running_ = false; }

  [[nodiscard]] const std::vector<GraphStatsPoint>& series() const {
    return series_;
  }

  /// Dumps the series as CSV
  /// (t_seconds,avg_path_length,clustering,unreachable,nodes,edges).
  bool write_csv(const std::string& path) const;

 private:
  void tick();

  World& world_;
  Options opt_;
  bool running_ = false;
  sim::RngStream rng_;
  std::vector<GraphStatsPoint> series_;
};

struct SampledGraphStatsRecorderOptions {
  sim::Duration interval = sim::sec(10);
  metrics::StreamingGraphConfig estimator;
};

/// Periodic O(sample) overlay-randomness sampling for worlds too large
/// to snapshot. Cross-tick accumulators (in-degree hits, component
/// tracking) reset automatically when nodes die — the observations
/// describe a graph that no longer exists.
class SampledGraphStatsRecorder {
 public:
  using Options = SampledGraphStatsRecorderOptions;
  using Point = metrics::StreamingGraphStats;

  SampledGraphStatsRecorder(World& world, Options opt = {});

  void start(sim::SimTime at);
  void stop() { running_ = false; }

  [[nodiscard]] const std::vector<Point>& series() const { return series_; }

  /// The last recorded point (empty-series safe: returns zeros).
  [[nodiscard]] Point latest() const {
    return series_.empty() ? Point{} : series_.back();
  }

  /// Dumps the series as CSV (t_seconds,avg_path_length,clustering,
  /// unreachable,in_degree_cv,largest_component,component_nodes,nodes,
  /// edge_samples,path_pairs).
  bool write_csv(const std::string& path) const;

 private:
  void tick();

  World& world_;
  Options opt_;
  bool running_ = false;
  sim::RngStream rng_;
  metrics::StreamingGraphEstimator estimator_;
  std::uint64_t kill_epoch_ = 0;
  std::vector<Point> series_;
};

struct RandomnessRecorderOptions {
  sim::Duration interval = sim::sec(10);
};

/// Periodic statistical randomness audit (record=randomness): feeds the
/// live overlay snapshot to a metrics::RandomnessAuditor and records the
/// chi-square / lag-1 / class-bias point per tick. Draws no randomness
/// itself — the estimators are closed-form over the snapshot — so the
/// series is a pure function of the overlay trajectory. Departed nodes
/// are pruned by the auditor, not by epoch reset: under the eclipse and
/// churn scenarios the *surviving* population's accumulated skew is
/// exactly the signal.
class RandomnessAuditRecorder {
 public:
  using Options = RandomnessRecorderOptions;

  RandomnessAuditRecorder(World& world, Options opt = {});

  void start(sim::SimTime at);
  void stop() { running_ = false; }

  [[nodiscard]] const std::vector<metrics::RandomnessPoint>& series() const {
    return series_;
  }

  /// The last recorded point (empty-series safe: returns zeros).
  [[nodiscard]] metrics::RandomnessPoint latest() const {
    return series_.empty() ? metrics::RandomnessPoint{} : series_.back();
  }

  /// Dumps the series as CSV (t_seconds,chi2,chi2_z,repeat_observed,
  /// repeat_expected,repeat_ratio,public_fraction,public_expected,
  /// bias_ratio,nodes,edges).
  bool write_csv(const std::string& path) const;

 private:
  void tick();

  World& world_;
  Options opt_;
  bool running_ = false;
  metrics::RandomnessAuditor auditor_;
  std::vector<metrics::RandomnessPoint> series_;
};

}  // namespace croupier::run
