#include "runtime/world.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "net/latency.hpp"
#include "sim/conflict.hpp"

namespace croupier::run {

struct World::NodeRuntime final : net::MessageHandler {
  World* world = nullptr;
  net::NodeId id = net::kNilNode;
  net::NatConfig nat_cfg;
  net::NatType identified = net::NatType::Private;
  bool pss_started = false;
  std::uint64_t rounds = 0;
  double period_scale = 1.0;
  /// Bumped by reclassify(): pending round events from the previous
  /// protocol instance carry the old epoch and become no-ops, so a node
  /// never gossips on two round chains at once.
  std::uint32_t round_epoch = 0;
  sim::RngStream rng;  // per-node stream; forked for sub-components

  std::unique_ptr<natid::NatIdClient> natid_client;
  std::unique_ptr<natid::NatIdResponder> natid_responder;
  std::unique_ptr<pss::PeerSampler> pss;
  net::MessageHandler* app = nullptr;  // application layer (tags >= 0x80)

  void on_message(net::NodeId from, const net::Message& msg) override {
    if (natid::is_natid_message(msg.type())) {
      if (natid_client != nullptr && !natid_client->finished() &&
          natid_client->on_message(from, msg)) {
        return;
      }
      if (natid_responder != nullptr) {
        natid_responder->on_message(from, msg);
      }
      return;
    }
    if (msg.type() >= 0x80) {
      if (app != nullptr) app->on_message(from, msg);
      return;
    }
    if (pss != nullptr) pss->on_message(from, msg);
  }
};

World::World(Config cfg, ProtocolFactory factory)
    : cfg_(cfg),
      factory_(std::move(factory)),
      master_rng_(cfg.seed),
      scenario_rng_(master_rng_.fork(0xA11CE)),
      spawn_rng_(master_rng_.fork(0xB0B)) {
  CROUPIER_ASSERT(factory_ != nullptr);
  CROUPIER_ASSERT(cfg_.round_period > 0);
  CROUPIER_ASSERT(cfg_.clock_skew >= 0.0 && cfg_.clock_skew < 0.5);

  // One fork feeds whichever latency model is selected: the branches are
  // mutually exclusive, and hoisting keeps the tag single-sited (fork()
  // is const, so taking it unconditionally changes no byte of any run).
  const std::uint64_t latency_seed = master_rng_.fork(0x1A7).next_u64();
  std::unique_ptr<net::LatencyModel> latency;
  switch (cfg_.latency) {
    case LatencyKind::Constant:
      latency = std::make_unique<net::ConstantLatency>(cfg_.constant_latency);
      break;
    case LatencyKind::Coordinate:
      latency = std::make_unique<net::CoordinateLatencyModel>(latency_seed);
      break;
    case LatencyKind::King:
      latency = std::make_unique<net::KingLatencyModel>(latency_seed);
      break;
  }
  const sim::Duration min_latency = latency->min_latency();
  network_ = std::make_unique<net::Network>(
      sim_, std::move(latency), master_rng_.fork(0x2E7),
      net::make_loss_model(cfg_.loss));
  network_->set_packet_config(cfg_.packet);

  // Protocol traffic (tags < 0x80, non-NAT-ID) only ever touches the
  // receiving node's own state, so those deliveries shard by receiver.
  // NAT-ID handlers mutate the shared bootstrap registry when a node
  // finishes identification, and application handlers (examples/) are
  // unaudited user code — both stay serial.
  network_->set_delivery_affinity(
      [](net::NodeId to, const net::Message& msg) {
        if (natid::is_natid_message(msg.type()) || msg.type() >= 0x80) {
          return sim::kSerialAffinity;
        }
        return static_cast<sim::Affinity>(to);
      });

  if (cfg_.world_jobs > 1) {
    executor_ = std::make_unique<sim::ParallelExecutor>(
        sim_, sim::ParallelExecutor::Options{cfg_.world_jobs, min_latency});
  }
}

void World::run_until(sim::SimTime t) {
  if (executor_ != nullptr) {
    executor_->run_until(t);
  } else {
    sim_.run_until(t);
  }
}

World::~World() = default;

net::NodeId World::spawn(const net::NatConfig& nat) {
  return spawn_impl(nat, /*skip_natid=*/false);
}

net::NodeId World::spawn_seeded(const net::NatConfig& nat) {
  return spawn_impl(nat, /*skip_natid=*/true);
}

net::NodeId World::spawn_impl(const net::NatConfig& nat, bool skip_natid) {
  const net::NodeId id = next_id_++;
  auto node = std::make_unique<NodeRuntime>();
  node->world = this;
  node->id = id;
  node->nat_cfg = nat;
  node->rng = spawn_rng_.fork(id);
  node->period_scale =
      1.0 + cfg_.clock_skew * (2.0 * node->rng.next_double() - 1.0);
  if (nat.nat_type() == net::NatType::Private) {
    node->period_scale *= cfg_.private_round_scale;
  }

  network_->attach(id, nat, *node);

  NodeRuntime& ref = *node;
  nodes_.emplace(id, std::move(node));
  alive_index_.emplace(id, alive_ids_.size());
  alive_ids_.push_back(id);
  if (nat.nat_type() == net::NatType::Public) ++public_count_;

  if (!cfg_.use_natid_protocol || skip_natid) {
    ref.identified = nat.nat_type();
    start_pss(ref);
    return id;
  }

  start_natid(ref);
  return id;
}

namespace {

// Sub-component RNG fork tags. Epoch 0 keeps the historic small tags so
// every pre-reclassify run stays byte-identical; later epochs shift the
// base out of the low tag range, which no other fork uses.
std::uint64_t epoch_tag(std::uint64_t base, std::uint32_t epoch) {
  return epoch == 0 ? base : (base << 16) + epoch;
}

}  // namespace

void World::start_natid(NodeRuntime& node) {
  // Run the distributed identification first; gossip starts when it
  // completes. The callback never outlives the node: kill() destroys the
  // client, whose destructor disarms the pending timeout.
  const net::NodeId id = node.id;
  natid::NatIdClient::Config nid_cfg;
  nid_cfg.timeout = cfg_.natid_timeout;
  nid_cfg.upnp_available =
      node.nat_cfg.cls == net::ConnectivityClass::UpnpIgd;
  node.natid_client = std::make_unique<natid::NatIdClient>(
      id, *network_, bootstrap_,
      node.rng.fork(epoch_tag(0x71D, node.round_epoch)), nid_cfg,
      [this, id](net::NatType type) {
        const auto it = nodes_.find(id);
        if (it == nodes_.end()) return;
        it->second->identified = type;
        start_pss(*it->second);
      });
  node.natid_client->start();
}

void World::start_pss(NodeRuntime& node) {
  CROUPIER_ASSERT(!node.pss_started);
  node.pss_started = true;

  // Public nodes serve the NAT-ID protocol for future joiners.
  if (node.identified == net::NatType::Public) {
    node.natid_responder = std::make_unique<natid::NatIdResponder>(
        node.id, *network_, bootstrap_,
        node.rng.fork(epoch_tag(0x4E5, node.round_epoch)));
  }

  pss::PeerSampler::Context ctx;
  ctx.self = node.id;
  ctx.nat_type = node.identified;
  ctx.network = network_.get();
  ctx.bootstrap = &bootstrap_;
  ctx.rng = node.rng.fork(epoch_tag(0x955, node.round_epoch));
  ctx.arena = &view_arena_;
  node.pss = factory_(std::move(ctx));
  CROUPIER_ASSERT(node.pss != nullptr);
  ++gossiping_count_;

  bootstrap_.add(node.id, node.identified);
  node.pss->init();

  // First round fires at a random phase inside one period; the node then
  // gossips with its own (slightly skewed) period.
  const auto phase = static_cast<sim::Duration>(
      node.rng.next_double() * static_cast<double>(cfg_.round_period));
  const net::NodeId id = node.id;
  const std::uint32_t epoch = node.round_epoch;
  sim_.schedule_after(phase, static_cast<sim::Affinity>(id),
                      [this, id, epoch] { schedule_round(id, epoch); });
}

void World::schedule_round(net::NodeId id, std::uint32_t epoch) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return;  // died while the event was pending
  NodeRuntime& node = *it->second;
  if (node.pss == nullptr || node.round_epoch != epoch) return;

  sim::conflict::record_write(id, "World: per-node runtime (round)");
  node.pss->round();
  ++node.rounds;

  const auto period = static_cast<sim::Duration>(
      static_cast<double>(cfg_.round_period) * node.period_scale);
  // detlint:allow(naked-schedule) the round re-arm discards the EventId
  // (the chain is torn down via the epoch check, never cancel()), and
  // schedule_impl auto-defers it when this runs inside a parallel batch.
  sim_.schedule_after(period, static_cast<sim::Affinity>(id),
                      [this, id, epoch] { schedule_round(id, epoch); });
}

void World::reclassify(net::NodeId id, const net::NatConfig& nat) {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT_MSG(it != nodes_.end(), "reclassify of dead node");
  NodeRuntime& node = *it->second;

  if (node.nat_cfg.nat_type() == net::NatType::Public) {
    CROUPIER_ASSERT(public_count_ > 0);
    --public_count_;
  }
  if (nat.nat_type() == net::NatType::Public) ++public_count_;
  node.nat_cfg = nat;
  network_->reclassify(id, nat);

  // Tear down the old identity: the orphaned round chain dies on the
  // epoch check, in-flight responses to the old instance are dropped by
  // NodeRuntime's null check.
  ++node.round_epoch;
  if (node.pss != nullptr) {
    CROUPIER_ASSERT(gossiping_count_ > 0);
    --gossiping_count_;
    node.pss.reset();
  }
  node.natid_client.reset();
  node.natid_responder.reset();
  node.pss_started = false;
  node.rounds = 0;
  if (bootstrap_.known(id)) bootstrap_.remove(id);

  // Re-join through the same path spawn uses.
  if (!cfg_.use_natid_protocol) {
    node.identified = nat.nat_type();
    start_pss(node);
  } else {
    start_natid(node);
  }
}

void World::kill(net::NodeId id) {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT_MSG(it != nodes_.end(), "kill of dead node");

  ++kill_count_;
  if (it->second->pss != nullptr) {
    CROUPIER_ASSERT(gossiping_count_ > 0);
    --gossiping_count_;
  }
  if (it->second->nat_cfg.nat_type() == net::NatType::Public) {
    CROUPIER_ASSERT(public_count_ > 0);
    --public_count_;
  }
  network_->detach(id);
  if (bootstrap_.known(id)) bootstrap_.remove(id);

  // Swap-remove from the dense alive list.
  const std::size_t pos = alive_index_.at(id);
  const net::NodeId last = alive_ids_.back();
  alive_ids_[pos] = last;
  alive_index_[last] = pos;
  alive_ids_.pop_back();
  alive_index_.erase(id);

  nodes_.erase(it);
}

std::size_t World::count(net::NatType type) const {
  return type == net::NatType::Public ? public_count_
                                      : nodes_.size() - public_count_;
}

double World::true_ratio() const {
  if (nodes_.empty()) return 0.0;
  return static_cast<double>(public_count_) /
         static_cast<double>(nodes_.size());
}

pss::PeerSampler* World::sampler(net::NodeId id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second->pss.get();
}

const pss::PeerSampler* World::sampler(net::NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second->pss.get();
}

net::NatType World::type_of(net::NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  return it->second->nat_cfg.nat_type();
}

const net::NatConfig& World::nat_config_of(net::NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  return it->second->nat_cfg;
}

net::NatType World::identified_type_of(net::NodeId id) const {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT(it != nodes_.end());
  return it->second->identified;
}

std::uint64_t World::rounds_of(net::NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second->rounds;
}

std::vector<net::NodeId> World::sorted_ids() const {
  std::vector<net::NodeId> ids = alive_ids_;
  std::sort(ids.begin(), ids.end());
  return ids;
}

void World::for_each_sampler(
    const std::function<void(net::NodeId, pss::PeerSampler&)>& fn) const {
  for (const net::NodeId id : sorted_ids()) {
    const auto& node = nodes_.at(id);
    if (node->pss != nullptr) fn(id, *node->pss);
  }
}

metrics::OverlayGraph World::snapshot_overlay(bool usable_only) const {
  std::vector<std::pair<net::NodeId, std::vector<net::NodeId>>> adjacency;
  adjacency.reserve(nodes_.size());
  const auto alive_fn = [this](net::NodeId id) { return alive(id); };
  for (const net::NodeId id : sorted_ids()) {
    const auto& node = nodes_.at(id);
    if (node->pss == nullptr) continue;
    adjacency.emplace_back(id, usable_only
                                   ? node->pss->usable_neighbors(alive_fn)
                                   : node->pss->out_neighbors());
  }
  return metrics::OverlayGraph::build(adjacency);
}

std::vector<std::pair<net::NodeId, net::NatType>> World::class_map() const {
  std::vector<std::pair<net::NodeId, net::NatType>> out;
  out.reserve(nodes_.size());
  for (const net::NodeId id : sorted_ids()) {
    const auto& node = nodes_.at(id);
    if (node->pss != nullptr) out.emplace_back(id, node->nat_cfg.nat_type());
  }
  return out;
}

void World::set_app_handler(net::NodeId id, net::MessageHandler* handler) {
  const auto it = nodes_.find(id);
  CROUPIER_ASSERT_MSG(it != nodes_.end(), "app handler for dead node");
  it->second->app = handler;
}

std::vector<double> World::ratio_estimates(std::uint64_t min_rounds) const {
  std::vector<double> out;
  for (const net::NodeId id : sorted_ids()) {
    const auto& node = nodes_.at(id);
    if (node->pss == nullptr || node->rounds < min_rounds) continue;
    if (const auto est = node->pss->ratio_estimate(); est.has_value()) {
      out.push_back(*est);
    }
  }
  return out;
}

}  // namespace croupier::run
