#include "runtime/spec.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "runtime/registry.hpp"

namespace croupier::run {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument(message);
}

sim::Duration from_ms(double ms) {
  return static_cast<sim::Duration>(std::llround(ms * 1000.0));
}

sim::Duration from_s(double s) {
  return static_cast<sim::Duration>(std::llround(s * 1e6));
}

/// Shortest decimal form that parses back to the exact same double, so
/// to_string() stays human-readable ("0.2", not "0.2000000000000000111")
/// while parse(to_string(s)) == s holds bit-for-bit.
std::string fmt_double(double v) {
  char buf[40];
  for (int precision : {6, 10, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

double parse_double(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])) ||
      end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    fail("spec: malformed value for '" + key + "': \"" + text + "\"");
  }
  return v;
}

std::size_t parse_size(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
      end != text.c_str() + text.size() || errno == ERANGE) {
    fail("spec: malformed value for '" + key + "': \"" + text + "\"");
  }
  return static_cast<std::size_t>(v);
}

const char* join_name(ExperimentSpec::JoinKind k) {
  switch (k) {
    case ExperimentSpec::JoinKind::Poisson: return "poisson";
    case ExperimentSpec::JoinKind::Fixed: return "fixed";
    case ExperimentSpec::JoinKind::Instant: return "instant";
  }
  return "poisson";
}

const char* latency_name(World::LatencyKind k) {
  switch (k) {
    case World::LatencyKind::King: return "king";
    case World::LatencyKind::Constant: return "constant";
    case World::LatencyKind::Coordinate: return "coordinate";
  }
  return "king";
}

const char* record_name(ExperimentSpec::RecordKind k) {
  switch (k) {
    case ExperimentSpec::RecordKind::None: return "none";
    case ExperimentSpec::RecordKind::Estimation: return "estimation";
    case ExperimentSpec::RecordKind::Graph: return "graph";
  }
  return "estimation";
}

}  // namespace

std::size_t ExperimentSpec::publics() const {
  return static_cast<std::size_t>(ratio * static_cast<double>(nodes) + 0.5);
}

sim::Duration ExperimentSpec::duration() const { return from_s(duration_s); }

void ExperimentSpec::validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) fail(std::string("spec: ") + what);
  };
  check(!protocol.empty(), "protocol must be non-empty");
  check(nodes > 0, "nodes must be >= 1");
  check(ratio >= 0.0 && ratio <= 1.0, "ratio must be in [0, 1]");
  check(join == JoinKind::Instant ||
            (join_public_ms > 0.0 && join_private_ms > 0.0),
        "join intervals must be positive");
  check(step_publics + step_privates == 0 || step_every_ms > 0.0,
        "step-every-ms must be positive");
  check(step_at_s >= 0.0, "step-at must be >= 0");
  check(churn >= 0.0 && churn < 1.0, "churn must be in [0, 1)");
  check(churn_at_s >= 0.0, "churn-at must be >= 0");
  check(catastrophe >= 0.0 && catastrophe <= 1.0,
        "catastrophe must be in [0, 1]");
  check(catastrophe_at_s >= 0.0, "catastrophe-at must be >= 0");
  check(loss >= 0.0 && loss <= 1.0, "loss must be in [0, 1]");
  check(skew >= 0.0 && skew < 1.0, "skew must be in [0, 1)");
  check(private_round_scale > 0.0, "private-round-scale must be positive");
  check(latency_ms > 0.0, "latency-ms must be positive");
  check(round_ms > 0.0, "round-ms must be positive");
  check(duration_s > 0.0, "duration must be positive");
  check(record_every_s >= 0.0, "record-every must be >= 0");
  // Fail on an unknown protocol name, option key, or malformed option
  // value at validation time, not mid-trial: specs are often validated
  // once and then fanned out over a pool, where a late throw would
  // surface as a TrialPool::wait() rethrow instead of a clean error.
  (void)ProtocolRegistry::instance().make_from_spec(protocol);
}

std::string ExperimentSpec::to_string() const {
  static const ExperimentSpec defaults;
  std::ostringstream out;
  out << "protocol=" << protocol;
  out << " nodes=" << nodes;
  out << " ratio=" << fmt_double(ratio);

  const auto emit_d = [&](const char* key, double v, double dflt) {
    if (v != dflt) out << ' ' << key << '=' << fmt_double(v);
  };
  const auto emit_n = [&](const char* key, std::size_t v, std::size_t dflt) {
    if (v != dflt) out << ' ' << key << '=' << v;
  };

  if (join != defaults.join) out << " join=" << join_name(join);
  emit_d("join-public-ms", join_public_ms, defaults.join_public_ms);
  emit_d("join-private-ms", join_private_ms, defaults.join_private_ms);
  emit_n("step-publics", step_publics, defaults.step_publics);
  emit_n("step-privates", step_privates, defaults.step_privates);
  emit_d("step-at", step_at_s, defaults.step_at_s);
  emit_d("step-every-ms", step_every_ms, defaults.step_every_ms);
  emit_d("churn", churn, defaults.churn);
  emit_d("churn-at", churn_at_s, defaults.churn_at_s);
  emit_d("catastrophe", catastrophe, defaults.catastrophe);
  emit_d("catastrophe-at", catastrophe_at_s, defaults.catastrophe_at_s);
  emit_d("loss", loss, defaults.loss);
  emit_d("skew", skew, defaults.skew);
  emit_d("private-round-scale", private_round_scale,
         defaults.private_round_scale);
  if (latency != defaults.latency) out << " latency=" << latency_name(latency);
  emit_d("latency-ms", latency_ms, defaults.latency_ms);
  emit_d("round-ms", round_ms, defaults.round_ms);
  if (natid) out << " natid=1";
  out << " duration=" << fmt_double(duration_s);
  if (record != defaults.record) out << " record=" << record_name(record);
  emit_d("record-every", record_every_s, defaults.record_every_s);
  return out.str();
}

ExperimentSpec ExperimentSpec::parse(const std::string& text) {
  ExperimentSpec spec;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == 0 || eq == std::string::npos) {
      fail("spec: expected key=value, got \"" + token + "\"");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "protocol") {
      spec.protocol = value;
    } else if (key == "nodes") {
      spec.nodes = parse_size(key, value);
    } else if (key == "ratio") {
      spec.ratio = parse_double(key, value);
    } else if (key == "join") {
      if (value == "poisson") spec.join = JoinKind::Poisson;
      else if (value == "fixed") spec.join = JoinKind::Fixed;
      else if (value == "instant") spec.join = JoinKind::Instant;
      else fail("spec: join must be poisson|fixed|instant, got \"" + value +
                "\"");
    } else if (key == "join-public-ms") {
      spec.join_public_ms = parse_double(key, value);
    } else if (key == "join-private-ms") {
      spec.join_private_ms = parse_double(key, value);
    } else if (key == "step-publics") {
      spec.step_publics = parse_size(key, value);
    } else if (key == "step-privates") {
      spec.step_privates = parse_size(key, value);
    } else if (key == "step-at") {
      spec.step_at_s = parse_double(key, value);
    } else if (key == "step-every-ms") {
      spec.step_every_ms = parse_double(key, value);
    } else if (key == "churn") {
      spec.churn = parse_double(key, value);
    } else if (key == "churn-at") {
      spec.churn_at_s = parse_double(key, value);
    } else if (key == "catastrophe") {
      spec.catastrophe = parse_double(key, value);
    } else if (key == "catastrophe-at") {
      spec.catastrophe_at_s = parse_double(key, value);
    } else if (key == "loss") {
      spec.loss = parse_double(key, value);
    } else if (key == "skew") {
      spec.skew = parse_double(key, value);
    } else if (key == "private-round-scale") {
      spec.private_round_scale = parse_double(key, value);
    } else if (key == "latency") {
      if (value == "king") spec.latency = World::LatencyKind::King;
      else if (value == "constant") spec.latency = World::LatencyKind::Constant;
      else if (value == "coordinate")
        spec.latency = World::LatencyKind::Coordinate;
      else fail("spec: latency must be king|constant|coordinate, got \"" +
                value + "\"");
    } else if (key == "latency-ms") {
      spec.latency_ms = parse_double(key, value);
    } else if (key == "round-ms") {
      spec.round_ms = parse_double(key, value);
    } else if (key == "natid") {
      if (value == "0") spec.natid = false;
      else if (value == "1") spec.natid = true;
      else fail("spec: natid must be 0|1, got \"" + value + "\"");
    } else if (key == "duration") {
      spec.duration_s = parse_double(key, value);
    } else if (key == "record") {
      if (value == "none") spec.record = RecordKind::None;
      else if (value == "estimation") spec.record = RecordKind::Estimation;
      else if (value == "graph") spec.record = RecordKind::Graph;
      else fail("spec: record must be none|estimation|graph, got \"" + value +
                "\"");
    } else if (key == "record-every") {
      spec.record_every_s = parse_double(key, value);
    } else {
      fail("spec: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

SpecBuilder& SpecBuilder::protocol(std::string spec) {
  spec_.protocol = std::move(spec);
  return *this;
}
SpecBuilder& SpecBuilder::nodes(std::size_t n) {
  spec_.nodes = n;
  return *this;
}
SpecBuilder& SpecBuilder::ratio(double omega) {
  spec_.ratio = omega;
  return *this;
}
SpecBuilder& SpecBuilder::poisson_joins(double public_ms, double private_ms) {
  spec_.join = ExperimentSpec::JoinKind::Poisson;
  spec_.join_public_ms = public_ms;
  spec_.join_private_ms = private_ms;
  return *this;
}
SpecBuilder& SpecBuilder::fixed_joins(double public_ms, double private_ms) {
  spec_.join = ExperimentSpec::JoinKind::Fixed;
  spec_.join_public_ms = public_ms;
  spec_.join_private_ms = private_ms;
  return *this;
}
SpecBuilder& SpecBuilder::instant_joins() {
  spec_.join = ExperimentSpec::JoinKind::Instant;
  return *this;
}
SpecBuilder& SpecBuilder::join_step(std::size_t publics, std::size_t privates,
                                    double at_s, double every_ms) {
  spec_.step_publics = publics;
  spec_.step_privates = privates;
  spec_.step_at_s = at_s;
  spec_.step_every_ms = every_ms;
  return *this;
}
SpecBuilder& SpecBuilder::churn(double fraction, double at_s) {
  spec_.churn = fraction;
  spec_.churn_at_s = at_s;
  return *this;
}
SpecBuilder& SpecBuilder::catastrophe(double fraction, double at_s) {
  spec_.catastrophe = fraction;
  spec_.catastrophe_at_s = at_s;
  return *this;
}
SpecBuilder& SpecBuilder::loss(double probability) {
  spec_.loss = probability;
  return *this;
}
SpecBuilder& SpecBuilder::skew(double fraction) {
  spec_.skew = fraction;
  return *this;
}
SpecBuilder& SpecBuilder::private_round_scale(double scale) {
  spec_.private_round_scale = scale;
  return *this;
}
SpecBuilder& SpecBuilder::king_latency() {
  spec_.latency = World::LatencyKind::King;
  return *this;
}
SpecBuilder& SpecBuilder::constant_latency(double ms) {
  spec_.latency = World::LatencyKind::Constant;
  spec_.latency_ms = ms;
  return *this;
}
SpecBuilder& SpecBuilder::coordinate_latency() {
  spec_.latency = World::LatencyKind::Coordinate;
  return *this;
}
SpecBuilder& SpecBuilder::round_period(double ms) {
  spec_.round_ms = ms;
  return *this;
}
SpecBuilder& SpecBuilder::natid(bool enabled) {
  spec_.natid = enabled;
  return *this;
}
SpecBuilder& SpecBuilder::duration(double seconds) {
  spec_.duration_s = seconds;
  return *this;
}
SpecBuilder& SpecBuilder::record_estimation(double every_s) {
  spec_.record = ExperimentSpec::RecordKind::Estimation;
  spec_.record_every_s = every_s;
  return *this;
}
SpecBuilder& SpecBuilder::record_graph(double every_s) {
  spec_.record = ExperimentSpec::RecordKind::Graph;
  spec_.record_every_s = every_s;
  return *this;
}
SpecBuilder& SpecBuilder::record_nothing() {
  spec_.record = ExperimentSpec::RecordKind::None;
  spec_.record_every_s = 0.0;
  return *this;
}

ExperimentSpec SpecBuilder::build() const {
  spec_.validate();
  return spec_;
}

Experiment::Experiment(const ExperimentSpec& spec, std::uint64_t seed,
                       std::size_t world_jobs)
    : spec_(spec) {
  spec_.validate();

  World::Config cfg;
  cfg.seed = seed;
  cfg.loss_probability = spec_.loss;
  cfg.round_period = from_ms(spec_.round_ms);
  cfg.clock_skew = spec_.skew;
  cfg.private_round_scale = spec_.private_round_scale;
  cfg.latency = spec_.latency;
  cfg.constant_latency = from_ms(spec_.latency_ms);
  cfg.use_natid_protocol = spec_.natid;
  // Deliberately a constructor argument, not a spec field: a spec plus a
  // seed identifies the experiment's *results*, and the engine guarantees
  // results are byte-identical for every world_jobs value.
  cfg.world_jobs = world_jobs;
  world_ = std::make_unique<World>(
      cfg, ProtocolRegistry::instance().make_from_spec(spec_.protocol));

  // Scheduling order mirrors what the benches always did by hand —
  // joins, then churn, then catastrophe, then recorders — so a spec-built
  // world replays a hand-built one event for event.
  const std::size_t pubs = spec_.publics();
  const std::size_t privs = spec_.privates();
  switch (spec_.join) {
    case ExperimentSpec::JoinKind::Poisson:
      schedule_poisson_joins(*world_, pubs, net::NatConfig::open(),
                             from_ms(spec_.join_public_ms));
      schedule_poisson_joins(*world_, privs, net::NatConfig::natted(),
                             from_ms(spec_.join_private_ms));
      break;
    case ExperimentSpec::JoinKind::Fixed:
      schedule_fixed_joins(*world_, pubs, net::NatConfig::open(),
                           from_ms(spec_.join_public_ms));
      schedule_fixed_joins(*world_, privs, net::NatConfig::natted(),
                           from_ms(spec_.join_private_ms));
      break;
    case ExperimentSpec::JoinKind::Instant:
      // With the NAT-ID protocol on, the initial publics are operator
      // seeds: the identification protocol needs existing public
      // responders before any node can classify itself.
      for (std::size_t i = 0; i < pubs; ++i) {
        if (spec_.natid) {
          world_->spawn_seeded(net::NatConfig::open());
        } else {
          world_->spawn(net::NatConfig::open());
        }
      }
      for (std::size_t i = 0; i < privs; ++i) {
        world_->spawn(net::NatConfig::natted());
      }
      break;
  }

  if (spec_.step_publics > 0) {
    schedule_fixed_joins(*world_, spec_.step_publics, net::NatConfig::open(),
                         from_ms(spec_.step_every_ms),
                         from_s(spec_.step_at_s));
  }
  if (spec_.step_privates > 0) {
    schedule_fixed_joins(*world_, spec_.step_privates,
                         net::NatConfig::natted(),
                         from_ms(spec_.step_every_ms),
                         from_s(spec_.step_at_s));
  }

  if (spec_.churn > 0.0) {
    churn_ = std::make_unique<ChurnProcess>(*world_, spec_.churn,
                                            net::NatConfig::open(),
                                            net::NatConfig::natted());
    churn_->start(from_s(spec_.churn_at_s));
  }

  if (spec_.catastrophe > 0.0) {
    // Double indirection on purpose: the hand-built fig7b ran the world
    // up to the crash instant and only then scheduled the kill, so the
    // kill executed after every already-queued event of that timestamp.
    // Scheduling the real kill event from inside a same-time event
    // reproduces that tie-break (fresh event ids sort last), keeping the
    // spec-built world bit-compatible with the historic bench.
    const sim::SimTime at = from_s(spec_.catastrophe_at_s);
    const double fraction = spec_.catastrophe;
    World* world = world_.get();
    world_->simulator().schedule_at(at, [world, at, fraction] {
      schedule_catastrophe(*world, at, fraction);
    });
  }

  switch (spec_.record) {
    case ExperimentSpec::RecordKind::None:
      break;
    case ExperimentSpec::RecordKind::Estimation: {
      const sim::Duration every = spec_.record_every_s > 0.0
                                      ? from_s(spec_.record_every_s)
                                      : sim::sec(1);
      estimation_ = std::make_unique<EstimationRecorder>(
          *world_, EstimationRecorderOptions{every, 2});
      estimation_->start(every);
      break;
    }
    case ExperimentSpec::RecordKind::Graph: {
      const sim::Duration every = spec_.record_every_s > 0.0
                                      ? from_s(spec_.record_every_s)
                                      : sim::sec(10);
      graph_stats_ = std::make_unique<GraphStatsRecorder>(
          *world_, GraphStatsRecorderOptions{every, 128});
      graph_stats_->start(every);
      break;
    }
  }
}

}  // namespace croupier::run
