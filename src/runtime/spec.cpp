#include "runtime/spec.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/adversary.hpp"
#include "runtime/registry.hpp"

namespace croupier::run {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument(message);
}

sim::Duration from_ms(double ms) {
  return static_cast<sim::Duration>(std::llround(ms * 1000.0));
}

sim::Duration from_s(double s) {
  return static_cast<sim::Duration>(std::llround(s * 1e6));
}

/// Shortest decimal form that parses back to the exact same double, so
/// to_string() stays human-readable ("0.2", not "0.2000000000000000111")
/// while parse(to_string(s)) == s holds bit-for-bit.
std::string fmt_double(double v) {
  char buf[40];
  for (int precision : {6, 10, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

double parse_double(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || std::isspace(static_cast<unsigned char>(text[0])) ||
      end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    fail("spec: malformed value for '" + key + "': \"" + text + "\"");
  }
  return v;
}

std::size_t parse_size(const std::string& key, const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])) ||
      end != text.c_str() + text.size() || errno == ERANGE) {
    fail("spec: malformed value for '" + key + "': \"" + text + "\"");
  }
  return static_cast<std::size_t>(v);
}

const char* join_name(ExperimentSpec::JoinKind k) {
  switch (k) {
    case ExperimentSpec::JoinKind::Poisson: return "poisson";
    case ExperimentSpec::JoinKind::Fixed: return "fixed";
    case ExperimentSpec::JoinKind::Instant: return "instant";
  }
  return "poisson";
}

const char* latency_name(World::LatencyKind k) {
  switch (k) {
    case World::LatencyKind::King: return "king";
    case World::LatencyKind::Constant: return "constant";
    case World::LatencyKind::Coordinate: return "coordinate";
  }
  return "king";
}

const char* record_name(ExperimentSpec::RecordKind k) {
  switch (k) {
    case ExperimentSpec::RecordKind::None: return "none";
    case ExperimentSpec::RecordKind::Estimation: return "estimation";
    case ExperimentSpec::RecordKind::Graph: return "graph";
    case ExperimentSpec::RecordKind::GraphSampled: return "graph-sampled";
    case ExperimentSpec::RecordKind::Randomness: return "randomness";
  }
  return "estimation";
}

const char* corr_name(ExperimentSpec::FailureCorr c) {
  switch (c) {
    case ExperimentSpec::FailureCorr::Uniform: return "uniform";
    case ExperimentSpec::FailureCorr::Region: return "region";
    case ExperimentSpec::FailureCorr::Public: return "public";
    case ExperimentSpec::FailureCorr::Private: return "private";
  }
  return "region";
}

/// Splits a composite value ("at:60,frac:0.3,corr:region") into
/// (subkey, subvalue) pairs; a token without ':' comes back with an
/// empty subkey (the scalar shorthand, e.g. "loss=0.1,after:90").
std::vector<std::pair<std::string, std::string>> split_subkeys(
    const std::string& key, const std::string& value) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    std::size_t end = value.find(',', begin);
    if (end == std::string::npos) end = value.size();
    const std::string token = value.substr(begin, end - begin);
    if (token.empty()) {
      fail("spec: empty element in '" + key + "' value \"" + value + "\"");
    }
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos) {
      out.emplace_back("", token);
    } else if (colon == 0 || colon == token.size() - 1) {
      fail("spec: malformed '" + key + "' element \"" + token + "\"");
    } else {
      out.emplace_back(token.substr(0, colon), token.substr(colon + 1));
    }
    begin = end + 1;
  }
  return out;
}

/// Parses a `loss=` value: either the historic uniform scalar or the
/// structured per-class-pair form. Subkeys name (sender)-(receiver)
/// class pairs with `any` wildcards; `after:S` delays activation.
ExperimentSpec::LossSpec parse_loss(const std::string& value) {
  ExperimentSpec::LossSpec loss;
  const auto set = [&loss](bool pp, bool pv, bool vp, bool vv, double rate) {
    if (pp) loss.pub_pub = rate;
    if (pv) loss.pub_priv = rate;
    if (vp) loss.priv_pub = rate;
    if (vv) loss.priv_priv = rate;
  };
  for (const auto& [sub, text] : split_subkeys("loss", value)) {
    if (sub == "after") {
      loss.after_s = parse_double("loss after", text);
      continue;
    }
    const double rate = parse_double("loss " + (sub.empty() ? "rate" : sub),
                                     text);
    if (sub.empty() || sub == "any-any" || sub == "any") {
      set(true, true, true, true, rate);
    } else if (sub == "pub-pub") {
      set(true, false, false, false, rate);
    } else if (sub == "pub-priv") {
      set(false, true, false, false, rate);
    } else if (sub == "priv-pub") {
      set(false, false, true, false, rate);
    } else if (sub == "priv-priv") {
      set(false, false, false, true, rate);
    } else if (sub == "pub-any") {
      set(true, true, false, false, rate);
    } else if (sub == "priv-any") {
      set(false, false, true, true, rate);
    } else if (sub == "any-pub") {
      set(true, false, true, false, rate);
    } else if (sub == "any-priv") {
      set(false, true, false, true, rate);
    } else {
      fail("spec: loss pair must be one of pub-pub|pub-priv|priv-pub|"
           "priv-priv|pub-any|priv-any|any-pub|any-priv|any (or a bare "
           "uniform rate), got \"" + sub + "\"");
    }
  }
  return loss;
}

}  // namespace

net::LossConfig ExperimentSpec::LossSpec::to_config() const {
  net::LossConfig cfg;
  cfg.rate = {{{pub_pub, pub_priv}, {priv_pub, priv_priv}}};
  cfg.after = from_s(after_s);
  return cfg;
}

net::PacketConfig ExperimentSpec::packet_config() const {
  net::PacketConfig cfg;
  cfg.mtu = mtu;
  cfg.bandwidth_bps = bandwidth_bps;
  cfg.bandwidth_burst = bandwidth_burst;
  cfg.fec_repair = fec_repair;
  cfg.fec_rate = fec_rate;
  return cfg;
}

std::size_t ExperimentSpec::publics() const {
  return static_cast<std::size_t>(ratio * static_cast<double>(nodes) + 0.5);
}

sim::Duration ExperimentSpec::duration() const { return from_s(duration_s); }

void ExperimentSpec::validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) fail(std::string("spec: ") + what);
  };
  check(!protocol.empty(), "protocol must be non-empty");
  check(nodes > 0, "nodes must be >= 1");
  check(ratio >= 0.0 && ratio <= 1.0, "ratio must be in [0, 1]");
  check(join == JoinKind::Instant ||
            (join_public_ms > 0.0 && join_private_ms > 0.0),
        "join intervals must be positive");
  check(step_publics + step_privates == 0 || step_every_ms > 0.0,
        "step-every-ms must be positive");
  check(step_at_s >= 0.0, "step-at must be >= 0");
  check(flash_publics + flash_privates == 0 || flash_over_s > 0.0,
        "flash over must be positive");
  check(flash_at_s >= 0.0, "flash at must be >= 0");
  check(churn >= 0.0 && churn < 1.0, "churn must be in [0, 1)");
  check(churn_at_s >= 0.0, "churn-at must be >= 0");
  check(catastrophe >= 0.0 && catastrophe <= 1.0,
        "catastrophe must be in [0, 1]");
  check(catastrophe_at_s >= 0.0, "catastrophe-at must be >= 0");
  check(failure_frac >= 0.0 && failure_frac <= 1.0,
        "failure frac must be in [0, 1]");
  check(failure_at_s >= 0.0, "failure at must be >= 0");
  // Adversarial scenario bounds, rejected here rather than mid-trial:
  // an eclipse target the join processes never spawn would silently
  // no-op forever, natflap on an all-public population has no NAT class
  // to flap, and a hub count >= nodes leaves no honest node to audit.
  check(eclipse_target <= nodes,
        "eclipse target must be a node id in [1, nodes] (0 = off; ids are "
        "assigned 1..nodes in join order)");
  check(eclipse_at_s >= 0.0, "eclipse at must be >= 0");
  check(eclipse_period_s > 0.0, "eclipse period must be positive");
  check(natflap_frac >= 0.0 && natflap_frac <= 1.0,
        "natflap frac must be in [0, 1]");
  check(natflap_frac == 0.0 || ratio < 1.0,
        "natflap requires a mixed population — with ratio=1 there is no "
        "NAT class to oscillate");
  check(natflap_at_s >= 0.0, "natflap at must be >= 0");
  check(natflap_period_s > 0.0, "natflap period must be positive");
  check(adversary_hubs == 0 || adversary_hubs < nodes,
        "adversary hubs must be < nodes — at least one honest node must "
        "remain");
  if (adversary_hubs > 0) (void)dialect_for_protocol(protocol);
  // Strictly below 1: a rate of 1.0 would silence a class pair outright
  // and used to slip through to the Network's hard assert mid-trial;
  // failing here keeps the error at parse/validate time.
  for (const double rate : {loss.pub_pub, loss.pub_priv, loss.priv_pub,
                            loss.priv_priv}) {
    check(rate >= 0.0 && rate < 1.0,
          "loss rates must be in [0, 1) — 1.0 would drop every packet of "
          "a class pair");
  }
  check(loss.after_s >= 0.0, "loss after must be >= 0");
  // Packet-layer bounds checked here, not inside the Fragmenter/bucket
  // asserts: an mtu smaller than the fragment frame or a bucket with
  // burst but no rate used to crash mid-trial instead of failing at
  // parse/validate time (same rationale as the loss-rate check above).
  check(mtu == 0 || (mtu > net::kFragmentHeaderBytes && mtu <= net::kMaxMtu),
        "mtu must be 0 (off) or in (20, 65507] — a datagram must carry "
        "more than the fragment header");
  check(bandwidth_burst == 0 || bandwidth_bps > 0,
        "bandwidth burst requires a positive rate — a zero-rate bucket "
        "would never drain");
  check(fec_rate >= 0.0, "fec rate must be >= 0");
  check((fec_repair == 0 && fec_rate == 0.0) || mtu > 0,
        "fec requires a positive mtu — repair fragments only exist for "
        "fragmented messages");
  check(skew >= 0.0 && skew < 1.0, "skew must be in [0, 1)");
  check(private_round_scale > 0.0, "private-round-scale must be positive");
  check(latency_ms > 0.0, "latency-ms must be positive");
  check(round_ms > 0.0, "round-ms must be positive");
  check(duration_s > 0.0, "duration must be positive");
  check(record_every_s >= 0.0, "record-every must be >= 0");
  // Fail on an unknown protocol name, option key, or malformed option
  // value at validation time, not mid-trial: specs are often validated
  // once and then fanned out over a pool, where a late throw would
  // surface as a TrialPool::wait() rethrow instead of a clean error.
  (void)ProtocolRegistry::instance().make_from_spec(protocol);
}

std::string ExperimentSpec::to_string() const {
  static const ExperimentSpec defaults;
  std::ostringstream out;
  out << "protocol=" << protocol;
  out << " nodes=" << nodes;
  out << " ratio=" << fmt_double(ratio);

  const auto emit_d = [&](const char* key, double v, double dflt) {
    if (v != dflt) out << ' ' << key << '=' << fmt_double(v);
  };
  const auto emit_n = [&](const char* key, std::size_t v, std::size_t dflt) {
    if (v != dflt) out << ' ' << key << '=' << v;
  };

  if (join != defaults.join) out << " join=" << join_name(join);
  emit_d("join-public-ms", join_public_ms, defaults.join_public_ms);
  emit_d("join-private-ms", join_private_ms, defaults.join_private_ms);
  emit_n("step-publics", step_publics, defaults.step_publics);
  emit_n("step-privates", step_privates, defaults.step_privates);
  emit_d("step-at", step_at_s, defaults.step_at_s);
  emit_d("step-every-ms", step_every_ms, defaults.step_every_ms);
  if (flash_publics + flash_privates > 0 ||
      flash_at_s != defaults.flash_at_s ||
      flash_over_s != defaults.flash_over_s) {
    out << " flash=at:" << fmt_double(flash_at_s) << ",publics:"
        << flash_publics << ",privates:" << flash_privates << ",over:"
        << fmt_double(flash_over_s);
  }
  emit_d("churn", churn, defaults.churn);
  emit_d("churn-at", churn_at_s, defaults.churn_at_s);
  emit_d("catastrophe", catastrophe, defaults.catastrophe);
  emit_d("catastrophe-at", catastrophe_at_s, defaults.catastrophe_at_s);
  if (failure_frac != 0.0 || failure_at_s != defaults.failure_at_s ||
      failure_corr != defaults.failure_corr) {
    out << " failure=at:" << fmt_double(failure_at_s) << ",frac:"
        << fmt_double(failure_frac) << ",corr:" << corr_name(failure_corr);
  }
  if (eclipse_target != 0 || eclipse_at_s != defaults.eclipse_at_s ||
      eclipse_period_s != defaults.eclipse_period_s) {
    out << " eclipse=target:" << eclipse_target << ",at:"
        << fmt_double(eclipse_at_s) << ",period:"
        << fmt_double(eclipse_period_s);
  }
  if (natflap_frac != 0.0 || natflap_at_s != defaults.natflap_at_s ||
      natflap_period_s != defaults.natflap_period_s) {
    out << " natflap=frac:" << fmt_double(natflap_frac) << ",at:"
        << fmt_double(natflap_at_s) << ",period:"
        << fmt_double(natflap_period_s);
  }
  if (adversary_hubs != 0) out << " adversary=hubs:" << adversary_hubs;
  if (loss.is_uniform()) {
    // The historic scalar form, byte-identical for every pre-existing
    // spec (uniform zero is the default and stays omitted).
    emit_d("loss", loss.pub_pub, 0.0);
  } else {
    out << " loss=";
    const char* sep = "";
    const auto emit_pair = [&](const char* pair, double rate) {
      if (rate == 0.0) return;
      out << sep << pair << ':' << fmt_double(rate);
      sep = ",";
    };
    emit_pair("pub-pub", loss.pub_pub);
    emit_pair("pub-priv", loss.pub_priv);
    emit_pair("priv-pub", loss.priv_pub);
    emit_pair("priv-priv", loss.priv_priv);
    if (loss.after_s != 0.0) {
      out << sep << "after:" << fmt_double(loss.after_s);
    }
  }
  emit_n("mtu", mtu, defaults.mtu);
  if (bandwidth_bps != 0 || bandwidth_burst != 0) {
    // Scalar shorthand when the burst is defaulted (validate guarantees
    // a burst never appears without a rate).
    if (bandwidth_burst == 0) {
      out << " bandwidth=" << bandwidth_bps;
    } else {
      out << " bandwidth=rate:" << bandwidth_bps << ",burst:"
          << bandwidth_burst;
    }
  }
  if (fec_repair != 0 || fec_rate != 0.0) {
    if (fec_rate == 0.0) {
      out << " fec=" << fec_repair;
    } else {
      out << " fec=";
      if (fec_repair != 0) out << "repair:" << fec_repair << ',';
      out << "rate:" << fmt_double(fec_rate);
    }
  }
  emit_d("skew", skew, defaults.skew);
  emit_d("private-round-scale", private_round_scale,
         defaults.private_round_scale);
  if (latency != defaults.latency) out << " latency=" << latency_name(latency);
  emit_d("latency-ms", latency_ms, defaults.latency_ms);
  emit_d("round-ms", round_ms, defaults.round_ms);
  if (natid) out << " natid=1";
  out << " duration=" << fmt_double(duration_s);
  if (record != defaults.record) out << " record=" << record_name(record);
  emit_d("record-every", record_every_s, defaults.record_every_s);
  return out.str();
}

ExperimentSpec ExperimentSpec::parse(const std::string& text) {
  ExperimentSpec spec;
  std::istringstream in(text);
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == 0 || eq == std::string::npos) {
      fail("spec: expected key=value, got \"" + token + "\"");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);

    if (key == "protocol") {
      spec.protocol = value;
    } else if (key == "nodes") {
      spec.nodes = parse_size(key, value);
    } else if (key == "ratio") {
      spec.ratio = parse_double(key, value);
    } else if (key == "join") {
      if (value == "poisson") spec.join = JoinKind::Poisson;
      else if (value == "fixed") spec.join = JoinKind::Fixed;
      else if (value == "instant") spec.join = JoinKind::Instant;
      else fail("spec: join must be poisson|fixed|instant, got \"" + value +
                "\"");
    } else if (key == "join-public-ms") {
      spec.join_public_ms = parse_double(key, value);
    } else if (key == "join-private-ms") {
      spec.join_private_ms = parse_double(key, value);
    } else if (key == "step-publics") {
      spec.step_publics = parse_size(key, value);
    } else if (key == "step-privates") {
      spec.step_privates = parse_size(key, value);
    } else if (key == "step-at") {
      spec.step_at_s = parse_double(key, value);
    } else if (key == "step-every-ms") {
      spec.step_every_ms = parse_double(key, value);
    } else if (key == "flash") {
      const ExperimentSpec defaults;
      spec.flash_publics = defaults.flash_publics;
      spec.flash_privates = defaults.flash_privates;
      spec.flash_at_s = defaults.flash_at_s;
      spec.flash_over_s = defaults.flash_over_s;
      for (const auto& [sub, text] : split_subkeys(key, value)) {
        if (sub == "at") spec.flash_at_s = parse_double("flash at", text);
        else if (sub == "publics")
          spec.flash_publics = parse_size("flash publics", text);
        else if (sub == "privates")
          spec.flash_privates = parse_size("flash privates", text);
        else if (sub == "over")
          spec.flash_over_s = parse_double("flash over", text);
        else
          fail("spec: flash subkey must be at|publics|privates|over, got \"" +
               sub + "\"");
      }
    } else if (key == "churn") {
      spec.churn = parse_double(key, value);
    } else if (key == "churn-at") {
      spec.churn_at_s = parse_double(key, value);
    } else if (key == "catastrophe") {
      spec.catastrophe = parse_double(key, value);
    } else if (key == "catastrophe-at") {
      spec.catastrophe_at_s = parse_double(key, value);
    } else if (key == "failure") {
      const ExperimentSpec defaults;
      spec.failure_frac = defaults.failure_frac;
      spec.failure_at_s = defaults.failure_at_s;
      spec.failure_corr = defaults.failure_corr;
      for (const auto& [sub, text] : split_subkeys(key, value)) {
        if (sub == "at") {
          spec.failure_at_s = parse_double("failure at", text);
        } else if (sub == "frac") {
          spec.failure_frac = parse_double("failure frac", text);
        } else if (sub == "corr") {
          if (text == "uniform") spec.failure_corr = FailureCorr::Uniform;
          else if (text == "region") spec.failure_corr = FailureCorr::Region;
          else if (text == "public") spec.failure_corr = FailureCorr::Public;
          else if (text == "private")
            spec.failure_corr = FailureCorr::Private;
          else
            fail("spec: failure corr must be uniform|region|public|private, "
                 "got \"" + text + "\"");
        } else {
          fail("spec: failure subkey must be at|frac|corr, got \"" + sub +
               "\"");
        }
      }
    } else if (key == "eclipse") {
      const ExperimentSpec defaults;
      spec.eclipse_target = defaults.eclipse_target;
      spec.eclipse_at_s = defaults.eclipse_at_s;
      spec.eclipse_period_s = defaults.eclipse_period_s;
      for (const auto& [sub, text] : split_subkeys(key, value)) {
        if (sub.empty() || sub == "target") {
          spec.eclipse_target = parse_size("eclipse target", text);
        } else if (sub == "at") {
          spec.eclipse_at_s = parse_double("eclipse at", text);
        } else if (sub == "period") {
          spec.eclipse_period_s = parse_double("eclipse period", text);
        } else {
          fail("spec: eclipse subkey must be target|at|period, got \"" + sub +
               "\"");
        }
      }
    } else if (key == "natflap") {
      const ExperimentSpec defaults;
      spec.natflap_frac = defaults.natflap_frac;
      spec.natflap_at_s = defaults.natflap_at_s;
      spec.natflap_period_s = defaults.natflap_period_s;
      for (const auto& [sub, text] : split_subkeys(key, value)) {
        if (sub.empty() || sub == "frac") {
          spec.natflap_frac = parse_double("natflap frac", text);
        } else if (sub == "at") {
          spec.natflap_at_s = parse_double("natflap at", text);
        } else if (sub == "period") {
          spec.natflap_period_s = parse_double("natflap period", text);
        } else {
          fail("spec: natflap subkey must be frac|at|period, got \"" + sub +
               "\"");
        }
      }
    } else if (key == "adversary") {
      spec.adversary_hubs = 0;
      for (const auto& [sub, text] : split_subkeys(key, value)) {
        if (sub.empty() || sub == "hubs") {
          spec.adversary_hubs = parse_size("adversary hubs", text);
        } else {
          fail("spec: adversary subkey must be hubs, got \"" + sub + "\"");
        }
      }
    } else if (key == "loss") {
      spec.loss = parse_loss(value);
    } else if (key == "mtu") {
      spec.mtu = parse_size(key, value);
    } else if (key == "bandwidth") {
      spec.bandwidth_bps = 0;
      spec.bandwidth_burst = 0;
      for (const auto& [sub, text] : split_subkeys(key, value)) {
        if (sub.empty() || sub == "rate") {
          spec.bandwidth_bps = parse_size("bandwidth rate", text);
        } else if (sub == "burst") {
          spec.bandwidth_burst = parse_size("bandwidth burst", text);
        } else {
          fail("spec: bandwidth subkey must be rate|burst, got \"" + sub +
               "\"");
        }
      }
      if (spec.bandwidth_bps == 0) {
        fail("spec: bandwidth rate must be positive (omit the key for an "
             "uncapped link)");
      }
    } else if (key == "fec") {
      spec.fec_repair = 0;
      spec.fec_rate = 0.0;
      for (const auto& [sub, text] : split_subkeys(key, value)) {
        if (sub.empty() || sub == "repair") {
          const std::size_t v = parse_size("fec repair", text);
          if (v > 0xffff) fail("spec: fec repair count out of range");
          spec.fec_repair = static_cast<std::uint32_t>(v);
        } else if (sub == "rate") {
          spec.fec_rate = parse_double("fec rate", text);
        } else {
          fail("spec: fec subkey must be repair|rate, got \"" + sub + "\"");
        }
      }
    } else if (key == "skew") {
      spec.skew = parse_double(key, value);
    } else if (key == "private-round-scale") {
      spec.private_round_scale = parse_double(key, value);
    } else if (key == "latency") {
      if (value == "king") spec.latency = World::LatencyKind::King;
      else if (value == "constant") spec.latency = World::LatencyKind::Constant;
      else if (value == "coordinate")
        spec.latency = World::LatencyKind::Coordinate;
      else fail("spec: latency must be king|constant|coordinate, got \"" +
                value + "\"");
    } else if (key == "latency-ms") {
      spec.latency_ms = parse_double(key, value);
    } else if (key == "round-ms") {
      spec.round_ms = parse_double(key, value);
    } else if (key == "natid") {
      if (value == "0") spec.natid = false;
      else if (value == "1") spec.natid = true;
      else fail("spec: natid must be 0|1, got \"" + value + "\"");
    } else if (key == "duration") {
      spec.duration_s = parse_double(key, value);
    } else if (key == "record") {
      if (value == "none") spec.record = RecordKind::None;
      else if (value == "estimation") spec.record = RecordKind::Estimation;
      else if (value == "graph") spec.record = RecordKind::Graph;
      else if (value == "graph-sampled") spec.record = RecordKind::GraphSampled;
      else if (value == "randomness") spec.record = RecordKind::Randomness;
      else fail("spec: record must be none|estimation|graph|graph-sampled|"
                "randomness, got \"" + value + "\"");
    } else if (key == "record-every") {
      spec.record_every_s = parse_double(key, value);
    } else {
      fail("spec: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

SpecBuilder& SpecBuilder::protocol(std::string spec) {
  spec_.protocol = std::move(spec);
  return *this;
}
SpecBuilder& SpecBuilder::nodes(std::size_t n) {
  spec_.nodes = n;
  return *this;
}
SpecBuilder& SpecBuilder::ratio(double omega) {
  spec_.ratio = omega;
  return *this;
}
SpecBuilder& SpecBuilder::poisson_joins(double public_ms, double private_ms) {
  spec_.join = ExperimentSpec::JoinKind::Poisson;
  spec_.join_public_ms = public_ms;
  spec_.join_private_ms = private_ms;
  return *this;
}
SpecBuilder& SpecBuilder::fixed_joins(double public_ms, double private_ms) {
  spec_.join = ExperimentSpec::JoinKind::Fixed;
  spec_.join_public_ms = public_ms;
  spec_.join_private_ms = private_ms;
  return *this;
}
SpecBuilder& SpecBuilder::instant_joins() {
  spec_.join = ExperimentSpec::JoinKind::Instant;
  return *this;
}
SpecBuilder& SpecBuilder::join_step(std::size_t publics, std::size_t privates,
                                    double at_s, double every_ms) {
  spec_.step_publics = publics;
  spec_.step_privates = privates;
  spec_.step_at_s = at_s;
  spec_.step_every_ms = every_ms;
  return *this;
}
SpecBuilder& SpecBuilder::flash_crowd(std::size_t publics,
                                      std::size_t privates, double at_s,
                                      double over_s) {
  spec_.flash_publics = publics;
  spec_.flash_privates = privates;
  spec_.flash_at_s = at_s;
  spec_.flash_over_s = over_s;
  return *this;
}
SpecBuilder& SpecBuilder::churn(double fraction, double at_s) {
  spec_.churn = fraction;
  spec_.churn_at_s = at_s;
  return *this;
}
SpecBuilder& SpecBuilder::catastrophe(double fraction, double at_s) {
  spec_.catastrophe = fraction;
  spec_.catastrophe_at_s = at_s;
  return *this;
}
SpecBuilder& SpecBuilder::correlated_failure(double fraction, double at_s,
                                             ExperimentSpec::FailureCorr corr) {
  spec_.failure_frac = fraction;
  spec_.failure_at_s = at_s;
  spec_.failure_corr = corr;
  return *this;
}
SpecBuilder& SpecBuilder::eclipse(std::size_t target, double at_s,
                                  double period_s) {
  spec_.eclipse_target = target;
  spec_.eclipse_at_s = at_s;
  spec_.eclipse_period_s = period_s;
  return *this;
}
SpecBuilder& SpecBuilder::natflap(double fraction, double at_s,
                                  double period_s) {
  spec_.natflap_frac = fraction;
  spec_.natflap_at_s = at_s;
  spec_.natflap_period_s = period_s;
  return *this;
}
SpecBuilder& SpecBuilder::adversary_hubs(std::size_t hubs) {
  spec_.adversary_hubs = hubs;
  return *this;
}
SpecBuilder& SpecBuilder::loss(const ExperimentSpec::LossSpec& loss) {
  spec_.loss = loss;
  return *this;
}
SpecBuilder& SpecBuilder::mtu(std::size_t bytes) {
  spec_.mtu = bytes;
  return *this;
}
SpecBuilder& SpecBuilder::bandwidth(std::uint64_t bytes_per_s,
                                    std::uint64_t burst_bytes) {
  spec_.bandwidth_bps = bytes_per_s;
  spec_.bandwidth_burst = burst_bytes;
  return *this;
}
SpecBuilder& SpecBuilder::fec(std::uint32_t repair, double rate) {
  spec_.fec_repair = repair;
  spec_.fec_rate = rate;
  return *this;
}
SpecBuilder& SpecBuilder::skew(double fraction) {
  spec_.skew = fraction;
  return *this;
}
SpecBuilder& SpecBuilder::private_round_scale(double scale) {
  spec_.private_round_scale = scale;
  return *this;
}
SpecBuilder& SpecBuilder::king_latency() {
  spec_.latency = World::LatencyKind::King;
  return *this;
}
SpecBuilder& SpecBuilder::constant_latency(double ms) {
  spec_.latency = World::LatencyKind::Constant;
  spec_.latency_ms = ms;
  return *this;
}
SpecBuilder& SpecBuilder::coordinate_latency() {
  spec_.latency = World::LatencyKind::Coordinate;
  return *this;
}
SpecBuilder& SpecBuilder::round_period(double ms) {
  spec_.round_ms = ms;
  return *this;
}
SpecBuilder& SpecBuilder::natid(bool enabled) {
  spec_.natid = enabled;
  return *this;
}
SpecBuilder& SpecBuilder::duration(double seconds) {
  spec_.duration_s = seconds;
  return *this;
}
SpecBuilder& SpecBuilder::record_estimation(double every_s) {
  spec_.record = ExperimentSpec::RecordKind::Estimation;
  spec_.record_every_s = every_s;
  return *this;
}
SpecBuilder& SpecBuilder::record_graph(double every_s) {
  spec_.record = ExperimentSpec::RecordKind::Graph;
  spec_.record_every_s = every_s;
  return *this;
}
SpecBuilder& SpecBuilder::record_graph_sampled(double every_s) {
  spec_.record = ExperimentSpec::RecordKind::GraphSampled;
  spec_.record_every_s = every_s;
  return *this;
}

SpecBuilder& SpecBuilder::record_randomness(double every_s) {
  spec_.record = ExperimentSpec::RecordKind::Randomness;
  spec_.record_every_s = every_s;
  return *this;
}

SpecBuilder& SpecBuilder::record_nothing() {
  spec_.record = ExperimentSpec::RecordKind::None;
  spec_.record_every_s = 0.0;
  return *this;
}

ExperimentSpec SpecBuilder::build() const {
  spec_.validate();
  return spec_;
}

Experiment::Experiment(const ExperimentSpec& spec, std::uint64_t seed,
                       std::size_t world_jobs)
    : spec_(spec) {
  spec_.validate();

  World::Config cfg;
  cfg.seed = seed;
  cfg.loss = spec_.loss.to_config();
  cfg.packet = spec_.packet_config();
  cfg.round_period = from_ms(spec_.round_ms);
  cfg.clock_skew = spec_.skew;
  cfg.private_round_scale = spec_.private_round_scale;
  cfg.latency = spec_.latency;
  cfg.constant_latency = from_ms(spec_.latency_ms);
  cfg.use_natid_protocol = spec_.natid;
  // Deliberately a constructor argument, not a spec field: a spec plus a
  // seed identifies the experiment's *results*, and the engine guarantees
  // results are byte-identical for every world_jobs value.
  cfg.world_jobs = world_jobs;
  ProtocolFactory factory =
      ProtocolRegistry::instance().make_from_spec(spec_.protocol);
  if (spec_.adversary_hubs > 0) {
    factory = make_hub_adversary_factory(std::move(factory),
                                         spec_.adversary_hubs,
                                         dialect_for_protocol(spec_.protocol));
  }
  world_ = std::make_unique<World>(cfg, std::move(factory));

  // The scenario pipeline. Scheduling order mirrors what the benches
  // always did by hand — joins, then churn, then catastrophe, then
  // recorders — so a spec-built world replays a hand-built one event for
  // event; the new families (flash crowd, correlated failure) slot in
  // after their nearest historic sibling and exist only in specs with no
  // hand-built twin.
  const auto arm = [this](std::unique_ptr<ScenarioProcess> process,
                          sim::SimTime at) {
    process->start(at);
    scenario_.push_back(std::move(process));
  };

  const std::size_t pubs = spec_.publics();
  const std::size_t privs = spec_.privates();
  switch (spec_.join) {
    case ExperimentSpec::JoinKind::Poisson:
      if (pubs > 0) {
        arm(JoinProcess::poisson(*world_, pubs, net::NatConfig::open(),
                                 from_ms(spec_.join_public_ms)),
            0);
      }
      if (privs > 0) {
        arm(JoinProcess::poisson(*world_, privs, net::NatConfig::natted(),
                                 from_ms(spec_.join_private_ms)),
            0);
      }
      break;
    case ExperimentSpec::JoinKind::Fixed:
      if (pubs > 0) {
        arm(JoinProcess::fixed(*world_, pubs, net::NatConfig::open(),
                               from_ms(spec_.join_public_ms)),
            0);
      }
      if (privs > 0) {
        arm(JoinProcess::fixed(*world_, privs, net::NatConfig::natted(),
                               from_ms(spec_.join_private_ms)),
            0);
      }
      break;
    case ExperimentSpec::JoinKind::Instant:
      // With the NAT-ID protocol on, the initial publics are operator
      // seeds: the identification protocol needs existing public
      // responders before any node can classify itself.
      for (std::size_t i = 0; i < pubs; ++i) {
        if (spec_.natid) {
          world_->spawn_seeded(net::NatConfig::open());
        } else {
          world_->spawn(net::NatConfig::open());
        }
      }
      for (std::size_t i = 0; i < privs; ++i) {
        world_->spawn(net::NatConfig::natted());
      }
      break;
  }

  if (spec_.step_publics > 0) {
    arm(JoinProcess::fixed(*world_, spec_.step_publics,
                           net::NatConfig::open(),
                           from_ms(spec_.step_every_ms)),
        from_s(spec_.step_at_s));
  }
  if (spec_.step_privates > 0) {
    arm(JoinProcess::fixed(*world_, spec_.step_privates,
                           net::NatConfig::natted(),
                           from_ms(spec_.step_every_ms)),
        from_s(spec_.step_at_s));
  }

  if (spec_.flash_publics + spec_.flash_privates > 0) {
    arm(std::make_unique<FlashCrowdProcess>(*world_, spec_.flash_publics,
                                            spec_.flash_privates,
                                            from_s(spec_.flash_over_s)),
        from_s(spec_.flash_at_s));
  }

  if (spec_.churn > 0.0) {
    arm(std::make_unique<ChurnProcess>(*world_, spec_.churn,
                                       net::NatConfig::open(),
                                       net::NatConfig::natted()),
        from_s(spec_.churn_at_s));
  }

  if (spec_.catastrophe > 0.0) {
    arm(std::make_unique<CatastropheProcess>(*world_, spec_.catastrophe),
        from_s(spec_.catastrophe_at_s));
  }

  if (spec_.failure_frac > 0.0) {
    arm(std::make_unique<CorrelatedFailureProcess>(*world_,
                                                   spec_.failure_frac,
                                                   spec_.failure_corr),
        from_s(spec_.failure_at_s));
  }

  if (spec_.eclipse_target != 0) {
    arm(std::make_unique<EclipseProcess>(
            *world_, static_cast<net::NodeId>(spec_.eclipse_target),
            from_s(spec_.eclipse_period_s)),
        from_s(spec_.eclipse_at_s));
  }

  if (spec_.natflap_frac > 0.0) {
    arm(std::make_unique<NatFlapProcess>(*world_, spec_.natflap_frac,
                                         from_s(spec_.natflap_period_s)),
        from_s(spec_.natflap_at_s));
  }

  switch (spec_.record) {
    case ExperimentSpec::RecordKind::None:
      break;
    case ExperimentSpec::RecordKind::Estimation: {
      const sim::Duration every = spec_.record_every_s > 0.0
                                      ? from_s(spec_.record_every_s)
                                      : sim::sec(1);
      estimation_ = std::make_unique<EstimationRecorder>(
          *world_, EstimationRecorderOptions{every, 2});
      estimation_->start(every);
      break;
    }
    case ExperimentSpec::RecordKind::Graph: {
      const sim::Duration every = spec_.record_every_s > 0.0
                                      ? from_s(spec_.record_every_s)
                                      : sim::sec(10);
      graph_stats_ = std::make_unique<GraphStatsRecorder>(
          *world_, GraphStatsRecorderOptions{every, 128});
      graph_stats_->start(every);
      break;
    }
    case ExperimentSpec::RecordKind::GraphSampled: {
      SampledGraphStatsRecorderOptions opt;
      if (spec_.record_every_s > 0.0) opt.interval = from_s(spec_.record_every_s);
      graph_sampled_ = std::make_unique<SampledGraphStatsRecorder>(*world_, opt);
      graph_sampled_->start(opt.interval);
      break;
    }
    case ExperimentSpec::RecordKind::Randomness: {
      const sim::Duration every = spec_.record_every_s > 0.0
                                      ? from_s(spec_.record_every_s)
                                      : sim::sec(10);
      randomness_ = std::make_unique<RandomnessAuditRecorder>(
          *world_, RandomnessRecorderOptions{every});
      randomness_->start(every);
      break;
    }
  }
}

ScenarioProcess::Stats Experiment::scenario_stats() const {
  ScenarioProcess::Stats total;
  for (const auto& process : scenario_) {
    const auto s = process->stats();
    total.spawned += s.spawned;
    total.killed += s.killed;
    total.replaced += s.replaced;
    total.reclassified += s.reclassified;
  }
  return total;
}

}  // namespace croupier::run
