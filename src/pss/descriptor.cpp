#include "pss/descriptor.hpp"

#include <algorithm>

namespace croupier::pss {

void encode(wire::Writer& w, const NodeDescriptor& d) {
  // 4 B address + 2 B port stand-in + 1 B NAT type + 1 B age (saturated),
  // matching what a deployment would ship per entry.
  w.u32(d.id);
  w.u16(static_cast<std::uint16_t>(0x2710));  // fixed gossip port
  w.u8(static_cast<std::uint8_t>(d.nat_type));
  w.u8(static_cast<std::uint8_t>(std::min<std::uint16_t>(d.age, 0xff)));
}

NodeDescriptor decode_descriptor(wire::Reader& r) {
  NodeDescriptor d;
  d.id = r.u32();
  (void)r.u16();  // port
  d.nat_type = static_cast<NatType>(r.u8());
  d.age = r.u8();
  return d;
}

void encode(wire::Writer& w, const std::vector<NodeDescriptor>& v) {
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(v.size(), 0xff)));
  for (const auto& d : v) encode(w, d);
}

std::vector<NodeDescriptor> decode_descriptors(wire::Reader& r) {
  const std::size_t n = r.u8();
  std::vector<NodeDescriptor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(decode_descriptor(r));
  }
  return out;
}

}  // namespace croupier::pss
