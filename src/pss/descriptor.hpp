// Node descriptors: the unit of gossip in every PSS here.
//
// A descriptor names a node, records its NAT classification, and carries
// an age in gossip rounds since the descriptor was created by its subject
// (paper §VI: "a node descriptor contains the node's address, its NAT
// type, and a timestamp"). The wire encoding is sized like a real
// deployment's (IPv4 address + port + type + age = 8 bytes) so overhead
// measurements are honest.
#pragma once

#include <cstdint>
#include <vector>

#include "net/address.hpp"
#include "wire/wire.hpp"

namespace croupier::pss {

using net::NatType;
using net::NodeId;

struct NodeDescriptor {
  NodeId id = net::kNilNode;
  NatType nat_type = NatType::Public;
  std::uint16_t age = 0;  // rounds since creation; saturates

  /// A fresh descriptor for the subject node itself.
  static NodeDescriptor self(NodeId id, NatType type) {
    return NodeDescriptor{id, type, 0};
  }

  void bump_age() {
    if (age < 0xffff) ++age;
  }

  friend bool operator==(const NodeDescriptor&,
                         const NodeDescriptor&) = default;
};

/// Bytes one descriptor occupies on the wire.
constexpr std::size_t kDescriptorWireBytes = 8;

void encode(wire::Writer& w, const NodeDescriptor& d);
NodeDescriptor decode_descriptor(wire::Reader& r);

void encode(wire::Writer& w, const std::vector<NodeDescriptor>& v);
std::vector<NodeDescriptor> decode_descriptors(wire::Reader& r);

}  // namespace croupier::pss
