#include "pss/protocol.hpp"

namespace croupier::pss {

std::vector<net::NodeId> PeerSampler::usable_neighbors(
    const AliveFn& alive) const {
  std::vector<net::NodeId> out;
  for (net::NodeId id : out_neighbors()) {
    if (alive(id)) out.push_back(id);
  }
  return out;
}

}  // namespace croupier::pss
