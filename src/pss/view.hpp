// Bounded partial view with the paper's selection/merge policies.
//
// All four protocols (Croupier, Cyclon, Gozar, Nylon) use the same view
// mechanics from Jelasity et al. [7]:
//  - "tail" node selection: pick the descriptor with the highest age;
//  - random bounded subsets for the exchanged state;
//  - "swapper" view merging (paper Algorithm 2, updateView): keep the
//    newer copy of a known node, fill free space, and once full evict
//    exactly the descriptors that were shipped to the other side.
//
// The view is templated on the descriptor type because Gozar and Nylon
// decorate descriptors with traversal state (relay parents / RVPs); any
// Desc with `id`, `age`, and `bump_age()` works.
#pragma once

#include <algorithm>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "net/address.hpp"
#include "sim/rng.hpp"

namespace croupier::pss {

/// View-merge policy (Jelasity et al. [7]). The paper's comparison runs
/// every system with Swapper; Healer is provided for ablating that
/// design choice (bench/ablation_merge).
enum class MergePolicy : std::uint8_t {
  Swapper = 0,  // evict exactly what was sent; minimal information loss
  Healer = 1,   // keep the freshest descriptors; fastest staleness purge
};

template <typename Desc>
class PartialView {
 public:
  explicit PartialView(std::size_t capacity) : capacity_(capacity) {
    CROUPIER_ASSERT(capacity > 0);
    entries_.reserve(capacity);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Rebounds the view. Shrinking evicts oldest descriptors first. Used by
  /// Croupier's ratio-proportional view sizing, where the public/private
  /// capacity split tracks the estimated ratio.
  void set_capacity(std::size_t capacity) {
    CROUPIER_ASSERT(capacity > 0);
    capacity_ = capacity;
    while (entries_.size() > capacity_) {
      auto it = std::max_element(
          entries_.begin(), entries_.end(),
          [](const Desc& a, const Desc& b) { return a.age < b.age; });
      entries_.erase(it);
    }
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }

  [[nodiscard]] const std::vector<Desc>& entries() const { return entries_; }

  [[nodiscard]] bool contains(net::NodeId id) const {
    return find_index(id).has_value();
  }

  [[nodiscard]] const Desc* find(net::NodeId id) const {
    const auto idx = find_index(id);
    return idx.has_value() ? &entries_[*idx] : nullptr;
  }

  /// Ages every descriptor by one round.
  void age_all() {
    for (auto& d : entries_) d.bump_age();
  }

  /// Tail policy: the oldest descriptor (ties broken by position, which is
  /// deterministic). Empty view yields nullopt.
  [[nodiscard]] std::optional<Desc> oldest() const {
    if (entries_.empty()) return std::nullopt;
    const auto it = std::max_element(
        entries_.begin(), entries_.end(),
        [](const Desc& a, const Desc& b) { return a.age < b.age; });
    return *it;
  }

  /// Removes a node if present; returns whether it was there.
  bool remove(net::NodeId id) {
    const auto idx = find_index(id);
    if (!idx.has_value()) return false;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(*idx));
    return true;
  }

  /// Inserts if the node is absent and space remains. Returns whether the
  /// descriptor was inserted.
  bool add_if_room(const Desc& d) {
    if (full() || contains(d.id)) return false;
    entries_.push_back(d);
    return true;
  }

  /// Unconditional insert used at bootstrap: if full, replaces the oldest
  /// descriptor; if the node is present, keeps the newer copy.
  void force_add(const Desc& d) {
    if (auto idx = find_index(d.id); idx.has_value()) {
      if (d.age < entries_[*idx].age) entries_[*idx] = d;
      return;
    }
    if (!full()) {
      entries_.push_back(d);
      return;
    }
    auto it = std::max_element(
        entries_.begin(), entries_.end(),
        [](const Desc& a, const Desc& b) { return a.age < b.age; });
    *it = d;
  }

  /// Uniformly random subset of up to n descriptors (without replacement).
  [[nodiscard]] std::vector<Desc> random_subset(std::size_t n,
                                                sim::RngStream& rng) const {
    return rng.sample(std::span<const Desc>(entries_), n);
  }

  /// Random subset of up to n descriptors, never including `excluded`.
  [[nodiscard]] std::vector<Desc> random_subset_excluding(
      std::size_t n, net::NodeId excluded, sim::RngStream& rng) const {
    std::vector<Desc> pool;
    pool.reserve(entries_.size());
    for (const auto& d : entries_) {
      if (d.id != excluded) pool.push_back(d);
    }
    return rng.sample(std::span<const Desc>(pool), n);
  }

  /// Uniformly random single entry.
  [[nodiscard]] std::optional<Desc> random_entry(sim::RngStream& rng) const {
    if (entries_.empty()) return std::nullopt;
    return entries_[rng.index(entries_.size())];
  }

  /// Healer merge (Jelasity et al. [7]): integrates `received` keeping
  /// the *freshest* descriptors overall — when the view overflows, the
  /// oldest entries are evicted regardless of what was sent. Heals stale
  /// state fastest at the cost of more information loss than swapper.
  /// `self` is never inserted.
  void merge_healer(std::span<const Desc> received, net::NodeId self) {
    for (const auto& r : received) {
      if (r.id == self) continue;
      if (auto idx = find_index(r.id); idx.has_value()) {
        if (r.age < entries_[*idx].age) entries_[*idx] = r;
        continue;
      }
      if (!full()) {
        entries_.push_back(r);
        continue;
      }
      auto it = std::max_element(
          entries_.begin(), entries_.end(),
          [](const Desc& a, const Desc& b) { return a.age < b.age; });
      if (it->age > r.age) *it = r;  // replace only if strictly fresher
    }
  }

  /// Swapper merge (paper Algorithm 2, `updateView`): integrates
  /// `received` into the view given that `sent` was shipped to the peer.
  /// `self` is never inserted.
  void merge_swapper(std::span<const Desc> sent, std::span<const Desc> received,
                     net::NodeId self) {
    std::deque<net::NodeId> evictable;
    for (const auto& d : sent) evictable.push_back(d.id);

    for (const auto& r : received) {
      if (r.id == self) continue;
      if (auto idx = find_index(r.id); idx.has_value()) {
        // Node already known: keep the more recent descriptor.
        if (r.age < entries_[*idx].age) entries_[*idx] = r;
        continue;
      }
      if (!full()) {
        entries_.push_back(r);
        continue;
      }
      // Full: evict one of the descriptors we sent away (swap semantics —
      // minimal information loss, per the swapper policy).
      bool placed = false;
      while (!evictable.empty() && !placed) {
        const net::NodeId victim = evictable.front();
        evictable.pop_front();
        if (auto vidx = find_index(victim); vidx.has_value()) {
          entries_[*vidx] = r;
          placed = true;
        }
      }
      // No sent descriptor remains in the view: drop `r` (view stays full).
    }
  }

  void clear() { entries_.clear(); }

 private:
  [[nodiscard]] std::optional<std::size_t> find_index(net::NodeId id) const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) return i;
    }
    return std::nullopt;
  }

  std::size_t capacity_;
  std::vector<Desc> entries_;
};

/// Dispatches a merge through the configured policy.
template <typename Desc>
void merge_by_policy(PartialView<Desc>& view, MergePolicy policy,
                     std::span<const Desc> sent,
                     std::span<const Desc> received, net::NodeId self) {
  if (policy == MergePolicy::Swapper) {
    view.merge_swapper(sent, received, self);
  } else {
    view.merge_healer(received, self);
  }
}

}  // namespace croupier::pss
