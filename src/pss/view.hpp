// Bounded partial view with the paper's selection/merge policies.
//
// All four protocols (Croupier, Cyclon, Gozar, Nylon) use the same view
// mechanics from Jelasity et al. [7]:
//  - "tail" node selection: pick the descriptor with the highest age;
//  - random bounded subsets for the exchanged state;
//  - "swapper" view merging (paper Algorithm 2, updateView): keep the
//    newer copy of a known node, fill free space, and once full evict
//    exactly the descriptors that were shipped to the other side.
//
// The view is templated on the descriptor type because Gozar and Nylon
// decorate descriptors with traversal state (relay parents / RVPs); any
// Desc with a ViewTraits specialization (pss/view_store.hpp) works.
//
// Storage is the columnar ViewStore: separate id/age/NAT columns in one
// arena block, an O(1) id -> slot index, and an incrementally-maintained
// first-max-age slot. The semantics here are unchanged from the
// vector-of-structs original — same slot ordering, same tie-breaks, same
// RNG draw sequences — so experiment output is byte-identical
// (tests/view_store_test.cpp pins this against a reference
// implementation).
#pragma once

#include <algorithm>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "net/address.hpp"
#include "pss/view_store.hpp"
#include "sim/conflict.hpp"
#include "sim/rng.hpp"

namespace croupier::pss {

/// View-merge policy (Jelasity et al. [7]). The paper's comparison runs
/// every system with Swapper; Healer is provided for ablating that
/// design choice (bench/ablation_merge).
enum class MergePolicy : std::uint8_t {
  Swapper = 0,  // evict exactly what was sent; minimal information loss
  Healer = 1,   // keep the freshest descriptors; fastest staleness purge
};

template <typename Desc>
class PartialView {
 public:
  /// Iterable snapshot view over the store: materializes descriptors
  /// from the columns on demand (all call sites range-for the result).
  class Entries {
   public:
    class iterator {
     public:
      using value_type = Desc;
      using difference_type = std::ptrdiff_t;

      iterator(const ViewStore<Desc>* s, std::size_t i) : s_(s), i_(i) {}
      Desc operator*() const { return s_->get(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.i_ == b.i_;
      }

     private:
      const ViewStore<Desc>* s_;
      std::size_t i_;
    };

    explicit Entries(const ViewStore<Desc>& s) : s_(&s) {}
    [[nodiscard]] std::size_t size() const { return s_->size(); }
    [[nodiscard]] bool empty() const { return s_->size() == 0; }
    [[nodiscard]] Desc operator[](std::size_t i) const { return s_->get(i); }
    [[nodiscard]] iterator begin() const { return iterator(s_, 0); }
    [[nodiscard]] iterator end() const { return iterator(s_, s_->size()); }

   private:
    const ViewStore<Desc>* s_;
  };

  explicit PartialView(std::size_t capacity, ViewArena* arena = nullptr)
      : capacity_(capacity), store_(capacity, arena) {
    CROUPIER_ASSERT(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Tags the view with the node that owns it, for the conflict checker
  /// (CROUPIER_CONFLICT_CHECK builds): every mutation then asserts it
  /// happens on that node's own shard. Untagged views (tests, benches)
  /// keep owner 0 and are never checked. No-op in normal builds.
#if defined(CROUPIER_CONFLICT_CHECK)
  void set_owner(net::NodeId owner) { owner_ = owner; }
#else
  void set_owner(net::NodeId /*owner*/) {}
#endif

  /// Rebounds the view. Shrinking evicts oldest descriptors first (the
  /// repeated first-max eviction of the original, computed as one pass:
  /// the k evicted slots are exactly the k largest ages, ties broken by
  /// earliest slot). Used by Croupier's ratio-proportional view sizing,
  /// where the public/private capacity split tracks the estimated ratio.
  void set_capacity(std::size_t capacity) {
    CROUPIER_ASSERT(capacity > 0);
    record_mutation("PartialView::set_capacity");
    capacity_ = capacity;
    store_.reserve(capacity);
    if (store_.size() <= capacity_) return;

    const std::size_t evict = store_.size() - capacity_;
    std::vector<std::uint32_t> order(store_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    // Oldest first; ties by earliest slot — the order repeated
    // remove-first-max would pick victims in.
    std::sort(order.begin(), order.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                if (store_.age_at(a) != store_.age_at(b)) {
                  return store_.age_at(a) > store_.age_at(b);
                }
                return a < b;
              });
    order.resize(evict);
    std::sort(order.begin(), order.end());
    store_.erase_slots_sorted(order);
  }

  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] bool empty() const { return store_.size() == 0; }
  [[nodiscard]] bool full() const { return store_.size() >= capacity_; }

  [[nodiscard]] Entries entries() const { return Entries(store_); }

  [[nodiscard]] bool contains(net::NodeId id) const {
    return store_.slot_of(id).has_value();
  }

  [[nodiscard]] std::optional<Desc> find(net::NodeId id) const {
    const auto slot = store_.slot_of(id);
    if (!slot.has_value()) return std::nullopt;
    return store_.get(*slot);
  }

  /// Ages every descriptor by one round.
  void age_all() {
    record_mutation("PartialView::age_all");
    store_.bump_ages();
  }

  /// Tail policy: the oldest descriptor (ties broken by position, which is
  /// deterministic). Empty view yields nullopt.
  [[nodiscard]] std::optional<Desc> oldest() const {
    if (store_.size() == 0) return std::nullopt;
    return store_.get(store_.oldest_slot());
  }

  /// Removes a node if present; returns whether it was there.
  bool remove(net::NodeId id) {
    const auto slot = store_.slot_of(id);
    if (!slot.has_value()) return false;
    record_mutation("PartialView::remove");
    store_.erase_at(*slot);
    return true;
  }

  /// Inserts if the node is absent and space remains. Returns whether the
  /// descriptor was inserted.
  bool add_if_room(const Desc& d) {
    if (full() || contains(d.id)) return false;
    record_mutation("PartialView::add_if_room");
    store_.push_back(d);
    return true;
  }

  /// Unconditional insert used at bootstrap: if full, replaces the oldest
  /// descriptor; if the node is present, keeps the newer copy.
  void force_add(const Desc& d) {
    record_mutation("PartialView::force_add");
    if (const auto slot = store_.slot_of(d.id); slot.has_value()) {
      if (d.age < store_.age_at(*slot)) store_.assign(*slot, d);
      return;
    }
    if (!full()) {
      store_.push_back(d);
      return;
    }
    store_.assign(store_.oldest_slot(), d);
  }

  /// Uniformly random subset of up to n descriptors (without replacement).
  [[nodiscard]] std::vector<Desc> random_subset(std::size_t n,
                                                sim::RngStream& rng) const {
    std::vector<Desc> pool = materialize();
    pool.resize(rng.sample_prefix(std::span<Desc>(pool), n));
    return pool;
  }

  /// Random subset of up to n descriptors, never including `excluded`.
  /// One pass: the pool is materialized already filtered and sampled in
  /// place (no second copy inside the RNG).
  [[nodiscard]] std::vector<Desc> random_subset_excluding(
      std::size_t n, net::NodeId excluded, sim::RngStream& rng) const {
    std::vector<Desc> pool;
    pool.reserve(store_.size());
    for (std::size_t i = 0; i < store_.size(); ++i) {
      if (store_.id_at(i) != excluded) pool.push_back(store_.get(i));
    }
    pool.resize(rng.sample_prefix(std::span<Desc>(pool), n));
    return pool;
  }

  /// Uniformly random single entry.
  [[nodiscard]] std::optional<Desc> random_entry(sim::RngStream& rng) const {
    if (store_.size() == 0) return std::nullopt;
    return store_.get(rng.index(store_.size()));
  }

  /// Healer merge (Jelasity et al. [7]): integrates `received` keeping
  /// the *freshest* descriptors overall — when the view overflows, the
  /// oldest entries are evicted regardless of what was sent. Heals stale
  /// state fastest at the cost of more information loss than swapper.
  /// `self` is never inserted.
  void merge_healer(std::span<const Desc> received, net::NodeId self) {
    record_mutation("PartialView::merge_healer");
    for (const auto& r : received) {
      if (r.id == self) continue;
      if (const auto slot = store_.slot_of(r.id); slot.has_value()) {
        if (r.age < store_.age_at(*slot)) store_.assign(*slot, r);
        continue;
      }
      if (!full()) {
        store_.push_back(r);
        continue;
      }
      const auto victim = store_.oldest_slot();
      if (store_.age_at(victim) > r.age) {
        store_.assign(victim, r);  // replace only if strictly fresher
      }
    }
  }

  /// Swapper merge (paper Algorithm 2, `updateView`): integrates
  /// `received` into the view given that `sent` was shipped to the peer.
  /// `self` is never inserted.
  void merge_swapper(std::span<const Desc> sent, std::span<const Desc> received,
                     net::NodeId self) {
    record_mutation("PartialView::merge_swapper");
    std::deque<net::NodeId> evictable;
    for (const auto& d : sent) evictable.push_back(d.id);

    for (const auto& r : received) {
      if (r.id == self) continue;
      if (const auto slot = store_.slot_of(r.id); slot.has_value()) {
        // Node already known: keep the more recent descriptor.
        if (r.age < store_.age_at(*slot)) store_.assign(*slot, r);
        continue;
      }
      if (!full()) {
        store_.push_back(r);
        continue;
      }
      // Full: evict one of the descriptors we sent away (swap semantics —
      // minimal information loss, per the swapper policy).
      bool placed = false;
      while (!evictable.empty() && !placed) {
        const net::NodeId victim = evictable.front();
        evictable.pop_front();
        if (const auto vslot = store_.slot_of(victim); vslot.has_value()) {
          store_.assign(*vslot, r);
          placed = true;
        }
      }
      // No sent descriptor remains in the view: drop `r` (view stays full).
    }
  }

  void clear() {
    record_mutation("PartialView::clear");
    store_.clear();
  }

 private:
  [[nodiscard]] std::vector<Desc> materialize() const {
    std::vector<Desc> out;
    store_.materialize_into(out);
    return out;
  }

  /// Conflict-checker probe on every mutation path; compiles to nothing
  /// in normal builds.
  void record_mutation(const char* site) const {
#if defined(CROUPIER_CONFLICT_CHECK)
    sim::conflict::record_write(owner_, site);
#else
    (void)site;
#endif
  }

  std::size_t capacity_;
  ViewStore<Desc> store_;
#if defined(CROUPIER_CONFLICT_CHECK)
  net::NodeId owner_ = 0;  // 0 = untagged; never checked
#endif
};

/// Dispatches a merge through the configured policy.
template <typename Desc>
void merge_by_policy(PartialView<Desc>& view, MergePolicy policy,
                     std::span<const Desc> sent,
                     std::span<const Desc> received, net::NodeId self) {
  if (policy == MergePolicy::Swapper) {
    view.merge_swapper(sent, received, self);
  } else {
    view.merge_healer(received, self);
  }
}

}  // namespace croupier::pss
