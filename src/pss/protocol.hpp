// The peer-sampling-service interface every protocol implements.
//
// The runtime drives protocols: it constructs one PeerSampler per node,
// calls init() at join, calls round() once per gossip period (with
// per-node jitter standing in for clock skew), and routes network messages
// to on_message(). Applications consume the service through sample();
// metrics consume it through out_neighbors()/usable_neighbors().
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "net/bootstrap.hpp"
#include "net/network.hpp"
#include "pss/descriptor.hpp"
#include "pss/view.hpp"
#include "sim/rng.hpp"

namespace croupier::pss {

/// Parameters shared by all PSS protocols (paper §VII-A: view size 10,
/// shuffle subset 5, round period 1 s).
struct PssConfig {
  std::size_t view_size = 10;
  std::size_t shuffle_size = 5;
  sim::Duration round_period = sim::sec(1);
  std::size_t bootstrap_fanout = 5;  // publics handed to a joining node
  MergePolicy merge = MergePolicy::Swapper;
};

class PeerSampler : public net::MessageHandler {
 public:
  struct Context {
    net::NodeId self = net::kNilNode;
    net::NatType nat_type = net::NatType::Public;  // as identified at join
    net::Network* network = nullptr;
    net::BootstrapServer* bootstrap = nullptr;
    sim::RngStream rng;
    /// Pool the node's view columns are carved from (World-owned; may be
    /// null, e.g. in protocol unit tests — views then fall back to heap).
    ViewArena* arena = nullptr;
  };

  explicit PeerSampler(Context ctx) : ctx_(std::move(ctx)) {
    CROUPIER_ASSERT(ctx_.network != nullptr);
    CROUPIER_ASSERT(ctx_.bootstrap != nullptr);
  }

  /// Called once when the node joins, before the first round.
  virtual void init() = 0;

  /// One gossip round (paper Algorithm 2, `Round`).
  virtual void round() = 0;

  /// Draws one (approximately) uniform random sample of a live node.
  virtual std::optional<NodeDescriptor> sample() = 0;

  /// Current out-edges of the overlay (targets of all view entries).
  [[nodiscard]] virtual std::vector<net::NodeId> out_neighbors() const = 0;

  /// Out-edges that would still be *usable* for an exchange given the
  /// liveness predicate — the connectivity notion behind paper fig. 7b.
  /// A NAT-aware protocol can only use an edge to a private node if its
  /// traversal machinery (croupier / relay / RVP chain) is still alive;
  /// protocols override this accordingly.
  using AliveFn = std::function<bool(net::NodeId)>;
  [[nodiscard]] virtual std::vector<net::NodeId> usable_neighbors(
      const AliveFn& alive) const;

  /// The node's current estimate of the public/private ratio ω, for
  /// protocols that maintain one (Croupier). Others report nothing.
  [[nodiscard]] virtual std::optional<double> ratio_estimate() const {
    return std::nullopt;
  }

  [[nodiscard]] net::NodeId self() const { return ctx_.self; }
  [[nodiscard]] net::NatType nat_type() const { return ctx_.nat_type; }

 protected:
  [[nodiscard]] net::Network& network() { return *ctx_.network; }
  [[nodiscard]] net::BootstrapServer& bootstrap() { return *ctx_.bootstrap; }
  [[nodiscard]] sim::RngStream& rng() { return ctx_.rng; }

  Context ctx_;
};

}  // namespace croupier::pss
