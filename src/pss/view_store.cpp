#include "pss/view_store.hpp"

namespace croupier::pss {

std::byte* ViewArena::allocate(std::size_t bytes) {
  CROUPIER_ASSERT(bytes > 0);
  bytes = (bytes + 7) & ~std::size_t{7};
  std::lock_guard<std::mutex> lock(mu_);

  if (auto it = free_.find(bytes); it != free_.end() && !it->second.empty()) {
    std::byte* block = it->second.back();
    it->second.pop_back();
    ++stats_.reuses;
    ++stats_.live_blocks;
    stats_.live_bytes += bytes;
    return block;
  }

  if (bytes > cursor_left_) {
    // Oversized requests get a dedicated slab; normal ones start a fresh
    // slab and the remainder of the old one is abandoned (bounded waste:
    // view blocks are a few hundred bytes against 1 MiB slabs).
    const std::size_t slab_bytes = std::max(bytes, kSlabBytes);
    slabs_.push_back(std::make_unique<std::byte[]>(slab_bytes));
    cursor_ = slabs_.back().get();
    cursor_left_ = slab_bytes;
    ++stats_.slab_count;
    stats_.slab_bytes += slab_bytes;
  }

  std::byte* block = cursor_;
  cursor_ += bytes;
  cursor_left_ -= bytes;
  ++stats_.live_blocks;
  stats_.live_bytes += bytes;
  return block;
}

void ViewArena::release(std::byte* block, std::size_t bytes) {
  if (block == nullptr) return;
  bytes = (bytes + 7) & ~std::size_t{7};
  std::lock_guard<std::mutex> lock(mu_);
  free_[bytes].push_back(block);
  CROUPIER_ASSERT(stats_.live_blocks > 0);
  --stats_.live_blocks;
  stats_.live_bytes -= bytes;
}

ViewArena::Stats ViewArena::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace croupier::pss
