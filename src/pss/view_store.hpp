// Columnar (struct-of-arrays) storage for partial views, plus the
// World-owned arena the per-node view blocks are carved from.
//
// Motivation (million-node Worlds): a PartialView held a
// std::vector<Desc> — one heap block per view, descriptors stored as
// array-of-structs with padding, and every membership probe a linear
// scan. At 10^6 nodes that is 2·10^6 malloc'd vectors and O(view) scans
// on the shuffle hot path. ViewStore instead packs each view into one
// arena block laid out as separate columns:
//
//   ids    : NodeId[R]            4 bytes/entry
//   ages   : uint16_t[R]          2 bytes/entry, saturating at 0xffff
//   index  : uint16_t[H]          open-addressed id -> slot table (O(1))
//   nats   : uint8_t[ceil(R/4)]   NAT class, dictionary-encoded to 2 bits
//
// The index column is size-adaptive: paper-sized views (capacity <= 64)
// omit it entirely — slot_of scans the packed id column, which at 4
// bytes/entry beats any hash for one or two cache lines — while larger
// capacities carry the table, maintained incrementally (backward-shift
// deletion on erase), so membership stays O(1) instead of degrading
// linearly as views grow.
//
// The NAT column is dictionary-encoded in the column-store sense
// (hyrise-style): the column holds 2-bit code points, and NatDictionary
// maps codes to the NatType domain values. Two codes are in use today
// (Public/Private); the width leaves room for four without a layout
// change.
//
// Descriptor types that decorate the base (id, nat, age) triple with
// protocol state (Gozar's relay parents, Nylon's learned_from) declare
// the decoration through a ViewTraits specialization; it is stored in a
// side column so the hot columns stay packed.
//
// Slot semantics are identical to the vector they replace: slots are
// ordered, erase shifts subsequent slots down (preserving relative
// order), and the "oldest" slot is the FIRST slot of maximal age. The
// max-age slot is maintained incrementally instead of recomputed with
// std::max_element per query. None of this changes observable behavior:
// the same operation sequence yields the same slot contents in the same
// order, so selection, merging, and therefore output bytes are
// unchanged (pinned by tests/view_store_test.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "net/address.hpp"
#include "pss/descriptor.hpp"

namespace croupier::pss {

/// Pool allocator for view column blocks, owned by the World. Blocks
/// come back on node death and are reused by the next joiner, so heavy
/// churn does not touch the system allocator. Thread-safe: allocation
/// happens on serial-affinity spawn/kill events, but the parallel
/// engine's workers may still be in flight, so the free lists are
/// guarded.
class ViewArena {
 public:
  ViewArena() = default;
  ViewArena(const ViewArena&) = delete;
  ViewArena& operator=(const ViewArena&) = delete;

  /// Returns an 8-byte-aligned block of at least `bytes` bytes.
  std::byte* allocate(std::size_t bytes);

  /// Returns a block to the pool. `bytes` must match the allocate() size.
  void release(std::byte* block, std::size_t bytes);

  struct Stats {
    std::size_t slab_count = 0;   // backing slabs obtained from the heap
    std::size_t slab_bytes = 0;   // total bytes of backing storage
    std::size_t live_blocks = 0;  // blocks currently handed out
    std::size_t live_bytes = 0;
    std::size_t reuses = 0;  // allocations served from a free list
  };
  [[nodiscard]] Stats stats() const;

 private:
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 20;

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<std::byte*>> free_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  std::byte* cursor_ = nullptr;
  std::size_t cursor_left_ = 0;
  Stats stats_;
};

/// The 2-bit NAT-class dictionary: code points <-> domain values.
struct NatDictionary {
  static constexpr std::uint8_t kBits = 2;
  static constexpr std::uint8_t kMask = 0x3;

  static constexpr std::uint8_t encode(net::NatType t) {
    return static_cast<std::uint8_t>(t) & kMask;
  }
  static constexpr net::NatType decode(std::uint8_t code) {
    return static_cast<net::NatType>(code);
  }
};

/// Describes how a descriptor type maps onto the columns. Specialize for
/// every Desc used with ViewStore/PartialView. `Extra` is the
/// protocol-specific decoration beyond (id, nat, age); use an empty
/// struct and kHasExtra = false when there is none.
template <typename Desc>
struct ViewTraits;

template <>
struct ViewTraits<NodeDescriptor> {
  static constexpr bool kHasExtra = false;
  struct Extra {};

  static net::NodeId id(const NodeDescriptor& d) { return d.id; }
  static net::NatType nat(const NodeDescriptor& d) { return d.nat_type; }
  static std::uint16_t age(const NodeDescriptor& d) { return d.age; }
  static Extra extra(const NodeDescriptor&) { return {}; }
  static NodeDescriptor make(net::NodeId id, net::NatType nat,
                             std::uint16_t age, const Extra&) {
    return NodeDescriptor{id, nat, age};
  }
};

/// Columnar bounded sequence of descriptors with an O(1) id -> slot
/// index and an incrementally-maintained first-max-age slot.
template <typename Desc>
class ViewStore {
 public:
  using Traits = ViewTraits<Desc>;

  explicit ViewStore(std::size_t capacity, ViewArena* arena = nullptr)
      : arena_(arena) {
    CROUPIER_ASSERT(capacity > 0);
    grow_storage(static_cast<std::uint32_t>(capacity));
  }

  ~ViewStore() { free_block(); }

  ViewStore(const ViewStore&) = delete;
  ViewStore& operator=(const ViewStore&) = delete;

  ViewStore(ViewStore&& other) noexcept { steal(other); }
  ViewStore& operator=(ViewStore&& other) noexcept {
    if (this != &other) {
      free_block();
      steal(other);
    }
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t reserved() const { return reserved_; }

  /// Ensures storage for at least `capacity` slots (never shrinks:
  /// Croupier's ratio-proportional sizing oscillates every round, and
  /// realloc thrash would cost more than the slack).
  void reserve(std::size_t capacity) {
    if (capacity > reserved_) {
      grow_storage(static_cast<std::uint32_t>(
          std::max<std::size_t>(capacity, std::size_t{reserved_} * 2)));
    }
  }

  // The per-slot readers skip bounds assertions: they sit inside every
  // hot loop, callers derive i from size()/slot_of(), and the mutation
  // ops still assert. tests/view_store_test.cpp pins the semantics.
  [[nodiscard]] net::NodeId id_at(std::size_t i) const { return ids_[i]; }
  [[nodiscard]] std::uint16_t age_at(std::size_t i) const { return ages_[i]; }
  [[nodiscard]] net::NatType nat_at(std::size_t i) const {
    const std::uint8_t byte = nats_[i >> 2];
    return NatDictionary::decode(
        static_cast<std::uint8_t>(byte >> ((i & 3u) * NatDictionary::kBits)) &
        NatDictionary::kMask);
  }

  /// Materializes the descriptor stored at slot i.
  [[nodiscard]] Desc get(std::size_t i) const {
    if constexpr (Traits::kHasExtra) {
      return Traits::make(ids_[i], nat_at(i), ages_[i], extra_[i]);
    } else {
      return Traits::make(ids_[i], nat_at(i), ages_[i], {});
    }
  }

  /// Bulk-materializes every slot into `out` (replacing its contents) —
  /// the subset/sampling paths' copy, done in one sized pass.
  void materialize_into(std::vector<Desc>& out) const {
    out.clear();
    out.reserve(size_);
    for (std::uint32_t i = 0; i < size_; ++i) out.push_back(get(i));
  }

  /// Overwrites slot i (the id may change — swapper eviction does this).
  void assign(std::size_t i, const Desc& d) {
    CROUPIER_ASSERT(i < size_);
    const net::NodeId old_id = ids_[i];
    const bool id_changed = old_id != Traits::id(d);
    const std::uint16_t old_age = ages_[i];
    if (id_changed && table_ != nullptr) {
      table_erase(old_id, static_cast<std::uint32_t>(i));
    }
    write_columns(i, d);
    if (id_changed && table_ != nullptr) {
      table_insert(Traits::id(d), static_cast<std::uint32_t>(i));
    }
    if (i == max_slot_) {
      // Slot i held the first maximal age; a smaller age may demote it.
      if (ages_[i] < old_age) recompute_max();
    } else if (ages_[i] > ages_[max_slot_] ||
               (ages_[i] == ages_[max_slot_] && i < max_slot_)) {
      max_slot_ = static_cast<std::uint32_t>(i);
    }
  }

  void push_back(const Desc& d) {
    reserve(std::size_t{size_} + 1);
    const std::uint32_t i = size_++;
    write_columns(i, d);
    if (table_ != nullptr) table_insert(Traits::id(d), i);
    if (i == 0 || ages_[i] > ages_[max_slot_]) max_slot_ = i;
  }

  /// Removes slot i; later slots shift down one (relative order kept).
  void erase_at(std::size_t i) {
    CROUPIER_ASSERT(i < size_);
    // Fix the index incrementally: unlink slot i's entry (backward-shift
    // deletion, while ids_ still holds every id), then renumber the
    // survivors — probe positions depend only on ids, so decrementing
    // the stored slot numbers cannot break a chain.
    if (table_ != nullptr) {
      table_erase(ids_[i], static_cast<std::uint32_t>(i));
      for (std::uint32_t p = 0; p <= table_mask_; ++p) {
        if (table_[p] > i + 1) --table_[p];
      }
    }
    const std::size_t tail = size_ - i - 1;
    std::memmove(ids_ + i, ids_ + i + 1, tail * sizeof(*ids_));
    std::memmove(ages_ + i, ages_ + i + 1, tail * sizeof(*ages_));
    // Delete field i from the packed 2-bit nat column: within its byte,
    // fields below i stay put and the rest shift down one field; every
    // later byte shifts whole, pulling its low field from the next byte.
    {
      const std::size_t last_byte = size_ >= 1 ? (size_ - 1) >> 2 : 0;
      std::size_t b = i >> 2;
      const auto r = static_cast<std::uint8_t>((i & 3u) * NatDictionary::kBits);
      const auto low_mask = static_cast<std::uint8_t>((1u << r) - 1u);
      const std::uint8_t next = b < last_byte ? nats_[b + 1] : 0;
      nats_[b] = static_cast<std::uint8_t>(
          (nats_[b] & low_mask) |
          (static_cast<std::uint8_t>(nats_[b] >> 2) &
           static_cast<std::uint8_t>(~low_mask)) |
          static_cast<std::uint8_t>(next << 6));
      for (++b; b <= last_byte; ++b) {
        const std::uint8_t hi = b < last_byte ? nats_[b + 1] : 0;
        nats_[b] = static_cast<std::uint8_t>(
            static_cast<std::uint8_t>(nats_[b] >> 2) |
            static_cast<std::uint8_t>(hi << 6));
      }
    }
    if constexpr (Traits::kHasExtra) {
      extra_.erase(extra_.begin() + static_cast<std::ptrdiff_t>(i));
    }
    --size_;
    if (size_ == 0) {
      max_slot_ = 0;
    } else if (i == max_slot_) {
      recompute_max();
    } else if (i < max_slot_) {
      --max_slot_;
    }
  }

  /// Removes every slot listed in `slots` (ascending, no duplicates) in
  /// one compaction pass — the multi-evict path of set_capacity.
  void erase_slots_sorted(std::span<const std::uint32_t> slots) {
    if (slots.empty()) return;
    std::size_t next_victim = 0;
    std::size_t out = 0;
    for (std::size_t in = 0; in < size_; ++in) {
      if (next_victim < slots.size() && slots[next_victim] == in) {
        ++next_victim;
        continue;
      }
      if (out != in) {
        ids_[out] = ids_[in];
        ages_[out] = ages_[in];
        set_nat(out, nat_at(in));
        if constexpr (Traits::kHasExtra) {
          extra_[out] = std::move(extra_[in]);
        }
      }
      ++out;
    }
    CROUPIER_ASSERT(next_victim == slots.size());
    size_ = static_cast<std::uint32_t>(out);
    if constexpr (Traits::kHasExtra) {
      extra_.resize(size_);
    }
    rebuild_table();
    recompute_max();
  }

  /// Ages every slot by one round (saturating), maintaining the max slot:
  /// a uniform bump cannot move the first argmax unless the current max
  /// is already saturated and another slot catches up to the tie.
  void bump_ages() {
    if (size_ == 0) return;
    const bool saturated = ages_[max_slot_] == 0xffff;
    for (std::size_t i = 0; i < size_; ++i) {
      // Branchless saturating increment; the loop auto-vectorizes.
      ages_[i] = static_cast<std::uint16_t>(
          ages_[i] + static_cast<std::uint16_t>(ages_[i] != 0xffff));
    }
    if (saturated) recompute_max();
  }

  void clear() {
    size_ = 0;
    max_slot_ = 0;
    if constexpr (Traits::kHasExtra) extra_.clear();
    if (table_ != nullptr) {
      std::memset(table_, 0, std::size_t{table_mask_ + 1} * sizeof(*table_));
    }
  }

  /// id -> slot lookup. Paper-sized views (capacity <= 64) scan the
  /// packed id column — 4 bytes/entry, SIMD-friendly, faster than any
  /// hash at that size. Larger views carry an open-addressed index
  /// column maintained incrementally, so the lookup stays O(1) as
  /// capacities grow instead of degrading linearly.
  [[nodiscard]] std::optional<std::uint32_t> slot_of(net::NodeId id) const {
    if (table_ == nullptr) {
      for (std::uint32_t i = 0; i < size_; ++i) {
        if (ids_[i] == id) return i;
      }
      return std::nullopt;
    }
    std::uint32_t p = probe_start(id);
    while (table_[p] != 0) {
      const std::uint32_t s = table_[p] - 1u;
      if (ids_[s] == id) return s;
      p = (p + 1) & table_mask_;
    }
    return std::nullopt;
  }

  /// First slot of maximal age ("oldest" under the tail policy).
  [[nodiscard]] std::uint32_t oldest_slot() const {
    CROUPIER_ASSERT(size_ > 0);
    return max_slot_;
  }

 private:
  static constexpr std::uint32_t next_pow2(std::uint32_t v) {
    std::uint32_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  static constexpr std::size_t block_bytes(std::uint32_t r, std::uint32_t h) {
    const std::size_t raw = std::size_t{r} * sizeof(net::NodeId) +
                            std::size_t{r} * sizeof(std::uint16_t) +
                            std::size_t{h} * sizeof(std::uint16_t) +
                            (std::size_t{r} + 3) / 4;
    return (raw + 7) & ~std::size_t{7};
  }

  [[nodiscard]] std::uint32_t probe_start(net::NodeId id) const {
    // Fibonacci hashing; the table is a power of two.
    return (static_cast<std::uint32_t>(id) * 0x9e3779b9u) & table_mask_;
  }

  void table_insert(net::NodeId id, std::uint32_t slot) {
    std::uint32_t p = probe_start(id);
    while (table_[p] != 0) p = (p + 1) & table_mask_;
    table_[p] = static_cast<std::uint16_t>(slot + 1);
  }

  /// Unlinks the entry mapping `id` -> `slot` with backward-shift
  /// deletion, so later probes never hit a false empty. Requires ids_ to
  /// still describe every live slot (call before mutating the columns).
  void table_erase(net::NodeId id, std::uint32_t slot) {
    std::uint32_t p = probe_start(id);
    while (table_[p] != slot + 1) p = (p + 1) & table_mask_;
    std::uint32_t j = p;
    while (true) {
      table_[p] = 0;
      while (true) {
        j = (j + 1) & table_mask_;
        if (table_[j] == 0) return;
        const std::uint32_t h = probe_start(ids_[table_[j] - 1]);
        // The entry at j may fill the hole at p unless its home position
        // lies cyclically within (p, j] — moving it past its home would
        // strand it from its probe chain.
        const bool movable =
            (p <= j) ? (h <= p || h > j) : (h <= p && h > j);
        if (movable) break;
      }
      table_[p] = table_[j];
      p = j;
    }
  }

  void rebuild_table() {
    if (table_ == nullptr) return;
    std::memset(table_, 0, std::size_t{table_mask_ + 1} * sizeof(*table_));
    for (std::uint32_t i = 0; i < size_; ++i) table_insert(ids_[i], i);
  }

  void recompute_max() {
    max_slot_ = 0;
    for (std::uint32_t i = 1; i < size_; ++i) {
      if (ages_[i] > ages_[max_slot_]) max_slot_ = i;
    }
  }

  void set_nat(std::size_t i, net::NatType t) {
    const std::size_t byte = i >> 2;
    const auto shift =
        static_cast<std::uint8_t>((i & 3u) * NatDictionary::kBits);
    nats_[byte] = static_cast<std::uint8_t>(
        (nats_[byte] & ~(NatDictionary::kMask << shift)) |
        (NatDictionary::encode(t) << shift));
  }

  void write_columns(std::size_t i, const Desc& d) {
    ids_[i] = Traits::id(d);
    ages_[i] = Traits::age(d);
    set_nat(i, Traits::nat(d));
    if constexpr (Traits::kHasExtra) {
      if (extra_.size() <= i) extra_.resize(i + 1);
      extra_[i] = Traits::extra(d);
    }
  }

  // Capacities at or below this scan the id column instead of carrying
  // an index: one or two cache lines of packed u32s beat a hash probe,
  // and skipping index maintenance keeps the mutation ops tight.
  static constexpr std::uint32_t kLinearScanMax = 64;

  void grow_storage(std::uint32_t new_reserved) {
    // The index column stores slot+1 in 16 bits; views are small by
    // design (paper view size 10), so this bound is never a constraint.
    CROUPIER_ASSERT(new_reserved <= 0x7fff);
    const std::uint32_t new_table =
        new_reserved > kLinearScanMax
            ? next_pow2(std::max<std::uint32_t>(8, new_reserved * 2))
            : 0;
    const std::size_t bytes = block_bytes(new_reserved, new_table);
    std::byte* block =
        arena_ != nullptr ? arena_->allocate(bytes) : new std::byte[bytes];

    auto* new_ids = reinterpret_cast<net::NodeId*>(block);
    auto* new_ages = reinterpret_cast<std::uint16_t*>(
        block + std::size_t{new_reserved} * sizeof(net::NodeId));
    auto* new_tbl = new_ages + new_reserved;
    auto* new_nats = reinterpret_cast<std::uint8_t*>(new_tbl + new_table);

    if (size_ > 0) {
      std::memcpy(new_ids, ids_, std::size_t{size_} * sizeof(net::NodeId));
      std::memcpy(new_ages, ages_, std::size_t{size_} * sizeof(std::uint16_t));
      std::memcpy(new_nats, nats_, (std::size_t{size_} + 3) / 4);
    }
    free_block();

    block_ = block;
    block_bytes_ = bytes;
    ids_ = new_ids;
    ages_ = new_ages;
    table_ = new_table != 0 ? new_tbl : nullptr;
    nats_ = new_nats;
    reserved_ = new_reserved;
    table_mask_ = new_table != 0 ? new_table - 1 : 0;
    rebuild_table();
  }

  void free_block() {
    if (block_ == nullptr) return;
    if (arena_ != nullptr) {
      arena_->release(block_, block_bytes_);
    } else {
      delete[] block_;
    }
    block_ = nullptr;
  }

  void steal(ViewStore& other) {
    arena_ = other.arena_;
    block_ = std::exchange(other.block_, nullptr);
    block_bytes_ = other.block_bytes_;
    ids_ = other.ids_;
    ages_ = other.ages_;
    table_ = other.table_;
    nats_ = other.nats_;
    size_ = std::exchange(other.size_, 0);
    reserved_ = std::exchange(other.reserved_, 0);
    table_mask_ = other.table_mask_;
    max_slot_ = std::exchange(other.max_slot_, 0);
    if constexpr (Traits::kHasExtra) extra_ = std::move(other.extra_);
  }

  struct NoExtra {};
  using ExtraColumn =
      std::conditional_t<Traits::kHasExtra,
                         std::vector<typename Traits::Extra>, NoExtra>;

  ViewArena* arena_ = nullptr;
  std::byte* block_ = nullptr;
  std::size_t block_bytes_ = 0;
  net::NodeId* ids_ = nullptr;
  std::uint16_t* ages_ = nullptr;
  std::uint16_t* table_ = nullptr;
  std::uint8_t* nats_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t reserved_ = 0;
  std::uint32_t table_mask_ = 0;
  std::uint32_t max_slot_ = 0;
  [[no_unique_address]] ExtraColumn extra_;
};

}  // namespace croupier::pss
