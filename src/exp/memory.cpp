#include "exp/memory.hpp"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define CROUPIER_HAVE_GETRUSAGE 1
#endif

namespace croupier::exp {

std::uint64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      // Format: "VmRSS:     123456 kB"
      std::sscanf(line + 6, "%lu", &kib);  // NOLINT(cert-err34-c)
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

std::uint64_t peak_rss_bytes() {
#ifdef CROUPIER_HAVE_GETRUSAGE
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace croupier::exp
