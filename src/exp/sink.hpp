// Uniform result emission for the figure benches.
//
// ResultSink writes the gnuplot text blocks the plots consume (stdout,
// same "# <name>" + "x y" row format the benches always printed) and
// optionally mirrors every data point into a machine-readable CSV file
// (--csv=PATH). All emission happens on the submitting thread after the
// TrialPool has delivered results in submission order, so both outputs
// are byte-identical for any --jobs value.
//
// CSV schema (one file per bench invocation, header included):
//   kind,block,x,y
//   series,"fig1a avg-error alpha=10 gamma=25",42,0.012345
//   spread,"fig1a avg-error alpha=10 gamma=25",42,0.000317
//   value,"summary alpha=10 gamma=25","steady avg-err",0.00123
//
// `spread` rows carry the across-runs standard deviation of the `series`
// (or `value`) row with the same block and x — the error bars the
// benches emit when --runs > 1. Consumers that filter kind == series see
// the pre-spread schema unchanged.
#pragma once

#include <cstddef>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

namespace croupier::exp {

/// printf into a std::string (series/block names are built from sweep
/// parameters; the benches' printf formats are kept verbatim).
[[gnu::format(printf, 1, 2)]] std::string strf(const char* fmt, ...);

/// Streaming mean / standard deviation over per-run scalars (Welford's
/// update, numerically stable). Benches feed one value per run in
/// submission order, then print mean() beside spread columns — the same
/// recurrence the ROADMAP's cross-trial streaming aggregation will build
/// on.
class Accum {
 public:
  void add(double v) {
    ++n_;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
  }

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }

  /// Sample standard deviation (n-1 denominator); 0 below two samples.
  [[nodiscard]] double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Pointwise streaming aggregation of one series column over repeated
/// runs: an Accum per sample index. Feeding each finished run (in run
/// order) and then reading means()/stddevs() replaces materialising
/// every run's series before averaging — the cross-trial streaming
/// aggregation path of run_series_grid. Runs sampled on the same grid
/// can still differ in length by a point or two (a recorder tick racing
/// the horizon); indices beyond the shortest run seen are dropped,
/// matching the buffered path's min-length truncation. An index
/// surviving truncation has, by construction, absorbed every run.
class SeriesAccum {
 public:
  /// Folds one run's column. Must be called in run order (TrialPool
  /// map_fold guarantees index order) so aggregation is byte-identical
  /// for every worker count.
  void add(std::span<const double> ys);

  /// Points per aggregated series: min length over the added runs.
  [[nodiscard]] std::size_t size() const { return cols_.size(); }
  [[nodiscard]] std::size_t runs() const { return runs_; }

  [[nodiscard]] double mean(std::size_t i) const { return cols_[i].mean(); }
  [[nodiscard]] double stddev(std::size_t i) const {
    return cols_[i].stddev();
  }
  [[nodiscard]] std::vector<double> means() const;
  [[nodiscard]] std::vector<double> stddevs() const;

 private:
  std::vector<Accum> cols_;
  std::size_t runs_ = 0;
};

class ResultSink {
 public:
  /// csv_path empty = no CSV. The file is created eagerly so a bad path
  /// fails at startup instead of after minutes of simulation. `out` is
  /// the text destination (nullptr silences text output — used by
  /// tests).
  explicit ResultSink(std::string csv_path = {}, std::FILE* out = stdout);
  ~ResultSink();

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  [[nodiscard]] bool csv_enabled() const { return csv_ != nullptr; }

  /// "# <text>" comment line (headers, summaries). Text output only.
  void comment(const std::string& text);

  /// Verbatim text line (the benches' aligned table rows).
  void raw(const std::string& line);

  /// Blank separator line. Text output only.
  void blank();

  /// gnuplot series block: "# <name>", one "<x> <y>" row per point, then
  /// a blank line. Mirrored to CSV as `series` rows.
  void series(const std::string& name, std::span<const double> x,
              std::span<const double> y, const char* x_fmt = "%.0f",
              const char* y_fmt = "%.6f");

  /// Series with error bars: "<x> <y> <sd>" rows (gnuplot `with
  /// errorbars` reads exactly this), mirrored to CSV as paired
  /// `series` + `spread` rows.
  void series(const std::string& name, std::span<const double> x,
              std::span<const double> y, std::span<const double> sd,
              const char* x_fmt = "%.0f", const char* y_fmt = "%.6f");

  /// Named scalar (summary/table cells). CSV only — the benches print
  /// their own aligned tables via raw()/comment().
  void value(const std::string& block, const std::string& key, double v);

  /// Across-runs standard deviation of the same block/key. CSV only,
  /// kind `spread`.
  void spread(const std::string& block, const std::string& key, double sd);

 private:
  void csv_row(const char* kind, const std::string& block,
               const std::string& x, const std::string& y);

  std::FILE* out_ = nullptr;
  std::FILE* csv_ = nullptr;
};

}  // namespace croupier::exp
