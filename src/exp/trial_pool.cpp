#include "exp/trial_pool.hpp"

#include <algorithm>

namespace croupier::exp {

TrialPool::TrialPool(std::size_t jobs) {
  if (jobs == 0) {
    jobs = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(jobs);
  for (std::size_t i = 0; i < jobs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

TrialPool::~TrialPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void TrialPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void TrialPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    const std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void TrialPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && !first_error_) first_error_ = err;
    --active_;
    if (queue_.empty() && active_ == 0) all_idle_.notify_all();
  }
}

}  // namespace croupier::exp
