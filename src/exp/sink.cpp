#include "exp/sink.hpp"

#include <cmath>
#include <cstdarg>
#include <vector>

#include "common/assert.hpp"

namespace croupier::exp {

double Accum::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

void SeriesAccum::add(std::span<const double> ys) {
  if (runs_ == 0) {
    cols_.resize(ys.size());
  } else if (ys.size() < cols_.size()) {
    cols_.resize(ys.size());
  }
  ++runs_;
  for (std::size_t i = 0; i < cols_.size(); ++i) cols_[i].add(ys[i]);
}

std::vector<double> SeriesAccum::means() const {
  std::vector<double> out;
  out.reserve(cols_.size());
  for (const auto& col : cols_) out.push_back(col.mean());
  return out;
}

std::vector<double> SeriesAccum::stddevs() const {
  std::vector<double> out;
  out.reserve(cols_.size());
  for (const auto& col : cols_) out.push_back(col.stddev());
  return out;
}

std::string strf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  CROUPIER_ASSERT(needed >= 0);
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

namespace {

/// RFC-4180 quoting: wrap in double quotes, double any inner quote.
std::string csv_quote(const std::string& field) {
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

ResultSink::ResultSink(std::string csv_path, std::FILE* out) : out_(out) {
  if (csv_path.empty()) return;
  csv_ = std::fopen(csv_path.c_str(), "w");
  if (csv_ == nullptr) {
    std::fprintf(stderr, "warning: cannot open --csv=%s; CSV disabled\n",
                 csv_path.c_str());
    return;
  }
  std::fprintf(csv_, "kind,block,x,y\n");
}

ResultSink::~ResultSink() {
  if (csv_ != nullptr) std::fclose(csv_);
}

void ResultSink::comment(const std::string& text) {
  if (out_ != nullptr) std::fprintf(out_, "# %s\n", text.c_str());
}

void ResultSink::raw(const std::string& line) {
  if (out_ != nullptr) std::fprintf(out_, "%s\n", line.c_str());
}

void ResultSink::blank() {
  if (out_ != nullptr) std::fputc('\n', out_);
}

void ResultSink::series(const std::string& name, std::span<const double> x,
                        std::span<const double> y, const char* x_fmt,
                        const char* y_fmt) {
  CROUPIER_ASSERT(x.size() == y.size());
  comment(name);
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Format once so stdout and CSV carry the exact same values.
    const std::string xs = strf(x_fmt, x[i]);  // NOLINT(format-security)
    const std::string ys = strf(y_fmt, y[i]);  // NOLINT(format-security)
    if (out_ != nullptr) std::fprintf(out_, "%s %s\n", xs.c_str(), ys.c_str());
    csv_row("series", name, xs, ys);
  }
  blank();
}

void ResultSink::series(const std::string& name, std::span<const double> x,
                        std::span<const double> y, std::span<const double> sd,
                        const char* x_fmt, const char* y_fmt) {
  CROUPIER_ASSERT(x.size() == y.size());
  CROUPIER_ASSERT(x.size() == sd.size());
  comment(name);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::string xs = strf(x_fmt, x[i]);   // NOLINT(format-security)
    const std::string ys = strf(y_fmt, y[i]);   // NOLINT(format-security)
    const std::string ss = strf(y_fmt, sd[i]);  // NOLINT(format-security)
    if (out_ != nullptr) {
      std::fprintf(out_, "%s %s %s\n", xs.c_str(), ys.c_str(), ss.c_str());
    }
    csv_row("series", name, xs, ys);
    csv_row("spread", name, xs, ss);
  }
  blank();
}

void ResultSink::value(const std::string& block, const std::string& key,
                       double v) {
  csv_row("value", block, csv_quote(key), strf("%.6g", v));
}

void ResultSink::spread(const std::string& block, const std::string& key,
                        double sd) {
  csv_row("spread", block, csv_quote(key), strf("%.6g", sd));
}

void ResultSink::csv_row(const char* kind, const std::string& block,
                         const std::string& x, const std::string& y) {
  if (csv_ == nullptr) return;
  std::fprintf(csv_, "%s,%s,%s,%s\n", kind, csv_quote(block).c_str(),
               x.c_str(), y.c_str());
}

}  // namespace croupier::exp
