// Parallel execution of independent simulation trials.
//
// Every figure bench averages `runs` independent seeded Worlds per
// parameter point. A World is single-threaded and shares nothing with
// other Worlds, so the trials are embarrassingly parallel: TrialPool
// fans them out over a fixed set of worker threads while keeping every
// observable output deterministic. Tasks may execute in any order, but
// each one writes into its own submission-indexed result slot, so the
// aggregation and printing that follow see results in submission order
// and the bench output is byte-identical for any --jobs value
// (including 1).
//
// Tasks must not touch shared mutable state; the first exception a task
// throws is captured and rethrown from wait().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace croupier::exp {

/// Fixed-size worker pool for share-nothing trial closures.
class TrialPool {
 public:
  /// jobs = 0 selects std::thread::hardware_concurrency() (at least 1).
  explicit TrialPool(std::size_t jobs = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t jobs() const { return workers_.size(); }

  /// Enqueues a task. May be called from the submitting thread only.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception, if any.
  void wait();

  /// Runs `count` indexed trials and returns their results in index
  /// order. `fn(i)` is invoked concurrently from the workers, so it must
  /// be thread-safe (the bench closures only read captured configs and
  /// build their own World, which is). The result type must be
  /// default-constructible and movable.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
    using R = std::decay_t<decltype(fn(std::size_t{}))>;
    std::vector<R> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      submit([&out, &fn, i] { out[i] = fn(i); });
    }
    wait();
    return out;
  }

  /// Streaming variant of map(): runs `count` indexed trials and hands
  /// each result to `fold(i, std::move(result))` exactly once, in strict
  /// index order (0, 1, 2, ...), then frees it — so at no point are more
  /// than ~2x jobs() results resident, however large `count` is. Folding
  /// in index order is what keeps aggregation byte-identical for every
  /// --jobs value. Out-of-order completions wait in a reorder buffer;
  /// a worker does not *start* trial i until i < fold-cursor + 2*jobs()
  /// (backpressure), so one slow early trial cannot make the buffer
  /// absorb the whole grid. No deadlock is possible: tasks are picked up
  /// FIFO, so the cursor's own trial is always running, never gated.
  ///
  /// `fn(i)` runs concurrently on the workers like map(); `fold` runs
  /// under the pool's fold lock (on whichever worker completed the
  /// gating trial), so it may touch shared accumulators without extra
  /// locking but should stay cheap. If any trial throws, waiting trials
  /// are abandoned (wait() rethrows the first error anyway).
  template <typename Fn, typename FoldFn>
  void map_fold(std::size_t count, Fn&& fn, FoldFn&& fold) {
    using R = std::decay_t<decltype(fn(std::size_t{}))>;
    struct FoldState {
      std::mutex mu;
      std::condition_variable admit;
      std::map<std::size_t, R> ready;  // completed, not yet folded
      std::size_t next = 0;            // fold cursor
      bool failed = false;
    } state;
    const std::size_t window = 2 * jobs();
    for (std::size_t i = 0; i < count; ++i) {
      submit([&state, &fn, &fold, i, window] {
        {
          std::unique_lock<std::mutex> lock(state.mu);
          state.admit.wait(lock, [&state, i, window] {
            return state.failed || i < state.next + window;
          });
          if (state.failed) return;
        }
        R result;
        try {
          result = fn(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(state.mu);
          state.failed = true;
          state.admit.notify_all();
          throw;
        }
        const std::lock_guard<std::mutex> lock(state.mu);
        state.ready.emplace(i, std::move(result));
        try {
          while (!state.ready.empty() &&
                 state.ready.begin()->first == state.next) {
            fold(state.next, std::move(state.ready.begin()->second));
            state.ready.erase(state.ready.begin());
            ++state.next;
          }
        } catch (...) {
          state.failed = true;  // a stuck cursor must not strand waiters
          state.admit.notify_all();
          throw;
        }
        state.admit.notify_all();
      });
    }
    wait();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  std::size_t active_ = 0;                   // guarded by mu_
  bool stopping_ = false;                    // guarded by mu_
  std::exception_ptr first_error_;           // guarded by mu_
};

}  // namespace croupier::exp
