// Parallel execution of independent simulation trials.
//
// Every figure bench averages `runs` independent seeded Worlds per
// parameter point. A World is single-threaded and shares nothing with
// other Worlds, so the trials are embarrassingly parallel: TrialPool
// fans them out over a fixed set of worker threads while keeping every
// observable output deterministic. Tasks may execute in any order, but
// each one writes into its own submission-indexed result slot, so the
// aggregation and printing that follow see results in submission order
// and the bench output is byte-identical for any --jobs value
// (including 1).
//
// Tasks must not touch shared mutable state; the first exception a task
// throws is captured and rethrown from wait().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace croupier::exp {

/// Fixed-size worker pool for share-nothing trial closures.
class TrialPool {
 public:
  /// jobs = 0 selects std::thread::hardware_concurrency() (at least 1).
  explicit TrialPool(std::size_t jobs = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t jobs() const { return workers_.size(); }

  /// Enqueues a task. May be called from the submitting thread only.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first task exception, if any.
  void wait();

  /// Runs `count` indexed trials and returns their results in index
  /// order. `fn(i)` is invoked concurrently from the workers, so it must
  /// be thread-safe (the bench closures only read captured configs and
  /// build their own World, which is). The result type must be
  /// default-constructible and movable.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
    using R = std::decay_t<decltype(fn(std::size_t{}))>;
    std::vector<R> out(count);
    for (std::size_t i = 0; i < count; ++i) {
      submit([&out, &fn, i] { out[i] = fn(i); });
    }
    wait();
    return out;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;  // guarded by mu_
  std::size_t active_ = 0;                   // guarded by mu_
  bool stopping_ = false;                    // guarded by mu_
  std::exception_ptr first_error_;           // guarded by mu_
};

}  // namespace croupier::exp
