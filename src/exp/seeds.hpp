// Deterministic per-trial seed derivation.
//
// A figure bench sweeps `points` parameter points and averages `runs`
// independent seeded Worlds per point. Each (point, run) cell needs a
// seed that is (a) a pure function of the experiment's base seed and the
// cell coordinates — so results are reproducible regardless of thread
// count or execution order — and (b) statistically independent of every
// other cell's seed. Forking a stream per coordinate gives both: fork()
// hashes (lineage, tag) through two full splitmix64 rounds, so nearby
// coordinates land in unrelated lineages (unlike the old ad-hoc
// `seed + r * 1000` schemes, where sweeping seeds overlapped runs).
#pragma once

#include <cstdint>

#include "sim/rng.hpp"

namespace croupier::exp {

/// Seed for trial cell (point, run) of an experiment with `base_seed`.
inline std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t point,
                                std::uint64_t run) {
  return sim::RngStream(base_seed).fork(point).fork(run).next_u64();
}

}  // namespace croupier::exp
