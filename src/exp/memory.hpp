// Process-memory introspection for the scale benches.
//
// Two complementary numbers: current_rss_bytes() reads VmRSS from
// /proc/self/status (instantaneous resident set, what a per-point
// "memory right now" column wants) and peak_rss_bytes() reads
// ru_maxrss from getrusage (high-water mark over the whole process,
// what a "did the 10^6-node point fit" check wants). Both return 0 on
// platforms/filesystems where the source is unavailable rather than
// failing — memory columns are reporting, never control flow.
#pragma once

#include <cstdint>

namespace croupier::exp {

/// Instantaneous resident set size of this process in bytes (VmRSS),
/// or 0 if /proc is unavailable.
std::uint64_t current_rss_bytes();

/// Peak resident set size of this process in bytes (ru_maxrss), or 0
/// if getrusage is unavailable.
std::uint64_t peak_rss_bytes();

}  // namespace croupier::exp
