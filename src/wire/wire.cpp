#include "wire/wire.hpp"

namespace croupier::wire {

void Writer::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void Writer::bytes(std::span<const std::byte> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

bool Reader::take(std::size_t n) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t Reader::u16() {
  // Width checked up front: a short buffer yields 0, never a partial read.
  if (!take(2)) return 0;
  const auto hi = static_cast<std::uint16_t>(data_[pos_]);
  const auto lo = static_cast<std::uint16_t>(data_[pos_ + 1]);
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)]);
  }
  pos_ += 4;
  return v;
}

std::span<const std::byte> Reader::bytes(std::size_t n) {
  if (!take(n)) return {};
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint64_t Reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]);
  }
  pos_ += 8;
  return v;
}

}  // namespace croupier::wire
