// Binary wire format: bounded writer/reader over byte buffers.
//
// Every protocol message in this repository encodes itself through Writer
// so that overhead measurements (paper fig. 7a) are byte-accurate rather
// than guessed. Integers are encoded big-endian (network byte order).
// Reader performs bounds checking and latches an error flag instead of
// throwing: malformed input yields zero values and `ok() == false`, which
// callers must check once after decoding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>  // C++20 (as is the defaulted operator== in net/address.hpp);
                 // the build pins cxx_std_20 in src/CMakeLists.txt — do not
                 // downgrade the standard.
#include <string_view>
#include <vector>

namespace croupier::wire {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::byte> data);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::byte> data() const { return buf_; }

  /// Consumes the writer, releasing the underlying buffer.
  std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Reads `n` raw bytes (a fragment payload, an opaque blob). Returns
  /// an empty span — and latches ok() == false — when fewer than `n`
  /// remain, mirroring the zero-value scalar reads.
  std::span<const std::byte> bytes(std::size_t n);

  /// Number of unread bytes.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// False once any read ran past the end of the buffer.
  [[nodiscard]] bool ok() const { return ok_; }

  /// True when the buffer was consumed exactly and without error.
  [[nodiscard]] bool exhausted() const { return ok_ && remaining() == 0; }

 private:
  bool take(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace croupier::wire
