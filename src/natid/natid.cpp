#include "natid/natid.hpp"

#include <algorithm>
#include <memory>

#include "common/assert.hpp"

namespace croupier::natid {

void MatchingIpTest::encode(wire::Writer& w) const {
  w.u8(type());
  w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(probed.size(), 0xff)));
  for (net::NodeId id : probed) {
    w.u32(id);
    w.u16(0x2710);
  }
}

MatchingIpTest MatchingIpTest::decode(wire::Reader& r) {
  MatchingIpTest m;
  (void)r.u8();
  const std::size_t n = r.u8();
  for (std::size_t i = 0; i < n && r.ok(); ++i) {
    m.probed.push_back(r.u32());
    (void)r.u16();
  }
  return m;
}

void ForwardTest::encode(wire::Writer& w) const {
  w.u8(type());
  w.u32(client);
  w.u16(0x2710);
  w.u32(observed_ip.v);
}

ForwardTest ForwardTest::decode(wire::Reader& r) {
  ForwardTest m;
  (void)r.u8();
  m.client = r.u32();
  (void)r.u16();
  m.observed_ip = net::IpAddr{r.u32()};
  return m;
}

void ForwardResp::encode(wire::Writer& w) const {
  w.u8(type());
  w.u32(observed_ip.v);
}

ForwardResp ForwardResp::decode(wire::Reader& r) {
  ForwardResp m;
  (void)r.u8();
  m.observed_ip = net::IpAddr{r.u32()};
  return m;
}

bool NatIdResponder::on_message(net::NodeId from, const net::Message& msg) {
  switch (msg.type()) {
    case kMatchingIpTest: {
      const auto& test = static_cast<const MatchingIpTest&>(msg);
      // Pick a forwarder that is public, is not us, and is not any node
      // the client is probing (its NAT may hold mappings toward those). A
      // deployed node would use recent public neighbours from its PSS; the
      // oracle sampling stands in for that here.
      const auto candidates = bootstrap_.sample_public(
          test.probed.size() + 2, self_, rng_);
      for (net::NodeId candidate : candidates) {
        const bool probed =
            std::find(test.probed.begin(), test.probed.end(), candidate) !=
            test.probed.end();
        if (probed || candidate == from) continue;
        auto fwd = std::make_shared<ForwardTest>();
        fwd->client = from;
        // In a real deployment this is the UDP source address; the
        // network model exposes exactly that.
        fwd->observed_ip = network_.public_ip(from);
        network_.send(self_, candidate, std::move(fwd));
        return true;
      }
      return true;  // no forwarder available; client will time out
    }
    case kForwardTest: {
      const auto& test = static_cast<const ForwardTest&>(msg);
      auto resp = std::make_shared<ForwardResp>();
      resp->observed_ip = test.observed_ip;
      network_.send(self_, test.client, std::move(resp));
      return true;
    }
    default:
      return false;
  }
}

NatIdClient::NatIdClient(net::NodeId self, net::Network& network,
                         net::BootstrapServer& bootstrap, sim::RngStream rng,
                         Config cfg, DoneFn done)
    : self_(self),
      network_(network),
      bootstrap_(bootstrap),
      rng_(rng),
      cfg_(cfg),
      done_(std::move(done)),
      alive_flag_(std::make_shared<bool>(true)) {
  CROUPIER_ASSERT(done_ != nullptr);
  CROUPIER_ASSERT(cfg_.parallel_probes > 0);
}

NatIdClient::~NatIdClient() { *alive_flag_ = false; }

void NatIdClient::start() {
  CROUPIER_ASSERT_MSG(!started_, "NatIdClient is single-shot");
  started_ = true;

  // Paper Algorithm 1, line 4: UPnP IGD short-circuits the network test.
  if (cfg_.upnp_available) {
    finish(net::NatType::Public);
    return;
  }

  const auto probed =
      bootstrap_.sample_public(cfg_.parallel_probes, self_, rng_);
  if (probed.empty()) {
    // Nobody to test against (first node in the system): a node that the
    // bootstrap server can hand out must be publicly reachable, and the
    // deployment would only seed public nodes; classify optimistically as
    // private is useless — but we cannot verify reachability, so report
    // private and let the operator seed properly. Conservative choice.
    finish(net::NatType::Private);
    return;
  }

  auto test = std::make_shared<MatchingIpTest>();
  test->probed = probed;
  for (net::NodeId target : probed) {
    network_.send(self_, target, test);
  }

  timeout_event_ = network_.simulator().schedule_after(
      cfg_.timeout, [this, alive = alive_flag_]() {
        if (!*alive || finished_) return;
        finish(net::NatType::Private);
      });
}

bool NatIdClient::on_message(net::NodeId /*from*/, const net::Message& msg) {
  if (msg.type() != kForwardResp) return false;
  if (finished_) return true;
  const auto& resp = static_cast<const ForwardResp&>(msg);
  if (timeout_event_.has_value()) {
    network_.simulator().cancel(*timeout_event_);
    timeout_event_.reset();
  }
  const net::IpAddr local = network_.local_ip(self_);
  finish(local == resp.observed_ip ? net::NatType::Public
                                   : net::NatType::Private);
  return true;
}

void NatIdClient::finish(net::NatType type) {
  CROUPIER_ASSERT(!finished_);
  finished_ = true;
  result_ = type;
  done_(type);
}

}  // namespace croupier::natid
