// Minimal distributed NAT-type identification (paper §V, Algorithm 1).
//
// Classifies the running node as public or private using three messages
// and no STUN infrastructure:
//
//   client ──MatchingIpTest──▶ first public node
//   first  ──ForwardTest────▶ second public node   (NOT one the client
//                                                    probed, so no stale
//                                                    NAT mapping helps)
//   second ──ForwardResp───▶ client's observed public address
//
// Outcomes:
//  - UPnP IGD available locally        -> public (no network test needed);
//  - ForwardResp arrives, IPs match    -> public (open Internet);
//  - ForwardResp arrives, IPs differ   -> private (the NAT has endpoint-
//    independent filtering, so the unsolicited packet got through, but
//    the node is translated);
//  - timeout                           -> private (restrictive filtering
//    or firewall dropped the unsolicited ForwardResp).
//
// The client probes several public nodes in parallel; the first
// ForwardResp decides. Public nodes answer statelessly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/bootstrap.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace croupier::natid {

constexpr std::uint8_t kMatchingIpTest = 0x50;
constexpr std::uint8_t kForwardTest = 0x51;
constexpr std::uint8_t kForwardResp = 0x52;

/// Is a wire byte one of the NAT-ID protocol's tags? (Used by runtime
/// dispatchers that multiplex NAT-ID and PSS traffic on one handler.)
constexpr bool is_natid_message(std::uint8_t tag) {
  return tag >= kMatchingIpTest && tag <= kForwardResp;
}

struct MatchingIpTest final : net::Message {
  /// The public nodes the client is probing in parallel; the responder
  /// must pick a forwarder outside this set (paper: the client's NAT may
  /// hold mappings toward probed nodes, which would fake a pass).
  std::vector<net::NodeId> probed;

  [[nodiscard]] std::uint8_t type() const override { return kMatchingIpTest; }
  [[nodiscard]] const char* name() const override {
    return "natid.matching_ip_test";
  }
  void encode(wire::Writer& w) const override;
  static MatchingIpTest decode(wire::Reader& r);
};

struct ForwardTest final : net::Message {
  net::NodeId client = net::kNilNode;
  net::IpAddr observed_ip;  // source address the first node saw

  [[nodiscard]] std::uint8_t type() const override { return kForwardTest; }
  [[nodiscard]] const char* name() const override {
    return "natid.forward_test";
  }
  void encode(wire::Writer& w) const override;
  static ForwardTest decode(wire::Reader& r);
};

struct ForwardResp final : net::Message {
  net::IpAddr observed_ip;

  [[nodiscard]] std::uint8_t type() const override { return kForwardResp; }
  [[nodiscard]] const char* name() const override {
    return "natid.forward_resp";
  }
  void encode(wire::Writer& w) const override;
  static ForwardResp decode(wire::Reader& r);
};

/// Responder role: runs on every public node; stateless.
class NatIdResponder {
 public:
  NatIdResponder(net::NodeId self, net::Network& network,
                 net::BootstrapServer& bootstrap, sim::RngStream rng)
      : self_(self), network_(network), bootstrap_(bootstrap), rng_(rng) {}

  /// Handles MatchingIpTest and ForwardTest. Returns true if consumed.
  bool on_message(net::NodeId from, const net::Message& msg);

 private:
  net::NodeId self_;
  net::Network& network_;
  net::BootstrapServer& bootstrap_;
  sim::RngStream rng_;
};

/// Client role: one classification run.
class NatIdClient {
 public:
  struct Config {
    std::size_t parallel_probes = 3;
    sim::Duration timeout = sim::sec(2);
    bool upnp_available = false;  // from local IGD discovery
  };
  using DoneFn = std::function<void(net::NatType)>;

  NatIdClient(net::NodeId self, net::Network& network,
              net::BootstrapServer& bootstrap, sim::RngStream rng,
              Config cfg, DoneFn done);
  ~NatIdClient();

  NatIdClient(const NatIdClient&) = delete;
  NatIdClient& operator=(const NatIdClient&) = delete;

  /// Begins the run. The callback fires exactly once, possibly
  /// synchronously (UPnP and no-public-nodes cases).
  void start();

  /// Handles ForwardResp. Returns true if consumed.
  bool on_message(net::NodeId from, const net::Message& msg);

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] std::optional<net::NatType> result() const { return result_; }

 private:
  void finish(net::NatType type);

  net::NodeId self_;
  net::Network& network_;
  net::BootstrapServer& bootstrap_;
  sim::RngStream rng_;
  Config cfg_;
  DoneFn done_;

  bool started_ = false;
  bool finished_ = false;
  std::optional<net::NatType> result_;
  std::optional<sim::EventId> timeout_event_;
  // Guards the timeout closure against the client being destroyed first.
  std::shared_ptr<bool> alive_flag_;
};

}  // namespace croupier::natid
