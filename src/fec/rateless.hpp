// Rateless erasure codec over GF(256) for fragmented messages.
//
// A message split into k equal-size chunks (tail zero-padded) can ship
// any number of extra repair fragments; a receiver reconstructs the
// message from ANY k distinct fragments, source or repair — the k-of-n
// property (wh256/Wirehair-style, but with a systematic Cauchy
// construction instead of random rows so recovery is guaranteed, not
// just probable).
//
// Repair row r mixes the sources with Cauchy coefficients
//   coeff(r, i) = 1 / ((k + r) XOR i)   in GF(256),
// a pure function of (k, r, i): repair payloads can be generated on
// demand ("rateless") without consuming any RNG stream, and both sides
// derive the same matrix from the fragment indices already on the wire.
// Every square submatrix of a Cauchy matrix is invertible, so decoding
// succeeds at exactly k received rows and fails cleanly below k. The
// construction needs k + repairs <= 256 distinct field points
// (kMaxCodedFragments); the packet layer falls back to plain
// fragmentation beyond that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace croupier::fec {

/// Cauchy construction limit: source + repair fragment indices must be
/// distinct points of GF(256).
constexpr std::size_t kMaxCodedFragments = 256;

/// Coefficient of source chunk `source_index` (< k) in repair row
/// `repair_index` (wire fragment index k + repair_index).
[[nodiscard]] std::uint8_t repair_coeff(std::size_t k,
                                        std::size_t repair_index,
                                        std::size_t source_index);

/// Builds repair payload `repair_index` over `message` split into k
/// chunks of chunk_len bytes (the tail chunk implicitly zero-padded).
/// Requires k >= 1, k * chunk_len >= message.size() and
/// k + repair_index < kMaxCodedFragments.
[[nodiscard]] std::vector<std::byte> encode_repair(
    std::span<const std::byte> message, std::size_t k, std::size_t chunk_len,
    std::size_t repair_index);

/// Accumulates received fragments of one coded message and solves for
/// the source chunks once k distinct rows arrived.
class Decoder {
 public:
  Decoder(std::size_t k, std::size_t chunk_len);

  /// Adds fragment `index` (< k: source chunk, >= k: repair row). Short
  /// payloads are zero-padded to chunk_len. Returns false for a
  /// duplicate index or when k rows are already held.
  bool add(std::size_t index, std::span<const std::byte> payload);

  /// True once k distinct fragments are held.
  [[nodiscard]] bool ready() const { return rows_.size() == k_; }
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Gaussian elimination over the held rows; the concatenated k source
  /// chunks (k * chunk_len bytes) on success, nullopt when fewer than k
  /// rows are held (or the rows are singular, which the Cauchy
  /// construction rules out for its own fragments).
  [[nodiscard]] std::optional<std::vector<std::byte>> decode() const;

 private:
  struct Row {
    std::vector<std::uint8_t> coeff;  // k coefficients
    std::vector<std::byte> data;      // chunk_len bytes
  };

  std::size_t k_;
  std::size_t chunk_len_;
  std::vector<std::size_t> indices_;  // accepted fragment indices
  std::vector<Row> rows_;
};

}  // namespace croupier::fec
