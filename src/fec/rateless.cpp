#include "fec/rateless.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "fec/gf256.hpp"

namespace croupier::fec {

std::uint8_t repair_coeff(std::size_t k, std::size_t repair_index,
                          std::size_t source_index) {
  CROUPIER_ASSERT(source_index < k);
  CROUPIER_ASSERT(k + repair_index < kMaxCodedFragments);
  // x_r = k + repair_index and y_i = source_index never collide (x >= k,
  // y < k), so the XOR is non-zero and invertible.
  const auto x = static_cast<std::uint8_t>(k + repair_index);
  const auto y = static_cast<std::uint8_t>(source_index);
  return gf_inv(static_cast<std::uint8_t>(x ^ y));
}

std::vector<std::byte> encode_repair(std::span<const std::byte> message,
                                     std::size_t k, std::size_t chunk_len,
                                     std::size_t repair_index) {
  CROUPIER_ASSERT(k >= 1 && chunk_len >= 1);
  CROUPIER_ASSERT(k * chunk_len >= message.size());
  std::vector<std::byte> out(chunk_len, std::byte{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t begin = i * chunk_len;
    if (begin >= message.size()) break;  // all-zero tail chunks contribute 0
    const std::size_t len = std::min(chunk_len, message.size() - begin);
    gf_mul_add(out.data(), message.data() + begin, len,
               repair_coeff(k, repair_index, i));
  }
  return out;
}

Decoder::Decoder(std::size_t k, std::size_t chunk_len)
    : k_(k), chunk_len_(chunk_len) {
  CROUPIER_ASSERT(k >= 1 && chunk_len >= 1);
  CROUPIER_ASSERT(k <= kMaxCodedFragments);
}

bool Decoder::add(std::size_t index, std::span<const std::byte> payload) {
  CROUPIER_ASSERT(payload.size() <= chunk_len_);
  if (rows_.size() == k_) return false;
  if (std::find(indices_.begin(), indices_.end(), index) != indices_.end()) {
    return false;
  }
  Row row;
  row.coeff.assign(k_, 0);
  if (index < k_) {
    row.coeff[index] = 1;
  } else {
    CROUPIER_ASSERT(index < kMaxCodedFragments);
    for (std::size_t i = 0; i < k_; ++i) {
      row.coeff[i] = repair_coeff(k_, index - k_, i);
    }
  }
  row.data.assign(chunk_len_, std::byte{0});
  if (!payload.empty()) {
    std::memcpy(row.data.data(), payload.data(), payload.size());
  }
  indices_.push_back(index);
  rows_.push_back(std::move(row));
  return true;
}

std::optional<std::vector<std::byte>> Decoder::decode() const {
  if (rows_.size() < k_) return std::nullopt;
  // Work on a copy: decode() is a const query and the caller may retry
  // (it never needs to here — ready() gates the call — but the copy also
  // keeps elimination from corrupting rows on the singular path).
  std::vector<Row> m = rows_;
  for (std::size_t col = 0; col < k_; ++col) {
    // Partial "pivoting": any row with a non-zero entry works over a
    // field; take the first for determinism.
    std::size_t pivot = col;
    while (pivot < m.size() && m[pivot].coeff[col] == 0) ++pivot;
    if (pivot == m.size()) return std::nullopt;  // singular
    std::swap(m[col], m[pivot]);
    const std::uint8_t inv = gf_inv(m[col].coeff[col]);
    gf_scale(m[col].data.data(), chunk_len_, inv);
    for (std::size_t i = col; i < k_; ++i) {
      m[col].coeff[i] = gf_mul(m[col].coeff[i], inv);
    }
    for (std::size_t r = 0; r < m.size(); ++r) {
      if (r == col) continue;
      const std::uint8_t f = m[r].coeff[col];
      if (f == 0) continue;
      gf_mul_add(m[r].data.data(), m[col].data.data(), chunk_len_, f);
      for (std::size_t i = col; i < k_; ++i) {
        m[r].coeff[i] = gf_add(m[r].coeff[i], gf_mul(f, m[col].coeff[i]));
      }
    }
  }
  std::vector<std::byte> out;
  out.reserve(k_ * chunk_len_);
  for (std::size_t i = 0; i < k_; ++i) {
    out.insert(out.end(), m[i].data.begin(), m[i].data.end());
  }
  return out;
}

}  // namespace croupier::fec
