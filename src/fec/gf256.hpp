// GF(2^8) arithmetic for the rateless erasure codec (fec/rateless).
//
// The field is GF(256) with the AES reduction polynomial x^8 + x^4 +
// x^3 + x + 1 (0x11b). Multiplication and inversion go through
// compile-time log/exp tables over the generator 0x03, so every
// operation is a pure table lookup — no data-dependent branching, no
// floating point, nothing the determinism contract has to worry about.
// Addition in GF(2^8) is XOR, which is why "XOR parity" is the k=1
// special case of the same codec.
#pragma once

#include <cstddef>
#include <cstdint>

namespace croupier::fec {

/// a + b (== a - b) in GF(256).
constexpr std::uint8_t gf_add(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

/// a * b in GF(256).
[[nodiscard]] std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; a must be non-zero.
[[nodiscard]] std::uint8_t gf_inv(std::uint8_t a);

/// dst[i] ^= coeff * src[i] over `len` bytes — the row operation both the
/// encoder and the Gaussian-elimination decoder are built from.
void gf_mul_add(std::byte* dst, const std::byte* src, std::size_t len,
                std::uint8_t coeff);

/// dst[i] *= coeff over `len` bytes (row normalization).
void gf_scale(std::byte* dst, std::size_t len, std::uint8_t coeff);

}  // namespace croupier::fec
