#include "fec/gf256.hpp"

#include <array>

#include "common/assert.hpp"

namespace croupier::fec {

namespace {

struct Tables {
  std::array<std::uint8_t, 256> log{};
  std::array<std::uint8_t, 512> exp{};  // doubled so mul skips a mod 255
};

constexpr Tables build_tables() {
  Tables t{};
  std::uint32_t x = 1;
  for (std::uint32_t i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(x);
    t.log[x] = static_cast<std::uint8_t>(i);
    // Multiply by the generator 0x03 = x + 1: x*3 = (x << 1) ^ x, reduced
    // by 0x11b when the degree-8 bit appears.
    x = (x << 1) ^ x;
    if (x & 0x100) x ^= 0x11b;
  }
  for (std::uint32_t i = 255; i < 512; ++i) {
    t.exp[i] = t.exp[i - 255];
  }
  return t;
}

constexpr Tables kTables = build_tables();

}  // namespace

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  return kTables.exp[static_cast<std::size_t>(kTables.log[a]) +
                     static_cast<std::size_t>(kTables.log[b])];
}

std::uint8_t gf_inv(std::uint8_t a) {
  CROUPIER_ASSERT_MSG(a != 0, "GF(256) inverse of zero");
  return kTables.exp[255 - static_cast<std::size_t>(kTables.log[a])];
}

void gf_mul_add(std::byte* dst, const std::byte* src, std::size_t len,
                std::uint8_t coeff) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
    return;
  }
  const std::size_t log_c = kTables.log[coeff];
  for (std::size_t i = 0; i < len; ++i) {
    const auto s = static_cast<std::uint8_t>(src[i]);
    if (s == 0) continue;
    dst[i] ^= static_cast<std::byte>(
        kTables.exp[log_c + static_cast<std::size_t>(kTables.log[s])]);
  }
}

void gf_scale(std::byte* dst, std::size_t len, std::uint8_t coeff) {
  if (coeff == 1) return;
  CROUPIER_ASSERT(coeff != 0);
  const std::size_t log_c = kTables.log[coeff];
  for (std::size_t i = 0; i < len; ++i) {
    const auto d = static_cast<std::uint8_t>(dst[i]);
    dst[i] = d == 0 ? std::byte{0}
                    : static_cast<std::byte>(
                          kTables.exp[log_c +
                                      static_cast<std::size_t>(
                                          kTables.log[d])]);
  }
}

}  // namespace croupier::fec
