// Simulated time.
//
// All simulation timestamps and durations are expressed in microseconds as
// 64-bit unsigned integers. Microsecond resolution comfortably resolves
// Internet latencies (sub-millisecond differences matter for event
// ordering) while a 64-bit counter spans ~584k years of simulated time.
#pragma once

#include <cstdint>

namespace croupier::sim {

/// A point in simulated time, in microseconds since simulation start.
using SimTime = std::uint64_t;

/// A span of simulated time, in microseconds.
using Duration = std::uint64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;

/// Convenience constructors so call sites read naturally.
constexpr Duration usec(std::uint64_t n) { return n * kMicrosecond; }
constexpr Duration msec(std::uint64_t n) { return n * kMillisecond; }
constexpr Duration sec(std::uint64_t n) { return n * kSecond; }
constexpr Duration minutes(std::uint64_t n) { return n * kMinute; }

/// Converts a simulated timestamp to (fractional) seconds for reporting.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace croupier::sim
