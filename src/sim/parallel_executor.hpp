// Round-synchronous parallel execution engine for one simulation.
//
// The sequential engine executes events strictly in (time, seq) order.
// This engine exploits the one structural fact that makes a peer-sampling
// simulation parallelizable: nodes only influence each other through the
// simulated network, and every network hop takes at least the latency
// model's min_latency(). Events for *different* nodes whose timestamps
// lie within one min_latency window are therefore causally independent —
// a conservative-lookahead PDES window, degenerating to "all events
// sharing a timestamp" when the lookahead is one microsecond.
//
// The loop:
//   1. If the head event is serial-affinity (scenario joins/kills,
//      recorders, NAT identification), execute it exactly like the
//      sequential engine — serial events are synchronization barriers.
//   2. Otherwise drain the maximal run of node-affine events with
//      time < head_time + lookahead (stopping at any serial event) in
//      (time, seq) order, partition it into per-worker shards by a
//      stable hash of the node id, and execute the shards concurrently.
//      All per-node state is touched only by its own shard; every
//      cross-node effect (network sends, meter charges, RNG draws, event
//      scheduling) is deferred into the shard's log via
//      Simulator::defer().
//   3. Merge: concatenate the shard logs, stable-sort by the issuing
//      event's (time, seq) — restoring exactly the order the sequential
//      engine would have applied the effects in — and replay them on the
//      engine thread. Event ids assigned during the replay (message
//      deliveries, next-round timers) come out in the same order as
//      under the sequential engine, so future batches tie-break
//      identically.
//
// The result is byte-identical output for every worker count, including
// the sequential engine itself (World runs it when world_jobs <= 1) —
// the property scripts/check_determinism.sh pins across every bench.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace croupier::sim {

/// Stable shard assignment: which of `jobs` workers executes events for
/// `affinity`. A pure function of (affinity, jobs) so partitioning can
/// never depend on scheduling history.
inline std::size_t shard_of(Affinity affinity, std::size_t jobs) {
  std::uint64_t s = affinity;
  return static_cast<std::size_t>(splitmix64(s) % jobs);
}

class ParallelExecutor {
 public:
  struct Options {
    /// Worker count (>= 1). 1 runs batches on the engine thread — same
    /// batching, same merge, no threads.
    std::size_t jobs = 1;
    /// Causal lookahead: events for different nodes closer together than
    /// this may run concurrently. Must not exceed the minimum one-way
    /// network latency. Clamped up to 1 us (same-timestamp batching).
    Duration lookahead = 1;
  };

  ParallelExecutor(Simulator& sim, Options options);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] std::size_t jobs() const { return jobs_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Drives the simulation to `deadline` (inclusive), replacing
  /// Simulator::run_until. Byte-identical to the sequential engine.
  void run_until(SimTime deadline);

  /// Engine counters (diagnostics; effective parallelism reporting).
  struct Stats {
    std::uint64_t batches = 0;        ///< parallel batches executed
    std::uint64_t batched_events = 0; ///< events executed inside batches
    std::uint64_t serial_events = 0;  ///< events executed serially
    std::uint64_t max_batch = 0;      ///< largest single batch
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void execute_batch();
  void run_shard(std::size_t shard);
  void worker_loop(std::size_t shard);

  Simulator& sim_;
  std::size_t jobs_;
  Duration lookahead_;
  Stats stats_;

  // One slot per shard, reused across batches.
  std::vector<std::vector<EventQueue::Fired>> shard_events_;
  std::vector<Simulator::ShardLog> logs_;
  std::vector<Simulator::DeferredOp> merged_;
  std::vector<EventQueue::Fired> batch_;

  // Batch handoff for the persistent workers (shards 1..jobs-1; the
  // engine thread runs shard 0). The mutex also publishes shard_events_
  // and logs_ between the engine thread and the workers.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  // incremented per dispatched batch
  std::size_t pending_ = 0;       // workers still running this batch
  bool stopping_ = false;
};

}  // namespace croupier::sim
