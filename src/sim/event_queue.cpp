#include "sim/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace croupier::sim {

EventId EventQueue::schedule(SimTime at, Affinity affinity, Callback fn) {
  CROUPIER_ASSERT(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, affinity});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  CROUPIER_ASSERT(live_count_ > 0);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled_head();
  CROUPIER_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().time;
}

Affinity EventQueue::next_affinity() {
  drop_cancelled_head();
  CROUPIER_ASSERT_MSG(!heap_.empty(), "next_affinity() on empty queue");
  return heap_.top().affinity;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  CROUPIER_ASSERT_MSG(!heap_.empty(), "pop() on empty queue");
  const Entry head = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(head.id);
  CROUPIER_ASSERT(it != callbacks_.end());
  Fired fired{head.time, head.id, head.affinity, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace croupier::sim
