// Anchor translation unit: verifies sim/rng.hpp compiles standalone.
#include "sim/rng.hpp"
