// The discrete-event simulation kernel.
//
// This is the substrate standing in for the Kompics simulator the paper
// used: a single-threaded event loop over virtual time. Components
// schedule callbacks at absolute or relative times; the simulator fires
// them in deterministic (time, scheduling-order) order and advances the
// clock discontinuously to each event's timestamp.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace croupier::sim {

class Simulator {
 public:
  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Number of events executed so far (for diagnostics and tests).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// True when no pending events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Schedules a callback `delay` after the current time.
  EventId schedule_after(Duration delay, EventQueue::Callback fn) {
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules a callback at an absolute virtual time (>= now).
  EventId schedule_at(SimTime at, EventQueue::Callback fn);

  /// Cancels a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Runs until the queue is empty or the clock would pass `deadline`.
  /// Events scheduled exactly at `deadline` are executed. On return the
  /// clock reads min(deadline, time of last event).
  void run_until(SimTime deadline);

  /// Runs for a span of virtual time from now.
  void run_for(Duration span) { run_until(now_ + span); }

  /// Runs until no events remain.
  void run();

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace croupier::sim
