// The discrete-event simulation kernel.
//
// This is the substrate standing in for the Kompics simulator the paper
// used: an event loop over virtual time. Components schedule callbacks at
// absolute or relative times; the simulator fires them in deterministic
// (time, scheduling-order) order and advances the clock discontinuously
// to each event's timestamp.
//
// Two engines share this kernel:
//   - the classic sequential loop (step / run_until / run), and
//   - the round-synchronous parallel engine (sim/parallel_executor),
//     which executes causally independent node-affine events on worker
//     threads and replays their shared-state effects serially in
//     (time, seq) order, so its output is byte-identical to the
//     sequential loop.
//
// The bridge between the two is defer(): any effect that touches state
// shared across nodes (the network RNG, traffic meters, the event queue
// itself) must go through defer(fn). Outside a parallel batch defer runs
// the effect immediately — the classic path is unchanged — while inside a
// batch it is logged per worker and applied at the deterministic merge.
// Scheduling calls made during a batch are deferred the same way and
// return kInvalidEventId (the real id is assigned at the merge; callbacks
// that need to cancel must be serial-affinity, like the NAT-ID timeout).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace croupier::sim {

class Simulator {
 public:
  /// Current virtual time. Inside a parallel batch this is the executing
  /// event's own timestamp, so callbacks always observe the same clock
  /// they would under the sequential engine.
  [[nodiscard]] SimTime now() const;

  /// Number of events executed so far (for diagnostics and tests).
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// True when no pending events remain.
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Schedules a callback `delay` after the current time. The affinity
  /// overload tags the event with the node whose state the callback
  /// touches; the plain overload tags it kSerialAffinity.
  EventId schedule_after(Duration delay, EventQueue::Callback fn) {
    return schedule_after(delay, kSerialAffinity, std::move(fn));
  }
  EventId schedule_after(Duration delay, Affinity affinity,
                         EventQueue::Callback fn);

  /// Schedules a callback at an absolute virtual time (>= now).
  EventId schedule_at(SimTime at, EventQueue::Callback fn) {
    return schedule_at(at, kSerialAffinity, std::move(fn));
  }
  EventId schedule_at(SimTime at, Affinity affinity, EventQueue::Callback fn);

  /// Cancels a pending event; returns false if it already fired. Must not
  /// be called from inside a parallel batch (serial-affinity events only).
  bool cancel(EventId id);

  /// True while the calling thread is executing a parallel-batch shard of
  /// THIS simulator. Hot paths branch on this to apply cross-node effects
  /// inline instead of paying the deferral closure; the two are
  /// equivalent by the defer() contract (nothing running inside the batch
  /// can observe the deferred state).
  [[nodiscard]] bool deferring() const { return active_log() != nullptr; }

  /// Runs `effect` now when executing serially, or logs it for the
  /// deterministic (time, seq, issue-order) replay when called from a
  /// worker inside a parallel batch. Effects that mutate cross-node state
  /// from node-affine callbacks (network sends, meter charges) MUST be
  /// routed through here — it is what keeps the parallel engine
  /// byte-identical to the sequential one.
  void defer(EventQueue::Callback effect);

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Runs until the queue is empty or the clock would pass `deadline`.
  /// Events scheduled exactly at `deadline` are executed. On return the
  /// clock reads min(deadline, time of last event).
  void run_until(SimTime deadline);

  /// Runs for a span of virtual time from now.
  void run_for(Duration span) { run_until(now_ + span); }

  /// Runs until no events remain.
  void run();

 private:
  friend class ParallelExecutor;

  /// One deferred effect, tagged with the (time, id) of the event that
  /// issued it so the merge can replay effects in sequential order.
  struct DeferredOp {
    SimTime time;
    EventId id;
    EventQueue::Callback fn;
  };

  /// Per-worker execution log for one parallel batch. While a worker
  /// drains its shard, tls_log_ points at its log; current_time/
  /// current_id track the event being executed.
  struct ShardLog {
    Simulator* owner = nullptr;
    SimTime current_time = 0;
    EventId current_id = 0;
    std::uint64_t executed = 0;
    std::vector<DeferredOp> ops;
  };

  /// The calling thread's active shard log for *this* simulator, or
  /// nullptr when executing serially.
  [[nodiscard]] ShardLog* active_log() const;

  /// Binds/unbinds the calling thread's shard log. All tls_log_ access
  /// stays inside simulator.cpp: gcc routes cross-TU thread_local
  /// references through a TLS wrapper that UBSan's null check
  /// mis-flags as a store through null.
  static void bind_shard_log(ShardLog* log);

  EventId schedule_impl(SimTime at, Affinity affinity,
                        EventQueue::Callback fn, bool check_past);

  static thread_local ShardLog* tls_log_;

  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
  /// During a parallel merge: no deferred schedule may target a time
  /// before this (causality guard for the lookahead window). 0 = off.
  SimTime causal_floor_ = 0;
};

}  // namespace croupier::sim
