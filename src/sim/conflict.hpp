// Cross-shard write detector (the CROUPIER_CONFLICT_CHECK build option).
//
// The parallel engine's byte-identity contract rests on a convention the
// type system cannot see: a node-affine event handler may only mutate
// state owned by its own node; every cross-node effect must route
// through Simulator::defer so the serial merge replays it in the
// sequential order. detlint bans the *constructs* that violate this;
// the conflict checker catches the *executions*. It is a determinism-
// specific race detector: two same-batch writes to the same node's state
// from different shards are data-race-free under TSan (the batch barrier
// orders them), yet their relative order is a scheduling accident — the
// exact class of bug TSan calls clean and a twin run only catches if the
// orders happen to diverge.
//
// Mechanics: ParallelExecutor::run_shard brackets every batched event
// with begin_shard_event(affinity)/end_shard_event (thread-local, no
// synchronization). Mutation paths of per-node state — a node's NAT box
// and reassembly buffers in the Network, a protocol's PartialView, the
// World's per-node runtime — call record_write(owner) with the id of
// the node that owns the state. A write whose owner differs from the
// executing event's affinity aborts with a diagnostic; owner 0 means
// "unowned" (detached test fixtures) and is never checked.
//
// With the option OFF (the default) every hook is an empty inline and
// release hot paths are untouched.
#pragma once

#include <cstdint>

namespace croupier::sim::conflict {

#if defined(CROUPIER_CONFLICT_CHECK)

/// Marks the calling thread as executing a batched node-affine event
/// owned by `affinity` (a node id; never kSerialAffinity — serial events
/// are barriers and never enter a shard).
void begin_shard_event(std::uint64_t affinity);
void end_shard_event();

/// Declares a mutation of state owned by node `owner`. Aborts when a
/// shard event is active on this thread and `owner` differs from the
/// executing event's affinity. `site` names the state for diagnostics.
/// owner == 0 (unowned) is skipped.
void record_write(std::uint64_t owner, const char* site);

/// Writes validated inside parallel batches since process start (tests
/// assert this is nonzero to prove the instrumentation was live).
std::uint64_t checked_writes();

constexpr bool enabled() { return true; }

#else

inline void begin_shard_event(std::uint64_t) {}
inline void end_shard_event() {}
inline void record_write(std::uint64_t, const char*) {}
inline std::uint64_t checked_writes() { return 0; }
constexpr bool enabled() { return false; }

#endif

}  // namespace croupier::sim::conflict
