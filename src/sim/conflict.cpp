// Implementation of the cross-shard write detector. All thread-local
// state lives here, in one translation unit, for the same reason the
// Simulator keeps its shard-log TLS in simulator.cpp: inline TLS access
// from headers is what the sanitizer builds choke on.
#if defined(CROUPIER_CONFLICT_CHECK)

#include "sim/conflict.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace croupier::sim::conflict {

namespace {

thread_local std::uint64_t tls_owner = 0;
thread_local bool tls_active = false;
std::atomic<std::uint64_t> checked{0};

}  // namespace

void begin_shard_event(std::uint64_t affinity) {
  tls_owner = affinity;
  tls_active = true;
}

void end_shard_event() { tls_active = false; }

void record_write(std::uint64_t owner, const char* site) {
  if (!tls_active || owner == 0) return;
  checked.fetch_add(1, std::memory_order_relaxed);
  if (owner == tls_owner) return;
  std::fprintf(stderr,
               "croupier: conflict-check: cross-shard write to state of "
               "node %llu (%s) from a batched event owned by node %llu — "
               "route the effect through Simulator::defer\n",
               static_cast<unsigned long long>(owner), site,
               static_cast<unsigned long long>(tls_owner));
  std::abort();
}

std::uint64_t checked_writes() {
  return checked.load(std::memory_order_relaxed);
}

}  // namespace croupier::sim::conflict

#endif  // CROUPIER_CONFLICT_CHECK
