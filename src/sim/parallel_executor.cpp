#include "sim/parallel_executor.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "sim/conflict.hpp"

namespace croupier::sim {

ParallelExecutor::ParallelExecutor(Simulator& sim, Options options)
    : sim_(sim),
      jobs_(std::max<std::size_t>(1, options.jobs)),
      lookahead_(std::max<Duration>(1, options.lookahead)),
      shard_events_(jobs_),
      logs_(jobs_) {
  workers_.reserve(jobs_ - 1);
  for (std::size_t shard = 1; shard < jobs_; ++shard) {
    workers_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelExecutor::run_until(SimTime deadline) {
  EventQueue& q = sim_.queue_;
  while (!q.empty() && q.next_time() <= deadline) {
    if (q.next_affinity() == kSerialAffinity) {
      // Serial events are synchronization barriers: everything before
      // them has merged, so they observe exactly the sequential state.
      sim_.step();
      ++stats_.serial_events;
      continue;
    }

    // Drain the maximal (time, seq)-ordered run of node-affine events
    // inside the causal window. Stopping at the first serial event keeps
    // the run a strict prefix of the sequential execution order.
    const SimTime t0 = q.next_time();
    const SimTime wend = std::min(t0 + lookahead_, deadline + 1);
    batch_.clear();
    while (!q.empty() && q.next_time() < wend &&
           q.next_affinity() != kSerialAffinity) {
      batch_.push_back(q.pop());
    }
    CROUPIER_ASSERT(!batch_.empty());

    if (batch_.size() == 1) {
      // A lone event's deferred effects would replay immediately after it
      // in issue order anyway (and nothing it runs can observe the
      // difference — that is the defer() contract), so execute it like
      // Simulator::step() and skip the worker handoff.
      auto& ev = batch_.front();
      sim_.now_ = ev.time;
      ++sim_.processed_;
      ++stats_.serial_events;
      ev.fn();
      continue;
    }
    execute_batch();
  }
  if (sim_.now_ < deadline) sim_.now_ = deadline;
}

void ParallelExecutor::execute_batch() {
  ++stats_.batches;
  stats_.batched_events += batch_.size();
  stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, batch_.size());
  const SimTime last_time = batch_.back().time;  // batch_ is (time, seq)-sorted

  for (auto& shard : shard_events_) shard.clear();
  for (auto& ev : batch_) {
    shard_events_[shard_of(ev.affinity, jobs_)].push_back(std::move(ev));
  }

  if (jobs_ == 1) {
    run_shard(0);
  } else {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++generation_;
      pending_ = jobs_ - 1;
    }
    start_cv_.notify_all();
    run_shard(0);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }

  // Deterministic merge: replay every deferred effect in the order the
  // sequential engine would have produced it — by issuing event
  // (time, seq), then issue order within an event (each event's ops sit
  // contiguously in one shard log; stable_sort keeps them in place).
  merged_.clear();
  std::uint64_t executed = 0;
  for (auto& log : logs_) {
    executed += log.executed;
    log.executed = 0;
    for (auto& op : log.ops) merged_.push_back(std::move(op));
    log.ops.clear();
  }
  std::stable_sort(merged_.begin(), merged_.end(),
                   [](const Simulator::DeferredOp& a,
                      const Simulator::DeferredOp& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.id < b.id;
                   });
  sim_.processed_ += executed;
  // Determinism bound: a deferred schedule at or after the batch's last
  // event time gets a fresh id that sorts after every executed event, so
  // the sequential engine would run it in the same place (a same-time
  // target just forms the next batch). Only a target *before* last_time
  // would reorder history — that is what the assert catches. With
  // lookahead <= min_latency targets land at >= wend anyway; the floor
  // also keeps the degenerate zero-min-latency same-timestamp batches
  // (lookahead clamped to 1 us) working instead of tripping the guard.
  sim_.causal_floor_ = last_time;
  for (auto& op : merged_) {
    sim_.now_ = op.time;
    op.fn();
  }
  sim_.causal_floor_ = 0;
  sim_.now_ = last_time;
  merged_.clear();
}

void ParallelExecutor::run_shard(std::size_t shard) {
  auto& events = shard_events_[shard];
  Simulator::ShardLog& log = logs_[shard];
  log.owner = &sim_;
  Simulator::bind_shard_log(&log);
  for (auto& ev : events) {
    log.current_time = ev.time;
    log.current_id = ev.id;
    ++log.executed;
    conflict::begin_shard_event(ev.affinity);
    ev.fn();
    conflict::end_shard_event();
  }
  Simulator::bind_shard_log(nullptr);
}

void ParallelExecutor::worker_loop(std::size_t shard) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    start_cv_.wait(lock,
                   [this, seen] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    lock.unlock();
    run_shard(shard);
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_one();
  }
}

}  // namespace croupier::sim
