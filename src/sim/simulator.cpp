#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace croupier::sim {

thread_local Simulator::ShardLog* Simulator::tls_log_ = nullptr;

Simulator::ShardLog* Simulator::active_log() const {
  ShardLog* log = tls_log_;
  return (log != nullptr && log->owner == this) ? log : nullptr;
}

void Simulator::bind_shard_log(ShardLog* log) { tls_log_ = log; }

SimTime Simulator::now() const {
  const ShardLog* log = active_log();
  return log != nullptr ? log->current_time : now_;
}

EventId Simulator::schedule_after(Duration delay, Affinity affinity,
                                  EventQueue::Callback fn) {
  return schedule_impl(now() + delay, affinity, std::move(fn),
                       /*check_past=*/false);
}

EventId Simulator::schedule_at(SimTime at, Affinity affinity,
                               EventQueue::Callback fn) {
  return schedule_impl(at, affinity, std::move(fn), /*check_past=*/true);
}

EventId Simulator::schedule_impl(SimTime at, Affinity affinity,
                                 EventQueue::Callback fn, bool check_past) {
  if (ShardLog* log = active_log()) {
    // Parallel batch: the queue is shared, so the schedule itself becomes
    // a deferred effect. Re-entering schedule_impl at merge time (the log
    // is inactive there) repeats the serial-path checks.
    log->ops.push_back(DeferredOp{
        log->current_time, log->current_id,
        [this, at, affinity, fn = std::move(fn), check_past]() mutable {
          schedule_impl(at, affinity, std::move(fn), check_past);
        }});
    return kInvalidEventId;
  }
  if (check_past) {
    CROUPIER_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  }
  // While merging a parallel batch, every deferred schedule must land at
  // or beyond the lookahead window end; a violation means a latency model
  // undercut its declared min_latency() and the batch was not causally
  // closed.
  CROUPIER_ASSERT_MSG(causal_floor_ == 0 || at >= causal_floor_,
                      "deferred schedule violates the lookahead window");
  return queue_.schedule(at, affinity, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  CROUPIER_ASSERT_MSG(active_log() == nullptr,
                      "cancel() from inside a parallel batch");
  return queue_.cancel(id);
}

void Simulator::defer(EventQueue::Callback effect) {
  if (ShardLog* log = active_log()) {
    log->ops.push_back(
        DeferredOp{log->current_time, log->current_id, std::move(effect)});
    return;
  }
  effect();
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  CROUPIER_ASSERT(fired.time >= now_);
  now_ = fired.time;
  ++processed_;
  fired.fn();
  return true;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace croupier::sim
