#include "sim/simulator.hpp"

#include "common/assert.hpp"

namespace croupier::sim {

EventId Simulator::schedule_at(SimTime at, EventQueue::Callback fn) {
  CROUPIER_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  return queue_.schedule(at, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  CROUPIER_ASSERT(fired.time >= now_);
  now_ = fired.time;
  ++processed_;
  fired.fn();
  return true;
}

void Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace croupier::sim
