// Priority queue of timed events for the discrete-event simulator.
//
// Events with equal timestamps fire in scheduling (FIFO) order, which makes
// simulations deterministic: the (time, sequence-number) pair is a total
// order. Cancellation is lazy — cancelled ids are remembered and skipped
// when popped — which keeps both schedule and cancel O(log n) amortized.
//
// Every event carries an *affinity* tag: the id of the node whose state
// the callback touches, or kSerialAffinity when the callback reads or
// writes state shared across nodes (scenario processes, recorders, NAT
// identification). The sequential engine ignores affinities; the
// round-synchronous parallel engine (sim/parallel_executor) uses them to
// decide which events may execute concurrently and which force a
// serialization point.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace croupier::sim {

/// Identifies a scheduled event; usable to cancel it before it fires.
using EventId = std::uint64_t;

/// Returned by schedule calls made from inside a parallel batch, where the
/// real id is only assigned at the deterministic merge. Never a live id.
constexpr EventId kInvalidEventId = 0;

/// Which node's state an event touches. kSerialAffinity marks events that
/// touch cross-node state and therefore must run alone, in order.
using Affinity = std::uint64_t;
constexpr Affinity kSerialAffinity = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Returns an id for cancellation.
  /// The two-argument form tags the event kSerialAffinity.
  EventId schedule(SimTime at, Callback fn) {
    return schedule(at, kSerialAffinity, std::move(fn));
  }
  EventId schedule(SimTime at, Affinity affinity, Callback fn);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_count_ == 0; }

  /// Number of live pending events.
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest live event. Must not be called when empty.
  [[nodiscard]] SimTime next_time();

  /// Affinity of the earliest live event. Must not be called when empty.
  [[nodiscard]] Affinity next_affinity();

  /// Removes and returns the earliest live event. Must not be called when
  /// empty.
  struct Fired {
    SimTime time;
    EventId id;
    Affinity affinity;
    Callback fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    Affinity affinity;

    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::size_t live_count_ = 0;
  EventId next_id_ = 1;
};

}  // namespace croupier::sim
