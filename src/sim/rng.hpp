// Deterministic random number generation for the simulator.
//
// Every stochastic component (latency model, loss model, each protocol
// instance, scenario processes) owns its own RngStream forked from a master
// seed. Forking is done by hashing (seed, tag) so streams are statistically
// independent and experiments are exactly reproducible: the same master
// seed always produces the same run regardless of how many components
// exist or in which order they draw.
//
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded
// through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace croupier::sim {

/// SplitMix64 step; used for seeding and for stream forking.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// An independent, seedable random stream.
class RngStream {
 public:
  /// Seeds the stream. Two streams with different seeds are independent
  /// for all practical purposes.
  explicit RngStream(std::uint64_t seed = 0x853c49e6748fea9bULL)
      : lineage_(seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child stream from this stream's seed lineage
  /// and a caller-chosen tag. Forking neither advances this stream nor
  /// depends on how much of it has been consumed.
  ///
  /// (lineage, tag) is hashed through two full splitmix64 rounds —
  /// lineage through the first, tag absorbed before the second. The
  /// earlier XOR-linear premix (`lineage ^ gamma*(tag+1)`) let distinct
  /// (lineage, tag) pairs collide whenever the lineage difference
  /// cancelled the tag difference, which nested forks (fork().fork(),
  /// the basis of per-trial seed derivation) made easy to hit.
  [[nodiscard]] RngStream fork(std::uint64_t tag) const {
    std::uint64_t sm = lineage_;
    sm = splitmix64(sm) ^ tag;
    return RngStream(splitmix64(sm));
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t uniform(std::uint64_t bound) {
    CROUPIER_ASSERT(bound > 0);
    // Lemire's nearly-divisionless bounded sampling with rejection.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_in(std::int64_t lo, std::int64_t hi) {
    CROUPIER_ASSERT(lo <= hi);
    const auto span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // no overflow for our uses
    return lo + static_cast<std::int64_t>(uniform(span));
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Exponentially distributed value with the given mean (rate = 1/mean).
  double exponential(double mean) {
    CROUPIER_ASSERT(mean > 0.0);
    double u = next_double();
    // Guard against log(0).
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  /// Standard normal via Box-Muller (single value; partner discarded).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
    const double u2 = next_double();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * radius * std::cos(2.0 * 3.141592653589793 * u2);
  }

  /// Picks a uniformly random element index for a container of given size.
  std::size_t index(std::size_t size) {
    CROUPIER_ASSERT(size > 0);
    return static_cast<std::size_t>(uniform(size));
  }

  /// Fisher-Yates shuffle of a span in place.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// In-place sampling core: selects min(n, pool.size()) elements into
  /// the prefix of `pool`, uniformly without replacement and in random
  /// order, and returns how many were selected. Callers that already own
  /// a scratch vector avoid the copy sample() makes. The draw sequence
  /// is exactly sample()'s for the same pool and n, so swapping one for
  /// the other cannot change downstream bytes.
  template <typename T>
  std::size_t sample_prefix(std::span<T> pool, std::size_t n) {
    if (n >= pool.size()) {
      shuffle(pool);
      return pool.size();
    }
    // Partial Fisher-Yates: select n elements into the prefix.
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(uniform(pool.size() - i));
      using std::swap;
      swap(pool[i], pool[j]);
    }
    return n;
  }

  /// Samples up to n distinct elements from items, uniformly without
  /// replacement, in random order (so truncating the result keeps it an
  /// unbiased sample).
  template <typename T>
  std::vector<T> sample(std::span<const T> items, std::size_t n) {
    std::vector<T> pool(items.begin(), items.end());
    pool.resize(sample_prefix(std::span<T>(pool), n));
    return pool;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  std::uint64_t lineage_ = 0;  // construction seed; basis for fork()
};

}  // namespace croupier::sim
