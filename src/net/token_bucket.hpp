// Per-node bandwidth cap as a token bucket with an unbounded queue.
//
// The bucket never drops: a charge that exceeds the available tokens
// borrows from the future and returns the queueing delay — the time the
// datagram waits for its last token — which the Network adds to the
// propagation latency, so link saturation shows up as RTT inflation
// (the paper's NAT'd home-link scenario the MTU work exists for).
//
// All arithmetic is exact integer math in micro-byte units (1 byte =
// 1'000'000 µB, mirroring the µs clock): tokens accrue at rate_bps
// µB/µs, a send costs bytes * 1e6 µB, and a negative balance of d µB
// means a delay of ceil(d / rate) µs. No floats, no drift — the same
// charge sequence yields the same delays on every engine, which is what
// the determinism gate requires.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace croupier::net {

class TokenBucket {
 public:
  /// rate_bps: sustained bytes/second (> 0). burst_bytes: bucket depth;
  /// a burst of that many bytes passes with zero delay from a full
  /// bucket.
  TokenBucket(std::uint64_t rate_bps, std::uint64_t burst_bytes);

  /// Charges `bytes` at simulation time `now` (calls must be in
  /// non-decreasing `now` order — the serial send half guarantees it).
  /// Returns the queueing delay to add to the datagram's latency.
  sim::Duration charge(sim::SimTime now, std::size_t bytes);

  /// Current balance in bytes (negative = backlog), for tests.
  [[nodiscard]] std::int64_t balance_bytes() const {
    return tokens_ub_ / kUbPerByte;
  }

 private:
  static constexpr std::int64_t kUbPerByte = 1'000'000;

  std::int64_t rate_;         // bytes/s == µB/µs
  std::int64_t capacity_ub_;  // burst in µB
  std::int64_t tokens_ub_;    // may go negative (queued backlog)
  sim::SimTime last_ = 0;
};

}  // namespace croupier::net
