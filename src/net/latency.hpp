// Pairwise latency models.
//
// The paper drives its simulations with the King data set [16]. That data
// is not redistributable here, so KingLatencyModel synthesizes a
// King-like latency space: each unordered node pair gets a deterministic
// base latency drawn from a log-normal distribution fitted to the
// published King statistics (median ~77 ms, mean ~90 ms, heavy right
// tail), plus a small per-packet jitter. Latencies are symmetric and
// stable for a pair across the run, like a real latency map.
#pragma once

#include <cstdint>
#include <memory>

#include "net/address.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace croupier::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for a packet sent now from `from` to `to`.
  virtual sim::Duration sample(NodeId from, NodeId to,
                               sim::RngStream& rng) = 0;

  /// Hard lower bound on every value sample() can return. The parallel
  /// engine's causal lookahead window is exactly this bound: events for
  /// different nodes closer together in time than the fastest possible
  /// packet cannot influence each other. A model that cannot promise a
  /// positive bound keeps the default 0 (the engine then degenerates to
  /// same-timestamp batching — correct, just not parallel).
  [[nodiscard]] virtual sim::Duration min_latency() const { return 0; }

  /// Deterministic jitter-free latency for a pair — the model's notion of
  /// "how far apart" two nodes are. Region-correlated failure scenarios
  /// use this as the metric defining a contiguous latency neighbourhood,
  /// so it must be stable across a run and must not consume any RNG.
  /// Models without pairwise structure keep the default (every pair
  /// equally far).
  [[nodiscard]] virtual sim::Duration base_latency(NodeId /*a*/,
                                                   NodeId /*b*/) const {
    return min_latency();
  }
};

/// Fixed delay; useful in unit tests that assert exact timings.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(sim::Duration d) : delay_(d) {}
  sim::Duration sample(NodeId, NodeId, sim::RngStream&) override {
    return delay_;
  }
  [[nodiscard]] sim::Duration min_latency() const override { return delay_; }

 private:
  sim::Duration delay_;
};

/// Uniform delay in [lo, hi]; useful for quick randomized tests.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(sim::Duration lo, sim::Duration hi) : lo_(lo), hi_(hi) {}
  sim::Duration sample(NodeId, NodeId, sim::RngStream& rng) override;
  [[nodiscard]] sim::Duration min_latency() const override { return lo_; }
  [[nodiscard]] sim::Duration base_latency(NodeId, NodeId) const override {
    return (lo_ + hi_) / 2;
  }

 private:
  sim::Duration lo_;
  sim::Duration hi_;
};

/// Tuning knobs for the synthetic King-like latency space.
struct KingLatencyParams {
  double median_ms = 77.0;       // King median RTT/2 scale
  double sigma = 0.56;           // log-normal shape (fits mean ~90 ms)
  double jitter_fraction = 0.1;  // per-packet +/- jitter
  sim::Duration min_latency = sim::msec(2);
  sim::Duration max_latency = sim::msec(800);
};

/// Geographic-embedding latency model: every node gets a deterministic
/// position on a 2D plane (three Gaussian "continent" clusters); pair
/// latency = propagation proportional to Euclidean distance + a fixed
/// last-mile cost + per-packet jitter. Complements KingLatencyModel with
/// *correlated* latencies (triangle-inequality-respecting), which matters
/// when studying chain routing (Nylon) over long paths.
class CoordinateLatencyModel final : public LatencyModel {
 public:
  struct Params {
    double plane_ms = 160.0;      // latency across the full plane diagonal
    double last_mile_ms = 4.0;    // fixed per-hop access cost
    double cluster_stddev = 0.08; // continent spread (plane units)
    double jitter_fraction = 0.1;
    sim::Duration min_latency = sim::msec(1);
  };

  explicit CoordinateLatencyModel(std::uint64_t seed);
  CoordinateLatencyModel(std::uint64_t seed, const Params& params);

  sim::Duration sample(NodeId from, NodeId to, sim::RngStream& rng) override;
  [[nodiscard]] sim::Duration min_latency() const override {
    return params_.min_latency;
  }

  /// Deterministic node position in [0,1]^2.
  [[nodiscard]] std::pair<double, double> position(NodeId node) const;
  /// Deterministic base latency (no jitter).
  [[nodiscard]] sim::Duration base_latency(NodeId a, NodeId b) const override;

 private:
  std::uint64_t seed_;
  Params params_;
};

/// Synthetic King-like Internet latency map (see file comment).
class KingLatencyModel final : public LatencyModel {
 public:
  using Params = KingLatencyParams;

  explicit KingLatencyModel(std::uint64_t seed, Params params = {});

  sim::Duration sample(NodeId from, NodeId to, sim::RngStream& rng) override;
  [[nodiscard]] sim::Duration min_latency() const override {
    return params_.min_latency;
  }

  /// Deterministic symmetric base latency for a pair (no jitter).
  [[nodiscard]] sim::Duration base_latency(NodeId a, NodeId b) const override;

 private:
  std::uint64_t seed_;
  Params params_;
};

}  // namespace croupier::net
