// Message abstraction for the simulated UDP network.
//
// Messages are immutable value objects delivered by pointer. Every
// concrete message implements a binary encoding (wire/) so the network
// can charge byte-accurate traffic to each node, including the figure-7a
// overhead comparison the paper reports.
#pragma once

#include <cstdint>
#include <memory>

#include "net/address.hpp"
#include "wire/wire.hpp"

namespace croupier::net {

class Message {
 public:
  virtual ~Message() = default;

  /// Protocol-scoped message tag (first byte on the wire).
  [[nodiscard]] virtual std::uint8_t type() const = 0;

  /// Human-readable message name for traces and test failures.
  [[nodiscard]] virtual const char* name() const = 0;

  /// Serializes the full message, including the type tag.
  virtual void encode(wire::Writer& w) const = 0;

  /// Encoded payload size in bytes (excludes UDP/IP headers; the network
  /// adds those when charging traffic).
  [[nodiscard]] std::size_t wire_size() const {
    wire::Writer w;
    encode(w);
    return w.size();
  }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Receiver interface registered with the network per node.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(NodeId from, const Message& msg) = 0;
};

}  // namespace croupier::net
