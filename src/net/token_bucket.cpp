#include "net/token_bucket.hpp"

#include "common/assert.hpp"

namespace croupier::net {

TokenBucket::TokenBucket(std::uint64_t rate_bps, std::uint64_t burst_bytes)
    : rate_(static_cast<std::int64_t>(rate_bps)),
      capacity_ub_(static_cast<std::int64_t>(burst_bytes) * kUbPerByte),
      tokens_ub_(capacity_ub_) {
  CROUPIER_ASSERT_MSG(rate_ > 0, "token bucket needs a positive rate");
  CROUPIER_ASSERT_MSG(capacity_ub_ > 0, "token bucket needs a positive burst");
}

sim::Duration TokenBucket::charge(sim::SimTime now, std::size_t bytes) {
  CROUPIER_ASSERT_MSG(now >= last_, "token bucket charged out of order");
  const auto elapsed = static_cast<std::int64_t>(now - last_);
  last_ = now;

  // Accrue rate_ µB per µs, saturating at the burst capacity. The
  // threshold test keeps rate_ * elapsed from overflowing after a long
  // idle gap.
  const std::int64_t headroom = capacity_ub_ - tokens_ub_;
  if (elapsed >= headroom / rate_ + 1) {
    tokens_ub_ = capacity_ub_;
  } else {
    tokens_ub_ += rate_ * elapsed;
    if (tokens_ub_ > capacity_ub_) tokens_ub_ = capacity_ub_;
  }

  tokens_ub_ -= static_cast<std::int64_t>(bytes) * kUbPerByte;
  if (tokens_ub_ >= 0) return 0;
  // Backlogged: this datagram departs when its last token accrues.
  const std::int64_t deficit = -tokens_ub_;
  return static_cast<sim::Duration>((deficit + rate_ - 1) / rate_);
}

}  // namespace croupier::net
