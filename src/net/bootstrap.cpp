#include "net/bootstrap.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace croupier::net {

namespace {

void registry_add(std::vector<NodeId>& pool,
                  std::unordered_map<NodeId, std::size_t>& index, NodeId id) {
  CROUPIER_ASSERT_MSG(!index.contains(id), "node registered twice");
  index.emplace(id, pool.size());
  pool.push_back(id);
}

void registry_remove(std::vector<NodeId>& pool,
                     std::unordered_map<NodeId, std::size_t>& index,
                     NodeId id) {
  const auto it = index.find(id);
  if (it == index.end()) return;
  const std::size_t pos = it->second;
  const NodeId last = pool.back();
  pool[pos] = last;
  index[last] = pos;
  pool.pop_back();
  index.erase(it);
}

}  // namespace

void BootstrapServer::add(NodeId id, NatType type) {
  registry_add(all_, index_all_, id);
  if (type == NatType::Public) registry_add(publics_, index_public_, id);
}

void BootstrapServer::remove(NodeId id) {
  registry_remove(all_, index_all_, id);
  registry_remove(publics_, index_public_, id);
}

std::vector<NodeId> BootstrapServer::sample_from(
    const std::vector<NodeId>& pool, std::size_t n, NodeId self,
    sim::RngStream& rng) {
  std::vector<NodeId> picked =
      rng.sample(std::span<const NodeId>(pool), n + 1);
  std::erase(picked, self);
  if (picked.size() > n) picked.resize(n);
  return picked;
}

std::vector<NodeId> BootstrapServer::sample_public(
    std::size_t n, NodeId self, sim::RngStream& rng) const {
  return sample_from(publics_, n, self, rng);
}

std::vector<NodeId> BootstrapServer::sample_any(std::size_t n, NodeId self,
                                                sim::RngStream& rng) const {
  return sample_from(all_, n, self, rng);
}

}  // namespace croupier::net
